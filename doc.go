// Package repro is ihnet: a manageable intra-host network, reproducing
// "Towards a Manageable Intra-Host Network" (HotOS '23).
//
// The system lives under internal/ (see DESIGN.md for the inventory),
// the runnable tools under cmd/, the examples under examples/, and the
// benchmark harness that regenerates every experiment table in
// bench_test.go.
package repro
