GO ?= go

.PHONY: all build vet fmt test race solver-race bench bench-smoke bench-json bench-json-obs bench-json-remedy chaos-smoke remedy-smoke fleet-smoke store-smoke check clean

all: check

build:
	$(GO) build ./...

# ./... already spans the module; ./cmd/... is pinned explicitly so
# narrowing the first pattern can never silently drop the CLIs.
vet:
	$(GO) vet ./...
	$(GO) vet ./cmd/...

# gofmt -l prints unformatted files; fail loudly if there are any.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Quick sanity pass over the benchmarks that guard the hot paths: the
# observability tax on fabric scheduling, the snapshot round-trip
# (export + encode + decode + replay + verify), the fleet runner's
# serial-vs-parallel speedup at 64 hosts, and the observability
# pipeline (zero-alloc bus publish, flat-per-host fleet roll-up).
bench-smoke:
	$(GO) test -bench BenchmarkObsFabricHotPath -benchtime 1x -run '^$$' .
	$(GO) test -bench BenchmarkSnapshotRoundTrip -benchtime 1x -run '^$$' ./internal/snap
	$(GO) test -bench 'BenchmarkFleetRunFor/hosts=64' -benchtime 1x -run '^$$' ./internal/fleet
	$(GO) test -bench 'BenchmarkFabricFlowChurn/flows=1000$$' -benchtime 1x -benchmem -run '^$$' ./internal/fabric
	$(GO) test -bench BenchmarkFabricRecomputeSteadyState -benchtime 1x -benchmem -run '^$$' ./internal/fabric
	$(GO) test -bench 'BenchmarkBusPublish' -benchtime 1x -benchmem -run '^$$' ./internal/obs
	$(GO) test -bench 'BenchmarkFleetRollup/hosts=64' -benchtime 1x -benchmem -run '^$$' ./internal/fleet

# Benchmark trajectory gate: run the fabric hot-path benchmarks, fold
# the results into BENCH_fabric.json (the committed baseline section is
# preserved; current is overwritten), and fail if any allocation budget
# is exceeded — most importantly, the steady-state recompute must stay
# at 0 allocs/op. Timing numbers are recorded but not gated: they are
# machine-dependent, allocation counts are not. The big churn tiers run
# at reduced -benchtime (one churn op at 1M residents costs ~1s of
# wall clock); allocation counts are per-op and deterministic, so fewer
# iterations gate exactly as well. benchjson hard-fails on any budgeted
# benchmark missing from the input, so a tier cannot be silently
# dropped from this recipe.
bench-json:
	{ $(GO) test -bench 'BenchmarkFabricFlowChurn/flows=(100|1000|10000)$$' -benchtime 100x -benchmem -run '^$$' ./internal/fabric; \
	  $(GO) test -bench 'BenchmarkFabricFlowChurn/flows=100000$$' -benchtime 20x -benchmem -run '^$$' ./internal/fabric; \
	  $(GO) test -bench 'BenchmarkFabricFlowChurn/flows=1000000$$' -benchtime 2x -benchmem -run '^$$' ./internal/fabric; \
	  $(GO) test -bench 'BenchmarkFabricComponentSolve' -benchtime 20x -benchmem -run '^$$' ./internal/fabric; \
	  $(GO) test -bench 'BenchmarkFabricRecomputeSteadyState' -benchtime 100x -benchmem -run '^$$' ./internal/fabric; } \
		| $(GO) run ./cmd/benchjson -out BENCH_fabric.json

# Same trajectory gate for the observability pipeline: the event-bus
# publish path (with and without fan-out) must stay at 0 allocs/op —
# it runs inside the simulation hot loop — and the fleet roll-up must
# stay allocation-flat as hosts grow. The steady-state scrape (one
# dirty shard between scrapes) is budgeted at a constant ~64 allocs/op
# from 16 to 1024 hosts; the cold all-shards-dirty fold grows only
# with the shard count, not the host count. The sharded RunFor tiers
# (1024 and 10000 hosts) pin the epoch engine's per-advance allocation
# trajectory; they run at -benchtime 1x because one op is a full
# millisecond of fleet virtual time (allocs/op are per-op and
# deterministic, so one iteration gates as well as a hundred), and
# with -timeout 0 because building a 10k-host fleet alone outlasts the
# default 10m test timeout.
bench-json-obs:
	{ $(GO) test -bench 'BenchmarkBusPublish' -benchtime 100x -benchmem -run '^$$' ./internal/obs; \
	  $(GO) test -bench 'BenchmarkFleetRollup' -benchtime 10x -benchmem -run '^$$' ./internal/fleet; \
	  $(GO) test -bench 'BenchmarkFleetRunFor/hosts=(1024|10000)/sharded' -benchtime 1x -benchmem -timeout 0 -run '^$$' ./internal/fleet; } \
		| $(GO) run ./cmd/benchjson -out BENCH_obs.json

# Sharded-fleet smoke: 1024 synthetic hosts advance 2ms on the sharded
# epoch engine under two different (shards, workers) configurations,
# and the test asserts byte-identical roll-ups and spot-checked state
# hashes — the determinism contract at four-digit scale. Gated behind
# an env var so `go test ./...` stays fast; CI runs it explicitly.
fleet-smoke:
	IHNET_FLEET_SMOKE=1 $(GO) test ./internal/fleet -run TestFleetSmokeSharded1k -v -timeout 20m

# Durable-store smoke: build the real ihnetd, boot it with -store-dir,
# drive it over HTTP, SIGKILL it without warning, restart from the
# store, and assert byte-identical state hashes and journals — once
# for a single host and once for a 1024-host sharded synthetic fleet
# (the env var upgrades the default 8-host fleet case to 1024). The
# spec-driven conformance and auth cases ride along in the same
# package.
store-smoke:
	IHNET_STORE_SMOKE=1 $(GO) test ./internal/httpapi/e2etest -v -timeout 20m -count=1

# Seed-pinned chaos smoke: randomized fault/churn schedules under the
# cross-layer invariant oracle (internal/chaos), deterministic per
# seed, ~10 s total. Seeds are pinned so CI failures reproduce exactly
# with the printed command; a violation also writes a minimized
# journal artifact under chaos-artifacts/ (uploaded by CI) that
# `ihscenario fuzz -replay` re-derives. Seed 3 on two-socket is the
# schedule that exposed the read-time byte-fold nondeterminism
# (TestStatsReadsDoNotPerturbAccounting) — kept as a standing
# regression.
chaos-smoke:
	$(GO) run ./cmd/ihscenario fuzz -seed 1 -seeds 3 -events 250 -dur 10ms -preset minimal -out chaos-artifacts
	$(GO) run ./cmd/ihscenario fuzz -seed 3 -events 300 -dur 15ms -preset two-socket -out chaos-artifacts

# Chaos-vs-controller smoke: the same seeded adversary, but with the
# closed-loop remediation controller armed. Each pinned seed must heal
# at least 95% of its eligible injected faults within the 2ms virtual
# deadline with zero oracle violations, and the auto-remediation drill
# must pass end to end. Failures reproduce exactly with the printed
# seed, like chaos-smoke.
remedy-smoke:
	$(GO) run ./cmd/ihscenario fuzz -vs-controller -seed 1 -events 150 -dur 10ms -out chaos-artifacts
	$(GO) run ./cmd/ihscenario fuzz -vs-controller -seed 7 -events 150 -dur 10ms -out chaos-artifacts
	$(GO) run ./cmd/ihscenario fuzz -vs-controller -seed 42 -events 150 -dur 10ms -out chaos-artifacts
	$(GO) run ./cmd/ihscenario scenarios/auto-remediation-drill.json

# Trajectory gate for the remediation controller: the idle control-loop
# step must stay at 0 allocs/op (it runs every probe period), and the
# closed-loop MTTR percentiles — virtual time, so machine-independent —
# must stay within the budgets pinned in cmd/benchjson (p50 <= 1ms,
# p99 <= 2ms).
bench-json-remedy:
	$(GO) test -bench 'BenchmarkRemedy(MTTR|StepIdle)' -benchtime 100x -benchmem -run '^$$' ./internal/remedy \
		| $(GO) run ./cmd/benchjson -out BENCH_remedy.json

# Solver-parity gate under the race detector, runnable on its own:
# forced-parallel vs forced-serial bit parity across randomized
# component splits and merges, the partition-rebuild refinement, the
# batch one-settle pin, and journal-replay hash stability across
# solver tunings and GOMAXPROCS. `make race` covers these too; this
# target names them so the parity contract has its own fast entry
# point (and stays listed in check even if race ever narrows).
solver-race:
	$(GO) test -race ./internal/fabric -run 'TestParallelSolver|TestSolverPartition|TestIncrementalMatchesReference'
	$(GO) test -race ./internal/snap -run 'TestBatch|TestReplayHashStableAcrossSolverTuning'

# The full gate: formatting, static analysis, build, the race-enabled
# test suite, and the named solver-parity pass. CI and pre-commit
# should run this.
check: fmt vet build race solver-race

clean:
	$(GO) clean ./...
	rm -f ihnetd ihdiag ihbench
