GO ?= go

.PHONY: all build vet fmt test race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; fail loudly if there are any.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The full gate: formatting, static analysis, build, and the race-enabled
# test suite. CI and pre-commit should run this.
check: fmt vet build race

clean:
	$(GO) clean ./...
	rm -f ihnetd ihdiag ihbench
