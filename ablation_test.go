package repro

import (
	"fmt"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/resmodel"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md §5 calls out.
// Each reports the quantity the choice trades on via b.ReportMetric,
// so `go test -bench Ablation -benchtime=1x -v` reads as a study.

// BenchmarkAblationQueueingModel compares congested end-to-end RTT
// with the utilization-driven queueing-latency model on vs off. Off,
// the simulator cannot express the paper's congestion anomalies at
// all — the entire E2/E3 phenomenology rides on this term.
func BenchmarkAblationQueueingModel(b *testing.B) {
	run := func(factor float64) simtime.Duration {
		e := simtime.NewEngine(1)
		topo := topology.TwoSocketServer()
		cfg := fabric.DefaultConfig()
		cfg.QueueingFactor = factor
		fab := fabric.New(topo, e, cfg)
		if _, err := workload.StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0"); err != nil {
			b.Fatal(err)
		}
		e.RunFor(100 * simtime.Microsecond)
		var rtt simtime.Duration
		_ = fab.SendTransaction(fabric.TxOptions{
			Tenant: "probe", Src: "external0", Dst: "socket0.dimm0_0", RespBytes: 64,
		}, func(r fabric.TxRecord) { rtt = r.RTT })
		e.Run()
		return rtt
	}
	var on, off simtime.Duration
	for i := 0; i < b.N; i++ {
		on = run(0.35)
		off = run(0)
	}
	b.ReportMetric(float64(on), "congested-rtt-ns")
	b.ReportMetric(float64(off), "no-queueing-rtt-ns")
	if on <= off {
		b.Fatalf("queueing model had no effect: %v vs %v", on, off)
	}
}

// BenchmarkAblationSuspectThreshold sweeps the localizer's suspicion
// threshold. Too low and healthy links shared with the failed path
// are accused (false positives); too high and partial degradations
// escape. The default 0.8 localizes with zero false accusations.
func BenchmarkAblationSuspectThreshold(b *testing.B) {
	victim := topology.LinkID("pcieswitch0->nic0")
	run := func(threshold float64) (suspects int, victimTop bool) {
		e := simtime.NewEngine(3)
		topo := topology.TwoSocketServer()
		fab := fabric.New(topo, e, fabric.DefaultConfig())
		cfg := anomaly.DefaultConfig()
		cfg.SuspectThreshold = threshold
		plat, err := anomaly.New(fab, anomaly.DefaultPairs(topo), cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = plat.Start()
		e.RunFor(2 * simtime.Millisecond)
		_ = fab.DegradeLink(victim, 0.2, 10*simtime.Microsecond)
		e.RunFor(simtime.Millisecond)
		ss := plat.Suspects()
		top := len(ss) > 0 &&
			(ss[0].Link == victim || ss[0].Link == topo.Link(victim).Reverse)
		return len(ss), top
	}
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.3, 0.8, 0.99} {
			n, top := run(th)
			b.ReportMetric(float64(n), fmt.Sprintf("suspects@%.2f", th))
			if th == 0.8 && (!top || n != 2) {
				b.Fatalf("default threshold: %d suspects, victim top=%v", n, top)
			}
		}
	}
}

// BenchmarkAblationPipeVsHose compares how much fabric the two
// resource models reserve for the same four-endpoint communication
// need (§3.2 Q1): pipes reserve per pair and overcommit when the
// traffic matrix is actually any-to-any bounded per endpoint; the
// hose bound is tighter on shared links.
func BenchmarkAblationPipeVsHose(b *testing.B) {
	topo := topology.TwoSocketServer()
	eps := []topology.CompID{"gpu0", "nic0", "gpu1", "nic1"}
	per := topology.GBps(4)
	var pipeTotal, hoseTotal topology.Rate
	for i := 0; i < b.N; i++ {
		// Pipe model: a full mesh of pairwise pipes, each sized for
		// the endpoint's full egress (the pessimistic translation an
		// any-to-any app must request).
		pipes := resmodel.NewReservation()
		for _, a := range eps {
			for _, c := range eps {
				if a == c {
					continue
				}
				p, err := topo.ShortestPath(a, c)
				if err != nil {
					b.Fatal(err)
				}
				pipes.AddPipe(p, per)
			}
		}
		// Hose model: per-endpoint aggregate guarantees.
		var hoses []resmodel.HoseDemand
		for _, a := range eps {
			hoses = append(hoses, resmodel.HoseDemand{Endpoint: a, Egress: per, Ingress: per})
		}
		hose, err := resmodel.ProvisionHose(topo, hoses)
		if err != nil {
			b.Fatal(err)
		}
		pipeTotal, hoseTotal = pipes.Total(), hose.Total()
	}
	b.ReportMetric(pipeTotal.GBpsValue(), "pipe-reserved-GBps")
	b.ReportMetric(hoseTotal.GBpsValue(), "hose-reserved-GBps")
	if hoseTotal >= pipeTotal {
		b.Fatalf("hose bound %v not tighter than pipe mesh %v", hoseTotal, pipeTotal)
	}
}

// BenchmarkAblationDestinationExpansion isolates where the
// topology-aware scheduler's pathway diversity actually comes from on
// tree-like hosts: expanding memory pseudo-destinations across
// channels and sockets. Pinning each pipe to the single
// lowest-latency DIMM (what an application hard-coding its buffer
// placement does) collapses admission to zero once that channel is
// full; AnyMemory admits everything via the UPI.
func BenchmarkAblationDestinationExpansion(b *testing.B) {
	topo := topology.TwoSocketServer()
	usage := sched.Usage{
		Capacity: make(map[topology.LinkID]topology.Rate),
		Free:     make(map[topology.LinkID]topology.Rate),
	}
	for _, l := range topo.Links() {
		usage.Capacity[l.ID] = l.Capacity
		usage.Free[l.ID] = l.Capacity
	}
	// Saturate socket-0 DRAM channel headroom as in E9.
	for _, l := range topo.Links() {
		from, to := topo.Component(l.From), topo.Component(l.To)
		if from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM && to.Socket == 0 {
			usage.Free[l.ID] = topology.GBps(5)
		}
	}
	build := func(dst topology.CompID) []intent.Target {
		var targets []intent.Target
		for i, src := range []topology.CompID{"gpu0", "nic0", "ssd0"} {
			targets = append(targets, intent.Target{
				Tenant: fabric.TenantID(fmt.Sprintf("t%d", i)),
				Src:    src, Dst: dst, Rate: topology.GBps(10),
			})
		}
		return targets
	}
	in, err := intent.New(topo, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	var pinned, expanded int
	for i := 0; i < b.N; i++ {
		schedule := func(dst topology.CompID) int {
			reqs, err := in.CompileAll(build(dst))
			if err != nil {
				b.Fatal(err)
			}
			out := sched.TopologyAware{}.Schedule(reqs, usage)
			return sched.Summarize(out, usage).Admitted
		}
		pinned = schedule("socket0.dimm0_0")
		expanded = schedule(intent.AnyMemory)
	}
	b.ReportMetric(float64(pinned), "admitted-pinned-dimm")
	b.ReportMetric(float64(expanded), "admitted-any-memory")
	if expanded <= pinned {
		b.Fatalf("destination expansion bought nothing: %d vs %d", expanded, pinned)
	}
}
