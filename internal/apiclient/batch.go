package apiclient

import (
	"context"
	"encoding/json"
	"errors"

	"repro/internal/fabric"
)

// BatchTarget is one intent target of a batch admit/migrate op.
type BatchTarget struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	RateGbps float64 `json:"rate_gbps"`
	MaxLatNs int64   `json:"max_latency_ns,omitempty"`
}

// BatchOp is one op of a POST /batch envelope. Op selects the kind
// ("admit", "evict", "migrate", "set-cap", "clear-cap", "degrade",
// "fail", "restore-link", "set-config", "workload"); the remaining
// fields are populated per op.
type BatchOp struct {
	Op        string        `json:"op"`
	Tenant    string        `json:"tenant,omitempty"`
	Targets   []BatchTarget `json:"targets,omitempty"`
	Avoid     []string      `json:"avoid,omitempty"`
	Link      string        `json:"link,omitempty"`
	CapBps    float64       `json:"cap_bps,omitempty"`
	LossFrac  float64       `json:"loss_frac,omitempty"`
	ExtraNs   int64         `json:"extra_ns,omitempty"`
	Component string        `json:"component,omitempty"`
	Key       string        `json:"key,omitempty"`
	Value     string        `json:"value,omitempty"`
	Workload  string        `json:"workload,omitempty"`
	Src       string        `json:"src,omitempty"`
	Dst       string        `json:"dst,omitempty"`
}

// BatchOpResult is the per-op outcome: "ok", "failed", or "skipped".
type BatchOpResult struct {
	Op     string `json:"op"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// BatchResult is the batch endpoint's response body: per-op results
// aligned with the request plus the observed solver settle count (1
// for any successfully coalesced batch).
type BatchResult struct {
	Results       []BatchOpResult `json:"results"`
	SolverSettles uint64          `json:"solver_settles"`
}

// Batch posts a multi-op mutation envelope. On partial application the
// daemon answers 409 with the result body inside the envelope details;
// Batch decodes it so callers get per-op outcomes alongside the error.
func (c *Client) Batch(ctx context.Context, ops []BatchOp) (BatchResult, error) {
	var out BatchResult
	err := c.Post(ctx, "/batch", map[string]any{"ops": ops}, &out)
	if err != nil {
		var e *Error
		if errors.As(err, &e) && len(e.Details) > 0 {
			_ = json.Unmarshal(e.Details, &out)
		}
	}
	return out, err
}

// SolverStats fetches the host's component-solver snapshot.
func (c *Client) SolverStats(ctx context.Context) (fabric.SolverStats, error) {
	var st fabric.SolverStats
	err := c.Get(ctx, "/fabric/solver", &st)
	return st, err
}

// FleetSolverStats is the typed /fleet/fabric/solver document: the
// per-host solver snapshots and their fleet-wide aggregate.
type FleetSolverStats struct {
	Hosts  map[string]fabric.SolverStats `json:"hosts"`
	Totals fabric.SolverStats            `json:"totals"`
}

// FleetSolverStats fetches and decodes /fleet/fabric/solver.
func (c *Client) FleetSolverStats(ctx context.Context) (FleetSolverStats, error) {
	var st FleetSolverStats
	err := c.Get(ctx, "/fleet/fabric/solver", &st)
	return st, err
}
