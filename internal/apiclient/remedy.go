package apiclient

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/remedy"
)

// Put sends in as a JSON body and decodes the response into out.
func (c *Client) Put(ctx context.Context, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return c.do(ctx, http.MethodPut, path, body, out)
}

// RemedyStatus is the typed /remedy/status document: the controller's
// cumulative accounting, headline MTTR percentiles (virtual time), and
// incident ledger.
type RemedyStatus struct {
	Enabled   bool              `json:"enabled"`
	Degraded  bool              `json:"degraded"`
	Stats     remedy.Stats      `json:"stats"`
	MTTRp50Us float64           `json:"mttr_p50_us"`
	MTTRp99Us float64           `json:"mttr_p99_us"`
	Incidents []remedy.Incident `json:"incidents"`
}

// FleetRemedyStatus is the typed /fleet/remedy/status document — the
// fleet-wide aggregate plus the per-host breakdown.
type FleetRemedyStatus struct {
	Enabled   bool                    `json:"enabled"`
	Degraded  bool                    `json:"degraded"`
	Stats     remedy.Stats            `json:"stats"`
	MTTRp50Us float64                 `json:"mttr_p50_us"`
	MTTRp99Us float64                 `json:"mttr_p99_us"`
	Hosts     map[string]RemedyStatus `json:"hosts"`
}

// RemedyStatus fetches and decodes /remedy/status.
func (c *Client) RemedyStatus(ctx context.Context) (RemedyStatus, error) {
	var st RemedyStatus
	err := c.Get(ctx, "/remedy/status", &st)
	return st, err
}

// FleetRemedyStatus fetches and decodes /fleet/remedy/status.
func (c *Client) FleetRemedyStatus(ctx context.Context) (FleetRemedyStatus, error) {
	var st FleetRemedyStatus
	err := c.Get(ctx, "/fleet/remedy/status", &st)
	return st, err
}

// RemedyPolicy fetches the active remediation policy.
func (c *Client) RemedyPolicy(ctx context.Context) (remedy.Policy, error) {
	var p remedy.Policy
	err := c.Get(ctx, "/remedy/policy", &p)
	return p, err
}

// SetRemedyPolicy replaces the remediation policy with a pre-encoded
// document (a policy file, say) and returns the policy the daemon
// actually installed.
func (c *Client) SetRemedyPolicy(ctx context.Context, doc []byte) (remedy.Policy, error) {
	var p remedy.Policy
	err := c.do(ctx, http.MethodPut, "/remedy/policy", doc, &p)
	return p, err
}
