package apiclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStreamDecodesFrames: the client parses id/event/data triples,
// skips keepalive comments, and sends the Last-Event-ID resume header.
func TestStreamDecodesFrames(t *testing.T) {
	var gotResume string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotResume = r.Header.Get("Last-Event-ID")
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, ": keepalive\n\n")
		fmt.Fprint(w, "id: 8\nevent: heartbeat\ndata: {\"seq\":3}\n\n")
		fmt.Fprint(w, "id: 9\nevent: flow-start\ndata: {\"seq\":4}\n\n")
	}))
	defer ts.Close()

	var got []StreamEvent
	err := New(ts.URL).Stream(context.Background(), "/events", 7, func(ev StreamEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotResume != "7" {
		t.Errorf("Last-Event-ID %q, want 7", gotResume)
	}
	if len(got) != 2 || got[0].ID != 8 || got[0].Type != "heartbeat" ||
		got[1].ID != 9 || got[1].Type != "flow-start" {
		t.Fatalf("frames %+v", got)
	}
	if string(got[0].Data) != `{"seq":3}` {
		t.Fatalf("data %q", got[0].Data)
	}
}

// TestStreamCallbackError propagates the consumer's error verbatim —
// how a watch command bails out on a malformed frame.
func TestStreamCallbackError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: heartbeat\ndata: {}\n\n")
	}))
	defer ts.Close()
	sentinel := errors.New("stop here")
	err := New(ts.URL).Stream(context.Background(), "/events", 0, func(StreamEvent) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v, want sentinel", err)
	}
}

// TestStreamErrorEnvelope: a non-2xx answer decodes as the typed API
// error, and a JSON endpoint masquerading as a stream is rejected.
func TestStreamErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"tracing disabled"}}`)
	}))
	defer ts.Close()
	err := New(ts.URL).Stream(context.Background(), "/events", 0, func(StreamEvent) error { return nil })
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Fatalf("err %v, want not_found envelope", err)
	}

	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{}`)
	}))
	defer plain.Close()
	if err := New(plain.URL).Stream(context.Background(), "/events", 0, nil); err == nil {
		t.Fatal("non-stream content type accepted")
	}
}

// TestStreamCanceledContextIsClean: Ctrl-C mid-watch is a normal exit,
// not an error.
func TestStreamCanceledContextIsClean(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- New(ts.URL).Stream(ctx, "/events", 0, func(StreamEvent) error { return nil })
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("canceled stream returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not return after cancel")
	}
}

// TestHealthTyped decodes the enriched health document including the
// per-subsystem map.
func TestHealthTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{
			"status":"ok","version":"(devel)","go_version":"go1.24",
			"virtual_time_ns":1000000,"tenants":2,
			"subsystems":{
				"fabric":{"status":"ok","active_flows":3},
				"obs_bus":{"status":"ok","subscribers":1,"published":42,"dropped":0}
			}
		}`)
	}))
	defer ts.Close()
	h, err := New(ts.URL).Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "(devel)" || h.VirtualTimeNs != 1000000 || h.Tenants != 2 {
		t.Fatalf("health %+v", h)
	}
	if h.Subsystems["fabric"].Status != "ok" {
		t.Fatalf("subsystems %+v", h.Subsystems)
	}
	if n := h.Subsystems["obs_bus"].Detail["published"]; n.String() != "42" {
		t.Fatalf("obs_bus detail %+v", h.Subsystems["obs_bus"].Detail)
	}
}
