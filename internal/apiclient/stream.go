package apiclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// StreamEvent is one server-sent event from a daemon event stream
// (/events or /fleet/events). ID is the bus sequence number — resume a
// dropped connection by passing the last one seen to Stream.
type StreamEvent struct {
	ID   uint64
	Type string // event kind name ("heartbeat", "fleet-epoch", ...)
	Data []byte // the JSON envelope (traceEventDTO shape)
}

// Stream subscribes to an SSE endpoint and invokes fn for every frame.
// afterSeq > 0 resumes after that bus sequence number (Last-Event-ID);
// 0 starts live. Stream blocks until the context is canceled, the
// server closes the stream, or fn returns an error (which Stream
// returns verbatim). A canceled context returns nil: for a watch
// command, Ctrl-C is a clean exit, not a failure.
func (c *Client) Stream(ctx context.Context, path string, afterSeq uint64, fn func(StreamEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1"+path, nil)
	if err != nil {
		return err
	}
	if afterSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(afterSeq, 10))
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return decodeError(resp.StatusCode, buf[:n])
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("%s is not an event stream (Content-Type %q)", path, ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var ev StreamEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Type != "" || len(ev.Data) > 0 {
				if err := fn(ev); err != nil {
					return err
				}
			}
			ev = StreamEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = append([]byte(nil), line[len("data: "):]...)
		}
		// Comment lines (keepalives) fall through untouched.
	}
	if ctx.Err() != nil {
		return nil
	}
	return sc.Err()
}

// SubsystemStatus is one entry of the health document's per-subsystem
// map. Fields beyond Status vary by subsystem and land in Detail.
type SubsystemStatus struct {
	Status string                 `json:"status"`
	Detail map[string]json.Number `json:"-"`
}

// UnmarshalJSON keeps the status field typed and funnels everything
// else (counts, sequence numbers) into Detail.
func (s *SubsystemStatus) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if v, ok := raw["status"]; ok {
		if err := json.Unmarshal(v, &s.Status); err != nil {
			return err
		}
	}
	s.Detail = make(map[string]json.Number)
	for k, v := range raw {
		if k == "status" {
			continue
		}
		var n json.Number
		if json.Unmarshal(v, &n) == nil {
			s.Detail[k] = n
		}
	}
	return nil
}

// Health is the typed /healthz document — shared by single-host and
// fleet daemons (fleet-only fields are zero on a host daemon and vice
// versa).
type Health struct {
	Status        string                     `json:"status"`
	Mode          string                     `json:"mode"` // "" (host) or "fleet"
	Version       string                     `json:"version"`
	GoVersion     string                     `json:"go_version"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	VirtualTimeNs int64                      `json:"virtual_time_ns"`
	Tenants       int                        `json:"tenants"`
	Hosts         int                        `json:"hosts"`
	Quarantined   int                        `json:"quarantined"`
	Subsystems    map[string]SubsystemStatus `json:"subsystems"`
}

// Health fetches and decodes /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.Get(ctx, "/healthz", &h)
	return h, err
}
