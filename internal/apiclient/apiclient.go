// Package apiclient is the typed Go client for the ihnetd control
// plane. It speaks the v1 contract — every path under /api/v1/, the
// single error envelope {"error":{"code","message"}} — and is the one
// place client-side HTTP mechanics live: ihctl and tests build on it
// instead of hand-rolling requests.
//
// Paths are given relative to the version prefix ("/topology", not
// "/api/v1/topology"), so a client survives a future version bump by
// changing one constant. Every call takes a context; cancel it and the
// request aborts client-side while the server, which watches the same
// disconnect, answers any later writes with its 499 envelope.
package apiclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client calls one ihnetd daemon.
type Client struct {
	base  string
	token string // bearer token sent on every request; "" sends none
	http  *http.Client
}

// New builds a client for the daemon at base ("http://host:port" or
// just "host:port").
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
}

// SetToken arms bearer-token auth: every subsequent request (streams
// included) carries "Authorization: Bearer <token>". An empty token
// clears it.
func (c *Client) SetToken(token string) { c.token = token }

// authorize stamps the bearer token on a request, if one is set.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// Error is a non-2xx response decoded from the v1 envelope. Responses
// from pre-envelope daemons (a bare {"error":"..."} or no JSON at all)
// degrade to an Error with an empty Code.
type Error struct {
	Status  int    // HTTP status code
	Code    string // typed envelope code ("conflict", "not_found", ...)
	Message string
	// Details is the envelope's endpoint-specific structured context
	// (the batch endpoint's per-op results, say); nil when absent.
	Details json.RawMessage
}

func (e *Error) Error() string {
	switch {
	case e.Code != "" && e.Message != "":
		return fmt.Sprintf("%s: %s (http %d)", e.Code, e.Message, e.Status)
	case e.Message != "":
		return fmt.Sprintf("%s (http %d)", e.Message, e.Status)
	default:
		return fmt.Sprintf("http %d", e.Status)
	}
}

// Get fetches path and decodes the response into out (see do for out's
// accepted forms).
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// Post sends in as a JSON body (nil means empty) and decodes the
// response into out.
func (c *Client) Post(ctx context.Context, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// PostRaw sends a pre-encoded JSON body (a snapshot file, say) and
// decodes the response into out.
func (c *Client) PostRaw(ctx context.Context, path string, body []byte, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

// Delete issues a DELETE and decodes the response into out.
func (c *Client) Delete(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodDelete, path, nil, out)
}

// do runs one request against the versioned API. out may be nil
// (discard the body), *[]byte (the raw body — snapshots, journals), or
// any JSON-decodable value.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+"/api/v1"+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp.StatusCode, data)
	}
	switch dst := out.(type) {
	case nil:
		return nil
	case *[]byte:
		*dst = data
		return nil
	default:
		return json.Unmarshal(data, out)
	}
}

// decodeError turns an error body into *Error: the v1 envelope first,
// the legacy flat {"error":"..."} shape second, status-only last.
func decodeError(status int, data []byte) error {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	e := &Error{Status: status}
	if json.Unmarshal(data, &env) == nil && len(env.Error) > 0 {
		var detail struct {
			Code    string          `json:"code"`
			Message string          `json:"message"`
			Details json.RawMessage `json:"details"`
		}
		if json.Unmarshal(env.Error, &detail) == nil && detail.Message != "" {
			e.Code, e.Message, e.Details = detail.Code, detail.Message, detail.Details
			return e
		}
		var msg string
		if json.Unmarshal(env.Error, &msg) == nil {
			e.Message = msg
		}
	}
	return e
}
