package apiclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestPathsAreVersioned(t *testing.T) {
	var gotPath, gotMethod string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotMethod = r.URL.Path, r.Method
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	var out map[string]bool
	if err := c.Get(context.Background(), "/topology", &out); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/api/v1/topology" || gotMethod != http.MethodGet || !out["ok"] {
		t.Fatalf("request was %s %s, decoded %v", gotMethod, gotPath, out)
	}
	if err := c.Delete(context.Background(), "/tenants/x", nil); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/api/v1/tenants/x" || gotMethod != http.MethodDelete {
		t.Fatalf("delete was %s %s", gotMethod, gotPath)
	}
}

// TestBareHostBase: "host:port" without a scheme works, matching
// ihctl's -addr flag.
func TestBareHostBase(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	c := New(ts.Listener.Addr().String())
	if err := c.Get(context.Background(), "/healthz", nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":{"code":"conflict","message":"no capacity"}}`))
	}))
	defer ts.Close()
	err := New(ts.URL).Post(context.Background(), "/tenants", map[string]string{"tenant": "kv"}, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T %v, want *Error", err, err)
	}
	if apiErr.Status != http.StatusConflict || apiErr.Code != "conflict" || apiErr.Message != "no capacity" {
		t.Fatalf("decoded %+v", apiErr)
	}
}

// TestLegacyFlatError: a pre-envelope daemon's {"error":"..."} shape
// still yields a useful message.
func TestLegacyFlatError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad micros"}`))
	}))
	defer ts.Close()
	err := New(ts.URL).Get(context.Background(), "/advance", nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T, want *Error", err)
	}
	if apiErr.Code != "" || apiErr.Message != "bad micros" || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("decoded %+v", apiErr)
	}
}

func TestNonJSONError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer ts.Close()
	err := New(ts.URL).Get(context.Background(), "/report", nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err %v", err)
	}
}

// TestRawOut: *[]byte receives the body verbatim — how snapshots and
// journals are downloaded.
func TestRawOut(t *testing.T) {
	const doc = `{"format":"ihnet-snapshot"}` + "\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(doc))
	}))
	defer ts.Close()
	var raw []byte
	if err := New(ts.URL).Post(context.Background(), "/snapshot", nil, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) != doc {
		t.Fatalf("raw body %q", raw)
	}
}

func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := New(ts.URL).Get(ctx, "/report", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}
