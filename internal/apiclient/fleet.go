package apiclient

import (
	"context"

	"repro/internal/fleet"
)

// FleetShards fetches and decodes /fleet/shards: the sharded engine's
// per-shard stats (clock, epochs, quarantine, roll-up refolds) and the
// fleet-wide cache counters.
func (c *Client) FleetShards(ctx context.Context) (fleet.ShardStats, error) {
	var st fleet.ShardStats
	err := c.Get(ctx, "/fleet/shards", &st)
	return st, err
}
