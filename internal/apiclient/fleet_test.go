package apiclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/fleet"
)

// TestFleetShards: the typed accessor hits /fleet/shards and decodes
// the engine's own wire shape (the handler marshals fleet.ShardStats
// directly, so an encode/decode round trip is the whole contract).
func TestFleetShards(t *testing.T) {
	want := fleet.ShardStats{
		Shards: []fleet.ShardStat{
			{Index: 0, Hosts: 64, VirtualTimeNs: 4_000_000, InnerEpochs: 4, HostsAdvanced: 256, RollupRefolds: 2},
			{Index: 1, Hosts: 64, Quarantined: 1, VirtualTimeNs: 4_000_000, InnerEpochs: 4, HostsAdvanced: 252, RollupRefolds: 1, Dirty: true},
		},
		OuterEpochs:       1,
		InnerEpochNs:      1_000_000,
		OuterEvery:        4,
		WorkersPerShard:   2,
		RollupCacheHits:   7,
		RollupCacheMisses: 3,
	}
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := New(ts.URL).FleetShards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/api/v1/fleet/shards" {
		t.Errorf("path %q, want /api/v1/fleet/shards", gotPath)
	}
	if len(got.Shards) != 2 || got.Shards[1].Quarantined != 1 || !got.Shards[1].Dirty ||
		got.OuterEpochs != 1 || got.OuterEvery != 4 || got.WorkersPerShard != 2 ||
		got.RollupCacheHits != 7 || got.RollupCacheMisses != 3 {
		t.Fatalf("decoded %+v", got)
	}
}
