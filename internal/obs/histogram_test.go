package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64() * 40) // log-uniform over ~17 decades
		idx := bucketIndex(v)
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if v < lo || v > hi {
			t.Fatalf("value %g landed in bucket %d [%g, %g]", v, idx, lo, hi)
		}
		// Relative width bound: (hi-lo)/lo <= 1/subBuckets for v >= 1.
		if v >= 1 && !math.IsInf(hi, 1) && (hi-lo)/lo > 1.0/subBuckets+1e-9 {
			t.Fatalf("bucket %d too wide: [%g, %g]", idx, lo, hi)
		}
	}
	// Bounds are monotone across the whole range.
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i-1) > bucketLower(i)+1e-9 {
			t.Fatalf("bucket bounds not monotone at %d", i)
		}
	}
	if bucketIndex(0) != 0 || bucketIndex(0.5) != 0 {
		t.Error("sub-1 values must land in the underflow bucket")
	}
	if bucketIndex(math.Inf(1)) != numBuckets-1 {
		t.Error("+Inf must land in the overflow bucket")
	}
}

// TestQuantileAccuracy checks the estimation bound the geometry
// promises: relative error at most 1/subBuckets against the exact
// empirical quantile, across distributions.
func TestQuantileAccuracy(t *testing.T) {
	const n = 50000
	const tolerance = 1.0/subBuckets + 0.001
	distributions := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return 1 + r.Float64()*1e6 },
		"exponential": func(r *rand.Rand) float64 { return 100 * r.ExpFloat64() },
		"log-normal":  func(r *rand.Rand) float64 { return math.Exp(10 + 2*r.NormFloat64()) },
	}
	for name, gen := range distributions {
		rng := rand.New(rand.NewSource(7))
		h := NewHistogram()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = gen(rng)
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := vals[int(math.Ceil(q*float64(n)))-1]
			got := h.Quantile(q)
			relErr := math.Abs(got-exact) / exact
			if relErr > tolerance {
				t.Errorf("%s q%g: got %g, exact %g, rel err %.4f > %.4f",
					name, q, got, exact, relErr, tolerance)
			}
		}
		if h.Count() != n {
			t.Errorf("%s: count %d, want %d", name, h.Count(), n)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-5)          // clamps to 0
	h.Observe(math.NaN())  // clamps to 0
	h.Observe(math.Inf(1)) // overflow bucket
	if h.Count() != 3 {
		t.Errorf("count %d, want 3", h.Count())
	}
	if q := h.Quantile(0.1); q > 1 {
		t.Errorf("q0.1 = %g, want within underflow bucket", q)
	}
	h2 := NewHistogram()
	for i := 0; i < 100; i++ {
		h2.Observe(1000)
	}
	if got := h2.Quantile(0.5); math.Abs(got-1000)/1000 > 1.0/subBuckets {
		t.Errorf("constant stream q0.5 = %g, want ~1000", got)
	}
	if got := h2.Mean(); got != 1000 {
		t.Errorf("mean %g, want 1000", got)
	}
}
