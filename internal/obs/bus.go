package obs

import (
	"sync"
)

// BusEvent is one published event wrapped with the bus's own
// monotonically increasing sequence number. Per-host tracer sequence
// numbers collide once a fleet fans events into one stream, so the
// bus stamps its own — that number is what SSE uses as the event id
// and what Last-Event-ID resume is relative to.
type BusEvent struct {
	Seq   uint64
	Event Event
}

// Bus fans events out to subscribers without ever blocking the
// publisher. Each subscriber owns a fixed-size ring: when a consumer
// stalls, its oldest events are overwritten and a drop counter
// increments — the simulation hot path pays one short mutex and some
// copies per subscriber, never a wait. A bounded replay ring lets a
// reconnecting subscriber resume from a recent sequence number.
//
// The zero Bus is not usable; NewBus allocates everything up front so
// Publish performs no allocation.
type Bus struct {
	mu      sync.Mutex
	seq     uint64
	ring    []BusEvent // replay ring, indexed by seq % len
	subs    []*Subscription
	forward []forwardTarget

	drop    *Counter // counts ring-overwrite drops across all subscribers
	dropped uint64
}

type forwardTarget struct {
	parent *Bus
	host   string
}

// NewBus returns a bus retaining up to capacity events for resume.
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = 1
	}
	return &Bus{ring: make([]BusEvent, capacity)}
}

// SetDropCounter wires the counter incremented whenever any
// subscriber's ring overwrites an undelivered event (the exported
// obs_sse_dropped_total).
func (b *Bus) SetDropCounter(c *Counter) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.drop = c
	b.mu.Unlock()
}

// ForwardTo mirrors every event published on b into parent, stamping
// Host so the fleet stream can say which host each event came from.
// Forwarding is set up once at wiring time; cycles are the caller's
// responsibility to avoid.
func (b *Bus) ForwardTo(parent *Bus, host string) {
	if b == nil || parent == nil {
		return
	}
	b.mu.Lock()
	b.forward = append(b.forward, forwardTarget{parent: parent, host: host})
	b.mu.Unlock()
}

// Publish stamps ev with the next bus sequence number and delivers it
// to every subscriber ring. It never blocks and never allocates: slow
// subscribers lose their oldest event (counted), fast ones are nudged
// through an already-buffered channel.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	be := BusEvent{Seq: b.seq, Event: ev}
	b.ring[b.seq%uint64(len(b.ring))] = be
	for _, s := range b.subs {
		if s.push(be) {
			b.dropped++
			b.drop.Inc()
		}
	}
	nf := len(b.forward)
	var fwd [4]forwardTarget
	n := copy(fwd[:], b.forward)
	b.mu.Unlock()
	// Forward outside the lock: parent.Publish takes the parent's
	// mutex and must not nest inside ours.
	for i := 0; i < n; i++ {
		fev := ev
		if fev.Host == "" {
			fev.Host = fwd[i].host
		}
		fwd[i].parent.Publish(fev)
	}
	if nf > len(fwd) {
		// More than fits the stack copy — rare wiring; take the slow path.
		b.mu.Lock()
		rest := append([]forwardTarget(nil), b.forward[n:]...)
		b.mu.Unlock()
		for _, t := range rest {
			fev := ev
			if fev.Host == "" {
				fev.Host = t.host
			}
			t.parent.Publish(fev)
		}
	}
}

// Seq returns the sequence number of the most recently published
// event (0 before the first publish).
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns the total events lost to slow subscribers.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Subscribers returns the number of live subscriptions.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe registers a subscriber with a ring of the given capacity,
// starting from the next published event.
func (b *Bus) Subscribe(capacity int) *Subscription {
	return b.SubscribeFrom(capacity, ^uint64(0))
}

// SubscribeFrom registers a subscriber and pre-loads any retained
// events with sequence numbers greater than afterSeq (Last-Event-ID
// resume). Pass ^uint64(0) to start fresh. Events older than the
// replay ring are gone; the subscriber observes the gap through
// sequence numbers, not an error.
func (b *Bus) SubscribeFrom(capacity int, afterSeq uint64) *Subscription {
	if b == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 1
	}
	s := &Subscription{
		bus:   b,
		ring:  make([]BusEvent, capacity),
		ready: make(chan struct{}, 1),
	}
	b.mu.Lock()
	if afterSeq < b.seq {
		// Replay retained events (oldest first) with seq > afterSeq.
		n := uint64(len(b.ring))
		start := uint64(1)
		if b.seq > n {
			start = b.seq - n + 1
		}
		if afterSeq+1 > start {
			start = afterSeq + 1
		}
		for q := start; q <= b.seq; q++ {
			be := b.ring[q%n]
			if be.Seq == q {
				s.push(be)
			}
		}
	}
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	for i, cur := range b.subs {
		if cur == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// Subscription is one subscriber's bounded view of the bus. Drain and
// Ready are safe to use from a single consumer goroutine while
// publishers keep running.
type Subscription struct {
	bus   *Bus
	ready chan struct{}

	mu      sync.Mutex
	ring    []BusEvent
	start   int
	n       int
	dropped uint64
	closed  bool
}

// push appends be, overwriting the oldest undelivered event when
// full. Returns true when an event was dropped.
func (s *Subscription) push(be BusEvent) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	var drop bool
	if s.n == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.n--
		s.dropped++
		drop = true
	}
	s.ring[(s.start+s.n)%len(s.ring)] = be
	s.n++
	s.mu.Unlock()
	select {
	case s.ready <- struct{}{}:
	default:
	}
	return drop
}

// Ready returns a channel that receives a nudge when events are
// pending. One nudge can cover many events: always Drain after it.
func (s *Subscription) Ready() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.ready
}

// Drain returns and removes all pending events, oldest first.
func (s *Subscription) Drain() []BusEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	out := make([]BusEvent, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(s.start+i)%len(s.ring)]
	}
	s.start, s.n = 0, 0
	return out
}

// Dropped returns how many events this subscriber lost to overwrite.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close unregisters the subscription. Pending events are discarded.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.bus.unsubscribe(s)
}
