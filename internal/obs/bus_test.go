package obs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

func publishN(b *Bus, n int) {
	for i := 0; i < n; i++ {
		b.Publish(Event{Kind: KindHeartbeat, Virtual: simtime.Time(i)})
	}
}

// TestBusFanOutOrdering: every subscriber sees every event, in
// publish order, with dense bus sequence numbers.
func TestBusFanOutOrdering(t *testing.T) {
	b := NewBus(64)
	s1 := b.Subscribe(64)
	s2 := b.Subscribe(64)
	publishN(b, 50)
	for _, s := range []*Subscription{s1, s2} {
		evs := s.Drain()
		if len(evs) != 50 {
			t.Fatalf("drained %d events, want 50", len(evs))
		}
		for i, be := range evs {
			if be.Seq != uint64(i+1) {
				t.Fatalf("event %d has seq %d, want %d", i, be.Seq, i+1)
			}
		}
		if s.Dropped() != 0 {
			t.Fatalf("dropped %d, want 0", s.Dropped())
		}
	}
}

// TestBusSlowSubscriberDrops: a stalled subscriber keeps only the
// newest capacity events; the overwritten ones are counted on both
// the subscription and the wired drop counter.
func TestBusSlowSubscriberDrops(t *testing.T) {
	b := NewBus(8)
	drop := &Counter{}
	b.SetDropCounter(drop)
	s := b.Subscribe(4)
	publishN(b, 100)
	if got := s.Dropped(); got != 96 {
		t.Fatalf("subscription dropped %d, want 96", got)
	}
	if got := drop.Value(); got != 96 {
		t.Fatalf("drop counter %d, want 96", got)
	}
	evs := s.Drain()
	if len(evs) != 4 {
		t.Fatalf("drained %d, want 4", len(evs))
	}
	for i, be := range evs {
		if want := uint64(97 + i); be.Seq != want {
			t.Fatalf("kept event %d has seq %d, want %d (newest survive)", i, be.Seq, want)
		}
	}
}

// TestBusResume: SubscribeFrom replays retained events after the
// given sequence; events older than the replay ring are simply gone,
// visible as a sequence gap.
func TestBusResume(t *testing.T) {
	b := NewBus(16)
	publishN(b, 10)
	s := b.SubscribeFrom(32, 4)
	evs := s.Drain()
	if len(evs) != 6 {
		t.Fatalf("resume drained %d events, want 6 (seqs 5..10)", len(evs))
	}
	if evs[0].Seq != 5 || evs[len(evs)-1].Seq != 10 {
		t.Fatalf("resume seq range [%d, %d], want [5, 10]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	s.Close()

	// Ask for history beyond the ring: only the retained tail exists.
	publishN(b, 30) // seq now 40, ring holds 25..40
	s2 := b.SubscribeFrom(64, 0)
	evs = s2.Drain()
	if len(evs) != 16 {
		t.Fatalf("deep resume drained %d, want 16 (ring capacity)", len(evs))
	}
	if evs[0].Seq != 25 {
		t.Fatalf("deep resume starts at %d, want 25", evs[0].Seq)
	}
}

// TestBusSubscribeCloseConcurrent hammers publish, drain, subscribe
// and close from many goroutines — the race detector is the real
// assertion here.
func TestBusSubscribeCloseConcurrent(t *testing.T) {
	b := NewBus(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				b.Publish(Event{Kind: KindHeartbeat, Value: float64(i)})
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := b.Subscribe(8)
				select {
				case <-s.Ready():
				case <-stop:
				}
				s.Drain()
				s.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := b.Subscribe(2) // stalled: never drains
		defer s.Close()
		time.Sleep(10 * time.Millisecond)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if b.Subscribers() != 0 {
		t.Fatalf("%d subscribers leaked", b.Subscribers())
	}
}

// TestStalledSubscriberNeverBlocksEmit is the acceptance-criterion
// unit: a tracer wired to a bus with a permanently stalled subscriber
// keeps emitting at full speed — every emission lands in the trace
// ring, the publisher never waits, and the drop counter accounts for
// the subscriber's loss.
func TestStalledSubscriberNeverBlocksEmit(t *testing.T) {
	o := New(4096)
	stalled := o.Bus.Subscribe(8) // never drained
	defer stalled.Close()

	const emits = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < emits; i++ {
			o.Tracer.Emit(Event{Kind: KindRateRecompute, Value: float64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("emitter blocked behind a stalled subscriber")
	}
	if got := o.Tracer.Total(); got != emits {
		t.Fatalf("tracer recorded %d events, want %d", got, emits)
	}
	wantDrops := uint64(emits - 8)
	dropped := o.Registry.Snapshot("t").Counters["obs_sse_dropped_total"]
	if dropped != wantDrops || stalled.Dropped() != wantDrops {
		t.Fatalf("drops: counter %d, subscription %d, want %d",
			dropped, stalled.Dropped(), wantDrops)
	}
}

// TestTracerSpanStamping: events emitted inside BeginSpan/EndSpan
// carry the span; EndSpan observes wall latency into the wired
// histogram.
func TestTracerSpanStamping(t *testing.T) {
	o := New(64)
	sub := o.Bus.Subscribe(16)
	o.Tracer.BeginSpan("j42")
	o.Tracer.Emit(Event{Kind: KindCapSet, Subject: "x"})
	o.Tracer.Emit(Event{Kind: KindCapClear, Subject: "x"})
	o.Tracer.EndSpan()
	o.Tracer.Emit(Event{Kind: KindHeartbeat})

	evs := sub.Drain()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Event.Span != "j42" || evs[1].Event.Span != "j42" {
		t.Fatalf("span not stamped: %q %q", evs[0].Event.Span, evs[1].Event.Span)
	}
	if evs[2].Event.Span != "" {
		t.Fatalf("span leaked past EndSpan: %q", evs[2].Event.Span)
	}
	lat := o.Registry.Snapshot("t").Histograms["cmd_effect_latency_us"]
	if lat.Count != 1 {
		t.Fatalf("cmd_effect_latency_us count = %d, want 1", lat.Count)
	}
}

// BenchmarkBusPublish measures the publish hot path with one stalled
// subscriber — the worst case the simulation thread can hit. Budget:
// 0 allocs/op.
func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus(4096)
	sub := bus.Subscribe(1024) // never drained: constant overwrite
	defer sub.Close()
	ev := Event{Kind: KindRateRecompute, Subject: "fabric", Value: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkBusPublishFanout8 measures fan-out overhead with eight
// subscribers. Budget: 0 allocs/op.
func BenchmarkBusPublishFanout8(b *testing.B) {
	bus := NewBus(4096)
	for i := 0; i < 8; i++ {
		defer bus.Subscribe(1024).Close()
	}
	ev := Event{Kind: KindRateRecompute, Subject: "fabric", Value: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}
