package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
)

// EventKind is the type of a traced event.
type EventKind uint8

// Event taxonomy. Subjects are free-form identifiers scoped by kind
// (flow ID, link ID, tenant, heartbeat pair).
const (
	KindUnknown EventKind = iota
	// KindFlowAdmit marks a tenant admission through the manager's
	// compile -> schedule -> arbitrate pipeline.
	KindFlowAdmit
	// KindFlowStart marks a flow installed on the fabric.
	KindFlowStart
	// KindFlowDone marks a sized flow completing.
	KindFlowDone
	// KindFlowRemove marks a flow removed before completion.
	KindFlowRemove
	// KindRateRecompute marks one global max-min rate recomputation;
	// Value is the number of active flows, WallDur the CPU cost.
	KindRateRecompute
	// KindCapSet marks the arbiter installing or changing a
	// per-(link,tenant) rate cap; Value is the cap in bytes/second.
	KindCapSet
	// KindCapClear marks the arbiter clearing a cap.
	KindCapClear
	// KindSchedDecision marks one scheduler pathway decision; Detail
	// carries the chosen pathway or the rejection reason.
	KindSchedDecision
	// KindAnomalyDetect marks an anomaly detection incident.
	KindAnomalyDetect
	// KindHeartbeat marks one heartbeat round; Value is probes sent.
	KindHeartbeat
	// KindLinkFail marks a hard link failure injection.
	KindLinkFail
	// KindLinkDegrade marks a silent link degradation injection.
	KindLinkDegrade
	// KindLinkRestore marks a link returning to health (failure and
	// degradation cleared) — the recovery edge the anomaly platform's
	// clear path is audited against.
	KindLinkRestore
	// KindTenantEvict marks a tenant eviction.
	KindTenantEvict
	// KindFleetEpoch marks one fleet epoch barrier crossed; Value is
	// the number of hosts advanced, WallDur the epoch's wall cost.
	KindFleetEpoch
	// KindHostQuarantine marks a host being fenced out of the epoch
	// loop (panic quarantine or operator action).
	KindHostQuarantine
	// KindAnomalyCleared marks a previously alerted heartbeat pair
	// returning to health — the recovery edge the remediation loop's
	// MTTR accounting closes on.
	KindAnomalyCleared
	// KindRemedyPlan marks the remediation controller choosing an
	// action for an incident; Detail carries the candidate scoring.
	KindRemedyPlan
	// KindRemedyAct marks the controller executing a remediation
	// action through the journaled session path.
	KindRemedyAct
	// KindRemedyResolve marks an incident's invariant restored; Value
	// is the measured MTTR in microseconds of virtual time.
	KindRemedyResolve
)

var kindNames = [...]string{
	KindUnknown:        "unknown",
	KindFlowAdmit:      "flow-admit",
	KindFlowStart:      "flow-start",
	KindFlowDone:       "flow-done",
	KindFlowRemove:     "flow-remove",
	KindRateRecompute:  "rate-recompute",
	KindCapSet:         "cap-set",
	KindCapClear:       "cap-clear",
	KindSchedDecision:  "sched-decision",
	KindAnomalyDetect:  "anomaly-detect",
	KindHeartbeat:      "heartbeat",
	KindLinkFail:       "link-fail",
	KindLinkDegrade:    "link-degrade",
	KindLinkRestore:    "link-restore",
	KindTenantEvict:    "tenant-evict",
	KindFleetEpoch:     "fleet-epoch",
	KindHostQuarantine: "host-quarantine",
	KindAnomalyCleared: "anomaly-cleared",
	KindRemedyPlan:     "remedy-plan",
	KindRemedyAct:      "remedy-act",
	KindRemedyResolve:  "remedy-resolve",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves an event-kind name ("flow-start"); KindUnknown
// when unrecognized.
func KindByName(s string) EventKind {
	for k, n := range kindNames {
		if n == s {
			return EventKind(k)
		}
	}
	return KindUnknown
}

// Event is one traced occurrence, stamped with both clocks: Virtual is
// the simulation instant it models, Wall the process time it was
// recorded (unix nanoseconds) — the pairing that lets a trace answer
// both "what did the simulated host do" and "what did it cost us".
type Event struct {
	Seq     uint64
	Virtual simtime.Time
	Wall    int64
	Kind    EventKind
	Subject string
	Detail  string
	// Value is kind-specific (rate, probe count, flow count).
	Value float64
	// WallDur is the real CPU cost of the traced operation, for
	// kinds that measure one (e.g. rate recomputations).
	WallDur time.Duration
	// Span correlates the event with the journaled command that
	// caused it: effects emitted while a command applies inherit the
	// command's span ID, so a trace can be folded into causal
	// command -> effect flows.
	Span string
	// Host names the originating host once events from many hosts fan
	// into one fleet stream; empty on single-host buses.
	Host string
}

// Tracer is a bounded ring buffer of events. Emission takes one short
// mutex; when the buffer is full the oldest events are overwritten
// (Dropped counts them). Disabled tracers cost one atomic load per
// call site.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	buf     []Event
	total   uint64 // events ever emitted

	// span is the active command span: events emitted between
	// BeginSpan and EndSpan are stamped with it.
	span      string
	spanStart int64 // wall nanos at BeginSpan

	// bus, when set, receives a copy of every recorded event (the
	// live streaming fan-out). spanLatency, when set, observes the
	// wall microseconds between BeginSpan and EndSpan
	// (cmd_effect_latency_us).
	bus         atomic.Pointer[Bus]
	spanLatency atomic.Pointer[Histogram]
}

// NewTracer returns an enabled tracer retaining up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	t := &Tracer{buf: make([]Event, capacity)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether Emit records anything. Hot paths should
// check it before building event strings.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled toggles recording.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetBus wires a fan-out bus: every event recorded after this call is
// also published there. Pass nil to detach.
func (t *Tracer) SetBus(b *Bus) {
	if t != nil {
		t.bus.Store(b)
	}
}

// Bus returns the attached fan-out bus, if any.
func (t *Tracer) Bus() *Bus {
	if t == nil {
		return nil
	}
	return t.bus.Load()
}

// SetSpanLatency wires the histogram that EndSpan observes span wall
// durations into, in microseconds.
func (t *Tracer) SetSpanLatency(h *Histogram) {
	if t != nil {
		t.spanLatency.Store(h)
	}
}

// BeginSpan opens a command span: until EndSpan, every emitted event
// carries id. Spans come from the journal (one per command), so they
// never nest — a second BeginSpan simply replaces the first.
func (t *Tracer) BeginSpan(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.span = id
	t.spanStart = time.Now().UnixNano()
	t.mu.Unlock()
}

// EndSpan closes the active span and observes its wall duration into
// the span-latency histogram (microseconds) — the command-to-effect
// latency the remediation loop's MTTR accounting builds on.
func (t *Tracer) EndSpan() {
	if t == nil {
		return
	}
	t.mu.Lock()
	open := t.span != ""
	start := t.spanStart
	t.span = ""
	t.spanStart = 0
	t.mu.Unlock()
	if !open {
		return
	}
	if h := t.spanLatency.Load(); h != nil {
		h.Observe(float64(time.Now().UnixNano()-start) / 1e3)
	}
}

// Emit records one event. Nil tracers and disabled tracers are no-ops.
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.enabled.Load() {
		return
	}
	ev.Wall = time.Now().UnixNano()
	t.mu.Lock()
	if ev.Span == "" {
		ev.Span = t.span
	}
	ev.Seq = t.total
	t.buf[t.total%uint64(len(t.buf))] = ev
	t.total++
	t.mu.Unlock()
	if b := t.bus.Load(); b != nil {
		b.Publish(ev)
	}
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events have been overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Snapshot returns the retained events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capacity := uint64(len(t.buf))
	if n > capacity {
		out := make([]Event, 0, capacity)
		start := n % capacity // oldest retained slot
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
		return out
	}
	out := make([]Event, n)
	copy(out, t.buf[:n])
	return out
}
