package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func TestTracerWraparoundAndOrdering(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: KindFlowStart, Virtual: simtime.Time(i * 100)})
	}
	if got := tr.Total(); got != 20 {
		t.Errorf("Total = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("Snapshot len = %d, want 8", len(snap))
	}
	for i, ev := range snap {
		wantSeq := uint64(12 + i)
		if ev.Seq != wantSeq {
			t.Errorf("snap[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Virtual != simtime.Time(int64(wantSeq)*100) {
			t.Errorf("snap[%d].Virtual = %v, want %v", i, ev.Virtual, wantSeq*100)
		}
	}
}

func TestTracerUnderCapacity(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: KindHeartbeat})
	}
	snap := tr.Snapshot()
	if len(snap) != 5 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", len(snap), tr.Dropped())
	}
	for i, ev := range snap {
		if ev.Seq != uint64(i) {
			t.Errorf("snap[%d].Seq = %d", i, ev.Seq)
		}
		if ev.Wall == 0 {
			t.Errorf("snap[%d] missing wall stamp", i)
		}
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("Enabled after SetEnabled(false)")
	}
	tr.Emit(Event{Kind: KindFlowStart})
	if tr.Total() != 0 {
		t.Error("disabled tracer recorded an event")
	}
	var nilT *Tracer
	nilT.Emit(Event{}) // must not crash
	if nilT.Enabled() || nilT.Total() != 0 || nilT.Snapshot() != nil {
		t.Error("nil tracer not inert")
	}
}

// TestTracerConcurrency: parallel emitters with concurrent snapshots,
// meaningful under -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: KindRateRecompute, Value: float64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := tr.Snapshot()
			for j := 1; j < len(snap); j++ {
				if snap[j].Seq != snap[j-1].Seq+1 {
					t.Errorf("snapshot not contiguous at %d", j)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if tr.Total() != 4000 {
		t.Errorf("Total = %d, want 4000", tr.Total())
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindFlowAdmit; k <= KindTenantEvict; k++ {
		if got := KindByName(k.String()); got != k {
			t.Errorf("KindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindByName("nope") != KindUnknown {
		t.Error("unknown name must map to KindUnknown")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Event{Kind: KindFlowStart, Virtual: 1000, Subject: "flow:1", Detail: "kv"})
	tr.Emit(Event{Kind: KindRateRecompute, Virtual: 2000, Value: 3, WallDur: 1500})
	tr.Emit(Event{Kind: KindAnomalyDetect, Virtual: 3000, Subject: "a~b"})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var instants, slices, metas int
	threads := map[string]bool{}
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "i":
			instants++
		case "X":
			slices++
			if ev["dur"].(float64) <= 0 {
				t.Error("complete event without duration")
			}
		case "M":
			metas++
			if ev["name"] == "thread_name" {
				threads[ev["args"].(map[string]any)["name"].(string)] = true
			}
		}
	}
	if instants != 2 || slices != 1 {
		t.Errorf("instants=%d slices=%d, want 2/1", instants, slices)
	}
	for _, want := range []string{"fabric", "anomaly"} {
		if !threads[want] {
			t.Errorf("missing thread metadata for %q", want)
		}
	}
}
