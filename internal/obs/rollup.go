package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Snapshot is a mergeable point-in-time export of a Registry. It is
// the unit of hierarchical roll-up: every host exports one, and a
// fleet folds them into a single snapshot whose merge semantics are
// fixed per metric type — counters sum, gauges are last-write-wins
// (tagged with the source that won), and log-linear histograms merge
// bucket-wise, which preserves the 1/subBuckets bounded relative
// quantile error because every host shares the same bucket geometry.
//
// JSON encoding is deterministic: map keys serialize sorted, and no
// field depends on wall-clock state unless the underlying metric does
// (callers who need byte-identical roll-ups across runs filter
// wall-derived families out first — see Filter).
type Snapshot struct {
	// Source names the registry this snapshot came from (host name);
	// merged snapshots carry the fold's own name, e.g. "fleet".
	Source string `json:"source,omitempty"`
	// Hosts counts how many leaf snapshots were folded in (1 for a
	// leaf). Per-host averages divide by this.
	Hosts int `json:"hosts"`

	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue        `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// GaugeValue is one gauge reading plus the source it was read from,
// so a merged snapshot can still say whose value survived.
type GaugeValue struct {
	Value  float64 `json:"value"`
	Source string  `json:"source,omitempty"`
}

// BucketCount is one occupied histogram bucket, addressed by its
// index in the shared log-linear geometry (see bucketLower /
// bucketUpper). Sparse encoding: empty buckets are omitted.
type BucketCount struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// HistogramSnapshot is a sparse, mergeable copy of a Histogram.
// Buckets are sorted by index.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's occupied buckets sparsely.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var hs HistogramSnapshot
	lo, hi := h.span()
	for i := lo; i < hi; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, BucketCount{Index: i, Count: n})
		}
	}
	hs.Count = h.Count()
	hs.Sum = h.Sum()
	return hs
}

// Merge folds other into hs bucket-wise. Because every histogram in
// the system shares one bucket geometry, the merged histogram is
// exactly what a single histogram observing both streams would hold —
// quantile error bounds carry over unchanged.
func (hs *HistogramSnapshot) Merge(other HistogramSnapshot) {
	hs.Count += other.Count
	hs.Sum += other.Sum
	if len(other.Buckets) == 0 {
		return
	}
	if len(hs.Buckets) == 0 {
		hs.Buckets = append([]BucketCount(nil), other.Buckets...)
		return
	}
	merged := make([]BucketCount, 0, len(hs.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(hs.Buckets) && j < len(other.Buckets) {
		a, b := hs.Buckets[i], other.Buckets[j]
		switch {
		case a.Index < b.Index:
			merged = append(merged, a)
			i++
		case a.Index > b.Index:
			merged = append(merged, b)
			j++
		default:
			merged = append(merged, BucketCount{Index: a.Index, Count: a.Count + b.Count})
			i++
			j++
		}
	}
	merged = append(merged, hs.Buckets[i:]...)
	merged = append(merged, other.Buckets[j:]...)
	hs.Buckets = merged
}

// Quantile estimates the q-quantile with the same interpolation and
// the same 1/subBuckets relative error bound as Histogram.Quantile.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	total := hs.Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for _, b := range hs.Buckets {
		if cum+b.Count >= target {
			lo, hi := bucketLower(b.Index), bucketUpper(b.Index)
			if b.Index >= numBuckets-1 {
				return lo
			}
			frac := float64(target-cum) / float64(b.Count)
			return lo + (hi-lo)*frac
		}
		cum += b.Count
	}
	return bucketLower(numBuckets - 1)
}

// Mean returns the average observation, or 0 when empty.
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / float64(hs.Count)
}

// Snapshot exports every registered metric, tagged with source.
// CounterVec children flatten to `name{label="value"}` keys so they
// merge by summation like plain counters. Gauges (including computed
// GaugeFuncs, evaluated here) carry the source tag for last-write-wins
// provenance.
func (r *Registry) Snapshot(source string) Snapshot {
	s := Snapshot{Source: source, Hosts: 1}
	if r == nil {
		return s
	}
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()

	for _, m := range ms {
		switch {
		case m.counter != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[m.name] = m.counter.Value()
		case m.vec != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			m.vec.mu.RLock()
			for v, c := range m.vec.children {
				key := fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, escapeLabel(v))
				s.Counters[key] = c.Value()
			}
			m.vec.mu.RUnlock()
		case m.gaugeFn != nil:
			if s.Gauges == nil {
				s.Gauges = make(map[string]GaugeValue)
			}
			s.Gauges[m.name] = GaugeValue{Value: m.gaugeFn(), Source: source}
		case m.gauge != nil:
			if s.Gauges == nil {
				s.Gauges = make(map[string]GaugeValue)
			}
			s.Gauges[m.name] = GaugeValue{Value: m.gauge.Value(), Source: source}
		case m.hist != nil:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[m.name] = m.hist.Snapshot()
		}
	}
	return s
}

// Merge folds other into s: counters sum, gauges last-write-wins
// (other overwrites, keeping its source tag), histograms merge
// bucket-wise, and Hosts accumulates. Merging hosts in a fixed order
// (the fleet folds name-sorted) makes the result deterministic.
func (s *Snapshot) Merge(other Snapshot) {
	s.Hosts += other.Hosts
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64, len(other.Counters))
		}
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]GaugeValue, len(other.Gauges))
		}
		s.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(other.Histograms))
		}
		merged := s.Histograms[k]
		merged.Merge(v)
		s.Histograms[k] = merged
	}
}

// Accumulator folds many registries into one snapshot with flat
// per-source cost. Snapshot.Merge is sparse-sparse: each merge walks
// the accumulated bucket union, which grows with the number of
// sources folded in — fine for a handful, superlinear for a fleet.
// The accumulator instead keeps histograms dense while folding, so
// adding a host costs O(its metrics) regardless of how many hosts
// came before; Snapshot() sparsifies once at the end.
type Accumulator struct {
	out   Snapshot
	hists map[string]*histAcc

	// Fold scratch, reused across Reset cycles so a long-lived
	// accumulator (one per runner) folds without allocating: ms is the
	// registry-iteration buffer, vecKeys memoizes the formatted
	// `name{label="value"}` child keys (the label set of a host is
	// small and stable, so the cache saturates after the first fold).
	ms      []*metric
	vecKeys map[vecKey]string
}

// vecKey addresses one CounterVec child across folds.
type vecKey struct {
	name, value string
}

type histAcc struct {
	buckets [numBuckets]uint64
	lo, hi  int // occupied range [lo, hi)
	count   uint64
	sum     float64
}

// NewAccumulator starts an empty roll-up labeled with source.
func NewAccumulator(source string) *Accumulator {
	return &Accumulator{
		out: Snapshot{
			Source:     source,
			Counters:   make(map[string]uint64),
			Gauges:     make(map[string]GaugeValue),
			Histograms: make(map[string]HistogramSnapshot),
		},
		hists:   make(map[string]*histAcc),
		vecKeys: make(map[vecKey]string),
	}
}

// Reset empties the fold while keeping every allocation — the maps,
// the dense histogram arrays (zeroed only over their occupied
// watermark range), and the key/iteration scratch — so a per-runner
// accumulator refolds with flat allocation cost no matter how many
// times it is reused.
func (a *Accumulator) Reset() {
	a.out.Hosts = 0
	clear(a.out.Counters)
	clear(a.out.Gauges)
	clear(a.out.Histograms)
	for _, acc := range a.hists {
		for i := acc.lo; i < acc.hi; i++ {
			acc.buckets[i] = 0
		}
		acc.lo, acc.hi = numBuckets, 0
		acc.count, acc.sum = 0, 0
	}
}

// AddSnapshot folds an already-sparsified snapshot in — the shard
// merge path: each shard folds its hosts densely, and the fleet folds
// the S shard snapshots with the same semantics as AddRegistry
// (counters sum, gauges last-write-wins keeping the snapshot's source
// tags, histograms merge bucket-wise, Hosts accumulates).
func (a *Accumulator) AddSnapshot(s Snapshot) {
	a.out.Hosts += s.Hosts
	for k, v := range s.Counters {
		a.out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		a.out.Gauges[k] = v
	}
	for name, hs := range s.Histograms {
		acc := a.hists[name]
		if acc == nil {
			acc = &histAcc{lo: numBuckets}
			a.hists[name] = acc
		}
		for _, b := range hs.Buckets {
			acc.buckets[b.Index] += b.Count
			if b.Index < acc.lo {
				acc.lo = b.Index
			}
			if b.Index >= acc.hi {
				acc.hi = b.Index + 1
			}
		}
		acc.count += hs.Count
		acc.sum += hs.Sum
	}
}

// AddRegistry folds one registry in, reading metric atomics directly
// (no intermediate per-host snapshot). Same semantics as
// Snapshot(source) followed by Merge: counters sum, gauges
// last-write-wins with the source tag, histograms merge bucket-wise.
func (a *Accumulator) AddRegistry(r *Registry, source string) {
	if r == nil {
		return
	}
	a.out.Hosts++
	r.mu.RLock()
	ms := a.ms[:0]
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	a.ms = ms
	for _, m := range ms {
		switch {
		case m.counter != nil:
			a.out.Counters[m.name] += m.counter.Value()
		case m.vec != nil:
			m.vec.mu.RLock()
			for v, c := range m.vec.children {
				key, ok := a.vecKeys[vecKey{m.name, v}]
				if !ok {
					key = fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, escapeLabel(v))
					a.vecKeys[vecKey{m.name, v}] = key
				}
				a.out.Counters[key] += c.Value()
			}
			m.vec.mu.RUnlock()
		case m.gaugeFn != nil:
			a.out.Gauges[m.name] = GaugeValue{Value: m.gaugeFn(), Source: source}
		case m.gauge != nil:
			a.out.Gauges[m.name] = GaugeValue{Value: m.gauge.Value(), Source: source}
		case m.hist != nil:
			acc := a.hists[m.name]
			if acc == nil {
				acc = &histAcc{lo: numBuckets}
				a.hists[m.name] = acc
			}
			lo, hi := m.hist.span()
			for i := lo; i < hi; i++ {
				if n := m.hist.buckets[i].Load(); n > 0 {
					acc.buckets[i] += n
					if i < acc.lo {
						acc.lo = i
					}
					if i >= acc.hi {
						acc.hi = i + 1
					}
				}
			}
			acc.count += m.hist.Count()
			acc.sum += m.hist.Sum()
		}
	}
}

// Snapshot sparsifies and returns the accumulated roll-up. The
// accumulator remains usable; later additions build on the same fold.
func (a *Accumulator) Snapshot() Snapshot {
	out := a.out
	out.Counters = copyMap(a.out.Counters)
	out.Gauges = copyMap(a.out.Gauges)
	out.Histograms = make(map[string]HistogramSnapshot, len(a.hists))
	for name, acc := range a.hists {
		hs := HistogramSnapshot{Count: acc.count, Sum: acc.sum}
		for i := acc.lo; i < acc.hi; i++ {
			if n := acc.buckets[i]; n > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{Index: i, Count: n})
			}
		}
		out.Histograms[name] = hs
	}
	return out
}

func copyMap[V any](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// familyName strips a vec child key back to its exposition family:
// `name{label="v"}` -> `name`.
func familyName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Filter returns a copy keeping only metrics whose family name
// satisfies keep. Vec children filter on the family, not the child
// key. Used to drop wall-clock-derived families before comparing
// roll-ups byte for byte across runs.
func (s Snapshot) Filter(keep func(name string) bool) Snapshot {
	out := Snapshot{Source: s.Source, Hosts: s.Hosts}
	for k, v := range s.Counters {
		if keep(familyName(k)) {
			if out.Counters == nil {
				out.Counters = make(map[string]uint64)
			}
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if keep(k) {
			if out.Gauges == nil {
				out.Gauges = make(map[string]GaugeValue)
			}
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if keep(k) {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[k] = v
		}
	}
	return out
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format, families sorted, with a `rollup` prefix-free view: names
// are emitted as-is so a fleet roll-up scrape looks exactly like one
// very large host. Gauges append a source label carrying provenance.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	counterKeys := sortedKeys(s.Counters)
	seenType := map[string]bool{}
	for _, k := range counterKeys {
		fam := familyName(k)
		if !seenType[fam] {
			fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
			seenType[fam] = true
		}
		fmt.Fprintf(&b, "%s %d\n", k, s.Counters[k])
	}

	gaugeKeys := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	sort.Strings(gaugeKeys)
	for _, k := range gaugeKeys {
		gv := s.Gauges[k]
		fmt.Fprintf(&b, "# TYPE %s gauge\n", k)
		if gv.Source != "" {
			fmt.Fprintf(&b, "%s{source=\"%s\"} %s\n", k, escapeLabel(gv.Source), fmtFloat(gv.Value))
		} else {
			fmt.Fprintf(&b, "%s %s\n", k, fmtFloat(gv.Value))
		}
	}

	histKeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	for _, k := range histKeys {
		hs := s.Histograms[k]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", k)
		var cum uint64
		for _, bc := range hs.Buckets {
			cum += bc.Count
			if bc.Index >= numBuckets-1 {
				continue
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", k, fmtFloat(bucketUpper(bc.Index)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", k, hs.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", k, fmtFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", k, hs.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
