package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome trace_event export: renders a tracer snapshot in the Trace
// Event Format understood by about://tracing and Perfetto. Virtual
// time maps to the trace timestamp axis (microseconds), so the
// rendered timeline is the simulated host's timeline; each event's
// wall-clock stamp rides along in args. Event kinds are grouped onto
// named threads (fabric, arbiter, scheduler, anomaly, manager) so the
// viewer separates the subsystems into rows.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeThread maps an event kind to a synthetic thread id and name.
func chromeThread(k EventKind) (int, string) {
	switch k {
	case KindFlowStart, KindFlowDone, KindFlowRemove, KindRateRecompute:
		return 1, "fabric"
	case KindCapSet, KindCapClear:
		return 2, "arbiter"
	case KindSchedDecision:
		return 3, "scheduler"
	case KindAnomalyDetect, KindHeartbeat:
		return 4, "anomaly"
	case KindLinkFail, KindLinkDegrade:
		return 5, "faults"
	default:
		return 6, "manager"
	}
}

// WriteChromeTrace renders events as Chrome trace_event JSON. Events
// with a measured WallDur become complete ("X") slices whose duration
// is the wall cost scaled onto the virtual axis 1:1 in microseconds;
// everything else is an instant ("i") event. Events sharing a span
// (the journaled command that caused them) are additionally bound
// into a flow: a start arrow at the span's first event, steps through
// each effect, and a finish at the last — about://tracing draws the
// command -> effect causality as arrows across subsystem rows.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]any{"name": "ihnet"}},
	}}
	// Spans with at least two events get flow arrows; a single-event
	// span has no causality to draw.
	spanTotal := make(map[string]int)
	for _, ev := range events {
		if ev.Span != "" {
			spanTotal[ev.Span]++
		}
	}
	spanSeen := make(map[string]int)
	seen := make(map[int]bool)
	for _, ev := range events {
		tid, tname := chromeThread(ev.Kind)
		if !seen[tid] {
			seen[tid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": tname},
			})
		}
		args := map[string]any{
			"seq":     ev.Seq,
			"wall_ns": ev.Wall,
		}
		if ev.Subject != "" {
			args["subject"] = ev.Subject
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if ev.Value != 0 {
			args["value"] = ev.Value
		}
		if ev.Span != "" {
			args["span"] = ev.Span
		}
		if ev.Host != "" {
			args["host"] = ev.Host
		}
		name := ev.Kind.String()
		if ev.Subject != "" {
			name += " " + ev.Subject
		}
		ce := chromeEvent{
			Name: name, Cat: ev.Kind.String(),
			TS: float64(ev.Virtual) / 1e3, PID: 1, TID: tid, Args: args,
		}
		if ev.WallDur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.WallDur) / float64(time.Microsecond)
			args["wall_dur_ns"] = int64(ev.WallDur)
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
		if ev.Span != "" && spanTotal[ev.Span] > 1 {
			spanSeen[ev.Span]++
			fe := chromeEvent{
				Name: "span " + ev.Span, Cat: "span", ID: ev.Span,
				TS: ce.TS, PID: 1, TID: tid,
			}
			switch spanSeen[ev.Span] {
			case 1:
				fe.Phase = "s"
			case spanTotal[ev.Span]:
				fe.Phase = "f"
				fe.BP = "e"
			default:
				fe.Phase = "t"
			}
			out.TraceEvents = append(out.TraceEvents, fe)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
