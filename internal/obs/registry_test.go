package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from parallel writers
// while a reader scrapes continuously; run under -race this is the
// package's central safety claim, and the final counts must be exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_latency_ns", "latency")
	vec := r.CounterVec("test_by_kind_total", "by kind", "kind")

	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			// Half the writers resolve handles themselves to exercise
			// registration races.
			kind := vec.With([]string{"a", "b"}[w%2])
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%1000 + 1))
				kind.Inc()
				r.Counter("test_ops_total", "ops").Inc()
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got, want := c.Value(), uint64(2*writers*perWriter); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(writers*perWriter); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(writers*perWriter); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got, want := vec.With("a").Value()+vec.With("b").Value(), uint64(writers*perWriter); got != want {
		t.Errorf("vec total = %d, want %d", got, want)
	}
}

func TestRegistryIdempotentAndNilSafe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type-conflicting registration did not panic")
		}
	}()
	// Nil registry and nil handles must be inert, not crash.
	var nilReg *Registry
	nilReg.Counter("y_total", "y").Inc()
	nilReg.Gauge("z", "z").Set(1)
	nilReg.Histogram("h", "h").Observe(1)
	nilReg.GaugeFunc("f", "f", func() float64 { return 0 })
	if err := nilReg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	var nilC *Counter
	nilC.Inc()
	r.Gauge("x_total", "now a gauge") // must panic: registered as counter
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bbb_total", "help for bbb").Add(7)
	r.Gauge("aaa_level", "help for aaa").Set(2.5)
	r.GaugeFunc("ccc_fn", "computed", func() float64 { return 42 })
	vec := r.CounterVec("ddd_total", "labelled", "outcome")
	vec.With("ok").Add(3)
	vec.With(`we"ird`).Inc()
	h := r.Histogram("eee_ns", "hist")
	h.Observe(1.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP bbb_total help for bbb",
		"# TYPE bbb_total counter",
		"bbb_total 7",
		"# TYPE aaa_level gauge",
		"aaa_level 2.5",
		"ccc_fn 42",
		`ddd_total{outcome="ok"} 3`,
		`ddd_total{outcome="we\"ird"} 1`,
		"# TYPE eee_ns histogram",
		`eee_ns_bucket{le="+Inf"} 2`,
		"eee_ns_sum 101.5",
		"eee_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families are sorted by name.
	if strings.Index(out, "aaa_level") > strings.Index(out, "bbb_total") {
		t.Error("exposition not sorted by metric name")
	}
}
