package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use; Inc and Add are single atomic instructions.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits in
// one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metric is the registry's view of one named exposition family.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	// exactly one of these is set:
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	vec     *CounterVec
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a lock; updates through the
// returned handles do not. Registering the same name twice returns the
// original handle, so packages can idempotently resolve metrics.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help, typ string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, help: help, typ: typ}
	r.metrics[name] = m
	return m
}

// Counter registers (or fetches) a counter. A nil registry returns a
// working but unexported counter, so instrumentation never nil-checks.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	m := r.register(name, help, "counter")
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	m := r.register(name, help, "gauge")
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn runs on the scraping goroutine and must be safe to call
// concurrently with the rest of the system (read atomics or take your
// own lock; do not touch single-threaded simulation state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, help, "gauge")
	m.gaugeFn = fn
}

// Histogram registers (or fetches) a log-linear histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	m := r.register(name, help, "histogram")
	if m.hist == nil {
		m.hist = NewHistogram()
	}
	return m.hist
}

// CounterVec is a family of counters keyed by one label value.
// Resolving a child takes a lock; callers should cache the returned
// *Counter for hot paths.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the given label value.
func (cv *CounterVec) With(value string) *Counter {
	if cv == nil {
		return &Counter{}
	}
	cv.mu.RLock()
	c, ok := cv.children[value]
	cv.mu.RUnlock()
	if ok {
		return c
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.children[value]; ok {
		return c
	}
	c = &Counter{}
	cv.children[value] = c
	return c
}

// CounterVec registers (or fetches) a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return &CounterVec{label: label, children: make(map[string]*Counter)}
	}
	m := r.register(name, help, "counter")
	if m.vec == nil {
		m.vec = &CounterVec{label: label, children: make(map[string]*Counter)}
	}
	return m.vec
}

// MetricCount returns the number of registered exposition families.
func (r *Registry) MetricCount() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.metrics)
}

// fmtFloat renders a float the way Prometheus clients do.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), names sorted for stable output.
// It is safe to call concurrently with metric updates: values are read
// through the same atomics the writers use.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gaugeFn()))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case m.vec != nil:
			m.vec.mu.RLock()
			vals := make([]string, 0, len(m.vec.children))
			for v := range m.vec.children {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n",
					m.name, m.vec.label, escapeLabel(v), m.vec.children[v].Value())
			}
			m.vec.mu.RUnlock()
		case m.hist != nil:
			m.hist.writePrometheus(&b, m.name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
