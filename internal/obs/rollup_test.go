package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestSnapshotCountersSum checks the counter merge semantics: plain
// counters and vec children (flattened to labelled keys) both sum.
func TestSnapshotCountersSum(t *testing.T) {
	mk := func(admits, rejects uint64, sched map[string]uint64) Snapshot {
		r := NewRegistry()
		r.Counter("admissions", "").Add(admits)
		r.Counter("rejections", "").Add(rejects)
		vec := r.CounterVec("decisions", "", "outcome")
		for k, v := range sched {
			vec.With(k).Add(v)
		}
		return r.Snapshot("host")
	}
	a := mk(3, 1, map[string]uint64{"admitted": 5})
	b := mk(4, 0, map[string]uint64{"admitted": 2, "rejected": 7})
	a.Merge(b)
	if a.Hosts != 2 {
		t.Fatalf("hosts = %d, want 2", a.Hosts)
	}
	want := map[string]uint64{
		"admissions":                    7,
		"rejections":                    1,
		`decisions{outcome="admitted"}`: 7,
		`decisions{outcome="rejected"}`: 7,
	}
	for k, v := range want {
		if a.Counters[k] != v {
			t.Errorf("counter %s = %d, want %d", k, a.Counters[k], v)
		}
	}
	if len(a.Counters) != len(want) {
		t.Errorf("counters = %v, want keys %v", a.Counters, want)
	}
}

// TestSnapshotGaugesLastWriteWins checks gauges take the merged-in
// value and keep its source tag.
func TestSnapshotGaugesLastWriteWins(t *testing.T) {
	mk := func(src string, v float64) Snapshot {
		r := NewRegistry()
		r.Gauge("pressure", "").Set(v)
		return r.Snapshot(src)
	}
	fleet := Snapshot{Source: "fleet"}
	fleet.Merge(mk("h0", 1.5))
	fleet.Merge(mk("h1", 2.5))
	gv := fleet.Gauges["pressure"]
	if gv.Value != 2.5 || gv.Source != "h1" {
		t.Fatalf("gauge = %+v, want 2.5 from h1", gv)
	}
}

// TestHistogramMergePreservesQuantiles is the property test behind
// the roll-up design: splitting an observation stream across k hosts
// and merging their histogram snapshots must (a) reproduce the
// single-histogram bucket contents exactly, so (b) merged quantile
// estimates equal the whole-stream estimates bit for bit, and
// (c) both stay within the 1/subBuckets relative error bound of the
// exact sorted-sample quantiles.
func TestHistogramMergePreservesQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6) // hosts
		n := 200 + rng.Intn(2000)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i] = NewHistogram()
		}
		whole := NewHistogram()
		values := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform across ~9 decades, the shape latencies have.
			v := math.Exp(rng.Float64() * 20)
			values = append(values, v)
			whole.Observe(v)
			parts[rng.Intn(k)].Observe(v)
		}

		merged := parts[0].Snapshot()
		for _, p := range parts[1:] {
			merged.Merge(p.Snapshot())
		}
		ref := whole.Snapshot()
		// Bucket counts merge exactly; the float sum is only equal up
		// to addition-order rounding (hosts accumulate independently).
		if merged.Count != ref.Count || math.Abs(merged.Sum-ref.Sum) > 1e-9*math.Abs(ref.Sum) {
			t.Fatalf("trial %d: merged count/sum (%d, %g) != whole (%d, %g)",
				trial, merged.Count, merged.Sum, ref.Count, ref.Sum)
		}
		if len(merged.Buckets) != len(ref.Buckets) {
			t.Fatalf("trial %d: merged has %d buckets, whole has %d",
				trial, len(merged.Buckets), len(ref.Buckets))
		}
		for i := range merged.Buckets {
			if merged.Buckets[i] != ref.Buckets[i] {
				t.Fatalf("trial %d: bucket %d: merged %+v != whole %+v",
					trial, i, merged.Buckets[i], ref.Buckets[i])
			}
		}

		sort.Float64s(values)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			got := merged.Quantile(q)
			if direct := whole.Quantile(q); got != direct {
				t.Fatalf("trial %d: q%.2f merged %g != direct %g", trial, q, got, direct)
			}
			rank := int(math.Ceil(q*float64(n))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := values[rank]
			relErr := math.Abs(got-exact) / exact
			if relErr > 1.0/subBuckets+1e-9 {
				t.Fatalf("trial %d: q%.2f estimate %g vs exact %g: rel err %.4f > %.4f",
					trial, q, got, exact, relErr, 1.0/subBuckets)
			}
		}
	}
}

// TestHistogramSnapshotMergeDisjointAndEmpty exercises the sparse
// merge's edges: empty sides and fully disjoint bucket sets.
func TestHistogramSnapshotMergeDisjointAndEmpty(t *testing.T) {
	low, high := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		low.Observe(2)
		high.Observe(1 << 30)
	}
	var empty HistogramSnapshot
	empty.Merge(low.Snapshot())
	empty.Merge(HistogramSnapshot{})
	empty.Merge(high.Snapshot())
	if empty.Count != 20 {
		t.Fatalf("count = %d, want 20", empty.Count)
	}
	if got := empty.Quantile(0.25); got > 3 {
		t.Fatalf("q25 = %g, want ~2", got)
	}
	if got := empty.Quantile(0.99); got < 1<<29 {
		t.Fatalf("q99 = %g, want ~2^30", got)
	}
}

// TestSnapshotFilter drops wall-derived families (including vec
// children, matched on the family name).
func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("ihnet_epochs_total", "").Inc()
	r.CounterVec("ihnet_sched_decisions_total", "", "outcome").With("admitted").Inc()
	r.Histogram("ihnet_fabric_recompute_duration_ns", "").Observe(5)
	r.Histogram("cmd_effect_latency_us", "").Observe(5)
	r.Gauge("ihnet_trace_events_total", "").Set(1)
	s := r.Snapshot("h").Filter(func(name string) bool {
		return !strings.HasSuffix(name, "_duration_ns") && !strings.HasSuffix(name, "_latency_us")
	})
	if _, ok := s.Histograms["ihnet_fabric_recompute_duration_ns"]; ok {
		t.Error("wall-clock histogram survived the filter")
	}
	if _, ok := s.Histograms["cmd_effect_latency_us"]; ok {
		t.Error("latency histogram survived the filter")
	}
	if _, ok := s.Counters[`ihnet_sched_decisions_total{outcome="admitted"}`]; !ok {
		t.Error("vec child lost: filter must match on family name")
	}
	if _, ok := s.Counters["ihnet_epochs_total"]; !ok {
		t.Error("plain counter lost")
	}
	if _, ok := s.Gauges["ihnet_trace_events_total"]; !ok {
		t.Error("gauge lost")
	}
}

// TestSnapshotJSONDeterministic: identical merges must serialize to
// identical bytes — the fleet roll-up determinism assertion reduces
// to this plus deterministic per-host metrics.
func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		r := NewRegistry()
		r.Counter("a_total", "").Add(3)
		r.CounterVec("b_total", "", "l").With("x").Add(2)
		r.Gauge("g", "").Set(7)
		h := r.Histogram("h_us", "")
		for i := 1; i < 100; i++ {
			h.Observe(float64(i * i))
		}
		s := r.Snapshot("host-a")
		s.Merge(r.Snapshot("host-a"))
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("identical roll-ups serialized differently:\n%s\n%s", a, b)
	}
}

// TestSnapshotWritePrometheus sanity-checks the text exposition of a
// merged snapshot: counter sums, source-tagged gauges, cumulative
// histogram buckets.
func TestSnapshotWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help!").Add(2)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h_ns", "").Observe(3)
	s := r.Snapshot("h0")
	s.Merge(r.Snapshot("h1"))
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE c_total counter\nc_total 4\n",
		`g{source="h1"} 1.5`,
		"h_ns_count 2",
		`h_ns_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
