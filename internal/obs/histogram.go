package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Histogram bucket geometry: values in [2^e, 2^(e+1)) are split into
// subBuckets linear slots, so every bucket's width is at most 1/subBuckets
// of its lower bound and quantile estimates carry a bounded relative
// error of 1/subBuckets (6.25%). One underflow bucket holds values
// below 1 and one overflow bucket holds values at or beyond 2^(maxExp+1).
const (
	subBuckets = 16
	maxExp     = 62
	numBuckets = 1 + (maxExp+1)*subBuckets + 1
)

// Histogram is a log-linear histogram of non-negative observations
// (typically latencies in nanoseconds). Observe is lock-free: one
// atomic add on the bucket slot, one on the count, and a CAS loop on
// the sum. Readers see a consistent-enough view for monitoring (each
// field is individually atomic).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
	// Occupied-range watermarks: loPlus is the lowest occupied bucket
	// index plus one (0 = empty), hiEx the highest plus one. Readers
	// (snapshots, roll-ups, quantiles) scan only [loPlus-1, hiEx)
	// instead of all buckets; observations typically span a few
	// octaves, so this cuts a full-registry fold by an order of
	// magnitude. Updates are load-compare-CAS that almost always stop
	// at the compare.
	loPlus atomic.Int64
	hiEx   atomic.Int64
}

// span returns the half-open occupied bucket index range [lo, hi).
// Concurrent observers may extend the range after it is read — the
// same torn-but-consistent contract every reader here has.
func (h *Histogram) span() (lo, hi int) {
	l := h.loPlus.Load()
	if l == 0 {
		return 0, 0
	}
	return int(l - 1), int(h.hiEx.Load())
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v < 1 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return numBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	e := exp - 1               // floor(log2(v))
	if e > maxExp {
		return numBuckets - 1
	}
	// Position within the octave, in [1, 2).
	sub := int((frac*2 - 1) * subBuckets)
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return 1 + e*subBuckets + sub
}

// bucketUpper returns the inclusive upper bound of bucket i; the last
// bucket's bound is +Inf.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return 1
	}
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	i--
	e := i / subBuckets
	sub := i % subBuckets
	return math.Ldexp(1+float64(sub+1)/subBuckets, e)
}

// bucketLower returns the lower bound of bucket i.
func bucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= numBuckets-1 {
		return math.Ldexp(1, maxExp+1)
	}
	i--
	e := i / subBuckets
	sub := i % subBuckets
	return math.Ldexp(1+float64(sub)/subBuckets, e)
}

// Observe records one value. Negative and NaN values count in the
// lowest bucket with a zero sum contribution.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := bucketIndex(v)
	h.buckets[idx].Add(1)
	for {
		old := h.loPlus.Load()
		if old != 0 && int64(idx)+1 >= old {
			break
		}
		if h.loPlus.CompareAndSwap(old, int64(idx)+1) {
			break
		}
	}
	for {
		old := h.hiEx.Load()
		if int64(idx) < old {
			break
		}
		if h.hiEx.CompareAndSwap(old, int64(idx)+1) {
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the
// bucket holding the target rank and interpolating linearly within it.
// The estimate's relative error is bounded by the bucket geometry:
// at most 1/subBuckets for values >= 1. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	lo, hi := h.span()
	for i := lo; i < hi; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketLower(i), bucketUpper(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			// Interpolate the rank's position inside this bucket.
			frac := float64(target-cum) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return bucketLower(numBuckets - 1)
}

// writePrometheus renders the histogram as cumulative le-labelled
// buckets (only octaves with observations are emitted; cumulative
// counts stay correct), then _sum and _count.
func (h *Histogram) writePrometheus(b *strings.Builder, name string) {
	var cum uint64
	lo, hi := h.span()
	if hi > numBuckets-1 {
		hi = numBuckets - 1
	}
	for i := lo; i < hi; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bucketUpper(i)), cum)
	}
	cum += h.buckets[numBuckets-1].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}
