// Package obs is the system's self-observability substrate: a
// concurrency-safe metrics registry (counters, gauges, log-linear
// latency histograms) with near-zero-allocation hot-path updates, and
// a bounded ring-buffer tracer recording typed events stamped with
// both virtual (simulation) and wall time.
//
// The paper's thesis is that the intra-host network is unmanageable
// because it is unobservable; obs applies the same standard to our own
// manager and simulator. Where internal/telemetry models the
// *simulated* host's telemetry pipeline (with its deliberate fidelity
// limits), obs measures the *real* process: how long a max-min
// recompute actually takes on the CPU, how many arbiter passes ran,
// what the scheduler decided and when. Exporters turn both halves into
// standard tooling formats: Prometheus text exposition for scrapes,
// JSON event dumps for the control plane, and Chrome trace_event JSON
// so a whole DES run can be inspected in about://tracing or Perfetto.
//
// Metric writers (the single-threaded simulation) and readers (HTTP
// scrapes on arbitrary goroutines) never share a lock: counters and
// gauges are single atomics, histogram buckets are atomic slots, and
// the tracer takes a short private mutex per event. A nil *Obs is
// valid everywhere and records nothing, so instrumented packages need
// no configuration to stay silent.
package obs

// Obs bundles the three halves of the observability substrate. The
// manager creates one and threads it through every subsystem.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
	// Bus is the live fan-out: every traced event is also published
	// here for SSE subscribers (and, in a fleet, forwarded upward to
	// the fleet bus). Nil when tracing is disabled.
	Bus *Bus
}

// New returns an Obs with an empty registry and a tracer holding up to
// traceCapacity events (a non-positive capacity disables tracing).
// The tracer feeds a fan-out Bus of the same capacity; slow bus
// subscribers drop (counted by obs_sse_dropped_total), never blocking
// emission. Command spans observe their wall duration into the
// cmd_effect_latency_us histogram.
func New(traceCapacity int) *Obs {
	o := &Obs{Registry: NewRegistry()}
	if traceCapacity > 0 {
		o.Tracer = NewTracer(traceCapacity)
		o.Bus = NewBus(traceCapacity)
		o.Bus.SetDropCounter(o.Registry.Counter("obs_sse_dropped_total",
			"Events dropped because an SSE subscriber's ring was full."))
		o.Tracer.SetBus(o.Bus)
		o.Tracer.SetSpanLatency(o.Registry.Histogram("cmd_effect_latency_us",
			"Wall microseconds from journaled command begin to its last applied effect."))
	}
	return o
}
