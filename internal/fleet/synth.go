package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/snap"
	"repro/internal/topology"
)

// SynthSpec describes a synthetic fleet: N identical hosts generated
// in-process, so 10k-host benches and tests do not need 10k JSON
// files in hosts/.
type SynthSpec struct {
	// Hosts is how many hosts to generate. Required.
	Hosts int
	// Preset names the topology.Presets entry every host is built
	// from. Empty means "two-socket".
	Preset string
	// Seed is the base RNG seed; host i gets Seed+i, mirroring
	// LoadDir's discipline, so a spec always yields the same fleet.
	Seed int64
	// Record wraps every host in a snap.Session so it stays
	// individually checkpointable and replayable (what the daemon
	// wants); leave false for benchmarks where journaling 10k hosts
	// would dominate the measurement.
	Record bool
	// Workload, when true, admits one standard tenant per host
	// (nic0 -> any-memory at 8 GB/s, tenant "kv") so every host has
	// live flows to schedule — the benchmark shape.
	Workload bool
}

// Synth generates spec.Hosts deterministic hosts named
// synth-00000..synth-NNNNN. Equal specs yield byte-identical fleets:
// names, seeds, and admission order are all derived from the spec.
func Synth(spec SynthSpec) (*Fleet, error) {
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("fleet: synth needs a positive host count, got %d", spec.Hosts)
	}
	preset := spec.Preset
	if preset == "" {
		preset = "two-socket"
	}
	build, ok := topology.Presets[preset]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown preset %q", preset)
	}
	f := New()
	for i := 0; i < spec.Hosts; i++ {
		name := fmt.Sprintf("synth-%05d", i)
		opts := core.DefaultOptions()
		opts.Seed = spec.Seed + int64(i)
		var host *Host
		if spec.Record {
			sess, err := snap.NewSession(snap.Config{Preset: preset, Options: opts})
			if err != nil {
				return nil, fmt.Errorf("fleet: synth host %s: %w", name, err)
			}
			if host, err = f.AddSession(name, sess); err != nil {
				return nil, err
			}
		} else {
			mgr, err := core.New(build(), opts)
			if err != nil {
				return nil, fmt.Errorf("fleet: synth host %s: %w", name, err)
			}
			if err := mgr.Start(); err != nil {
				return nil, fmt.Errorf("fleet: synth host %s: %w", name, err)
			}
			if host, err = f.AddHost(name, mgr); err != nil {
				return nil, err
			}
		}
		if spec.Workload {
			if _, err := host.admit("kv", []intent.Target{
				{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)},
			}); err != nil {
				return nil, fmt.Errorf("fleet: synth workload on %s: %w", name, err)
			}
		}
	}
	return f, nil
}
