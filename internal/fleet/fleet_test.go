package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f := New()
	for i := 0; i < n; i++ {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		m, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddHost(string(rune('a'+i)), m); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestAddHostValidation(t *testing.T) {
	f := New()
	if _, err := f.AddHost("", nil); err == nil {
		t.Fatal("empty host accepted")
	}
	m, _ := core.New(topology.MinimalHost(), core.DefaultOptions())
	if _, err := f.AddHost("x", m); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddHost("x", m); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if f.Host("x") == nil || f.Host("y") != nil {
		t.Fatal("Host lookup wrong")
	}
}

func TestPlaceLeastPressure(t *testing.T) {
	f := newFleet(t, 2)
	targets := []intent.Target{{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)}}
	// First placement goes somewhere; pressure that host, then the
	// second distinct tenant should land on the other.
	_, h1, err := f.Place("t1", targets)
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := f.Place("t2", targets)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Name == h2.Name {
		t.Fatalf("both tenants on %s despite equal alternatives", h1.Name)
	}
	if f.Locate("t1") == nil || f.Locate("t2") == nil {
		t.Fatal("Locate failed")
	}
	if f.Locate("ghost") != nil {
		t.Fatal("Locate found ghost")
	}
}

func TestPlaceFailsWhenFull(t *testing.T) {
	f := newFleet(t, 2)
	big := []intent.Target{{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(25)}}
	if _, _, err := f.Place("t1", big); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Place("t2", big); err != nil {
		t.Fatal(err)
	}
	// Both hosts' nic0 uplinks are now fully reserved.
	if _, _, err := f.Place("t3", big); err == nil {
		t.Fatal("overcommit accepted")
	}
}

func TestPressureGrowsWithReservations(t *testing.T) {
	f := newFleet(t, 1)
	h := f.Hosts()[0]
	before := h.Pressure()
	if _, err := h.Mgr.Admit("t", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(20)},
	}); err != nil {
		t.Fatal(err)
	}
	if h.Pressure() <= before {
		t.Fatalf("pressure %v not above %v after reservation", h.Pressure(), before)
	}
}

func TestRebalanceMovesOnlyAffectedTenants(t *testing.T) {
	f := newFleet(t, 2)
	hostA := f.Host("a")
	// victim's pathway crosses pcieswitch0; bystander lives on the
	// other socket's fabric entirely.
	if _, err := hostA.Mgr.Admit("victim", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := hostA.Mgr.Admit("bystander", []intent.Target{
		{Src: "gpu1", Dst: "memory:socket1", Rate: topology.GBps(5)},
	}); err != nil {
		t.Fatal(err)
	}
	// Calibrate heartbeats, then silently degrade the victim's switch
	// link on host a.
	f.RunFor(2 * simtime.Millisecond)
	if err := hostA.Mgr.Fabric().DegradeLink("pcieswitch0->nic0", 0.2, 10*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	f.RunFor(2 * simtime.Millisecond)
	if len(hostA.Mgr.Anomaly().Detections()) == 0 {
		t.Fatal("degradation not detected; rebalance has nothing to act on")
	}
	affected := AffectedTenants(hostA)
	if len(affected) != 1 || affected[0] != "victim" {
		t.Fatalf("affected = %v, want [victim]", affected)
	}
	rep := f.Rebalance()
	if dst, ok := rep.Moved["victim"]; !ok || dst != "b" {
		t.Fatalf("rebalance moved %v", rep.Moved)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed: %v", rep.Failed)
	}
	if f.Locate("victim").Name != "b" {
		t.Fatal("victim not on host b")
	}
	if f.Locate("bystander").Name != "a" {
		t.Fatal("bystander was moved")
	}
}

func TestRebalanceReportsUnplaceable(t *testing.T) {
	f := newFleet(t, 2)
	hostA, hostB := f.Host("a"), f.Host("b")
	// Fill host b's nic0 path so it cannot take the victim.
	if _, err := hostB.Mgr.Admit("hog", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(25)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := hostA.Mgr.Admit("victim", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(20)},
	}); err != nil {
		t.Fatal(err)
	}
	f.RunFor(2 * simtime.Millisecond)
	_ = hostA.Mgr.Fabric().DegradeLink("pcieswitch0->nic0", 0.2, 10*simtime.Microsecond)
	f.RunFor(2 * simtime.Millisecond)
	rep := f.Rebalance()
	if len(rep.Failed) != 1 || rep.Failed[0] != "victim" {
		t.Fatalf("report: %+v", rep)
	}
	if f.Locate("victim").Name != "a" {
		t.Fatal("unplaceable tenant was evicted anyway")
	}
}

func TestPlaceNoHosts(t *testing.T) {
	if _, _, err := New().Place("t", nil); err == nil {
		t.Fatal("placement on empty fleet accepted")
	}
}
