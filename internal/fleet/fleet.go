// Package fleet coordinates the managers of multiple hosts. The
// paper's virtualized intra-host abstraction promises that tenants
// "easily migrate their VMs or containers without reconfiguring their
// own intra-host networks"; this package is the operator-side
// counterpart: least-pressure placement of new tenants across hosts,
// and health-driven evacuation that uses the anomaly platform's
// localization to move exactly the tenants whose pathways cross a
// suspect link.
package fleet

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
	"repro/internal/vnet"
)

// Host is one managed machine in the fleet.
type Host struct {
	Name string
	Mgr  *core.Manager
	// Sess, when non-nil, is the host's recording session. Fleet
	// operations that mutate the host (admit, evict, time advancement)
	// go through it so every host in a fleet daemon stays individually
	// checkpointable and replayable.
	Sess *snap.Session
}

// admit runs the admission pipeline on this host, journaled when the
// host records.
func (h *Host) admit(tenant fabric.TenantID, targets []intent.Target) (*vnet.View, error) {
	if h.Sess != nil {
		return h.Sess.Admit(string(tenant), targets)
	}
	return h.Mgr.Admit(tenant, targets)
}

// evict releases a tenant on this host, journaled when the host
// records.
func (h *Host) evict(tenant fabric.TenantID) error {
	if h.Sess != nil {
		return h.Sess.Evict(string(tenant))
	}
	return h.Mgr.Evict(tenant)
}

// advanceTo drives the host's clock to t (no-op if already there),
// journaled when the host records.
func (h *Host) advanceTo(t simtime.Time) error {
	if h.Sess != nil {
		if t <= h.Sess.Now() {
			return nil
		}
		return h.Sess.AdvanceTo(t)
	}
	if eng := h.Mgr.Engine(); t > eng.Now() {
		eng.RunUntil(t)
	}
	return nil
}

// Pressure is the host's reserved fraction of total fabric capacity —
// the placement policy's load signal.
func (h *Host) Pressure() float64 {
	free := h.Mgr.Arbiter().FreeMap()
	capacity := h.Mgr.Arbiter().CapacityMap()
	var f, c float64
	for l, cv := range capacity {
		c += float64(cv)
		f += float64(free[l])
	}
	if c == 0 {
		return 0
	}
	return 1 - f/c
}

// Fleet is a set of hosts under one operator.
type Fleet struct {
	hosts []*Host
	// sorted records whether hosts is currently name-ordered, so the
	// hot paths (epoch loops, roll-ups) do not re-sort 10k names on
	// every call. AddHost invalidates it.
	sorted bool
}

// New returns an empty fleet.
func New() *Fleet { return &Fleet{} }

// subFleet wraps an already name-sorted host slice as a Fleet — the
// shard partitioning path. The slice is owned by the caller and must
// stay name-sorted.
func subFleet(hosts []*Host) *Fleet {
	return &Fleet{hosts: hosts, sorted: true}
}

// AddHost registers a managed host under a unique name.
func (f *Fleet) AddHost(name string, mgr *core.Manager) (*Host, error) {
	if name == "" || mgr == nil {
		return nil, fmt.Errorf("fleet: host needs a name and a manager")
	}
	for _, h := range f.hosts {
		if h.Name == name {
			return nil, fmt.Errorf("fleet: duplicate host %q", name)
		}
	}
	h := &Host{Name: name, Mgr: mgr}
	f.hosts = append(f.hosts, h)
	f.sorted = false
	return h, nil
}

// AddSession registers a recording host: mutating fleet operations on
// it are journaled through the session, so it remains checkpointable
// with internal/snap while under fleet management.
func (f *Fleet) AddSession(name string, sess *snap.Session) (*Host, error) {
	if sess == nil {
		return nil, fmt.Errorf("fleet: host %q needs a session", name)
	}
	h, err := f.AddHost(name, sess.Manager())
	if err != nil {
		return nil, err
	}
	h.Sess = sess
	return h, nil
}

// Hosts returns the fleet's hosts sorted by name. The returned slice
// is the caller's to reorder (Place sorts it by pressure).
func (f *Fleet) Hosts() []*Host {
	return append([]*Host(nil), f.hostsSorted()...)
}

// hostsSorted returns the fleet's own host slice, name-sorted in
// place — the allocation-free view for read-only iteration on hot
// paths. Callers must not reorder or retain it.
func (f *Fleet) hostsSorted() []*Host {
	if !f.sorted {
		sort.Slice(f.hosts, func(i, j int) bool { return f.hosts[i].Name < f.hosts[j].Name })
		f.sorted = true
	}
	return f.hosts
}

// Host returns the named host, or nil.
func (f *Fleet) Host(name string) *Host {
	for _, h := range f.hosts {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// RunFor advances every host's virtual clock by d. Hosts are
// independent simulations; the fleet keeps them loosely in step.
func (f *Fleet) RunFor(d simtime.Duration) {
	for _, h := range f.Hosts() {
		h.Mgr.RunFor(d)
	}
}

// Place admits a tenant on the least-pressured host that accepts it
// (ties broken by name). It returns the view and the chosen host.
func (f *Fleet) Place(tenant fabric.TenantID, targets []intent.Target) (*vnet.View, *Host, error) {
	if len(f.hosts) == 0 {
		return nil, nil, fmt.Errorf("fleet: no hosts")
	}
	order := f.Hosts()
	sort.SliceStable(order, func(i, j int) bool { return order[i].Pressure() < order[j].Pressure() })
	var lastErr error
	for _, h := range order {
		view, err := h.admit(tenant, cloneTargets(targets))
		if err == nil {
			return view, h, nil
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("fleet: no host admitted %q: %w", tenant, lastErr)
}

// Evict releases a tenant wherever it is running in the fleet.
func (f *Fleet) Evict(tenant fabric.TenantID) (*Host, error) {
	h := f.Locate(tenant)
	if h == nil {
		return nil, fmt.Errorf("fleet: unknown tenant %q", tenant)
	}
	return h, h.evict(tenant)
}

// Migrate re-admits a tenant's intents on the named destination host
// and evicts it from its current host — the reconfiguration-free
// migration the virtual abstraction promises, journaled on both ends
// when the hosts record.
func (f *Fleet) Migrate(tenant fabric.TenantID, dstName string) (*vnet.View, error) {
	src := f.Locate(tenant)
	if src == nil {
		return nil, fmt.Errorf("fleet: unknown tenant %q", tenant)
	}
	dst := f.Host(dstName)
	if dst == nil {
		return nil, fmt.Errorf("fleet: unknown host %q", dstName)
	}
	if dst == src {
		return nil, fmt.Errorf("fleet: tenant %q is already on %q", tenant, dstName)
	}
	rec := src.Mgr.Tenant(tenant)
	view, err := dst.admit(tenant, cloneTargets(rec.Targets))
	if err != nil {
		return nil, fmt.Errorf("fleet: destination %q rejected %q: %w", dstName, tenant, err)
	}
	if err := src.evict(tenant); err != nil {
		return nil, err
	}
	return view, nil
}

// cloneTargets copies the slice so per-host tenant-field fill-in does
// not alias across admission attempts.
func cloneTargets(targets []intent.Target) []intent.Target {
	out := make([]intent.Target, len(targets))
	copy(out, targets)
	return out
}

// Locate returns the host currently running the tenant, or nil.
func (f *Fleet) Locate(tenant fabric.TenantID) *Host {
	for _, h := range f.Hosts() {
		if h.Mgr.Tenant(tenant) != nil {
			return h
		}
	}
	return nil
}

// AffectedTenants returns the tenants on a host whose assigned
// pathways traverse any of the host's current anomaly suspects (in
// either direction). These are the tenants an incident actually
// touches — evacuation does not need to drain the whole machine.
func AffectedTenants(h *Host) []fabric.TenantID {
	suspect := make(map[topology.LinkID]bool)
	for _, d := range h.Mgr.Anomaly().Detections() {
		for _, s := range d.Suspects {
			suspect[s.Link] = true
		}
	}
	if len(suspect) == 0 {
		return nil
	}
	var out []fabric.TenantID
	for _, rec := range h.Mgr.Tenants() {
		hit := false
		for _, a := range rec.Assignments {
			for _, l := range a.Path.Links {
				if suspect[l.ID] || suspect[l.Reverse] {
					hit = true
				}
			}
		}
		if hit {
			out = append(out, rec.ID)
		}
	}
	return out
}

// EvacuationReport summarizes one rebalancing pass.
type EvacuationReport struct {
	// Moved maps tenant to its destination host name.
	Moved map[fabric.TenantID]string
	// Failed lists tenants no other host would admit (they stay put;
	// the operator gets to decide what degrades).
	Failed []fabric.TenantID
}

// Rebalance migrates, for every host with active anomaly detections,
// the affected tenants to the least-pressured healthy host that will
// take them. Unaffected tenants are never touched.
func (f *Fleet) Rebalance() EvacuationReport {
	rep := EvacuationReport{Moved: make(map[fabric.TenantID]string)}
	unhealthy := make(map[string]bool)
	for _, h := range f.Hosts() {
		if len(h.Mgr.Anomaly().Detections()) > 0 {
			unhealthy[h.Name] = true
		}
	}
	for _, h := range f.Hosts() {
		if !unhealthy[h.Name] {
			continue
		}
		for _, tenant := range AffectedTenants(h) {
			moved := false
			candidates := f.Hosts()
			sort.SliceStable(candidates, func(i, j int) bool {
				return candidates[i].Pressure() < candidates[j].Pressure()
			})
			for _, dst := range candidates {
				if dst.Name == h.Name || unhealthy[dst.Name] {
					continue
				}
				if _, err := f.Migrate(tenant, dst.Name); err == nil {
					rep.Moved[tenant] = dst.Name
					moved = true
					break
				}
			}
			if !moved {
				rep.Failed = append(rep.Failed, tenant)
			}
		}
	}
	return rep
}
