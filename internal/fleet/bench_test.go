package fleet

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/simtime"
)

// benchFleet builds n plain (non-recording) synthetic hosts with one
// admitted tenant each, so every host-millisecond carries heartbeat,
// telemetry, arbiter and monitor work.
func benchFleet(b *testing.B, n int) *Fleet {
	b.Helper()
	f, err := Synth(SynthSpec{Hosts: n, Seed: 1, Workload: true})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFleetRunFor measures one millisecond of fleet virtual time
// per iteration: the serial host-by-host loop against the parallel
// epoch-barrier runner at the classic tiers, and the sharded engine
// at 1024 and 10000 hosts (where a single global barrier would make
// every epoch wait on the slowest of 10k hosts). The serial/parallel
// ratio at a given host count is the runner's speedup (the CI
// acceptance bar is >= 4x at 64 hosts on a multi-core runner).
func BenchmarkFleetRunFor(b *testing.B) {
	for _, hosts := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("hosts=%d/serial", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.RunFor(simtime.Millisecond)
			}
			b.ReportMetric(float64(hosts)*float64(b.N)/b.Elapsed().Seconds(), "host-ms/s")
		})
		b.Run(fmt.Sprintf("hosts=%d/parallel", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			r := NewRunner(f, RunnerConfig{Workers: runtime.GOMAXPROCS(0)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(hosts)*float64(b.N)/b.Elapsed().Seconds(), "host-ms/s")
		})
	}
	for _, hosts := range []int{1024, 10000} {
		b.Run(fmt.Sprintf("hosts=%d/sharded", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			sr := NewShardedRunner(f, ShardConfig{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sr.RunFor(context.Background(), simtime.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(hosts)*float64(b.N)/b.Elapsed().Seconds(), "host-ms/s")
		})
	}
}

// BenchmarkFleetRollup measures the steady-state scrape: between two
// scrapes one host mutated (the worst common case for the dirty-shard
// cache), so each iteration refolds exactly one shard and re-merges
// the S cached shard snapshots. The ns/host metric is the acceptance
// bar: hierarchical roll-up keeps it flat-to-falling as hosts grow
// (at 1024 hosts a scrape folds one 64-host shard plus a 16-way
// merge, not 1024 registries).
func BenchmarkFleetRollup(b *testing.B) {
	for _, hosts := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			sr := NewShardedRunner(f, ShardConfig{})
			if _, err := sr.RunFor(context.Background(), simtime.Millisecond); err != nil {
				b.Fatal(err)
			}
			names := make([]string, 0, hosts)
			for _, h := range f.Hosts() {
				names = append(names, h.Name)
			}
			sr.Rollup() // prime every shard's cache
			b.ReportAllocs()
			b.ResetTimer()
			var last int
			for i := 0; i < b.N; i++ {
				sr.MarkDirty(names[i%len(names)])
				s := sr.Rollup()
				last = s.Hosts
			}
			b.StopTimer()
			if last != hosts {
				b.Fatalf("rollup folded %d hosts, want %d", last, hosts)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(hosts)*1e9, "ns/host")
		})
	}
}

// BenchmarkFleetRollupCold measures the all-shards-dirty fold — the
// first scrape after a fleet-wide advance. This is the path the
// scratch-accumulator reuse keeps allocation-flat: refolding every
// registry reuses per-runner accumulators, so allocs/op stays
// O(metric families), not O(hosts).
func BenchmarkFleetRollupCold(b *testing.B) {
	for _, hosts := range []int{256, 1024} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			sr := NewShardedRunner(f, ShardConfig{})
			if _, err := sr.RunFor(context.Background(), simtime.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last int
			for i := 0; i < b.N; i++ {
				sr.MarkAllDirty()
				s := sr.Rollup()
				last = s.Hosts
			}
			b.StopTimer()
			if last != hosts {
				b.Fatalf("rollup folded %d hosts, want %d", last, hosts)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(hosts)*1e9, "ns/host")
		})
	}
}
