package fleet

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchFleet builds n plain (non-recording) hosts with one admitted
// tenant each, so every host-millisecond carries heartbeat, telemetry,
// arbiter and monitor work.
func benchFleet(b *testing.B, n int) *Fleet {
	b.Helper()
	f := New()
	for i := 0; i < n; i++ {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		m, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Start(); err != nil {
			b.Fatal(err)
		}
		h, err := f.AddHost(fmt.Sprintf("host-%03d", i), m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Mgr.Admit("kv", []intent.Target{
			{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkFleetRunFor measures one millisecond of fleet virtual time
// per iteration: the serial host-by-host loop against the parallel
// epoch-barrier runner. The serial/parallel ratio at a given host
// count is the runner's speedup (the CI acceptance bar is >= 4x at 64
// hosts on a multi-core runner).
func BenchmarkFleetRunFor(b *testing.B) {
	for _, hosts := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("hosts=%d/serial", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.RunFor(simtime.Millisecond)
			}
			b.ReportMetric(float64(hosts)*float64(b.N)/b.Elapsed().Seconds(), "host-ms/s")
		})
		b.Run(fmt.Sprintf("hosts=%d/parallel", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			r := NewRunner(f, RunnerConfig{Workers: runtime.GOMAXPROCS(0)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(hosts)*float64(b.N)/b.Elapsed().Seconds(), "host-ms/s")
		})
	}
}

// BenchmarkFleetRollup measures folding every host's registry into
// one fleet snapshot. The acceptance bar is flat per-host overhead
// from 16 to 256 hosts (the ns/host metric), i.e. roll-up cost is
// O(hosts) with no superlinear term — one scrape covers the fleet.
func BenchmarkFleetRollup(b *testing.B) {
	for _, hosts := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			f := benchFleet(b, hosts)
			r := NewRunner(f, RunnerConfig{Workers: runtime.GOMAXPROCS(0)})
			if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last int
			for i := 0; i < b.N; i++ {
				s := r.Rollup()
				last = s.Hosts
			}
			b.StopTimer()
			if last != hosts {
				b.Fatalf("rollup folded %d hosts, want %d", last, hosts)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(hosts)*1e9, "ns/host")
		})
	}
}
