package fleet_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Localization-driven evacuation: a silent fault on one host moves
// exactly the tenants whose pathways cross the suspect link.
func ExampleFleet_Rebalance() {
	fl := fleet.New()
	for i, name := range []string{"host-a", "host-b"} {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		mgr, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			log.Fatal(err)
		}
		_ = mgr.Start()
		_, _ = fl.AddHost(name, mgr)
	}
	hostA := fl.Host("host-a")
	_, _ = hostA.Mgr.Admit("victim", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(5)},
	})
	_, _ = hostA.Mgr.Admit("bystander", []intent.Target{
		{Src: "gpu1", Dst: "memory:socket1", Rate: topology.GBps(5)},
	})
	fl.RunFor(2 * simtime.Millisecond) // calibrate heartbeats
	_ = hostA.Mgr.Fabric().DegradeLink("pcieswitch0->nic0", 0.2, 10*simtime.Microsecond)
	fl.RunFor(2 * simtime.Millisecond) // detect + localize

	rep := fl.Rebalance()
	fmt.Println("moved victim to:", rep.Moved["victim"])
	fmt.Println("bystander stayed on:", fl.Locate("bystander").Name)
	// Output:
	// moved victim to: host-b
	// bystander stayed on: host-a
}
