package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// ShardConfig tunes the sharded fleet engine.
type ShardConfig struct {
	// Shards is the number of independent shard groups. Zero means
	// AutoShards(len(hosts)); the count is clamped so no shard is
	// empty. One shard degenerates to the plain Runner behind the
	// outer-epoch loop.
	Shards int
	// Workers is the worker-pool size per shard. Zero spreads
	// GOMAXPROCS across the shards (at least one per shard).
	Workers int
	// Epoch is the inner barrier interval within a shard — the same
	// quantity as RunnerConfig.Epoch. Zero means 1ms.
	Epoch simtime.Duration
	// OuterEvery is how many inner epochs make one outer epoch — the
	// only point where shards synchronize. Zero means 4.
	OuterEvery int
	// Registry receives engine metrics. All shard runners share it
	// (metric registration is idempotent by name), so the classic
	// runner counters aggregate across shards. Nil works.
	Registry *obs.Registry
	// Bus, when set, receives every host's forwarded trace events,
	// per-shard inner epoch events (Subject "shard-NNN"), quarantine
	// events, and the outer fleet epoch event (Subject "fleet").
	Bus *obs.Bus
	// OnOuterEpoch, when set, runs on the caller's goroutine after
	// each outer barrier with every live host in every shard parked at
	// the same virtual time — the hook for fleet-level control.
	OnOuterEpoch func(OuterEpochStat)
}

// OuterEpochStat describes one completed outer epoch.
type OuterEpochStat struct {
	// Index counts outer epochs within one RunFor call, from 0.
	Index int
	// Target is the outer virtual-time barrier every shard reached.
	Target simtime.Time
	// HostsAdvanced counts host-epoch advances across all shards in
	// this outer epoch.
	HostsAdvanced int
	// InnerEpochs is the number of inner barriers each shard crossed
	// in this outer epoch.
	InnerEpochs int
}

// ShardReport summarizes one ShardedRunner.RunFor call.
type ShardReport struct {
	// OuterEpochs is the number of outer barriers crossed.
	OuterEpochs int
	// Epochs is the number of inner barriers every live shard crossed
	// (summed over outer epochs) — comparable to RunReport.Epochs.
	Epochs int
	// Target is the virtual time the fleet was asked to reach.
	Target simtime.Time
	// HostsAdvanced counts host-epoch advances across all shards.
	HostsAdvanced int
	// Failed maps quarantined host names to why, fleet-wide.
	Failed map[string]error
	// Aborted is true when the context was canceled before Target.
	// Each shard stops at its own last completed inner barrier; the
	// next RunFor realigns everyone at the first outer barrier.
	Aborted bool
}

// ShardStat is one shard's view for the stats endpoint.
type ShardStat struct {
	Index         int    `json:"index"`
	Hosts         int    `json:"hosts"`
	Quarantined   int    `json:"quarantined"`
	VirtualTimeNs int64  `json:"virtual_time_ns"`
	InnerEpochs   uint64 `json:"inner_epochs"`
	HostsAdvanced uint64 `json:"hosts_advanced"`
	// RollupRefolds counts how many times this shard's cached
	// snapshot was recomputed (cache misses attributed to it).
	RollupRefolds uint64 `json:"rollup_refolds"`
	// Dirty reports whether the shard has advanced or mutated since
	// its snapshot was last folded.
	Dirty bool `json:"dirty"`
}

// ShardStats is the fleet-wide sharding summary.
type ShardStats struct {
	Shards            []ShardStat `json:"shards"`
	OuterEpochs       uint64      `json:"outer_epochs"`
	InnerEpochNs      int64       `json:"inner_epoch_ns"`
	OuterEvery        int         `json:"outer_every"`
	WorkersPerShard   int         `json:"workers_per_shard"`
	RollupCacheHits   uint64      `json:"rollup_cache_hits"`
	RollupCacheMisses uint64      `json:"rollup_cache_misses"`
}

// AutoShards picks a shard count for n hosts: one shard per ~64
// hosts, clamped to [1, 128]. 64 keeps a shard's fold and epoch work
// cache-resident while leaving enough shards at 10k hosts (157 capped
// to 128) for the outer loop to spread across cores.
func AutoShards(n int) int {
	s := (n + 63) / 64
	if s < 1 {
		s = 1
	}
	if s > 128 {
		s = 128
	}
	return s
}

// shard is one independent shard group: a contiguous name-ordered
// slice of the fleet behind its own Runner (worker pool, virtual
// clock, inner epoch loop, quarantine set).
type shard struct {
	index  int
	fleet  *Fleet
	runner *Runner

	// dirty is set after the shard advances or one of its hosts is
	// mutated, and cleared when Rollup refolds the shard. Atomic so
	// the epoch goroutines and lock-free scrape handlers never race.
	dirty atomic.Bool
	// cached is the shard's folded snapshot; valid once cacheValid.
	// Both are guarded by ShardedRunner.rollupMu.
	cached     obs.Snapshot
	cacheValid bool

	innerEpochs   atomic.Uint64
	hostsAdvanced atomic.Uint64
	refolds       atomic.Uint64
}

// live reports how many of the shard's hosts are not quarantined.
func (sh *shard) live() int {
	return len(sh.fleet.hosts) - len(sh.runner.failed)
}

// ShardedRunner advances a fleet as S independent shard groups, each
// with its own worker pool, virtual clock, and inner epoch loop,
// synchronized only at a coarse outer epoch (outer = OuterEvery inner
// epochs). Within a shard the existing Runner provides the exact
// single-barrier semantics; across shards only the outer barrier is
// shared, so shard i never waits on shard j's stragglers between
// inner epochs.
//
// Determinism survives sharding because hosts are independent
// simulations driven to absolute virtual-time targets: the inner
// barrier grid (start + k*Epoch) is the same no matter how hosts are
// partitioned, so each host's advance sequence — hence its journal
// and replay hash — is identical across shard and worker counts. The
// roll-up merge visits shards in index order over a contiguous
// name-ordered partition, which makes last-write-wins gauge folds
// byte-identical to the unsharded name-ordered fold.
//
// Like Runner, a ShardedRunner is not safe for concurrent RunFor
// calls. Rollup and MarkDirty are safe to call concurrently with a
// running RunFor (they are what the lock-free scrape routes use);
// Stats, Now, and Failed read quarantine maps and so need the same
// external serialization against RunFor as Runner's accessors — the
// HTTP layer's read lock provides it.
type ShardedRunner struct {
	fleet      *Fleet
	shards     []*shard
	shardOf    map[string]*shard
	inner      simtime.Duration
	outerEvery int
	workers    int
	bus        *obs.Bus
	onOuter    func(OuterEpochStat)

	outerEpochs atomic.Uint64

	// rollupMu guards the merge scratch and every shard's cached
	// snapshot. The scrape routes are served without the fleet lock,
	// so the roll-up path must carry its own synchronization.
	rollupMu    sync.Mutex
	mergeAcc    *obs.Accumulator
	merged      obs.Snapshot
	mergedValid bool

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	mOuterEpochs *obs.Counter
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
}

// NewShardedRunner partitions the fleet's name-sorted hosts into
// contiguous shard groups and builds one Runner per shard. Hosts
// added to the fleet afterwards are not picked up; build the sharded
// runner last (the same contract as Runner's bus wiring).
func NewShardedRunner(f *Fleet, cfg ShardConfig) *ShardedRunner {
	hosts := f.Hosts()
	n := len(hosts)
	s := cfg.Shards
	if s <= 0 {
		s = AutoShards(n)
	}
	if n > 0 && s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	inner := cfg.Epoch
	if inner <= 0 {
		inner = simtime.Millisecond
	}
	outerEvery := cfg.OuterEvery
	if outerEvery <= 0 {
		outerEvery = 4
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / s
		if workers < 1 {
			workers = 1
		}
	}
	reg := cfg.Registry
	sr := &ShardedRunner{
		fleet:      f,
		shardOf:    make(map[string]*shard, n),
		inner:      inner,
		outerEvery: outerEvery,
		workers:    workers,
		bus:        cfg.Bus,
		onOuter:    cfg.OnOuterEpoch,
		mergeAcc:   obs.NewAccumulator("fleet"),
		mOuterEpochs: reg.Counter("ihnet_fleet_outer_epochs_total",
			"Outer epoch barriers crossed by the sharded fleet runner."),
		mCacheHits: reg.Counter("ihnet_fleet_rollup_cache_hits_total",
			"Shard roll-up snapshots served from cache."),
		mCacheMisses: reg.Counter("ihnet_fleet_rollup_cache_misses_total",
			"Shard roll-up snapshots refolded because the shard was dirty."),
	}
	for i := 0; i < s; i++ {
		chunk := hosts[i*n/s : (i+1)*n/s]
		sub := subFleet(chunk)
		sh := &shard{
			index: i,
			fleet: sub,
			runner: NewRunner(sub, RunnerConfig{
				Workers:      workers,
				Epoch:        inner,
				Registry:     reg,
				Bus:          cfg.Bus,
				EpochSubject: fmt.Sprintf("shard-%03d", i),
			}),
		}
		sh.dirty.Store(true) // nothing cached yet
		for _, h := range chunk {
			sr.shardOf[h.Name] = sh
		}
		sr.shards = append(sr.shards, sh)
	}
	return sr
}

// Shards returns the shard count.
func (sr *ShardedRunner) Shards() int { return len(sr.shards) }

// Workers returns the per-shard worker-pool size.
func (sr *ShardedRunner) Workers() int { return sr.workers }

// Epoch returns the inner barrier interval.
func (sr *ShardedRunner) Epoch() simtime.Duration { return sr.inner }

// OuterEvery returns how many inner epochs make one outer epoch.
func (sr *ShardedRunner) OuterEvery() int { return sr.outerEvery }

// Bus returns the fleet-level event bus, if configured.
func (sr *ShardedRunner) Bus() *obs.Bus { return sr.bus }

// Now returns the fleet's virtual time: the furthest shard clock.
// Between RunFor calls every shard with live hosts agrees on it.
func (sr *ShardedRunner) Now() simtime.Time {
	var now simtime.Time
	for _, sh := range sr.shards {
		if t := sh.runner.Now(); t > now {
			now = t
		}
	}
	return now
}

// Failed returns the quarantined hosts and why, fleet-wide.
func (sr *ShardedRunner) Failed() map[string]error {
	out := make(map[string]error)
	for _, sh := range sr.shards {
		for k, v := range sh.runner.failed {
			out[k] = v
		}
	}
	return out
}

// Quarantine fences a host out of its shard's epoch loop; the other
// shards never notice. Same semantics as Runner.Quarantine.
func (sr *ShardedRunner) Quarantine(name string, reason error) error {
	sh := sr.shardOf[name]
	if sh == nil {
		return fmt.Errorf("fleet: unknown host %q", name)
	}
	return sh.runner.Quarantine(name, reason)
}

// Unquarantine readmits a host to its shard's epoch loop. The host
// catches up to the shard at the next inner barrier.
func (sr *ShardedRunner) Unquarantine(name string) bool {
	sh := sr.shardOf[name]
	if sh == nil {
		return false
	}
	return sh.runner.Unquarantine(name)
}

// MarkDirty records that the named host's metrics changed outside the
// epoch loop (placement, eviction, migration, snapshot, remediation),
// so the next Rollup refolds its shard. Returns false for unknown
// hosts.
func (sr *ShardedRunner) MarkDirty(name string) bool {
	sh := sr.shardOf[name]
	if sh == nil {
		return false
	}
	sh.dirty.Store(true)
	return true
}

// MarkAllDirty invalidates every shard's cached snapshot — the big
// hammer for fleet-wide mutations (rebalance, remedy sweeps).
func (sr *ShardedRunner) MarkAllDirty() {
	for _, sh := range sr.shards {
		sh.dirty.Store(true)
	}
}

// RunFor advances every live host by d: the outer loop walks outer
// barriers (OuterEvery inner epochs apart) and, for each, runs all
// shards concurrently to the barrier — each shard crossing its inner
// barriers independently on its own worker pool. Shards with no live
// hosts are skipped (their clocks stay frozen; readmitted hosts catch
// up at the next barrier they participate in).
func (sr *ShardedRunner) RunFor(ctx context.Context, d simtime.Duration) (ShardReport, error) {
	if d <= 0 {
		return ShardReport{}, fmt.Errorf("fleet: non-positive run duration %v", d)
	}
	start := sr.Now()
	target := start.Add(d)
	outerDur := simtime.Duration(sr.outerEvery) * sr.inner
	rep := ShardReport{Target: target}
	reports := make([]RunReport, len(sr.shards))
	for k := 0; ; k++ {
		barrier := start.Add(simtime.Duration(k+1) * outerDur)
		if barrier > target {
			barrier = target
		}
		if ctx != nil && ctx.Err() != nil {
			rep.Aborted = true
			break
		}
		var wg sync.WaitGroup
		for i, sh := range sr.shards {
			reports[i] = RunReport{}
			if sh.live() == 0 {
				continue
			}
			step := barrier.Sub(sh.runner.Now())
			if step <= 0 {
				continue
			}
			wg.Add(1)
			go func(i int, sh *shard, step simtime.Duration) {
				defer wg.Done()
				r, _ := sh.runner.RunFor(ctx, step)
				sh.innerEpochs.Add(uint64(r.Epochs))
				sh.hostsAdvanced.Add(uint64(r.HostsAdvanced))
				if r.HostsAdvanced > 0 {
					sh.dirty.Store(true)
				}
				reports[i] = r
			}(i, sh, step)
		}
		wg.Wait()
		inner, advanced := 0, 0
		for _, r := range reports {
			if r.Epochs > inner {
				inner = r.Epochs
			}
			advanced += r.HostsAdvanced
			if r.Aborted {
				rep.Aborted = true
			}
		}
		rep.Epochs += inner
		rep.HostsAdvanced += advanced
		if rep.Aborted {
			break
		}
		rep.OuterEpochs++
		sr.outerEpochs.Add(1)
		sr.mOuterEpochs.Inc()
		sr.bus.Publish(obs.Event{
			Kind: obs.KindFleetEpoch, Virtual: barrier,
			Subject: "fleet", Value: float64(advanced),
		})
		if sr.onOuter != nil {
			sr.onOuter(OuterEpochStat{
				Index: k, Target: barrier,
				HostsAdvanced: advanced, InnerEpochs: inner,
			})
		}
		if barrier == target {
			break
		}
	}
	rep.Failed = sr.Failed()
	if rep.Aborted && ctx != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// Rollup returns the fleet snapshot, hierarchically: each dirty shard
// is refolded (O(its hosts)) into its cached per-shard snapshot, then
// the S shard snapshots merge in shard order. A scrape between
// advances touches no host registry at all — it reuses every shard's
// cache and, when nothing is dirty, returns the cached merge
// directly. Cost is O(dirty shards x shard size + S), not O(hosts).
//
// The returned snapshot is shared with the cache: treat it as
// read-only.
func (sr *ShardedRunner) Rollup() obs.Snapshot {
	sr.rollupMu.Lock()
	defer sr.rollupMu.Unlock()
	misses := 0
	for _, sh := range sr.shards {
		if wasDirty := sh.dirty.Swap(false); sh.cacheValid && !wasDirty {
			continue
		}
		sh.cached = sh.runner.Rollup()
		sh.cacheValid = true
		sh.refolds.Add(1)
		misses++
	}
	hits := len(sr.shards) - misses
	sr.cacheHits.Add(uint64(hits))
	sr.mCacheHits.Add(uint64(hits))
	sr.cacheMisses.Add(uint64(misses))
	sr.mCacheMisses.Add(uint64(misses))
	if misses == 0 && sr.mergedValid {
		return sr.merged
	}
	sr.mergeAcc.Reset()
	for _, sh := range sr.shards {
		sr.mergeAcc.AddSnapshot(sh.cached)
	}
	sr.merged = sr.mergeAcc.Snapshot()
	sr.mergedValid = true
	return sr.merged
}

// Stats reports per-shard and cache state for the stats endpoint.
func (sr *ShardedRunner) Stats() ShardStats {
	st := ShardStats{
		Shards:            make([]ShardStat, 0, len(sr.shards)),
		OuterEpochs:       sr.outerEpochs.Load(),
		InnerEpochNs:      int64(sr.inner),
		OuterEvery:        sr.outerEvery,
		WorkersPerShard:   sr.workers,
		RollupCacheHits:   sr.cacheHits.Load(),
		RollupCacheMisses: sr.cacheMisses.Load(),
	}
	for _, sh := range sr.shards {
		st.Shards = append(st.Shards, ShardStat{
			Index:         sh.index,
			Hosts:         len(sh.fleet.hosts),
			Quarantined:   len(sh.runner.failed),
			VirtualTimeNs: int64(sh.runner.Now()),
			InnerEpochs:   sh.innerEpochs.Load(),
			HostsAdvanced: sh.hostsAdvanced.Load(),
			RollupRefolds: sh.refolds.Load(),
			Dirty:         sh.dirty.Load(),
		})
	}
	return st
}
