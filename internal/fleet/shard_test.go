package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/snap"
)

// deterministicSnapshot drops the wall-clock-derived families from any
// roll-up snapshot — the sharded counterpart of deterministicRollup.
func deterministicSnapshot(s obs.Snapshot) []byte {
	filtered := s.Filter(func(name string) bool {
		return !strings.HasSuffix(name, "_seconds") &&
			!strings.HasSuffix(name, "_duration_ns") &&
			!strings.HasSuffix(name, "_latency_us")
	})
	buf, err := json.Marshal(filtered)
	if err != nil {
		panic(err)
	}
	return buf
}

// TestShardedMatchesUnsharded: the sharded engine must be an
// implementation detail — same per-host state hashes and same
// (wall-clock-filtered) roll-up bytes as the single-barrier Runner
// over the same fleet history.
func TestShardedMatchesUnsharded(t *testing.T) {
	plain := buildFleet(t, 6)
	r := NewRunner(plain, RunnerConfig{Workers: 4, Epoch: 500 * simtime.Microsecond})
	if _, err := r.RunFor(context.Background(), 4*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}

	sharded := buildFleet(t, 6)
	sr := NewShardedRunner(sharded, ShardConfig{
		Shards: 3, Workers: 2,
		Epoch: 500 * simtime.Microsecond, OuterEvery: 2,
	})
	rep, err := sr.RunFor(context.Background(), 4*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OuterEpochs != 4 || rep.Epochs != 8 || rep.HostsAdvanced != 6*8 {
		t.Fatalf("sharded report %+v, want 4 outer / 8 inner epochs, 48 host-advances", rep)
	}

	want, got := hashes(plain), hashes(sharded)
	for name, h := range want {
		if got[name] != h {
			t.Fatalf("host %s diverged under sharding:\n plain   %s\n sharded %s", name, h, got[name])
		}
	}
	if a, b := deterministicRollup(r), deterministicSnapshot(sr.Rollup()); !bytes.Equal(a, b) {
		t.Fatalf("roll-up bytes differ between plain and sharded engines:\n%s\n%s", a, b)
	}
}

// TestShardedRollupDeterministicAcrossShardsAndWorkers extends the
// PR 6 across-workers merge proof to the sharded engine: roll-up
// bytes and per-host replay hashes must be byte-identical across
// (shards x workers) in {1,4,16} x {1,8}.
func TestShardedRollupDeterministicAcrossShardsAndWorkers(t *testing.T) {
	var wantRoll []byte
	var wantHashes map[string]string
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			f := buildFleet(t, 16)
			sr := NewShardedRunner(f, ShardConfig{
				Shards: shards, Workers: workers,
				Epoch: 500 * simtime.Microsecond, OuterEvery: 2,
			})
			if _, err := sr.RunFor(context.Background(), 4*simtime.Millisecond); err != nil {
				t.Fatal(err)
			}
			roll := deterministicSnapshot(sr.Rollup())
			hs := hashes(f)
			if wantRoll == nil {
				wantRoll, wantHashes = roll, hs
				continue
			}
			if !bytes.Equal(roll, wantRoll) {
				t.Fatalf("shards=%d workers=%d: roll-up bytes diverge:\n%s\n%s",
					shards, workers, wantRoll, roll)
			}
			for name, h := range wantHashes {
				if hs[name] != h {
					t.Fatalf("shards=%d workers=%d: host %s replay hash diverged", shards, workers, name)
				}
			}
		}
	}
}

// TestShardedJournalsReplayable: per-shard execution still journals
// through each host's session, and every journal passes the twice-
// replay determinism gate.
func TestShardedJournalsReplayable(t *testing.T) {
	f := buildFleet(t, 4)
	sr := NewShardedRunner(f, ShardConfig{
		Shards: 2, Workers: 2,
		Epoch: 500 * simtime.Microsecond, OuterEvery: 2,
	})
	if _, err := sr.RunFor(context.Background(), 3*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, h := range f.Hosts() {
		div, err := snap.CheckDeterminism(h.Sess.Config(), h.Sess.Journal())
		if err != nil {
			t.Fatalf("host %s: %v", h.Name, err)
		}
		if div != nil {
			t.Fatalf("host %s journal is nondeterministic under sharding: %v", h.Name, div)
		}
	}
}

// TestShardedQuarantineIsolation: a host panicking mid-inner-epoch is
// quarantined within its shard; its shard sibling and all other
// shards keep advancing, and the fleet roll-up stays deterministic
// across worker counts with the failure in place.
func TestShardedQuarantineIsolation(t *testing.T) {
	build := func(workers int) (*Fleet, *ShardedRunner) {
		f := buildFleet(t, 8)
		// Host c (shard 1 of {a,b},{c,d},{e,f},{g,h}) detonates at
		// 700us, mid first inner epoch.
		f.Host("c").Mgr.Engine().After(700*simtime.Microsecond, func() { panic("injected fault") })
		sr := NewShardedRunner(f, ShardConfig{
			Shards: 4, Workers: workers,
			Epoch: 500 * simtime.Microsecond, OuterEvery: 2,
		})
		return f, sr
	}

	f, sr := build(2)
	rep, err := sr.RunFor(context.Background(), 4*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || rep.Failed["c"] == nil {
		t.Fatalf("failed set %v, want exactly host c", rep.Failed)
	}
	end := simtime.Time(4 * simtime.Millisecond)
	for _, h := range f.Hosts() {
		now := h.Mgr.Engine().Now()
		if h.Name == "c" {
			if now >= end {
				t.Fatalf("quarantined host c reached %v; its clock should be frozen mid-epoch", now)
			}
			continue
		}
		if now != end {
			t.Fatalf("live host %s at %v, want %v", h.Name, now, end)
		}
	}
	st := sr.Stats()
	if st.Shards[1].Quarantined != 1 {
		t.Fatalf("shard 1 quarantined=%d, want 1: %+v", st.Shards[1].Quarantined, st.Shards)
	}
	for i, sh := range st.Shards {
		if sh.HostsAdvanced == 0 {
			t.Fatalf("shard %d never advanced a host: %+v", i, sh)
		}
	}

	// Same fault, different worker count: identical roll-up bytes and
	// state hashes, including the frozen host's partial state.
	f2, sr2 := build(1)
	if _, err := sr2.RunFor(context.Background(), 4*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a, b := deterministicSnapshot(sr.Rollup()), deterministicSnapshot(sr2.Rollup()); !bytes.Equal(a, b) {
		t.Fatalf("roll-up bytes diverge across worker counts with a quarantined host:\n%s\n%s", a, b)
	}
	want, got := hashes(f), hashes(f2)
	for name, h := range want {
		if got[name] != h {
			t.Fatalf("host %s state hash diverged across worker counts", name)
		}
	}
}

// TestShardedQuarantineDelegation: operator quarantine routes to the
// owning shard, unknown hosts error, and a readmitted host catches up
// to the fleet at its next barrier.
func TestShardedQuarantineDelegation(t *testing.T) {
	f := buildFleet(t, 4)
	sr := NewShardedRunner(f, ShardConfig{Shards: 2, Workers: 2, Epoch: 500 * simtime.Microsecond})
	if err := sr.Quarantine("nope", nil); err == nil {
		t.Fatal("quarantining an unknown host succeeded")
	}
	if err := sr.Quarantine("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.Host("b").Mgr.Engine().Now() != 0 {
		t.Fatal("quarantined host advanced")
	}
	if !sr.Unquarantine("b") || sr.Unquarantine("b") {
		t.Fatal("unquarantine should succeed exactly once")
	}
	if _, err := sr.RunFor(context.Background(), simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := simtime.Time(3 * simtime.Millisecond)
	if now := f.Host("b").Mgr.Engine().Now(); now != want {
		t.Fatalf("readmitted host at %v, want %v", now, want)
	}
}

// TestShardedRollupCache: scrapes between advances are pure cache
// hits returning the same merged snapshot; advancing or marking a
// host dirty refolds exactly the owning shard.
func TestShardedRollupCache(t *testing.T) {
	f := buildFleet(t, 8)
	sr := NewShardedRunner(f, ShardConfig{Shards: 4, Workers: 2, Epoch: 500 * simtime.Microsecond})
	if _, err := sr.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}

	r1 := sr.Rollup() // first scrape: all shards dirty
	st := sr.Stats()
	if st.RollupCacheMisses != 4 || st.RollupCacheHits != 0 {
		t.Fatalf("after first scrape: hits=%d misses=%d, want 0/4", st.RollupCacheHits, st.RollupCacheMisses)
	}
	r2 := sr.Rollup() // pure cache hit
	st = sr.Stats()
	if st.RollupCacheHits != 4 || st.RollupCacheMisses != 4 {
		t.Fatalf("after cached scrape: hits=%d misses=%d, want 4/4", st.RollupCacheHits, st.RollupCacheMisses)
	}
	if a, b := deterministicSnapshot(r1), deterministicSnapshot(r2); !bytes.Equal(a, b) {
		t.Fatal("cached scrape returned different bytes")
	}

	// The cached fold must equal a from-scratch unsharded fold.
	fresh := NewRunner(f, RunnerConfig{Workers: 1})
	if a, b := deterministicSnapshot(fresh.Rollup()), deterministicSnapshot(r2); !bytes.Equal(a, b) {
		t.Fatalf("cached sharded roll-up diverges from direct fold:\n%s\n%s", a, b)
	}

	if sr.MarkDirty("ghost") {
		t.Fatal("marking an unknown host dirty succeeded")
	}
	if !sr.MarkDirty("a") {
		t.Fatal("marking host a dirty failed")
	}
	sr.Rollup()
	st = sr.Stats()
	if st.RollupCacheMisses != 5 || st.RollupCacheHits != 7 {
		t.Fatalf("after dirty-one scrape: hits=%d misses=%d, want 7/5", st.RollupCacheHits, st.RollupCacheMisses)
	}
	if st.Shards[0].RollupRefolds != 2 {
		t.Fatalf("shard 0 refolds=%d, want 2", st.Shards[0].RollupRefolds)
	}

	// Advancing dirties every shard that moved hosts.
	if _, err := sr.RunFor(context.Background(), simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	sr.Rollup()
	st = sr.Stats()
	if st.RollupCacheMisses != 9 {
		t.Fatalf("advance did not dirty all shards: misses=%d, want 9", st.RollupCacheMisses)
	}

	sr.MarkAllDirty()
	sr.Rollup()
	st = sr.Stats()
	if st.RollupCacheMisses != 13 {
		t.Fatalf("MarkAllDirty did not dirty all shards: misses=%d, want 13", st.RollupCacheMisses)
	}
}

// TestSynthDeterministic: equal specs produce byte-identical fleets;
// the record and workload knobs do what they say.
func TestSynthDeterministic(t *testing.T) {
	if _, err := Synth(SynthSpec{Hosts: 0}); err == nil {
		t.Fatal("zero-host synth succeeded")
	}
	if _, err := Synth(SynthSpec{Hosts: 1, Preset: "warp-core"}); err == nil {
		t.Fatal("unknown preset succeeded")
	}

	spec := SynthSpec{Hosts: 4, Seed: 7, Record: true, Workload: true}
	a, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	ah, bh := hashes(a), hashes(b)
	if len(ah) != 4 {
		t.Fatalf("synth built %d hosts, want 4", len(ah))
	}
	for name, h := range ah {
		if !strings.HasPrefix(name, "synth-") {
			t.Fatalf("unexpected host name %q", name)
		}
		if bh[name] != h {
			t.Fatalf("host %s differs between equal synth specs", name)
		}
	}
	for _, h := range a.Hosts() {
		if h.Sess == nil {
			t.Fatalf("record spec left host %s without a session", h.Name)
		}
		if h.Mgr.Tenant("kv") == nil {
			t.Fatalf("workload spec left host %s without the kv tenant", h.Name)
		}
	}

	// Advancing sharded must keep synthetic hosts deterministic too.
	sr := NewShardedRunner(a, ShardConfig{Shards: 2, Workers: 2})
	if _, err := sr.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	sr2 := NewShardedRunner(b, ShardConfig{Shards: 4, Workers: 1})
	if _, err := sr2.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	ah, bh = hashes(a), hashes(b)
	for name, h := range ah {
		if bh[name] != h {
			t.Fatalf("synth host %s diverged across shard configs", name)
		}
	}
}

// TestFleetSmokeSharded1k is the make fleet-smoke gate: a sharded
// 1024-host advance plus the roll-up determinism comparison across
// two shard/worker configurations. Heavy, so it only runs when
// IHNET_FLEET_SMOKE=1.
func TestFleetSmokeSharded1k(t *testing.T) {
	if os.Getenv("IHNET_FLEET_SMOKE") != "1" {
		t.Skip("set IHNET_FLEET_SMOKE=1 to run the 1k-host smoke")
	}
	const n = 1024
	run := func(shards, workers int) (*Fleet, []byte) {
		f, err := Synth(SynthSpec{Hosts: n, Seed: 1, Workload: true})
		if err != nil {
			t.Fatal(err)
		}
		sr := NewShardedRunner(f, ShardConfig{Shards: shards, Workers: workers})
		rep, err := sr.RunFor(context.Background(), 2*simtime.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if rep.HostsAdvanced != n*rep.Epochs {
			t.Fatalf("advanced %d host-epochs, want %d", rep.HostsAdvanced, n*rep.Epochs)
		}
		roll := sr.Rollup()
		if roll.Hosts != n {
			t.Fatalf("roll-up covers %d hosts, want %d", roll.Hosts, n)
		}
		return f, deterministicSnapshot(roll)
	}
	fa, ra := run(0, 0) // auto sharding
	fb, rb := run(4, 8)
	if !bytes.Equal(ra, rb) {
		t.Fatal("1k-host roll-up bytes differ across shard configs")
	}
	ah, bh := hashes(fa), hashes(fb)
	for i := 0; i < n; i += 101 { // spot-check state hashes
		name := fmt.Sprintf("synth-%05d", i)
		if ah[name] == "" || ah[name] != bh[name] {
			t.Fatalf("host %s state hash diverged across shard configs", name)
		}
	}
}
