package fleet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// buildFleet constructs n identical recording hosts (host i seeded
// i+1) with a few admitted tenants and one degraded link, so the
// simulations have real work to do.
func buildFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f := New()
	for i := 0; i < n; i++ {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		sess, err := snap.NewSession(snap.Config{Preset: "two-socket", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddSession(string(rune('a'+i)), sess); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range f.Hosts() {
		if _, err := h.admit("kv", []intent.Target{
			{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)},
		}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := h.Mgr.Fabric().DegradeLink("pcieswitch0->nic0", 0.1, simtime.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

func hashes(f *Fleet) map[string]string {
	out := make(map[string]string)
	for _, h := range f.Hosts() {
		out[h.Name] = snap.StateHash(h.Mgr)
	}
	return out
}

// TestRunnerMatchesSerial is the core determinism claim: advancing the
// fleet on many workers produces bit-identical per-host state to the
// one-worker serial loop.
func TestRunnerMatchesSerial(t *testing.T) {
	serial := buildFleet(t, 4)
	parallel := buildFleet(t, 4)
	if _, err := NewRunner(serial, RunnerConfig{Workers: 1}).RunFor(context.Background(), 5*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(parallel, RunnerConfig{Workers: 8}).RunFor(context.Background(), 5*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	want, got := hashes(serial), hashes(parallel)
	for name, h := range want {
		if got[name] != h {
			t.Fatalf("host %s diverged under parallel execution:\n serial   %s\n parallel %s", name, h, got[name])
		}
	}
}

// TestRunnerDeterminismGate replays a fleet host's journal twice on
// fresh hosts (the internal/snap determinism gate) after a parallel
// run: parallelism must not leak into any host's recorded history.
func TestRunnerDeterminismGate(t *testing.T) {
	f := buildFleet(t, 3)
	r := NewRunner(f, RunnerConfig{Workers: 4, Epoch: 500 * simtime.Microsecond})
	if _, err := r.RunFor(context.Background(), 3*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A fleet-level control action between runs lands in the journals
	// too (Place journals through the chosen host's session).
	if _, _, err := f.Place("late", []intent.Target{
		{Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(4)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, h := range f.Hosts() {
		div, err := snap.CheckDeterminism(h.Sess.Config(), h.Sess.Journal())
		if err != nil {
			t.Fatalf("host %s: %v", h.Name, err)
		}
		if div != nil {
			t.Fatalf("host %s journal is nondeterministic: %v", h.Name, div)
		}
	}
}

// TestRunnerEpochBarrier: after every epoch all live hosts sit at the
// same virtual time, even when they started skewed.
func TestRunnerEpochBarrier(t *testing.T) {
	f := buildFleet(t, 3)
	// Skew host a half an epoch ahead.
	if err := f.Host("a").advanceTo(simtime.Time(500 * simtime.Microsecond)); err != nil {
		t.Fatal(err)
	}
	var barriers []EpochStat
	r := NewRunner(f, RunnerConfig{
		Workers: 4,
		Epoch:   simtime.Millisecond,
		OnEpoch: func(st EpochStat) { barriers = append(barriers, st) },
	})
	if _, err := r.RunFor(context.Background(), 2500*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(barriers) != 3 {
		t.Fatalf("epochs = %d, want 3", len(barriers))
	}
	for _, st := range barriers {
		if len(st.Results) != 3 {
			t.Fatalf("epoch %d has %d results", st.Index, len(st.Results))
		}
		for i, res := range st.Results {
			if res.Now != st.Target {
				t.Fatalf("epoch %d host %s at %v, barrier %v", st.Index, res.Host, res.Now, st.Target)
			}
			if i > 0 && st.Results[i-1].Host >= res.Host {
				t.Fatalf("epoch %d results not name-ordered: %q before %q",
					st.Index, st.Results[i-1].Host, res.Host)
			}
		}
	}
	if now := r.Now(); now != simtime.Time(500*simtime.Microsecond)+simtime.Time(2500*simtime.Microsecond) {
		t.Fatalf("fleet time %v after skewed run", now)
	}
}

// TestRunnerIsolatesHostFailure: a host that panics mid-epoch is
// quarantined; its siblings advance to the target with bit-identical
// state to a run where the bad host never existed.
func TestRunnerIsolatesHostFailure(t *testing.T) {
	f := buildFleet(t, 3)
	bad := f.Host("b")
	bad.Mgr.Engine().After(700*simtime.Microsecond, func() {
		panic("injected fault")
	})
	r := NewRunner(f, RunnerConfig{Workers: 4})
	rep, err := r.RunFor(context.Background(), 4*simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || rep.Failed["b"] == nil {
		t.Fatalf("failed = %v, want host b quarantined", rep.Failed)
	}
	// Siblings reached the target...
	for _, name := range []string{"a", "c"} {
		if now := f.Host(name).Mgr.Engine().Now(); now != simtime.Time(4*simtime.Millisecond) {
			t.Fatalf("host %s at %v, want 4ms", name, now)
		}
	}
	// ...with exactly the state a failure-free run gives them.
	control := buildFleet(t, 3)
	if _, err := NewRunner(control, RunnerConfig{Workers: 1}).RunFor(context.Background(), 4*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "c"} {
		if got, want := snap.StateHash(f.Host(name).Mgr), snap.StateHash(control.Host(name).Mgr); got != want {
			t.Fatalf("sibling %s corrupted by host b's failure", name)
		}
	}
	// The quarantined host stays parked on subsequent runs.
	frozen := bad.Mgr.Engine().Now()
	if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if now := bad.Mgr.Engine().Now(); now != frozen {
		t.Fatalf("quarantined host advanced from %v to %v", frozen, now)
	}
}

// TestRunnerCancel: cancellation stops the run at an epoch barrier —
// never mid-epoch — and reports the abort.
func TestRunnerCancel(t *testing.T) {
	f := buildFleet(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(f, RunnerConfig{
		Workers: 2,
		Epoch:   simtime.Millisecond,
		OnEpoch: func(st EpochStat) {
			if st.Index == 1 {
				cancel()
			}
		},
	})
	rep, err := r.RunFor(ctx, 10*simtime.Millisecond)
	if err == nil || !rep.Aborted {
		t.Fatalf("canceled run: err=%v aborted=%v", err, rep.Aborted)
	}
	if rep.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2 (abort after second barrier)", rep.Epochs)
	}
	for _, h := range f.Hosts() {
		if now := h.Mgr.Engine().Now(); now != simtime.Time(2*simtime.Millisecond) {
			t.Fatalf("host %s at %v, want the 2ms barrier", h.Name, now)
		}
	}
}

func TestRunnerRejectsBadDuration(t *testing.T) {
	f := buildFleet(t, 1)
	if _, err := NewRunner(f, RunnerConfig{}).RunFor(context.Background(), 0); err == nil {
		t.Fatal("zero-duration run accepted")
	}
}

// TestLoadDir boots a fleet from a directory of host-spec documents
// and checks naming, seeding and per-host journaling.
func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"rack1-box1", "rack1-box2"} {
		data, err := json.Marshal(topology.TwoSocketServer())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultOptions()
	opts.Seed = 7
	f, err := LoadDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	hosts := f.Hosts()
	if len(hosts) != 2 || hosts[0].Name != "rack1-box1" || hosts[1].Name != "rack1-box2" {
		t.Fatalf("hosts: %+v", hosts)
	}
	for i, h := range hosts {
		if h.Sess == nil {
			t.Fatalf("host %s not recording", h.Name)
		}
		if got := h.Mgr.Options().Seed; got != 7+int64(i) {
			t.Fatalf("host %s seed %d, want %d", h.Name, got, 7+int64(i))
		}
	}
	if _, err := LoadDir(t.TempDir(), opts); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestQuarantineExcludesAndReadmits covers the operator-initiated
// quarantine API: a quarantined host is frozen out of epochs, an
// unquarantined one rejoins and catches up to the fleet barrier.
func TestQuarantineExcludesAndReadmits(t *testing.T) {
	f := buildFleet(t, 3)
	r := NewRunner(f, RunnerConfig{Workers: 2, Epoch: 200 * simtime.Microsecond})

	if err := r.Quarantine("nope", nil); err == nil {
		t.Fatal("unknown host quarantined")
	}
	if err := r.Quarantine("b", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Quarantine("b", nil); err == nil {
		t.Fatal("double quarantine accepted")
	}
	if _, ok := r.Failed()["b"]; !ok {
		t.Fatal("quarantined host missing from Failed()")
	}

	frozen := f.Host("b").Mgr.Engine().Now()
	if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := f.Host("b").Mgr.Engine().Now(); got != frozen {
		t.Fatalf("quarantined host advanced: %v -> %v", frozen, got)
	}
	if f.Host("a").Mgr.Engine().Now() == frozen {
		t.Fatal("live hosts did not advance")
	}

	if !r.Unquarantine("b") {
		t.Fatal("unquarantine reported missing host")
	}
	if r.Unquarantine("b") {
		t.Fatal("double unquarantine reported success")
	}
	if _, err := r.RunFor(context.Background(), simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	// One barrier later every live host, b included, is realigned.
	now := r.Now()
	for _, h := range f.Hosts() {
		if got := h.Mgr.Engine().Now(); got != now {
			t.Fatalf("host %s at %v, fleet at %v after readmission", h.Name, got, now)
		}
	}
	if len(r.Failed()) != 0 {
		t.Fatalf("Failed() = %v, want empty", r.Failed())
	}
}
