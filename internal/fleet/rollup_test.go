package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// deterministicRollup drops the wall-clock-derived metric families
// (encode/epoch timings, command latency) that legitimately vary
// between runs; everything left is a pure function of the simulation.
func deterministicRollup(r *Runner) []byte {
	s := r.Rollup().Filter(func(name string) bool {
		return !strings.HasSuffix(name, "_seconds") &&
			!strings.HasSuffix(name, "_duration_ns") &&
			!strings.HasSuffix(name, "_latency_us")
	})
	buf, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return buf
}

// TestRollupDeterministicAcrossWorkers extends the PR 3/5
// identical-across-workers assertion to roll-up bytes: the same fleet
// advanced serially and on eight workers must produce byte-identical
// (wall-clock-filtered) fleet roll-ups — metrics are part of the
// deterministic surface, not a best-effort side channel.
func TestRollupDeterministicAcrossWorkers(t *testing.T) {
	var rollups [][]byte
	for _, workers := range []int{1, 8} {
		f := buildFleet(t, 4)
		r := NewRunner(f, RunnerConfig{Workers: workers, Epoch: 500 * simtime.Microsecond})
		if _, err := r.RunFor(context.Background(), 5*simtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		rollups = append(rollups, deterministicRollup(r))
	}
	if !bytes.Equal(rollups[0], rollups[1]) {
		t.Fatalf("roll-up bytes differ between 1 and 8 workers:\n%s\n%s",
			rollups[0], rollups[1])
	}
}

// TestRollupAggregates sanity-checks the fold: fleet counters are the
// sum over hosts, histograms carry every host's observations, and the
// host count matches.
func TestRollupAggregates(t *testing.T) {
	f := buildFleet(t, 3)
	r := NewRunner(f, RunnerConfig{Workers: 2})
	if _, err := r.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	roll := r.Rollup()
	if roll.Hosts != 3 || roll.Source != "fleet" {
		t.Fatalf("rollup hosts=%d source=%q, want 3/fleet", roll.Hosts, roll.Source)
	}
	var wantAdmissions uint64
	for _, h := range f.Hosts() {
		wantAdmissions += h.Mgr.Obs().Registry.Snapshot(h.Name).Counters["ihnet_core_admissions_total"]
	}
	if wantAdmissions == 0 {
		t.Fatal("hosts recorded no admissions; fixture broken")
	}
	if got := roll.Counters["ihnet_core_admissions_total"]; got != wantAdmissions {
		t.Fatalf("rolled-up admissions %d, want %d", got, wantAdmissions)
	}
	hist, ok := roll.Histograms["ihnet_fabric_recompute_duration_ns"]
	if !ok || hist.Count == 0 {
		t.Fatalf("rollup missing fabric recompute histogram: %+v", hist)
	}
	if q := hist.Quantile(0.5); q <= 0 {
		t.Fatalf("merged median %g, want > 0", q)
	}
}

// TestFleetBusFanIn: with a fleet bus configured, one subscription
// observes every host's events (tagged with the host name) plus the
// runner's own epoch barrier events.
func TestFleetBusFanIn(t *testing.T) {
	f := buildFleet(t, 3)
	bus := obs.NewBus(4096)
	r := NewRunner(f, RunnerConfig{Workers: 2, Bus: bus})
	sub := bus.Subscribe(4096)
	defer sub.Close()
	if _, err := r.RunFor(context.Background(), 2*simtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	hosts := make(map[string]int)
	epochs := 0
	var lastSeq uint64
	for _, be := range sub.Drain() {
		if be.Seq <= lastSeq {
			t.Fatalf("bus seq went backwards: %d after %d", be.Seq, lastSeq)
		}
		lastSeq = be.Seq
		if be.Event.Kind == obs.KindFleetEpoch {
			epochs++
			continue
		}
		if be.Event.Host == "" {
			t.Fatalf("fan-in event without host tag: %+v", be.Event)
		}
		hosts[be.Event.Host]++
	}
	if epochs == 0 {
		t.Fatal("no fleet-epoch events on the bus")
	}
	for _, h := range f.Hosts() {
		if hosts[h.Name] == 0 {
			t.Fatalf("no events from host %s (saw %v)", h.Name, hosts)
		}
	}
}
