package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/snap"
)

// LoadDir boots one recording host per *.json host-spec file in dir
// (topology.FromJSON documents, e.g. hosts/lab-box.json) and returns
// them as a fleet. Host names are the file base names; files are
// processed in sorted order and host i gets seed opts.Seed+i, so a
// directory of specs always yields the same fleet — the fleet-level
// analogue of the per-host determinism contract.
//
// Every host is wrapped in a snap.Session whose config embeds the spec
// document itself, so a per-host snapshot downloaded from the fleet
// daemon is self-describing: `ihdiag replay` can verify it without
// access to the original directory.
func LoadDir(dir string, opts core.Options) (*Fleet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fleet: no *.json host specs in %s", dir)
	}
	sort.Strings(files)
	f := New()
	for i, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		hostOpts := opts
		hostOpts.Seed = opts.Seed + int64(i)
		sess, err := snap.NewSession(snap.Config{Topology: data, Options: hostOpts})
		if err != nil {
			return nil, fmt.Errorf("fleet: host spec %s: %w", name, err)
		}
		if _, err := f.AddSession(strings.TrimSuffix(name, ".json"), sess); err != nil {
			return nil, err
		}
	}
	return f, nil
}
