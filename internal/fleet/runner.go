package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// RunnerConfig tunes the parallel fleet execution engine.
type RunnerConfig struct {
	// Workers is the number of goroutines advancing hosts. Zero means
	// GOMAXPROCS; one degenerates to the serial loop (useful as the
	// baseline in benchmarks and determinism checks).
	Workers int
	// Epoch is the barrier interval: every host is advanced to the same
	// virtual-time boundary before any host starts the next interval,
	// so fleet-level reads (pressure, rebalance, migration) always
	// observe hosts at one instant. Zero means 1ms.
	Epoch simtime.Duration
	// Registry receives the runner's metrics. Nil works (metrics are
	// kept but not exported), matching the obs package's contract.
	Registry *obs.Registry
	// OnEpoch, when set, runs on the caller's goroutine after each
	// barrier with every host parked at the same virtual time. This is
	// the hook for fleet-level control decisions between epochs.
	OnEpoch func(EpochStat)
	// Bus, when set, is the fleet-level event stream: every host's
	// trace bus forwards into it (events tagged with the host name),
	// and the runner publishes its own epoch and quarantine events
	// there — one SSE subscription observes the whole fleet.
	Bus *obs.Bus
	// EpochSubject is the Subject carried by the runner's epoch events
	// on the bus. Empty means "fleet"; the sharded engine names each
	// shard's runner (e.g. "shard-03") so stream consumers can tell
	// inner (per-shard) barriers from the outer fleet barrier.
	EpochSubject string
}

// HostResult is one host's outcome for one epoch.
type HostResult struct {
	// Host is the host name; results are always in name order.
	Host string
	// Now is the host's virtual time after the epoch.
	Now simtime.Time
	// Wall is how long the advance took in wall-clock time — the
	// straggler signal.
	Wall time.Duration
	// Err is non-nil when the host's simulation panicked or refused the
	// advance. A failed host is quarantined: it is excluded from all
	// subsequent epochs so one bad host cannot corrupt its siblings.
	Err error
}

// EpochStat describes one completed epoch.
type EpochStat struct {
	// Index counts epochs within one RunFor call, starting at 0.
	Index int
	// Target is the virtual-time barrier every live host reached.
	Target simtime.Time
	// Results holds one entry per host that participated, sorted by
	// host name. The ordering is deterministic by construction: results
	// are merged by name-sorted index, never by completion order.
	Results []HostResult
}

// RunReport summarizes one RunFor call.
type RunReport struct {
	// Epochs is the number of barriers crossed.
	Epochs int
	// Target is the virtual time the fleet was asked to reach.
	Target simtime.Time
	// HostsAdvanced counts host-epoch advances performed.
	HostsAdvanced int
	// Failed maps quarantined host names to the error that stopped
	// them (including hosts quarantined in earlier RunFor calls).
	Failed map[string]error
	// Aborted is true when the context was canceled before Target; the
	// fleet is left aligned at the last completed barrier, never
	// mid-epoch.
	Aborted bool
}

// Runner advances every host of a fleet concurrently, one goroutine
// per worker with hosts sharded across workers, synchronized by epoch
// barriers. Hosts are independent simulations, so running them on
// different goroutines cannot change any host's results — the runner's
// job is to preserve that determinism at the fleet level: barriers
// keep all hosts at one virtual time between epochs, and per-epoch
// results are merged in host-name order regardless of which worker
// finished first.
//
// A Runner is not safe for concurrent use; callers (the HTTP fleet
// server, the daemon's auto-advance loop) serialize RunFor calls.
type Runner struct {
	fleet        *Fleet
	workers      int
	epoch        simtime.Duration
	onEpoch      func(EpochStat)
	failed       map[string]error
	bus          *obs.Bus
	epochSubject string

	// rollupAcc is the reused fold scratch: Rollup refolds into it
	// under rollupMu instead of allocating a fresh accumulator (and a
	// fresh dense bucket array per histogram family) on every scrape.
	// The mutex exists because /metrics and the roll-up route are
	// served lock-free by the HTTP layer, so scrapes can race.
	rollupMu  sync.Mutex
	rollupAcc *obs.Accumulator

	mEpochs        *obs.Counter
	mHostsAdvanced *obs.Counter
	mHostFailures  *obs.Counter
	mStragglers    *obs.Counter
	hEpochSeconds  *obs.Histogram
	hStragglerX    *obs.Histogram
}

// NewRunner builds a parallel runner over the fleet.
func NewRunner(f *Fleet, cfg RunnerConfig) *Runner {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	epoch := cfg.Epoch
	if epoch <= 0 {
		epoch = simtime.Millisecond
	}
	reg := cfg.Registry
	if cfg.Bus != nil {
		// Fan every host's event stream into the fleet bus, tagged with
		// the host name. Hosts added to the fleet after runner
		// construction are not auto-wired; build the runner last.
		for _, h := range f.Hosts() {
			h.Mgr.Obs().Tracer.Bus().ForwardTo(cfg.Bus, h.Name)
		}
	}
	subject := cfg.EpochSubject
	if subject == "" {
		subject = "fleet"
	}
	return &Runner{
		fleet:        f,
		workers:      workers,
		epoch:        epoch,
		onEpoch:      cfg.OnEpoch,
		failed:       make(map[string]error),
		bus:          cfg.Bus,
		epochSubject: subject,
		rollupAcc:    obs.NewAccumulator("fleet"),
		mEpochs: reg.Counter("ihnet_fleet_epochs_total",
			"Epoch barriers crossed by the fleet runner."),
		mHostsAdvanced: reg.Counter("ihnet_fleet_hosts_advanced_total",
			"Host-epoch advances performed by the fleet runner."),
		mHostFailures: reg.Counter("ihnet_fleet_host_failures_total",
			"Hosts quarantined after a mid-epoch failure."),
		mStragglers: reg.Counter("ihnet_fleet_straggler_epochs_total",
			"Epochs whose slowest host took more than twice the mean."),
		hEpochSeconds: reg.Histogram("ihnet_fleet_epoch_duration_seconds",
			"Wall-clock time per fleet epoch (all hosts to the barrier)."),
		hStragglerX: reg.Histogram("ihnet_fleet_straggler_ratio",
			"Slowest host's wall time over the epoch mean."),
	}
}

// Workers returns the configured worker count.
func (r *Runner) Workers() int { return r.workers }

// Epoch returns the barrier interval.
func (r *Runner) Epoch() simtime.Duration { return r.epoch }

// Failed returns the quarantined hosts and why, keyed by name.
func (r *Runner) Failed() map[string]error {
	out := make(map[string]error, len(r.failed))
	for k, v := range r.failed {
		out[k] = v
	}
	return out
}

// Quarantine excludes a host from subsequent epochs, as if it had
// failed mid-epoch — the operator-initiated form of the runner's
// panic quarantine, used to fence a suspect host without stopping the
// fleet. The host's clock freezes where it is; it keeps its state and
// journal.
func (r *Runner) Quarantine(name string, reason error) error {
	if r.fleet.Host(name) == nil {
		return fmt.Errorf("fleet: unknown host %q", name)
	}
	if _, ok := r.failed[name]; ok {
		return fmt.Errorf("fleet: host %q already quarantined", name)
	}
	if reason == nil {
		reason = fmt.Errorf("fleet: host %q quarantined by operator", name)
	}
	r.failed[name] = reason
	r.mHostFailures.Inc()
	r.bus.Publish(obs.Event{
		Kind: obs.KindHostQuarantine, Virtual: r.Now(),
		Subject: name, Detail: reason.Error(),
	})
	return nil
}

// Unquarantine readmits a host to the epoch loop. Its lagging clock
// catches up at the next barrier (every epoch drives all live hosts to
// one shared absolute target). Returns false when the host was not
// quarantined.
func (r *Runner) Unquarantine(name string) bool {
	if _, ok := r.failed[name]; !ok {
		return false
	}
	delete(r.failed, name)
	return true
}

// Now returns the fleet's virtual time: the furthest live host's
// clock. Between RunFor calls all live hosts agree on it (they parked
// at the same barrier); quarantined hosts may lag behind.
func (r *Runner) Now() simtime.Time {
	var now simtime.Time
	for _, h := range r.fleet.hostsSorted() {
		if _, bad := r.failed[h.Name]; bad {
			continue
		}
		if t := h.Mgr.Engine().Now(); t > now {
			now = t
		}
	}
	return now
}

// RunFor advances every live host by d, in epochs. Hosts whose clocks
// lag the fleet (a freshly added host, a restored one) catch up at the
// first barrier: each epoch drives every host to one shared absolute
// target time. On context cancellation the run stops cleanly at the
// last completed barrier — no host is left mid-epoch and no partial
// results are merged.
func (r *Runner) RunFor(ctx context.Context, d simtime.Duration) (RunReport, error) {
	if d <= 0 {
		return RunReport{}, fmt.Errorf("fleet: non-positive run duration %v", d)
	}
	start := r.Now()
	target := start.Add(d)
	rep := RunReport{Target: target}
	for k := 0; ; k++ {
		barrier := start.Add(simtime.Duration(k+1) * r.epoch)
		if barrier > target {
			barrier = target
		}
		if ctx != nil && ctx.Err() != nil {
			rep.Aborted = true
			break
		}
		results, live := r.runEpoch(barrier)
		rep.Epochs++
		rep.HostsAdvanced += live
		r.mEpochs.Inc()
		r.mHostsAdvanced.Add(uint64(live))
		if r.onEpoch != nil {
			r.onEpoch(EpochStat{Index: k, Target: barrier, Results: results})
		}
		if barrier == target {
			break
		}
	}
	rep.Failed = r.Failed()
	if rep.Aborted && ctx != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// runEpoch drives every non-quarantined host to the barrier on the
// worker pool and merges results by name-sorted index. It returns the
// merged results and how many hosts advanced without error.
func (r *Runner) runEpoch(barrier simtime.Time) ([]HostResult, int) {
	all := r.fleet.hostsSorted() // name-sorted, not retained
	live := all[:0:0]
	for _, h := range all {
		if _, bad := r.failed[h.Name]; !bad {
			live = append(live, h)
		}
	}
	results := make([]HostResult, len(live))
	epochStart := time.Now()
	if len(live) > 0 {
		workers := min(r.workers, len(live))
		if workers == 1 {
			for i, h := range live {
				results[i] = advanceHost(h, barrier)
			}
		} else {
			// Workers pull host indices from a channel and write results
			// into disjoint slots, so the merge is free of both locks and
			// completion-order nondeterminism.
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						results[i] = advanceHost(live[i], barrier)
					}
				}()
			}
			for i := range live {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}
	}
	ok := 0
	var slowest, total time.Duration
	for _, res := range results {
		if res.Err != nil {
			r.failed[res.Host] = res.Err
			r.mHostFailures.Inc()
			r.bus.Publish(obs.Event{
				Kind: obs.KindHostQuarantine, Virtual: barrier,
				Subject: res.Host, Detail: res.Err.Error(),
			})
			continue
		}
		ok++
		total += res.Wall
		if res.Wall > slowest {
			slowest = res.Wall
		}
	}
	epochWall := time.Since(epochStart)
	r.hEpochSeconds.Observe(epochWall.Seconds())
	r.bus.Publish(obs.Event{
		Kind: obs.KindFleetEpoch, Virtual: barrier,
		Subject: r.epochSubject, Value: float64(ok), WallDur: epochWall,
	})
	if ok > 1 {
		mean := total / time.Duration(ok)
		if mean > 0 {
			ratio := float64(slowest) / float64(mean)
			r.hStragglerX.Observe(ratio)
			if ratio > 2 {
				r.mStragglers.Inc()
			}
		}
	}
	return results, ok
}

// Rollup folds every host's metrics registry into one fleet snapshot:
// counters sum, gauges keep the last (name-ordered) host's value
// tagged with its source, histograms merge bucket-wise with quantile
// error bounds intact. Hosts are visited in name order, so equal
// per-host metrics give byte-identical roll-ups regardless of worker
// count. Quarantined hosts are included — their metrics still
// describe real state, frozen at quarantine time.
//
// Cost is O(hosts x metrics) — flat per host, via the dense
// accumulator — and it reads only atomics and per-metric locks, so it
// is safe to call while the runner is mid-epoch (scrapes observe a
// torn but monitoring-consistent view, same as single-host /metrics).
// The fold reuses one per-runner scratch accumulator (Reset zeroes
// only occupied watermark ranges), so scrape allocation cost does not
// grow with host count; rollupMu serializes concurrent scrapes.
func (r *Runner) Rollup() obs.Snapshot {
	r.rollupMu.Lock()
	defer r.rollupMu.Unlock()
	r.rollupAcc.Reset()
	for _, h := range r.fleet.hostsSorted() {
		r.rollupAcc.AddRegistry(h.Mgr.Obs().Registry, h.Name)
	}
	return r.rollupAcc.Snapshot()
}

// Bus returns the fleet-level event bus, if configured.
func (r *Runner) Bus() *obs.Bus { return r.bus }

// advanceHost drives one host to the barrier, converting panics in the
// host's simulation into a per-host error so one broken host cannot
// take down the epoch (or the process).
func advanceHost(h *Host, barrier simtime.Time) (res HostResult) {
	res.Host = h.Name
	t0 := time.Now()
	defer func() {
		res.Wall = time.Since(t0)
		res.Now = h.Mgr.Engine().Now()
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("fleet: host %s failed mid-epoch: %v", h.Name, p)
		}
	}()
	res.Err = h.advanceTo(barrier)
	return res
}
