// Package sched implements the paper's topology-aware resource
// scheduler (§3.2): given compiled requirements (candidate pathways
// per intent) and the fabric's current headroom, it chooses pathways
// that maximize overall admission and efficiency. A naive baseline
// (always the shortest path, ignoring load) is included for the E9
// ablation — it is what a topology-oblivious allocator would do.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/intent"
	"repro/internal/resmodel"
	"repro/internal/topology"
)

// Usage is the scheduler's view of the fabric: effective capacity and
// remaining unreserved headroom per directed link.
type Usage struct {
	Capacity map[topology.LinkID]topology.Rate
	Free     map[topology.LinkID]topology.Rate
}

// CloneFree returns a mutable copy of the free map.
func (u Usage) CloneFree() map[topology.LinkID]topology.Rate {
	out := make(map[topology.LinkID]topology.Rate, len(u.Free))
	for k, v := range u.Free {
		out[k] = v
	}
	return out
}

// PathShare is one leg of a split placement.
type PathShare struct {
	Path topology.Path
	Rate topology.Rate
}

// Assignment is the scheduling outcome for one requirement.
type Assignment struct {
	Req intent.Requirement
	// Admitted reports whether the requirement was placed.
	Admitted bool
	// Reason explains a rejection.
	Reason string
	// Path is the chosen (primary) pathway (pipe model).
	Path topology.Path
	// Splits is non-empty when the rate was striped across several
	// pathways because no single one had the headroom; Path is then
	// the first (largest) leg.
	Splits []PathShare
	// Reservation is the per-link allocation this assignment consumes.
	Reservation resmodel.Reservation
}

// Scheduler places compiled requirements.
type Scheduler interface {
	// Name identifies the strategy.
	Name() string
	// Schedule places the batch against the usage snapshot. The
	// returned assignments parallel the input order. Implementations
	// must not mutate usage.
	Schedule(reqs []intent.Requirement, usage Usage) []Assignment
}

// New returns a scheduler by name: "topology-aware" or "naive".
func New(name string) (Scheduler, error) {
	switch name {
	case "topology-aware", "":
		return TopologyAware{}, nil
	case "naive":
		return Naive{}, nil
	}
	return nil, fmt.Errorf("sched: unknown scheduler %q", name)
}

// order returns the indices of reqs in placement order: largest rate
// first (hardest to place), ties broken by tenant then description,
// so scheduling is deterministic regardless of input order.
func order(reqs []intent.Requirement) []int {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := reqs[idx[a]], reqs[idx[b]]
		if ra.Target.Rate != rb.Target.Rate {
			return ra.Target.Rate > rb.Target.Rate
		}
		if ra.Target.Tenant != rb.Target.Tenant {
			return ra.Target.Tenant < rb.Target.Tenant
		}
		return ra.Target.String() < rb.Target.String()
	})
	return idx
}

// fits reports whether rate is available on every link of p.
func fits(p topology.Path, rate topology.Rate, free map[topology.LinkID]topology.Rate) bool {
	for _, l := range p.Links {
		if free[l.ID] < rate {
			return false
		}
	}
	return true
}

func reserve(p topology.Path, rate topology.Rate, free map[topology.LinkID]topology.Rate) resmodel.Reservation {
	res := resmodel.NewReservation()
	res.AddPipe(p, rate)
	for _, l := range p.Links {
		free[l.ID] -= rate
	}
	return res
}

// scheduleHose admits or rejects a hose requirement wholesale.
func scheduleHose(req intent.Requirement, free map[topology.LinkID]topology.Rate) Assignment {
	freeView := make(map[topology.LinkID]topology.Rate, len(req.HoseReservation.Links))
	for l := range req.HoseReservation.Links {
		freeView[l] = free[l]
	}
	if v := resmodel.CheckFit(req.HoseReservation, freeView); len(v) != 0 {
		return Assignment{Req: req, Reason: fmt.Sprintf("hose does not fit: %v", v[0])}
	}
	for l, r := range req.HoseReservation.Links {
		free[l] -= r
	}
	return Assignment{Req: req, Admitted: true, Reservation: req.HoseReservation.Clone()}
}

// TopologyAware chooses, among the candidates that fit, the pathway
// that minimizes the resulting maximum link utilization — spreading
// load across the "several pathways" the paper describes.
type TopologyAware struct{}

// Name implements Scheduler.
func (TopologyAware) Name() string { return "topology-aware" }

// Schedule implements Scheduler.
func (TopologyAware) Schedule(reqs []intent.Requirement, usage Usage) []Assignment {
	free := usage.CloneFree()
	out := make([]Assignment, len(reqs))
	for _, i := range order(reqs) {
		req := reqs[i]
		if req.Target.Model == resmodel.ModelHose {
			out[i] = scheduleHose(req, free)
			continue
		}
		bestIdx := -1
		bestScore := 2.0 // utilizations are <= 1
		for ci, p := range req.Candidates {
			if !fits(p, req.Target.Rate, free) {
				continue
			}
			score := 0.0
			for _, l := range p.Links {
				cap := usage.Capacity[l.ID]
				if cap <= 0 {
					continue
				}
				util := float64(cap-free[l.ID]+req.Target.Rate) / float64(cap)
				if util > score {
					score = util
				}
			}
			if score < bestScore {
				bestScore = score
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			// No single pathway fits: try striping the rate across
			// several candidates — the multi-path placement §3.2's
			// "several GPU-SSD pathways" invites.
			if a, ok := trySplit(req, free); ok {
				out[i] = a
				continue
			}
			out[i] = Assignment{Req: req, Reason: "no candidate pathway (or split) has headroom"}
			continue
		}
		p := req.Candidates[bestIdx]
		out[i] = Assignment{Req: req, Admitted: true, Path: p,
			Reservation: reserve(p, req.Target.Rate, free)}
	}
	return out
}

// trySplit stripes a pipe's rate across candidates greedily: each
// candidate (in latency order) takes as much as its current headroom
// allows, headroom being re-evaluated as earlier legs consume shared
// links. Admission succeeds only if the full rate is covered — the
// guarantee is all-or-nothing even when striped.
func trySplit(req intent.Requirement, free map[topology.LinkID]topology.Rate) (Assignment, bool) {
	type leg struct {
		path topology.Path
		rate topology.Rate
	}
	scratch := make(map[topology.LinkID]topology.Rate, len(free))
	for k, v := range free {
		scratch[k] = v
	}
	remaining := req.Target.Rate
	var legs []leg
	for _, p := range req.Candidates {
		if remaining <= 0 {
			break
		}
		head := topology.Rate(-1)
		for _, l := range p.Links {
			if head < 0 || scratch[l.ID] < head {
				head = scratch[l.ID]
			}
		}
		if head <= 0 {
			continue
		}
		take := head
		if take > remaining {
			take = remaining
		}
		for _, l := range p.Links {
			scratch[l.ID] -= take
		}
		legs = append(legs, leg{path: p, rate: take})
		remaining -= take
	}
	if remaining > 0 || len(legs) < 2 {
		return Assignment{}, false
	}
	res := resmodel.NewReservation()
	a := Assignment{Req: req, Admitted: true}
	for _, lg := range legs {
		res.AddPipe(lg.path, lg.rate)
		a.Splits = append(a.Splits, PathShare{Path: lg.path, Rate: lg.rate})
	}
	a.Path = legs[0].path
	a.Reservation = res
	for k, v := range scratch {
		free[k] = v
	}
	return a, true
}

// Naive always takes the first (lowest-latency) candidate and admits
// only if it happens to fit — no load awareness, no alternatives.
type Naive struct{}

// Name implements Scheduler.
func (Naive) Name() string { return "naive" }

// Schedule implements Scheduler.
func (Naive) Schedule(reqs []intent.Requirement, usage Usage) []Assignment {
	free := usage.CloneFree()
	out := make([]Assignment, len(reqs))
	for _, i := range order(reqs) {
		req := reqs[i]
		if req.Target.Model == resmodel.ModelHose {
			out[i] = scheduleHose(req, free)
			continue
		}
		if len(req.Candidates) == 0 {
			out[i] = Assignment{Req: req, Reason: "no candidates"}
			continue
		}
		p := req.Candidates[0]
		if !fits(p, req.Target.Rate, free) {
			out[i] = Assignment{Req: req, Reason: "shortest pathway has no headroom"}
			continue
		}
		out[i] = Assignment{Req: req, Admitted: true, Path: p,
			Reservation: reserve(p, req.Target.Rate, free)}
	}
	return out
}

// Summary aggregates a batch outcome.
type Summary struct {
	Admitted, Rejected int
	// MaxUtilization is the highest post-placement link utilization.
	MaxUtilization float64
}

// Summarize computes batch statistics for a set of assignments against
// the pre-scheduling usage snapshot.
func Summarize(assignments []Assignment, usage Usage) Summary {
	s := Summary{}
	used := make(map[topology.LinkID]topology.Rate)
	for l, cap := range usage.Capacity {
		used[l] = cap - usage.Free[l]
	}
	for _, a := range assignments {
		if !a.Admitted {
			s.Rejected++
			continue
		}
		s.Admitted++
		for l, r := range a.Reservation.Links {
			used[l] += r
		}
	}
	for l, u := range used {
		cap := usage.Capacity[l]
		if cap > 0 {
			util := float64(u) / float64(cap)
			if util > s.MaxUtilization {
				s.MaxUtilization = util
			}
		}
	}
	return s
}
