package sched

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/resmodel"
	"repro/internal/topology"
)

// usageFor builds a Usage with full headroom on every link.
func usageFor(topo *topology.Topology) Usage {
	u := Usage{
		Capacity: make(map[topology.LinkID]topology.Rate),
		Free:     make(map[topology.LinkID]topology.Rate),
	}
	for _, l := range topo.Links() {
		u.Capacity[l.ID] = l.Capacity
		u.Free[l.ID] = l.Capacity
	}
	return u
}

func compile(t *testing.T, topo *topology.Topology, targets ...intent.Target) []intent.Requirement {
	t.Helper()
	in, err := intent.New(topo, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := in.CompileAll(targets)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"topology-aware", "naive", ""} {
		s, err := New(name)
		if err != nil || s == nil {
			t.Fatalf("New(%q): %v", name, err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSingleRequirementAdmitted(t *testing.T) {
	topo := topology.TwoSocketServer()
	reqs := compile(t, topo, intent.Target{
		Tenant: "a", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(10),
	})
	for _, s := range []Scheduler{TopologyAware{}, Naive{}} {
		out := s.Schedule(reqs, usageFor(topo))
		if len(out) != 1 || !out[0].Admitted {
			t.Fatalf("%s: %+v", s.Name(), out)
		}
		if out[0].Path.Hops() == 0 || len(out[0].Reservation.Links) == 0 {
			t.Fatalf("%s: empty path or reservation", s.Name())
		}
	}
}

func TestTopologyAwareSpreadsAcrossMemory(t *testing.T) {
	topo := topology.DGXStyle()
	// Four GPUs on socket 0 each want a 16 GB/s pipe to socket-0
	// memory. A DRAM channel is 60 GB/s: naive stacks everything on
	// the same lowest-latency DIMM (2 fit); topology-aware spreads
	// across the socket's channels and admits all four.
	var targets []intent.Target
	for i := 0; i < 4; i++ {
		targets = append(targets, intent.Target{
			Tenant: "ml", Src: topology.CompID(fmt.Sprintf("gpu%d", i)),
			Dst: "memory:socket0", Rate: topology.GBps(16),
		})
	}
	reqs := compile(t, topo, targets...)
	usage := usageFor(topo)
	ta := TopologyAware{}.Schedule(reqs, usage)
	nv := Naive{}.Schedule(reqs, usage)
	taSum := Summarize(ta, usage)
	nvSum := Summarize(nv, usage)
	if taSum.Admitted <= nvSum.Admitted {
		t.Fatalf("topology-aware admitted %d, naive %d — expected strictly more",
			taSum.Admitted, nvSum.Admitted)
	}
	// Distinct destinations used by topology-aware.
	dsts := make(map[topology.CompID]bool)
	for _, a := range ta {
		if a.Admitted {
			dsts[a.Path.Dst()] = true
		}
	}
	if len(dsts) < 2 {
		t.Fatalf("topology-aware used only %d destinations", len(dsts))
	}
}

func TestAdmissionControlRejectsOverload(t *testing.T) {
	topo := topology.TwoSocketServer()
	// gpu0's own PCIe link is 32 GB/s; three 20 GB/s pipes cannot all
	// fit through it no matter the destination.
	var targets []intent.Target
	for i := 0; i < 3; i++ {
		targets = append(targets, intent.Target{
			Tenant: "ml", Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(20),
		})
	}
	reqs := compile(t, topo, targets...)
	usage := usageFor(topo)
	out := TopologyAware{}.Schedule(reqs, usage)
	sum := Summarize(out, usage)
	if sum.Admitted != 1 || sum.Rejected != 2 {
		t.Fatalf("admitted %d rejected %d, want 1/2", sum.Admitted, sum.Rejected)
	}
	for _, a := range out {
		if !a.Admitted && a.Reason == "" {
			t.Fatal("rejection without reason")
		}
	}
}

func TestScheduleDoesNotMutateUsage(t *testing.T) {
	topo := topology.TwoSocketServer()
	reqs := compile(t, topo, intent.Target{
		Tenant: "a", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(10),
	})
	usage := usageFor(topo)
	before := usage.CloneFree()
	_ = TopologyAware{}.Schedule(reqs, usage)
	for l, v := range before {
		if usage.Free[l] != v {
			t.Fatalf("Schedule mutated usage at %s", l)
		}
	}
}

func TestHoseScheduling(t *testing.T) {
	topo := topology.TwoSocketServer()
	reqs := compile(t, topo, intent.Target{
		Tenant: "dist", Model: resmodel.ModelHose,
		Hoses: []resmodel.HoseDemand{
			{Endpoint: "gpu0", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
			{Endpoint: "gpu1", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
		},
	})
	usage := usageFor(topo)
	out := TopologyAware{}.Schedule(reqs, usage)
	if !out[0].Admitted {
		t.Fatalf("hose rejected: %s", out[0].Reason)
	}
	if len(out[0].Reservation.Links) == 0 {
		t.Fatal("hose admitted with empty reservation")
	}
	// Drain headroom on the UPI link; a hose spanning sockets must be
	// rejected.
	usage.Free["cpu0->cpu1"] = 0
	out = TopologyAware{}.Schedule(reqs, usage)
	if out[0].Admitted {
		t.Fatal("hose admitted without UPI headroom")
	}
}

func TestDeterministicAcrossInputOrder(t *testing.T) {
	topo := topology.TwoSocketServer()
	a := intent.Target{Tenant: "a", Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(20)}
	b := intent.Target{Tenant: "b", Src: "ssd0", Dst: intent.AnyMemory, Rate: topology.GBps(10)}
	r1 := compile(t, topo, a, b)
	r2 := compile(t, topo, b, a)
	usage := usageFor(topo)
	o1 := TopologyAware{}.Schedule(r1, usage)
	o2 := TopologyAware{}.Schedule(r2, usage)
	// Same tenant must land on the same path regardless of order.
	find := func(out []Assignment, tenant string) Assignment {
		for _, x := range out {
			if string(x.Req.Target.Tenant) == tenant {
				return x
			}
		}
		t.Fatalf("tenant %s missing", tenant)
		return Assignment{}
	}
	for _, tn := range []string{"a", "b"} {
		p1, p2 := find(o1, tn).Path.String(), find(o2, tn).Path.String()
		if p1 != p2 {
			t.Fatalf("tenant %s path depends on input order: %s vs %s", tn, p1, p2)
		}
	}
}

func TestLargestFirstPlacement(t *testing.T) {
	topo := topology.TwoSocketServer()
	// One big pipe and one small pipe compete; placing the small one
	// first could strand the big one. Largest-first admits both when
	// possible.
	targets := []intent.Target{
		{Tenant: "small", Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
		{Tenant: "big", Src: "gpu0", Dst: "memory:socket0", Rate: topology.GBps(30)},
	}
	reqs := compile(t, topo, targets...)
	out := TopologyAware{}.Schedule(reqs, usageFor(topo))
	for _, a := range out {
		if !a.Admitted {
			t.Fatalf("%s rejected: %s", a.Req.Target.Tenant, a.Reason)
		}
	}
}

func TestMultiPathSplitting(t *testing.T) {
	topo := topology.TwoSocketServer()
	// A 40 GB/s gpu0->memory pipe compiles (the candidate bottlenecks
	// sum past 40) but every pathway shares the gpu's 32 GB/s PCIe
	// link, so even striped placement must reject it.
	reqs := compile(t, topo, intent.Target{
		Tenant: "a", Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(40),
	})
	out := TopologyAware{}.Schedule(reqs, usageFor(topo))
	if out[0].Admitted {
		t.Fatal("pipe beyond the source link capacity admitted")
	}
	// An 80 GB/s cpu0->memory pipe exceeds any single DRAM channel
	// (60 GB/s) but fits striped across two channels.
	reqs = compile(t, topo, intent.Target{
		Tenant: "a", Src: "cpu0", Dst: "memory:socket0", Rate: topology.GBps(80),
	})
	usage := usageFor(topo)
	out = TopologyAware{}.Schedule(reqs, usage)
	if !out[0].Admitted {
		t.Fatalf("splittable pipe rejected: %s", out[0].Reason)
	}
	if len(out[0].Splits) < 2 {
		t.Fatalf("splits = %d, want >= 2", len(out[0].Splits))
	}
	var total topology.Rate
	dsts := make(map[topology.CompID]bool)
	for _, s := range out[0].Splits {
		total += s.Rate
		dsts[s.Path.Dst()] = true
	}
	if total != topology.GBps(80) {
		t.Fatalf("split legs sum to %v, want 80GB/s", total)
	}
	if len(dsts) < 2 {
		t.Fatalf("split used %d distinct destinations", len(dsts))
	}
	// Reservation covers every leg.
	if out[0].Reservation.Total() <= 0 {
		t.Fatal("empty split reservation")
	}
	// The scratch headroom was committed: a second identical pipe
	// still fits (socket memory aggregate is 240 GB/s), but a third
	// cannot — the cpu's 180 GB/s mesh link gates at 2x80.
	u2 := sched2Usage(usage, out[0])
	out2 := TopologyAware{}.Schedule(reqs, u2)
	if !out2[0].Admitted {
		t.Fatalf("second striped pipe rejected: %s", out2[0].Reason)
	}
	u3 := sched2Usage(u2, out2[0])
	out3 := TopologyAware{}.Schedule(reqs, u3)
	if out3[0].Admitted {
		t.Fatal("third 80GB/s striped pipe admitted beyond the mesh link")
	}
}

// sched2Usage applies an assignment's reservation to a usage snapshot.
func sched2Usage(u Usage, a Assignment) Usage {
	out := Usage{Capacity: u.Capacity, Free: u.CloneFree()}
	for l, r := range a.Reservation.Links {
		out.Free[l] -= r
	}
	return out
}

func TestSummarizeUtilization(t *testing.T) {
	topo := topology.TwoSocketServer()
	reqs := compile(t, topo, intent.Target{
		Tenant: "a", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(16),
	})
	usage := usageFor(topo)
	out := TopologyAware{}.Schedule(reqs, usage)
	sum := Summarize(out, usage)
	// 16 of 32 GB/s on the PCIe links = 0.5 max utilization.
	if sum.MaxUtilization < 0.49 || sum.MaxUtilization > 0.51 {
		t.Fatalf("max utilization %v, want ~0.5", sum.MaxUtilization)
	}
}

func BenchmarkTopologyAware20Pipes(b *testing.B) {
	topo := topology.DGXStyle()
	in, _ := intent.New(topo, 3, nil)
	var targets []intent.Target
	for i := 0; i < 20; i++ {
		targets = append(targets, intent.Target{
			Tenant: fabric.TenantID("t" + string(rune('a'+i%4))),
			Src:    topology.CompID(fmt.Sprintf("gpu%d", i%8)),
			Dst:    intent.AnyMemory, Rate: topology.GBps(5),
		})
	}
	reqs, err := in.CompileAll(targets)
	if err != nil {
		b.Fatal(err)
	}
	usage := usageFor(topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopologyAware{}.Schedule(reqs, usage)
	}
}
