package sched

import (
	"fmt"

	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Clock is the minimal virtual-time source the instrumented scheduler
// stamps decisions with; *simtime.Engine satisfies it.
type Clock interface {
	Now() simtime.Time
}

// Instrumented wraps any Scheduler, recording every pathway decision
// as metrics (admitted/rejected counters per strategy) and trace
// events carrying the chosen pathway or the rejection reason.
type Instrumented struct {
	inner    Scheduler
	clock    Clock
	tracer   *obs.Tracer
	admitted *obs.Counter
	rejected *obs.Counter
	split    *obs.Counter
}

// Instrument wraps s with observability. A nil o returns s unchanged.
func Instrument(s Scheduler, o *obs.Obs, clock Clock) Scheduler {
	if o == nil {
		return s
	}
	vec := o.Registry.CounterVec("ihnet_sched_decisions_total",
		"Scheduler pathway decisions by outcome.", "outcome")
	return &Instrumented{
		inner:    s,
		clock:    clock,
		tracer:   o.Tracer,
		admitted: vec.With("admitted"),
		rejected: vec.With("rejected"),
		split: o.Registry.Counter("ihnet_sched_splits_total",
			"Admissions that striped a rate across several pathways."),
	}
}

// Name implements Scheduler.
func (s *Instrumented) Name() string { return s.inner.Name() }

// Unwrap returns the underlying strategy.
func (s *Instrumented) Unwrap() Scheduler { return s.inner }

// Schedule implements Scheduler, delegating and recording outcomes.
func (s *Instrumented) Schedule(reqs []intent.Requirement, usage Usage) []Assignment {
	out := s.inner.Schedule(reqs, usage)
	var now simtime.Time
	if s.clock != nil {
		now = s.clock.Now()
	}
	for _, a := range out {
		detail := a.Reason
		if a.Admitted {
			s.admitted.Inc()
			detail = a.Path.String()
			if len(a.Splits) > 0 {
				s.split.Inc()
				detail = fmt.Sprintf("striped over %d pathways", len(a.Splits))
			}
		} else {
			s.rejected.Inc()
		}
		if s.tracer.Enabled() {
			s.tracer.Emit(obs.Event{
				Kind:    obs.KindSchedDecision,
				Virtual: now,
				Subject: string(a.Req.Target.Tenant),
				Detail:  a.Req.Target.String() + ": " + detail,
				Value:   float64(a.Req.Target.Rate),
			})
		}
	}
	return out
}
