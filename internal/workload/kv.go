package workload

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// KVConfig describes a remote key-value store tenant: clients on the
// far side of the inter-host network issue small GETs that traverse
// the NIC, the PCIe fabric and the memory bus — the paper's canonical
// latency-sensitive co-location victim.
type KVConfig struct {
	Tenant fabric.TenantID
	// Client is the requesting side, usually "external0".
	Client topology.CompID
	// Server is the memory the store serves from, e.g. a DIMM.
	Server topology.CompID
	// Outstanding is the closed-loop depth (concurrent requests).
	Outstanding int
	// ReqBytes/RespBytes size a GET: small request, value-sized
	// response.
	ReqBytes, RespBytes int64
	// ThinkTime between a completion and the next request.
	ThinkTime simtime.Duration
	// ModelBandwidth couples the request stream to fabric load: the
	// client maintains shadow flows whose demand tracks its measured
	// request rate x message sizes, so driving the store harder
	// consumes real bandwidth (and inflates everyone's latency,
	// including its own). Without it the client is a pure latency
	// probe.
	ModelBandwidth bool
}

// DefaultKVConfig returns a 4-deep closed loop of 64 B requests with
// 4 KiB responses, 1 us think time, and bandwidth coupling on.
func DefaultKVConfig(tenant fabric.TenantID) KVConfig {
	return KVConfig{
		Tenant: tenant, Client: "external0", Server: "socket0.dimm0_0",
		Outstanding: 4, ReqBytes: 64, RespBytes: 4096,
		ThinkTime:      simtime.Microsecond,
		ModelBandwidth: true,
	}
}

// KVClient is a running key-value workload.
type KVClient struct {
	fab     *fabric.Fabric
	cfg     KVConfig
	lat     Histogram
	sent    uint64
	lost    uint64
	done    uint64
	stopped bool

	reqFlow, respFlow *fabric.Flow
	ticker            *simtime.Ticker
	windowStartDone   uint64
}

// StartKV validates the configuration and begins the closed loop.
func StartKV(fab *fabric.Fabric, cfg KVConfig) (*KVClient, error) {
	if cfg.Outstanding <= 0 {
		return nil, fmt.Errorf("workload: kv outstanding must be positive")
	}
	if cfg.ReqBytes < 0 || cfg.RespBytes < 0 || cfg.ThinkTime < 0 {
		return nil, fmt.Errorf("workload: negative kv parameter")
	}
	if fab.Topology().Component(cfg.Client) == nil || fab.Topology().Component(cfg.Server) == nil {
		return nil, fmt.Errorf("workload: unknown kv endpoint")
	}
	k := &KVClient{fab: fab, cfg: cfg}
	if cfg.ModelBandwidth {
		if err := k.installShadow(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Outstanding; i++ {
		k.sendOne()
	}
	return k, nil
}

// installShadow creates the bandwidth-coupling flows and the ticker
// that retunes their demand to the measured request rate.
func (k *KVClient) installShadow() error {
	topo := k.fab.Topology()
	reqPath, err := topo.ShortestPath(k.cfg.Client, k.cfg.Server)
	if err != nil {
		return err
	}
	respPath, err := topo.ShortestPath(k.cfg.Server, k.cfg.Client)
	if err != nil {
		return err
	}
	k.reqFlow = &fabric.Flow{Tenant: k.cfg.Tenant, Path: reqPath, Demand: 1}
	k.respFlow = &fabric.Flow{Tenant: k.cfg.Tenant, Path: respPath, Demand: 1}
	if err := k.fab.AddFlow(k.reqFlow); err != nil {
		return err
	}
	if err := k.fab.AddFlow(k.respFlow); err != nil {
		k.fab.RemoveFlow(k.reqFlow)
		return err
	}
	const window = 50 * simtime.Microsecond
	k.ticker = k.fab.Engine().Every(window, func() {
		completed := k.done - k.windowStartDone
		k.windowStartDone = k.done
		perSec := float64(completed) / window.Seconds()
		req := topology.Rate(perSec * float64(k.cfg.ReqBytes))
		resp := topology.Rate(perSec * float64(k.cfg.RespBytes))
		if req < 1 {
			req = 1
		}
		if resp < 1 {
			resp = 1
		}
		_ = k.fab.SetDemand(k.reqFlow, req)
		_ = k.fab.SetDemand(k.respFlow, resp)
	})
	return nil
}

func (k *KVClient) sendOne() {
	if k.stopped {
		return
	}
	k.sent++
	err := k.fab.SendTransaction(fabric.TxOptions{
		Tenant: k.cfg.Tenant,
		Src:    k.cfg.Client, Dst: k.cfg.Server,
		ReqBytes: k.cfg.ReqBytes, RespBytes: k.cfg.RespBytes,
	}, k.onDone)
	if err != nil {
		k.lost++
		k.rearm()
	}
}

func (k *KVClient) onDone(r fabric.TxRecord) {
	k.done++
	if r.Lost {
		k.lost++
	} else {
		k.lat.Add(r.RTT)
	}
	k.rearm()
}

func (k *KVClient) rearm() {
	if k.stopped {
		return
	}
	if k.cfg.ThinkTime > 0 {
		k.fab.Engine().After(k.cfg.ThinkTime, k.sendOne)
	} else {
		k.sendOne()
	}
}

// Stop ends the loop; in-flight requests still complete but no new
// ones are issued. Shadow flows are removed immediately.
func (k *KVClient) Stop() {
	k.stopped = true
	if k.ticker != nil {
		k.ticker.Stop()
		k.ticker = nil
	}
	if k.reqFlow != nil {
		k.fab.RemoveFlow(k.reqFlow)
		k.fab.RemoveFlow(k.respFlow)
		k.reqFlow, k.respFlow = nil, nil
	}
}

// Latency returns the client's latency histogram.
func (k *KVClient) Latency() *Histogram { return &k.lat }

// Sent and Lost return request counters.
func (k *KVClient) Sent() uint64 { return k.sent }

// Lost returns the number of failed requests.
func (k *KVClient) Lost() uint64 { return k.lost }
