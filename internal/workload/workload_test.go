package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newFab(t *testing.T) (*fabric.Fabric, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine(77)
	fab := fabric.New(topology.TwoSocketServer(), e, fabric.DefaultConfig())
	return fab, e
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram nonzero")
	}
	for i := 1; i <= 100; i++ {
		h.Add(simtime.Duration(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if h.Max() != 100 || h.Mean() != 50 {
		t.Fatalf("max %v mean %v", h.Max(), h.Mean())
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyHistogramMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(simtime.Duration(v))
		}
		prev := simtime.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKVZeroThinkTime(t *testing.T) {
	fab, e := newFab(t)
	cfg := DefaultKVConfig("kv")
	cfg.ThinkTime = 0
	cfg.Outstanding = 2
	kv, err := StartKV(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(200 * simtime.Microsecond)
	if kv.Sent() < 10 {
		t.Fatalf("zero-think loop sent only %d", kv.Sent())
	}
	kv.Stop()
	e.RunFor(simtime.Millisecond)
	if fab.Flows() != 0 {
		t.Fatal("shadow flows left after Stop")
	}
}

func TestKVBandwidthCoupling(t *testing.T) {
	fab, e := newFab(t)
	cfg := DefaultKVConfig("kv")
	cfg.ThinkTime = 0
	cfg.Outstanding = 64
	kv, err := StartKV(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	// The request stream must consume real bandwidth: the KV tenant
	// shows up in fabric usage at a rate consistent with its
	// completion rate x message size.
	usage := fab.TenantUsage("kv")
	var peak topology.Rate
	for _, r := range usage {
		if r > peak {
			peak = r
		}
	}
	if peak < topology.GBps(1) {
		t.Fatalf("64-deep KV stream consumes only %v", peak)
	}
	// Uncoupled clients stay invisible.
	kv.Stop()
	cfg2 := DefaultKVConfig("probe")
	cfg2.ModelBandwidth = false
	probe, err := StartKV(fab, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	if len(fab.TenantUsage("probe")) != 0 {
		t.Fatal("uncoupled client consumed bandwidth")
	}
	probe.Stop()
}

func TestHistogramEdgePercentiles(t *testing.T) {
	var h Histogram
	h.Add(10)
	if h.Percentile(-5) != 10 || h.Percentile(250) != 10 {
		t.Fatal("clamping wrong")
	}
	h.Add(20)
	h.Add(30)
	if h.Percentile(0.0001) != 10 {
		t.Fatalf("tiny percentile %v", h.Percentile(0.0001))
	}
}

func TestKVClientRecordsLatency(t *testing.T) {
	fab, e := newFab(t)
	kv, err := StartKV(fab, DefaultKVConfig("kv"))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	kv.Stop()
	if kv.Sent() == 0 {
		t.Fatal("no requests sent")
	}
	if kv.Latency().Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if kv.Lost() != 0 {
		t.Fatalf("lost %d on healthy fabric", kv.Lost())
	}
	// Closed loop: sent is bounded by outstanding * (time/rtt-ish),
	// and after Stop no new requests appear.
	sent := kv.Sent()
	e.RunFor(simtime.Millisecond)
	if kv.Sent() != sent {
		t.Fatal("requests after Stop")
	}
}

func TestKVValidation(t *testing.T) {
	fab, _ := newFab(t)
	bad := DefaultKVConfig("kv")
	bad.Outstanding = 0
	if _, err := StartKV(fab, bad); err == nil {
		t.Fatal("zero outstanding accepted")
	}
	bad = DefaultKVConfig("kv")
	bad.Server = "nope"
	if _, err := StartKV(fab, bad); err == nil {
		t.Fatal("unknown server accepted")
	}
}

func TestKVLatencyDegradesUnderContention(t *testing.T) {
	fab, e := newFab(t)
	kv, err := StartKV(fab, DefaultKVConfig("kv"))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	solo := kv.Latency().Percentile(99)
	kv.Latency().Reset()
	// Saturate the shared PCIe path.
	lb, err := StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	contended := kv.Latency().Percentile(99)
	if contended <= solo {
		t.Fatalf("contended p99 %v not above solo %v", contended, solo)
	}
	lb.Stop()
	kv.Stop()
}

func TestMLTrainerMakesSteps(t *testing.T) {
	fab, e := newFab(t)
	cfg := DefaultMLConfig("ml")
	cfg.BatchBytes = 1 << 20
	ml, err := StartML(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	if ml.Steps() == 0 {
		t.Fatal("no training steps completed")
	}
	if ml.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if ml.Path().Hops() == 0 {
		t.Fatal("no path")
	}
	steps := ml.Steps()
	ml.Stop()
	e.RunFor(simtime.Millisecond)
	if ml.Steps() != steps {
		t.Fatal("steps after Stop")
	}
	if fab.Flows() != 0 {
		t.Fatal("trainer left flows behind")
	}
}

func TestMLComputeTimeSlowsSteps(t *testing.T) {
	fab, e := newFab(t)
	fast, _ := StartML(fab, MLConfig{Tenant: "a", GPU: "gpu0", Memory: "socket0.dimm0_0", BatchBytes: 1 << 20})
	slow, _ := StartML(fab, MLConfig{Tenant: "b", GPU: "gpu1", Memory: "socket1.dimm0_0", BatchBytes: 1 << 20,
		ComputeTime: 200 * simtime.Microsecond})
	e.RunFor(2 * simtime.Millisecond)
	if slow.Steps() >= fast.Steps() {
		t.Fatalf("compute-bound trainer (%d steps) not slower than transfer-bound (%d)",
			slow.Steps(), fast.Steps())
	}
	fast.Stop()
	slow.Stop()
}

func TestMLValidation(t *testing.T) {
	fab, _ := newFab(t)
	if _, err := StartML(fab, MLConfig{Tenant: "x", GPU: "gpu0", Memory: "socket0.dimm0_0", BatchBytes: 0}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := StartML(fab, MLConfig{Tenant: "x", GPU: "nope", Memory: "socket0.dimm0_0", BatchBytes: 1}); err == nil {
		t.Fatal("unknown gpu accepted")
	}
}

func TestStorageScan(t *testing.T) {
	fab, e := newFab(t)
	sc, err := StartScan(fab, "scan", "ssd0", "socket0.dimm0_0", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	if sc.Throughput() <= 0 {
		t.Fatal("scan made no progress")
	}
	sc.Stop()
	if fab.Flows() != 0 {
		t.Fatal("scan left flows")
	}
	if _, err := StartScan(fab, "scan", "ssd0", "socket0.dimm0_0", 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestRDMALoopbackExhaustsPCIe(t *testing.T) {
	fab, e := newFab(t)
	lb, err := StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * simtime.Microsecond)
	// Both directions of the NIC's PCIe link should be saturated.
	fwd, _ := fab.Utilization("pcieswitch0->nic0")
	rev, _ := fab.Utilization("nic0->pcieswitch0")
	if fwd < 0.99 || rev < 0.99 {
		t.Fatalf("loopback utilization fwd=%v rev=%v, want ~1", fwd, rev)
	}
	if lb.Rate() <= 0 {
		t.Fatal("loopback rate zero")
	}
	lb.Stop()
	if fab.Flows() != 0 {
		t.Fatal("loopback left flows")
	}
}
