package workload

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// StorageScan is a sequential-read tenant: an unending sweep from an
// NVMe SSD into host memory (analytics scan, backup, or index build).
type StorageScan struct {
	fab     *fabric.Fabric
	tenant  fabric.TenantID
	path    topology.Path
	chunk   int64
	bytes   uint64
	started simtime.Time
	stopped bool
	current *fabric.Flow
}

// StartScan begins a scan from ssd into dimm in chunkBytes reads.
func StartScan(fab *fabric.Fabric, tenant fabric.TenantID, ssd, dimm topology.CompID, chunkBytes int64) (*StorageScan, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("workload: scan chunk must be positive")
	}
	path, err := fab.Topology().ShortestPath(ssd, dimm)
	if err != nil {
		return nil, err
	}
	s := &StorageScan{fab: fab, tenant: tenant, path: path, chunk: chunkBytes,
		started: fab.Engine().Now()}
	if err := s.next(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *StorageScan) next() error {
	if s.stopped {
		return nil
	}
	fl := &fabric.Flow{
		Tenant: s.tenant, Path: s.path, Size: s.chunk,
		OnComplete: func(simtime.Time) {
			s.bytes += uint64(s.chunk)
			s.current = nil
			_ = s.next()
		},
	}
	if err := s.fab.AddFlow(fl); err != nil {
		return err
	}
	s.current = fl
	return nil
}

// Stop ends the scan.
func (s *StorageScan) Stop() {
	s.stopped = true
	if s.current != nil {
		s.fab.RemoveFlow(s.current)
		s.current = nil
	}
}

// Throughput returns the scan's average bandwidth.
func (s *StorageScan) Throughput() topology.Rate {
	el := s.fab.Engine().Now().Sub(s.started).Seconds()
	if el <= 0 {
		return 0
	}
	return topology.Rate(float64(s.bytes) / el)
}

// RDMALoopback is the antagonist from Kong et al. [31]: loopback RDMA
// traffic that crosses the NIC's PCIe link in both directions at once
// and can exhaust it — a single buggy or malicious tenant saturating
// an intra-host fabric other tenants depend on.
type RDMALoopback struct {
	fab   *fabric.Fabric
	flows []*fabric.Flow
}

// StartLoopback installs greedy NIC->memory and memory->NIC flows for
// the given tenant.
func StartLoopback(fab *fabric.Fabric, tenant fabric.TenantID, nic, dimm topology.CompID) (*RDMALoopback, error) {
	out, err := fab.Topology().ShortestPath(nic, dimm)
	if err != nil {
		return nil, err
	}
	back, err := fab.Topology().ShortestPath(dimm, nic)
	if err != nil {
		return nil, err
	}
	l := &RDMALoopback{fab: fab}
	for _, p := range []topology.Path{out, back} {
		fl := &fabric.Flow{Tenant: tenant, Path: p}
		if err := fab.AddFlow(fl); err != nil {
			l.Stop()
			return nil, err
		}
		l.flows = append(l.flows, fl)
	}
	return l, nil
}

// Stop removes the loopback flows.
func (l *RDMALoopback) Stop() {
	for _, fl := range l.flows {
		l.fab.RemoveFlow(fl)
	}
	l.flows = nil
}

// Rate returns the loopback's current aggregate rate.
func (l *RDMALoopback) Rate() topology.Rate {
	var sum topology.Rate
	for _, fl := range l.flows {
		sum += fl.Rate()
	}
	return sum
}
