// Package workload provides the application models the paper's
// motivation section describes sharing an intra-host network: a
// latency-sensitive remote key-value store, a bandwidth-hungry ML
// training job, a storage scan, and the RDMA-loopback antagonist of
// Kong et al. [31] that exhausts PCIe bandwidth. Each drives the
// fabric simulator as a tenant and records its own application-level
// metrics, so interference and isolation are measured where the paper
// cares: at the application.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Histogram records latency samples and reports percentiles. It keeps
// raw samples (simulation scale makes this affordable) so percentiles
// are exact.
type Histogram struct {
	samples []simtime.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d simtime.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Reset discards all samples.
func (h *Histogram) Reset() { h.samples = h.samples[:0]; h.sorted = false }

func (h *Histogram) sortOnce() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or zero with no samples.
func (h *Histogram) Percentile(p float64) simtime.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.001
	}
	if p > 100 {
		p = 100
	}
	h.sortOnce()
	rank := int(p/100*float64(len(h.samples))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Mean returns the average sample, or zero with no samples.
func (h *Histogram) Mean() simtime.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum simtime.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / simtime.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() simtime.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortOnce()
	return h.samples[len(h.samples)-1]
}

// Summary formats p50/p99/max for reports.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("p50=%v p99=%v max=%v (n=%d)",
		h.Percentile(50), h.Percentile(99), h.Max(), h.Count())
}
