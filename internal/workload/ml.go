package workload

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// MLConfig describes a machine-learning training tenant: an unending
// sequence of training steps, each of which stages a batch from host
// memory into the GPU over the PCIe fabric and the memory bus — the
// paper's canonical bandwidth-hungry co-location aggressor.
type MLConfig struct {
	Tenant fabric.TenantID
	// GPU is the accelerator.
	GPU topology.CompID
	// Memory is the DIMM training data is staged from.
	Memory topology.CompID
	// BatchBytes per training step.
	BatchBytes int64
	// ComputeTime models the GPU-bound portion of a step between
	// transfers (zero = transfer-bound, maximum fabric pressure).
	ComputeTime simtime.Duration
	// Path optionally pins the transfer path (a managed tenant uses
	// its scheduler-assigned pathway).
	Path topology.Path
}

// DefaultMLConfig returns a transfer-bound trainer loading 64 MiB
// batches from socket-0 memory into gpu0.
func DefaultMLConfig(tenant fabric.TenantID) MLConfig {
	return MLConfig{
		Tenant: tenant, GPU: "gpu0", Memory: "socket0.dimm0_0",
		BatchBytes: 64 << 20,
	}
}

// MLTrainer is a running training workload.
type MLTrainer struct {
	fab     *fabric.Fabric
	cfg     MLConfig
	path    topology.Path
	steps   uint64
	bytes   uint64
	started simtime.Time
	stopped bool
	current *fabric.Flow
}

// StartML begins the training loop.
func StartML(fab *fabric.Fabric, cfg MLConfig) (*MLTrainer, error) {
	if cfg.BatchBytes <= 0 {
		return nil, fmt.Errorf("workload: ml batch must be positive")
	}
	if cfg.ComputeTime < 0 {
		return nil, fmt.Errorf("workload: negative compute time")
	}
	path := cfg.Path
	if path.Hops() == 0 {
		p, err := fab.Topology().ShortestPath(cfg.Memory, cfg.GPU)
		if err != nil {
			return nil, err
		}
		path = p
	}
	m := &MLTrainer{fab: fab, cfg: cfg, path: path, started: fab.Engine().Now()}
	if err := m.startStep(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *MLTrainer) startStep() error {
	if m.stopped {
		return nil
	}
	fl := &fabric.Flow{
		Tenant: m.cfg.Tenant,
		Path:   m.path,
		Size:   m.cfg.BatchBytes,
		OnComplete: func(simtime.Time) {
			m.steps++
			m.bytes += uint64(m.cfg.BatchBytes)
			m.current = nil
			if m.cfg.ComputeTime > 0 {
				m.fab.Engine().After(m.cfg.ComputeTime, func() { _ = m.startStep() })
			} else {
				_ = m.startStep()
			}
		},
	}
	if err := m.fab.AddFlow(fl); err != nil {
		return err
	}
	m.current = fl
	return nil
}

// Stop ends the loop and cancels the in-flight transfer.
func (m *MLTrainer) Stop() {
	m.stopped = true
	if m.current != nil {
		m.fab.RemoveFlow(m.current)
		m.current = nil
	}
}

// Steps returns completed training steps.
func (m *MLTrainer) Steps() uint64 { return m.steps }

// Throughput returns the average staging bandwidth since start,
// including the in-flight batch's partial progress.
func (m *MLTrainer) Throughput() topology.Rate {
	el := m.fab.Engine().Now().Sub(m.started).Seconds()
	if el <= 0 {
		return 0
	}
	bytes := float64(m.bytes)
	if m.current != nil {
		bytes += float64(m.cfg.BatchBytes - m.current.Remaining())
	}
	return topology.Rate(bytes / el)
}

// Path returns the pathway the trainer stages over.
func (m *MLTrainer) Path() topology.Path { return m.path }
