// Package diagml is the "advanced diagnostic capabilities" extension
// the paper sketches in §3.1 Q3: because intra-host telemetry is
// multi-modal (heartbeat RTTs, per-class link utilization, DDIO cache
// occupancy, configuration state — not just the bytes/packets/drops of
// homogeneous Ethernet links), learned classifiers can tell fault
// *types* apart where threshold rules cannot.
//
// The package provides a feature extractor over the live monitoring
// stack, a deterministic synthetic-incident generator for training
// data, and a k-nearest-neighbor classifier (stdlib only, exact, and
// explainable — each verdict cites its nearest training incidents).
package diagml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/cachesim"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/topology"
)

// Label classifies an incident.
type Label string

// The fault classes the intra-host network can be in.
const (
	Healthy     Label = "healthy"
	LinkFailure Label = "link-failure"
	Degradation Label = "link-degradation"
	Congestion  Label = "congestion"
	DDIOThrash  Label = "ddio-thrash"
	Misconfig   Label = "misconfiguration"
)

// AllLabels lists every class in a fixed order.
var AllLabels = []Label{Healthy, LinkFailure, Degradation, Congestion, DDIOThrash, Misconfig}

// Features is one incident's multi-modal telemetry snapshot. The
// first two modalities (RTT inflation, loss) are what a homogeneous,
// inter-host-style monitor would have; the rest exist only because
// the intra-host monitor is fine-grained and heterogeneous.
type Features struct {
	// RTTInflation is the worst heartbeat RTT relative to its pair's
	// calibrated baseline.
	RTTInflation float64
	// LossFrac is the fraction of pairs whose last heartbeat was lost.
	LossFrac float64
	// MaxPCIeUtil, MaxMemUtil, MaxUPIUtil are peak utilizations by
	// link class.
	MaxPCIeUtil float64
	MaxMemUtil  float64
	MaxUPIUtil  float64
	// DDIOMiss is the worst DDIO stream miss fraction.
	DDIOMiss float64
	// ConfigDrift counts configuration-drift alerts.
	ConfigDrift float64
}

// vector returns the feature values in fixed order.
func (f Features) vector() []float64 {
	return []float64{f.RTTInflation, f.LossFrac, f.MaxPCIeUtil,
		f.MaxMemUtil, f.MaxUPIUtil, f.DDIOMiss, f.ConfigDrift}
}

// featureCount is the dimensionality of the full feature space.
const featureCount = 7

// Extract builds a feature snapshot from the live monitoring stack.
// Any of plat, mon, ddio may be nil (its modalities read as zero),
// which is how single-modality ablations are expressed.
func Extract(fab *fabric.Fabric, plat *anomaly.Platform, mon *monitor.Monitor, ddio *cachesim.Manager) Features {
	var f Features
	if plat != nil {
		stats := plat.PairStats()
		lost := 0
		for _, ps := range stats {
			if ps.LastLost {
				lost++
				continue
			}
			if ps.Baseline > 0 && ps.LastRTT > 0 {
				infl := float64(ps.LastRTT) / float64(ps.Baseline)
				if infl > f.RTTInflation {
					f.RTTInflation = infl
				}
			}
		}
		if len(stats) > 0 {
			f.LossFrac = float64(lost) / float64(len(stats))
		}
	}
	for _, st := range fab.AllLinkStats() {
		switch st.Class {
		case topology.ClassPCIeUp, topology.ClassPCIeDown:
			if st.Utilization > f.MaxPCIeUtil {
				f.MaxPCIeUtil = st.Utilization
			}
		case topology.ClassIntraSocket, topology.ClassCXL:
			if st.Utilization > f.MaxMemUtil {
				f.MaxMemUtil = st.Utilization
			}
		case topology.ClassInterSocket:
			if st.Utilization > f.MaxUPIUtil {
				f.MaxUPIUtil = st.Utilization
			}
		}
	}
	if ddio != nil {
		f.DDIOMiss = ddio.MaxMiss()
	}
	if mon != nil {
		f.ConfigDrift = float64(len(mon.AlertsOfKind(monitor.AlertConfigDrift)))
	}
	return f
}

// Sample is a labeled incident.
type Sample struct {
	Features Features
	Label    Label
}

// Classifier is a k-nearest-neighbor fault classifier with per-feature
// min-max normalization learned from the training set.
type Classifier struct {
	samples []Sample
	k       int
	lo, hi  [featureCount]float64
	// mask selects the feature dimensions in use; ablations restrict
	// it to the homogeneous modalities.
	mask [featureCount]bool
}

// Option configures training.
type Option func(*Classifier)

// WithModalities restricts the classifier to the first n feature
// dimensions (n=2 keeps only RTT inflation and loss — the
// inter-host-style homogeneous telemetry).
func WithModalities(n int) Option {
	return func(c *Classifier) {
		for i := range c.mask {
			c.mask[i] = i < n
		}
	}
}

// Train fits a k-NN classifier on the samples.
func Train(samples []Sample, k int, opts ...Option) (*Classifier, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("diagml: empty training set")
	}
	if k <= 0 || k > len(samples) {
		return nil, fmt.Errorf("diagml: k=%d outside [1,%d]", k, len(samples))
	}
	c := &Classifier{samples: samples, k: k}
	for i := range c.mask {
		c.mask[i] = true
	}
	for _, o := range opts {
		o(c)
	}
	for i := 0; i < featureCount; i++ {
		c.lo[i] = math.Inf(1)
		c.hi[i] = math.Inf(-1)
	}
	for _, s := range samples {
		v := s.Features.vector()
		for i, x := range v {
			if x < c.lo[i] {
				c.lo[i] = x
			}
			if x > c.hi[i] {
				c.hi[i] = x
			}
		}
	}
	return c, nil
}

func (c *Classifier) normalize(v []float64) []float64 {
	out := make([]float64, featureCount)
	for i, x := range v {
		if !c.mask[i] {
			continue
		}
		span := c.hi[i] - c.lo[i]
		if span <= 0 {
			continue
		}
		out[i] = (x - c.lo[i]) / span
	}
	return out
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Verdict is a classification with its evidence.
type Verdict struct {
	Label Label
	// Confidence is the winning label's share of the k votes.
	Confidence float64
	// Neighbors are the labels of the k nearest training incidents,
	// nearest first — the verdict's explanation.
	Neighbors []Label
}

// Classify labels one incident.
func (c *Classifier) Classify(f Features) Verdict {
	q := c.normalize(f.vector())
	type scored struct {
		d     float64
		label Label
		idx   int
	}
	all := make([]scored, len(c.samples))
	for i, s := range c.samples {
		all[i] = scored{d: dist(q, c.normalize(s.Features.vector())), label: s.Label, idx: i}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].idx < all[j].idx
	})
	votes := make(map[Label]int)
	neighbors := make([]Label, 0, c.k)
	for _, s := range all[:c.k] {
		votes[s.label]++
		neighbors = append(neighbors, s.label)
	}
	best, bestVotes := Label(""), -1
	for _, l := range AllLabels {
		if votes[l] > bestVotes {
			best, bestVotes = l, votes[l]
		}
	}
	return Verdict{Label: best, Confidence: float64(bestVotes) / float64(c.k), Neighbors: neighbors}
}

// Evaluate returns accuracy and the per-class confusion counts of the
// classifier on a labeled test set.
func (c *Classifier) Evaluate(test []Sample) (accuracy float64, confusion map[Label]map[Label]int) {
	confusion = make(map[Label]map[Label]int)
	correct := 0
	for _, s := range test {
		v := c.Classify(s.Features)
		if confusion[s.Label] == nil {
			confusion[s.Label] = make(map[Label]int)
		}
		confusion[s.Label][v.Label]++
		if v.Label == s.Label {
			correct++
		}
	}
	if len(test) > 0 {
		accuracy = float64(correct) / float64(len(test))
	}
	return accuracy, confusion
}
