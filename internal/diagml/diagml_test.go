package diagml

import (
	"testing"
	"testing/quick"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 1); err == nil {
		t.Fatal("empty training set accepted")
	}
	samples := []Sample{{Label: Healthy}, {Label: Congestion}}
	if _, err := Train(samples, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Train(samples, 3); err == nil {
		t.Fatal("k > len accepted")
	}
	if _, err := Train(samples, 2); err != nil {
		t.Fatal(err)
	}
}

func TestClassifySeparableToy(t *testing.T) {
	// Hand-built separable incidents.
	train := []Sample{
		{Features{1, 0, 0.1, 0.1, 0, 0, 0}, Healthy},
		{Features{1.1, 0, 0.2, 0.1, 0, 0, 0}, Healthy},
		{Features{1, 0.5, 0.1, 0.1, 0, 0, 0}, LinkFailure},
		{Features{1, 0.8, 0.2, 0.1, 0, 0, 0}, LinkFailure},
		{Features{20, 0, 0.2, 0.1, 0, 0, 0}, Degradation},
		{Features{30, 0, 0.1, 0.2, 0, 0, 0}, Degradation},
		{Features{8, 0, 1.0, 0.9, 0.2, 0, 0}, Congestion},
		{Features{9, 0, 0.95, 1.0, 0.3, 0, 0}, Congestion},
		{Features{1.5, 0, 0.2, 0.8, 0, 0.4, 0}, DDIOThrash},
		{Features{1.6, 0, 0.1, 0.9, 0, 0.5, 0}, DDIOThrash},
		{Features{1.2, 0, 0.1, 0.1, 0, 0, 1}, Misconfig},
		{Features{1.3, 0, 0.2, 0.1, 0, 0, 2}, Misconfig},
	}
	c, err := Train(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		f    Features
		want Label
	}{
		{Features{1.05, 0, 0.15, 0.1, 0, 0, 0}, Healthy},
		{Features{1, 0.6, 0.15, 0.1, 0, 0, 0}, LinkFailure},
		{Features{25, 0, 0.15, 0.15, 0, 0, 0}, Degradation},
		{Features{8.5, 0, 0.97, 0.95, 0.25, 0, 0}, Congestion},
		{Features{1.55, 0, 0.15, 0.85, 0, 0.45, 0}, DDIOThrash},
		{Features{1.25, 0, 0.15, 0.1, 0, 0, 1}, Misconfig},
	}
	for _, tc := range cases {
		v := c.Classify(tc.f)
		if v.Label != tc.want {
			t.Errorf("classified %+v as %s (want %s), neighbors %v", tc.f, v.Label, tc.want, v.Neighbors)
		}
		if v.Confidence <= 0 || v.Confidence > 1 {
			t.Errorf("confidence %v out of range", v.Confidence)
		}
		if len(v.Neighbors) != 2 {
			t.Errorf("neighbors %v", v.Neighbors)
		}
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	ds, err := GenerateDataset(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2*len(AllLabels) {
		t.Fatalf("dataset size %d, want %d", len(ds), 2*len(AllLabels))
	}
	counts := make(map[Label]int)
	for _, s := range ds {
		counts[s.Label]++
	}
	for _, l := range AllLabels {
		if counts[l] != 2 {
			t.Fatalf("label %s has %d samples", l, counts[l])
		}
	}
	// Feature sanity per class.
	for _, s := range ds {
		switch s.Label {
		case LinkFailure:
			if s.Features.LossFrac == 0 {
				t.Errorf("link-failure incident with no loss: %+v", s.Features)
			}
		case Degradation:
			if s.Features.RTTInflation < 2 {
				t.Errorf("degradation with low inflation: %+v", s.Features)
			}
		case Congestion:
			if s.Features.MaxPCIeUtil < 0.9 && s.Features.MaxMemUtil < 0.9 {
				t.Errorf("congestion without saturation: %+v", s.Features)
			}
		case DDIOThrash:
			if s.Features.DDIOMiss == 0 {
				t.Errorf("ddio-thrash without misses: %+v", s.Features)
			}
		case Misconfig:
			if s.Features.ConfigDrift == 0 {
				t.Errorf("misconfig without drift alert: %+v", s.Features)
			}
		}
	}
	if _, err := GenerateDataset(7, 0); err == nil {
		t.Fatal("perClass=0 accepted")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a, err := GenerateDataset(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEndToEndAccuracy(t *testing.T) {
	train, err := GenerateDataset(100, 6)
	if err != nil {
		t.Fatal(err)
	}
	test, err := GenerateDataset(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, confusion := full.Evaluate(test)
	if acc < 0.8 {
		t.Fatalf("full-modality accuracy %.2f, want >= 0.8 (confusion %v)", acc, confusion)
	}
	// Homogeneous (inter-host-style) telemetry only: must be worse —
	// the paper's Q3 point that multi-modal data matters.
	narrow, err := Train(train, 3, WithModalities(2))
	if err != nil {
		t.Fatal(err)
	}
	naccAcc, _ := narrow.Evaluate(test)
	if naccAcc >= acc {
		t.Fatalf("2-modality accuracy %.2f not below full %.2f", naccAcc, acc)
	}
}

// Property: classification is deterministic and always returns a
// known label with confidence in (0,1].
func TestPropertyClassifierTotal(t *testing.T) {
	train, err := GenerateDataset(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[Label]bool)
	for _, l := range AllLabels {
		known[l] = true
	}
	f := func(a, b, d, e, g, h, i float64) bool {
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			if x != x { // NaN
				return 0
			}
			return x
		}
		feat := Features{abs(a), abs(b), abs(d), abs(e), abs(g), abs(h), abs(i)}
		v1 := c.Classify(feat)
		v2 := c.Classify(feat)
		return known[v1.Label] && v1.Label == v2.Label &&
			v1.Confidence > 0 && v1.Confidence <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
