package diagml

import (
	"fmt"
	"math/rand"

	"repro/internal/anomaly"
	"repro/internal/cachesim"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// GenerateDataset produces perClass labeled incidents per fault class
// by running short simulations on the two-socket host: start the
// monitoring stack, let heartbeats calibrate, inject the class's fault
// with randomized parameters, let the system react, and snapshot the
// multi-modal features. Everything derives from seed, so datasets are
// reproducible.
func GenerateDataset(seed int64, perClass int) ([]Sample, error) {
	if perClass <= 0 {
		return nil, fmt.Errorf("diagml: perClass must be positive")
	}
	var out []Sample
	for li, label := range AllLabels {
		for i := 0; i < perClass; i++ {
			s, err := generateIncident(seed+int64(li)*10_000+int64(i), label)
			if err != nil {
				return nil, fmt.Errorf("diagml: %s incident %d: %w", label, i, err)
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// incidentLinks are the fault-injection candidates: the PCIe fabric
// links whose failures the paper's motivating scenarios involve.
var incidentLinks = []topology.LinkID{
	"pcieswitch0->nic0",
	"nic0->pcieswitch0",
	"pcieswitch0->socket0.rootport0",
	"socket0.rootport0->pcieswitch0",
	"pcieswitch1->nic1",
	"socket0.rootport1->gpu0",
	"pcieswitch1->ssd1",
}

func generateIncident(seed int64, label Label) (Sample, error) {
	engine := simtime.NewEngine(seed)
	rng := engine.Rand()
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())

	cfg := anomaly.DefaultConfig()
	plat, err := anomaly.New(fab, anomaly.DefaultPairs(topo), cfg)
	if err != nil {
		return Sample{}, err
	}
	if err := plat.Start(); err != nil {
		return Sample{}, err
	}
	mon, err := monitor.New(fab, monitor.DefaultOptions())
	if err != nil {
		return Sample{}, err
	}
	if err := mon.Start(); err != nil {
		return Sample{}, err
	}
	ddio, err := cachesim.NewManager(fab, cachesim.DefaultConfig())
	if err != nil {
		return Sample{}, err
	}
	// Quiet background so "healthy" is not trivially all-zero: a
	// light NIC-to-memory flow on socket 1 and a fitting DDIO stream.
	bgPath, err := topo.ShortestPath("nic1", "socket1.dimm0_0")
	if err != nil {
		return Sample{}, err
	}
	if err := fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: bgPath,
		Demand: topology.GBps(2 + 4*rng.Float64())}); err != nil {
		return Sample{}, err
	}
	if err := ddio.AddStream("bg", "bg", 1, topology.GBps(5+5*rng.Float64())); err != nil {
		return Sample{}, err
	}
	// Calibrate heartbeats.
	engine.RunFor(simtime.Duration(cfg.CalibrationRounds+3) * cfg.Period)

	if err := inject(label, fab, ddio, topo, rng); err != nil {
		return Sample{}, err
	}
	// Let the fault express itself through the telemetry.
	engine.RunFor(simtime.Millisecond)
	f := Extract(fab, plat, mon, ddio)
	return Sample{Features: f, Label: label}, nil
}

// InjectForDemo injects one incident of the given class into a live
// fabric, with the same randomized parameters the dataset generator
// uses. cmd/ihdiag uses it to stage classifier demonstrations.
func InjectForDemo(label Label, fab *fabric.Fabric, ddio *cachesim.Manager, topo *topology.Topology, rng *rand.Rand) error {
	return inject(label, fab, ddio, topo, rng)
}

func inject(label Label, fab *fabric.Fabric, ddio *cachesim.Manager, topo *topology.Topology, rng *rand.Rand) error {
	switch label {
	case Healthy:
		return nil
	case LinkFailure:
		return fab.FailLink(incidentLinks[rng.Intn(len(incidentLinks))])
	case Degradation:
		link := incidentLinks[rng.Intn(len(incidentLinks))]
		frac := 0.1 + 0.3*rng.Float64()
		extra := simtime.Duration(5+rng.Intn(15)) * simtime.Microsecond
		return fab.DegradeLink(link, frac, extra)
	case Congestion:
		// 2-4 greedy aggressors across the socket-0 fabric.
		n := 2 + rng.Intn(3)
		pairs := [][2]topology.CompID{
			{"nic0", "socket0.dimm0_0"},
			{"socket0.dimm0_0", "nic0"},
			{"socket0.dimm0_1", "gpu0"},
			{"ssd0", "socket0.dimm1_0"},
		}
		for i := 0; i < n; i++ {
			pr := pairs[i%len(pairs)]
			p, err := topo.ShortestPath(pr[0], pr[1])
			if err != nil {
				return err
			}
			if err := fab.AddFlow(&fabric.Flow{
				Tenant: fabric.TenantID(fmt.Sprintf("agg%d", i)), Path: p,
			}); err != nil {
				return err
			}
		}
		return nil
	case DDIOThrash:
		for i := 0; i < 2; i++ {
			rate := topology.GBps(18 + 14*rng.Float64())
			if err := ddio.AddStream(cachesim.StreamID(fmt.Sprintf("hot%d", i)),
				fabric.TenantID(fmt.Sprintf("io%d", i)), 0, rate); err != nil {
				return err
			}
		}
		return nil
	case Misconfig:
		// Flip one of the performance-relevant knobs the monitor
		// watches.
		switch rng.Intn(3) {
		case 0:
			topo.Component("socket0.llc").SetConfig(topology.ConfigDDIO, "off")
		case 1:
			topo.Component("socket0.rootport0").SetConfig(topology.ConfigIOMMU, "translate")
		default:
			topo.Component("socket0.rootport1").SetConfig(topology.ConfigIOMMU, "translate")
		}
		return nil
	}
	return fmt.Errorf("diagml: unknown label %q", label)
}
