package anomaly

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func setup(t *testing.T) (*Platform, *fabric.Fabric, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine(11)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, e, fabric.DefaultConfig())
	p, err := New(fab, DefaultPairs(topo), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p, fab, e
}

func TestDefaultPairsFullMesh(t *testing.T) {
	topo := topology.TwoSocketServer()
	pairs := DefaultPairs(topo)
	// Devices: 2 gpu + 2 nic + 2 ssd + 2 cpu = 8 -> 8*7 = 56 pairs.
	if len(pairs) != 56 {
		t.Fatalf("pairs = %d, want 56", len(pairs))
	}
	seen := make(map[Pair]bool)
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatalf("self pair %s", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %s", p)
		}
		seen[p] = true
	}
}

func TestConfigValidation(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := topology.MinimalHost()
	fab := fabric.New(topo, e, fabric.DefaultConfig())
	pairs := DefaultPairs(topo)
	bad := []Config{
		{Period: 0, ProbeBytes: 64, CalibrationRounds: 1, LatencyFactor: 2, ConsecutiveBad: 1, SuspectThreshold: 0.5, WindowRounds: 4},
		{Period: 1, ProbeBytes: -1, CalibrationRounds: 1, LatencyFactor: 2, ConsecutiveBad: 1, SuspectThreshold: 0.5, WindowRounds: 4},
		{Period: 1, ProbeBytes: 64, CalibrationRounds: 0, LatencyFactor: 2, ConsecutiveBad: 1, SuspectThreshold: 0.5, WindowRounds: 4},
		{Period: 1, ProbeBytes: 64, CalibrationRounds: 1, LatencyFactor: 1, ConsecutiveBad: 1, SuspectThreshold: 0.5, WindowRounds: 4},
		{Period: 1, ProbeBytes: 64, CalibrationRounds: 1, LatencyFactor: 2, ConsecutiveBad: 1, SuspectThreshold: 1.5, WindowRounds: 4},
	}
	for i, c := range bad {
		if _, err := New(fab, pairs, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(fab, nil, DefaultConfig()); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := New(fab, []Pair{{"nope", "gpu0"}}, DefaultConfig()); err == nil {
		t.Error("unroutable pair accepted")
	}
}

func TestHealthyFabricNoDetections(t *testing.T) {
	p, _, e := setup(t)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunFor(5 * simtime.Millisecond)
	if n := len(p.Detections()); n != 0 {
		t.Fatalf("healthy fabric produced %d detections", n)
	}
	if len(p.Suspects()) != 0 {
		t.Fatalf("healthy fabric has suspects: %v", p.Suspects())
	}
	if p.ProbesSent() == 0 || p.Rounds() == 0 {
		t.Fatal("no probes sent")
	}
}

func TestHardFailureDetectedAndLocalized(t *testing.T) {
	p, fab, e := setup(t)
	_ = p.Start()
	e.RunFor(3 * simtime.Millisecond) // calibrate
	victim := topology.LinkID("socket0.rootport0->pcieswitch0")
	if err := fab.FailLink(victim); err != nil {
		t.Fatal(err)
	}
	e.RunFor(3 * simtime.Millisecond)
	dets := p.Detections()
	if len(dets) == 0 {
		t.Fatal("hard failure not detected")
	}
	if !dets[0].Lost {
		t.Fatal("hard failure not classified as loss")
	}
	// Localization: the failed link (or its reverse) must rank first.
	if len(dets[0].Suspects) == 0 {
		t.Fatal("no suspects at detection")
	}
	top := dets[0].Suspects[0].Link
	rev := fab.Topology().Link(victim).Reverse
	if top != victim && top != rev {
		t.Fatalf("top suspect %s, want %s or %s (all: %v)", top, victim, rev, dets[0].Suspects)
	}
}

func TestSilentDegradationDetectedAndLocalized(t *testing.T) {
	p, fab, e := setup(t)
	_ = p.Start()
	e.RunFor(3 * simtime.Millisecond) // calibrate
	// The paper's motivating case: the PCIe switch silently degrades —
	// capacity intact enough not to trip counters, latency way up.
	victim := topology.LinkID("pcieswitch0->nic0")
	if err := fab.DegradeLink(victim, 0.2, 10*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	e.RunFor(3 * simtime.Millisecond)
	dets := p.Detections()
	if len(dets) == 0 {
		t.Fatal("silent degradation not detected")
	}
	if dets[0].Lost {
		t.Fatal("degradation misclassified as loss")
	}
	found := false
	rev := fab.Topology().Link(victim).Reverse
	for _, s := range dets[0].Suspects {
		if s.Link == victim || s.Link == rev {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded link not among suspects: %v", dets[0].Suspects)
	}
	// Healthy links shared with healthy paths must not be top suspect.
	top := dets[0].Suspects[0].Link
	if top != victim && top != rev {
		t.Fatalf("top suspect %s is not the degraded link", top)
	}
}

func TestDetectionLatencyBounded(t *testing.T) {
	p, fab, e := setup(t)
	cfg := DefaultConfig()
	_ = p.Start()
	e.RunFor(2 * simtime.Millisecond)
	injectAt := e.Now()
	_ = fab.FailLink("socket0.rootport0->pcieswitch0")
	e.RunFor(3 * simtime.Millisecond)
	dets := p.Detections()
	if len(dets) == 0 {
		t.Fatal("not detected")
	}
	latency := dets[0].At.Sub(injectAt)
	// Needs ConsecutiveBad rounds of Period each, plus probe RTT.
	maxExpected := simtime.Duration(cfg.ConsecutiveBad+2) * cfg.Period
	if latency > maxExpected {
		t.Fatalf("detection latency %v exceeds %v", latency, maxExpected)
	}
}

func TestRecoveryRearmsDetection(t *testing.T) {
	p, fab, e := setup(t)
	_ = p.Start()
	e.RunFor(2 * simtime.Millisecond)
	victim := topology.LinkID("pcieswitch0->nic0")
	_ = fab.FailLink(victim)
	e.RunFor(2 * simtime.Millisecond)
	first := len(p.Detections())
	if first == 0 {
		t.Fatal("not detected")
	}
	// Sustained failure: no duplicate detections for the same pair.
	e.RunFor(2 * simtime.Millisecond)
	sustained := len(p.Detections())
	if sustained != first {
		t.Fatalf("sustained failure re-alerted: %d -> %d", first, sustained)
	}
	_ = fab.RestoreLink(victim)
	e.RunFor(2 * simtime.Millisecond)
	_ = fab.FailLink(victim)
	e.RunFor(2 * simtime.Millisecond)
	if len(p.Detections()) <= sustained {
		t.Fatal("recurrence not re-detected after recovery")
	}
	p.Stop()
}

func TestStopHaltsProbing(t *testing.T) {
	p, _, e := setup(t)
	_ = p.Start()
	if err := p.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	e.RunFor(simtime.Millisecond)
	n := p.ProbesSent()
	p.Stop()
	e.RunFor(simtime.Millisecond)
	if p.ProbesSent() != n {
		t.Fatal("probes continued after Stop")
	}
}
