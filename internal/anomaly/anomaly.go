// Package anomaly implements the paper's "platform for anomaly
// detection" (§3.1): devices on the intra-host network periodically
// send heartbeats to each other (the intra-host analogue of Pingmesh),
// a detector flags pairs whose heartbeats are lost or whose RTT
// inflates beyond a learned baseline, and a localizer ranks links by
// path-overlap voting to pinpoint the silently degraded component —
// the PCIe-switch failure scenario the paper uses as motivation.
package anomaly

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Pair is one heartbeat relation between two components.
type Pair struct {
	Src, Dst topology.CompID
}

func (p Pair) String() string { return string(p.Src) + "~" + string(p.Dst) }

// DefaultPairs returns the full mesh over the host's I/O devices and
// CPUs (GPUs, NICs, SSDs, FPGAs, CPU sockets), excluding the external
// node: the coverage a deployed heartbeat service would configure.
func DefaultPairs(topo *topology.Topology) []Pair {
	var devs []topology.CompID
	for _, c := range topo.Components() {
		switch c.Kind {
		case topology.KindGPU, topology.KindNIC, topology.KindSSD,
			topology.KindFPGA, topology.KindCPU:
			devs = append(devs, c.ID)
		}
	}
	var out []Pair
	for _, a := range devs {
		for _, b := range devs {
			if a != b {
				out = append(out, Pair{a, b})
			}
		}
	}
	return out
}

// Config tunes the platform.
type Config struct {
	// Period between heartbeat rounds.
	Period simtime.Duration
	// ProbeBytes sizes each heartbeat request (response is equal).
	ProbeBytes int64
	// CalibrationRounds learn the per-pair RTT baseline before
	// detection arms.
	CalibrationRounds int
	// LatencyFactor flags a heartbeat whose RTT exceeds baseline by
	// this multiple.
	LatencyFactor float64
	// ConsecutiveBad heartbeats on a pair trigger a detection.
	ConsecutiveBad int
	// SuspectThreshold is the minimum bad-traversal fraction for a
	// link to be reported as a suspect.
	SuspectThreshold float64
	// WindowRounds bounds the voting window.
	WindowRounds int
}

// DefaultConfig returns the settings used in experiments: 100 us
// heartbeats, 64-byte probes, 10 calibration rounds, 3x latency
// threshold, 3 consecutive bad probes, 0.8 suspicion threshold.
func DefaultConfig() Config {
	return Config{
		Period:            100 * simtime.Microsecond,
		ProbeBytes:        64,
		CalibrationRounds: 10,
		LatencyFactor:     3,
		ConsecutiveBad:    3,
		SuspectThreshold:  0.8,
		WindowRounds:      16,
	}
}

func (c Config) validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("anomaly: non-positive period")
	}
	if c.ProbeBytes < 0 {
		return fmt.Errorf("anomaly: negative probe size")
	}
	if c.CalibrationRounds <= 0 || c.ConsecutiveBad <= 0 || c.WindowRounds <= 0 {
		return fmt.Errorf("anomaly: rounds parameters must be positive")
	}
	if c.LatencyFactor <= 1 {
		return fmt.Errorf("anomaly: latency factor must exceed 1")
	}
	if c.SuspectThreshold <= 0 || c.SuspectThreshold > 1 {
		return fmt.Errorf("anomaly: suspect threshold outside (0,1]")
	}
	return nil
}

// Suspect is one link's localization verdict.
type Suspect struct {
	Link topology.LinkID
	// Score is the fraction of traversing heartbeats in the window
	// that were anomalous.
	Score float64
	// Traversals is the window's probe coverage of this link.
	Traversals int
}

// Detection is one anomaly incident.
type Detection struct {
	At simtime.Time
	// Pair whose heartbeats triggered the detection.
	Pair Pair
	// Lost is true when heartbeats were dropped (hard failure) rather
	// than slow (degradation).
	Lost bool
	// Suspects is the localization ranking at detection time,
	// highest score first.
	Suspects []Suspect
}

// pairState is the detector's per-pair memory.
type pairState struct {
	pair       Pair
	path       topology.Path
	calSamples []simtime.Duration
	baseline   simtime.Duration
	consecBad  int
	alerted    bool
	lastRTT    simtime.Duration
	lastLost   bool
}

// linkWindow is a sliding window of traversal outcomes for one link.
type linkWindow struct {
	bad, total []int // per round-slot counters
}

// Platform runs the heartbeat mesh and localization.
type Platform struct {
	fab   *fabric.Fabric
	cfg   Config
	pairs []*pairState

	ticker     *simtime.Ticker
	round      int
	slot       int
	links      map[topology.LinkID]*linkWindow
	detections []Detection
	probesSent uint64

	// Observability (nil when unattached).
	tracer      *obs.Tracer
	mProbes     *obs.Counter
	mRounds     *obs.Counter
	mDetections *obs.Counter
	mCleared    *obs.Counter
}

// SetObs attaches an observability substrate. Each heartbeat round
// emits one trace event (per-probe events would dominate the ring);
// every detection emits one carrying its top suspect.
func (p *Platform) SetObs(o *obs.Obs) {
	if o == nil {
		p.tracer, p.mProbes, p.mRounds, p.mDetections, p.mCleared = nil, nil, nil, nil, nil
		return
	}
	p.tracer = o.Tracer
	p.mProbes = o.Registry.Counter("ihnet_anomaly_probes_total",
		"Heartbeat probes sent across the mesh.")
	p.mRounds = o.Registry.Counter("ihnet_anomaly_rounds_total",
		"Completed heartbeat rounds.")
	p.mDetections = o.Registry.Counter("ihnet_anomaly_detections_total",
		"Anomaly incidents detected (lost or inflated heartbeats).")
	p.mCleared = o.Registry.Counter("ihnet_anomaly_cleared_total",
		"Alerted heartbeat pairs that returned to health.")
}

// New builds a platform probing the given pairs. Paths are resolved
// once at construction (heartbeat paths are pinned, like a real
// source-routed probe).
func New(fab *fabric.Fabric, pairs []Pair, cfg Config) (*Platform, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("anomaly: no pairs")
	}
	p := &Platform{fab: fab, cfg: cfg, links: make(map[topology.LinkID]*linkWindow)}
	for _, pr := range pairs {
		path, err := fab.Topology().ShortestPath(pr.Src, pr.Dst)
		if err != nil {
			return nil, fmt.Errorf("anomaly: pair %s: %w", pr, err)
		}
		p.pairs = append(p.pairs, &pairState{pair: pr, path: path})
	}
	return p, nil
}

// Start begins heartbeat rounds.
func (p *Platform) Start() error {
	if p.ticker != nil {
		return fmt.Errorf("anomaly: already started")
	}
	p.ticker = p.fab.Engine().Every(p.cfg.Period, p.roundFn)
	return nil
}

// Stop halts heartbeats; history remains queryable.
func (p *Platform) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

// roundFn sends one heartbeat per pair and evaluates results as the
// callbacks arrive (probe RTTs are microseconds, far below the round
// period, so results land before the next round).
func (p *Platform) roundFn() {
	p.round++
	p.mRounds.Inc()
	p.mProbes.Add(uint64(len(p.pairs)))
	if p.tracer.Enabled() {
		p.tracer.Emit(obs.Event{
			Kind: obs.KindHeartbeat, Virtual: p.fab.Engine().Now(),
			Value: float64(len(p.pairs)),
		})
	}
	p.slot = (p.slot + 1) % p.cfg.WindowRounds
	for _, lw := range p.links {
		lw.bad[p.slot] = 0
		lw.total[p.slot] = 0
	}
	for _, ps := range p.pairs {
		ps := ps
		p.probesSent++
		err := p.fab.SendTransaction(fabric.TxOptions{
			Tenant: fabric.SystemTenant,
			Src:    ps.pair.Src, Dst: ps.pair.Dst,
			Path:     ps.path,
			ReqBytes: p.cfg.ProbeBytes, RespBytes: p.cfg.ProbeBytes,
		}, func(r fabric.TxRecord) { p.onResult(ps, r) })
		if err != nil {
			// Treat an unroutable probe as a loss.
			p.onResult(ps, fabric.TxRecord{Lost: true})
		}
	}
}

// onResult scores one heartbeat outcome.
func (p *Platform) onResult(ps *pairState, r fabric.TxRecord) {
	ps.lastRTT, ps.lastLost = r.RTT, r.Lost
	inCalibration := p.round <= p.cfg.CalibrationRounds
	if inCalibration {
		if !r.Lost {
			ps.calSamples = append(ps.calSamples, r.RTT)
			var sum simtime.Duration
			for _, s := range ps.calSamples {
				sum += s
			}
			ps.baseline = sum / simtime.Duration(len(ps.calSamples))
		}
		return
	}
	bad := r.Lost
	if !bad && ps.baseline > 0 {
		bad = float64(r.RTT) > float64(ps.baseline)*p.cfg.LatencyFactor
	}
	p.vote(ps.path, bad)
	if !bad {
		ps.consecBad = 0
		if ps.alerted {
			ps.alerted = false
			p.mCleared.Inc()
			if p.tracer.Enabled() {
				p.tracer.Emit(obs.Event{
					Kind: obs.KindAnomalyCleared, Virtual: p.fab.Engine().Now(),
					Subject: ps.pair.String(),
				})
			}
		}
		return
	}
	ps.consecBad++
	if ps.consecBad >= p.cfg.ConsecutiveBad && !ps.alerted {
		ps.alerted = true
		d := Detection{
			At:       p.fab.Engine().Now(),
			Pair:     ps.pair,
			Lost:     r.Lost,
			Suspects: p.Suspects(),
		}
		p.detections = append(p.detections, d)
		p.mDetections.Inc()
		if p.tracer.Enabled() {
			detail := "degraded"
			if d.Lost {
				detail = "lost"
			}
			if len(d.Suspects) > 0 {
				detail += "; top suspect " + string(d.Suspects[0].Link)
			}
			p.tracer.Emit(obs.Event{
				Kind: obs.KindAnomalyDetect, Virtual: d.At,
				Subject: d.Pair.String(), Detail: detail,
				Value: float64(len(d.Suspects)),
			})
		}
	}
}

// vote records a heartbeat outcome on every link of its path (both
// directions: the response traveled the reverse).
func (p *Platform) vote(path topology.Path, bad bool) {
	record := func(id topology.LinkID) {
		lw := p.links[id]
		if lw == nil {
			lw = &linkWindow{
				bad:   make([]int, p.cfg.WindowRounds),
				total: make([]int, p.cfg.WindowRounds),
			}
			p.links[id] = lw
		}
		lw.total[p.slot]++
		if bad {
			lw.bad[p.slot]++
		}
	}
	for _, l := range path.Links {
		record(l.ID)
		record(l.Reverse)
	}
}

// Suspects returns the current localization ranking: links whose
// bad-traversal fraction meets the threshold, highest score first,
// ties broken by ID. Scoring covers only the most recent
// ConsecutiveBad rounds, so a fresh incident is not diluted by the
// healthy history before it; localization granularity is the
// undirected link, since a heartbeat response always traverses the
// reverse direction of its request.
func (p *Platform) Suspects() []Suspect {
	var out []Suspect
	ids := make([]string, 0, len(p.links))
	for id := range p.links {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	recent := p.cfg.ConsecutiveBad
	if recent > p.cfg.WindowRounds {
		recent = p.cfg.WindowRounds
	}
	for _, id := range ids {
		lw := p.links[topology.LinkID(id)]
		bad, total := 0, 0
		for off := 0; off < recent; off++ {
			i := (p.slot - off + p.cfg.WindowRounds) % p.cfg.WindowRounds
			bad += lw.bad[i]
			total += lw.total[i]
		}
		if total == 0 {
			continue
		}
		score := float64(bad) / float64(total)
		if score >= p.cfg.SuspectThreshold {
			out = append(out, Suspect{Link: topology.LinkID(id), Score: score, Traversals: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// DetectionCount returns the number of detections without copying the
// history — the remediation loop polls it every step.
func (p *Platform) DetectionCount() int { return len(p.detections) }

// Detections returns the incident history, oldest first.
func (p *Platform) Detections() []Detection {
	out := make([]Detection, len(p.detections))
	copy(out, p.detections)
	return out
}

// PairStat is one pair's current heartbeat state, for downstream
// diagnosis (e.g. the diagml classifier's RTT-inflation feature).
type PairStat struct {
	Pair     Pair
	Baseline simtime.Duration
	LastRTT  simtime.Duration
	LastLost bool
	Alerted  bool
}

// PairStats returns the per-pair heartbeat state in pair order.
func (p *Platform) PairStats() []PairStat {
	out := make([]PairStat, 0, len(p.pairs))
	for _, ps := range p.pairs {
		out = append(out, PairStat{
			Pair: ps.pair, Baseline: ps.baseline,
			LastRTT: ps.lastRTT, LastLost: ps.lastLost,
			Alerted: ps.alerted,
		})
	}
	return out
}

// ProbesSent returns the cumulative heartbeat count — the platform's
// own fabric footprint (each probe also consumes intra-host
// bandwidth, which is the Q2 trade-off).
func (p *Platform) ProbesSent() uint64 { return p.probesSent }

// Overhead reports the platform's own resource footprint: probe rate
// and the aggregate fabric bytes it injects per second of virtual time
// (request + response on every pair). This is the monitoring side of
// the §3.1 Q2 dilemma, quantified.
type Overhead struct {
	ProbesPerSecond float64
	BytesPerSecond  float64
}

// Overhead computes the platform's steady-state footprint from its
// configuration (probes are fixed-size and periodic, so this is exact
// once running).
func (p *Platform) Overhead() Overhead {
	perRound := float64(len(p.pairs))
	persec := perRound / p.cfg.Period.Seconds()
	return Overhead{
		ProbesPerSecond: persec,
		BytesPerSecond:  persec * float64(2*p.cfg.ProbeBytes),
	}
}

// Rounds returns the number of completed heartbeat rounds.
func (p *Platform) Rounds() int { return p.round }

// ConfigUsed returns the platform's configuration — harnesses derive
// detection deadlines (calibration rounds, period, consecutive-bad)
// from it.
func (p *Platform) ConfigUsed() Config { return p.cfg }

// CoversLink reports whether any heartbeat pair's pinned path
// traverses the link in either direction. A failure on an uncovered
// link is invisible to the mesh, so harnesses must not expect it to be
// localized.
func (p *Platform) CoversLink(id topology.LinkID) bool {
	for _, ps := range p.pairs {
		for _, l := range ps.path.Links {
			if l.ID == id || l.Reverse == id {
				return true
			}
		}
	}
	return false
}

// AlertedOnLink reports whether any currently alerted pair's pinned
// path traverses the link in either direction — the "sensor still
// sees the anomaly" half of the remediation loop's invariant-restored
// condition.
func (p *Platform) AlertedOnLink(id topology.LinkID) bool {
	for _, ps := range p.pairs {
		if !ps.alerted {
			continue
		}
		for _, l := range ps.path.Links {
			if l.ID == id || l.Reverse == id {
				return true
			}
		}
	}
	return false
}

// AlertedAttributableToLink reports whether some currently alerted,
// currently *lost* pair's pinned path traverses the link (either
// direction) and carries no other link the caller knows to be
// unhealthy. Two filters keep ambiguous evidence from implicating the
// link: latency-only alerts are excluded because inflated RTTs under
// multi-tenant load are indistinguishable from congestion (the caller
// should consult the fabric's link-health registers for degradation),
// and an alerted pair crossing a different currently-unhealthy link is
// explained by that fault — without this, a shared upstream link would
// be held suspect for as long as any downstream fault stays open.
func (p *Platform) AlertedAttributableToLink(id topology.LinkID, otherUnhealthy func(topology.LinkID) bool) bool {
	for _, ps := range p.pairs {
		if !ps.alerted || !ps.lastLost {
			continue
		}
		onPath, explained := false, false
		for _, l := range ps.path.Links {
			if l.ID == id || l.Reverse == id {
				onPath = true
				continue
			}
			if otherUnhealthy(l.ID) || otherUnhealthy(l.Reverse) {
				explained = true
			}
		}
		if onPath && !explained {
			return true
		}
	}
	return false
}

// Alerted reports whether any heartbeat pair is currently alerted.
func (p *Platform) Alerted() bool {
	for _, ps := range p.pairs {
		if ps.alerted {
			return true
		}
	}
	return false
}
