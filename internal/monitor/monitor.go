// Package monitor implements the paper's "monitor for intra-host
// network configuration and resources" (§3.1): periodic collection of
// per-link and per-tenant usage, watermark-based congestion alerts,
// and a configuration registry watch that detects drift (DDIO flipped
// off, IOMMU mode changed, payload size renegotiated) — the
// misconfigurations that silently reshape intra-host performance.
package monitor

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Options configures a Monitor.
type Options struct {
	// CheckPeriod is the interval between monitoring sweeps.
	CheckPeriod simtime.Duration
	// CongestionWatermark raises an alert when a link's utilization
	// crosses above it (edge-triggered). Typical: 0.9.
	CongestionWatermark float64
	// AlertCapacity bounds the retained alert history.
	AlertCapacity int
}

// DefaultOptions returns 100 us sweeps with a 0.9 watermark.
func DefaultOptions() Options {
	return Options{
		CheckPeriod:         100 * simtime.Microsecond,
		CongestionWatermark: 0.9,
		AlertCapacity:       1024,
	}
}

// AlertKind classifies a monitoring alert.
type AlertKind string

// Alert kinds raised by the monitor.
const (
	// AlertCongestion fires when a link crosses the watermark.
	AlertCongestion AlertKind = "congestion"
	// AlertConfigDrift fires when a component's configuration changed
	// versus the baseline.
	AlertConfigDrift AlertKind = "config-drift"
)

// Alert is one monitoring event.
type Alert struct {
	At   simtime.Time
	Kind AlertKind
	// Link is set for congestion alerts.
	Link topology.LinkID
	// Utilization at the time of a congestion alert.
	Utilization float64
	// Component/Key/Old/New are set for config-drift alerts.
	Component topology.CompID
	Key       string
	Old, New  string
}

// TenantUsage is one tenant's current allocation by link class.
type TenantUsage struct {
	Tenant  fabric.TenantID
	ByClass map[topology.LinkClass]topology.Rate
}

// Report is a point-in-time usage summary — what a fleet dashboard
// would render for one host.
type Report struct {
	At    simtime.Time
	Links []fabric.LinkStats
	// Tenants is sorted by tenant ID.
	Tenants []TenantUsage
	// Congested lists links above the watermark.
	Congested []topology.LinkID
}

// Monitor watches one fabric.
type Monitor struct {
	fab  *fabric.Fabric
	opts Options

	ticker   *simtime.Ticker
	baseline map[topology.CompID]map[string]string
	above    map[topology.LinkID]bool // links currently above watermark
	alerts   []Alert
	sweeps   uint64
}

// New builds a monitor over the fabric. Call Start to begin sweeping.
func New(fab *fabric.Fabric, opts Options) (*Monitor, error) {
	if opts.CheckPeriod <= 0 {
		return nil, fmt.Errorf("monitor: non-positive check period")
	}
	if opts.CongestionWatermark <= 0 || opts.CongestionWatermark > 1 {
		return nil, fmt.Errorf("monitor: watermark %v outside (0,1]", opts.CongestionWatermark)
	}
	if opts.AlertCapacity <= 0 {
		opts.AlertCapacity = 1024
	}
	return &Monitor{
		fab:   fab,
		opts:  opts,
		above: make(map[topology.LinkID]bool),
	}, nil
}

// Start snapshots the configuration baseline and begins periodic
// sweeps.
func (m *Monitor) Start() error {
	if m.ticker != nil {
		return fmt.Errorf("monitor: already started")
	}
	m.baseline = m.snapshotConfig()
	m.ticker = m.fab.Engine().Every(m.opts.CheckPeriod, m.sweep)
	return nil
}

// Stop halts sweeping. Alerts and reports remain queryable.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// Sweeps returns how many monitoring sweeps have run.
func (m *Monitor) Sweeps() uint64 { return m.sweeps }

func (m *Monitor) snapshotConfig() map[topology.CompID]map[string]string {
	out := make(map[topology.CompID]map[string]string)
	for _, c := range m.fab.Topology().Components() {
		if len(c.Config) == 0 {
			continue
		}
		cp := make(map[string]string, len(c.Config))
		for k, v := range c.Config {
			cp[k] = v
		}
		out[c.ID] = cp
	}
	return out
}

// sweep performs one monitoring pass: watermark checks and config
// drift detection.
func (m *Monitor) sweep() {
	m.sweeps++
	now := m.fab.Engine().Now()
	for _, st := range m.fab.AllLinkStats() {
		wasAbove := m.above[st.Link]
		isAbove := st.Utilization >= m.opts.CongestionWatermark
		if isAbove && !wasAbove {
			m.addAlert(Alert{At: now, Kind: AlertCongestion, Link: st.Link, Utilization: st.Utilization})
		}
		m.above[st.Link] = isAbove
	}
	// Config drift: compare against baseline and then adopt changes
	// (each drift alerts once). Keys are visited in sorted order so
	// multiple drifts caught by one sweep always alert identically —
	// alert history is part of the deterministic state the snap
	// divergence checker hashes.
	for _, c := range m.fab.Topology().Components() {
		base := m.baseline[c.ID]
		keys := make([]string, 0, len(c.Config))
		for k := range c.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := c.Config[k]
			old, had := base[k]
			if !had || old != v {
				oldVal := old
				if !had {
					oldVal = "<unset>"
				}
				m.addAlert(Alert{At: now, Kind: AlertConfigDrift,
					Component: c.ID, Key: k, Old: oldVal, New: v})
				if base == nil {
					base = make(map[string]string)
					m.baseline[c.ID] = base
				}
				base[k] = v
			}
		}
	}
}

func (m *Monitor) addAlert(a Alert) {
	if len(m.alerts) >= m.opts.AlertCapacity {
		m.alerts = m.alerts[1:]
	}
	m.alerts = append(m.alerts, a)
}

// Alerts returns the retained alert history, oldest first.
func (m *Monitor) Alerts() []Alert {
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// AlertsOfKind filters the history by kind.
func (m *Monitor) AlertsOfKind(k AlertKind) []Alert {
	var out []Alert
	for _, a := range m.alerts {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// UsageReport assembles the current per-link and per-tenant usage
// summary.
func (m *Monitor) UsageReport() Report {
	r := Report{At: m.fab.Engine().Now(), Links: m.fab.AllLinkStats()}
	for _, st := range r.Links {
		if st.Utilization >= m.opts.CongestionWatermark {
			r.Congested = append(r.Congested, st.Link)
		}
	}
	tenants := m.fab.Tenants()
	for _, t := range tenants {
		r.Tenants = append(r.Tenants, TenantUsage{Tenant: t, ByClass: m.fab.TenantUsage(t)})
	}
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Tenant < r.Tenants[j].Tenant })
	return r
}
