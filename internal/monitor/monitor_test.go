package monitor

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func setup(t *testing.T) (*Monitor, *fabric.Fabric, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine(3)
	topo := topology.MinimalHost()
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	m, err := New(fab, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m, fab, e
}

func saturate(t *testing.T, fab *fabric.Fabric, tenant fabric.TenantID) *fabric.Flow {
	t.Helper()
	p, err := fab.Topology().ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &fabric.Flow{Tenant: tenant, Path: p}
	if err := fab.AddFlow(fl); err != nil {
		t.Fatal(err)
	}
	return fl
}

func TestOptionsValidation(t *testing.T) {
	e := simtime.NewEngine(1)
	fab := fabric.New(topology.MinimalHost(), e, fabric.DefaultConfig())
	if _, err := New(fab, Options{CheckPeriod: 0, CongestionWatermark: 0.9}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := New(fab, Options{CheckPeriod: 1, CongestionWatermark: 0}); err == nil {
		t.Fatal("zero watermark accepted")
	}
	if _, err := New(fab, Options{CheckPeriod: 1, CongestionWatermark: 1.5}); err == nil {
		t.Fatal("watermark > 1 accepted")
	}
}

func TestCongestionAlertEdgeTriggered(t *testing.T) {
	m, fab, e := setup(t)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	e.RunFor(simtime.Millisecond)
	if n := len(m.AlertsOfKind(AlertCongestion)); n != 0 {
		t.Fatalf("idle fabric raised %d congestion alerts", n)
	}
	fl := saturate(t, fab, "ml")
	e.RunFor(simtime.Millisecond)
	alerts := m.AlertsOfKind(AlertCongestion)
	if len(alerts) == 0 {
		t.Fatal("saturated fabric raised no congestion alert")
	}
	// Edge-triggered: sustained congestion does not re-alert.
	count := len(alerts)
	e.RunFor(5 * simtime.Millisecond)
	if len(m.AlertsOfKind(AlertCongestion)) != count {
		t.Fatal("sustained congestion re-alerted every sweep")
	}
	// Clearing and re-congesting alerts again.
	fab.RemoveFlow(fl)
	e.RunFor(simtime.Millisecond)
	saturate(t, fab, "ml")
	e.RunFor(simtime.Millisecond)
	if len(m.AlertsOfKind(AlertCongestion)) <= count {
		t.Fatal("re-congestion did not alert")
	}
	if m.Sweeps() == 0 {
		t.Fatal("no sweeps counted")
	}
}

func TestConfigDriftDetection(t *testing.T) {
	m, fab, e := setup(t)
	_ = m.Start()
	e.RunFor(simtime.Millisecond)
	if n := len(m.AlertsOfKind(AlertConfigDrift)); n != 0 {
		t.Fatalf("unchanged config raised %d drift alerts", n)
	}
	// Flip DDIO off — the classic silent misconfiguration.
	fab.Topology().Component("socket0.llc").SetConfig(topology.ConfigDDIO, "off")
	e.RunFor(simtime.Millisecond)
	drifts := m.AlertsOfKind(AlertConfigDrift)
	if len(drifts) != 1 {
		t.Fatalf("drift alerts = %d, want 1", len(drifts))
	}
	d := drifts[0]
	if d.Component != "socket0.llc" || d.Key != topology.ConfigDDIO || d.Old != "on" || d.New != "off" {
		t.Fatalf("drift alert fields: %+v", d)
	}
	// Alert once, not every sweep.
	e.RunFor(5 * simtime.Millisecond)
	if len(m.AlertsOfKind(AlertConfigDrift)) != 1 {
		t.Fatal("drift re-alerted")
	}
	// A new key (previously unset) also alerts.
	fab.Topology().Component("nic0").SetConfig("sriov", "on")
	e.RunFor(simtime.Millisecond)
	drifts = m.AlertsOfKind(AlertConfigDrift)
	if len(drifts) != 2 || drifts[1].Old != "<unset>" {
		t.Fatalf("new-key drift: %+v", drifts)
	}
}

func TestUsageReport(t *testing.T) {
	m, fab, e := setup(t)
	saturate(t, fab, "ml")
	saturate(t, fab, "kv")
	e.RunFor(simtime.Millisecond)
	r := m.UsageReport()
	if len(r.Links) != fab.Topology().NumLinks() {
		t.Fatalf("report covers %d links", len(r.Links))
	}
	if len(r.Tenants) != 2 {
		t.Fatalf("report tenants = %d, want 2", len(r.Tenants))
	}
	if r.Tenants[0].Tenant != "kv" || r.Tenants[1].Tenant != "ml" {
		t.Fatalf("tenants not sorted: %+v", r.Tenants)
	}
	if len(r.Congested) == 0 {
		t.Fatal("saturated link not reported congested")
	}
	for _, tu := range r.Tenants {
		if tu.ByClass[topology.ClassPCIeDown] <= 0 {
			t.Fatalf("tenant %s has no PCIe usage", tu.Tenant)
		}
	}
}

func TestAlertCapacityBounded(t *testing.T) {
	e := simtime.NewEngine(3)
	topo := topology.MinimalHost()
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	m, err := New(fab, Options{
		CheckPeriod: 100 * simtime.Microsecond, CongestionWatermark: 0.9, AlertCapacity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Start()
	// Toggle congestion repeatedly to generate > capacity alerts.
	p, _ := topo.ShortestPath("nic0", "socket0.dimm0_0")
	for i := 0; i < 10; i++ {
		fl := &fabric.Flow{Tenant: "x", Path: p}
		_ = fab.AddFlow(fl)
		e.RunFor(300 * simtime.Microsecond)
		fab.RemoveFlow(fl)
		e.RunFor(300 * simtime.Microsecond)
	}
	if n := len(m.Alerts()); n > 3 {
		t.Fatalf("alert history %d exceeds capacity 3", n)
	}
	m.Stop()
}

func TestStopHaltsSweeps(t *testing.T) {
	m, _, e := setup(t)
	_ = m.Start()
	e.RunFor(simtime.Millisecond)
	n := m.Sweeps()
	m.Stop()
	e.RunFor(simtime.Millisecond)
	if m.Sweeps() != n {
		t.Fatal("sweeps continued after Stop")
	}
}
