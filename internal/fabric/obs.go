package fabric

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// fabricMetrics caches the fabric's metric handles so hot-path updates
// are single atomic operations with no registry lookups.
type fabricMetrics struct {
	tracer *obs.Tracer

	flowsStarted   *obs.Counter
	flowsCompleted *obs.Counter
	flowsRemoved   *obs.Counter
	flowsActive    *obs.Gauge
	txSent         *obs.Counter
	txCompleted    *obs.Counter
	txLost         *obs.Counter
	recomputes     *obs.Counter
	recomputeNs    *obs.Histogram
	linkFails      *obs.Counter
	linkDegrades   *obs.Counter
	linkRestores   *obs.Counter

	solverComponents       *obs.Gauge
	solverWorkers          *obs.Gauge
	solverSolves           *obs.Counter
	solverNoop             *obs.Counter
	solverParallel         *obs.Counter
	solverComponentsSolved *obs.Counter
	solverFlowsSolved      *obs.Counter
	solverFlowsSkipped     *obs.Counter
	solverRounds           *obs.Counter
	solverBatches          *obs.Counter
	solverBatchedOps       *obs.Counter
}

// SetObs attaches an observability substrate to the fabric. Pass nil
// to detach (instrumentation reverts to no-ops). Metric handles are
// resolved once here; the simulation hot path then pays one pointer
// check plus atomic updates per event.
func (f *Fabric) SetObs(o *obs.Obs) {
	if o == nil {
		f.met = nil
		return
	}
	r := o.Registry
	f.met = &fabricMetrics{
		tracer: o.Tracer,
		flowsStarted: r.Counter("ihnet_fabric_flows_started_total",
			"Flows installed on the fabric."),
		flowsCompleted: r.Counter("ihnet_fabric_flows_completed_total",
			"Sized flows that finished their transfer."),
		flowsRemoved: r.Counter("ihnet_fabric_flows_removed_total",
			"Flows removed before completion."),
		flowsActive: r.Gauge("ihnet_fabric_flows_active",
			"Flows currently installed on the fabric."),
		txSent: r.Counter("ihnet_fabric_tx_sent_total",
			"Transactions injected (DMA, RDMA verbs, probes, heartbeats)."),
		txCompleted: r.Counter("ihnet_fabric_tx_completed_total",
			"Transactions delivered end to end."),
		txLost: r.Counter("ihnet_fabric_tx_lost_total",
			"Transactions lost at a failed link."),
		recomputes: r.Counter("ihnet_fabric_recompute_total",
			"Global weighted max-min rate recomputations."),
		recomputeNs: r.Histogram("ihnet_fabric_recompute_duration_ns",
			"Wall-clock cost of one max-min recomputation, nanoseconds."),
		linkFails: r.Counter("ihnet_fabric_link_failures_total",
			"Hard link failures injected."),
		linkDegrades: r.Counter("ihnet_fabric_link_degradations_total",
			"Silent link degradations injected."),
		linkRestores: r.Counter("ihnet_fabric_link_restores_total",
			"Links restored to health (failure or degradation cleared)."),
		solverComponents: r.Gauge("ihnet_fabric_solver_components",
			"Independent constraint-graph components in the fabric."),
		solverWorkers: r.Gauge("ihnet_fabric_solver_workers",
			"Worker goroutines the component solver would use."),
		solverSolves: r.Counter("ihnet_fabric_solver_solves_total",
			"Rate recomputations that ran the component solver."),
		solverNoop: r.Counter("ihnet_fabric_solver_noop_total",
			"Rate recomputations skipped: no component was dirty."),
		solverParallel: r.Counter("ihnet_fabric_solver_parallel_solves_total",
			"Solves dispatched to the worker pool."),
		solverComponentsSolved: r.Counter("ihnet_fabric_solver_components_solved_total",
			"Dirty components re-solved."),
		solverFlowsSolved: r.Counter("ihnet_fabric_solver_flows_solved_total",
			"Flows whose rate was recomputed (members of dirty components)."),
		solverFlowsSkipped: r.Counter("ihnet_fabric_solver_flows_skipped_total",
			"Flows untouched by a solve because their component was clean."),
		solverRounds: r.Counter("ihnet_fabric_solver_rounds_total",
			"Water-filling rounds executed across all solved components."),
		solverBatches: r.Counter("ihnet_fabric_solver_batches_total",
			"Mutation batches settled with a single recomputation."),
		solverBatchedOps: r.Counter("ihnet_fabric_solver_batched_mutations_total",
			"Individual mutations coalesced inside batches."),
	}
}

// observedComputeRates wraps computeRates with counter, wall-clock
// histogram and trace instrumentation.
func (f *Fabric) observedComputeRates() {
	if f.met == nil {
		f.computeRates()
		return
	}
	before := f.sc
	start := time.Now()
	f.computeRates()
	elapsed := time.Since(start)
	f.met.recomputes.Inc()
	f.met.recomputeNs.Observe(float64(elapsed.Nanoseconds()))
	after := f.sc
	f.met.solverSolves.Add(after.solves - before.solves)
	f.met.solverNoop.Add(after.noopSolves - before.noopSolves)
	f.met.solverParallel.Add(after.parallelSolves - before.parallelSolves)
	f.met.solverComponentsSolved.Add(after.componentsSolved - before.componentsSolved)
	f.met.solverFlowsSolved.Add(after.flowsSolved - before.flowsSolved)
	f.met.solverFlowsSkipped.Add(after.flowsSkipped - before.flowsSkipped)
	f.met.solverRounds.Add(after.rounds - before.rounds)
	f.met.solverBatches.Add(after.batches - before.batches)
	f.met.solverBatchedOps.Add(after.batchedMutations - before.batchedMutations)
	f.met.solverComponents.Set(float64(f.liveComponents()))
	f.met.solverWorkers.Set(float64(f.solverWorkers()))
	if f.met.tracer.Enabled() {
		f.met.tracer.Emit(obs.Event{
			Kind:    obs.KindRateRecompute,
			Virtual: f.engine.Now(),
			Value:   float64(len(f.flows)),
			WallDur: elapsed,
		})
	}
}

// traceFlow emits one flow lifecycle event.
func (f *Fabric) traceFlow(kind obs.EventKind, fl *Flow) {
	if f.met == nil || !f.met.tracer.Enabled() {
		return
	}
	f.met.tracer.Emit(obs.Event{
		Kind:    kind,
		Virtual: f.engine.Now(),
		Subject: "flow:" + strconv.FormatUint(uint64(fl.ID), 10),
		Detail:  string(fl.Tenant) + " " + fl.Path.String(),
		Value:   float64(fl.rate),
	})
}
