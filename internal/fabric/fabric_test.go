package fabric

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// lineTopo builds a -> b -> c with 100 B/s links for arithmetic-friendly
// assertions.
func lineTopo() *topology.Topology {
	t := topology.New("line")
	t.MustAddComponent("a", topology.KindNIC, 0)
	t.MustAddComponent("b", topology.KindPCIeSwitch, 0)
	t.MustAddComponent("c", topology.KindDIMM, 0)
	t.MustAddLink(topology.LinkSpec{A: "a", B: "b", Class: topology.ClassPCIeDown, Capacity: 100, BaseLatency: 10})
	t.MustAddLink(topology.LinkSpec{A: "b", B: "c", Class: topology.ClassIntraSocket, Capacity: 100, BaseLatency: 10})
	return t
}

func newLineFabric() (*Fabric, *simtime.Engine, topology.Path) {
	e := simtime.NewEngine(1)
	topo := lineTopo()
	// PCIeEfficiency 1 so capacities stay exactly 100.
	f := New(topo, e, Config{QueueingFactor: 0, PCIeEfficiency: 1})
	p, err := topo.ShortestPath("a", "c")
	if err != nil {
		panic(err)
	}
	return f, e, p
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowGetsBottleneck(t *testing.T) {
	f, _, p := newLineFabric()
	fl := &Flow{Tenant: "t1", Path: p}
	if err := f.AddFlow(fl); err != nil {
		t.Fatal(err)
	}
	if r := float64(fl.Rate()); !approx(r, 100, 1e-9) {
		t.Fatalf("single flow rate %v, want 100", r)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "t1", Path: p}
	f2 := &Flow{Tenant: "t2", Path: p}
	if err := f.AddFlow(f1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFlow(f2); err != nil {
		t.Fatal(err)
	}
	if r := float64(f1.Rate()); !approx(r, 50, 1e-9) {
		t.Fatalf("f1 rate %v, want 50", r)
	}
	if r := float64(f2.Rate()); !approx(r, 50, 1e-9) {
		t.Fatalf("f2 rate %v, want 50", r)
	}
	f.RemoveFlow(f1)
	if r := float64(f2.Rate()); !approx(r, 100, 1e-9) {
		t.Fatalf("after removal f2 rate %v, want 100", r)
	}
}

func TestWeightedSharing(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "t1", Path: p, Weight: 3}
	f2 := &Flow{Tenant: "t2", Path: p, Weight: 1}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	if r := float64(f1.Rate()); !approx(r, 75, 1e-9) {
		t.Fatalf("weighted f1 rate %v, want 75", r)
	}
	if r := float64(f2.Rate()); !approx(r, 25, 1e-9) {
		t.Fatalf("weighted f2 rate %v, want 25", r)
	}
}

func TestTenantWeight(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "gold", Path: p}
	f2 := &Flow{Tenant: "bronze", Path: p}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	if err := f.SetTenantWeight("gold", 4); err != nil {
		t.Fatal(err)
	}
	if r := float64(f1.Rate()); !approx(r, 80, 1e-9) {
		t.Fatalf("gold rate %v, want 80", r)
	}
	if err := f.SetTenantWeight("gold", 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if f.TenantWeight("bronze") != 1 {
		t.Fatal("default weight not 1")
	}
}

func TestDemandLimit(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "t1", Path: p, Demand: 20}
	f2 := &Flow{Tenant: "t2", Path: p}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	// f1 bottlenecked by demand at 20; f2 takes the rest.
	if r := float64(f1.Rate()); !approx(r, 20, 1e-9) {
		t.Fatalf("f1 rate %v, want 20", r)
	}
	if r := float64(f2.Rate()); !approx(r, 80, 1e-9) {
		t.Fatalf("f2 rate %v, want 80 (max-min, not 50)", r)
	}
	if err := f.SetDemand(f1, 60); err != nil {
		t.Fatal(err)
	}
	if r := float64(f1.Rate()); !approx(r, 50, 1e-9) {
		t.Fatalf("after demand raise f1 rate %v, want 50", r)
	}
}

func TestTenantCapEnforced(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "ml", Path: p}
	f2 := &Flow{Tenant: "kv", Path: p}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	link := p.Links[0].ID
	if err := f.SetTenantCap(link, "ml", 10); err != nil {
		t.Fatal(err)
	}
	if r := float64(f1.Rate()); !approx(r, 10, 1e-9) {
		t.Fatalf("capped tenant rate %v, want 10", r)
	}
	if r := float64(f2.Rate()); !approx(r, 90, 1e-9) {
		t.Fatalf("uncapped tenant rate %v, want 90", r)
	}
	if err := f.ClearTenantCap(link, "ml"); err != nil {
		t.Fatal(err)
	}
	if r := float64(f1.Rate()); !approx(r, 50, 1e-9) {
		t.Fatalf("after clear rate %v, want 50", r)
	}
}

func TestTenantCapSharedByFlows(t *testing.T) {
	f, _, p := newLineFabric()
	f1 := &Flow{Tenant: "ml", Path: p}
	f2 := &Flow{Tenant: "ml", Path: p}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	if err := f.SetTenantCap(p.Links[0].ID, "ml", 40); err != nil {
		t.Fatal(err)
	}
	sum := float64(f1.Rate() + f2.Rate())
	if !approx(sum, 40, 1e-9) {
		t.Fatalf("tenant aggregate %v, want 40", sum)
	}
	if !approx(float64(f1.Rate()), 20, 1e-9) {
		t.Fatalf("intra-tenant share %v, want 20", f1.Rate())
	}
}

func TestCapValidationAndQueries(t *testing.T) {
	f, _, p := newLineFabric()
	link := p.Links[0].ID
	if err := f.SetTenantCap(link, "x", -1); err == nil {
		t.Fatal("negative cap accepted")
	}
	if err := f.SetTenantCap("nope", "x", 1); err == nil {
		t.Fatal("unknown link accepted")
	}
	if err := f.SetTenantCap(link, "x", 30); err != nil {
		t.Fatal(err)
	}
	if c, ok := f.TenantCap(link, "x"); !ok || c != 30 {
		t.Fatalf("TenantCap = %v,%v", c, ok)
	}
	if f.CapCount() != 1 {
		t.Fatalf("CapCount = %d", f.CapCount())
	}
	if got := f.CapsOn(link); len(got) != 1 || got["x"] != 30 {
		t.Fatalf("CapsOn = %v", got)
	}
	f.ClearAllCaps()
	if f.CapCount() != 0 {
		t.Fatal("ClearAllCaps left caps")
	}
}

func TestSizedFlowCompletes(t *testing.T) {
	f, e, p := newLineFabric()
	var doneAt simtime.Time
	fl := &Flow{Tenant: "t1", Path: p, Size: 1000,
		OnComplete: func(at simtime.Time) { doneAt = at }}
	if err := f.AddFlow(fl); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// 1000 bytes at 100 B/s = 10 s.
	want := simtime.Time(10 * simtime.Second)
	if doneAt != want {
		t.Fatalf("completed at %v, want %v", doneAt, want)
	}
	if !fl.Completed() {
		t.Fatal("flow not marked completed")
	}
	if f.Flows() != 0 {
		t.Fatal("completed flow still active")
	}
}

func TestSizedFlowSlowedByContention(t *testing.T) {
	f, e, p := newLineFabric()
	var doneAt simtime.Time
	sized := &Flow{Tenant: "t1", Path: p, Size: 1000,
		OnComplete: func(at simtime.Time) { doneAt = at }}
	_ = f.AddFlow(sized)
	// At t=5s, a competitor arrives, halving the rate.
	var competitor *Flow
	e.Schedule(simtime.Time(5*simtime.Second), func() {
		competitor = &Flow{Tenant: "t2", Path: p}
		_ = f.AddFlow(competitor)
	})
	e.Run()
	// 500 bytes at 100 B/s (5s), then 500 bytes at 50 B/s (10s) = 15s.
	want := simtime.Time(15 * simtime.Second)
	if doneAt != want {
		t.Fatalf("contended completion at %v, want %v", doneAt, want)
	}
	// After completion the competitor gets the full link again.
	if r := float64(competitor.Rate()); !approx(r, 100, 1e-9) {
		t.Fatalf("competitor rate after completion %v, want 100", r)
	}
}

func TestRemainingProgress(t *testing.T) {
	f, e, p := newLineFabric()
	fl := &Flow{Tenant: "t1", Path: p, Size: 1000}
	_ = f.AddFlow(fl)
	e.RunUntil(simtime.Time(4 * simtime.Second))
	if rem := fl.Remaining(); rem != 600 {
		t.Fatalf("remaining after 4s = %d, want 600", rem)
	}
}

func TestFlowValidation(t *testing.T) {
	f, _, p := newLineFabric()
	if err := f.AddFlow(nil); err == nil {
		t.Fatal("nil flow accepted")
	}
	if err := f.AddFlow(&Flow{Tenant: "t"}); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := f.AddFlow(&Flow{Tenant: "t", Path: p, Weight: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := f.AddFlow(&Flow{Tenant: "t", Path: p, Size: -5}); err == nil {
		t.Fatal("negative size accepted")
	}
	fl := &Flow{Tenant: "t", Path: p}
	if err := f.AddFlow(fl); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFlow(fl); err == nil {
		t.Fatal("double add accepted")
	}
	if err := f.SetDemand(fl, -1); err == nil {
		t.Fatal("negative demand accepted")
	}
	f.RemoveFlow(fl)
	f.RemoveFlow(fl) // idempotent
	if err := f.SetDemand(fl, 1); err == nil {
		t.Fatal("SetDemand on removed flow accepted")
	}
}

func TestFailedLinkZeroesFlows(t *testing.T) {
	f, _, p := newLineFabric()
	fl := &Flow{Tenant: "t1", Path: p}
	_ = f.AddFlow(fl)
	if err := f.FailLink(p.Links[0].ID); err != nil {
		t.Fatal(err)
	}
	if fl.Rate() != 0 {
		t.Fatalf("flow rate on failed link %v, want 0", fl.Rate())
	}
	if !f.LinkFailed(p.Links[0].ID) {
		t.Fatal("LinkFailed false")
	}
	if u, _ := f.Utilization(p.Links[0].ID); u != 1 {
		t.Fatalf("failed link utilization %v, want 1", u)
	}
	if err := f.RestoreLink(p.Links[0].ID); err != nil {
		t.Fatal(err)
	}
	if r := float64(fl.Rate()); !approx(r, 100, 1e-9) {
		t.Fatalf("restored rate %v, want 100", r)
	}
	if len(f.UnhealthyLinks()) != 0 {
		t.Fatal("unhealthy links after restore")
	}
}

func TestDegradeLink(t *testing.T) {
	f, _, p := newLineFabric()
	fl := &Flow{Tenant: "t1", Path: p}
	_ = f.AddFlow(fl)
	link := p.Links[1].ID
	if err := f.DegradeLink(link, 0.5, 100); err != nil {
		t.Fatal(err)
	}
	if r := float64(fl.Rate()); !approx(r, 50, 1e-9) {
		t.Fatalf("degraded rate %v, want 50", r)
	}
	frac, extra := f.LinkDegraded(link)
	if frac != 0.5 || extra != 100 {
		t.Fatalf("LinkDegraded = %v,%v", frac, extra)
	}
	if got := f.UnhealthyLinks(); len(got) != 1 || got[0] != link {
		t.Fatalf("UnhealthyLinks = %v", got)
	}
	if err := f.DegradeLink(link, 1.5, 0); err == nil {
		t.Fatal("degrade fraction >= 1 accepted")
	}
	if err := f.DegradeLink(link, 0.1, -1); err == nil {
		t.Fatal("negative extra latency accepted")
	}
}

func TestPathLatencyInflatesWithLoad(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := lineTopo()
	f := New(topo, e, Config{QueueingFactor: 0.5, MaxInflation: 40, PCIeEfficiency: 1})
	p, _ := topo.ShortestPath("a", "c")
	idle, err := f.PathLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if idle != 20 {
		t.Fatalf("idle path latency %v, want 20 (sum of bases)", idle)
	}
	// Saturate the path.
	_ = f.AddFlow(&Flow{Tenant: "t", Path: p})
	loaded, err := f.PathLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if loaded <= idle {
		t.Fatalf("loaded latency %v not above idle %v", loaded, idle)
	}
	if err := f.FailLink(p.Links[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PathLatency(p); err == nil {
		t.Fatal("PathLatency over failed link succeeded")
	}
}

func TestQueueingDisabledAblation(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := lineTopo()
	f := New(topo, e, Config{QueueingFactor: 0, PCIeEfficiency: 1})
	p, _ := topo.ShortestPath("a", "c")
	_ = f.AddFlow(&Flow{Tenant: "t", Path: p})
	lat, _ := f.PathLatency(p)
	if lat != 20 {
		t.Fatalf("latency with queueing disabled %v, want base 20", lat)
	}
}

func TestByteAccounting(t *testing.T) {
	f, e, p := newLineFabric()
	fl := &Flow{Tenant: "t1", Path: p}
	_ = f.AddFlow(fl)
	e.RunFor(simtime.Duration(10 * simtime.Second))
	st, err := f.LinkStatsFor(p.Links[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(st.TotalBytes, 1000, 1) {
		t.Fatalf("10s at 100B/s accounted %v bytes, want 1000", st.TotalBytes)
	}
	if !approx(st.TenantBytes["t1"], 1000, 1) {
		t.Fatalf("tenant bytes %v, want 1000", st.TenantBytes["t1"])
	}
	if st.Flows != 1 || st.Failed {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerTenantAccountingSplit(t *testing.T) {
	f, e, p := newLineFabric()
	_ = f.AddFlow(&Flow{Tenant: "a", Path: p})
	_ = f.AddFlow(&Flow{Tenant: "b", Path: p, Weight: 3})
	e.RunFor(simtime.Duration(8 * simtime.Second))
	st, _ := f.LinkStatsFor(p.Links[0].ID)
	if !approx(st.TenantBytes["a"], 200, 1) || !approx(st.TenantBytes["b"], 600, 1) {
		t.Fatalf("tenant split %v, want a=200 b=600", st.TenantBytes)
	}
}

func TestTenantUsageByClass(t *testing.T) {
	f, _, p := newLineFabric()
	_ = f.AddFlow(&Flow{Tenant: "t", Path: p})
	u := f.TenantUsage("t")
	if !approx(float64(u[topology.ClassPCIeDown]), 100, 1e-9) {
		t.Fatalf("pcie-down usage %v", u[topology.ClassPCIeDown])
	}
	if !approx(float64(u[topology.ClassIntraSocket]), 100, 1e-9) {
		t.Fatalf("intra-socket usage %v", u[topology.ClassIntraSocket])
	}
	if len(f.TenantUsage("nobody")) != 0 {
		t.Fatal("usage for unknown tenant not empty")
	}
}

func TestBusiestLinks(t *testing.T) {
	f, _, p := newLineFabric()
	_ = f.AddFlow(&Flow{Tenant: "t", Path: topology.Path{Links: p.Links[:1]}})
	top := f.BusiestLinks(2)
	if len(top) != 2 {
		t.Fatalf("BusiestLinks returned %d", len(top))
	}
	if top[0].Link != p.Links[0].ID {
		t.Fatalf("busiest = %s", top[0].Link)
	}
	if top[0].Utilization < top[1].Utilization {
		t.Fatal("not sorted by utilization")
	}
}

func TestTenantsList(t *testing.T) {
	f, _, p := newLineFabric()
	_ = f.AddFlow(&Flow{Tenant: "zeta", Path: p})
	_ = f.AddFlow(&Flow{Tenant: "alpha", Path: p})
	ts := f.Tenants()
	if len(ts) != 2 || ts[0] != "alpha" || ts[1] != "zeta" {
		t.Fatalf("Tenants = %v", ts)
	}
}

func TestPCIeEfficiencyDerating(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := lineTopo()
	f := New(topo, e, Config{PCIeEfficiency: 0.8})
	p, _ := topo.ShortestPath("a", "c")
	// a->b is PCIe-down: derated to 80; b->c intra-socket: 100.
	c0, _ := f.EffectiveCapacity(p.Links[0].ID)
	c1, _ := f.EffectiveCapacity(p.Links[1].ID)
	if !approx(float64(c0), 80, 1e-9) || !approx(float64(c1), 100, 1e-9) {
		t.Fatalf("derated capacities %v, %v; want 80, 100", c0, c1)
	}
	fl := &Flow{Tenant: "t", Path: p}
	_ = f.AddFlow(fl)
	if r := float64(fl.Rate()); !approx(r, 80, 1e-9) {
		t.Fatalf("rate %v, want 80 (PCIe bottleneck)", r)
	}
}
