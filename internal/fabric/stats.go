package fabric

import (
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// LinkStats is a settled snapshot of one directed link's state. This
// is the ground truth the telemetry sources sample (with their own
// fidelity limits layered on top).
type LinkStats struct {
	Link        topology.LinkID
	Class       topology.LinkClass
	Capacity    topology.Rate // effective, after derating/degradation
	CurrentRate topology.Rate // sum of allocated flow rates
	Utilization float64
	TotalBytes  float64
	TenantBytes map[TenantID]float64
	Flows       int
	Failed      bool
}

// linkStats builds the snapshot of one link, projecting byte counters
// to now without mutating them (reads must not perturb the
// accumulators' fold boundaries; see projectLinkBytes).
func (f *Fabric) linkStats(ls *linkState, now simtime.Time) LinkStats {
	total, tb := f.projectLinkBytes(ls, now)
	util := 0.0
	if ls.capacity > 0 {
		util = float64(ls.currentRate) / float64(ls.capacity)
		if util > 1 {
			util = 1
		}
	}
	if ls.failed {
		util = 1
	}
	return LinkStats{
		Link:        ls.link.ID,
		Class:       ls.link.Class,
		Capacity:    ls.capacity,
		CurrentRate: ls.currentRate,
		Utilization: util,
		TotalBytes:  total,
		TenantBytes: tb,
		Flows:       len(ls.flows),
		Failed:      ls.failed,
	}
}

// LinkStatsFor returns a settled snapshot of one link.
func (f *Fabric) LinkStatsFor(id topology.LinkID) (LinkStats, error) {
	ls, err := f.state(id)
	if err != nil {
		return LinkStats{}, err
	}
	f.recomputeIfDirty()
	return f.linkStats(ls, f.engine.Now()), nil
}

// AllLinkStats returns settled snapshots of every link, ordered by ID.
func (f *Fabric) AllLinkStats() []LinkStats {
	f.recomputeIfDirty()
	now := f.engine.Now()
	out := make([]LinkStats, 0, len(f.linkList))
	for _, ls := range f.linkList {
		out = append(out, f.linkStats(ls, now))
	}
	return out
}

// FlowStats is a settled snapshot of one active flow — the fabric's
// half of the state-capture contract with internal/snap: everything
// externally observable about a flow, without its OnComplete closure
// (closures are why snapshots restore by replay, not by decoding).
type FlowStats struct {
	ID     FlowID
	Tenant TenantID
	// Links is the flow's path as directed link IDs, in hop order.
	Links []topology.LinkID
	// Demand and Rate are the offered and currently allocated rates.
	Demand topology.Rate
	Rate   topology.Rate
	Weight float64
	// SizeBytes is zero for persistent flows; RemainingBytes is the
	// ceiling of the bytes left for sized flows.
	SizeBytes      int64
	RemainingBytes int64
	Started        simtime.Time
}

// AllFlowStats returns settled snapshots of every active flow, ordered
// by flow ID (flowList order).
func (f *Fabric) AllFlowStats() []FlowStats {
	f.recomputeIfDirty()
	now := f.engine.Now()
	out := make([]FlowStats, 0, len(f.flowList))
	for _, fl := range f.flowList {
		links := make([]topology.LinkID, 0, len(fl.Path.Links))
		for _, l := range fl.Path.Links {
			links = append(links, l.ID)
		}
		out = append(out, FlowStats{
			ID: fl.ID, Tenant: fl.Tenant, Links: links,
			Demand: fl.Demand, Rate: topology.Rate(f.slotRate[fl.slot]), Weight: fl.Weight,
			SizeBytes:      fl.Size,
			RemainingBytes: int64(math.Ceil(fl.projectRemaining(now))),
			Started:        fl.started,
		})
	}
	return out
}

// TenantWeights returns every explicitly set tenant weight, for state
// export. Tenants without an entry implicitly weigh 1.
func (f *Fabric) TenantWeights() map[TenantID]float64 {
	out := make(map[TenantID]float64, len(f.tenantWeight))
	for t, w := range f.tenantWeight {
		out[t] = w
	}
	return out
}

// TenantUsage sums a tenant's current allocated rate per link class —
// the per-tenant usage statistics the paper's monitor must expose.
func (f *Fabric) TenantUsage(t TenantID) map[topology.LinkClass]topology.Rate {
	f.recomputeIfDirty()
	out := make(map[topology.LinkClass]topology.Rate)
	// flowList order: the per-class sums are float accumulations, so
	// iteration order must be deterministic.
	for _, fl := range f.flowList {
		if fl.Tenant != t {
			continue
		}
		seen := make(map[topology.LinkClass]bool)
		for _, l := range fl.Path.Links {
			if !seen[l.Class] {
				seen[l.Class] = true
				out[l.Class] += topology.Rate(f.slotRate[fl.slot])
			}
		}
	}
	return out
}

// TenantsOn returns the sorted tenants with at least one active flow
// crossing the given directed link.
func (f *Fabric) TenantsOn(link topology.LinkID) []TenantID {
	ls, err := f.state(link)
	if err != nil {
		return nil
	}
	seen := make(map[TenantID]bool)
	for _, fl := range ls.flows {
		seen[fl.Tenant] = true
	}
	out := make([]TenantID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TenantRateOn returns a tenant's current aggregate allocated rate on
// one directed link.
func (f *Fabric) TenantRateOn(link topology.LinkID, tenant TenantID) topology.Rate {
	ls, err := f.state(link)
	if err != nil {
		return 0
	}
	f.recomputeIfDirty()
	var sum topology.Rate
	for _, fl := range ls.flows {
		if fl.Tenant == tenant {
			sum += topology.Rate(f.slotRate[fl.slot])
		}
	}
	return sum
}

// BusiestLinks returns the n highest-utilization links, ties broken by
// link ID, most utilized first.
func (f *Fabric) BusiestLinks(n int) []LinkStats {
	all := f.AllLinkStats()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Utilization != all[j].Utilization {
			return all[i].Utilization > all[j].Utilization
		}
		return all[i].Link < all[j].Link
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
