package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// solverChurnSchedule drives one randomized mutation schedule against
// two fabrics in lockstep: every admit, remove, cap change, and batch
// hits both, so after any step the pair must agree bit-for-bit on
// every flow rate. The schedule deliberately mixes intra-island flows
// (many small components), spine-crossing flows (component merges),
// and removals past the rebuild threshold (component splits), so the
// union-find partition is churned in both directions while the two
// solver configurations race each other.
type solverChurnSchedule struct {
	t        *testing.T
	rng      *rand.Rand
	topo     *topology.Topology
	a, b     *Fabric
	islands  int
	live     [][2]*Flow // same flow admitted to a and b
	capped   map[string]bool
	capLinks []topology.LinkID
}

func (s *solverChurnSchedule) path(src, dst topology.CompID) topology.Path {
	s.t.Helper()
	p, err := s.topo.ShortestPath(src, dst)
	if err != nil {
		s.t.Fatalf("shortest path %s->%s: %v", src, dst, err)
	}
	return p
}

// randPath picks an intra-island path most of the time and a
// spine-crossing (component-merging) path the rest.
func (s *solverChurnSchedule) randPath() topology.Path {
	i := s.rng.Intn(s.islands)
	src := topology.CompID(fmt.Sprintf("src%d", i))
	if s.rng.Intn(10) < 3 {
		j := s.rng.Intn(s.islands)
		if j != i {
			return s.path(src, topology.CompID(fmt.Sprintf("dst%d", j)))
		}
	}
	return s.path(src, topology.CompID(fmt.Sprintf("dst%d", i)))
}

func (s *solverChurnSchedule) admit() {
	s.t.Helper()
	p := s.randPath()
	tenant := benchTenants[s.rng.Intn(len(benchTenants))]
	weight := float64(1 + s.rng.Intn(3))
	var demand topology.Rate
	if s.rng.Intn(3) == 0 {
		demand = topology.Gbps(float64(1 + s.rng.Intn(20)))
	}
	mk := func() *Flow {
		return &Flow{Tenant: tenant, Path: p, Weight: weight, Demand: demand}
	}
	fa, fb := mk(), mk()
	if err := s.a.AddFlow(fa); err != nil {
		s.t.Fatalf("serial AddFlow: %v", err)
	}
	if err := s.b.AddFlow(fb); err != nil {
		s.t.Fatalf("parallel AddFlow: %v", err)
	}
	s.live = append(s.live, [2]*Flow{fa, fb})
}

func (s *solverChurnSchedule) remove() {
	if len(s.live) == 0 {
		return
	}
	i := s.rng.Intn(len(s.live))
	pair := s.live[i]
	s.a.RemoveFlow(pair[0])
	s.b.RemoveFlow(pair[1])
	s.live[i] = s.live[len(s.live)-1]
	s.live = s.live[:len(s.live)-1]
}

// toggleCap sets or clears a per-(link,tenant) cap on a random spine
// or island link, the same way on both fabrics.
func (s *solverChurnSchedule) toggleCap() {
	s.t.Helper()
	link := s.capLinks[s.rng.Intn(len(s.capLinks))]
	tenant := benchTenants[s.rng.Intn(len(benchTenants))]
	key := string(link) + "/" + string(tenant)
	if s.capped[key] {
		if err := s.a.ClearTenantCap(link, tenant); err != nil {
			s.t.Fatalf("serial ClearTenantCap: %v", err)
		}
		if err := s.b.ClearTenantCap(link, tenant); err != nil {
			s.t.Fatalf("parallel ClearTenantCap: %v", err)
		}
		delete(s.capped, key)
		return
	}
	cap := topology.Gbps(float64(5 + s.rng.Intn(50)))
	if err := s.a.SetTenantCap(link, tenant, cap); err != nil {
		s.t.Fatalf("serial SetTenantCap: %v", err)
	}
	if err := s.b.SetTenantCap(link, tenant, cap); err != nil {
		s.t.Fatalf("parallel SetTenantCap: %v", err)
	}
	s.capped[key] = true
}

// compare demands bit-exact rate agreement across every live flow.
// Rate() settles each fabric's dirty region first, so this is where
// the serial and parallel solvers actually run.
func (s *solverChurnSchedule) compare(step int) {
	s.t.Helper()
	for _, pair := range s.live {
		ra, rb := pair[0].Rate(), pair[1].Rate()
		if ra != rb {
			s.t.Fatalf("step %d: flow %d: serial rate %v != parallel rate %v",
				step, pair[0].ID, float64(ra), float64(rb))
		}
	}
}

// TestParallelSolverMatchesSerialRandomChurn is the solver-parity
// gate: a forced-parallel fabric (threshold 1, four workers — wider
// than GOMAXPROCS on small machines, so the pool's synchronization is
// genuinely exercised under -race) must stay bit-identical to a
// forced-serial one across seeded random component splits and merges.
func TestParallelSolverMatchesSerialRandomChurn(t *testing.T) {
	const islands = 12
	topo := islandTopology(islands)
	mk := func(threshold, workers int) *Fabric {
		f := New(topo, simtime.NewEngine(1), DefaultConfig())
		f.SetSolverTuning(threshold, workers)
		return f
	}
	s := &solverChurnSchedule{
		t:       t,
		rng:     rand.New(rand.NewSource(97)),
		topo:    topo,
		a:       mk(1<<30, 1), // never parallel
		b:       mk(1, 4),     // always parallel
		islands: islands,
		capped:  make(map[string]bool),
	}
	defer s.b.StopSolver()
	for i := 0; i < islands; i++ {
		p := s.path(topology.CompID(fmt.Sprintf("src%d", i)),
			topology.CompID(fmt.Sprintf("dst%d", i)))
		for _, l := range p.Links {
			s.capLinks = append(s.capLinks, l.ID)
		}
	}

	for step := 0; step < 600; step++ {
		switch op := s.rng.Intn(10); {
		case op < 5 || len(s.live) == 0:
			s.admit()
		case op < 8:
			s.remove()
		default:
			s.toggleCap()
		}
		if step%20 == 19 {
			s.compare(step)
		}
	}
	// A burst of batched mutations must coalesce into one settle on
	// both sides and still agree.
	s.rng = rand.New(rand.NewSource(11))
	s.a.Batch(func() {
		s.b.Batch(func() {
			for i := 0; i < 40; i++ {
				s.admit()
			}
			for i := 0; i < 15; i++ {
				s.remove()
			}
		})
	})
	s.compare(-1)

	if st := s.b.SolverStats(); st.ParallelSolves == 0 {
		t.Fatalf("forced-parallel fabric never took the parallel path: %+v", st)
	}
	if st := s.a.SolverStats(); st.ParallelSolves != 0 {
		t.Fatalf("forced-serial fabric took the parallel path: %+v", st)
	}
}

// TestSolverPartitionRebuildKeepsParity drains a fully-merged fabric
// back down to singleton islands, crossing the amortized partition
// rebuild, and checks the refined partition still yields reference
// rates (the rebuild may only refine bookkeeping, never rates).
func TestSolverPartitionRebuildKeepsParity(t *testing.T) {
	// 31 bridging removals against 32 resident flows clears the
	// amortized rebuild bar (removals*4 > flows+64).
	const islands = 32
	topo := islandTopology(islands)
	f := New(topo, simtime.NewEngine(1), DefaultConfig())
	f.SetSolverTuning(1, 4)
	defer f.StopSolver()

	// Bridge every island pair-wise, then stack intra-island load.
	var bridges, locals []*Flow
	for i := 0; i < islands-1; i++ {
		p, err := topo.ShortestPath(
			topology.CompID(fmt.Sprintf("src%d", i)),
			topology.CompID(fmt.Sprintf("dst%d", i+1)))
		if err != nil {
			t.Fatal(err)
		}
		fl := &Flow{Tenant: "a", Path: p, Weight: 1}
		if err := f.AddFlow(fl); err != nil {
			t.Fatal(err)
		}
		bridges = append(bridges, fl)
	}
	for i := 0; i < islands; i++ {
		p, err := topo.ShortestPath(
			topology.CompID(fmt.Sprintf("src%d", i)),
			topology.CompID(fmt.Sprintf("dst%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		fl := &Flow{Tenant: benchTenants[i%len(benchTenants)], Path: p,
			Weight: float64(1 + i%3), Demand: topology.Gbps(float64(10 + i%40))}
		if err := f.AddFlow(fl); err != nil {
			t.Fatal(err)
		}
		locals = append(locals, fl)
	}
	if got := f.SolverStats().Components; got != 1 {
		t.Fatalf("fully bridged fabric has %d components, want 1", got)
	}
	compareWithReference(t, f, "merged")

	// Remove every bridge in one batch: at the single settle that
	// follows, the bridged-removal counter crosses the amortized
	// rebuild threshold, so the partition must split back into
	// singleton islands — with rates still matching the reference
	// across the rebuild. (Unbatched, each removal settles eagerly and
	// the rebuild fires mid-drain, leaving a handful of stale merges
	// below the next threshold — correct, but not the refinement this
	// test pins.)
	f.Batch(func() {
		for _, fl := range bridges {
			f.RemoveFlow(fl)
		}
	})
	compareWithReference(t, f, "post-rebuild")
	if got := f.SolverStats().Components; got != islands {
		t.Fatalf("drained fabric has %d components, want %d", got, islands)
	}
	checkMaxMinInvariants(t, f, locals)
}
