package fabric

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// FlowID identifies an active flow within a fabric.
type FlowID uint64

// Flow is a unidirectional stream of traffic along a fixed path.
//
// A flow with Size == 0 is persistent: it runs until removed, pushing
// up to Demand bytes/second. A flow with Size > 0 is a sized transfer:
// it completes once Size bytes have been delivered and then invokes
// OnComplete.
type Flow struct {
	ID     FlowID
	Tenant TenantID
	Path   topology.Path
	// Demand is the source's maximum offered rate. Zero means
	// unconstrained (limited only by the fabric).
	Demand topology.Rate
	// Weight sets the flow's share under weighted max-min fairness
	// relative to other flows. Zero is treated as 1.
	Weight float64
	// Size is the transfer length in bytes; zero means persistent.
	Size int64
	// OnComplete fires when a sized transfer finishes. It receives the
	// completion time.
	OnComplete func(simtime.Time)

	// Run-time state, owned by the fabric.
	//
	// rate is only a detach-time snapshot: while the flow is active the
	// authoritative allocation lives in Fabric.slotRate[slot], so the
	// solver's install/detect/settle sweeps never touch the Flow struct.
	rate      topology.Rate
	remaining float64      // bytes left (sized flows)
	mark      simtime.Time // progress accounted up to this instant
	started   simtime.Time
	completed bool
	removed   bool
	// bridged records that installing this flow merged previously
	// separate components; removing such a flow may split the
	// partition (see maybeRebuildPartition).
	bridged bool
	// firstLink anchors the flow to its component.
	firstLink *linkState
	// effW is the flow's cached effective weight (Weight × tenant
	// weight); the authoritative copy for the solver lives in the fill
	// arena at slot, the flow's stable index there (allocated from a
	// free list, fixed for the flow's lifetime). The flow's resolved
	// path lives in Fabric.slotPath[slot] as dense link indices, its
	// tenant accounting slot in Fabric.slotTenant[slot].
	effW   float64
	slot   int32
	doneEv simtime.EventHandle
	fabric *Fabric
}

// Rate returns the flow's currently allocated rate.
func (fl *Flow) Rate() topology.Rate {
	if fl.fabric != nil && !fl.removed {
		fl.fabric.recomputeIfDirty()
		return topology.Rate(fl.fabric.slotRate[fl.slot])
	}
	return fl.rate
}

// Remaining returns the bytes left to transfer for a sized flow.
func (fl *Flow) Remaining() int64 {
	if fl.fabric != nil && !fl.removed {
		fl.fabric.recomputeIfDirty()
		return int64(math.Ceil(fl.projectRemaining(fl.fabric.engine.Now())))
	}
	return int64(math.Ceil(fl.remaining))
}

// Completed reports whether a sized flow has finished.
func (fl *Flow) Completed() bool { return fl.completed }

// Started returns the virtual time at which the flow was added.
func (fl *Flow) Started() simtime.Time { return fl.started }

// AddFlow installs a flow on the fabric and triggers a global rate
// recomputation. The flow's path must be non-empty and reference links
// of this fabric's topology. Flows across failed links are accepted
// but receive zero rate until the link recovers.
func (f *Fabric) AddFlow(fl *Flow) error {
	if fl == nil || fl.fabric != nil {
		return fmt.Errorf("fabric: flow nil or already added")
	}
	if fl.Path.Hops() == 0 {
		return fmt.Errorf("fabric: flow with empty path")
	}
	pls := f.pathScratch[:0]
	for _, l := range fl.Path.Links {
		ls, ok := f.links[l.ID]
		if !ok {
			return fmt.Errorf("fabric: flow path references unknown link %q", l.ID)
		}
		pls = append(pls, ls)
	}
	f.pathScratch = pls
	if fl.Weight < 0 || fl.Demand < 0 || fl.Size < 0 {
		return fmt.Errorf("fabric: negative flow parameter")
	}
	if fl.Weight == 0 {
		fl.Weight = 1
	}
	f.nextID++
	fl.ID = FlowID(f.nextID)
	fl.fabric = f
	fl.started = f.engine.Now()
	fl.mark = fl.started
	fl.remaining = float64(fl.Size)
	fl.firstLink = pls[0]
	tslot := f.tenantSlot(fl.Tenant)
	fl.effW = fl.Weight
	if tw, ok := f.tenantWeight[fl.Tenant]; ok && tw > 0 {
		fl.effW = fl.Weight * tw
	}
	if n := len(f.freeSlots); n > 0 {
		fl.slot = f.freeSlots[n-1]
		f.freeSlots = f.freeSlots[:n-1]
	} else {
		fl.slot = int32(len(f.slotFlow))
		f.slotFlow = append(f.slotFlow, nil)
		f.fill = append(f.fill, fillState{})
		f.slotPath = append(f.slotPath, nil)
		f.slotDemandCi = append(f.slotDemandCi, -1)
		f.slotRate = append(f.slotRate, 0)
		f.slotTenant = append(f.slotTenant, 0)
		f.slotFirst = append(f.slotFirst, -1)
	}
	f.slotFlow[fl.slot] = fl
	// A reused slot's stale epoch is always behind the solver's (the
	// epoch only ever increments), so the new flow starts unfrozen. The
	// slot's recycled path array usually has the capacity already.
	f.fill[fl.slot].effW = fl.effW
	f.slotRate[fl.slot] = 0
	f.slotTenant[fl.slot] = tslot
	f.slotFirst[fl.slot] = int32(pls[0].idx)
	sp := f.slotPath[fl.slot][:0]
	for _, ls := range pls {
		sp = append(sp, int32(ls.idx))
	}
	f.slotPath[fl.slot] = sp
	f.slotDemandCi[fl.slot] = -1
	f.flows[fl.ID] = fl
	// IDs are monotonic, so appending keeps both the fabric-wide and
	// the per-link flow lists ID-ordered. The new flow carries rate 0
	// until the next recompute, so no accounting settle is needed here:
	// its contribution to any pending accrual window is zero.
	f.flowList = append(f.flowList, fl)
	if fl.Size > 0 {
		f.sizedList = append(f.sizedList, fl)
	}
	hasCaps := false
	for _, ls := range pls {
		ls.flows = append(ls.flows, fl)
		ls.memSlots = append(ls.memSlots, fl.slot)
		ls.memberDirty = true
		f.markLinkDirty(ls)
		if len(ls.caps) > 0 {
			hasCaps = true
		}
	}
	f.unionFlowLinks(fl)
	if f.scr.consValid {
		if hasCaps {
			// Installing under a tenant cap changes that cap
			// constraint's member list, which the incremental splice
			// below cannot express.
			f.scr.consValid = false
		} else if fl.Demand > 0 {
			f.demandInsert(fl)
		}
	}
	if f.met != nil {
		f.met.flowsStarted.Inc()
		f.met.flowsActive.Set(float64(len(f.flows)))
		f.traceFlow(obs.KindFlowStart, fl)
	}
	f.markDirty()
	return nil
}

// detachFlow unhooks a flow from the fabric's indexes, settling each
// traversed link's byte accounting first so the flow's contribution up
// to now is accrued at its pre-removal rate.
func (f *Fabric) detachFlow(fl *Flow, now simtime.Time) {
	// Snapshot the final allocation before the slot is recycled so
	// post-removal readers (traces, callbacks) still see it.
	fl.rate = topology.Rate(f.slotRate[fl.slot])
	delete(f.flows, fl.ID)
	if i, ok := slices.BinarySearchFunc(f.flowList, fl.ID,
		func(a *Flow, id FlowID) int { return cmp.Compare(a.ID, id) }); ok {
		copy(f.flowList[i:], f.flowList[i+1:])
		f.flowList[len(f.flowList)-1] = nil
		f.flowList = f.flowList[:len(f.flowList)-1]
	}
	if fl.Size > 0 {
		if i, ok := slices.BinarySearchFunc(f.sizedList, fl.ID,
			func(a *Flow, id FlowID) int { return cmp.Compare(a.ID, id) }); ok {
			copy(f.sizedList[i:], f.sizedList[i+1:])
			f.sizedList[len(f.sizedList)-1] = nil
			f.sizedList = f.sizedList[:len(f.sizedList)-1]
		}
	}
	hasCaps := false
	for _, li := range f.slotPath[fl.slot] {
		ls := f.linkList[li]
		f.settleLink(ls, now)
		ls.removeFlow(fl)
		ls.memberDirty = true
		f.markLinkDirty(ls)
		if len(ls.caps) > 0 {
			hasCaps = true
		}
	}
	if f.scr.consValid {
		if hasCaps {
			f.scr.consValid = false
		} else if fl.Demand > 0 {
			f.demandRemove(fl)
		}
	}
	if fl.bridged {
		f.bridgedRemovals++
	}
	f.slotFlow[fl.slot] = nil
	f.slotFirst[fl.slot] = -1
	f.freeSlots = append(f.freeSlots, fl.slot)
}

// RemoveFlow detaches a flow and recomputes rates. Removing a flow
// twice or removing a completed sized flow is a no-op.
func (f *Fabric) RemoveFlow(fl *Flow) {
	if fl == nil || fl.fabric != f || fl.removed {
		return
	}
	now := f.engine.Now()
	f.settleFlowProgress(now)
	fl.removed = true
	fl.doneEv.Cancel()
	f.detachFlow(fl, now)
	if f.met != nil {
		f.met.flowsRemoved.Inc()
		f.met.flowsActive.Set(float64(len(f.flows)))
		f.traceFlow(obs.KindFlowRemove, fl)
	}
	f.markDirty()
}

// SetDemand updates a flow's offered rate and recomputes sharing.
func (f *Fabric) SetDemand(fl *Flow, demand topology.Rate) error {
	if fl == nil || fl.fabric != f || fl.removed {
		return fmt.Errorf("fabric: flow not active")
	}
	if demand < 0 {
		return fmt.Errorf("fabric: negative demand")
	}
	// A demand constraint exists exactly for flows with Demand > 0, so
	// crossing zero changes the constraint structure; the splice keeps
	// the constraint system valid without a full rebuild. A value change
	// on an existing constraint is written through in place.
	if f.scr.consValid {
		switch {
		case (fl.Demand > 0) != (demand > 0):
			if demand > 0 {
				fl.Demand = demand
				f.demandInsert(fl)
			} else {
				f.demandRemove(fl)
			}
		case demand > 0:
			f.scr.cons[f.slotDemandCi[fl.slot]].capacity = float64(demand)
		}
	}
	fl.Demand = demand
	f.markLinkDirty(fl.firstLink)
	f.markDirty()
	return nil
}

// Flows returns the number of active flows.
func (f *Fabric) Flows() int { return len(f.flows) }

// markDirty flags rates stale and recomputes unless a recomputation is
// already on the stack or a batch is open.
func (f *Fabric) markDirty() {
	f.dirty = true
	f.sc.mutations++
	if f.batching {
		f.sc.batchedMutations++
		return
	}
	f.recomputeIfDirty()
}

// Batch groups many mutations (cap updates, flow arrivals) into one
// rate recomputation: fn runs with recomputation deferred, and the
// fabric settles once at the end. Reads inside fn observe the
// consistent pre-batch state — which is exactly what a
// measure-then-set control loop like the arbiter wants. Virtual time
// cannot advance inside fn (the simulation is single-threaded), so no
// accounting or completion scheduling is lost. Nested batches flatten.
func (f *Fabric) Batch(fn func()) {
	if f.batching {
		fn()
		return
	}
	f.sc.batches++
	f.batching = true
	fn()
	f.batching = false
	f.recomputeIfDirty()
}

// recomputeIfDirty settles sized-flow progress, recomputes max-min
// rates (settling byte accounting on every link whose allocation is
// about to change), fires any completions that settling revealed, and
// re-arms completion events. Completions can cascade (OnComplete may
// add or remove flows); the loop runs until the state is clean.
// Re-entrant calls (from callbacks) return immediately; the outermost
// invocation finishes the job.
func (f *Fabric) recomputeIfDirty() {
	if f.inRecompute || f.batching {
		return
	}
	f.inRecompute = true
	defer func() { f.inRecompute = false }()
	for f.dirty {
		f.dirty = false
		f.settleFlowProgress(f.engine.Now())
		f.observedComputeRates()
		f.fireCompletions()
		if f.dirty {
			continue
		}
		f.armCompletions()
	}
}

// projectLinkBytes returns the link's byte counters brought up to now
// WITHOUT folding the partial segment into the accumulators. Readers
// (stats, telemetry, state export) must not write: float addition is
// not associative, so folding at read instants would make the
// accumulators — and the state hash derived from them — depend on when
// the state was observed, not just on the command journal. Folding
// happens only at rate-change boundaries (recompute, flow add/remove),
// which are journal- and engine-driven.
func (f *Fabric) projectLinkBytes(ls *linkState, now simtime.Time) (float64, map[TenantID]float64) {
	tb := make(map[TenantID]float64, len(ls.tenantBytes))
	for slot, b := range ls.tenantBytes {
		if b != 0 {
			tb[f.tenantList[slot]] = b
		}
	}
	total := ls.totalBytes
	if dt := now.Sub(ls.lastUpdate).Seconds(); dt > 0 {
		for _, sl := range ls.memSlots {
			b := f.slotRate[sl] * dt
			total += b
			tb[f.tenantList[f.slotTenant[sl]]] += b
		}
	}
	return total, tb
}

// projectRemaining returns a sized flow's remaining bytes at now
// without persisting the progress mark (see projectLinkBytes for why
// reads must not write).
func (fl *Flow) projectRemaining(now simtime.Time) float64 {
	rem := fl.remaining
	if fl.Size > 0 && !fl.completed {
		if dt := now.Sub(fl.mark).Seconds(); dt > 0 {
			rem -= fl.fabric.slotRate[fl.slot] * dt
			if rem < 1 {
				rem = 0
			}
		}
	}
	return rem
}

// settleLink accrues the link's per-link and per-tenant byte counts at
// current rates since its last update. Flows are accumulated in ID
// order, never map order: float addition is not associative, so an
// unordered sum would leave ULP-level differences between two
// otherwise identical runs — exactly the kind of silent nondeterminism
// the snap divergence checker exists to catch.
func (f *Fabric) settleLink(ls *linkState, now simtime.Time) {
	dt := now.Sub(ls.lastUpdate).Seconds()
	if dt > 0 {
		for _, sl := range ls.memSlots {
			tslot := f.slotTenant[sl]
			if int(tslot) >= len(ls.tenantBytes) {
				ls.tenantBytes = append(ls.tenantBytes,
					make([]float64, int(tslot)+1-len(ls.tenantBytes))...)
			}
			b := f.slotRate[sl] * dt
			ls.totalBytes += b
			ls.tenantBytes[tslot] += b
		}
	}
	ls.lastUpdate = now
}

// settleFlowProgress advances every sized flow's remaining-byte count
// at its current rate since its last mark. Only sized flows carry
// progress state, so the walk is over sizedList, not the full flow
// population. Per-flow updates are independent, so ID-order iteration
// here is for cache locality, not determinism.
func (f *Fabric) settleFlowProgress(now simtime.Time) {
	for _, fl := range f.sizedList {
		if !fl.completed {
			dt := now.Sub(fl.mark).Seconds()
			if dt > 0 {
				fl.remaining -= f.slotRate[fl.slot] * dt
				if fl.remaining < 1 {
					fl.remaining = 0
				}
			}
		}
		fl.mark = now
	}
}

// fireCompletions completes every sized flow whose remaining bytes
// reached zero. Completion removes the flow and invokes OnComplete,
// which may mutate the flow set (dirty handling is in the caller).
// sizedList is ID-ordered, so completions fire in deterministic ID
// order by construction.
func (f *Fabric) fireCompletions() {
	done := f.doneScratch[:0]
	for _, fl := range f.sizedList {
		if !fl.completed && fl.remaining <= 0 {
			done = append(done, fl)
		}
	}
	now := f.engine.Now()
	for _, fl := range done {
		fl.completed = true
		fl.removed = true
		fl.doneEv.Cancel()
		f.detachFlow(fl, now)
		if f.met != nil {
			f.met.flowsCompleted.Inc()
			f.met.flowsActive.Set(float64(len(f.flows)))
			f.traceFlow(obs.KindFlowDone, fl)
		}
		f.dirty = true
		if fl.OnComplete != nil {
			fl.OnComplete(now)
		}
	}
	for i := range done {
		done[i] = nil // release for GC; the scratch slice is long-lived
	}
	f.doneScratch = done[:0]
}

// armCompletions (re)schedules the completion event of every active
// sized flow according to its current rate. Flows are visited in ID
// order: each (re)arm consumes an engine sequence number, and sequence
// numbers decide execution order between same-instant events, so the
// visit order is part of the simulation's deterministic state. The
// event object itself is reused across re-arms (Engine.Reschedule), so
// the steady state allocates nothing.
func (f *Fabric) armCompletions() {
	for _, fl := range f.sizedList {
		if fl.completed {
			continue
		}
		r := topology.Rate(f.slotRate[fl.slot])
		if r <= 0 {
			fl.doneEv.Cancel()
			continue // stalled; re-armed by the next recompute
		}
		eta := r.TimeToSend(int64(math.Ceil(fl.remaining)))
		if eta < 1 {
			eta = 1
		}
		fl.doneEv = f.engine.Reschedule(fl.doneEv, f.engine.Now().Add(eta), f.completionFn)
	}
}
