package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// randomScenario builds a DGX fabric with n random flows between random
// endpoints and returns the fabric and flows.
func randomScenario(seed int64, n int) (*Fabric, []*Flow) {
	e := simtime.NewEngine(seed)
	topo := topology.DGXStyle()
	f := New(topo, e, Config{PCIeEfficiency: 1})
	eps := topo.Endpoints()
	rng := rand.New(rand.NewSource(seed))
	var flows []*Flow
	for i := 0; i < n; i++ {
		src := eps[rng.Intn(len(eps))].ID
		dst := eps[rng.Intn(len(eps))].ID
		if src == dst {
			continue
		}
		p, err := topo.ShortestPath(src, dst)
		if err != nil {
			continue
		}
		fl := &Flow{
			Tenant: TenantID([]string{"a", "b", "c"}[rng.Intn(3)]),
			Path:   p,
			Weight: float64(rng.Intn(4) + 1),
		}
		if rng.Intn(2) == 0 {
			fl.Demand = topology.Rate(rng.Float64() * 50e9)
		}
		if err := f.AddFlow(fl); err != nil {
			panic(err)
		}
		flows = append(flows, fl)
	}
	return f, flows
}

// Invariant 1: no link carries more than its capacity (feasibility).
// Invariant 2: no flow exceeds its demand.
// Invariant 3: max-min optimality — every flow is bottlenecked: it
// either meets its demand or crosses a link that is (a) saturated and
// (b) on which no other flow has a higher rate-per-weight (otherwise
// the allocation would not be max-min fair).
func checkMaxMinInvariants(t *testing.T, f *Fabric, flows []*Flow) {
	t.Helper()
	const eps = 1e-3 // bytes/sec slack for float accumulation
	for _, ls := range f.sortedLinkStates() {
		var sum float64
		for _, fl := range ls.flows {
			sum += float64(fl.Rate())
		}
		if sum > float64(ls.capacity)*(1+1e-9)+eps {
			t.Fatalf("link %s oversubscribed: %v > %v", ls.link.ID, sum, ls.capacity)
		}
		// Tenant caps respected.
		for tenant, cap := range ls.caps {
			var tsum float64
			for _, fl := range ls.flows {
				if fl.Tenant == tenant {
					tsum += float64(fl.Rate())
				}
			}
			if tsum > float64(cap)*(1+1e-9)+eps {
				t.Fatalf("link %s tenant %s cap violated: %v > %v", ls.link.ID, tenant, tsum, cap)
			}
		}
	}
	for _, fl := range flows {
		if fl.removed {
			continue
		}
		if fl.Demand > 0 && float64(fl.Rate()) > float64(fl.Demand)*(1+1e-9)+eps {
			t.Fatalf("flow %d exceeds demand: %v > %v", fl.ID, fl.Rate(), fl.Demand)
		}
		if fl.Demand > 0 && float64(fl.Rate()) >= float64(fl.Demand)*(1-1e-6)-eps {
			continue // demand-bottlenecked
		}
		// Must have a saturated bottleneck link where this flow's
		// normalized share is maximal among the link's flows.
		bottlenecked := false
		for _, l := range fl.Path.Links {
			ls := f.links[l.ID]
			var sum float64
			for _, other := range ls.flows {
				sum += float64(other.Rate())
			}
			if sum < float64(ls.capacity)*(1-1e-6)-eps {
				continue // link not saturated
			}
			w := func(x *Flow) float64 {
				ww := x.Weight
				if tw, ok := f.tenantWeight[x.Tenant]; ok && tw > 0 {
					ww *= tw
				}
				return ww
			}
			myShare := float64(fl.Rate()) / w(fl)
			isMax := true
			for _, other := range ls.flows {
				if float64(other.Rate())/w(other) > myShare*(1+1e-6)+eps {
					isMax = false
					break
				}
			}
			if isMax {
				bottlenecked = true
				break
			}
			// The flow may instead be bottlenecked by a tenant cap on
			// this link.
			if cap, ok := ls.caps[fl.Tenant]; ok {
				var tsum float64
				for _, other := range ls.flows {
					if other.Tenant == fl.Tenant {
						tsum += float64(other.Rate())
					}
				}
				if tsum >= float64(cap)*(1-1e-6)-eps {
					bottlenecked = true
					break
				}
			}
		}
		// Also check cap-bottleneck on unsaturated links.
		if !bottlenecked {
			for _, l := range fl.Path.Links {
				ls := f.links[l.ID]
				if cap, ok := ls.caps[fl.Tenant]; ok {
					var tsum float64
					for _, other := range ls.flows {
						if other.Tenant == fl.Tenant {
							tsum += float64(other.Rate())
						}
					}
					if tsum >= float64(cap)*(1-1e-6)-eps {
						bottlenecked = true
						break
					}
				}
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d (rate %v) has no bottleneck: not max-min fair", fl.ID, fl.Rate())
		}
	}
}

func TestPropertyMaxMinInvariantsRandomFlows(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		fab, flows := randomScenario(seed, int(n%40)+1)
		checkMaxMinInvariants(t, fab, flows)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaxMinWithRandomCaps(t *testing.T) {
	f := func(seed int64) bool {
		fab, flows := randomScenario(seed, 20)
		rng := rand.New(rand.NewSource(seed + 1))
		// Cap random tenants on random links of active flows.
		for i := 0; i < 10 && len(flows) > 0; i++ {
			fl := flows[rng.Intn(len(flows))]
			l := fl.Path.Links[rng.Intn(fl.Path.Hops())]
			_ = fab.SetTenantCap(l.ID, fl.Tenant, topology.Rate(rng.Float64()*20e9))
		}
		checkMaxMinInvariants(t, fab, flows)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinDeterminism(t *testing.T) {
	run := func() []topology.Rate {
		fab, flows := randomScenario(99, 25)
		out := make([]topology.Rate, len(flows))
		for i, fl := range flows {
			out[i] = fl.Rate()
		}
		_ = fab
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic rates at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// With one unconstrained flow per disjoint path, each should get
	// its full bottleneck (no artificial throttling).
	e := simtime.NewEngine(1)
	topo := topology.DGXStyle()
	f := New(topo, e, Config{PCIeEfficiency: 1})
	p1, _ := topo.ShortestPath("gpu0", "nic0")
	p2, _ := topo.ShortestPath("gpu2", "nic2")
	f1 := &Flow{Tenant: "a", Path: p1}
	f2 := &Flow{Tenant: "b", Path: p2}
	_ = f.AddFlow(f1)
	_ = f.AddFlow(f2)
	if f1.Rate() != p1.BottleneckCapacity() {
		t.Fatalf("disjoint flow 1 rate %v, want %v", f1.Rate(), p1.BottleneckCapacity())
	}
	if f2.Rate() != p2.BottleneckCapacity() {
		t.Fatalf("disjoint flow 2 rate %v, want %v", f2.Rate(), p2.BottleneckCapacity())
	}
}

func BenchmarkComputeRates40Flows(b *testing.B) {
	fab, _ := randomScenario(7, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.dirty = true
		fab.recomputeIfDirty()
	}
}
