package fabric

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// TxOptions describes a request/response transaction to inject, such
// as a DMA read, an RDMA verb, a heartbeat or a diagnostic probe.
type TxOptions struct {
	Tenant TenantID
	Src    topology.CompID
	Dst    topology.CompID
	// Path optionally pins the forward path; when empty the current
	// shortest path is used. The response returns along the reverse.
	Path topology.Path
	// ReqBytes and RespBytes size the two directions. A probe with
	// RespBytes == 0 is one-way (no response hop).
	ReqBytes  int64
	RespBytes int64
}

// TxRecord is the outcome of a transaction, delivered to the sender's
// callback and to any attached sniffers.
type TxRecord struct {
	ID        uint64
	Tenant    TenantID
	Src, Dst  topology.CompID
	Path      topology.Path
	ReqBytes  int64
	RespBytes int64
	Sent      simtime.Time
	Done      simtime.Time
	RTT       simtime.Duration
	Lost      bool
	// LostAt is the directed link that dropped the transaction when
	// Lost is true.
	LostAt topology.LinkID
}

// TransactionStats aggregates transaction outcomes fabric-wide.
type TransactionStats struct {
	Sent, Completed, Lost uint64
}

// TxStats returns cumulative transaction counters.
func (f *Fabric) TxStats() TransactionStats { return f.txStats }

// AttachSniffer registers a callback receiving a copy of every
// completed or lost transaction record — the capture hook behind
// ihsniff. It returns a detach function.
func (f *Fabric) AttachSniffer(fn func(TxRecord)) func() {
	f.sniffers = append(f.sniffers, fn)
	idx := len(f.sniffers) - 1
	return func() { f.sniffers[idx] = nil }
}

func (f *Fabric) emitRecord(r TxRecord) {
	for _, s := range f.sniffers {
		if s != nil {
			s(r)
		}
	}
}

// SendTransaction injects a transaction and schedules cb with its
// outcome at the (virtual) completion or loss time. The latency model
// is flow-level: per-hop base latency inflated by current utilization,
// plus serialization of the payload at the path's bottleneck capacity,
// in each direction. A transaction traversing a failed link is lost at
// the failing hop.
func (f *Fabric) SendTransaction(opts TxOptions, cb func(TxRecord)) error {
	if opts.ReqBytes < 0 || opts.RespBytes < 0 {
		return fmt.Errorf("fabric: negative transaction size")
	}
	path := opts.Path
	if path.Hops() == 0 {
		p, err := f.topo.ShortestPath(opts.Src, opts.Dst)
		if err != nil {
			return err
		}
		path = p
	} else {
		if path.Src() != opts.Src || path.Dst() != opts.Dst {
			return fmt.Errorf("fabric: pinned path endpoints %s->%s do not match %s->%s",
				path.Src(), path.Dst(), opts.Src, opts.Dst)
		}
	}
	f.recomputeIfDirty()
	f.txStats.Sent++
	if f.met != nil {
		f.met.txSent.Inc()
	}
	f.nextID++
	rec := TxRecord{
		ID: f.nextID, Tenant: opts.Tenant,
		Src: opts.Src, Dst: opts.Dst, Path: path,
		ReqBytes: opts.ReqBytes, RespBytes: opts.RespBytes,
		Sent: f.engine.Now(),
	}

	deliver := func(r TxRecord) {
		r.Done = f.engine.Now()
		r.RTT = r.Done.Sub(r.Sent)
		if r.Lost {
			f.txStats.Lost++
			if f.met != nil {
				f.met.txLost.Inc()
			}
		} else {
			f.txStats.Completed++
			if f.met != nil {
				f.met.txCompleted.Inc()
			}
		}
		f.emitRecord(r)
		if cb != nil {
			cb(r)
		}
	}

	// Walk the forward path accumulating latency until delivery or a
	// failed hop.
	fwdLat, failedAt, ok := f.traverse(path, opts.ReqBytes)
	if !ok {
		f.engine.After(fwdLat, func() {
			rec.Lost = true
			rec.LostAt = failedAt
			deliver(rec)
		})
		return nil
	}
	if opts.RespBytes == 0 && rec.Src != rec.Dst {
		f.engine.After(fwdLat, func() { deliver(rec) })
		return nil
	}
	// Response travels the reverse path; evaluate its hops at send
	// time (flow-level approximation: utilization is piecewise
	// constant between recomputations).
	rev := reversePath(f, path)
	revLat, revFailedAt, revOK := f.traverse(rev, opts.RespBytes)
	total := fwdLat + revLat
	f.engine.After(total, func() {
		if !revOK {
			rec.Lost = true
			rec.LostAt = revFailedAt
		}
		deliver(rec)
	})
	return nil
}

// traverse returns the one-way latency along path for a payload of the
// given size at current conditions. When a failed link is encountered
// it returns the latency up to that hop, the failing link, and false.
//
// Interrupt moderation (Figure 1's configuration box) is applied where
// it happens on real hosts: when inter-host traffic enters a NIC whose
// ConfigIntModeration is set, delivery is delayed by the moderation
// period — the batching delay the NIC imposes before raising the
// completion interrupt.
func (f *Fabric) traverse(path topology.Path, bytes int64) (simtime.Duration, topology.LinkID, bool) {
	var lat simtime.Duration
	bottleneck := topology.Rate(0)
	for i, l := range path.Links {
		ls := f.links[l.ID]
		if ls == nil {
			return lat, l.ID, false
		}
		if ls.failed {
			return lat, l.ID, false
		}
		lat += f.hopLatency(ls)
		if l.Class == topology.ClassInterHost {
			if nic := f.topo.Component(l.To); nic != nil && nic.Kind == topology.KindNIC {
				lat += moderationDelay(nic)
			}
		}
		avail := ls.capacity - ls.currentRate
		if avail < ls.capacity/100 {
			avail = ls.capacity / 100 // probes always trickle through
		}
		if i == 0 || avail < bottleneck {
			bottleneck = avail
		}
	}
	if bytes > 0 && bottleneck > 0 {
		lat += bottleneck.TimeToSend(bytes)
	}
	return lat, "", true
}

// moderationDelay parses a NIC's interrupt-moderation config
// ("int_moderation_us") into a delivery delay. Unset or malformed
// values mean no moderation.
func moderationDelay(nic *topology.Component) simtime.Duration {
	v, ok := nic.ConfigValue(topology.ConfigIntModeration)
	if !ok {
		return 0
	}
	us := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0
		}
		us = us*10 + int(c-'0')
	}
	return simtime.Duration(us) * simtime.Microsecond
}

// reversePath maps each link of p to its reverse, in opposite order.
func reversePath(f *Fabric, p topology.Path) topology.Path {
	links := make([]*topology.Link, p.Hops())
	for i, l := range p.Links {
		links[p.Hops()-1-i] = f.topo.Link(l.Reverse)
	}
	return topology.Path{Links: links}
}
