package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestFailureStallsSizedTransferRestoreResumes(t *testing.T) {
	f, e, p := newLineFabric()
	var doneAt simtime.Time
	fl := &Flow{Tenant: "t", Path: p, Size: 1000,
		OnComplete: func(at simtime.Time) { doneAt = at }}
	_ = f.AddFlow(fl)
	// Fail at t=2s (200 bytes in), restore at t=7s.
	e.Schedule(simtime.Time(2*simtime.Second), func() { _ = f.FailLink(p.Links[0].ID) })
	e.Schedule(simtime.Time(7*simtime.Second), func() { _ = f.RestoreLink(p.Links[0].ID) })
	e.Run()
	// 200B at 100B/s (2s) + 5s stalled + 800B at 100B/s (8s) = t=15s.
	want := simtime.Time(15 * simtime.Second)
	if doneAt != want {
		t.Fatalf("stall-resume completion at %v, want %v", doneAt, want)
	}
}

func TestRemoveFlowDuringStall(t *testing.T) {
	f, e, p := newLineFabric()
	completed := false
	fl := &Flow{Tenant: "t", Path: p, Size: 1000,
		OnComplete: func(simtime.Time) { completed = true }}
	_ = f.AddFlow(fl)
	e.RunFor(simtime.Duration(simtime.Second))
	_ = f.FailLink(p.Links[0].ID)
	f.RemoveFlow(fl)
	_ = f.RestoreLink(p.Links[0].ID)
	e.Run()
	if completed {
		t.Fatal("removed flow completed")
	}
	if f.Flows() != 0 {
		t.Fatal("flows left")
	}
}

func TestCapChangeMidTransfer(t *testing.T) {
	f, e, p := newLineFabric()
	var doneAt simtime.Time
	fl := &Flow{Tenant: "slow", Path: p, Size: 1000,
		OnComplete: func(at simtime.Time) { doneAt = at }}
	_ = f.AddFlow(fl)
	// Cap the tenant to 10 B/s at t=5s (500 bytes in).
	e.Schedule(simtime.Time(5*simtime.Second), func() {
		_ = f.SetTenantCap(p.Links[0].ID, "slow", 10)
	})
	e.Run()
	// 500B at 100B/s (5s) + 500B at 10B/s (50s) = 55s.
	want := simtime.Time(55 * simtime.Second)
	if doneAt != want {
		t.Fatalf("capped completion at %v, want %v", doneAt, want)
	}
}

func TestOnCompleteChainsNextFlow(t *testing.T) {
	// The ML-trainer pattern: OnComplete immediately adds the next
	// sized flow; the fabric must handle mutation from inside its own
	// completion processing.
	f, e, p := newLineFabric()
	var completions []simtime.Time
	var start func()
	start = func() {
		if len(completions) >= 3 {
			return
		}
		_ = f.AddFlow(&Flow{Tenant: "t", Path: p, Size: 100,
			OnComplete: func(at simtime.Time) {
				completions = append(completions, at)
				start()
			}})
	}
	start()
	e.Run()
	if len(completions) != 3 {
		t.Fatalf("chained %d completions, want 3", len(completions))
	}
	for i, at := range completions {
		want := simtime.Time(i+1) * simtime.Time(simtime.Second)
		if at != want {
			t.Fatalf("completion %d at %v, want %v", i, at, want)
		}
	}
}

func TestSimultaneousCompletions(t *testing.T) {
	f, e, p := newLineFabric()
	count := 0
	for i := 0; i < 4; i++ {
		_ = f.AddFlow(&Flow{Tenant: "t", Path: p, Size: 250,
			OnComplete: func(simtime.Time) { count++ }})
	}
	e.Run()
	// 4 flows x 250B sharing 100B/s: all finish together at t=10s.
	if count != 4 {
		t.Fatalf("%d completions", count)
	}
	if e.Now() != simtime.Time(10*simtime.Second) {
		t.Fatalf("finished at %v, want 10s", e.Now())
	}
}

func TestZeroSizeTransactionOnSelfPath(t *testing.T) {
	f, e, _ := newLineFabric()
	// Single-hop transaction a->b.
	var rec TxRecord
	err := f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "b"},
		func(r TxRecord) { rec = r })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if rec.Lost || rec.RTT != 10 {
		t.Fatalf("single-hop tx: %+v", rec)
	}
}

// Property: total bytes accounted on a link equal rate-integral over
// time for any schedule of demand changes.
func TestPropertyAccountingConsistent(t *testing.T) {
	f := func(changes []uint8) bool {
		fab, e, p := newLineFabric()
		fl := &Flow{Tenant: "t", Path: p}
		if err := fab.AddFlow(fl); err != nil {
			return false
		}
		var expected float64
		last := e.Now()
		lastRate := float64(fl.Rate())
		for _, c := range changes {
			dt := simtime.Duration(c%50+1) * simtime.Duration(simtime.Second) / 10
			e.RunFor(dt)
			expected += lastRate * e.Now().Sub(last).Seconds()
			last = e.Now()
			_ = fab.SetDemand(fl, topology.Rate(c%100)+1)
			lastRate = float64(fl.Rate())
		}
		e.RunFor(simtime.Duration(simtime.Second))
		expected += lastRate * e.Now().Sub(last).Seconds()
		st, err := fab.LinkStatsFor(p.Links[0].ID)
		if err != nil {
			return false
		}
		diff := st.TotalBytes - expected
		if diff < 0 {
			diff = -diff
		}
		return diff <= expected*1e-9+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full co-location simulation is deterministic — same
// seed, same final accounting, across arbitrary run lengths.
func TestPropertySimulationDeterministic(t *testing.T) {
	run := func(seed int64, ms int) float64 {
		e := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		fab := New(topo, e, DefaultConfig())
		p1, _ := topo.ShortestPath("nic0", "socket0.dimm0_0")
		p2, _ := topo.ShortestPath("socket0.dimm0_0", "gpu0")
		_ = fab.AddFlow(&Flow{Tenant: "a", Path: p1})
		_ = fab.AddFlow(&Flow{Tenant: "b", Path: p2, Demand: topology.GBps(7)})
		for i := 0; i < 5; i++ {
			_ = fab.SendTransaction(TxOptions{Tenant: "c", Src: "external0",
				Dst: "socket0.dimm0_0", RespBytes: 4096}, nil)
		}
		e.RunFor(simtime.Duration(ms) * simtime.Millisecond)
		var sum float64
		for _, st := range fab.AllLinkStats() {
			sum += st.TotalBytes
		}
		return sum
	}
	f := func(seedRaw uint8, msRaw uint8) bool {
		seed, ms := int64(seedRaw), int(msRaw%5)+1
		return run(seed, ms) == run(seed, ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDefersRecompute(t *testing.T) {
	f, _, p := newLineFabric()
	fl := &Flow{Tenant: "a", Path: p}
	_ = f.AddFlow(fl)
	if fl.Rate() != 100 {
		t.Fatal("precondition")
	}
	f.Batch(func() {
		_ = f.SetTenantCap(p.Links[0].ID, "a", 10)
		// Reads inside the batch see the consistent pre-batch state.
		if fl.Rate() != 100 {
			t.Fatalf("mid-batch rate %v, want pre-batch 100", fl.Rate())
		}
		// Nested batches flatten.
		f.Batch(func() {
			_ = f.SetTenantCap(p.Links[1].ID, "a", 20)
		})
	})
	// One settle at the end applies everything.
	if fl.Rate() != 10 {
		t.Fatalf("post-batch rate %v, want 10", fl.Rate())
	}
}

func TestBatchWithSizedFlowCompletion(t *testing.T) {
	f, e, p := newLineFabric()
	var doneAt simtime.Time
	fl := &Flow{Tenant: "a", Path: p, Size: 1000,
		OnComplete: func(at simtime.Time) { doneAt = at }}
	_ = f.AddFlow(fl)
	e.RunFor(simtime.Duration(5 * simtime.Second))
	f.Batch(func() {
		_ = f.SetTenantCap(p.Links[0].ID, "a", 10)
	})
	e.Run()
	// 500B at 100B/s then 500B at 10B/s = 5s + 50s.
	if doneAt != simtime.Time(55*simtime.Second) {
		t.Fatalf("completion at %v, want 55s", doneAt)
	}
}

func TestTxStatsAccumulate(t *testing.T) {
	f, e, p := newLineFabric()
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c", RespBytes: 1}, nil)
	_ = f.FailLink(p.Links[1].ID)
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c", RespBytes: 1}, nil)
	e.Run()
	st := f.TxStats()
	if st.Sent != 2 || st.Completed != 1 || st.Lost != 1 {
		t.Fatalf("tx stats %+v", st)
	}
}
