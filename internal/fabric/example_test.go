package fabric_test

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Flows share links under weighted max-min fairness; per-tenant caps
// are the arbiter's enforcement hook.
func ExampleFabric_AddFlow() {
	engine := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.Config{PCIeEfficiency: 1})
	path, _ := topo.ShortestPath("nic0", "socket0.dimm0_0")

	a := &fabric.Flow{Tenant: "a", Path: path}
	b := &fabric.Flow{Tenant: "b", Path: path}
	_ = fab.AddFlow(a)
	_ = fab.AddFlow(b)
	fmt.Println("fair:", a.Rate(), b.Rate())

	_ = fab.SetTenantCap(path.Links[0].ID, "b", topology.GBps(4))
	fmt.Println("capped:", a.Rate(), b.Rate())
	// Output:
	// fair: 16.0GB/s 16.0GB/s
	// capped: 28.0GB/s 4.0GB/s
}

// Sized transfers complete in virtual time; contention stretches them.
func ExampleFlow_sized() {
	engine := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.Config{PCIeEfficiency: 1})
	path, _ := topo.ShortestPath("socket0.dimm0_0", "gpu0")

	done := simtime.Time(0)
	_ = fab.AddFlow(&fabric.Flow{
		Tenant: "ml", Path: path, Size: 64 << 20, // one 64 MiB batch
		OnComplete: func(at simtime.Time) { done = at },
	})
	engine.Run()
	fmt.Println(done)
	// Output:
	// 2.097152ms
}
