package fabric

import (
	"math"
	"sort"

	"repro/internal/topology"
)

// computeRates allocates a rate to every active flow under weighted
// max-min fairness by progressive filling.
//
// Constraints considered, in deterministic order:
//   - every link's effective capacity, shared by all flows crossing it;
//   - every per-(link,tenant) cap installed by the arbiter, shared by
//     that tenant's flows on that link;
//   - every flow's own demand.
//
// The algorithm repeatedly finds the tightest constraint — the one
// whose remaining capacity divided by the total effective weight of
// its still-unfrozen member flows is smallest — and freezes those
// members at their weighted fair share. Effective weight is the flow's
// Weight times its tenant's global weight.
func (f *Fabric) computeRates() {
	type constraint struct {
		key     string
		cap     float64
		members []*Flow
	}
	var cons []*constraint

	for _, ls := range f.sortedLinkStates() {
		if len(ls.flows) == 0 {
			ls.currentRate = 0
			continue
		}
		members := make([]*Flow, 0, len(ls.flows))
		for fl := range ls.flows {
			members = append(members, fl)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		capacity := float64(ls.capacity)
		if ls.failed {
			capacity = 0
		}
		cons = append(cons, &constraint{
			key:     "link:" + string(ls.link.ID),
			cap:     capacity,
			members: members,
		})
		// Tenant caps on this link.
		tenants := make([]TenantID, 0, len(ls.caps))
		for t := range ls.caps {
			tenants = append(tenants, t)
		}
		sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
		for _, t := range tenants {
			var tm []*Flow
			for _, fl := range members {
				if fl.Tenant == t {
					tm = append(tm, fl)
				}
			}
			if len(tm) == 0 {
				continue
			}
			cons = append(cons, &constraint{
				key:     "cap:" + string(ls.link.ID) + ":" + string(t),
				cap:     float64(ls.caps[t]),
				members: tm,
			})
		}
	}
	// Flow demands.
	flowIDs := make([]FlowID, 0, len(f.flows))
	for id := range f.flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		fl := f.flows[id]
		if fl.Demand > 0 {
			cons = append(cons, &constraint{
				key:     "demand:" + string(rune(0)) + itoaFlow(id),
				cap:     float64(fl.Demand),
				members: []*Flow{fl},
			})
		}
	}

	frozen := make(map[FlowID]bool, len(f.flows))
	alloc := make(map[FlowID]float64, len(f.flows))
	effWeight := func(fl *Flow) float64 {
		w := fl.Weight
		if tw, ok := f.tenantWeight[fl.Tenant]; ok && tw > 0 {
			w *= tw
		}
		return w
	}

	for len(frozen) < len(f.flows) {
		bestShare := math.Inf(1)
		var best *constraint
		for _, c := range cons {
			remaining := c.cap
			aw := 0.0
			for _, fl := range c.members {
				if frozen[fl.ID] {
					remaining -= alloc[fl.ID]
				} else {
					aw += effWeight(fl)
				}
			}
			if aw == 0 {
				continue
			}
			share := remaining / aw
			if share < 0 {
				share = 0
			}
			if share < bestShare {
				bestShare = share
				best = c
			}
		}
		if best == nil {
			// No constraint covers the remaining flows; cannot happen
			// because every flow crosses at least one link. Freeze at
			// zero defensively rather than looping forever.
			for id := range f.flows {
				if !frozen[id] {
					frozen[id] = true
					alloc[id] = 0
				}
			}
			break
		}
		for _, fl := range best.members {
			if !frozen[fl.ID] {
				frozen[fl.ID] = true
				alloc[fl.ID] = bestShare * effWeight(fl)
			}
		}
	}

	for id, fl := range f.flows {
		fl.rate = topology.Rate(alloc[id])
	}
	for _, ls := range f.links {
		var sum topology.Rate
		for fl := range ls.flows {
			sum += fl.rate
		}
		ls.currentRate = sum
	}
}

func itoaFlow(id FlowID) string {
	// Zero-padded so lexicographic order matches numeric order.
	const digits = 20
	var buf [digits]byte
	for i := digits - 1; i >= 0; i-- {
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return string(buf[:])
}
