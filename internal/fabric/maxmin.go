package fabric

import (
	"math"

	"repro/internal/topology"
)

// constraintKind classifies a max-min constraint.
type constraintKind uint8

const (
	// consLink caps the sum of all flows crossing one directed link at
	// its effective capacity.
	consLink constraintKind = iota
	// consTenantCap caps one tenant's flows on one link at the rate the
	// arbiter installed.
	consTenantCap
	// consDemand caps a single flow at its own offered rate.
	consDemand
)

func (k constraintKind) String() string {
	switch k {
	case consLink:
		return "link"
	case consTenantCap:
		return "cap"
	case consDemand:
		return "demand"
	}
	return "unknown"
}

// constraintKey is the typed identity of one constraint — what used to
// be a string-concatenation hack. Only the fields relevant to Kind are
// set: Link for consLink, Link+Tenant for consTenantCap, Flow for
// consDemand.
type constraintKey struct {
	Kind   constraintKind
	Link   topology.LinkID
	Tenant TenantID
	Flow   FlowID
}

// constraint is one capacity constraint of the progressive-filling
// system. Member flows are not stored per constraint: link constraints
// borrow the link's ID-ordered flow slice, tenant-cap constraints
// index into the solver's shared member arena, and demand constraints
// bind a single flow. That keeps the constraint system reconstruction
// allocation-free in the steady state.
type constraint struct {
	kind     constraintKind
	capacity float64
	ls       *linkState // consLink, consTenantCap
	tenant   TenantID   // consTenantCap
	off, n   int        // consTenantCap: members in scratch.memberIdx[off : off+n]
	fl       *Flow      // consDemand
}

// key returns the constraint's typed identity, for tests and debugging.
func (c *constraint) key() constraintKey {
	k := constraintKey{Kind: c.kind}
	switch c.kind {
	case consLink:
		k.Link = c.ls.link.ID
	case consTenantCap:
		k.Link = c.ls.link.ID
		k.Tenant = c.tenant
	case consDemand:
		k.Flow = c.fl.ID
	}
	return k
}

// maxminScratch holds the solver's reusable buffers. Per-flow arrays
// are indexed by the dense flow index (Flow.idx, the flow's position
// in the fabric's ID-ordered flowList), not by maps keyed on IDs — a
// recompute in the steady state touches no allocator at all.
type maxminScratch struct {
	// cons is the constraint system, rebuilt only when consValid is
	// false (flow membership, cap key-set, or demand-existence change);
	// capacities are refreshed in place on every pass.
	cons      []constraint
	consValid bool
	// memberIdx is the arena of dense flow indices backing tenant-cap
	// constraint membership.
	memberIdx []int32
	// active holds the indices of constraints that still have unfrozen
	// members, compacted as constraints exhaust so late filling rounds
	// stop scanning spent constraints.
	active []int32
	// Per-flow state, indexed by Flow.idx.
	frozen []bool
	alloc  []float64
	effW   []float64
	// tenants is reused when ordering a link's cap key-set.
	tenants []TenantID
	// changed collects the links whose allocation moved this pass.
	changed []*linkState
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// computeRates allocates a rate to every active flow under weighted
// max-min fairness by progressive filling.
//
// Constraints considered, in deterministic order:
//   - every link's effective capacity, shared by all flows crossing it;
//   - every per-(link,tenant) cap installed by the arbiter, shared by
//     that tenant's flows on that link;
//   - every flow's own demand.
//
// The algorithm repeatedly finds the tightest constraint — the one
// whose remaining capacity divided by the total effective weight of
// its still-unfrozen member flows is smallest — and freezes those
// members at their weighted fair share. Effective weight is the flow's
// Weight times its tenant's global weight.
//
// The iteration order of every loop here is part of the simulation's
// deterministic contract: float accumulation is not associative, so
// constraint order and member order must be fixed (link ID, tenant ID,
// flow ID) or two identical runs would drift apart at ULP scale.
func (f *Fabric) computeRates() {
	now := f.engine.Now()
	s := &f.scr
	n := len(f.flowList)

	// Refresh the dense index; removals shift positions.
	for i, fl := range f.flowList {
		fl.idx = i
	}
	if cap(s.frozen) < n {
		s.frozen = make([]bool, n)
	}
	s.frozen = s.frozen[:n]
	s.alloc = growFloats(s.alloc, n)
	s.effW = growFloats(s.effW, n)
	for i, fl := range f.flowList {
		s.frozen[i] = false
		s.alloc[i] = 0
		w := fl.Weight
		if tw, ok := f.tenantWeight[fl.Tenant]; ok && tw > 0 {
			w *= tw
		}
		s.effW[i] = w
	}

	if !s.consValid {
		f.rebuildConstraints()
	}
	// Capacities can move without structural change (degradation,
	// failure, cap value updates, demand updates); refresh in place.
	for i := range s.cons {
		c := &s.cons[i]
		switch c.kind {
		case consLink:
			if c.ls.failed {
				c.capacity = 0
			} else {
				c.capacity = float64(c.ls.capacity)
			}
		case consTenantCap:
			c.capacity = float64(c.ls.caps[c.tenant])
		case consDemand:
			c.capacity = float64(c.fl.Demand)
		}
	}

	// Progressive filling. Constraints whose members are all frozen are
	// compacted out of the active list — freezing is monotone, so a
	// spent constraint can never become the bottleneck again.
	s.active = s.active[:0]
	for i := range s.cons {
		s.active = append(s.active, int32(i))
	}
	frozenCount := 0
	for frozenCount < n {
		bestShare := math.Inf(1)
		bestIdx := -1
		w := 0
		for _, ci := range s.active {
			c := &s.cons[ci]
			remaining := c.capacity
			aw := 0.0
			switch c.kind {
			case consLink:
				for _, fl := range c.ls.flows {
					if s.frozen[fl.idx] {
						remaining -= s.alloc[fl.idx]
					} else {
						aw += s.effW[fl.idx]
					}
				}
			case consTenantCap:
				for _, mi := range s.memberIdx[c.off : c.off+c.n] {
					if s.frozen[mi] {
						remaining -= s.alloc[mi]
					} else {
						aw += s.effW[mi]
					}
				}
			case consDemand:
				if !s.frozen[c.fl.idx] {
					aw = s.effW[c.fl.idx]
				}
			}
			if aw == 0 {
				continue // spent: drop from the active list
			}
			s.active[w] = ci
			w++
			share := remaining / aw
			if share < 0 {
				share = 0
			}
			if share < bestShare {
				bestShare = share
				bestIdx = int(ci)
			}
		}
		s.active = s.active[:w]
		if bestIdx < 0 {
			// No constraint covers the remaining flows; cannot happen
			// because every flow crosses at least one link. Freeze at
			// zero defensively rather than looping forever.
			for i := range s.frozen {
				if !s.frozen[i] {
					s.frozen[i] = true
					s.alloc[i] = 0
				}
			}
			break
		}
		c := &s.cons[bestIdx]
		switch c.kind {
		case consLink:
			for _, fl := range c.ls.flows {
				if !s.frozen[fl.idx] {
					s.frozen[fl.idx] = true
					s.alloc[fl.idx] = bestShare * s.effW[fl.idx]
					frozenCount++
				}
			}
		case consTenantCap:
			for _, mi := range s.memberIdx[c.off : c.off+c.n] {
				if !s.frozen[mi] {
					s.frozen[mi] = true
					s.alloc[mi] = bestShare * s.effW[mi]
					frozenCount++
				}
			}
		case consDemand:
			if idx := c.fl.idx; !s.frozen[idx] {
				s.frozen[idx] = true
				s.alloc[idx] = bestShare * s.effW[idx]
				frozenCount++
			}
		}
	}

	// Settle byte accounting on every link whose allocation is about to
	// move (at the old rates, up to now), then install the new rates
	// and resum the affected links' current rate in flow-ID order.
	s.changed = s.changed[:0]
	for _, ls := range f.linkList {
		changed := ls.memberDirty
		if !changed {
			for _, fl := range ls.flows {
				if float64(fl.rate) != s.alloc[fl.idx] {
					changed = true
					break
				}
			}
		}
		if changed {
			f.settleLink(ls, now)
			s.changed = append(s.changed, ls)
		}
	}
	for i, fl := range f.flowList {
		fl.rate = topology.Rate(s.alloc[i])
	}
	for i, ls := range s.changed {
		var sum topology.Rate
		for _, fl := range ls.flows {
			sum += fl.rate
		}
		ls.currentRate = sum
		ls.memberDirty = false
		s.changed[i] = nil // release for GC; the scratch slice is long-lived
	}
	s.changed = s.changed[:0]
}

// rebuildConstraints reconstructs the constraint system from scratch:
// per link (in ID order) the link-capacity constraint followed by its
// tenant-cap constraints (in tenant order), then per flow (in ID
// order) its demand constraint. Buffers are reused; after warm-up a
// rebuild allocates nothing.
func (f *Fabric) rebuildConstraints() {
	s := &f.scr
	s.cons = s.cons[:0]
	s.memberIdx = s.memberIdx[:0]
	for _, ls := range f.linkList {
		if len(ls.flows) == 0 {
			continue
		}
		s.cons = append(s.cons, constraint{kind: consLink, ls: ls})
		if len(ls.caps) == 0 {
			continue
		}
		s.tenants = s.tenants[:0]
		for t := range ls.caps {
			s.tenants = append(s.tenants, t)
		}
		sortTenants(s.tenants)
		for _, t := range s.tenants {
			off := len(s.memberIdx)
			for _, fl := range ls.flows {
				if fl.Tenant == t {
					s.memberIdx = append(s.memberIdx, int32(fl.idx))
				}
			}
			if nm := len(s.memberIdx) - off; nm > 0 {
				s.cons = append(s.cons, constraint{
					kind: consTenantCap, ls: ls, tenant: t, off: off, n: nm,
				})
			}
		}
	}
	for _, fl := range f.flowList {
		if fl.Demand > 0 {
			s.cons = append(s.cons, constraint{kind: consDemand, fl: fl})
		}
	}
	s.consValid = true
}

// sortTenants orders a small tenant slice in place (insertion sort: the
// cap key-set of one link is tiny, and this avoids the closure
// allocation of sort.Slice on the recompute path).
func sortTenants(ts []TenantID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
