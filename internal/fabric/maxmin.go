package fabric

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/topology"
)

// constraintKind classifies a max-min constraint.
type constraintKind uint8

const (
	// consLink caps the sum of all flows crossing one directed link at
	// its effective capacity.
	consLink constraintKind = iota
	// consTenantCap caps one tenant's flows on one link at the rate the
	// arbiter installed.
	consTenantCap
	// consDemand caps a single flow at its own offered rate.
	consDemand
)

func (k constraintKind) String() string {
	switch k {
	case consLink:
		return "link"
	case consTenantCap:
		return "cap"
	case consDemand:
		return "demand"
	}
	return "unknown"
}

// constraintKey is the typed identity of one constraint — what used to
// be a string-concatenation hack. Only the fields relevant to Kind are
// set: Link for consLink, Link+Tenant for consTenantCap, Flow for
// consDemand.
type constraintKey struct {
	Kind   constraintKind
	Link   topology.LinkID
	Tenant TenantID
	Flow   FlowID
}

// constraint is one capacity constraint of the progressive-filling
// system. Member flows are not stored per constraint: link constraints
// borrow the link's ID-ordered member-slot slice, tenant-cap
// constraints slice the solver's shared member-slot arena, and demand
// constraints bind a single flow. That keeps the constraint system
// reconstruction allocation-free in the steady state.
type constraint struct {
	kind     constraintKind
	capacity float64
	ls       *linkState // consLink, consTenantCap
	tenant   TenantID   // consTenantCap
	off, n   int        // consTenantCap: scratch.memberSlots[off : off+n]
	fl       *Flow      // consDemand
	// linkIdx anchors the constraint to a component: its own link for
	// link and cap constraints, the flow's first path link for demand
	// constraints (every link of a path shares one component). flSlot
	// is the demand constraint's member fill slot. Both are denormalized
	// here so the per-pass constraint walks stay pointer-chase-free.
	linkIdx int32
	flSlot  int32
}

// fillState is one flow's solver state in the dense fill arena,
// indexed by the flow's stable slot. The flow is frozen in the current
// solve iff epoch matches the solver's fillEpoch; alloc is its frozen
// allocation; effW mirrors Flow.effW. One 24-byte entry per flow keeps
// a filling round's working set dense and Flow-struct-free.
type fillState struct {
	epoch uint64
	alloc float64
	effW  float64
}

// key returns the constraint's typed identity, for tests and debugging.
func (c *constraint) key() constraintKey {
	k := constraintKey{Kind: c.kind}
	switch c.kind {
	case consLink:
		k.Link = c.ls.link.ID
	case consTenantCap:
		k.Link = c.ls.link.ID
		k.Tenant = c.tenant
	case consDemand:
		k.Flow = c.fl.ID
	}
	return k
}

// maxminScratch holds the solver's reusable buffers. Per-flow arrays
// are indexed by the flow's arena slot (Flow.slot, stable for the
// flow's lifetime), per-link arrays by the dense link index
// (linkState.idx), per-constraint arrays by the constraint's
// position in cons. A recompute in the steady state touches no
// allocator at all.
type maxminScratch struct {
	// cons is the constraint system, laid out [link & cap section]
	// [demand section, flow-ID-ordered] with demandOff the boundary.
	// A full rebuild happens only when consValid is false (cap key-set
	// changes, or membership changes on a capped link); flow arrivals
	// and departures splice the demand section incrementally, and
	// capacities of dirty components are refreshed in place per pass.
	cons      []constraint
	consValid bool
	demandOff int
	// memberSlots is the arena of flow fill slots backing tenant-cap
	// constraint membership.
	memberSlots []int32

	// Per-constraint filling state. A constraint's share depends only
	// on its capacity and its members' frozen/alloc state, so a cached
	// share stays exact until one of its members freezes; conDirty
	// tracks exactly that, letting each filling round rescan only the
	// constraints the previous round's freeze actually touched.
	conDirty []bool
	conShare []float64
	// roundDirty marks, by dense link index, the links some member of
	// which froze in the current filling round. Every constraint
	// containing a flow is anchored at one of the flow's path links
	// (link and cap constraints at their own link, the demand constraint
	// at the flow's first link), so one per-link flag invalidates all of
	// them at once; the next round's scan checks it via the constraint's
	// linkIdx. Each component clears the flags it set (its touched list,
	// carved from touchedArena) right after the scan that consumes them,
	// so the array is all-false between rounds and between passes.
	// Components never share links, so parallel component solves touch
	// disjoint elements.
	roundDirty   []bool
	touchedArena []int32
	// conLink mirrors cons[i].linkIdx for link and cap constraints and
	// is -1 for demand constraints (those are invalidated directly via
	// slotDemandCi, never by link flag — a freeze elsewhere on the link
	// cannot change a demand constraint's share). Kept as a dense side
	// array so a clean constraint's scan check never loads the 72-byte
	// constraint struct. The demand tail is uniformly -1, so the
	// demand-section splices only grow or shrink it.
	conLink []int32

	// Per-link solve state: each link's component root this pass, which
	// roots are dirty, and each dirty root's slot in comps.
	linkRoot  []int32
	rootDirty []bool
	rootSlot  []int32
	compSeen  []bool

	// fillEpoch identifies the current solve; a flow whose fillEpoch
	// matches is frozen (see Flow.fillEpoch). Incrementing it at the
	// start of a pass unfreezes the whole dirty region without a reset
	// sweep.
	fillEpoch uint64

	// comps are the dirty components of the current pass; dirtyList
	// indexes their constraints, and activeArena/weightArena back the
	// per-component active lists.
	comps       []compSolve
	dirtyList   []int32
	activeArena []int32
	weightArena []int32
	smallComps  []int32

	// Parallel-round scratch (see solver.go).
	chunkBounds []int32
	chunkRes    []chunkResult

	// tenants is reused when ordering a link's cap key-set.
	tenants []TenantID
	// changed collects the links whose allocation moved this pass.
	changed []*linkState
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// computeRates allocates a rate to every active flow under weighted
// max-min fairness by progressive filling.
//
// Constraints considered, in deterministic order:
//   - every link's effective capacity, shared by all flows crossing it;
//   - every per-(link,tenant) cap installed by the arbiter, shared by
//     that tenant's flows on that link;
//   - every flow's own demand.
//
// The algorithm repeatedly finds the tightest constraint — the one
// whose remaining capacity divided by the total effective weight of
// its still-unfrozen member flows is smallest — and freezes those
// members at their weighted fair share. Effective weight is the flow's
// Weight times its tenant's global weight.
//
// Three exact optimizations keep this off the O(flows × rounds) cliff
// (see solver.go for the partition machinery and the soundness
// argument):
//   - only dirty components are re-solved; every other flow keeps its
//     rate, which is bit-identical to what a full solve would assign;
//   - within a round, only constraints whose member set changed since
//     their last scan are rescanned; clean constraints reuse their
//     cached share, which is the exact float a rescan would produce;
//   - when the dirty region is large enough and more than one worker
//     is available, rounds scan in parallel chunks merged in
//     deterministic chunk order.
//
// The iteration order of every loop here is part of the simulation's
// deterministic contract: float accumulation is not associative, so
// constraint order and member order must be fixed (link ID, tenant ID,
// flow ID) or two identical runs would drift apart at ULP scale.
func (f *Fabric) computeRates() {
	now := f.engine.Now()
	s := &f.scr
	nLinks := len(f.linkList)

	f.maybeRebuildPartition()

	// Resolve each link's component root and fold the per-link dirty
	// marks accumulated since the last pass into per-root dirty flags.
	s.linkRoot = growInt32s(s.linkRoot, nLinks)
	s.rootDirty = growBools(s.rootDirty, nLinks)
	anyDirty := false
	for i := 0; i < nLinks; i++ {
		s.rootDirty[i] = false
	}
	for i := 0; i < nLinks; i++ {
		r := f.find(int32(i))
		s.linkRoot[i] = r
		if f.linkDirty[i] {
			f.linkDirty[i] = false
			s.rootDirty[r] = true
			anyDirty = true
		}
	}
	// Nothing changed since the last pass: every rate is already the
	// fixed point. (Completion events mark the fabric dirty before the
	// completed flow detaches; that first drain iteration lands here.)
	if !anyDirty && s.consValid {
		f.sc.noopSolves++
		return
	}
	f.sc.solves++
	if !s.consValid {
		f.rebuildConstraints()
	}

	// Pass A: walk the constraint system once, assigning every
	// constraint of a dirty component to that component's solve slot,
	// refreshing its capacity in place (degradation, failure, cap and
	// demand values move without structural change), and marking it for
	// a first-round scan.
	nCons := len(s.cons)
	s.conDirty = growBools(s.conDirty, nCons)
	s.conShare = growFloats(s.conShare, nCons)
	s.rootSlot = growInt32s(s.rootSlot, nLinks)
	for i := 0; i < nLinks; i++ {
		s.rootSlot[i] = -1
	}
	s.comps = s.comps[:0]
	s.dirtyList = s.dirtyList[:0]
	for ci := 0; ci < nCons; ci++ {
		c := &s.cons[ci]
		root := s.linkRoot[c.linkIdx]
		if !s.rootDirty[root] {
			continue
		}
		slot := s.rootSlot[root]
		if slot < 0 {
			slot = int32(len(s.comps))
			s.rootSlot[root] = slot
			s.comps = append(s.comps, compSolve{root: root})
		}
		comp := &s.comps[slot]
		switch c.kind {
		case consLink:
			if c.ls.failed {
				c.capacity = 0
			} else {
				c.capacity = float64(c.ls.capacity)
			}
			comp.members += len(c.ls.memSlots)
			comp.links++
		case consTenantCap:
			c.capacity = float64(c.ls.caps[c.tenant])
			comp.members += c.n
		case consDemand:
			// Demand capacities are written through at mutation time
			// (SetDemand, splice, rebuild); nothing to refresh.
			comp.members++
		}
		s.conDirty[ci] = true
		comp.nCons++
		s.dirtyList = append(s.dirtyList, int32(ci))
	}

	// Pass B: carve each component's active list out of the shared
	// arenas. dirtyList is in constraint order, so every component's
	// active list is the global scan order restricted to it — which is
	// what makes the per-component solve bit-identical to a full one.
	s.activeArena = growInt32s(s.activeArena, len(s.dirtyList))
	s.weightArena = growInt32s(s.weightArena, len(s.dirtyList))
	s.roundDirty = growBools(s.roundDirty, nLinks)
	s.touchedArena = growInt32s(s.touchedArena, nLinks)
	off := 0
	tOff := 0
	for i := range s.comps {
		comp := &s.comps[i]
		comp.active = s.activeArena[off : off : off+comp.nCons]
		comp.weights = s.weightArena[off : off : off+comp.nCons]
		off += comp.nCons
		comp.touched = s.touchedArena[tOff : tOff : tOff+comp.links]
		tOff += comp.links
	}
	for _, ci := range s.dirtyList {
		c := &s.cons[ci]
		comp := &s.comps[s.rootSlot[s.linkRoot[c.linkIdx]]]
		comp.active = append(comp.active, ci)
		var w int32
		switch c.kind {
		case consLink:
			w = int32(len(c.ls.memSlots))
		case consTenantCap:
			w = int32(c.n)
		default:
			w = 1
		}
		comp.weights = append(comp.weights, w)
	}

	// A new epoch unfreezes every flow; no reset sweep is needed.
	s.fillEpoch++
	n := len(f.flowList)

	// Solve the dirty components, serially or on the worker pool.
	f.sc.componentsSolved += uint64(len(s.comps))
	totalWork := 0
	for i := range s.comps {
		totalWork += s.comps[i].members
	}
	var pool *solverPool
	if totalWork >= f.parThreshold {
		pool = f.ensurePool()
	}
	if pool == nil {
		for i := range s.comps {
			f.fillComponent(&s.comps[i])
		}
	} else {
		f.solveParallel(pool)
	}
	var solved, rounds uint64
	for i := range s.comps {
		solved += uint64(s.comps[i].frozenCount)
		rounds += s.comps[i].rounds
	}
	f.sc.flowsSolved += solved
	f.sc.flowsSkipped += uint64(n) - solved
	f.sc.rounds += rounds

	// Settle byte accounting on every dirty-region link whose
	// allocation is about to move (at the old rates, up to now), then
	// install the new rates on the dirty region and resum the affected
	// links' current rate in flow-ID order. Links of clean components
	// are untouched: none of their members' rates moved.
	s.changed = s.changed[:0]
	for _, ls := range f.linkList {
		if !s.rootDirty[s.linkRoot[ls.idx]] {
			continue
		}
		changed := ls.memberDirty
		if !changed {
			for _, sl := range ls.memSlots {
				if f.slotRate[sl] != f.fill[sl].alloc {
					changed = true
					break
				}
			}
		}
		if changed {
			f.settleLink(ls, now)
			s.changed = append(s.changed, ls)
		}
	}
	// Install: one linear sweep over the slot arena writes each dirty
	// flow's rate exactly once. A flow is in the dirty region iff its
	// first link's root is dirty (every link of a path shares one
	// component), so the per-slot check needs no Flow deref — and the
	// sweep touches each flow once where a walk of the dirty link
	// constraints would touch it once per path hop.
	for sl, li := range f.slotFirst {
		if li >= 0 && s.rootDirty[s.linkRoot[li]] {
			f.slotRate[sl] = f.fill[sl].alloc
		}
	}
	for i, ls := range s.changed {
		var sum float64
		for _, sl := range ls.memSlots {
			sum += f.slotRate[sl]
		}
		ls.currentRate = topology.Rate(sum)
		ls.memberDirty = false
		s.changed[i] = nil // release for GC; the scratch slice is long-lived
	}
	s.changed = s.changed[:0]
}

// fillComponent runs progressive filling over one component's active
// constraint list: find the tightest constraint, freeze its members at
// their fair share, repeat until every constraint is spent. Spent
// constraints are compacted out of the active list — freezing is
// monotone, so a spent constraint can never become the bottleneck
// again.
func (f *Fabric) fillComponent(cs *compSolve) {
	nAct := len(cs.active)
	for {
		cs.rounds++
		keep, bestShare, bestCi := f.scanRange(cs.active, cs.weights, 0, nAct)
		f.clearTouched(cs)
		nAct = keep
		cs.active = cs.active[:keep]
		cs.weights = cs.weights[:keep]
		if bestCi < 0 {
			return
		}
		f.freezeBest(cs, bestCi, bestShare)
	}
}

// clearTouched resets the roundDirty flags a freeze set, once the scan
// that needed them has run. Keeping the array all-false between rounds
// is what lets it be shared scratch across passes and components.
func (f *Fabric) clearTouched(cs *compSolve) {
	s := &f.scr
	for _, li := range cs.touched {
		s.roundDirty[li] = false
	}
	cs.touched = cs.touched[:0]
}

// scanRange scans active[lo:hi), compacting spent constraints out in
// place (of both the active list and its parallel weight list) and
// returning the number of survivors plus the tightest constraint of
// the range. Dirty constraints are rescanned member by member in flow
// order — remaining capacity minus frozen allocations, accumulated
// weight of unfrozen members — and their share re-cached; clean
// constraints reuse the cached share, which is exact because no member
// of theirs froze since it was computed. Both the serial and the
// parallel solve paths funnel through this one function, so their
// arithmetic agrees by construction.
func (f *Fabric) scanRange(active, weights []int32, lo, hi int) (int, float64, int32) {
	s := &f.scr
	ep := s.fillEpoch
	fill := f.fill
	bestShare := math.Inf(1)
	bestCi := int32(-1)
	w := lo
	for k := lo; k < hi; k++ {
		ci := active[k]
		if li := s.conLink[ci]; s.conDirty[ci] || (li >= 0 && s.roundDirty[li]) {
			s.conDirty[ci] = false
			c := &s.cons[ci]
			remaining := c.capacity
			aw := 0.0
			switch c.kind {
			case consLink:
				for _, sl := range c.ls.memSlots {
					fs := &fill[sl]
					if fs.epoch == ep {
						remaining -= fs.alloc
					} else {
						aw += fs.effW
					}
				}
			case consTenantCap:
				for _, sl := range s.memberSlots[c.off : c.off+c.n] {
					fs := &fill[sl]
					if fs.epoch == ep {
						remaining -= fs.alloc
					} else {
						aw += fs.effW
					}
				}
			case consDemand:
				if fs := &fill[c.flSlot]; fs.epoch != ep {
					aw = fs.effW
				}
			}
			if aw == 0 {
				continue // spent: drop from the active list
			}
			share := remaining / aw
			if share < 0 {
				share = 0
			}
			s.conShare[ci] = share
		}
		active[w] = ci
		weights[w] = weights[k]
		w++
		if sh := s.conShare[ci]; sh < bestShare {
			bestShare = sh
			bestCi = ci
		}
	}
	return w - lo, bestShare, bestCi
}

// freezeBest freezes every unfrozen member of the round's tightest
// constraint at its weighted share of the bottleneck.
func (f *Fabric) freezeBest(cs *compSolve, bestCi int32, share float64) {
	s := &f.scr
	c := &s.cons[bestCi]
	switch c.kind {
	case consLink:
		for _, sl := range c.ls.memSlots {
			f.freezeSlot(cs, sl, share)
		}
	case consTenantCap:
		for _, sl := range s.memberSlots[c.off : c.off+c.n] {
			f.freezeSlot(cs, sl, share)
		}
	case consDemand:
		f.freezeSlot(cs, c.flSlot, share)
	}
}

// freezeSlot freezes one flow (by fill slot) at share × effW and
// marks the flow's path links round-dirty: every constraint the flow
// participates in is anchored at one of those links, lost an unfrozen
// member, and must be rescanned next round (see roundDirty).
func (f *Fabric) freezeSlot(cs *compSolve, slot int32, share float64) {
	s := &f.scr
	fs := &f.fill[slot]
	if fs.epoch == s.fillEpoch {
		return
	}
	fs.epoch = s.fillEpoch
	fs.alloc = share * fs.effW
	cs.frozenCount++
	for _, li := range f.slotPath[slot] {
		if !s.roundDirty[li] {
			s.roundDirty[li] = true
			cs.touched = append(cs.touched, li)
		}
	}
	if dc := f.slotDemandCi[slot]; dc >= 0 {
		s.conDirty[dc] = true
	}
}

// rebuildConstraints reconstructs the constraint system from scratch:
// per link (in ID order) the link-capacity constraint followed by its
// tenant-cap constraints (in tenant order), then per flow (in ID
// order) its demand constraint. Every link gets a constraint even when
// it currently has no flows — an empty constraint is inert (no active
// weight, dropped on first scan) but its presence means flow arrivals
// and departures on uncapped links never invalidate the system; they
// splice the demand section instead (see demandInsert/demandRemove).
// Buffers are reused; after warm-up a rebuild allocates nothing.
func (f *Fabric) rebuildConstraints() {
	s := &f.scr
	s.cons = s.cons[:0]
	s.conLink = s.conLink[:0]
	s.memberSlots = s.memberSlots[:0]
	for _, ls := range f.linkList {
		li := ls.idx
		s.cons = append(s.cons, constraint{kind: consLink, ls: ls, linkIdx: int32(li)})
		s.conLink = append(s.conLink, int32(li))
		if len(ls.caps) == 0 {
			continue
		}
		s.tenants = s.tenants[:0]
		for t := range ls.caps {
			s.tenants = append(s.tenants, t)
		}
		sortTenants(s.tenants)
		for _, t := range s.tenants {
			off := len(s.memberSlots)
			for _, fl := range ls.flows {
				if fl.Tenant == t {
					s.memberSlots = append(s.memberSlots, fl.slot)
				}
			}
			if nm := len(s.memberSlots) - off; nm > 0 {
				s.cons = append(s.cons, constraint{
					kind: consTenantCap, ls: ls, tenant: t,
					off: off, n: nm, linkIdx: int32(li),
				})
				s.conLink = append(s.conLink, int32(li))
			}
		}
	}
	s.demandOff = len(s.cons)
	for _, fl := range f.flowList {
		f.slotDemandCi[fl.slot] = -1
		if fl.Demand > 0 {
			f.slotDemandCi[fl.slot] = int32(len(s.cons))
			s.cons = append(s.cons, constraint{
				kind: consDemand, fl: fl, capacity: float64(fl.Demand),
				linkIdx: int32(fl.firstLink.idx), flSlot: fl.slot,
			})
			s.conLink = append(s.conLink, -1)
		}
	}
	s.consValid = true
}

// demandInsert splices a demand constraint for fl into the
// flow-ID-ordered demand section, keeping every shifted flow's cached
// constraint index in step. Valid only while consValid holds.
func (f *Fabric) demandInsert(fl *Flow) {
	s := &f.scr
	i, _ := slices.BinarySearchFunc(s.cons[s.demandOff:], fl.ID,
		func(c constraint, id FlowID) int { return cmp.Compare(c.fl.ID, id) })
	i += s.demandOff
	s.cons = append(s.cons, constraint{})
	s.conLink = append(s.conLink, -1) // the demand tail is uniformly -1
	copy(s.cons[i+1:], s.cons[i:])
	s.cons[i] = constraint{
		kind: consDemand, fl: fl, capacity: float64(fl.Demand),
		linkIdx: int32(fl.firstLink.idx), flSlot: fl.slot,
	}
	for j := i; j < len(s.cons); j++ {
		f.slotDemandCi[s.cons[j].flSlot] = int32(j)
	}
}

// demandRemove splices fl's demand constraint out of the demand
// section. A no-op for flows without one.
func (f *Fabric) demandRemove(fl *Flow) {
	s := &f.scr
	i := int(f.slotDemandCi[fl.slot])
	if i < 0 {
		return
	}
	copy(s.cons[i:], s.cons[i+1:])
	s.cons[len(s.cons)-1] = constraint{}
	s.cons = s.cons[:len(s.cons)-1]
	s.conLink = s.conLink[:len(s.conLink)-1]
	f.slotDemandCi[fl.slot] = -1
	for j := i; j < len(s.cons); j++ {
		f.slotDemandCi[s.cons[j].flSlot] = int32(j)
	}
}

// sortTenants orders a small tenant slice in place (insertion sort: the
// cap key-set of one link is tiny, and this avoids the closure
// allocation of sort.Slice on the recompute path).
func sortTenants(ts []TenantID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
