package fabric

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestTransactionRTTIdle(t *testing.T) {
	f, e, p := newLineFabric()
	var rec TxRecord
	err := f.SendTransaction(TxOptions{
		Tenant: "t", Src: "a", Dst: "c", ReqBytes: 0, RespBytes: 0,
	}, func(r TxRecord) { rec = r })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// One-way, zero-size: just the 20ns of base latency.
	if rec.RTT != 20 {
		t.Fatalf("one-way RTT %v, want 20", rec.RTT)
	}
	if rec.Lost {
		t.Fatal("lost on healthy path")
	}
	if rec.Src != "a" || rec.Dst != "c" || rec.Path.Hops() != p.Hops() {
		t.Fatalf("record fields wrong: %+v", rec)
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	f, e, _ := newLineFabric()
	var rec TxRecord
	err := f.SendTransaction(TxOptions{
		Tenant: "t", Src: "a", Dst: "c", ReqBytes: 0, RespBytes: 1,
	}, func(r TxRecord) { rec = r })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Round trip: 20ns out + 20ns back, plus serialization of 1 byte.
	if rec.RTT < 40 {
		t.Fatalf("round-trip RTT %v, want >= 40", rec.RTT)
	}
	st := f.TxStats()
	if st.Sent != 1 || st.Completed != 1 || st.Lost != 0 {
		t.Fatalf("tx stats %+v", st)
	}
}

func TestTransactionLostOnFailedLink(t *testing.T) {
	f, e, p := newLineFabric()
	if err := f.FailLink(p.Links[1].ID); err != nil {
		t.Fatal(err)
	}
	var rec TxRecord
	err := f.SendTransaction(TxOptions{
		Tenant: "t", Src: "a", Dst: "c", RespBytes: 1,
	}, func(r TxRecord) { rec = r })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !rec.Lost {
		t.Fatal("transaction crossed failed link")
	}
	if rec.LostAt != p.Links[1].ID {
		t.Fatalf("lost at %s, want %s", rec.LostAt, p.Links[1].ID)
	}
	if f.TxStats().Lost != 1 {
		t.Fatalf("lost counter %d", f.TxStats().Lost)
	}
}

func TestTransactionLostOnReversePath(t *testing.T) {
	f, e, p := newLineFabric()
	// Fail only the reverse direction of hop 0 (b->a).
	rev := p.Links[0].Reverse
	if err := f.FailLink(rev); err != nil {
		t.Fatal(err)
	}
	var rec TxRecord
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c", RespBytes: 1},
		func(r TxRecord) { rec = r })
	e.Run()
	if !rec.Lost || rec.LostAt != rev {
		t.Fatalf("reverse-path loss not detected: %+v", rec)
	}
}

func TestTransactionCongestionInflation(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := lineTopo()
	f := New(topo, e, Config{QueueingFactor: 0.5, MaxInflation: 40, PCIeEfficiency: 1})
	p, _ := topo.ShortestPath("a", "c")
	var idle, loaded simtime.Duration
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c"},
		func(r TxRecord) { idle = r.RTT })
	e.Run()
	_ = f.AddFlow(&Flow{Tenant: "bg", Path: p}) // saturate
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c"},
		func(r TxRecord) { loaded = r.RTT })
	e.Run()
	if loaded <= idle {
		t.Fatalf("congested RTT %v not above idle %v", loaded, idle)
	}
}

func TestTransactionPinnedPath(t *testing.T) {
	f, e, p := newLineFabric()
	var rec TxRecord
	err := f.SendTransaction(TxOptions{
		Tenant: "t", Src: "a", Dst: "c", Path: p,
	}, func(r TxRecord) { rec = r })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if rec.Lost {
		t.Fatal("pinned-path tx lost")
	}
	// Mismatched pin rejected.
	err = f.SendTransaction(TxOptions{Tenant: "t", Src: "c", Dst: "a", Path: p}, nil)
	if err == nil {
		t.Fatal("mismatched pinned path accepted")
	}
}

func TestTransactionValidation(t *testing.T) {
	f, _, _ := newLineFabric()
	if err := f.SendTransaction(TxOptions{Src: "a", Dst: "c", ReqBytes: -1}, nil); err == nil {
		t.Fatal("negative request size accepted")
	}
	if err := f.SendTransaction(TxOptions{Src: "a", Dst: "nope"}, nil); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestSniffer(t *testing.T) {
	f, e, _ := newLineFabric()
	var captured []TxRecord
	detach := f.AttachSniffer(func(r TxRecord) { captured = append(captured, r) })
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c"}, nil)
	e.Run()
	if len(captured) != 1 {
		t.Fatalf("sniffer captured %d records, want 1", len(captured))
	}
	detach()
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c"}, nil)
	e.Run()
	if len(captured) != 1 {
		t.Fatal("detached sniffer still capturing")
	}
}

func TestInterruptModerationDelaysInboundTraffic(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	f := New(topo, e, DefaultConfig())
	measure := func() simtime.Duration {
		var rtt simtime.Duration
		_ = f.SendTransaction(TxOptions{
			Tenant: "t", Src: "external0", Dst: "socket0.dimm0_0", RespBytes: 64,
		}, func(r TxRecord) { rtt = r.RTT })
		e.Run()
		return rtt
	}
	base := measure()
	// Turn on 50us moderation at nic0: inbound requests are delayed;
	// the response leaves through nic0 outbound and is unaffected.
	topo.Component("nic0").SetConfig(topology.ConfigIntModeration, "50")
	moderated := measure()
	want := base + 50*simtime.Microsecond
	if moderated != want {
		t.Fatalf("moderated RTT %v, want %v", moderated, want)
	}
	// Intra-host traffic never pays moderation.
	var intra simtime.Duration
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "gpu0", Dst: "nic0", RespBytes: 64},
		func(r TxRecord) { intra = r.RTT })
	e.Run()
	if intra >= 50*simtime.Microsecond {
		t.Fatalf("intra-host tx paid moderation: %v", intra)
	}
	// Malformed config is ignored.
	topo.Component("nic0").SetConfig(topology.ConfigIntModeration, "5x")
	if got := measure(); got != base {
		t.Fatalf("malformed moderation applied: %v vs %v", got, base)
	}
}

func TestSerializationDominatesLargeTransfer(t *testing.T) {
	f, e, _ := newLineFabric()
	var small, large simtime.Duration
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c", ReqBytes: 1},
		func(r TxRecord) { small = r.RTT })
	_ = f.SendTransaction(TxOptions{Tenant: "t", Src: "a", Dst: "c", ReqBytes: 1000},
		func(r TxRecord) { large = r.RTT })
	e.Run()
	if large <= small {
		t.Fatalf("1000B RTT %v not above 1B RTT %v", large, small)
	}
}
