package fabric

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// This file holds the component partition and the bounded worker pool
// behind the parallel max-min solver (see maxmin.go for the filling
// algorithm itself).
//
// The constraint graph decomposes into independent connected
// components: two links are connected when some flow traverses both,
// and every constraint (link capacity, per-(link,tenant) cap, per-flow
// demand) involves the flows of exactly one component. Progressive
// filling over the whole system is therefore bit-identical to filling
// each component on its own: a constraint's share depends only on its
// own component's state, and the global "tightest first" order merely
// interleaves the per-component bottleneck sequences without changing
// any float operation or its operand order. That identity is what
// makes both solver optimizations sound:
//
//   - dirty-region solving: only components touched by a mutation
//     since the last pass are re-solved; every other flow keeps its
//     rate, which is exactly the rate a full solve would re-derive;
//   - parallel solving: dirty components are solved concurrently, and
//     a single large component runs its filling rounds as chunked
//     scans merged in deterministic chunk order, so the result is
//     independent of worker count and scheduling.
//
// The partition is a union-find over dense link indices, maintained
// incrementally: installing a flow unions the links of its path.
// Removals never split eagerly — a too-coarse partition is still
// correct, merely less parallel and less dirty-precise — and a full
// rebuild runs amortized once enough component-bridging flows have
// been removed.

// defaultParallelThreshold is the minimum dirty-region work estimate
// (total constraint membership) before a solve engages the worker
// pool. Below it dispatch overhead exceeds the win; the 1k-flow
// steady state stays serial and allocation-free.
const defaultParallelThreshold = 8192

// solverMaxWorkers caps the auto-sized pool: filling rounds are
// memory-bound, so returns diminish quickly past a few cores.
const solverMaxWorkers = 8

// chunkTargetWork is the constraint-membership weight one parallel
// scan chunk aims for. Chunk boundaries depend only on the active
// list, never on the worker count, so any pool size produces the same
// chunk results and the same merged outcome.
const chunkTargetWork = 2048

// find returns the root of the component containing link index i,
// compressing the path.
func (f *Fabric) find(i int32) int32 {
	root := i
	for f.ufParent[root] != root {
		root = f.ufParent[root]
	}
	for f.ufParent[i] != root {
		f.ufParent[i], i = root, f.ufParent[i]
	}
	return root
}

// union merges the components of link indices a and b (by size),
// reporting whether two distinct components were actually joined.
func (f *Fabric) union(a, b int32) bool {
	ra, rb := f.find(a), f.find(b)
	if ra == rb {
		return false
	}
	if f.ufSize[ra] < f.ufSize[rb] {
		ra, rb = rb, ra
	}
	f.ufParent[rb] = ra
	f.ufSize[ra] += f.ufSize[rb]
	return true
}

// resetPartition returns every link to its own singleton component.
func (f *Fabric) resetPartition() {
	for i := range f.ufParent {
		f.ufParent[i] = int32(i)
		f.ufSize[i] = 1
	}
}

// unionFlowLinks merges the components of every link on fl's path,
// recording on the flow whether it bridged previously separate
// components. Bridging flows are the only ones whose removal can
// split the partition, so they gate the amortized rebuild.
func (f *Fabric) unionFlowLinks(fl *Flow) {
	path := f.slotPath[fl.slot]
	first := path[0]
	for _, li := range path[1:] {
		if f.union(first, li) {
			fl.bridged = true
		}
	}
}

// maybeRebuildPartition rebuilds the union-find from the live flow set
// once enough bridging flows have been removed that the partition may
// have become needlessly coarse. Rebuilding never changes rates — it
// only refines which flows a pass may skip or solve concurrently —
// and the per-link dirty marks survive untouched.
func (f *Fabric) maybeRebuildPartition() {
	if f.bridgedRemovals*4 <= len(f.flows)+64 {
		return
	}
	f.bridgedRemovals = 0
	f.resetPartition()
	for _, fl := range f.flowList {
		fl.bridged = false
		f.unionFlowLinks(fl)
	}
}

// markLinkDirty records that a link's constraints (membership,
// capacity, or cap set) changed, so its component must be re-solved on
// the next pass. Marks accumulate across batched mutations and are
// consumed by computeRates.
func (f *Fabric) markLinkDirty(ls *linkState) {
	f.linkDirty[ls.idx] = true
}

// markAllLinksDirty forces a full re-solve (global knobs: tenant
// weights, clearing every cap).
func (f *Fabric) markAllLinksDirty() {
	for i := range f.linkDirty {
		f.linkDirty[i] = true
	}
}

// SetSolverTuning adjusts the parallel solver: parallelThreshold is
// the minimum dirty-region work (total constraint membership) before
// the worker pool engages, and workers fixes the pool size (0 restores
// auto-sizing from GOMAXPROCS, 1 forces the solver fully serial).
// Non-positive thresholds restore the default. Tuning never changes
// results — the solve is bit-identical at every setting, which the
// parity tests pin — only where the work runs; the knob exists for
// benchmarks, determinism tests, and constrained deployments. Any
// running pool is stopped and re-created lazily at the new size.
func (f *Fabric) SetSolverTuning(parallelThreshold, workers int) {
	if parallelThreshold <= 0 {
		parallelThreshold = defaultParallelThreshold
	}
	if workers < 0 {
		workers = 0
	}
	// Each worker is a parked goroutine; clamp to a sane ceiling so a
	// mistaken huge value cannot spawn an unbounded fleet.
	if workers > 4*solverMaxWorkers {
		workers = 4 * solverMaxWorkers
	}
	f.parThreshold = parallelThreshold
	f.fixedWorkers = workers
	f.StopSolver()
}

// StopSolver shuts the worker pool down (idempotent). Later solves
// recreate it lazily if still eligible; core.Manager.Stop calls this
// so daemons and tests do not leak parked worker goroutines.
func (f *Fabric) StopSolver() {
	if f.pool != nil {
		close(f.pool.in)
		f.pool = nil
	}
}

// solverWorkers resolves the worker count a parallel solve would use.
func (f *Fabric) solverWorkers() int {
	if f.fixedWorkers > 0 {
		return f.fixedWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > solverMaxWorkers {
		w = solverMaxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensurePool lazily starts the worker pool, returning nil when
// parallelism is pointless (a single worker).
func (f *Fabric) ensurePool() *solverPool {
	if f.pool != nil {
		return f.pool
	}
	w := f.solverWorkers()
	if w <= 1 {
		return nil
	}
	f.pool = newSolverPool(w)
	return f.pool
}

// poolTask is one unit of broadcast work. Implementations are
// pre-allocated structs on the fabric, so dispatch touches no
// allocator.
type poolTask interface{ run() }

// solverPool is a bounded set of persistent workers fed over a shared
// channel. The coordinator broadcasts one task to every worker and
// waits for all of them; workers claim fine-grained work items from
// the task's atomic cursor, so an idle worker never blocks a busy one.
type solverPool struct {
	workers int
	in      chan poolTask
	done    chan struct{}
	busyNs  atomic.Int64
}

func newSolverPool(workers int) *solverPool {
	p := &solverPool{
		workers: workers,
		in:      make(chan poolTask),
		done:    make(chan struct{}, workers),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *solverPool) worker() {
	for t := range p.in {
		start := time.Now()
		t.run()
		p.busyNs.Add(time.Since(start).Nanoseconds())
		p.done <- struct{}{}
	}
}

// runAll hands the task to every worker and blocks until each one has
// drained the shared cursor and reported back. The channel send/recv
// pairs establish the happens-before edges that make the coordinator's
// pre-dispatch writes visible to workers and the workers' results
// visible to the merge that follows.
func (p *solverPool) runAll(t poolTask) {
	for i := 0; i < p.workers; i++ {
		p.in <- t
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
}

// compSolve is one dirty component's solve state for the current pass.
// active and weights alias segments of the scratch arenas; the filling
// loop compacts them in place.
type compSolve struct {
	root        int32 // component root (dense link index)
	nCons       int   // constraints assigned in pass A
	links       int   // link constraints assigned: bounds the touched list
	members     int   // total constraint membership: the work estimate
	frozenCount int   // flows this solve froze
	rounds      uint64
	active      []int32
	weights     []int32
	touched     []int32 // links marked roundDirty by this round's freeze
}

// chunkResult is one parallel scan chunk's contribution, padded to a
// cache line so adjacent workers do not false-share.
type chunkResult struct {
	bestShare float64
	bestCi    int32
	keep      int32
	_         [48]byte
}

// scanTask is the broadcast work item for one parallel filling round:
// workers claim chunks of the component's active list by cursor, scan
// and compact them in place, and record each chunk's local best.
type scanTask struct {
	f      *Fabric
	cs     *compSolve
	chunks int
	cursor atomic.Int32
}

func (t *scanTask) run() {
	s := &t.f.scr
	for {
		c := int(t.cursor.Add(1)) - 1
		if c >= t.chunks {
			return
		}
		lo := int(s.chunkBounds[c])
		hi := int(s.chunkBounds[c+1])
		keep, share, ci := t.f.scanRange(t.cs.active, t.cs.weights, lo, hi)
		s.chunkRes[c] = chunkResult{bestShare: share, bestCi: ci, keep: int32(keep)}
	}
}

// compTask is the broadcast work item for solving many small dirty
// components concurrently: workers claim whole components by cursor
// and run the serial filling loop on each. Components share no
// constraints and write disjoint per-flow and per-constraint entries,
// so any claim order produces identical results.
type compTask struct {
	f      *Fabric
	cursor atomic.Int32
}

func (t *compTask) run() {
	s := &t.f.scr
	for {
		k := int(t.cursor.Add(1)) - 1
		if k >= len(s.smallComps) {
			return
		}
		t.f.fillComponent(&s.comps[s.smallComps[k]])
	}
}

// solveParallel distributes the pass's dirty components over the
// pool: components below the parallel threshold are claimed whole by
// workers, and each large component then runs its filling rounds with
// parallel chunked scans.
func (f *Fabric) solveParallel(pool *solverPool) {
	s := &f.scr
	f.sc.parallelSolves++
	start := time.Now()
	s.smallComps = s.smallComps[:0]
	for i := range s.comps {
		if s.comps[i].members < f.parThreshold {
			s.smallComps = append(s.smallComps, int32(i))
		}
	}
	switch {
	case len(s.smallComps) == 1:
		f.fillComponent(&s.comps[s.smallComps[0]])
	case len(s.smallComps) > 1:
		t := &f.compT
		t.f = f
		t.cursor.Store(0)
		pool.runAll(t)
	}
	for i := range s.comps {
		if s.comps[i].members >= f.parThreshold {
			f.fillComponentParallel(&s.comps[i], pool)
		}
	}
	f.sc.parallelWallNs += time.Since(start).Nanoseconds()
}

// fillComponentParallel is fillComponent with each round's scan split
// into weight-balanced chunks executed by the pool and merged in chunk
// order. Chunk boundaries depend only on the active list, the merge
// keeps the first strictly-smallest share in chunk (= constraint)
// order, and survivor compaction copies chunk survivors leftward in
// the same order a serial scan would have left them — so the result
// is bit-identical to fillComponent at any worker count.
func (f *Fabric) fillComponentParallel(cs *compSolve, pool *solverPool) {
	s := &f.scr
	for {
		cs.rounds++
		nAct := len(cs.active)
		chunks := f.buildChunks(cs, nAct)
		var keepTotal int
		var bestShare float64
		var bestCi int32
		if chunks <= 1 {
			keepTotal, bestShare, bestCi = f.scanRange(cs.active, cs.weights, 0, nAct)
		} else {
			t := &f.scanT
			t.f = f
			t.cs = cs
			t.chunks = chunks
			t.cursor.Store(0)
			pool.runAll(t)
			bestShare = math.Inf(1)
			bestCi = -1
			w := 0
			for c := 0; c < chunks; c++ {
				r := &s.chunkRes[c]
				lo := int(s.chunkBounds[c])
				keep := int(r.keep)
				if w != lo {
					copy(cs.active[w:w+keep], cs.active[lo:lo+keep])
					copy(cs.weights[w:w+keep], cs.weights[lo:lo+keep])
				}
				w += keep
				if r.bestCi >= 0 && r.bestShare < bestShare {
					bestShare = r.bestShare
					bestCi = r.bestCi
				}
			}
			keepTotal = w
		}
		f.clearTouched(cs)
		cs.active = cs.active[:keepTotal]
		cs.weights = cs.weights[:keepTotal]
		if bestCi < 0 {
			return
		}
		f.freezeBest(cs, bestCi, bestShare)
	}
}

// buildChunks splits the component's active list into chunks of
// roughly chunkTargetWork total membership, returning the chunk count.
// Boundaries are a pure function of the active list, independent of
// worker count and scheduling.
func (f *Fabric) buildChunks(cs *compSolve, nAct int) int {
	s := &f.scr
	if cap(s.chunkBounds) < nAct+1 {
		s.chunkBounds = make([]int32, 1, nAct+1)
	}
	bounds := s.chunkBounds[:1]
	bounds[0] = 0
	acc := int32(0)
	for k := 0; k < nAct; k++ {
		acc += cs.weights[k]
		if acc >= chunkTargetWork {
			bounds = append(bounds, int32(k+1))
			acc = 0
		}
	}
	if int(bounds[len(bounds)-1]) != nAct {
		bounds = append(bounds, int32(nAct))
	}
	s.chunkBounds = bounds
	chunks := len(bounds) - 1
	if cap(s.chunkRes) < chunks {
		s.chunkRes = make([]chunkResult, chunks)
	}
	s.chunkRes = s.chunkRes[:chunks]
	return chunks
}

// liveComponents counts connected components with at least one active
// flow, in O(links).
func (f *Fabric) liveComponents() int {
	s := &f.scr
	s.compSeen = growBools(s.compSeen, len(f.linkList))
	for i := range s.compSeen {
		s.compSeen[i] = false
	}
	n := 0
	for _, ls := range f.linkList {
		if len(ls.flows) == 0 {
			continue
		}
		if r := f.find(int32(ls.idx)); !s.compSeen[r] {
			s.compSeen[r] = true
			n++
		}
	}
	return n
}

// SolverStats is an operator snapshot of the component solver: the
// live partition shape, cumulative dirty-region and parallelism
// accounting, and the batch coalescing counters behind the "one settle
// per burst" contract. The cheap counters are maintained on the solve
// path; the partition shape is computed on demand.
type SolverStats struct {
	// Workers is the pool size a parallel solve would use right now;
	// ParallelThreshold is the dirty-work floor that engages it.
	Workers           int `json:"workers"`
	ParallelThreshold int `json:"parallel_threshold"`
	// Components is the number of connected components with at least
	// one active flow; LargestComponent is the flow count of the
	// biggest one. Flows is the total active flow count.
	Components       int `json:"components"`
	LargestComponent int `json:"largest_component_flows"`
	Flows            int `json:"flows"`
	// Solves counts rate recomputations that had a dirty region;
	// NoopSolves counts passes that found nothing dirty and returned
	// immediately. ParallelSolves counts solves that engaged the pool.
	Solves         uint64 `json:"solves"`
	NoopSolves     uint64 `json:"noop_solves"`
	ParallelSolves uint64 `json:"parallel_solves"`
	// ComponentsSolved and FlowsSolved accumulate the dirty region
	// actually re-solved; FlowsSkipped accumulates flows whose clean
	// components were left untouched. Rounds accumulates
	// progressive-filling rounds across all solves.
	ComponentsSolved uint64 `json:"components_solved"`
	FlowsSolved      uint64 `json:"flows_solved"`
	FlowsSkipped     uint64 `json:"flows_skipped"`
	Rounds           uint64 `json:"rounds"`
	// Mutations counts rate-affecting fabric mutations; Mutations over
	// Solves is the batch coalesce factor. BatchedMutations counts the
	// subset that arrived inside an open Batch; Batches counts the
	// batches.
	Mutations        uint64 `json:"mutations"`
	Batches          uint64 `json:"batches"`
	BatchedMutations uint64 `json:"batched_mutations"`
	// WorkerBusyNs sums wall time workers spent executing tasks;
	// ParallelWallNs sums the coordinator's wall time inside parallel
	// sections. BusyNs / (WallNs × Workers) is worker utilization.
	WorkerBusyNs   int64 `json:"worker_busy_ns"`
	ParallelWallNs int64 `json:"parallel_wall_ns"`
}

// solverCounters is the cumulative half of SolverStats, embedded in
// the fabric and bumped with plain adds on the solve path.
type solverCounters struct {
	solves           uint64
	noopSolves       uint64
	parallelSolves   uint64
	componentsSolved uint64
	flowsSolved      uint64
	flowsSkipped     uint64
	rounds           uint64
	mutations        uint64
	batches          uint64
	batchedMutations uint64
	parallelWallNs   int64
}

// SolverStats returns the solver snapshot. The partition shape costs
// O(links + flows); everything else reads counters maintained on the
// solve path.
func (f *Fabric) SolverStats() SolverStats {
	st := SolverStats{
		Workers:           f.solverWorkers(),
		ParallelThreshold: f.parThreshold,
		Components:        f.liveComponents(),
		Flows:             len(f.flows),
		Solves:            f.sc.solves,
		NoopSolves:        f.sc.noopSolves,
		ParallelSolves:    f.sc.parallelSolves,
		ComponentsSolved:  f.sc.componentsSolved,
		FlowsSolved:       f.sc.flowsSolved,
		FlowsSkipped:      f.sc.flowsSkipped,
		Rounds:            f.sc.rounds,
		Mutations:         f.sc.mutations,
		Batches:           f.sc.batches,
		BatchedMutations:  f.sc.batchedMutations,
		ParallelWallNs:    f.sc.parallelWallNs,
	}
	if f.pool != nil {
		st.WorkerBusyNs = f.pool.busyNs.Load()
	}
	// Size the largest component by attributing each flow to its first
	// link's root.
	counts := make(map[int32]int)
	for _, fl := range f.flowList {
		counts[f.find(int32(fl.firstLink.idx))]++
	}
	for _, n := range counts {
		if n > st.LargestComponent {
			st.LargestComponent = n
		}
	}
	return st
}
