package fabric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// referenceComputeRates is the pre-optimization progressive-filling
// solver, kept verbatim (maps keyed by flow ID, string constraint
// keys, per-call sorting) as the differential oracle for the
// incremental engine. It reads the fabric's state but writes nothing;
// it returns the allocation it would have installed.
//
// Both implementations order constraints and members identically (link
// ID, tenant ID, flow ID) and perform float operations in the same
// order, so the comparison below demands exact equality, not epsilon
// closeness.
func referenceComputeRates(f *Fabric) map[FlowID]float64 {
	type constraint struct {
		key     string
		cap     float64
		members []*Flow
	}
	var cons []*constraint

	for _, ls := range f.sortedLinkStates() {
		if len(ls.flows) == 0 {
			continue
		}
		members := make([]*Flow, len(ls.flows))
		copy(members, ls.flows)
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		capacity := float64(ls.capacity)
		if ls.failed {
			capacity = 0
		}
		cons = append(cons, &constraint{
			key:     "link:" + string(ls.link.ID),
			cap:     capacity,
			members: members,
		})
		tenants := make([]TenantID, 0, len(ls.caps))
		for t := range ls.caps {
			tenants = append(tenants, t)
		}
		sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
		for _, t := range tenants {
			var tm []*Flow
			for _, fl := range members {
				if fl.Tenant == t {
					tm = append(tm, fl)
				}
			}
			if len(tm) == 0 {
				continue
			}
			cons = append(cons, &constraint{
				key:     "cap:" + string(ls.link.ID) + ":" + string(t),
				cap:     float64(ls.caps[t]),
				members: tm,
			})
		}
	}
	flowIDs := make([]FlowID, 0, len(f.flows))
	for id := range f.flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		fl := f.flows[id]
		if fl.Demand > 0 {
			cons = append(cons, &constraint{
				key:     "demand:" + string(rune(0)),
				cap:     float64(fl.Demand),
				members: []*Flow{fl},
			})
		}
	}

	frozen := make(map[FlowID]bool, len(f.flows))
	alloc := make(map[FlowID]float64, len(f.flows))
	effWeight := func(fl *Flow) float64 {
		w := fl.Weight
		if tw, ok := f.tenantWeight[fl.Tenant]; ok && tw > 0 {
			w *= tw
		}
		return w
	}

	for len(frozen) < len(f.flows) {
		bestShare := math.Inf(1)
		var best *constraint
		for _, c := range cons {
			remaining := c.cap
			aw := 0.0
			for _, fl := range c.members {
				if frozen[fl.ID] {
					remaining -= alloc[fl.ID]
				} else {
					aw += effWeight(fl)
				}
			}
			if aw == 0 {
				continue
			}
			share := remaining / aw
			if share < 0 {
				share = 0
			}
			if share < bestShare {
				bestShare = share
				best = c
			}
		}
		if best == nil {
			for id := range f.flows {
				if !frozen[id] {
					frozen[id] = true
					alloc[id] = 0
				}
			}
			break
		}
		for _, fl := range best.members {
			if !frozen[fl.ID] {
				frozen[fl.ID] = true
				alloc[fl.ID] = bestShare * effWeight(fl)
			}
		}
	}
	return alloc
}

// compareWithReference recomputes via the live incremental path and
// demands bit-exact agreement with the reference solver on every flow.
func compareWithReference(t *testing.T, f *Fabric, context string) {
	t.Helper()
	f.recomputeIfDirty()
	want := referenceComputeRates(f)
	for _, fl := range f.flowList {
		if got := float64(fl.Rate()); got != want[fl.ID] {
			t.Fatalf("%s: flow %d rate %v, reference %v (diff %g)",
				context, fl.ID, got, want[fl.ID], got-want[fl.ID])
		}
	}
	if len(want) != len(f.flowList) {
		t.Fatalf("%s: reference allocated %d flows, fabric has %d",
			context, len(want), len(f.flowList))
	}
}

// TestIncrementalMatchesReference drives randomized topologies, flows,
// caps, weights, demand updates, failures and removals through the
// incremental engine and checks every resulting allocation against the
// retained reference implementation, bit for bit.
func TestIncrementalMatchesReference(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		fab, flows := randomScenario(seed, int(n%50)+1)
		compareWithReference(t, fab, "initial")
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		live := append([]*Flow(nil), flows...)
		for step := 0; step < 25 && len(live) > 0; step++ {
			switch op := rng.Intn(6); op {
			case 0: // install or update a tenant cap
				fl := live[rng.Intn(len(live))]
				l := fl.Path.Links[rng.Intn(fl.Path.Hops())]
				_ = fab.SetTenantCap(l.ID, fl.Tenant, topology.Rate(rng.Float64()*20e9))
			case 1: // clear a cap (often a no-op)
				fl := live[rng.Intn(len(live))]
				l := fl.Path.Links[rng.Intn(fl.Path.Hops())]
				_ = fab.ClearTenantCap(l.ID, fl.Tenant)
			case 2: // demand update, including zero-crossings
				fl := live[rng.Intn(len(live))]
				var d topology.Rate
				if rng.Intn(3) > 0 {
					d = topology.Rate(rng.Float64() * 40e9)
				}
				_ = fab.SetDemand(fl, d)
			case 3: // tenant weight change
				_ = fab.SetTenantWeight(TenantID([]string{"a", "b", "c"}[rng.Intn(3)]),
					1+rng.Float64()*3)
			case 4: // fail or restore a random link of a random flow
				fl := live[rng.Intn(len(live))]
				l := fl.Path.Links[rng.Intn(fl.Path.Hops())]
				if rng.Intn(2) == 0 {
					_ = fab.FailLink(l.ID)
				} else {
					_ = fab.RestoreLink(l.ID)
				}
			case 5: // remove a flow
				i := rng.Intn(len(live))
				fab.RemoveFlow(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			compareWithReference(t, fab, "after mutation")
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesReferenceUnderChurn runs sized-flow churn with
// virtual-time advancement — completions, re-arms, and cascading
// recomputes — and checks allocations against the reference at every
// step.
func TestIncrementalMatchesReferenceUnderChurn(t *testing.T) {
	engine := simtime.NewEngine(11)
	topo := topology.DGXStyle()
	fab := New(topo, engine, DefaultConfig())
	eps := topo.Endpoints()
	rng := rand.New(rand.NewSource(11))
	var paths []topology.Path
	for len(paths) < 16 {
		src := eps[rng.Intn(len(eps))].ID
		dst := eps[rng.Intn(len(eps))].ID
		if src == dst {
			continue
		}
		if p, err := topo.ShortestPath(src, dst); err == nil {
			paths = append(paths, p)
		}
	}
	completions := 0
	for step := 0; step < 120; step++ {
		fl := &Flow{
			Tenant:     TenantID([]string{"a", "b", "c"}[step%3]),
			Path:       paths[step%len(paths)],
			Weight:     float64(1 + step%4),
			Size:       int64(1024 << (step % 6)),
			OnComplete: func(simtime.Time) { completions++ },
		}
		if step%4 == 0 {
			fl.Demand = topology.Gbps(float64(1 + step%8))
		}
		if err := fab.AddFlow(fl); err != nil {
			t.Fatal(err)
		}
		engine.RunFor(simtime.Duration(1+step%7) * simtime.Microsecond)
		compareWithReference(t, fab, "churn step")
	}
	engine.RunFor(10 * simtime.Millisecond)
	compareWithReference(t, fab, "drained")
	if completions == 0 {
		t.Fatal("no sized flow completed; churn test exercised nothing")
	}
}
