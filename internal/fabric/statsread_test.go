package fabric

import (
	"testing"

	"repro/internal/simtime"
)

// Regression test for the read-perturbs-state bug the chaos harness
// flushed out (`ihscenario fuzz -seed 3 -events 500 -preset
// two-socket`: a mid-run snapshot→restore hash mismatch that the
// journal alone could not reproduce). Stats reads used to fold the
// partial rate×dt segment into the link and flow byte accumulators at
// the read instant; float addition is not associative, so the
// accumulators — and the snap state hash derived from them — depended
// on when state was observed, not only on the command timeline. Reads
// must project to now without folding.
func TestStatsReadsDoNotPerturbAccounting(t *testing.T) {
	// Three equal-weight flows on a 100 B/s bottleneck allocate
	// repeating 33.3… rates, and prime-length steps keep every rate×dt
	// product inexact, so any fold-boundary difference is visible in
	// the float accumulators.
	run := func(readBetween bool) ([]LinkStats, []FlowStats) {
		f, e, p := newLineFabric()
		flows := []*Flow{
			{Tenant: "t1", Path: p},
			{Tenant: "t2", Path: p},
			{Tenant: "t3", Path: p, Size: 1 << 20},
		}
		for _, fl := range flows {
			if err := f.AddFlow(fl); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			step := simtime.Duration(101+13*i) * simtime.Microsecond
			if readBetween {
				e.RunFor(step / 3)
				f.AllLinkStats()
				f.AllFlowStats()
				flows[2].Remaining()
				e.RunFor(step - step/3)
			} else {
				e.RunFor(step)
			}
			if i == 20 {
				// A rate change is a legitimate fold boundary; both
				// runs hit it at the same instant.
				f.RemoveFlow(flows[0])
			}
		}
		return f.AllLinkStats(), f.AllFlowStats()
	}

	quietLinks, quietFlows := run(false)
	readLinks, readFlows := run(true)

	for i := range quietLinks {
		q, r := quietLinks[i], readLinks[i]
		if q.TotalBytes != r.TotalBytes {
			t.Errorf("link %s TotalBytes diverged: quiet %v, with reads %v (delta %g)",
				q.Link, q.TotalBytes, r.TotalBytes, r.TotalBytes-q.TotalBytes)
		}
		for tenant, b := range q.TenantBytes {
			if rb := r.TenantBytes[tenant]; rb != b {
				t.Errorf("link %s tenant %s bytes diverged: quiet %v, with reads %v",
					q.Link, tenant, b, rb)
			}
		}
	}
	for i := range quietFlows {
		q, r := quietFlows[i], readFlows[i]
		if q.RemainingBytes != r.RemainingBytes {
			t.Errorf("flow %d RemainingBytes diverged: quiet %d, with reads %d",
				q.ID, q.RemainingBytes, r.RemainingBytes)
		}
	}
}
