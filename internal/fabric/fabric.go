// Package fabric is a flow-level discrete-event simulator of an
// intra-host network. It models contention, congestion and latency on
// the topology graph: concurrent flows share link capacity under
// weighted max-min fairness, subject to per-(link,tenant) rate caps
// installed by the resource arbiter; transaction latency inflates with
// link utilization; links can fail outright or degrade silently.
//
// The fabric is the ground truth that the manageability stack (monitor,
// anomaly detector, diagnostics, arbiter) observes and controls — it
// stands in for the real PCIe/UPI/memory-bus hardware that the paper's
// vision would instrument.
package fabric

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// TenantID identifies a tenant (VM, container, or application) for
// accounting and resource arbitration. The empty TenantID is the
// "system" tenant used by infrastructure traffic such as heartbeats.
type TenantID string

// SystemTenant is the tenant of infrastructure-originated traffic.
const SystemTenant TenantID = "_system"

// Config tunes the fabric's behavioural models.
type Config struct {
	// QueueingFactor scales utilization-driven latency inflation:
	// per-hop latency = base * (1 + QueueingFactor * rho/(1-rho)),
	// where rho is the link's utilization. Zero disables queueing
	// latency (ablation for E2).
	QueueingFactor float64
	// MaxInflation caps the per-hop inflation multiplier so latency
	// stays finite as rho -> 1.
	MaxInflation float64
	// PCIeEfficiency derates PCIe link capacity for TLP/DLLP protocol
	// overhead. 1.0 means raw capacity. Typically ~0.85-0.9 for 256 B
	// max payload (see the pcie package).
	PCIeEfficiency float64
	// IOMMULatency is the address-translation cost added to
	// device-initiated traffic entering a root port whose IOMMU is
	// configured to "translate" (Figure 1's "Translation Services"
	// knob). The lookup is dynamic: flipping the component config
	// changes latency live, which is exactly the kind of silent
	// reconfiguration the monitor's drift detector exists to catch.
	IOMMULatency simtime.Duration
}

// DefaultConfig returns the configuration used across experiments:
// moderate queueing sensitivity and PCIe 4.0 protocol efficiency at a
// 256-byte maximum payload.
func DefaultConfig() Config {
	return Config{
		QueueingFactor: 0.35,
		MaxInflation:   40,
		PCIeEfficiency: 0.87,
		IOMMULatency:   200 * simtime.Nanosecond,
	}
}

// linkState is the run-time state of one directed link.
type linkState struct {
	link *topology.Link
	// idx is the link's dense position in the fabric's ID-ordered
	// linkList; the solver's per-link arrays and the component
	// union-find are indexed by it.
	idx int
	// effective capacity after protocol derating, degradation.
	capacity topology.Rate
	// extraLatency is degradation-injected latency added to base.
	extraLatency simtime.Duration
	failed       bool
	degradeFrac  float64 // 0 = healthy, 0.5 = half capacity lost

	// flows crossing this link, ordered by ascending flow ID. IDs are
	// allocated monotonically, so installs append and removals splice;
	// every hot-path walk (accounting, max-min membership, stats)
	// iterates in ID order for free, with no per-event sorting.
	// memSlots mirrors flows element for element with each flow's
	// stable fill slot: the solver's filling rounds walk the slot array
	// and index the dense fill-state arena, never touching the Flow
	// structs themselves (see Fabric.fill).
	flows    []*Flow
	memSlots []int32

	// memberDirty records that the flow set changed since the last
	// computeRates pass, so currentRate must be resummed even when no
	// surviving member's rate moved.
	memberDirty bool

	// inboundRootPort marks links carrying device-initiated traffic
	// into a root port; such links pay the IOMMU translation cost when
	// the port's config says "translate".
	inboundRootPort *topology.Component // the root port, or nil

	// Per-tenant rate caps installed by the arbiter.
	caps map[TenantID]topology.Rate

	// Accounting. tenantBytes is indexed by the fabric-wide tenant
	// slot (see Fabric.tenantSlot) instead of a map: settling accrues
	// one entry per member flow, and an array index there is an order
	// of magnitude cheaper than a string hash at identical float
	// accumulation order.
	lastUpdate  simtime.Time
	totalBytes  float64
	tenantBytes []float64
	currentRate topology.Rate // sum of allocated flow rates
}

// removeFlow splices fl out of the link's ID-ordered flow slice and
// the parallel member-slot array.
func (ls *linkState) removeFlow(fl *Flow) {
	i, ok := slices.BinarySearchFunc(ls.flows, fl.ID,
		func(a *Flow, id FlowID) int { return cmp.Compare(a.ID, id) })
	if !ok {
		return
	}
	copy(ls.flows[i:], ls.flows[i+1:])
	ls.flows[len(ls.flows)-1] = nil
	ls.flows = ls.flows[:len(ls.flows)-1]
	copy(ls.memSlots[i:], ls.memSlots[i+1:])
	ls.memSlots = ls.memSlots[:len(ls.memSlots)-1]
}

// Fabric simulates the intra-host network of one host.
type Fabric struct {
	topo   *topology.Topology
	engine *simtime.Engine
	cfg    Config

	links map[topology.LinkID]*linkState
	// linkList holds the links ordered by ID. The topology is immutable,
	// so this is built once in New and every deterministic link walk
	// reuses it allocation-free.
	linkList []*linkState
	flows    map[FlowID]*Flow
	// flowList holds the active flows ordered by ID. IDs are allocated
	// monotonically, so AddFlow appends and removal splices; hot-path
	// walks need no sorting and no map iteration.
	flowList []*Flow
	// sizedList holds the active sized (Size > 0) flows ordered by ID:
	// progress settling, completion scanning and completion-event
	// arming only ever touch sized flows, so a fabric dominated by
	// persistent flows skips them entirely.
	sizedList    []*Flow
	tenantWeight map[TenantID]float64
	nextID       uint64
	dirty        bool // rates need recomputation
	inRecompute  bool
	batching     bool // Batch() open: defer recomputation
	txStats      TransactionStats

	// tenantSlots assigns each tenant a dense slot on first use;
	// tenantList is the inverse mapping. Slots index per-link byte
	// accumulators.
	tenantSlots map[TenantID]int32
	tenantList  []TenantID

	// fill is the solver's per-flow filling state, indexed by each
	// flow's stable slot (Flow.slot, allocated from freeSlots). Keeping
	// it as one dense 24-byte-per-flow arena — rather than fields
	// scattered across Flow structs — shrinks a filling round's working
	// set by an order of magnitude. slotFlow is the inverse mapping;
	// slotPath holds each slot's path as dense link indices (the per-
	// slot backing arrays are recycled with the slot); slotDemandCi is
	// the flow's demand-constraint index, -1 when it has none. Together
	// they let the freeze path run without touching a Flow struct.
	// slotRate is the authoritative allocated rate and slotTenant the
	// tenant accounting slot of each active flow, also slot-indexed:
	// rate installation, change detection, link resummation and byte
	// settling all sweep these dense arrays without touching a Flow.
	fill         []fillState
	slotFlow     []*Flow
	slotPath     [][]int32
	slotDemandCi []int32
	slotRate     []float64
	slotTenant   []int32
	slotFirst    []int32 // first path link (dense index); -1 = slot free
	freeSlots    []int32

	// Component partition over dense link indices (see solver.go):
	// union-find arrays, per-link dirty marks consumed by the next
	// solve, and the bridging-removal counter that triggers the
	// amortized partition rebuild.
	ufParent        []int32
	ufSize          []int32
	linkDirty       []bool
	bridgedRemovals int

	// Parallel solver: lazily started worker pool, tuning, cumulative
	// stats, and pre-allocated broadcast tasks.
	parThreshold int
	fixedWorkers int
	pool         *solverPool
	sc           solverCounters
	scanT        scanTask
	compT        compTask

	// pathScratch is reused by AddFlow to resolve a candidate path's
	// links before the flow is committed.
	pathScratch []*linkState

	// completionFn is the shared callback armed for every sized flow's
	// completion event; allocated once so re-arming allocates nothing.
	completionFn func()
	// doneScratch is reused by fireCompletions between recomputes.
	doneScratch []*Flow

	// scr holds the reusable max-min solver buffers (see maxmin.go).
	scr maxminScratch

	// sniffers receive a copy of every transaction record (ihsniff).
	sniffers []func(TxRecord)

	// met holds cached observability handles; nil when unattached.
	met *fabricMetrics
}

// New creates a fabric over the given topology, driven by the engine's
// virtual clock.
func New(topo *topology.Topology, engine *simtime.Engine, cfg Config) *Fabric {
	if cfg.MaxInflation <= 0 {
		cfg.MaxInflation = 40
	}
	if cfg.PCIeEfficiency <= 0 || cfg.PCIeEfficiency > 1 {
		cfg.PCIeEfficiency = 1
	}
	f := &Fabric{
		topo:         topo,
		engine:       engine,
		cfg:          cfg,
		links:        make(map[topology.LinkID]*linkState),
		flows:        make(map[FlowID]*Flow),
		tenantWeight: make(map[TenantID]float64),
		tenantSlots:  make(map[TenantID]int32),
		parThreshold: defaultParallelThreshold,
	}
	for _, l := range topo.Links() {
		cap := l.Capacity
		if l.Class == topology.ClassPCIeUp || l.Class == topology.ClassPCIeDown {
			cap = topology.Rate(float64(cap) * cfg.PCIeEfficiency)
		}
		var inbound *topology.Component
		if to := topo.Component(l.To); to != nil && to.Kind == topology.KindRootPort {
			if from := topo.Component(l.From); from != nil && from.Kind != topology.KindLLC {
				inbound = to
			}
		}
		f.links[l.ID] = &linkState{
			inboundRootPort: inbound,
			link:            l,
			capacity:        cap,
			caps:            make(map[TenantID]topology.Rate),
			lastUpdate:      engine.Now(),
		}
	}
	f.linkList = make([]*linkState, 0, len(f.links))
	for _, ls := range f.links {
		f.linkList = append(f.linkList, ls)
	}
	slices.SortFunc(f.linkList, func(a, b *linkState) int {
		return cmp.Compare(a.link.ID, b.link.ID)
	})
	for i, ls := range f.linkList {
		ls.idx = i
	}
	f.ufParent = make([]int32, len(f.linkList))
	f.ufSize = make([]int32, len(f.linkList))
	f.linkDirty = make([]bool, len(f.linkList))
	f.resetPartition()
	f.completionFn = func() {
		f.dirty = true
		f.recomputeIfDirty()
	}
	return f
}

// Topology returns the underlying (immutable) topology.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Engine returns the virtual-time engine driving this fabric.
func (f *Fabric) Engine() *simtime.Engine { return f.engine }

// Config returns the fabric's behavioural configuration.
func (f *Fabric) Config() Config { return f.cfg }

func (f *Fabric) state(id topology.LinkID) (*linkState, error) {
	ls, ok := f.links[id]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown link %q", id)
	}
	return ls, nil
}

// tenantSlot returns the tenant's dense accounting slot, assigning one
// on first use. Slots are never reclaimed: the per-link byte arrays
// they index are append-only accumulators.
func (f *Fabric) tenantSlot(t TenantID) int32 {
	if s, ok := f.tenantSlots[t]; ok {
		return s
	}
	s := int32(len(f.tenantList))
	f.tenantSlots[t] = s
	f.tenantList = append(f.tenantList, t)
	return s
}

// sortedLinkStates returns link states ordered by link ID for
// deterministic iteration. The list is built once at construction (the
// topology is immutable) and must not be mutated by callers.
func (f *Fabric) sortedLinkStates() []*linkState { return f.linkList }

// Utilization returns the link's current utilization in [0,1]: the sum
// of allocated flow rates divided by effective capacity. Failed links
// report 1.
func (f *Fabric) Utilization(id topology.LinkID) (float64, error) {
	ls, err := f.state(id)
	if err != nil {
		return 0, err
	}
	f.recomputeIfDirty()
	if ls.failed {
		return 1, nil
	}
	if ls.capacity <= 0 {
		return 0, nil
	}
	u := float64(ls.currentRate) / float64(ls.capacity)
	return math.Min(u, 1), nil
}

// EffectiveCapacity returns the link's capacity after protocol derating
// and any injected degradation.
func (f *Fabric) EffectiveCapacity(id topology.LinkID) (topology.Rate, error) {
	ls, err := f.state(id)
	if err != nil {
		return 0, err
	}
	return ls.capacity, nil
}

// hopLatency returns the congestion-inflated one-way latency of a link
// at its current utilization.
func (f *Fabric) hopLatency(ls *linkState) simtime.Duration {
	base := ls.link.BaseLatency + ls.extraLatency
	if ls.inboundRootPort != nil && f.cfg.IOMMULatency > 0 {
		if v, ok := ls.inboundRootPort.ConfigValue(topology.ConfigIOMMU); ok && v == "translate" {
			base += f.cfg.IOMMULatency
		}
	}
	if f.cfg.QueueingFactor <= 0 {
		return base
	}
	var rho float64
	if ls.capacity > 0 {
		rho = math.Min(float64(ls.currentRate)/float64(ls.capacity), 0.999)
	}
	infl := 1 + f.cfg.QueueingFactor*rho/(1-rho)
	if infl > f.cfg.MaxInflation {
		infl = f.cfg.MaxInflation
	}
	return simtime.Duration(float64(base) * infl)
}

// PathLatency returns the current one-way latency along path for a
// negligible-size message, including congestion inflation on every hop.
// It returns an error containing the first failed link, if any.
func (f *Fabric) PathLatency(p topology.Path) (simtime.Duration, error) {
	f.recomputeIfDirty()
	var sum simtime.Duration
	for _, l := range p.Links {
		ls, err := f.state(l.ID)
		if err != nil {
			return 0, err
		}
		if ls.failed {
			return 0, fmt.Errorf("fabric: link %s failed", l.ID)
		}
		sum += f.hopLatency(ls)
	}
	return sum, nil
}
