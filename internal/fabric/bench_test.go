package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchPaths returns a deterministic set of shortest paths between
// random distinct endpoint pairs of the topology.
func benchPaths(b *testing.B, topo *topology.Topology, seed int64, n int) []topology.Path {
	b.Helper()
	eps := topo.Endpoints()
	rng := rand.New(rand.NewSource(seed))
	out := make([]topology.Path, 0, n)
	for len(out) < n {
		src := eps[rng.Intn(len(eps))].ID
		dst := eps[rng.Intn(len(eps))].ID
		if src == dst {
			continue
		}
		p, err := topo.ShortestPath(src, dst)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

var benchTenants = []TenantID{"a", "b", "c", "d"}

// benchPopulate installs n background flows: persistent, with a demand
// on every fourth flow so the max-min filling has both link and demand
// bottlenecks to work through.
func benchPopulate(b *testing.B, f *Fabric, paths []topology.Path, n int) []*Flow {
	b.Helper()
	flows := make([]*Flow, n)
	f.Batch(func() {
		for i := 0; i < n; i++ {
			fl := &Flow{
				Tenant: benchTenants[i%len(benchTenants)],
				Path:   paths[i%len(paths)],
				Weight: float64(1 + i%3),
			}
			if i%4 == 0 {
				fl.Demand = topology.Gbps(float64(1 + i%16))
			}
			if err := f.AddFlow(fl); err != nil {
				b.Fatal(err)
			}
			flows[i] = fl
		}
	})
	return flows
}

// BenchmarkFabricFlowChurn measures the full per-event cost of flow
// churn against n resident flows: each iteration removes one resident,
// installs a sized replacement, and advances virtual time far enough
// for the transfer to complete — so one op covers add, recompute,
// completion scheduling, completion, and removal.
func BenchmarkFabricFlowChurn(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			engine := simtime.NewEngine(1)
			topo := topology.DGXStyle()
			f := New(topo, engine, DefaultConfig())
			paths := benchPaths(b, topo, 42, 64)
			ring := benchPopulate(b, f, paths, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % n
				f.RemoveFlow(ring[slot])
				fl := &Flow{
					Tenant:     benchTenants[i%len(benchTenants)],
					Path:       paths[(i*7)%len(paths)],
					Size:       4096,
					OnComplete: func(simtime.Time) {},
				}
				if err := f.AddFlow(fl); err != nil {
					b.Fatal(err)
				}
				ring[slot] = fl
				engine.RunFor(100 * simtime.Microsecond)
			}
		})
	}
}

// islandTopology builds a connected topology of n three-node islands
// (src — switch — dst) joined by spine links that no benchmark flow
// ever crosses: flows stay within their island, so the fabric's
// constraint graph partitions into n independent components even
// though the topology itself is connected.
func islandTopology(n int) *topology.Topology {
	t := topology.New("islands")
	for i := 0; i < n; i++ {
		src := topology.CompID(fmt.Sprintf("src%d", i))
		sw := topology.CompID(fmt.Sprintf("sw%d", i))
		dst := topology.CompID(fmt.Sprintf("dst%d", i))
		t.MustAddComponent(src, topology.KindGPU, i)
		t.MustAddComponent(sw, topology.KindPCIeSwitch, i)
		t.MustAddComponent(dst, topology.KindGPU, i)
		t.MustAddLink(topology.LinkSpec{A: src, B: sw, Class: topology.ClassPCIeDown,
			Capacity: topology.Gbps(200), BaseLatency: simtime.Microsecond})
		t.MustAddLink(topology.LinkSpec{A: sw, B: dst, Class: topology.ClassPCIeDown,
			Capacity: topology.Gbps(200), BaseLatency: simtime.Microsecond})
		if i > 0 {
			prev := topology.CompID(fmt.Sprintf("sw%d", i-1))
			t.MustAddLink(topology.LinkSpec{A: prev, B: sw, Class: topology.ClassInterHost,
				Capacity: topology.Gbps(400), BaseLatency: simtime.Microsecond})
		}
	}
	return t
}

// benchIslands installs flowsPer flows on each of n islands and
// returns the populated fabric.
func benchIslands(b *testing.B, n, flowsPer int) (*simtime.Engine, *Fabric) {
	b.Helper()
	engine := simtime.NewEngine(1)
	topo := islandTopology(n)
	f := New(topo, engine, DefaultConfig())
	f.Batch(func() {
		for i := 0; i < n; i++ {
			src := topology.CompID(fmt.Sprintf("src%d", i))
			dst := topology.CompID(fmt.Sprintf("dst%d", i))
			p, err := topo.ShortestPath(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < flowsPer; j++ {
				fl := &Flow{
					Tenant: benchTenants[j%len(benchTenants)],
					Path:   p,
					Weight: float64(1 + j%3),
				}
				if j%4 == 0 {
					fl.Demand = topology.Gbps(float64(1 + j%16))
				}
				if err := f.AddFlow(fl); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return engine, f
}

// BenchmarkFabricComponentSolve measures a full re-solve of a fabric
// whose constraint graph splits into 64 independent components
// (islandTopology), serial against the forced-parallel worker pool.
// On a single-core host the parallel flavor measures the coordination
// overhead; with cores available it measures the speedup.
func BenchmarkFabricComponentSolve(b *testing.B) {
	const islands, flowsPer = 64, 256
	run := func(b *testing.B, workers, threshold int) {
		_, f := benchIslands(b, islands, flowsPer)
		f.SetSolverTuning(threshold, workers)
		defer f.StopSolver()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.markAllLinksDirty()
			f.dirty = true
			f.recomputeIfDirty()
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, 1<<30) })
	b.Run("parallel", func(b *testing.B) { run(b, 4, 1) })
}

// BenchmarkFabricRecomputeSteadyState measures one demand-update →
// recompute cycle at 1k resident flows with no churn: the structure of
// the constraint system is unchanged between iterations, so this is
// the path the arbiter's control loop pays on every adjustment round.
// The CI alloc budget pins this benchmark at zero allocations per op.
func BenchmarkFabricRecomputeSteadyState(b *testing.B) {
	engine := simtime.NewEngine(1)
	topo := topology.DGXStyle()
	f := New(topo, engine, DefaultConfig())
	paths := benchPaths(b, topo, 42, 64)
	flows := benchPopulate(b, f, paths, 1000)
	// Every flow carries a demand so demand updates never toggle a
	// constraint in or out of existence.
	for i, fl := range flows {
		if err := f.SetDemand(fl, topology.Gbps(float64(2+i%10))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl := flows[i%len(flows)]
		d := topology.Gbps(float64(2 + (i+1)%10))
		if err := f.SetDemand(fl, d); err != nil {
			b.Fatal(err)
		}
	}
}
