package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchPaths returns a deterministic set of shortest paths between
// random distinct endpoint pairs of the topology.
func benchPaths(b *testing.B, topo *topology.Topology, seed int64, n int) []topology.Path {
	b.Helper()
	eps := topo.Endpoints()
	rng := rand.New(rand.NewSource(seed))
	out := make([]topology.Path, 0, n)
	for len(out) < n {
		src := eps[rng.Intn(len(eps))].ID
		dst := eps[rng.Intn(len(eps))].ID
		if src == dst {
			continue
		}
		p, err := topo.ShortestPath(src, dst)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

var benchTenants = []TenantID{"a", "b", "c", "d"}

// benchPopulate installs n background flows: persistent, with a demand
// on every fourth flow so the max-min filling has both link and demand
// bottlenecks to work through.
func benchPopulate(b *testing.B, f *Fabric, paths []topology.Path, n int) []*Flow {
	b.Helper()
	flows := make([]*Flow, n)
	f.Batch(func() {
		for i := 0; i < n; i++ {
			fl := &Flow{
				Tenant: benchTenants[i%len(benchTenants)],
				Path:   paths[i%len(paths)],
				Weight: float64(1 + i%3),
			}
			if i%4 == 0 {
				fl.Demand = topology.Gbps(float64(1 + i%16))
			}
			if err := f.AddFlow(fl); err != nil {
				b.Fatal(err)
			}
			flows[i] = fl
		}
	})
	return flows
}

// BenchmarkFabricFlowChurn measures the full per-event cost of flow
// churn against n resident flows: each iteration removes one resident,
// installs a sized replacement, and advances virtual time far enough
// for the transfer to complete — so one op covers add, recompute,
// completion scheduling, completion, and removal.
func BenchmarkFabricFlowChurn(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			engine := simtime.NewEngine(1)
			topo := topology.DGXStyle()
			f := New(topo, engine, DefaultConfig())
			paths := benchPaths(b, topo, 42, 64)
			ring := benchPopulate(b, f, paths, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % n
				f.RemoveFlow(ring[slot])
				fl := &Flow{
					Tenant:     benchTenants[i%len(benchTenants)],
					Path:       paths[(i*7)%len(paths)],
					Size:       4096,
					OnComplete: func(simtime.Time) {},
				}
				if err := f.AddFlow(fl); err != nil {
					b.Fatal(err)
				}
				ring[slot] = fl
				engine.RunFor(100 * simtime.Microsecond)
			}
		})
	}
}

// BenchmarkFabricRecomputeSteadyState measures one demand-update →
// recompute cycle at 1k resident flows with no churn: the structure of
// the constraint system is unchanged between iterations, so this is
// the path the arbiter's control loop pays on every adjustment round.
// The CI alloc budget pins this benchmark at zero allocations per op.
func BenchmarkFabricRecomputeSteadyState(b *testing.B) {
	engine := simtime.NewEngine(1)
	topo := topology.DGXStyle()
	f := New(topo, engine, DefaultConfig())
	paths := benchPaths(b, topo, 42, 64)
	flows := benchPopulate(b, f, paths, 1000)
	// Every flow carries a demand so demand updates never toggle a
	// constraint in or out of existence.
	for i, fl := range flows {
		if err := f.SetDemand(fl, topology.Gbps(float64(2+i%10))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl := flows[i%len(flows)]
		d := topology.Gbps(float64(2 + (i+1)%10))
		if err := f.SetDemand(fl, d); err != nil {
			b.Fatal(err)
		}
	}
}
