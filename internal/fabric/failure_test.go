package fabric

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// countEvents returns how many retained trace events have the kind.
func countEvents(tr *obs.Tracer, kind obs.EventKind) int {
	n := 0
	for _, ev := range tr.Snapshot() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestRestoreLinkEmitsObs is the regression test for the asymmetry
// where FailLink and DegradeLink were observable but RestoreLink was
// silent: a restore must increment the restore counter and emit a
// link-restore trace event, for both the failure and the degradation
// recovery edges.
func TestRestoreLinkEmitsObs(t *testing.T) {
	f, _, p := newLineFabric()
	o := obs.New(64)
	f.SetObs(o)
	restores := o.Registry.Counter("ihnet_fabric_link_restores_total", "")
	link := p.Links[0].ID

	if err := f.FailLink(link); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreLink(link); err != nil {
		t.Fatal(err)
	}
	if got := restores.Value(); got != 1 {
		t.Fatalf("restore counter after fail+restore = %d, want 1", got)
	}
	if got := countEvents(o.Tracer, obs.KindLinkRestore); got != 1 {
		t.Fatalf("link-restore trace events = %d, want 1", got)
	}

	if err := f.DegradeLink(link, 0.3, 50); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreLink(link); err != nil {
		t.Fatal(err)
	}
	if got := restores.Value(); got != 2 {
		t.Fatalf("restore counter after degrade+restore = %d, want 2", got)
	}
	if got := countEvents(o.Tracer, obs.KindLinkRestore); got != 2 {
		t.Fatalf("link-restore trace events = %d, want 2", got)
	}
}

// TestRestoreLinkHealthyIsNoop: restoring an already-healthy link must
// not count as a recovery — no metric, no trace event (FailLink has
// the same transition guard; restore now mirrors it).
func TestRestoreLinkHealthyIsNoop(t *testing.T) {
	f, _, p := newLineFabric()
	o := obs.New(64)
	f.SetObs(o)
	restores := o.Registry.Counter("ihnet_fabric_link_restores_total", "")

	if err := f.RestoreLink(p.Links[0].ID); err != nil {
		t.Fatal(err)
	}
	if got := restores.Value(); got != 0 {
		t.Fatalf("restore counter after healthy restore = %d, want 0", got)
	}
	if got := countEvents(o.Tracer, obs.KindLinkRestore); got != 0 {
		t.Fatalf("link-restore trace events = %d, want 0", got)
	}
}

// TestRestoreLinkPreservesConfigKnobs pins the contract between
// RestoreLink's capacity recompute and the component config knobs: a
// knob changed while the link is degraded (here iommu=translate on a
// root port, which adds latency dynamically per traversal) must
// survive the restore — RestoreLink recomputes capacity from the
// static protocol derating only and must neither clobber the new knob
// value nor resurrect the degradation.
func TestRestoreLinkPreservesConfigKnobs(t *testing.T) {
	e := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	f := New(topo, e, DefaultConfig())
	p, err := topo.ShortestPath("nic0", "gpu0")
	if err != nil {
		t.Fatal(err)
	}
	link := p.Links[0].ID
	base, err := f.EffectiveCapacity(link)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a component with config to drift mid-degradation.
	var comp *topology.Component
	for _, c := range topo.Components() {
		if len(c.Config) > 0 {
			comp = c
			break
		}
	}
	if comp == nil {
		t.Fatal("no configured component in preset")
	}

	if err := f.DegradeLink(link, 0.5, 2*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.EffectiveCapacity(link); float64(got) > 0.51*float64(base) {
		t.Fatalf("degraded capacity %v, want about half of %v", got, base)
	}
	comp.SetConfig(topology.ConfigIOMMU, "translate")

	if err := f.RestoreLink(link); err != nil {
		t.Fatal(err)
	}
	if got := comp.Config[topology.ConfigIOMMU]; got != "translate" {
		t.Fatalf("config knob after restore = %q, want %q (clobbered)", got, "translate")
	}
	if got, _ := f.EffectiveCapacity(link); got != base {
		t.Fatalf("restored capacity %v, want base %v", got, base)
	}
	if frac, extra := f.LinkDegraded(link); frac != 0 || extra != 0 {
		t.Fatalf("degradation resurrected: frac=%v extra=%v", frac, extra)
	}
	if f.LinkFailed(link) {
		t.Fatal("link failed after restore")
	}
}
