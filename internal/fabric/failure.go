package fabric

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// FailLink takes one directed link hard down: flows crossing it drop
// to zero rate and probes across it are lost. The paper's anomaly
// platform must detect and localize such failures.
func (f *Fabric) FailLink(id topology.LinkID) error {
	ls, err := f.state(id)
	if err != nil {
		return err
	}
	if !ls.failed {
		ls.failed = true
		f.markLinkDirty(ls)
		if f.met != nil {
			f.met.linkFails.Inc()
			if f.met.tracer.Enabled() {
				f.met.tracer.Emit(obs.Event{
					Kind: obs.KindLinkFail, Virtual: f.engine.Now(),
					Subject: string(id),
				})
			}
		}
		f.markDirty()
	}
	return nil
}

// RestoreLink clears a failure and any degradation on a directed link.
// Restoring a healthy link is a no-op: no state change, no metric, no
// trace event — mirroring FailLink's transition guard, so restore
// counts and the trace timeline record actual recoveries only.
func (f *Fabric) RestoreLink(id topology.LinkID) error {
	ls, err := f.state(id)
	if err != nil {
		return err
	}
	if !ls.failed && ls.degradeFrac == 0 && ls.extraLatency == 0 {
		return nil
	}
	ls.failed = false
	ls.degradeFrac = 0
	ls.extraLatency = 0
	ls.capacity = f.baseEffectiveCapacity(ls.link)
	f.markLinkDirty(ls)
	if f.met != nil {
		f.met.linkRestores.Inc()
		if f.met.tracer.Enabled() {
			f.met.tracer.Emit(obs.Event{
				Kind: obs.KindLinkRestore, Virtual: f.engine.Now(),
				Subject: string(id),
			})
		}
	}
	f.markDirty()
	return nil
}

// DegradeLink silently degrades a directed link: capacity is reduced
// by lossFrac (0..1) and extraLatency is added to each traversal. This
// models the paper's motivating anomaly — "a hardware failure occurring
// on the PCIe switch may silently cause the connected PCIe device to
// suffer performance degradation" — which raw counters cannot localize.
func (f *Fabric) DegradeLink(id topology.LinkID, lossFrac float64, extraLatency simtime.Duration) error {
	ls, err := f.state(id)
	if err != nil {
		return err
	}
	if lossFrac < 0 || lossFrac >= 1 {
		return fmt.Errorf("fabric: degradation fraction %v outside [0,1)", lossFrac)
	}
	if extraLatency < 0 {
		return fmt.Errorf("fabric: negative extra latency")
	}
	ls.degradeFrac = lossFrac
	ls.extraLatency = extraLatency
	ls.capacity = topology.Rate(float64(f.baseEffectiveCapacity(ls.link)) * (1 - lossFrac))
	f.markLinkDirty(ls)
	if f.met != nil {
		f.met.linkDegrades.Inc()
		if f.met.tracer.Enabled() {
			f.met.tracer.Emit(obs.Event{
				Kind: obs.KindLinkDegrade, Virtual: f.engine.Now(),
				Subject: string(id), Value: lossFrac,
				Detail: "extra latency " + extraLatency.String(),
			})
		}
	}
	f.markDirty()
	return nil
}

// baseEffectiveCapacity is raw link capacity after protocol derating
// but before degradation.
func (f *Fabric) baseEffectiveCapacity(l *topology.Link) topology.Rate {
	cap := l.Capacity
	if l.Class == topology.ClassPCIeUp || l.Class == topology.ClassPCIeDown {
		cap = topology.Rate(float64(cap) * f.cfg.PCIeEfficiency)
	}
	return cap
}

// LinkFailed reports whether a directed link is hard down.
func (f *Fabric) LinkFailed(id topology.LinkID) bool {
	ls, err := f.state(id)
	return err == nil && ls.failed
}

// LinkDegraded returns the degradation fraction and injected latency
// of a link (zero values when healthy).
func (f *Fabric) LinkDegraded(id topology.LinkID) (float64, simtime.Duration) {
	ls, err := f.state(id)
	if err != nil {
		return 0, 0
	}
	return ls.degradeFrac, ls.extraLatency
}

// UnhealthyLinks returns the sorted IDs of links that are failed or
// degraded. Used by tests and by experiment harnesses to compare
// detector output with ground truth. linkList is ID-ordered, so the
// result is sorted by construction.
func (f *Fabric) UnhealthyLinks() []topology.LinkID {
	var out []topology.LinkID
	for _, ls := range f.linkList {
		if ls.failed || ls.degradeFrac > 0 || ls.extraLatency > 0 {
			out = append(out, ls.link.ID)
		}
	}
	return out
}
