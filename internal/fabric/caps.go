package fabric

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// SetTenantCap installs a hard rate cap for one tenant on one directed
// link: the tenant's flows on that link will collectively never exceed
// the cap. This is the arbiter's enforcement primitive — the software
// analogue of per-tenant throttling in a programmable fabric (§3.2 Q2
// of the paper). A zero cap blocks the tenant on the link entirely.
func (f *Fabric) SetTenantCap(link topology.LinkID, tenant TenantID, cap topology.Rate) error {
	ls, err := f.state(link)
	if err != nil {
		return err
	}
	if cap < 0 {
		return fmt.Errorf("fabric: negative cap for %s on %s", tenant, link)
	}
	if _, existed := ls.caps[tenant]; !existed {
		// A new (link, tenant) cap adds a constraint; a value change on
		// an existing one is refreshed in place by computeRates.
		f.scr.consValid = false
	}
	ls.caps[tenant] = cap
	f.markLinkDirty(ls)
	f.markDirty()
	return nil
}

// ClearTenantCap removes a tenant's cap on a link, returning the
// tenant to unrestricted fair sharing there.
func (f *Fabric) ClearTenantCap(link topology.LinkID, tenant TenantID) error {
	ls, err := f.state(link)
	if err != nil {
		return err
	}
	if _, ok := ls.caps[tenant]; ok {
		delete(ls.caps, tenant)
		f.scr.consValid = false
		f.markLinkDirty(ls)
		f.markDirty()
	}
	return nil
}

// TenantCap returns the tenant's cap on a link and whether one is set.
func (f *Fabric) TenantCap(link topology.LinkID, tenant TenantID) (topology.Rate, bool) {
	ls, err := f.state(link)
	if err != nil {
		return 0, false
	}
	c, ok := ls.caps[tenant]
	return c, ok
}

// ClearAllCaps removes every per-tenant cap on every link.
func (f *Fabric) ClearAllCaps() {
	changed := false
	for _, ls := range f.linkList {
		if len(ls.caps) > 0 {
			ls.caps = make(map[TenantID]topology.Rate)
			changed = true
		}
	}
	if changed {
		f.scr.consValid = false
		f.markAllLinksDirty()
		f.markDirty()
	}
}

// SetTenantWeight sets a tenant's global weight multiplier for
// weighted max-min sharing. Weights scale every flow of the tenant;
// the default is 1. Non-positive weights are rejected.
func (f *Fabric) SetTenantWeight(tenant TenantID, w float64) error {
	if w <= 0 {
		return fmt.Errorf("fabric: non-positive tenant weight %v", w)
	}
	f.tenantWeight[tenant] = w
	// Effective weights are cached per flow; refresh the tenant's flows
	// and re-solve everywhere, since the tenant may appear anywhere.
	for _, fl := range f.flowList {
		if fl.Tenant == tenant {
			fl.effW = fl.Weight * w
			f.fill[fl.slot].effW = fl.effW
		}
	}
	f.markAllLinksDirty()
	f.markDirty()
	return nil
}

// TenantWeight returns a tenant's weight (1 if unset).
func (f *Fabric) TenantWeight(tenant TenantID) float64 {
	if w, ok := f.tenantWeight[tenant]; ok {
		return w
	}
	return 1
}

// CapCount returns the total number of installed (link, tenant) caps,
// a measure of arbiter state size.
func (f *Fabric) CapCount() int {
	n := 0
	for _, ls := range f.linkList {
		n += len(ls.caps)
	}
	return n
}

// CapsOn returns the tenants capped on a link, sorted, with their caps.
func (f *Fabric) CapsOn(link topology.LinkID) map[TenantID]topology.Rate {
	ls, err := f.state(link)
	if err != nil || len(ls.caps) == 0 {
		return nil
	}
	out := make(map[TenantID]topology.Rate, len(ls.caps))
	for t, c := range ls.caps {
		out[t] = c
	}
	return out
}

// Tenants returns the sorted set of tenants with at least one active
// flow.
func (f *Fabric) Tenants() []TenantID {
	seen := make(map[TenantID]bool)
	for _, fl := range f.flows {
		seen[fl.Tenant] = true
	}
	out := make([]TenantID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
