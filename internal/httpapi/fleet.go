package httpapi

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/fleet"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/store"
	"repro/internal/topology"
)

// FleetServer is the control plane of a multi-host daemon: one ihnetd
// process managing N simulated hosts, advanced concurrently by the
// fleet runner's epoch barriers. It speaks the same v1 contract as the
// single-host Server — every endpoint under /api/v1/, the typed error
// envelope, legacy /api/... 308 redirects, 499 on client abort — with
// the fleet verbs (place, migrate, rebalance, per-host checkpointing)
// layered on top.
//
// One RWMutex serializes the fleet: the runner is not safe for
// concurrent use, and placement/migration decisions must observe hosts
// parked at an epoch barrier, not mid-advance.
type FleetServer struct {
	mu      sync.RWMutex
	fleet   *fleet.Fleet
	runner  *fleet.ShardedRunner
	reg     *obs.Registry
	rem     *remedy.FleetController // nil when remediation is not wired in
	fstore  *store.FleetStore       // nil when durable persistence is not wired in
	started time.Time
}

// NewFleetServer builds the fleet control plane over the sharded
// engine (one shard degenerates to the classic single-barrier
// runner). A nil cfg.Registry is replaced with a fresh one so
// /metrics always has a surface to serve, and a nil cfg.Bus with a
// fresh fan-in bus so /fleet/events always streams (the shard runners
// wire every host's tracer into it).
func NewFleetServer(f *fleet.Fleet, cfg fleet.ShardConfig) *FleetServer {
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Bus == nil {
		cfg.Bus = obs.NewBus(fleetBusCapacity)
	}
	return &FleetServer{
		fleet:   f,
		runner:  fleet.NewShardedRunner(f, cfg),
		reg:     cfg.Registry,
		started: time.Now(),
	}
}

// fleetBusCapacity sizes the fleet bus's resume ring: N hosts multiply
// the event rate, so retain more than a single host's default.
const fleetBusCapacity = 16384

// SetFleetStore attaches the durable fleet store. The daemon calls it
// once at boot, after every host session has been bootstrapped or
// recovered against its per-host store; the server needs the handle so
// per-host snapshots also persist and /healthz reports occupancy.
func (s *FleetServer) SetFleetStore(fs *store.FleetStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fstore = fs
}

// Fleet returns the underlying fleet (the daemon's shutdown path walks
// it to stop every manager).
func (s *FleetServer) Fleet() *fleet.Fleet { return s.fleet }

// Registry returns the fleet-level metrics registry (epoch timings,
// auth counters) — the one /metrics serves first.
func (s *FleetServer) Registry() *obs.Registry { return s.reg }

// Workers returns the resolved per-shard worker count.
func (s *FleetServer) Workers() int { return s.runner.Workers() }

// Runner returns the sharded runner driving the fleet (so a
// remediation controller built on top can quarantine hosts through it).
func (s *FleetServer) Runner() *fleet.ShardedRunner { return s.runner }

// Advance moves the whole fleet forward by d under the server's lock —
// the daemon's auto-advance loop drives this. With remediation wired
// in, the per-host controllers step once after the outer barrier, in
// host order, exactly as the chaos harness does between epochs; their
// actions mutate host state outside the epoch loop, so every shard's
// roll-up cache is invalidated afterwards.
func (s *FleetServer) Advance(d simtime.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.runner.RunFor(nil, d)
	if s.rem != nil {
		s.rem.StepAll()
		s.runner.MarkAllDirty()
	}
}

// apiRoutes is the fleet daemon's v1 route table. Everything that
// touches simulation state (including "reads" that settle lazy fabric
// accounting, like pressure and usage reports) takes the write lock;
// only healthz, which reads clocks and counts, shares the read lock.
func (s *FleetServer) apiRoutes() []route {
	return []route{
		{"GET", "/fleet/hosts", lockWrite, s.getHosts},
		{"GET", "/fleet/report", lockWrite, s.getFleetReport},
		{"POST", "/fleet/advance", lockWrite, s.postFleetAdvance},
		{"POST", "/fleet/tenants", lockWrite, s.postPlace},
		{"DELETE", "/fleet/tenants/{id}", lockWrite, s.deleteFleetTenant},
		{"POST", "/fleet/tenants/{id}/migrate", lockWrite, s.postMigrate},
		{"POST", "/fleet/rebalance", lockWrite, s.postRebalance},
		{"POST", "/fleet/hosts/{host}/snapshot", lockWrite, s.postHostSnapshot},
		{"GET", "/fleet/fabric/solver", lockWrite, s.getFleetSolver},
		{"GET", "/fleet/hosts/{host}/journal", lockRead, s.getHostJournal},
		// Canonical state fingerprints — what the e2e harness compares
		// across a kill/restart cycle. Write lock: hashing exports
		// state, which settles lazy fabric accounting.
		{"GET", "/fleet/state/hash", lockWrite, s.getFleetStateHash},
		{"GET", "/fleet/hosts/{host}/state/hash", lockWrite, s.getHostStateHash},
		{"GET", "/fleet/shards", lockRead, s.getFleetShards},
		// The observability surface is lockNone: roll-ups read host
		// registries through the same atomics the writers use, and a
		// stalled SSE client must never hold a fleet lock.
		{"GET", "/fleet/metrics/rollup", lockNone, s.getFleetRollup},
		{"GET", "/fleet/events", lockNone, s.getFleetEvents},
		// Closed-loop remediation (unavailable unless the daemon was
		// started with -remedy).
		{"GET", "/fleet/remedy/status", lockRead, s.getFleetRemedyStatus},
		{"GET", "/fleet/remedy/policy", lockRead, s.getFleetRemedyPolicy},
		{"PUT", "/fleet/remedy/policy", lockWrite, s.putFleetRemedyPolicy},
		{"GET", "/healthz", lockRead, s.getFleetHealthz},
	}
}

// Handler returns the fleet mux: the v1 table, legacy redirects, the
// fleet runner's metrics at /metrics, and pprof.
func (s *FleetServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mountRoutes(mux, s.apiRoutes(), s.wrap)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Runner-level metrics first (epoch timings, quarantines), then
		// the fleet roll-up: every host's counters and histograms merged
		// into one scrape, so a 256-host fleet is one Prometheus target.
		_ = s.reg.WritePrometheus(w)
		_ = s.runner.Rollup().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *FleetServer) wrap(lock lockMode, h http.HandlerFunc) http.HandlerFunc {
	switch lock {
	case lockRead:
		return func(w http.ResponseWriter, r *http.Request) {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if err := r.Context().Err(); err != nil {
				writeErr(w, StatusClientClosedRequest, err)
				return
			}
			h(w, r)
		}
	case lockWrite:
		return func(w http.ResponseWriter, r *http.Request) {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := r.Context().Err(); err != nil {
				writeErr(w, StatusClientClosedRequest, err)
				return
			}
			h(w, r)
		}
	}
	return h
}

type fleetHostDTO struct {
	Name          string  `json:"name"`
	VirtualTimeNs int64   `json:"virtual_time_ns"`
	Pressure      float64 `json:"pressure"`
	Tenants       int     `json:"tenants"`
	Detections    int     `json:"detections"`
	Quarantined   string  `json:"quarantined,omitempty"`
}

func (s *FleetServer) hostDTOs() []fleetHostDTO {
	failed := s.runner.Failed()
	out := make([]fleetHostDTO, 0, len(s.fleet.Hosts()))
	for _, h := range s.fleet.Hosts() {
		d := fleetHostDTO{
			Name:          h.Name,
			VirtualTimeNs: int64(h.Mgr.Engine().Now()),
			Pressure:      h.Pressure(),
			Tenants:       len(h.Mgr.Tenants()),
			Detections:    len(h.Mgr.Anomaly().Detections()),
		}
		if err := failed[h.Name]; err != nil {
			d.Quarantined = err.Error()
		}
		out = append(out, d)
	}
	return out
}

func (s *FleetServer) getHosts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hostDTOs())
}

func (s *FleetServer) getFleetReport(w http.ResponseWriter, _ *http.Request) {
	type tenantDTO struct {
		ID   string `json:"id"`
		Host string `json:"host"`
	}
	tenants := []tenantDTO{}
	for _, h := range s.fleet.Hosts() {
		for _, rec := range h.Mgr.Tenants() {
			tenants = append(tenants, tenantDTO{ID: string(rec.ID), Host: h.Name})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"virtual_time_ns": int64(s.runner.Now()),
		"workers":         s.runner.Workers(),
		"shards":          s.runner.Shards(),
		"epoch_ns":        int64(s.runner.Epoch()),
		"hosts":           s.hostDTOs(),
		"tenants":         tenants,
	})
}

// postFleetAdvance advances all live hosts to a shared barrier. The
// request context flows into the runner: a client that disconnects
// aborts the run at the next epoch barrier — the fleet is never left
// mid-epoch — and gets the 499 envelope.
func (s *FleetServer) postFleetAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Micros int64 `json:"micros"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Micros <= 0 || req.Micros > 10_000_000 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("micros must be in (0, 1e7]"))
		return
	}
	rep, err := s.runner.RunFor(r.Context(), simtime.Duration(req.Micros)*simtime.Microsecond)
	if rep.Aborted {
		writeErr(w, StatusClientClosedRequest, err)
		return
	}
	failed := make(map[string]string, len(rep.Failed))
	for name, ferr := range rep.Failed {
		failed[name] = ferr.Error()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"virtual_time_ns": int64(s.runner.Now()),
		"epochs":          rep.Epochs,
		"outer_epochs":    rep.OuterEpochs,
		"hosts_advanced":  rep.HostsAdvanced,
		"failed":          failed,
	})
}

// postPlace admits a tenant on the least-pressured host that accepts
// it — the fleet-level counterpart of POST /api/v1/tenants.
func (s *FleetServer) postPlace(w http.ResponseWriter, r *http.Request) {
	var req admitDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	targets := make([]intent.Target, 0, len(req.Targets))
	for _, t := range req.Targets {
		targets = append(targets, intent.Target{
			Tenant: fabric.TenantID(req.Tenant),
			Src:    topology.CompID(t.Src), Dst: topology.CompID(t.Dst),
			Rate:       topology.Gbps(t.RateGbps),
			MaxLatency: simtime.Duration(t.MaxLatNs),
		})
	}
	view, host, err := s.fleet.Place(fabric.TenantID(req.Tenant), targets)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.runner.MarkDirty(host.Name)
	out := viewDTO{Tenant: string(view.Tenant), Host: host.Name,
		LinksBps: make(map[string]float64)}
	for l, rate := range view.Reservation.Links {
		out.LinksBps[string(l)] = float64(rate)
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *FleetServer) deleteFleetTenant(w http.ResponseWriter, r *http.Request) {
	id := fabric.TenantID(r.PathValue("id"))
	host, err := s.fleet.Evict(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.runner.MarkDirty(host.Name)
	writeJSON(w, http.StatusOK, map[string]string{
		"evicted": string(id), "host": host.Name,
	})
}

// postMigrate re-admits the tenant on the named destination and evicts
// it from its current host — the reconfiguration-free migration the
// paper's virtual abstraction promises.
func (s *FleetServer) postMigrate(w http.ResponseWriter, r *http.Request) {
	id := fabric.TenantID(r.PathValue("id"))
	var req struct {
		Host string `json:"host"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Host == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("migrate needs a destination host"))
		return
	}
	src := s.fleet.Locate(id)
	view, err := s.fleet.Migrate(id, req.Host)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if src != nil {
		s.runner.MarkDirty(src.Name)
	}
	s.runner.MarkDirty(req.Host)
	out := viewDTO{Tenant: string(view.Tenant), Host: req.Host,
		LinksBps: make(map[string]float64)}
	for l, rate := range view.Reservation.Links {
		out.LinksBps[string(l)] = float64(rate)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *FleetServer) postRebalance(w http.ResponseWriter, _ *http.Request) {
	rep := s.fleet.Rebalance()
	s.runner.MarkAllDirty()
	moved := make(map[string]string, len(rep.Moved))
	for tenant, host := range rep.Moved {
		moved[string(tenant)] = host
	}
	failed := make([]string, 0, len(rep.Failed))
	for _, tenant := range rep.Failed {
		failed = append(failed, string(tenant))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"moved": moved, "failed": failed,
	})
}

// postHostSnapshot checkpoints one host of the fleet. Fleet hosts
// booted from -hosts-dir embed their spec document in the session
// config, so the snapshot is self-describing: `ihdiag replay` can
// verify it without the original directory.
func (s *FleetServer) postHostSnapshot(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Host(r.PathValue("host"))
	if h == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown host %q", r.PathValue("host")))
		return
	}
	if h.Sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	if s.fstore != nil {
		hs, err := s.fstore.Host(h.Name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("open host store: %w", err))
			return
		}
		info, err := hs.SaveSnapshot(h.Sess.BuildPayload())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("persist checkpoint: %w", err))
			return
		}
		w.Header().Set("X-Store-Snapshot-Seq", strconv.FormatUint(info.Seq, 10))
		w.Header().Set("X-Store-Chunks-Written", strconv.Itoa(info.ChunksWritten))
		w.Header().Set("X-Store-Chunks-Reused", strconv.Itoa(info.ChunksReused))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", h.Name+"-snapshot.json"))
	if err := h.Sess.Snapshot(w); err != nil {
		fmt.Fprintf(w, "\n{\"error\": %q}\n", err.Error())
	}
	// Snapshot encoding bumps the host's snap metrics.
	s.runner.MarkDirty(h.Name)
}

// getHostStateHash returns one host's canonical state fingerprint.
func (s *FleetServer) getHostStateHash(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Host(r.PathValue("host"))
	if h == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown host %q", r.PathValue("host")))
		return
	}
	out := map[string]any{
		"host":            h.Name,
		"state_hash":      snap.StateHash(h.Mgr),
		"virtual_time_ns": int64(h.Mgr.Engine().Now()),
	}
	if h.Sess != nil {
		out["journal_entries"] = h.Sess.Journal().Len()
	}
	writeJSON(w, http.StatusOK, out)
	// Hashing exports state, which settles accounting metrics.
	s.runner.MarkDirty(h.Name)
}

// getFleetStateHash folds every host's state hash — in host-name order,
// so the digest is stable regardless of placement history — into one
// fleet fingerprint. Two fleets with the same fingerprint are
// byte-identical host by host; the kill/restart e2e compares exactly
// this.
func (s *FleetServer) getFleetStateHash(w http.ResponseWriter, _ *http.Request) {
	hosts := s.fleet.Hosts()
	names := make([]string, 0, len(hosts))
	byName := make(map[string]*fleet.Host, len(hosts))
	for _, h := range hosts {
		names = append(names, h.Name)
		byName[h.Name] = h
	}
	sort.Strings(names)
	perHost := make(map[string]string, len(hosts))
	digest := sha256.New()
	for _, name := range names {
		hash := snap.StateHash(byName[name].Mgr)
		perHost[name] = hash
		fmt.Fprintf(digest, "%s=%s\n", name, hash)
	}
	s.runner.MarkAllDirty()
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet_hash":      "sha256:" + hex.EncodeToString(digest.Sum(nil)),
		"hosts":           len(hosts),
		"virtual_time_ns": int64(s.runner.Now()),
		"host_hashes":     perHost,
	})
}

func (s *FleetServer) getHostJournal(w http.ResponseWriter, r *http.Request) {
	h := s.fleet.Host(r.PathValue("host"))
	if h == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown host %q", r.PathValue("host")))
		return
	}
	if h.Sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j := h.Sess.Journal()
	_ = j.Encode(w)
}

// getFleetRollup serves the merged fleet snapshot as JSON: counters
// summed, gauges last-write-wins with source tags, histograms merged
// bucket-wise with quantile error bounds preserved. The fold is
// hierarchical and cached: only shards that advanced or mutated since
// the last scrape are refolded, so back-to-back scrapes of an idle
// fleet never touch a host registry (see rollup_cache_hits/misses on
// GET /fleet/shards).
func (s *FleetServer) getFleetRollup(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Rollup())
}

// getFleetShards reports the sharded engine's topology and health:
// per-shard host counts, clocks, epoch/advance counters, quarantines,
// and the roll-up cache's hit/miss/refold accounting.
func (s *FleetServer) getFleetShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Stats())
}

// getFleetEvents streams the fleet fan-in bus — every host's events,
// tagged with the originating host, plus the runner's epoch barriers —
// as server-sent events.
func (s *FleetServer) getFleetEvents(w http.ResponseWriter, r *http.Request) {
	streamSSE(w, r, s.runner.Bus())
}

func (s *FleetServer) getFleetHealthz(w http.ResponseWriter, _ *http.Request) {
	failed := s.runner.Failed()
	quarantinedHosts := make([]string, 0, len(failed))
	for name := range failed {
		quarantinedHosts = append(quarantinedHosts, name)
	}
	sort.Strings(quarantinedHosts)
	bus := s.runner.Bus()
	remedyDegraded := s.rem != nil && s.rem.Degraded()
	st := s.runner.Stats()
	subsystems := map[string]any{
		"runner": map[string]any{
			"status":       boolStatus(len(failed) == 0, "ok", "degraded"),
			"workers":      s.runner.Workers(),
			"shards":       s.runner.Shards(),
			"outer_every":  s.runner.OuterEvery(),
			"outer_epochs": st.OuterEpochs,
			"quarantined":  quarantinedHosts,
		},
		"rollup_cache": map[string]any{
			"status": "ok",
			"hits":   st.RollupCacheHits,
			"misses": st.RollupCacheMisses,
		},
		"obs_bus": map[string]any{
			"status":      "ok",
			"subscribers": bus.Subscribers(),
			"published":   bus.Seq(),
			"dropped":     bus.Dropped(),
		},
	}
	if s.rem != nil {
		st := s.rem.Stats()
		subsystems["remedy"] = map[string]any{
			"status":         boolStatus(!remedyDegraded, "ok", "degraded"),
			"open_incidents": st.Open,
			"resolved":       st.Resolved,
		}
	} else {
		subsystems["remedy"] = map[string]any{"status": "disabled"}
	}
	if s.fstore != nil {
		fst := s.fstore.Stats()
		subsystems["store"] = map[string]any{
			"status":            "ok",
			"dir":               fst.Dir,
			"sync":              string(fst.Sync),
			"hosts":             fst.Hosts,
			"wal_records":       fst.WalRecords,
			"wal_segments":      fst.WalSegments,
			"snapshotted_hosts": fst.SnapshottedHosts,
		}
	} else {
		subsystems["store"] = map[string]any{"status": "disabled"}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          boolStatus(len(failed) == 0 && !remedyDegraded, "ok", "degraded"),
		"mode":            "fleet",
		"version":         buildVersion(),
		"go_version":      runtime.Version(),
		"hosts":           len(s.fleet.Hosts()),
		"quarantined":     len(failed),
		"workers":         s.runner.Workers(),
		"shards":          s.runner.Shards(),
		"epoch_ns":        int64(s.runner.Epoch()),
		"uptime_seconds":  time.Since(s.started).Seconds(),
		"virtual_time_ns": int64(s.runner.Now()),
		"subsystems":      subsystems,
	})
}
