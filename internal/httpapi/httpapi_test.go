package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	opts := core.DefaultOptions()
	mgr, err := core.New(topology.TwoSocketServer(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	s := New(mgr)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestTopologyEndpoint(t *testing.T) {
	_, ts := newServer(t)
	var topo struct {
		Name       string `json:"name"`
		Components []any  `json:"components"`
		Links      []any  `json:"links"`
	}
	if code := getJSON(t, ts.URL+"/api/topology", &topo); code != 200 {
		t.Fatalf("status %d", code)
	}
	if topo.Name != "two-socket" || len(topo.Components) != 29 || len(topo.Links) != 58 {
		t.Fatalf("topology DTO: %s, %d comps, %d links", topo.Name, len(topo.Components), len(topo.Links))
	}
}

func TestAdvanceAndReport(t *testing.T) {
	_, ts := newServer(t)
	body := strings.NewReader(`{"micros": 1000}`)
	resp, err := http.Post(ts.URL+"/api/advance", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var adv map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&adv)
	resp.Body.Close()
	if adv["virtual_time_ns"] != int64(simtime.Millisecond) {
		t.Fatalf("virtual time %d, want 1ms", adv["virtual_time_ns"])
	}
	var rep struct {
		VirtualTimeNs int64 `json:"virtual_time_ns"`
		Links         []any `json:"links"`
	}
	if code := getJSON(t, ts.URL+"/api/report", &rep); code != 200 {
		t.Fatalf("report status %d", code)
	}
	if rep.VirtualTimeNs == 0 || len(rep.Links) != 58 {
		t.Fatalf("report: %+v", rep)
	}
	// Bad advance payloads.
	for _, payload := range []string{`{"micros": 0}`, `{"micros": 99999999999}`, `{`} {
		resp, err := http.Post(ts.URL+"/api/advance", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d", payload, resp.StatusCode)
		}
	}
}

func TestTenantLifecycleOverHTTP(t *testing.T) {
	_, ts := newServer(t)
	body := `{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":80}]}`
	resp, err := http.Post(ts.URL+"/api/tenants", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Tenant   string             `json:"tenant"`
		Host     string             `json:"host"`
		LinksBps map[string]float64 `json:"guaranteed_links_bps"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status %d", resp.StatusCode)
	}
	if view.Tenant != "kv" || view.Host != "two-socket" || len(view.LinksBps) == 0 {
		t.Fatalf("view: %+v", view)
	}
	var tenants []struct {
		ID string `json:"id"`
	}
	getJSON(t, ts.URL+"/api/tenants", &tenants)
	if len(tenants) != 1 || tenants[0].ID != "kv" {
		t.Fatalf("tenants: %+v", tenants)
	}
	// Duplicate admission conflicts.
	resp, _ = http.Post(ts.URL+"/api/tenants", "application/json", strings.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate admit status %d", resp.StatusCode)
	}
	// Evict.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/tenants/kv", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict status %d", resp.StatusCode)
	}
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double evict status %d", resp.StatusCode)
	}
}

func TestAdmitRejectedOverHTTP(t *testing.T) {
	_, ts := newServer(t)
	body := `{"tenant":"greedy","targets":[{"src":"gpu0","dst":"nic0","rate_gbps":9999}]}`
	resp, err := http.Post(ts.URL+"/api/tenants", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || e.Error.Code != CodeConflict || e.Error.Message == "" {
		t.Fatalf("status %d, envelope %+v", resp.StatusCode, e)
	}
}

func TestPingAndTraceEndpoints(t *testing.T) {
	_, ts := newServer(t)
	var ping struct {
		Sent  int   `json:"sent"`
		Lost  int   `json:"lost"`
		AvgNs int64 `json:"avg_ns"`
	}
	if code := getJSON(t, ts.URL+"/api/diag/ping?src=gpu0&dst=nic0", &ping); code != 200 {
		t.Fatalf("ping status %d", code)
	}
	if ping.Sent != 10 || ping.Lost != 0 || ping.AvgNs <= 0 {
		t.Fatalf("ping: %+v", ping)
	}
	if code := getJSON(t, ts.URL+"/api/diag/ping?src=gpu0&dst=nowhere", nil); code != http.StatusBadRequest {
		t.Fatalf("bad ping status %d", code)
	}
	var trace struct {
		Path string `json:"path"`
		Hops []struct {
			Link  string `json:"link"`
			RTTNs int64  `json:"rtt_ns"`
		} `json:"hops"`
	}
	if code := getJSON(t, ts.URL+"/api/diag/trace?src=gpu0&dst=socket0.dimm0_0", &trace); code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if len(trace.Hops) == 0 || trace.Path == "" {
		t.Fatalf("trace: %+v", trace)
	}
}

func TestPerfVerifyAndUsageEndpoints(t *testing.T) {
	_, ts := newServer(t)
	// Admit a tenant first.
	body := `{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":80}]}`
	resp, err := http.Post(ts.URL+"/api/tenants", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status %d", resp.StatusCode)
	}
	var perf struct {
		AchievedBps float64 `json:"achieved_bps"`
		Bottleneck  string  `json:"bottleneck"`
	}
	if code := getJSON(t, ts.URL+"/api/diag/perf?src=gpu0&dst=nic1", &perf); code != 200 {
		t.Fatalf("perf status %d", code)
	}
	if perf.AchievedBps <= 0 || perf.Bottleneck == "" {
		t.Fatalf("perf: %+v", perf)
	}
	if code := getJSON(t, ts.URL+"/api/diag/perf?src=gpu0&dst=nowhere", nil); code != http.StatusBadRequest {
		t.Fatalf("bad perf status %d", code)
	}
	var vs []struct {
		Met         bool    `json:"met"`
		AchievedBps float64 `json:"achieved_bps"`
	}
	if code := getJSON(t, ts.URL+"/api/tenants/kv/verify", &vs); code != 200 {
		t.Fatalf("verify status %d", code)
	}
	if len(vs) != 1 || !vs[0].Met {
		t.Fatalf("verify: %+v", vs)
	}
	if code := getJSON(t, ts.URL+"/api/tenants/ghost/verify", nil); code != http.StatusNotFound {
		t.Fatalf("ghost verify status %d", code)
	}
	var usage []struct {
		Link         string  `json:"link"`
		AllocatedBps float64 `json:"allocated_bps"`
	}
	if code := getJSON(t, ts.URL+"/api/tenants/kv/usage", &usage); code != 200 {
		t.Fatalf("usage status %d", code)
	}
	if len(usage) == 0 || usage[0].AllocatedBps != 10e9 {
		t.Fatalf("usage: %+v", usage)
	}
	if code := getJSON(t, ts.URL+"/api/tenants/ghost/usage", nil); code != http.StatusNotFound {
		t.Fatalf("ghost usage status %d", code)
	}
}

func TestDetectionsEndpoint(t *testing.T) {
	s, ts := newServer(t)
	// Calibrate, then break a link and let heartbeats find it.
	s.Advance(2 * simtime.Millisecond)
	s.mu.Lock()
	_ = s.mgr.Fabric().FailLink("pcieswitch0->nic0")
	s.mu.Unlock()
	s.Advance(2 * simtime.Millisecond)
	var dets []struct {
		Pair     string `json:"pair"`
		Lost     bool   `json:"lost"`
		Suspects []struct {
			Link string `json:"link"`
		} `json:"suspects"`
	}
	if code := getJSON(t, ts.URL+"/api/detections", &dets); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(dets) == 0 {
		t.Fatal("no detections after failure")
	}
	if !dets[0].Lost || len(dets[0].Suspects) == 0 {
		t.Fatalf("detection: %+v", dets[0])
	}
}

func TestAlertsEndpoint(t *testing.T) {
	s, ts := newServer(t)
	s.mu.Lock()
	s.mgr.Topology().Component("socket0.llc").SetConfig(topology.ConfigDDIO, "off")
	s.mu.Unlock()
	s.Advance(simtime.Millisecond)
	var alerts []struct {
		Kind string `json:"Kind"`
	}
	if code := getJSON(t, ts.URL+"/api/alerts", &alerts); code != 200 {
		t.Fatalf("status %d", code)
	}
	found := false
	for _, a := range alerts {
		if a.Kind == "config-drift" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no config-drift alert in %+v", alerts)
	}
}

func TestTelemetryEndpoint(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(2 * simtime.Millisecond)
	var out struct {
		Points []struct {
			Link   string  `json:"link"`
			Metric string  `json:"metric"`
			Value  float64 `json:"value"`
		} `json:"points"`
		PointsPerSecond float64 `json:"points_per_second"`
	}
	if code := getJSON(t, ts.URL+"/api/telemetry?metric=util", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Points) == 0 || out.PointsPerSecond <= 0 {
		t.Fatalf("telemetry: %d points, %v pps", len(out.Points), out.PointsPerSecond)
	}
	for _, p := range out.Points {
		if p.Metric != "util" {
			t.Fatalf("metric filter leaked %q", p.Metric)
		}
	}
	// Link filter.
	link := out.Points[0].Link
	var filtered struct {
		Points []struct {
			Link string `json:"link"`
		} `json:"points"`
	}
	getJSON(t, ts.URL+"/api/telemetry?link="+link, &filtered)
	for _, p := range filtered.Points {
		if p.Link != link {
			t.Fatalf("link filter leaked %q", p.Link)
		}
	}
	if code := getJSON(t, ts.URL+"/api/telemetry?since_ns=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since status %d", code)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newServer(t)
	var exp struct {
		ID       string     `json:"id"`
		Rows     [][]string `json:"rows"`
		Rendered string     `json:"rendered"`
	}
	if code := getJSON(t, ts.URL+"/api/experiments/e1", &exp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if exp.ID != "E1" || len(exp.Rows) != 5 || exp.Rendered == "" {
		t.Fatalf("experiment: %+v", exp)
	}
	if code := getJSON(t, ts.URL+"/api/experiments/e99", nil); code != http.StatusNotFound {
		t.Fatalf("unknown experiment status %d", code)
	}
}
