package httpapi

import (
	"crypto/subtle"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/obs"
)

// Bearer-token authentication for the control plane, following the
// GuildNet model: requests present the configured static token in an
// "Authorization: Bearer <token>" header (or "X-API-Token"), and
// requests from loopback are exempt by default — the daemon's own
// host keeps its operator tools working with zero configuration while
// anything crossing the machine boundary must authenticate. Denials
// are 401s in the v1 error envelope and counted on the registry.

// AuthConfig configures the Auth middleware.
type AuthConfig struct {
	// Token is the static bearer token. Empty disables the middleware
	// (Auth returns next unwrapped).
	Token string
	// TrustLoopback exempts requests from 127.0.0.1/::1 from the token
	// requirement. On by default in the daemon; the e2e harness turns
	// it off to exercise real denials from localhost.
	TrustLoopback bool
	// Registry, when set, receives the denial/success counters.
	Registry *obs.Registry
}

// LoadTokenFile reads a bearer token from a file, trimming whitespace
// and trailing newline. An empty file is an error — it would silently
// disable auth.
func LoadTokenFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("httpapi: read token file: %w", err)
	}
	token := strings.TrimSpace(string(data))
	if token == "" {
		return "", fmt.Errorf("httpapi: token file %s is empty", path)
	}
	return token, nil
}

// bearerToken extracts the presented token: "Authorization: Bearer
// <token>" wins, "X-API-Token" is the fallback some clients prefer.
func bearerToken(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return ""
	}
	return r.Header.Get("X-API-Token")
}

// isLoopback reports whether the request arrived from 127.0.0.1/::1.
func isLoopback(r *http.Request) bool {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// Auth wraps a handler with bearer-token authentication. With an empty
// token it is a no-op; otherwise every request must present the token
// or (when TrustLoopback) originate from loopback. Denials get the 401
// envelope and never reach next.
func Auth(next http.Handler, cfg AuthConfig) http.Handler {
	if cfg.Token == "" {
		return next
	}
	var denied, allowed *obs.Counter
	if cfg.Registry != nil {
		denied = cfg.Registry.Counter("ihnet_http_auth_denied_total",
			"Requests rejected with 401 by the bearer-token middleware.")
		allowed = cfg.Registry.Counter("ihnet_http_auth_ok_total",
			"Requests passed by the bearer-token middleware (token or loopback).")
	}
	want := []byte(cfg.Token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok := subtle.ConstantTimeCompare([]byte(bearerToken(r)), want) == 1
		if !ok && cfg.TrustLoopback && isLoopback(r) {
			ok = true
		}
		if !ok {
			if denied != nil {
				denied.Inc()
			}
			w.Header().Set("WWW-Authenticate", `Bearer realm="ihnet"`)
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid bearer token"))
			return
		}
		if allowed != nil {
			allowed.Inc()
		}
		next.ServeHTTP(w, r)
	})
}
