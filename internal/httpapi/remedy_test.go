package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// putJSON issues a PUT with a JSON body and decodes the response.
func putJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRemedyEndpointsDisabled: without SetRemedy every remedy endpoint
// answers 404 with the typed envelope, and healthz reports the
// subsystem as disabled without degrading the daemon.
func TestRemedyEndpointsDisabled(t *testing.T) {
	_, ts := newServer(t)
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/remedy/status", &env); code != http.StatusNotFound {
		t.Fatalf("status endpoint without controller: %d", code)
	}
	if env.Error.Code == "" {
		t.Fatalf("missing error envelope")
	}
	var hz struct {
		Status     string                    `json:"status"`
		Subsystems map[string]map[string]any `json:"subsystems"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/healthz", &hz); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Status != "ok" || hz.Subsystems["remedy"]["status"] != "disabled" {
		t.Fatalf("healthz without controller: %+v", hz)
	}
}

// TestRemedyStatusAndHealthz drives a degrade through a live
// controller over HTTP: healthz flips to degraded while the incident
// is open and returns to ok once the loop heals it, with the repair
// visible in /remedy/status.
func TestRemedyStatusAndHealthz(t *testing.T) {
	opts := core.DefaultOptions()
	sess, err := snap.NewSession(snap.Config{Preset: "two-socket", Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithSession(sess)
	ctrl, err := remedy.New(sess.Manager(), remedy.SessionActuator{Sess: sess},
		remedy.Options{Policy: remedy.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	s.SetRemedy(ctrl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	acfg := opts.Anomaly
	s.Advance(simtime.Duration(acfg.CalibrationRounds+5) * acfg.Period)
	if err := sess.DegradeLink("cpu0->cpu1", 0, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status     string                    `json:"status"`
		Subsystems map[string]map[string]any `json:"subsystems"`
	}
	// Advance one detector period at a time so we observe the window
	// between the incident opening and the loop healing it.
	sawDegraded := false
	for i := 0; i < 10 && !sawDegraded; i++ {
		s.Advance(acfg.Period)
		if code := getJSON(t, ts.URL+"/api/v1/healthz", &hz); code != 200 {
			t.Fatalf("healthz: %d", code)
		}
		sawDegraded = hz.Status == "degraded"
	}
	if !sawDegraded {
		t.Fatalf("healthz never reported degraded during incident: %+v", hz)
	}
	// Let the loop heal and hysteresis confirm.
	for i := 0; i < 40; i++ {
		s.Advance(acfg.Period)
	}
	var st remedyStatusDTO
	if code := getJSON(t, ts.URL+"/api/v1/remedy/status", &st); code != 200 {
		t.Fatalf("remedy status: %d", code)
	}
	if !st.Enabled || st.Degraded || st.Stats.Resolved != 1 || st.MTTRp50Us <= 0 {
		t.Fatalf("remedy status after heal: %+v", st)
	}
	if code := getJSON(t, ts.URL+"/api/v1/healthz", &hz); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Status != "ok" || hz.Subsystems["remedy"]["status"] != "ok" {
		t.Fatalf("healthz after heal: %+v", hz)
	}
}

// TestRemedyPolicyCRUD: read the default policy, replace it, reject a
// bad table.
func TestRemedyPolicyCRUD(t *testing.T) {
	mgr, err := core.New(topology.TwoSocketServer(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	s := New(mgr)
	ctrl, err := remedy.New(mgr, remedy.ManagerActuator{Mgr: mgr},
		remedy.Options{Policy: remedy.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	s.SetRemedy(ctrl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var pol remedy.Policy
	if code := getJSON(t, ts.URL+"/api/v1/remedy/policy", &pol); code != 200 {
		t.Fatalf("get policy: %d", code)
	}
	if len(pol.Rules) == 0 || pol.CooldownUs <= 0 {
		t.Fatalf("default policy over HTTP: %+v", pol)
	}
	pol.CooldownUs = 777
	pol.Rules = []remedy.Rule{{Class: remedy.ClassAny, Actions: []remedy.ActionKind{remedy.ActionRollback}}}
	body, _ := json.Marshal(pol)
	var got remedy.Policy
	if code := putJSON(t, ts.URL+"/api/v1/remedy/policy", string(body), &got); code != 200 {
		t.Fatalf("put policy: %d", code)
	}
	if got.CooldownUs != 777 || len(got.Rules) != 1 {
		t.Fatalf("policy after PUT: %+v", got)
	}
	if ctrl.Policy().CooldownUs != 777 {
		t.Fatalf("controller policy not swapped: %+v", ctrl.Policy())
	}
	if code := putJSON(t, ts.URL+"/api/v1/remedy/policy",
		`{"rules":[{"class":"link-fail","actions":["warp-drive"]}]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad action accepted: %d", code)
	}
	if code := putJSON(t, ts.URL+"/api/v1/remedy/policy", "{not json", nil); code != http.StatusBadRequest {
		t.Fatalf("bad JSON accepted: %d", code)
	}
}

// TestFleetRemedyEndpoints: the fleet surface aggregates per-host
// controllers and policy updates fan out to all of them.
func TestFleetRemedyEndpoints(t *testing.T) {
	s, ts := newFleetServer(t)
	fc, err := remedy.NewFleet(s.Fleet(), nil, remedy.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	s.SetRemedy(fc)

	var st fleetRemedyStatusDTO
	if code := getJSON(t, ts.URL+"/api/v1/fleet/remedy/status", &st); code != 200 {
		t.Fatalf("fleet remedy status: %d", code)
	}
	if !st.Enabled || len(st.Hosts) != 2 {
		t.Fatalf("fleet remedy status: %+v", st)
	}
	pol := remedy.DefaultPolicy()
	pol.HysteresisSteps = 5
	body, _ := json.Marshal(pol)
	var got remedy.Policy
	if code := putJSON(t, ts.URL+"/api/v1/fleet/remedy/policy", string(body), &got); code != 200 {
		t.Fatalf("fleet put policy: %d", code)
	}
	if got.HysteresisSteps != 5 {
		t.Fatalf("fleet policy after PUT: %+v", got)
	}
	for _, name := range fc.Hosts() {
		if fc.Controller(name).Policy().HysteresisSteps != 5 {
			t.Fatalf("host %s policy not fanned out", name)
		}
	}
	var buf bytes.Buffer
	buf.WriteString(`{"rules":[]}`)
	if code := putJSON(t, ts.URL+"/api/v1/fleet/remedy/policy", buf.String(), nil); code != http.StatusBadRequest {
		t.Fatalf("empty rule table accepted: %d", code)
	}
}
