package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snap"
)

func newSessionServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sess, err := snap.NewSession(snap.Config{Preset: "two-socket", Options: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithSession(sess)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSnapshotRestoreOverHTTP drives the full operator story: admit,
// advance, checkpoint, keep going, then roll back to the checkpoint
// and confirm the server is serving the earlier state.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	_, ts := newSessionServer(t)

	if code := postJSON(t, ts.URL+"/api/tenants",
		`{"tenant":"kv","targets":[{"src":"nic0","dst":"socket0.dimm0_0","rate_gbps":40}]}`, nil); code != 201 {
		t.Fatalf("admit status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/advance", `{"micros":500}`, nil); code != 200 {
		t.Fatalf("advance status %d", code)
	}

	resp, err := http.Post(ts.URL+"/api/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, snapBytes)
	}
	p, err := snap.ReadSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("snapshot does not verify: %v", err)
	}
	checkpointNs := p.VirtualTimeNs

	// Move past the checkpoint, then restore back to it.
	if code := postJSON(t, ts.URL+"/api/advance", `{"micros":700}`, nil); code != 200 {
		t.Fatal("advance failed")
	}
	var restored struct {
		Restored      bool   `json:"restored"`
		VirtualTimeNs int64  `json:"virtual_time_ns"`
		StateHash     string `json:"state_hash"`
	}
	resp, err = http.Post(ts.URL+"/api/restore", "application/json", bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !restored.Restored {
		t.Fatalf("restore failed: status %d %+v", resp.StatusCode, restored)
	}
	if restored.VirtualTimeNs != checkpointNs {
		t.Fatalf("restored to t=%d, checkpoint was t=%d", restored.VirtualTimeNs, checkpointNs)
	}
	if restored.StateHash != p.StateHash {
		t.Fatalf("restored hash %s != snapshot hash %s", restored.StateHash, p.StateHash)
	}

	// The restored session serves reads and keeps journaling.
	var tenants []struct {
		ID string `json:"id"`
	}
	if code := getJSON(t, ts.URL+"/api/tenants", &tenants); code != 200 || len(tenants) != 1 || tenants[0].ID != "kv" {
		t.Fatalf("tenants after restore: %+v", tenants)
	}
	var j snap.Journal
	if code := getJSON(t, ts.URL+"/api/journal", &j); code != 200 {
		t.Fatal("journal fetch failed")
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("served journal invalid: %v", err)
	}
	if j.Len() == 0 {
		t.Fatal("served journal empty")
	}
}

// TestRestoreRejectsCorruption: a tampered snapshot must leave the
// live session untouched.
func TestRestoreRejectsCorruption(t *testing.T) {
	srv, ts := newSessionServer(t)
	if code := postJSON(t, ts.URL+"/api/advance", `{"micros":100}`, nil); code != 200 {
		t.Fatal("advance failed")
	}
	before := snap.StateHash(srv.mgr)

	resp, err := http.Post(ts.URL+"/api/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// Corrupt the recorded checksum (still valid JSON, wrong digest).
	bad := bytes.Replace(snapBytes, []byte(`"checksum_sha256": "`), []byte(`"checksum_sha256": "0`), 1)
	if bytes.Equal(bad, snapBytes) {
		t.Fatal("checksum field not found in snapshot")
	}

	resp, err = http.Post(ts.URL+"/api/restore", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupted restore returned %d", resp.StatusCode)
	}
	if got := snap.StateHash(srv.mgr); got != before {
		t.Fatal("failed restore mutated the live session")
	}
}

// TestSnapshotWithoutSession: plain servers 404 the checkpoint
// surface.
func TestSnapshotWithoutSession(t *testing.T) {
	_, ts := newServer(t)
	for _, ep := range []string{"/api/snapshot", "/api/restore"} {
		if code := postJSON(t, ts.URL+ep, "", nil); code != http.StatusNotFound {
			t.Errorf("%s without session: status %d", ep, code)
		}
	}
	if code := getJSON(t, ts.URL+"/api/journal", nil); code != http.StatusNotFound {
		t.Errorf("/api/journal without session: status %d", code)
	}
}

// TestJournaledDiagProbe: diagnostics through a session server land in
// the journal (they advance time and inject traffic).
func TestJournaledDiagProbe(t *testing.T) {
	_, ts := newSessionServer(t)
	if code := getJSON(t, ts.URL+"/api/diag/ping?src=gpu0&dst=socket0.dimm0_0", nil); code != 200 {
		t.Fatalf("ping status %d", code)
	}
	var j snap.Journal
	if code := getJSON(t, ts.URL+"/api/journal", &j); code != 200 {
		t.Fatal("journal fetch failed")
	}
	found := false
	for _, e := range j.Entries {
		if e.Kind == snap.KindPing {
			found = true
		}
	}
	if !found {
		t.Fatalf("ping not journaled: %+v", j.Entries)
	}
}
