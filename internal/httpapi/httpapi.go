// Package httpapi exposes the manageable intra-host network over a
// JSON control plane — the operator-facing surface of the paper's
// vision: inspect the topology, read per-link and per-tenant usage,
// admit and evict tenants (compile -> schedule -> arbitrate), pull
// anomaly detections, and run diagnostics, all against the simulated
// host driven by explicit virtual-time advancement.
//
// Every JSON endpoint lives under the versioned prefix /api/v1/ and
// every non-2xx response carries the single typed error envelope
// {"error":{"code","message"}} (see envelope.go). The pre-v1 paths
// (/api/...) remain as 308 Permanent Redirects to their /api/v1/
// successors — method and body preserved — for one deprecation window;
// DESIGN.md records the removal schedule. Handlers honor
// r.Context(): a client that disconnects mid-operation gets a 499
// envelope instead of a partial body, and long virtual-time advances
// abort between slices.
//
// The simulation engine is single-threaded; an RWMutex serializes the
// handlers — mutating endpoints (and "reads" that settle lazy fabric
// accounting) take the write lock, immutable reads share the read lock
// — and virtual time moves only via POST /api/v1/advance (or the
// daemon's optional auto-advance loop), so API interactions are
// deterministic and replayable.
//
// When the server is built over a snap.Session (NewWithSession), every
// mutating command is journaled, and three more endpoints appear:
// POST /api/v1/snapshot (checkpoint), POST /api/v1/restore (replace
// the live host with one rebuilt from a snapshot), and
// GET /api/v1/journal (the recorded command log, ready for
// `ihdiag replay`).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vnet"
)

// Server wraps a manager with an HTTP control plane.
type Server struct {
	mu      sync.RWMutex
	mgr     *core.Manager
	sess    *snap.Session      // nil when journaling is not wired in
	rem     *remedy.Controller // nil when remediation is not wired in
	store   *store.Store       // nil when durable persistence is not wired in
	started time.Time
}

// New builds a server over a bare manager. Commands are not journaled
// and the snapshot endpoints report an error.
func New(mgr *core.Manager) *Server { return &Server{mgr: mgr, started: time.Now()} }

// NewWithSession builds a server over a recording session: every
// mutating API command lands in the session's journal and the
// snapshot/restore/journal endpoints are live.
func NewWithSession(sess *snap.Session) *Server {
	return &Server{mgr: sess.Manager(), sess: sess, started: time.Now()}
}

// SetStore attaches the durable store backing the session. The daemon
// calls it once at boot after Bootstrap/Recover already bound the
// store to the session as its entry sink; the server needs the handle
// so POST /snapshot also persists a checkpoint, POST /restore rewrites
// the store to match the swapped-in session, and /healthz reports
// store occupancy.
func (s *Server) SetStore(st *store.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st
}

// Manager returns the manager the server is currently backed by. A
// successful POST /api/restore swaps it, so callers holding on to the
// manager across requests (the daemon's shutdown path) must re-read it
// here instead of caching the pointer.
func (s *Server) Manager() *core.Manager {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mgr
}

// Advance moves virtual time forward by d under the server's lock.
// The daemon's auto-advance loop uses it; tests may too. When a
// remediation controller is wired in, each advance is followed by one
// control-loop step — the single-host analogue of the fleet's
// between-epochs stepping.
func (s *Server) Advance(d simtime.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != nil {
		_ = s.sess.Advance(d)
	} else {
		s.mgr.RunFor(d)
	}
	if s.rem != nil {
		s.rem.Step()
	}
}

// apiRoutes is the server's v1 route table: the single source of
// truth for Handler construction and for the route-completeness tests.
// Patterns are paths below APIPrefix.
//
// Lock discipline: lockRead endpoints touch only immutable or
// copy-on-read state. lockWrite endpoints either mutate outright or
// are "reads" that settle lazy fabric accounting (report, usage,
// verify, telemetry). lockNone endpoints (trace events, experiments)
// synchronize on their own and never stall the simulation — a wedged
// simulation never hides the evidence.
func (s *Server) apiRoutes() []route {
	return []route{
		{"GET", "/topology", lockRead, s.getTopology},
		{"GET", "/report", lockWrite, s.getReport},
		{"GET", "/alerts", lockRead, s.getAlerts},
		{"GET", "/detections", lockRead, s.getDetections},
		{"GET", "/tenants", lockRead, s.getTenants},
		{"POST", "/tenants", lockWrite, s.postTenant},
		{"DELETE", "/tenants/{id}", lockWrite, s.deleteTenant},
		{"POST", "/advance", lockWrite, s.postAdvance},
		// Batched mutations: one envelope, one journal entry, one
		// solver settle (journaling required — see batch.go).
		{"POST", "/batch", lockWrite, s.postBatch},
		// Component-solver introspection. Write lock: sizing the live
		// partition path-compresses the union-find.
		{"GET", "/fabric/solver", lockWrite, s.getSolver},
		{"GET", "/diag/ping", lockWrite, s.getPing},
		{"GET", "/diag/trace", lockWrite, s.getTrace},
		{"GET", "/diag/perf", lockWrite, s.getPerf},
		{"GET", "/telemetry", lockWrite, s.getTelemetry},
		{"GET", "/tenants/{id}/verify", lockWrite, s.getVerify},
		{"GET", "/tenants/{id}/usage", lockWrite, s.getTenantUsage},
		{"GET", "/experiments/{id}", lockNone, s.getExperiment},
		// Checkpoint/restore and the command journal (unavailable
		// unless the server was built with NewWithSession). Snapshot
		// takes the write lock: exporting state settles accounting.
		{"POST", "/snapshot", lockWrite, s.postSnapshot},
		{"POST", "/restore", lockWrite, s.postRestore},
		{"GET", "/journal", lockRead, s.getJournal},
		// Canonical state fingerprint — what the e2e harness compares
		// across a kill/restart cycle. Write lock: hashing exports
		// state, which settles lazy fabric accounting.
		{"GET", "/state/hash", lockWrite, s.getStateHash},
		// Closed-loop remediation (unavailable unless the daemon was
		// started with -remedy).
		{"GET", "/remedy/status", lockRead, s.getRemedyStatus},
		{"GET", "/remedy/policy", lockRead, s.getRemedyPolicy},
		{"PUT", "/remedy/policy", lockWrite, s.putRemedyPolicy},
		{"GET", "/trace/events", lockNone, s.getTraceEvents},
		{"GET", "/events", lockNone, s.getEvents},
		{"GET", "/healthz", lockRead, s.getHealthz},
	}
}

// Handler returns the API mux: the v1 table under /api/v1/, legacy
// /api/... 308 redirects, and the unversioned operational surface
// (/metrics, /debug/pprof/) which skips the server lock — the registry
// reads through the same atomics the writers use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mountRoutes(mux, s.apiRoutes(), s.wrap)
	mux.HandleFunc("GET /metrics", s.getMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wrap applies the route's lock mode. Both lock paths re-check the
// request context after acquiring: a client that gave up while queued
// behind a long advance gets the 499 envelope instead of a handler
// run it will never read.
func (s *Server) wrap(lock lockMode, h http.HandlerFunc) http.HandlerFunc {
	switch lock {
	case lockRead:
		return func(w http.ResponseWriter, r *http.Request) {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if err := r.Context().Err(); err != nil {
				writeErr(w, StatusClientClosedRequest, err)
				return
			}
			h(w, r)
		}
	case lockWrite:
		return func(w http.ResponseWriter, r *http.Request) {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := r.Context().Err(); err != nil {
				writeErr(w, StatusClientClosedRequest, err)
				return
			}
			// Root the command span at the request ID: the journal
			// entry this handler records (and every trace event its
			// effects emit) will carry it, joining the access log to
			// the trace.
			if s.sess != nil {
				if id := RequestID(r); id != "" {
					s.sess.SetSpan(id)
				}
			}
			h(w, r)
		}
	}
	return h
}

// DTOs.

type componentDTO struct {
	ID     string            `json:"id"`
	Kind   string            `json:"kind"`
	Socket int               `json:"socket"`
	Config map[string]string `json:"config,omitempty"`
}

type linkDTO struct {
	ID          string  `json:"id"`
	Class       string  `json:"class"`
	FigureRef   int     `json:"figure_ref"`
	CapacityBps float64 `json:"capacity_bps"`
	LatencyNs   int64   `json:"latency_ns"`
}

type topologyDTO struct {
	Name       string         `json:"name"`
	Components []componentDTO `json:"components"`
	Links      []linkDTO      `json:"links"`
}

func (s *Server) getTopology(w http.ResponseWriter, _ *http.Request) {
	topo := s.mgr.Topology()
	out := topologyDTO{Name: topo.Name}
	for _, c := range topo.Components() {
		out.Components = append(out.Components, componentDTO{
			ID: string(c.ID), Kind: c.Kind.String(), Socket: c.Socket, Config: c.Config,
		})
	}
	for _, l := range topo.Links() {
		out.Links = append(out.Links, linkDTO{
			ID: string(l.ID), Class: l.Class.String(), FigureRef: l.Class.FigureRef(),
			CapacityBps: float64(l.Capacity), LatencyNs: int64(l.BaseLatency),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type linkUsageDTO struct {
	ID          string             `json:"id"`
	Utilization float64            `json:"utilization"`
	RateBps     float64            `json:"rate_bps"`
	Failed      bool               `json:"failed,omitempty"`
	TenantBytes map[string]float64 `json:"tenant_bytes,omitempty"`
}

type reportDTO struct {
	VirtualTimeNs int64                         `json:"virtual_time_ns"`
	Links         []linkUsageDTO                `json:"links"`
	Tenants       map[string]map[string]float64 `json:"tenant_usage_bps"`
	Congested     []string                      `json:"congested,omitempty"`
}

func (s *Server) getReport(w http.ResponseWriter, _ *http.Request) {
	rep := s.mgr.Monitor().UsageReport()
	out := reportDTO{
		VirtualTimeNs: int64(rep.At),
		Tenants:       make(map[string]map[string]float64),
	}
	for _, st := range rep.Links {
		lu := linkUsageDTO{
			ID: string(st.Link), Utilization: st.Utilization,
			RateBps: float64(st.CurrentRate), Failed: st.Failed,
		}
		if len(st.TenantBytes) > 0 {
			lu.TenantBytes = make(map[string]float64, len(st.TenantBytes))
			for t, b := range st.TenantBytes {
				lu.TenantBytes[string(t)] = b
			}
		}
		out.Links = append(out.Links, lu)
	}
	for _, tu := range rep.Tenants {
		m := make(map[string]float64)
		for class, r := range tu.ByClass {
			m[class.String()] = float64(r)
		}
		out.Tenants[string(tu.Tenant)] = m
	}
	for _, l := range rep.Congested {
		out.Congested = append(out.Congested, string(l))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getAlerts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Monitor().Alerts())
}

func (s *Server) getDetections(w http.ResponseWriter, _ *http.Request) {
	type suspectDTO struct {
		Link  string  `json:"link"`
		Score float64 `json:"score"`
	}
	type detectionDTO struct {
		AtNs     int64        `json:"at_ns"`
		Pair     string       `json:"pair"`
		Lost     bool         `json:"lost"`
		Suspects []suspectDTO `json:"suspects"`
	}
	var out []detectionDTO
	for _, d := range s.mgr.Anomaly().Detections() {
		dd := detectionDTO{AtNs: int64(d.At), Pair: d.Pair.String(), Lost: d.Lost}
		for _, su := range d.Suspects {
			dd.Suspects = append(dd.Suspects, suspectDTO{Link: string(su.Link), Score: su.Score})
		}
		out = append(out, dd)
	}
	writeJSON(w, http.StatusOK, out)
}

type targetDTO struct {
	Model    string  `json:"model,omitempty"`
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	RateGbps float64 `json:"rate_gbps"`
	MaxLatNs int64   `json:"max_latency_ns,omitempty"`
}

type admitDTO struct {
	Tenant  string      `json:"tenant"`
	Targets []targetDTO `json:"targets"`
}

type viewDTO struct {
	Tenant   string             `json:"tenant"`
	Host     string             `json:"host"`
	LinksBps map[string]float64 `json:"guaranteed_links_bps"`
}

func (s *Server) postTenant(w http.ResponseWriter, r *http.Request) {
	var req admitDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	targets := make([]intent.Target, 0, len(req.Targets))
	for _, t := range req.Targets {
		targets = append(targets, intent.Target{
			Tenant: fabric.TenantID(req.Tenant),
			Src:    topology.CompID(t.Src), Dst: topology.CompID(t.Dst),
			Rate:       topology.Gbps(t.RateGbps),
			MaxLatency: simtime.Duration(t.MaxLatNs),
		})
	}
	var view *vnet.View
	var err error
	if s.sess != nil {
		view, err = s.sess.Admit(req.Tenant, targets)
	} else {
		view, err = s.mgr.Admit(fabric.TenantID(req.Tenant), targets)
	}
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	out := viewDTO{Tenant: string(view.Tenant), Host: view.HostName,
		LinksBps: make(map[string]float64)}
	for l, rate := range view.Reservation.Links {
		out.LinksBps[string(l)] = float64(rate)
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) deleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var err error
	if s.sess != nil {
		err = s.sess.Evict(id)
	} else {
		err = s.mgr.Evict(fabric.TenantID(id))
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

func (s *Server) getTenants(w http.ResponseWriter, _ *http.Request) {
	type tenantDTO struct {
		ID      string   `json:"id"`
		Targets []string `json:"targets"`
	}
	out := []tenantDTO{}
	for _, t := range s.mgr.Tenants() {
		td := tenantDTO{ID: string(t.ID)}
		for _, target := range t.Targets {
			td.Targets = append(td.Targets, target.String())
		}
		out = append(out, td)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) postAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Micros int64 `json:"micros"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Micros <= 0 || req.Micros > 10_000_000 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("micros must be in (0, 1e7]"))
		return
	}
	// Advance in millisecond slices, checking for client cancellation
	// between them: a long advance aborts with the 499 envelope
	// instead of a partial body. Sliced session advances coalesce in
	// the journal, so replay semantics are unchanged.
	total := simtime.Duration(req.Micros) * simtime.Microsecond
	for done := simtime.Duration(0); done < total; {
		if err := r.Context().Err(); err != nil {
			writeErr(w, StatusClientClosedRequest, err)
			return
		}
		step := min(simtime.Millisecond, total-done)
		if s.sess != nil {
			if err := s.sess.Advance(step); err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
		} else {
			s.mgr.RunFor(step)
		}
		done += step
	}
	writeJSON(w, http.StatusOK, map[string]int64{"virtual_time_ns": int64(s.mgr.Engine().Now())})
}

// driveProbe advances virtual time in bounded slices until the probe
// callback fires, aborting between slices when the client goes away.
func (s *Server) driveProbe(r *http.Request, done *bool) error {
	for i := 0; i < 1000 && !*done; i++ {
		if err := r.Context().Err(); err != nil {
			return err
		}
		s.mgr.RunFor(10 * simtime.Microsecond)
	}
	return nil
}

func (s *Server) getPing(w http.ResponseWriter, r *http.Request) {
	src := topology.CompID(r.URL.Query().Get("src"))
	dst := topology.CompID(r.URL.Query().Get("dst"))
	var rep diag.PingReport
	if s.sess != nil {
		var err error
		if rep, err = s.sess.Ping(string(src), string(dst)); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		done := false
		_, err := diag.StartPing(s.mgr.Fabric(), src, dst, diag.DefaultPingOptions(),
			func(pr diag.PingReport) { rep, done = pr, true })
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.driveProbe(r, &done); err != nil {
			writeErr(w, StatusClientClosedRequest, err)
			return
		}
		if !done {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("ping did not complete"))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"report": rep.String(),
		"sent":   rep.Sent,
		"lost":   rep.Lost,
		"avg_ns": int64(rep.Avg),
		"p99_ns": int64(rep.P99),
	})
}

func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	src := topology.CompID(r.URL.Query().Get("src"))
	dst := topology.CompID(r.URL.Query().Get("dst"))
	var rep diag.TraceReport
	if s.sess != nil {
		var err error
		if rep, err = s.sess.Trace(string(src), string(dst)); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		done := false
		_, err := diag.StartTrace(s.mgr.Fabric(), src, dst, 64,
			func(tr diag.TraceReport) { rep, done = tr, true })
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.driveProbe(r, &done); err != nil {
			writeErr(w, StatusClientClosedRequest, err)
			return
		}
		if !done {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("trace did not complete"))
			return
		}
	}
	type hopDTO struct {
		Link  string `json:"link"`
		RTTNs int64  `json:"rtt_ns"`
		HopNs int64  `json:"hop_ns"`
		Lost  bool   `json:"lost,omitempty"`
	}
	hops := make([]hopDTO, 0, len(rep.Hops))
	for _, h := range rep.Hops {
		hops = append(hops, hopDTO{Link: string(h.Link), RTTNs: int64(h.Cumulative),
			HopNs: int64(h.HopLatency), Lost: h.Lost})
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": rep.Path.String(), "hops": hops})
}

func (s *Server) getPerf(w http.ResponseWriter, r *http.Request) {
	src := topology.CompID(r.URL.Query().Get("src"))
	dst := topology.CompID(r.URL.Query().Get("dst"))
	tenant := fabric.TenantID(r.URL.Query().Get("tenant"))
	var rep diag.PerfReport
	if s.sess != nil {
		var err error
		if rep, err = s.sess.Perf(string(src), string(dst), string(tenant)); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		done := false
		_, err := diag.StartPerf(s.mgr.Fabric(), src, dst, diag.PerfOptions{
			Duration: 200 * simtime.Microsecond, Tenant: tenant,
		}, func(pr diag.PerfReport) { rep, done = pr, true })
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.driveProbe(r, &done); err != nil {
			writeErr(w, StatusClientClosedRequest, err)
			return
		}
		if !done {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("perf did not complete"))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"report":            rep.String(),
		"achieved_bps":      float64(rep.Achieved),
		"path_capacity_bps": float64(rep.PathCapacity),
		"bottleneck":        string(rep.BottleneckLink),
	})
}

func (s *Server) getVerify(w http.ResponseWriter, r *http.Request) {
	id := fabric.TenantID(r.PathValue("id"))
	vs, err := s.mgr.VerifyTenant(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type verificationDTO struct {
		Path        string  `json:"path"`
		PromisedBps float64 `json:"promised_bps"`
		AchievedBps float64 `json:"achieved_bps"`
		Met         bool    `json:"met"`
		LatencyNs   int64   `json:"latency_ns"`
		LatencyMet  bool    `json:"latency_met"`
	}
	out := make([]verificationDTO, 0, len(vs))
	for _, v := range vs {
		out = append(out, verificationDTO{
			Path: v.Path.String(), PromisedBps: float64(v.Promised),
			AchievedBps: float64(v.Achieved), Met: v.Met,
			LatencyNs: int64(v.IdleLatency), LatencyMet: v.LatencyMet,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getTenantUsage(w http.ResponseWriter, r *http.Request) {
	id := fabric.TenantID(r.PathValue("id"))
	rec := s.mgr.Tenant(id)
	if rec == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	type usageDTO struct {
		Link         string  `json:"link"`
		AllocatedBps float64 `json:"allocated_bps"`
		UsedBps      float64 `json:"used_bps"`
		Utilization  float64 `json:"utilization"`
	}
	var out []usageDTO
	for _, lu := range rec.View.UsageReport(s.mgr.Fabric()) {
		out = append(out, usageDTO{
			Link: string(lu.Link), AllocatedBps: float64(lu.Allocated),
			UsedBps: float64(lu.Used), Utilization: lu.Utilization,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getTelemetry(w http.ResponseWriter, r *http.Request) {
	pl := s.mgr.Telemetry()
	if pl == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("telemetry pipeline disabled"))
		return
	}
	q := r.URL.Query()
	var since simtime.Time
	if v := q.Get("since_ns"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if n < 0 {
			// Virtual time starts at 0; a negative cutoff is a client
			// bug, not "everything" — same contract as the SSE ?since=
			// resume parameter.
			writeErr(w, http.StatusBadRequest, fmt.Errorf("since_ns must be non-negative, got %d", n))
			return
		}
		since = simtime.Time(n)
	}
	link := topology.LinkID(q.Get("link"))
	metric := telemetry.Metric(q.Get("metric"))
	tenant := fabric.TenantID(q.Get("tenant"))
	type pointDTO struct {
		AtNs   int64   `json:"at_ns"`
		Link   string  `json:"link"`
		Tenant string  `json:"tenant,omitempty"`
		Metric string  `json:"metric"`
		Value  float64 `json:"value"`
	}
	out := []pointDTO{}
	for _, p := range pl.Store().Since(since) {
		if link != "" && p.Link != link {
			continue
		}
		if metric != "" && p.Metric != metric {
			continue
		}
		if tenant != "" && p.Tenant != tenant {
			continue
		}
		out = append(out, pointDTO{
			AtNs: int64(p.At), Link: string(p.Link), Tenant: string(p.Tenant),
			Metric: string(p.Metric), Value: p.Value,
		})
	}
	o := pl.Overhead()
	writeJSON(w, http.StatusOK, map[string]any{
		"points":            out,
		"dropped":           pl.Store().Dropped(),
		"points_per_second": o.PointsPerSecond,
		"spool_bps":         float64(o.SpoolRate),
	})
}

// getMetrics renders the observability registry in Prometheus text
// exposition format. Lock-free with respect to the simulation.
func (s *Server) getMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.mgr.Obs().Registry.WritePrometheus(w)
}

type traceEventDTO struct {
	// BusSeq is the stream position assigned by the fan-out bus (the
	// SSE frame id); zero on plain ring dumps.
	BusSeq    uint64  `json:"bus_seq,omitempty"`
	Seq       uint64  `json:"seq"`
	VirtualNs int64   `json:"virtual_ns"`
	WallNs    int64   `json:"wall_ns"`
	Kind      string  `json:"kind"`
	Subject   string  `json:"subject,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Value     float64 `json:"value,omitempty"`
	WallDurNs int64   `json:"wall_dur_ns,omitempty"`
	// Span is the journaled command this event is an effect of.
	Span string `json:"span,omitempty"`
	// Host is the originating host on fleet streams.
	Host string `json:"host,omitempty"`
}

// getTraceEvents dumps the event ring as JSON, oldest first. Query
// params: kind= filters by event kind name, limit= keeps only the
// newest N matching events.
func (s *Server) getTraceEvents(w http.ResponseWriter, r *http.Request) {
	tr := s.mgr.Obs().Tracer
	q := r.URL.Query()
	var kindFilter obs.EventKind
	if v := q.Get("kind"); v != "" {
		kindFilter = obs.KindByName(v)
		if kindFilter == obs.KindUnknown {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown event kind %q", v))
			return
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	events := tr.Snapshot()
	out := make([]traceEventDTO, 0, len(events))
	for _, ev := range events {
		if kindFilter != obs.KindUnknown && ev.Kind != kindFilter {
			continue
		}
		out = append(out, traceEventDTO{
			Seq: ev.Seq, VirtualNs: int64(ev.Virtual), WallNs: ev.Wall,
			Kind: ev.Kind.String(), Subject: ev.Subject, Detail: ev.Detail,
			Value: ev.Value, WallDurNs: int64(ev.WallDur), Span: ev.Span,
		})
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":  out,
		"total":   tr.Total(),
		"dropped": tr.Dropped(),
	})
}

// getEvents streams the host's live event bus as server-sent events.
// lockNone: the bus synchronizes on its own and a stalled client must
// never hold a server lock. Manager() is re-read (not s.mgr directly)
// because a concurrent restore swaps it.
func (s *Server) getEvents(w http.ResponseWriter, r *http.Request) {
	streamSSE(w, r, s.Manager().Obs().Bus)
}

// buildVersion reports the main module version from build info
// ("(devel)" for tree builds).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// getHealthz reports liveness: build info, uptime, the virtual clock,
// coarse observability counts, and a per-subsystem status map. Runs
// under the server lock because it reads simulation state.
func (s *Server) getHealthz(w http.ResponseWriter, _ *http.Request) {
	o := s.mgr.Obs()
	goVersion := runtime.Version()
	module, vcsRev := "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				vcsRev = kv.Value
			}
		}
	}
	// Degradation roll-up: an alerted heartbeat pair or an open
	// remediation incident flips the top-level status, so `ihctl
	// health` (which exits non-zero on anything but "ok") is a usable
	// fleet-automation probe.
	anomalyAlerted := s.mgr.Anomaly().Alerted()
	remedyDegraded := s.rem != nil && s.rem.Degraded()
	subsystems := map[string]any{
		"fabric": map[string]any{
			"status":       "ok",
			"active_flows": s.mgr.Fabric().Flows(),
		},
		"snap": map[string]any{
			"status":  boolStatus(s.sess != nil, "ok", "disabled"),
			"enabled": s.sess != nil,
		},
		"telemetry": map[string]any{
			"status": boolStatus(s.mgr.Telemetry() != nil, "ok", "disabled"),
		},
		"obs_bus": map[string]any{
			"status":      "ok",
			"subscribers": o.Bus.Subscribers(),
			"published":   o.Bus.Seq(),
			"dropped":     o.Bus.Dropped(),
		},
		"anomaly": map[string]any{
			"status":     boolStatus(!anomalyAlerted, "ok", "degraded"),
			"detections": s.mgr.Anomaly().DetectionCount(),
		},
	}
	if s.rem != nil {
		st := s.rem.Stats()
		subsystems["remedy"] = map[string]any{
			"status":         boolStatus(!remedyDegraded, "ok", "degraded"),
			"open_incidents": st.Open,
			"resolved":       st.Resolved,
		}
	} else {
		subsystems["remedy"] = map[string]any{"status": "disabled"}
	}
	if s.store != nil {
		st := s.store.Stats()
		subsystems["store"] = map[string]any{
			"status":       "ok",
			"dir":          st.Dir,
			"sync":         string(st.Sync),
			"wal_records":  st.WalRecords,
			"wal_segments": st.WalSegments,
			"snapshot_seq": st.SnapshotSeq,
		}
	} else {
		subsystems["store"] = map[string]any{"status": "disabled"}
	}
	if s.sess != nil {
		subsystems["snap"].(map[string]any)["journal_entries"] = s.sess.Journal().Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           boolStatus(!anomalyAlerted && !remedyDegraded, "ok", "degraded"),
		"version":          buildVersion(),
		"go_version":       goVersion,
		"module":           module,
		"vcs_revision":     vcsRev,
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"virtual_time_ns":  int64(s.mgr.Engine().Now()),
		"events_processed": s.mgr.Engine().Processed,
		"metric_count":     o.Registry.MetricCount(),
		"trace_events":     o.Tracer.Total(),
		"trace_dropped":    o.Tracer.Dropped(),
		"active_flows":     s.mgr.Fabric().Flows(),
		"tenants":          len(s.mgr.Tenants()),
		"subsystems":       subsystems,
	})
}

// boolStatus maps a condition to one of two status strings.
func boolStatus(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

// errNoSession is returned by the checkpoint endpoints on servers
// built with New instead of NewWithSession.
var errNoSession = fmt.Errorf("journaling not enabled: server was started without a snap session")

// postSnapshot writes a checkpoint of the live session as the response
// body — a complete ihnet-snapshot document the client can save and
// later POST to /api/restore or feed to `ihdiag replay`.
func (s *Server) postSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	if s.store != nil {
		info, err := s.store.SaveSnapshot(s.sess.BuildPayload())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("persist checkpoint: %w", err))
			return
		}
		w.Header().Set("X-Store-Snapshot-Seq", strconv.FormatUint(info.Seq, 10))
		w.Header().Set("X-Store-Chunks-Written", strconv.Itoa(info.ChunksWritten))
		w.Header().Set("X-Store-Chunks-Reused", strconv.Itoa(info.ChunksReused))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="ihnet-snapshot.json"`)
	if err := s.sess.Snapshot(w); err != nil {
		// Headers are gone; the truncated body will fail checksum
		// verification client-side, which is the protection we want.
		fmt.Fprintf(w, "\n{\"error\": %q}\n", err.Error())
	}
}

// postRestore replaces the live session with one rebuilt from the
// posted snapshot. The swap is atomic under the write lock: until the
// replayed state verifies against the recorded hash, the old session
// keeps serving.
func (s *Server) postRestore(w http.ResponseWriter, r *http.Request) {
	if s.sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	restored, err := snap.Restore(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Rewrite the durable store to match the incoming session before
	// the swap: if the rewrite fails the old session keeps serving and
	// the store still describes it.
	if s.store != nil {
		if err := s.store.Reset(restored.Config(), restored.Journal().Entries); err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("rewrite store: %w", err))
			return
		}
		s.store.Resume(restored)
	}
	s.sess.Manager().Stop()
	s.sess = restored
	s.mgr = restored.Manager()
	writeJSON(w, http.StatusOK, map[string]any{
		"restored":        true,
		"virtual_time_ns": int64(restored.Now()),
		"journal_entries": restored.Journal().Len(),
		"state_hash":      snap.StateHash(restored.Manager()),
	})
}

// getStateHash returns the canonical state fingerprint plus enough
// context (virtual time, journal length, store occupancy) for the e2e
// harness to assert byte-identical recovery after a kill/restart.
func (s *Server) getStateHash(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{
		"state_hash":      snap.StateHash(s.mgr),
		"virtual_time_ns": int64(s.mgr.Engine().Now()),
	}
	if s.sess != nil {
		out["journal_entries"] = s.sess.Journal().Len()
	}
	if s.store != nil {
		st := s.store.Stats()
		out["store_wal_records"] = st.WalRecords
		out["store_snapshot_seq"] = st.SnapshotSeq
	}
	writeJSON(w, http.StatusOK, out)
}

// getJournal serves the recorded command log.
func (s *Server) getJournal(w http.ResponseWriter, _ *http.Request) {
	if s.sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	j := s.sess.Journal()
	w.Header().Set("Content-Type", "application/json")
	_ = j.Encode(w)
}

func (s *Server) getExperiment(w http.ResponseWriter, r *http.Request) {
	id := strings.ToUpper(r.PathValue("id"))
	exp, err := experiments.ByID(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	tab, err := exp.Run(42)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": tab.ID, "title": tab.Title, "columns": tab.Columns,
		"rows": tab.Rows, "notes": tab.Notes, "rendered": tab.Render(),
	})
}
