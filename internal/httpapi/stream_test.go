package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	ID    uint64
	Event string
	Data  traceEventDTO
}

// readSSE consumes frames from an open event stream until n frames
// arrive or the context expires.
func readSSE(t *testing.T, ctx context.Context, url string, header http.Header, n int) []sseFrame {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if len(frames) >= n {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return frames
}

// TestEventsSSEStreaming: the host event stream delivers live trace
// events as they happen, ids are the monotonically increasing bus
// sequence, and ?since=0 replays retained history.
func TestEventsSSEStreaming(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(simtime.Millisecond) // populate the replay ring

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	frames := readSSE(t, ctx, ts.URL+"/api/v1/events?since=0", nil, 10)
	if len(frames) < 10 {
		t.Fatalf("got %d frames, want 10", len(frames))
	}
	for i, f := range frames {
		if f.Data.BusSeq != f.ID {
			t.Errorf("frame %d: data bus_seq %d != SSE id %d", i, f.Data.BusSeq, f.ID)
		}
		if f.Event == "" || f.Data.Kind != f.Event {
			t.Errorf("frame %d: event type %q vs kind %q", i, f.Event, f.Data.Kind)
		}
		if i > 0 && f.ID <= frames[i-1].ID {
			t.Fatalf("SSE ids not increasing: %d after %d", f.ID, frames[i-1].ID)
		}
	}

	// Live delivery: subscribe at the tail, then advance.
	done := make(chan []sseFrame, 1)
	go func() { done <- readSSE(t, ctx, ts.URL+"/api/v1/events", nil, 3) }()
	deadline := time.After(8 * time.Second)
	for {
		select {
		case live := <-done:
			if len(live) < 3 {
				t.Fatalf("live stream delivered %d frames", len(live))
			}
			if live[0].ID <= frames[len(frames)-1].ID {
				t.Errorf("live stream replayed old events: id %d", live[0].ID)
			}
			return
		case <-deadline:
			t.Fatal("live SSE frames never arrived")
		default:
			s.Advance(100 * simtime.Microsecond)
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestEventsSSEResume: reconnecting with Last-Event-ID picks up
// exactly after the last delivered sequence number.
func TestEventsSSEResume(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(simtime.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	first := readSSE(t, ctx, ts.URL+"/api/v1/events?since=0", nil, 5)
	last := first[len(first)-1].ID
	h := http.Header{"Last-Event-ID": []string{fmt.Sprint(last)}}
	resumed := readSSE(t, ctx, ts.URL+"/api/v1/events", h, 5)
	if resumed[0].ID != last+1 {
		t.Fatalf("resume after %d started at %d, want %d", last, resumed[0].ID, last+1)
	}
}

// TestEventsSSEBadParams: malformed resume points and buffer sizes get
// the 400 envelope, not a stream.
func TestEventsSSEBadParams(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(100 * simtime.Microsecond)
	for _, url := range []string{
		ts.URL + "/api/v1/events?since=banana",
		ts.URL + "/api/v1/events?buffer=-1",
		ts.URL + "/api/v1/events?buffer=9999999",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
		decodeEnvelope(t, resp)
	}
}

// TestStalledSSEClientNeverBlocksAdvance is the HTTP face of the
// no-backpressure contract: a subscriber that connects with a tiny
// buffer and never reads must not slow the simulation down. Run under
// -race this also pins down publisher/subscriber memory safety.
func TestStalledSSEClientNeverBlocksAdvance(t *testing.T) {
	s, ts := newServer(t)
	// Open the stream and then never read from it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/v1/events?buffer=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// A stalled subscriber in place, the simulation must keep pace:
	// 50ms of virtual time generates thousands of events into a
	// 4-slot ring.
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.Advance(simtime.Millisecond)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("advances took %v with a stalled subscriber", el)
	}
	// The health endpoint still answers and reports the subscriber.
	var hz struct {
		Subsystems struct {
			ObsBus struct {
				Subscribers int    `json:"subscribers"`
				Published   uint64 `json:"published"`
			} `json:"obs_bus"`
		} `json:"subsystems"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/healthz", &hz); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if hz.Subsystems.ObsBus.Subscribers == 0 {
		t.Error("healthz does not see the SSE subscriber")
	}
	if hz.Subsystems.ObsBus.Published == 0 {
		t.Error("no events published during advances")
	}
}

// TestHealthzSubsystems: the enriched health document carries the
// build version and per-subsystem status, through the legacy redirect
// too.
func TestHealthzSubsystems(t *testing.T) {
	_, ts := newSessionServer(t)
	var out struct {
		Status     string `json:"status"`
		Version    string `json:"version"`
		Subsystems struct {
			Fabric struct {
				Status string `json:"status"`
			} `json:"fabric"`
			Snap struct {
				Status  string `json:"status"`
				Enabled bool   `json:"enabled"`
			} `json:"snap"`
			ObsBus struct {
				Status string `json:"status"`
			} `json:"obs_bus"`
		} `json:"subsystems"`
	}
	// Legacy path: the redirect must carry the enriched shape.
	if code := getJSON(t, ts.URL+"/api/healthz", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Status != "ok" || out.Version == "" {
		t.Errorf("healthz top level: %+v", out)
	}
	if out.Subsystems.Fabric.Status != "ok" || out.Subsystems.ObsBus.Status != "ok" {
		t.Errorf("subsystem status: %+v", out.Subsystems)
	}
	if !out.Subsystems.Snap.Enabled || out.Subsystems.Snap.Status != "ok" {
		t.Errorf("session server reports snap %+v", out.Subsystems.Snap)
	}
}

// TestAccessLogMiddleware: every request gets a correlation ID (minted
// or client-supplied), echoed in the response header and logged.
func TestAccessLogMiddleware(t *testing.T) {
	s, _ := newServer(t)
	var mu sync.Mutex
	var lines []string
	logged := AccessLog(s.Handler(), func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	ts := httptest.NewServer(logged)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("no X-Request-ID echoed for a minted ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/topology", nil)
	req.Header.Set("X-Request-ID", "client-chosen-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-chosen-7" {
		t.Fatalf("client-supplied ID not echoed: %q", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2: %v", len(lines), lines)
	}
	for i, want := range []string{minted, "client-chosen-7"} {
		if !strings.Contains(lines[i], "req_id="+want) ||
			!strings.Contains(lines[i], "method=GET") ||
			!strings.Contains(lines[i], "path=/api/v1/topology") ||
			!strings.Contains(lines[i], "status=200") ||
			!strings.Contains(lines[i], "dur_us=") {
			t.Errorf("line %d malformed: %q", i, lines[i])
		}
	}
}

// TestRequestIDRootsSpan closes the correlation loop: a mutating
// request's X-Request-ID becomes the journal entry's span and shows up
// on the trace events its effects emitted.
func TestRequestIDRootsSpan(t *testing.T) {
	s, _ := newSessionServer(t)
	ts := httptest.NewServer(AccessLog(s.Handler(), nil))
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/advance",
		strings.NewReader(`{"micros":500}`))
	req.Header.Set("X-Request-ID", "req-weave-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("advance status %d", resp.StatusCode)
	}

	// The journal entry carries the request ID as its span.
	var journal struct {
		Entries []struct {
			Kind string `json:"kind"`
			Span string `json:"span"`
		} `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/journal", &journal); code != 200 {
		t.Fatalf("journal status %d", code)
	}
	found := false
	for _, e := range journal.Entries {
		if e.Span == "req-weave-1" {
			found = true
			if e.Kind != "advance" {
				t.Errorf("span landed on %q entry", e.Kind)
			}
		}
	}
	if !found {
		t.Fatalf("no journal entry carries the request ID: %+v", journal.Entries)
	}

	// And the trace events emitted during that command carry it too.
	var events struct {
		Events []traceEventDTO `json:"events"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/trace/events", &events); code != 200 {
		t.Fatalf("trace events status %d", code)
	}
	spanned := 0
	for _, ev := range events.Events {
		if ev.Span == "req-weave-1" {
			spanned++
		}
	}
	if spanned == 0 {
		t.Fatal("no trace events carry the request span")
	}
}

// TestFleetRollupEndpoint: one scrape of the fleet roll-up sees every
// host folded in — counters summed, histograms merged.
func TestFleetRollupEndpoint(t *testing.T) {
	s, ts := newFleetServer(t)
	s.Advance(2 * simtime.Millisecond)
	var roll struct {
		Source     string            `json:"source"`
		Hosts      int               `json:"hosts"`
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fleet/metrics/rollup", &roll); code != 200 {
		t.Fatalf("rollup status %d", code)
	}
	if roll.Source != "fleet" || roll.Hosts != 2 {
		t.Fatalf("rollup source=%q hosts=%d, want fleet/2", roll.Source, roll.Hosts)
	}
	var want uint64
	for _, h := range s.Fleet().Hosts() {
		want += h.Mgr.Obs().Registry.Snapshot(h.Name).Counters["ihnet_fabric_flows_started_total"]
	}
	if want == 0 {
		t.Fatal("fixture generated no flows")
	}
	if got := roll.Counters["ihnet_fabric_flows_started_total"]; got != want {
		t.Fatalf("rolled-up flows %d, want %d", got, want)
	}
	if h := roll.Histograms["ihnet_fabric_recompute_duration_ns"]; h.Count == 0 {
		t.Error("rollup missing merged recompute histogram")
	}

	// The Prometheus view of the same roll-up rides on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		"ihnet_fleet_epochs_total",                 // runner's own registry
		"ihnet_fabric_flows_started_total",         // rolled-up host counter
		"ihnet_fabric_recompute_duration_ns_count", // merged histogram
	} {
		if !strings.Contains(string(body), wantLine) {
			t.Errorf("fleet /metrics missing %q", wantLine)
		}
	}
}

// TestFleetEventsSSE: the fleet stream carries host-tagged events from
// every member plus the runner's epoch barriers.
func TestFleetEventsSSE(t *testing.T) {
	s, ts := newFleetServer(t)
	s.Advance(2 * simtime.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	frames := readSSE(t, ctx, ts.URL+"/api/v1/fleet/events?since=0", nil, 50)
	if len(frames) < 50 {
		t.Fatalf("got %d fleet frames", len(frames))
	}
	hosts := make(map[string]int)
	epochs := 0
	for _, f := range frames {
		if f.Event == "fleet-epoch" {
			epochs++
			continue
		}
		if f.Data.Host == "" {
			t.Fatalf("fleet event without host tag: %+v", f.Data)
		}
		hosts[f.Data.Host]++
	}
	if len(hosts) < 2 {
		t.Errorf("fleet stream saw hosts %v, want both", hosts)
	}
	if epochs == 0 {
		t.Error("no epoch barrier events in the fleet stream")
	}
}
