package e2etest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The spec layer: request/response conformance cases live in
// testdata/*.json as data, not code, so adding a surface check is an
// edit to a table. Each spec file is one daemon configuration (its
// flags are in the spec) plus an ordered request list; requests run
// sequentially against one daemon, so earlier mutations set up later
// assertions. "${TOKEN}" in a header value is replaced by the bearer
// token of the daemon under test.

type specFile struct {
	// Flags are extra ihnetd flags for this spec's daemon.
	Flags []string `json:"flags"`
	// Auth arms -auth-token-file with a generated token; the daemon
	// probe and any "${TOKEN}" headers use it.
	Auth     bool       `json:"auth"`
	Requests []specCase `json:"requests"`
}

type specCase struct {
	Name    string            `json:"name"`
	Method  string            `json:"method"`
	Path    string            `json:"path"` // absolute: includes /api/v1 where wanted
	Body    json.RawMessage   `json:"body,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
	// NoToken suppresses the daemon's bearer token for this request —
	// the unauthenticated probe against an authed daemon.
	NoToken    bool `json:"no_token,omitempty"`
	WantStatus int  `json:"want_status"`
	// WantCode asserts the typed envelope code on non-2xx responses.
	WantCode string `json:"want_code,omitempty"`
	// WantKeys asserts top-level keys present in a JSON object reply.
	WantKeys []string `json:"want_keys,omitempty"`
	// WantHeader asserts response headers are present (value substring
	// match; empty string means present at all).
	WantHeader map[string]string `json:"want_header,omitempty"`
}

func TestSpecs(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no specs under testdata/ (err %v)", err)
	}
	for _, path := range specs {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".json"), func(t *testing.T) {
			runSpec(t, path)
		})
	}
}

func runSpec(t *testing.T, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var spec specFile
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	token := ""
	flags := append([]string{"-autoadvance=0"}, spec.Flags...)
	if spec.Auth {
		token = "spec-harness-token"
		tf := filepath.Join(t.TempDir(), "token")
		if err := os.WriteFile(tf, []byte(token+"\n"), 0o600); err != nil {
			t.Fatal(err)
		}
		flags = append(flags, "-auth-token-file", tf, "-auth-loopback=false")
	}
	d := startDaemon(t, token, flags...)

	for i, c := range spec.Requests {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("%02d %s %s", i, c.Method, c.Path)
		}
		saved := d.token
		if c.NoToken {
			d.token = ""
		}
		headers := make(map[string]string, len(c.Headers))
		for k, v := range c.Headers {
			headers[k] = strings.ReplaceAll(v, "${TOKEN}", token)
		}
		resp, err := d.do(c.Method, c.Path, c.Body, headers)
		d.token = saved
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: read body: %v", name, err)
		}
		if resp.StatusCode != c.WantStatus {
			t.Fatalf("%s: status %d, want %d (body %s)", name, resp.StatusCode, c.WantStatus, body)
		}
		for k, sub := range c.WantHeader {
			got := resp.Header.Get(k)
			if got == "" || !strings.Contains(got, sub) {
				t.Fatalf("%s: header %s = %q, want containing %q", name, k, got, sub)
			}
		}
		if c.WantCode != "" {
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != c.WantCode {
				t.Fatalf("%s: envelope code %q (err %v), want %q (body %s)",
					name, env.Error.Code, err, c.WantCode, body)
			}
		}
		if len(c.WantKeys) > 0 {
			var obj map[string]json.RawMessage
			if err := json.Unmarshal(body, &obj); err != nil {
				t.Fatalf("%s: not a JSON object: %v (body %s)", name, err, body)
			}
			for _, k := range c.WantKeys {
				if _, ok := obj[k]; !ok {
					t.Fatalf("%s: response missing key %q (body %s)", name, k, body)
				}
			}
		}
	}
}
