// Package e2etest is the black-box conformance and durability harness
// for the ihnetd control plane: it builds the real daemon binary,
// boots it with real flags against real listeners, drives it over
// HTTP, SIGKILLs it mid-run, and asserts that a restart from the
// durable store resumes byte-identical state.
//
// Two layers:
//
//   - Spec-driven conformance (spec_test.go): request/response cases
//     loaded from testdata/*.json and replayed against a live daemon,
//     asserting status, envelope code, and response shape.
//   - Kill/restore e2e (restart_test.go): single-host and synthetic
//     fleet daemons with -store-dir, killed without warning and
//     restarted, comparing /state/hash fingerprints and journals.
//
// The fleet case runs 8 hosts by default; set IHNET_STORE_SMOKE=1
// (CI's `make store-smoke`) to run the 1024-host version.
package e2etest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// ihnetdBin is the daemon binary TestMain builds once for every test.
var ihnetdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ihnet-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ihnetdBin = filepath.Join(dir, "ihnetd")
	build := exec.Command("go", "build", "-o", ihnetdBin, "repro/cmd/ihnetd")
	build.Dir = "../../.." // module root, from internal/httpapi/e2etest
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build ihnetd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// daemon is one live ihnetd process under test.
type daemon struct {
	t     *testing.T
	base  string // http://127.0.0.1:port
	token string // bearer token stamped on every request ("" = none)
	cmd   *exec.Cmd
	log   *bytes.Buffer
	done  chan error // closes when the process exits
}

// startDaemon boots ihnetd with the given extra flags (an -addr is
// prepended) and waits until /api/v1/healthz answers. The daemon's log
// is dumped if the test fails, and the process is torn down at
// cleanup if the test didn't already kill it.
func startDaemon(t *testing.T, token string, args ...string) *daemon {
	t.Helper()
	addr := freeAddr(t)
	d := &daemon{
		t:     t,
		base:  "http://" + addr,
		token: token,
		log:   &bytes.Buffer{},
		done:  make(chan error, 1),
	}
	d.cmd = exec.Command(ihnetdBin, append([]string{"-addr", addr}, args...)...)
	d.cmd.Stdout = d.log
	d.cmd.Stderr = d.log
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start ihnetd: %v", err)
	}
	go func() { d.done <- d.cmd.Wait() }()
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("ihnetd log (%s):\n%s", addr, d.log.String())
		}
		d.stop()
	})

	// A 1024-host fleet bootstrap writes a thousand host stores; give
	// readiness a generous ceiling while failing fast on process death.
	deadline := time.After(180 * time.Second)
	for {
		select {
		case err := <-d.done:
			d.done <- err
			t.Fatalf("ihnetd exited during startup: %v\n%s", err, d.log.String())
		case <-deadline:
			t.Fatalf("ihnetd not ready after 180s\n%s", d.log.String())
		case <-time.After(50 * time.Millisecond):
		}
		resp, err := d.do(http.MethodGet, "/api/v1/healthz", nil, nil)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
	}
}

// do issues one request with the daemon's token and optional extra
// headers. path is absolute (it includes /api/v1 where wanted, so
// specs can also probe /metrics and unversioned paths).
func (d *daemon) do(method, path string, body []byte, headers map[string]string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if d.token != "" {
		req.Header.Set("Authorization", "Bearer "+d.token)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	return http.DefaultClient.Do(req)
}

// call runs a v1 request, asserts the status, and decodes the response
// into out (nil discards).
func (d *daemon) call(method, path string, in, out any, wantStatus int) {
	d.t.Helper()
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			d.t.Fatal(err)
		}
	}
	resp, err := d.do(method, "/api/v1"+path, body, nil)
	if err != nil {
		d.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	if resp.StatusCode != wantStatus {
		d.t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			d.t.Fatalf("%s %s: decode: %v (body %s)", method, path, err, data)
		}
	}
}

// stateHash fetches the given fingerprint endpoint ("/state/hash" or
// "/fleet/state/hash") and returns the full decoded document.
func (d *daemon) stateHash(path string) map[string]any {
	d.t.Helper()
	out := map[string]any{}
	d.call(http.MethodGet, path, nil, &out, http.StatusOK)
	return out
}

// kill SIGKILLs the daemon — no shutdown hooks, no final flush; the
// durable store sees exactly what write(2) already accepted.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatalf("kill: %v", err)
	}
	<-d.done
	d.done <- nil
}

// stop terminates gracefully (SIGTERM, then a kill fallback); safe to
// call on an already-dead daemon.
func (d *daemon) stop() {
	select {
	case err := <-d.done:
		d.done <- err
		return // already exited
	default:
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.done:
		d.done <- err
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		<-d.done
		d.done <- nil
	}
}

// admitBody is the standard single-pipe tenant admission document.
func admitBody(tenant string, rateGbps float64) map[string]any {
	return map[string]any{
		"tenant": tenant,
		"targets": []map[string]any{
			{"src": "nic0", "dst": "memory:socket0", "rate_gbps": rateGbps},
		},
	}
}
