package e2etest

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestAuthLoopbackExemptEndToEnd boots an authed daemon with the
// default -auth-loopback=true: the local operator keeps zero-config
// access while the token still works. (The denial side — loopback
// exemption off — is exercised by testdata/auth.json.)
func TestAuthLoopbackExemptEndToEnd(t *testing.T) {
	tf := filepath.Join(t.TempDir(), "token")
	if err := os.WriteFile(tf, []byte("loopback-test-token\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, "", "-autoadvance=0", "-auth-token-file", tf)
	// No token, from loopback: exempt.
	d.call(http.MethodGet, "/topology", nil, nil, http.StatusOK)
	// Token also accepted.
	d.token = "loopback-test-token"
	d.call(http.MethodGet, "/topology", nil, nil, http.StatusOK)
}
