package e2etest

import (
	"net/http"
	"os"
	"strconv"
	"testing"
)

// TestKillRestartSingleHost is the core durability e2e: a real daemon
// with -store-dir is driven over HTTP (admissions, advances, one
// persisted checkpoint, then more commands so the WAL tail extends
// past the checkpoint — the "mid-epoch" state), SIGKILLed without any
// shutdown hook, and restarted from the same store. The restarted
// daemon must report a byte-identical state hash, an identical
// journal, and stay fully usable.
func TestKillRestartSingleHost(t *testing.T) {
	storeDir := t.TempDir()
	args := []string{"-autoadvance=0", "-preset", "two-socket", "-store-dir", storeDir}
	d := startDaemon(t, "", args...)

	d.call(http.MethodPost, "/tenants", admitBody("kv", 80), nil, http.StatusCreated)
	d.call(http.MethodPost, "/advance", map[string]any{"micros": 500}, nil, http.StatusOK)
	// Persist a checkpoint, then keep mutating: recovery must splice
	// snapshot + WAL tail, not just reload the snapshot.
	d.call(http.MethodPost, "/snapshot", nil, nil, http.StatusOK)
	d.call(http.MethodPost, "/tenants", admitBody("analytics", 20), nil, http.StatusCreated)
	d.call(http.MethodPost, "/advance", map[string]any{"micros": 700}, nil, http.StatusOK)

	before := d.stateHash("/state/hash")
	var journalBefore []byte
	d.call(http.MethodGet, "/journal", nil, &rawBody{&journalBefore}, http.StatusOK)

	d.kill()

	d2 := startDaemon(t, "", args...)
	after := d2.stateHash("/state/hash")
	if before["state_hash"] != after["state_hash"] {
		t.Fatalf("state hash diverged across kill/restart:\n before %v\n after  %v", before, after)
	}
	if before["virtual_time_ns"] != after["virtual_time_ns"] {
		t.Fatalf("virtual time diverged: before %v, after %v", before["virtual_time_ns"], after["virtual_time_ns"])
	}
	if before["journal_entries"] != after["journal_entries"] {
		t.Fatalf("journal length diverged: before %v, after %v", before["journal_entries"], after["journal_entries"])
	}
	var journalAfter []byte
	d2.call(http.MethodGet, "/journal", nil, &rawBody{&journalAfter}, http.StatusOK)
	if string(journalBefore) != string(journalAfter) {
		t.Fatalf("journal bytes diverged across kill/restart (%d vs %d bytes)", len(journalBefore), len(journalAfter))
	}

	// The recovered daemon keeps working and keeps journaling.
	d2.call(http.MethodPost, "/tenants", admitBody("late", 10), nil, http.StatusCreated)
	d2.call(http.MethodPost, "/advance", map[string]any{"micros": 100}, nil, http.StatusOK)
	final := d2.stateHash("/state/hash")
	if final["state_hash"] == after["state_hash"] {
		t.Fatalf("post-recovery commands did not change the state hash")
	}
}

// TestKillRestartFleet kills a sharded synthetic fleet daemon mid-run
// and asserts the fleet-wide fingerprint (every host's hash folded in
// name order) survives the restart byte-identically. 8 hosts by
// default; IHNET_STORE_SMOKE=1 runs the 1024-host version CI exercises
// via `make store-smoke`.
func TestKillRestartFleet(t *testing.T) {
	hosts := 8
	if os.Getenv("IHNET_STORE_SMOKE") != "" {
		hosts = 1024
	}
	storeDir := t.TempDir()
	args := []string{
		"-autoadvance=0", "-synth-hosts", strconv.Itoa(hosts),
		"-preset", "two-socket", "-store-dir", storeDir,
	}
	d := startDaemon(t, "", args...)

	d.call(http.MethodPost, "/fleet/advance", map[string]any{"micros": 300}, nil, http.StatusOK)
	d.call(http.MethodPost, "/fleet/tenants", admitBody("e2e-fleet", 8), nil, http.StatusCreated)
	d.call(http.MethodPost, "/fleet/advance", map[string]any{"micros": 200}, nil, http.StatusOK)

	before := d.stateHash("/fleet/state/hash")
	d.kill()

	d2 := startDaemon(t, "", args...)
	after := d2.stateHash("/fleet/state/hash")
	if before["fleet_hash"] != after["fleet_hash"] {
		// Narrow the report to the first divergent host.
		bh, _ := before["host_hashes"].(map[string]any)
		ah, _ := after["host_hashes"].(map[string]any)
		for name, h := range bh {
			if ah[name] != h {
				t.Errorf("host %s: hash %v -> %v", name, h, ah[name])
				break
			}
		}
		t.Fatalf("fleet hash diverged across kill/restart: %v -> %v", before["fleet_hash"], after["fleet_hash"])
	}
	if before["hosts"] != after["hosts"] {
		t.Fatalf("host count diverged: %v -> %v", before["hosts"], after["hosts"])
	}

	// The recovered fleet still places and advances.
	d2.call(http.MethodPost, "/fleet/tenants", admitBody("late", 4), nil, http.StatusCreated)
	d2.call(http.MethodPost, "/fleet/advance", map[string]any{"micros": 100}, nil, http.StatusOK)
}

// rawBody lets daemon.call capture a response verbatim instead of
// JSON-decoding it.
type rawBody struct{ dst *[]byte }

func (r *rawBody) UnmarshalJSON(data []byte) error {
	*r.dst = append([]byte(nil), data...)
	return nil
}
