package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/topology"
)

// TestAllRoutesVersioned walks both route tables (single-host and
// fleet) and asserts the v1 invariants: every JSON endpoint mounts
// under /api/v1/, patterns are well-formed, and no method+path pair is
// registered twice.
func TestAllRoutesVersioned(t *testing.T) {
	mgr, err := core.New(topology.TwoSocketServer(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string][]route{
		"host":  New(mgr).apiRoutes(),
		"fleet": NewFleetServer(fleet.New(), fleet.ShardConfig{}).apiRoutes(),
	}
	for name, routes := range tables {
		if len(routes) == 0 {
			t.Fatalf("%s: empty route table", name)
		}
		seen := make(map[string]bool)
		for _, rt := range routes {
			if !strings.HasPrefix(rt.Path(), APIPrefix+"/") {
				t.Errorf("%s: route %s %s escapes the version prefix", name, rt.Method, rt.Path())
			}
			if !strings.HasPrefix(rt.Pattern, "/") || strings.HasSuffix(rt.Pattern, "/") {
				t.Errorf("%s: malformed pattern %q", name, rt.Pattern)
			}
			key := rt.Method + " " + rt.Pattern
			if seen[key] {
				t.Errorf("%s: duplicate route %s", name, key)
			}
			seen[key] = true
			if rt.Handler == nil {
				t.Errorf("%s: route %s has no handler", name, key)
			}
		}
	}
}

// TestLegacyRedirects hits the pre-v1 path of every wildcard-free
// route with a non-following client and checks the 308 contract:
// Location points at the /api/v1/ successor, the query survives, and
// the deprecation headers are present.
func TestLegacyRedirects(t *testing.T) {
	s, ts := newServer(t)
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	for _, rt := range s.apiRoutes() {
		if strings.Contains(rt.Pattern, "{") {
			continue
		}
		legacy := "/api" + rt.Pattern + "?probe=1"
		req, err := http.NewRequest(rt.Method, ts.URL+legacy, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s: status %d, want 308", rt.Method, legacy, resp.StatusCode)
			continue
		}
		want := rt.Path() + "?probe=1"
		if loc := resp.Header.Get("Location"); loc != want {
			t.Errorf("%s %s: Location %q, want %q", rt.Method, legacy, loc, want)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s: missing Deprecation header", rt.Method, legacy)
		}
	}
}

// TestLegacyRedirectResolves follows a legacy path end-to-end: the
// default client traverses the 308 and lands on the live v1 handler.
func TestLegacyRedirectResolves(t *testing.T) {
	_, ts := newServer(t)
	var topo struct {
		Name string `json:"name"`
	}
	if code := getJSON(t, ts.URL+"/api/topology", &topo); code != http.StatusOK {
		t.Fatalf("legacy /api/topology resolved with %d", code)
	}
	if topo.Name == "" {
		t.Fatal("legacy redirect lost the response body")
	}
}

func decodeEnvelope(t *testing.T, resp *http.Response) ErrorDetail {
	t.Helper()
	defer resp.Body.Close()
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error response is not the v1 envelope: %v", err)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", e)
	}
	return e.Error
}

// TestErrorEnvelope checks that the typed envelope — and the right
// code — comes back on each error class.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newServer(t)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/api/v1/advance", `{"micros":-5}`, http.StatusBadRequest, CodeBadRequest},
		{"GET", "/api/v1/tenants/ghost/verify", "", http.StatusNotFound, CodeNotFound},
		{"DELETE", "/api/v1/tenants/ghost", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/api/v1/snapshot", "", http.StatusNotFound, CodeNotFound}, // no session
		{"GET", "/api/v1/no-such-endpoint", "", http.StatusNotFound, CodeNotFound},
		{"GET", "/definitely-not-api", "", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if detail := decodeEnvelope(t, resp); detail.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, detail.Code, tc.code)
		}
	}
}

// TestCanceledRequestGets499 drives the handler directly with an
// already-canceled context: the lock wrapper must answer with the 499
// envelope instead of running the handler.
func TestCanceledRequestGets499(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/api/v1/report", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	var e ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code != CodeCanceled {
		t.Fatalf("body %q, want canceled envelope", rec.Body.String())
	}
}
