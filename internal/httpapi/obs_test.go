package httpapi

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(2 * simtime.Millisecond) // heartbeats, arbiter ticks, recomputes
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE ihnet_fabric_flows_started_total counter",
		"ihnet_anomaly_probes_total",
		"ihnet_anomaly_detections_total",
		"ihnet_arbiter_adjustments_total",
		"# TYPE ihnet_fabric_recompute_duration_ns histogram",
		"ihnet_fabric_recompute_duration_ns_bucket",
		"ihnet_fabric_recompute_duration_ns_count",
		"ihnet_core_admissions_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestMetricsScrapeDuringAdvance scrapes concurrently with simulation
// advances; under -race this pins down the lock-free exposition claim.
func TestMetricsScrapeDuringAdvance(t *testing.T) {
	s, ts := newServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Advance(100 * simtime.Microsecond)
		}
	}()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	wg.Wait()
}

func TestTraceEventsEndpoint(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(simtime.Millisecond)
	var out struct {
		Events []struct {
			Seq       uint64 `json:"seq"`
			VirtualNs int64  `json:"virtual_ns"`
			WallNs    int64  `json:"wall_ns"`
			Kind      string `json:"kind"`
		} `json:"events"`
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
	}
	if code := getJSON(t, ts.URL+"/api/trace/events", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Events) == 0 || out.Total == 0 {
		t.Fatalf("no trace events after 1ms advance (total %d)", out.Total)
	}
	for i := 1; i < len(out.Events); i++ {
		if out.Events[i].Seq <= out.Events[i-1].Seq {
			t.Fatal("events not in sequence order")
		}
	}
	// Kind filter + limit.
	var hb struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if code := getJSON(t, ts.URL+"/api/trace/events?kind=heartbeat&limit=3", &hb); code != 200 {
		t.Fatalf("filtered status %d", code)
	}
	if len(hb.Events) == 0 || len(hb.Events) > 3 {
		t.Fatalf("filter/limit returned %d events", len(hb.Events))
	}
	for _, ev := range hb.Events {
		if ev.Kind != "heartbeat" {
			t.Errorf("kind filter leaked %q", ev.Kind)
		}
	}
	if code := getJSON(t, ts.URL+"/api/trace/events?kind=bogus", nil); code != 400 {
		t.Errorf("bogus kind: status %d, want 400", code)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s, ts := newServer(t)
	s.Advance(simtime.Millisecond)
	var out struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go_version"`
		Uptime        float64 `json:"uptime_seconds"`
		VirtualTimeNs int64   `json:"virtual_time_ns"`
		MetricCount   int     `json:"metric_count"`
		TraceEvents   uint64  `json:"trace_events"`
	}
	if code := getJSON(t, ts.URL+"/api/healthz", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Status != "ok" || out.GoVersion == "" {
		t.Errorf("healthz: %+v", out)
	}
	if out.VirtualTimeNs != int64(simtime.Millisecond) {
		t.Errorf("virtual_time_ns = %d, want 1ms", out.VirtualTimeNs)
	}
	if out.MetricCount == 0 || out.TraceEvents == 0 {
		t.Errorf("observability counts empty: %+v", out)
	}
}

func TestPprofEndpoint(t *testing.T) {
	_, ts := newServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index missing profile listing")
	}
}
