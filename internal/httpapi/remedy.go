package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/remedy"
	"repro/internal/simtime"
)

// errNoRemedy is returned by the remediation endpoints on daemons
// started without the controller.
var errNoRemedy = fmt.Errorf("remediation controller not enabled: start the daemon with -remedy")

// remedyStatusDTO is the closed-loop controller's operator view:
// cumulative accounting, the incident ledger, and the headline MTTR
// percentiles (virtual time, so they are comparable across machines).
type remedyStatusDTO struct {
	Enabled   bool              `json:"enabled"`
	Degraded  bool              `json:"degraded"`
	Stats     remedy.Stats      `json:"stats"`
	MTTRp50Us float64           `json:"mttr_p50_us"`
	MTTRp99Us float64           `json:"mttr_p99_us"`
	Incidents []remedy.Incident `json:"incidents"`
}

func remedyStatus(c *remedy.Controller) remedyStatusDTO {
	mttrs := c.MTTRs()
	return remedyStatusDTO{
		Enabled:   true,
		Degraded:  c.Degraded(),
		Stats:     c.Stats(),
		MTTRp50Us: float64(remedy.Percentile(mttrs, 50)) / float64(simtime.Microsecond),
		MTTRp99Us: float64(remedy.Percentile(mttrs, 99)) / float64(simtime.Microsecond),
		Incidents: c.Incidents(),
	}
}

// SetRemedy wires a remediation controller into the server: the status
// and policy endpoints come alive, Advance steps the control loop, and
// healthz gains the remedy subsystem. Call before serving traffic.
func (s *Server) SetRemedy(c *remedy.Controller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rem = c
}

// Remedy returns the wired controller (nil when disabled).
func (s *Server) Remedy() *remedy.Controller {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rem
}

func (s *Server) getRemedyStatus(w http.ResponseWriter, _ *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	writeJSON(w, http.StatusOK, remedyStatus(s.rem))
}

func (s *Server) getRemedyPolicy(w http.ResponseWriter, _ *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	writeJSON(w, http.StatusOK, s.rem.Policy())
}

// putRemedyPolicy swaps the rule table. Policies are out-of-band
// configuration — the controller never runs during replay — so the
// swap is not journaled; it still takes the write lock because the
// next Step reads it.
func (s *Server) putRemedyPolicy(w http.ResponseWriter, r *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	p, err := parsePolicyBody(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.rem.SetPolicy(*p); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.rem.Policy())
}

// fleetRemedyStatusDTO aggregates the per-host controllers with a
// per-host breakdown (only degraded hosts carry incident lists, to
// keep large-fleet payloads proportional to trouble, not size).
type fleetRemedyStatusDTO struct {
	Enabled   bool                       `json:"enabled"`
	Degraded  bool                       `json:"degraded"`
	Stats     remedy.Stats               `json:"stats"`
	MTTRp50Us float64                    `json:"mttr_p50_us"`
	MTTRp99Us float64                    `json:"mttr_p99_us"`
	Hosts     map[string]remedyStatusDTO `json:"hosts"`
}

// SetRemedy wires a fleet remediation controller: per-host controllers
// stepped between epoch barriers by Advance.
func (s *FleetServer) SetRemedy(fc *remedy.FleetController) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rem = fc
}

// Remedy returns the wired fleet controller (nil when disabled).
func (s *FleetServer) Remedy() *remedy.FleetController {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rem
}

func (s *FleetServer) getFleetRemedyStatus(w http.ResponseWriter, _ *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	mttrs := s.rem.MTTRs()
	out := fleetRemedyStatusDTO{
		Enabled:   true,
		Degraded:  s.rem.Degraded(),
		Stats:     s.rem.Stats(),
		MTTRp50Us: float64(remedy.Percentile(mttrs, 50)) / float64(simtime.Microsecond),
		MTTRp99Us: float64(remedy.Percentile(mttrs, 99)) / float64(simtime.Microsecond),
		Hosts:     make(map[string]remedyStatusDTO, len(s.rem.Hosts())),
	}
	for _, name := range s.rem.Hosts() {
		hs := remedyStatus(s.rem.Controller(name))
		if !hs.Degraded {
			hs.Incidents = nil
		}
		out.Hosts[name] = hs
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *FleetServer) getFleetRemedyPolicy(w http.ResponseWriter, _ *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	writeJSON(w, http.StatusOK, s.rem.Policy())
}

func (s *FleetServer) putFleetRemedyPolicy(w http.ResponseWriter, r *http.Request) {
	if s.rem == nil {
		writeErr(w, http.StatusNotFound, errNoRemedy)
		return
	}
	p, err := parsePolicyBody(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.rem.SetPolicy(*p); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.rem.Policy())
}

// parsePolicyBody decodes and validates a policy document via the
// package's canonical parser (defaults applied, rule table checked).
// Body size is already bounded by the mux-level MaxBytesReader cap.
func parsePolicyBody(r io.Reader) (*remedy.Policy, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty policy body")
	}
	// Round-trip through json.Valid first for a crisper error than the
	// parser's.
	if !json.Valid(raw) {
		return nil, fmt.Errorf("policy body is not valid JSON")
	}
	p, err := remedy.ParsePolicy(raw)
	if err != nil {
		return nil, err
	}
	return &p, nil
}
