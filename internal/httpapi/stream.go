package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// SSE streaming and the structured access log. Both ends of the
// correlation story live here: the access log mints the per-request
// ID that becomes the command's span, and the event stream carries
// that span back out on every effect the command caused.

// sseDefaultCapacity is the per-subscriber ring size when the client
// does not ask for one. A stalled client loses oldest events (counted
// in obs_sse_dropped_total) — never backpressure on the simulation.
const sseDefaultCapacity = 1024

// sseKeepalive is the comment-frame interval that keeps idle
// connections from being reaped by intermediaries.
const sseKeepalive = 15 * time.Second

// parseResumeSeq extracts the resume point: the standard
// Last-Event-ID header (set by EventSource on reconnect) or an
// explicit ?since= query parameter. Returns ^uint64(0) for "live
// only".
func parseResumeSeq(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("since"); q != "" {
		v = q
	}
	if v == "" {
		return ^uint64(0), nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad resume sequence %q", v)
	}
	return n, nil
}

// streamSSE serves a bus subscription as a text/event-stream: one
// frame per event with the bus sequence as the SSE id (so
// Last-Event-ID resume is exact), the event kind as the SSE event
// type, and the JSON envelope as data. The subscription's ring
// absorbs bursts; when the client is slower than the simulation the
// ring overwrites and the client observes a sequence gap — the
// explicit, counted alternative to blocking the hot path.
func streamSSE(w http.ResponseWriter, r *http.Request, bus *obs.Bus) {
	if bus == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("event streaming unavailable: tracing is disabled"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	after, err := parseResumeSeq(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	capacity := sseDefaultCapacity
	if v := r.URL.Query().Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 1<<20 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad buffer size %q", v))
			return
		}
		capacity = n
	}
	sub := bus.SubscribeFrom(capacity, after)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		for _, be := range sub.Drain() {
			if err := writeSSEFrame(w, be); err != nil {
				return // client gone
			}
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-sub.Ready():
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSEFrame(w http.ResponseWriter, be obs.BusEvent) error {
	data, err := json.Marshal(busEventDTO(be))
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
		be.Seq, be.Event.Kind.String(), data)
	return err
}

// busEventDTO converts a bus event to the wire envelope. BusSeq is
// the fleet/host stream position (the SSE id); Seq remains the
// originating tracer's ring sequence.
func busEventDTO(be obs.BusEvent) traceEventDTO {
	ev := be.Event
	return traceEventDTO{
		BusSeq: be.Seq, Seq: ev.Seq, VirtualNs: int64(ev.Virtual), WallNs: ev.Wall,
		Kind: ev.Kind.String(), Subject: ev.Subject, Detail: ev.Detail,
		Value: ev.Value, WallDurNs: int64(ev.WallDur), Span: ev.Span, Host: ev.Host,
	}
}

// ctxKey is the private context-key namespace.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's correlation ID: the one the
// AccessLog middleware minted (or accepted from an X-Request-ID
// header), falling back to the raw header when no middleware ran.
// Mutating handlers root the command span here, so a log line, a
// journal entry and a trace span all share one identifier.
func RequestID(r *http.Request) string {
	if v, ok := r.Context().Value(requestIDKey).(string); ok {
		return v
	}
	return r.Header.Get("X-Request-ID")
}

// statusRecorder captures the response status for the access log
// while passing Flush through so streaming endpoints keep working.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestSeq mints request IDs for every AccessLog instance in the
// process. One process-scoped counter — not per-middleware, and not
// seeded from the wall clock — so IDs are unique across however many
// muxes a daemon mounts, and carry no wall-clock nondeterminism into
// the journal-correlated spans they become.
var requestSeq atomic.Uint64

// AccessLog wraps a handler with the structured access log: every
// request gets a correlation ID (client-supplied X-Request-ID or a
// minted "r<n>" from a process-scoped counter), echoed back in the
// response header, stored in the request context for span rooting, and
// logged in logfmt with route, status and wall duration in
// microseconds. logf is typically log.Printf; nil disables logging but
// keeps the ID plumbing.
func AccessLog(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = "r" + strconv.FormatUint(requestSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		if logf != nil {
			logf("req_id=%s method=%s path=%s status=%d dur_us=%d",
				id, r.Method, r.URL.Path, rec.status, time.Since(start).Microseconds())
		}
	})
}
