package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/simtime"
	"repro/internal/snap"
)

// newFleetServer boots a two-host recording fleet behind the fleet
// control plane.
func newFleetServer(t *testing.T) (*FleetServer, *httptest.Server) {
	t.Helper()
	f := fleet.New()
	for i, name := range []string{"box-a", "box-b"} {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		sess, err := snap.NewSession(snap.Config{Preset: "two-socket", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddSession(name, sess); err != nil {
			t.Fatal(err)
		}
	}
	s := NewFleetServer(f, fleet.ShardConfig{Workers: 4, Epoch: 500 * simtime.Microsecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestFleetLifecycleOverHTTP walks the fleet API end to end: place,
// list, advance to a barrier, migrate, rebalance, evict.
func TestFleetLifecycleOverHTTP(t *testing.T) {
	_, ts := newFleetServer(t)

	// Place lands on the least-pressured host (both idle: first by name).
	var view struct {
		Tenant string `json:"tenant"`
		Host   string `json:"host"`
	}
	code := postJSON(t, ts.URL+"/api/v1/fleet/tenants",
		`{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":8}]}`, &view)
	if code != http.StatusCreated || view.Host != "box-a" {
		t.Fatalf("place: code %d host %q", code, view.Host)
	}

	var hosts []struct {
		Name    string `json:"name"`
		Tenants int    `json:"tenants"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fleet/hosts", &hosts); code != http.StatusOK {
		t.Fatalf("hosts: %d", code)
	}
	if len(hosts) != 2 || hosts[0].Tenants != 1 || hosts[1].Tenants != 0 {
		t.Fatalf("hosts after place: %+v", hosts)
	}

	// Advance all hosts to a shared 2ms barrier (four 500µs epochs).
	var adv struct {
		VirtualTimeNs int64          `json:"virtual_time_ns"`
		Epochs        int            `json:"epochs"`
		HostsAdvanced int            `json:"hosts_advanced"`
		Failed        map[string]any `json:"failed"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/fleet/advance", `{"micros":2000}`, &adv); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	if adv.Epochs != 4 || adv.HostsAdvanced != 8 || adv.VirtualTimeNs != int64(2*simtime.Millisecond) || len(adv.Failed) != 0 {
		t.Fatalf("advance report: %+v", adv)
	}

	// Migrate kv to box-b, then confirm via the fleet report.
	if code := postJSON(t, ts.URL+"/api/v1/fleet/tenants/kv/migrate", `{"host":"box-b"}`, &view); code != http.StatusOK {
		t.Fatalf("migrate: %d", code)
	}
	var rep struct {
		Tenants []struct {
			ID   string `json:"id"`
			Host string `json:"host"`
		} `json:"tenants"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fleet/report", &rep); code != http.StatusOK {
		t.Fatalf("report: %d", code)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Host != "box-b" {
		t.Fatalf("tenants after migrate: %+v", rep.Tenants)
	}

	// Rebalance with healthy hosts is a no-op.
	var reb struct {
		Moved  map[string]string `json:"moved"`
		Failed []string          `json:"failed"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/fleet/rebalance", "", &reb); code != http.StatusOK {
		t.Fatalf("rebalance: %d", code)
	}
	if len(reb.Moved) != 0 || len(reb.Failed) != 0 {
		t.Fatalf("rebalance on healthy fleet moved %v failed %v", reb.Moved, reb.Failed)
	}

	// Evict wherever the tenant runs.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/fleet/tenants/kv", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ev map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&ev)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ev["host"] != "box-b" {
		t.Fatalf("evict: %d %v", resp.StatusCode, ev)
	}
}

// TestFleetHostSnapshotIsReplayable downloads a per-host checkpoint
// after real fleet activity and runs it through the snap verification
// chain: envelope checksum, then the twice-replay determinism gate.
func TestFleetHostSnapshotIsReplayable(t *testing.T) {
	_, ts := newFleetServer(t)
	if code := postJSON(t, ts.URL+"/api/v1/fleet/tenants",
		`{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":8}]}`, nil); code != http.StatusCreated {
		t.Fatalf("place: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/v1/fleet/advance", `{"micros":1500}`, nil); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	resp, err := http.Post(ts.URL+"/api/v1/fleet/hosts/box-a/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	p, err := snap.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("downloaded snapshot does not verify: %v", err)
	}
	if p.VirtualTimeNs != int64(1500*simtime.Microsecond) {
		t.Fatalf("snapshot at %dns, want host parked at the 1500µs barrier", p.VirtualTimeNs)
	}
	div, err := snap.CheckDeterminism(p.Config, p.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("fleet host journal is nondeterministic: %v", div)
	}

	// The journal endpoint serves the same command history.
	jr, err := http.Get(ts.URL + "/api/v1/fleet/hosts/box-a/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var j struct {
		Entries []any `json:"entries"`
	}
	if err := json.NewDecoder(jr.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if len(j.Entries) != p.Journal.Len() {
		t.Fatalf("journal endpoint has %d entries, snapshot has %d", len(j.Entries), p.Journal.Len())
	}
}

// TestFleetErrorsSpeakEnvelope checks the fleet surface's error paths.
func TestFleetErrorsSpeakEnvelope(t *testing.T) {
	_, ts := newFleetServer(t)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/api/v1/fleet/advance", `{"micros":0}`, http.StatusBadRequest, CodeBadRequest},
		{"DELETE", "/api/v1/fleet/tenants/ghost", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/api/v1/fleet/tenants/ghost/migrate", `{"host":"box-b"}`, http.StatusConflict, CodeConflict},
		{"POST", "/api/v1/fleet/hosts/nope/snapshot", "", http.StatusNotFound, CodeNotFound},
		{"GET", "/api/v1/fleet/hosts/nope/journal", "", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if detail := decodeEnvelope(t, resp); detail.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, detail.Code, tc.code)
		}
	}
}

// TestFleetCanceledAdvanceGets499 cancels the request context before
// the advance runs: the wrapper answers 499 and no host moves.
func TestFleetCanceledAdvanceGets499(t *testing.T) {
	s, _ := newFleetServer(t)
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/api/v1/fleet/advance",
		strings.NewReader(`{"micros":5000}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	for _, host := range s.Fleet().Hosts() {
		if now := host.Mgr.Engine().Now(); now != 0 {
			t.Fatalf("host %s advanced to %v on a canceled request", host.Name, now)
		}
	}
}

// TestFleetLegacyRedirect: the fleet surface inherits the same 308
// compatibility layer.
func TestFleetLegacyRedirect(t *testing.T) {
	_, ts := newFleetServer(t)
	var hosts []any
	if code := getJSON(t, ts.URL+"/api/fleet/hosts", &hosts); code != http.StatusOK {
		t.Fatalf("legacy fleet path resolved with %d", code)
	}
	if len(hosts) != 2 {
		t.Fatalf("legacy fleet path returned %d hosts", len(hosts))
	}
}

// TestFleetQuarantineOverHTTP injects a mid-epoch panic into one host
// and checks the API's view: advance reports the failure, the hosts
// listing marks the quarantine, and healthz counts it.
func TestFleetQuarantineOverHTTP(t *testing.T) {
	s, ts := newFleetServer(t)
	bad := s.Fleet().Host("box-b")
	bad.Mgr.Engine().After(300*simtime.Microsecond, func() {
		panic(fmt.Errorf("injected fault"))
	})
	var adv struct {
		Failed map[string]string `json:"failed"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/fleet/advance", `{"micros":2000}`, &adv); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	if len(adv.Failed) != 1 || adv.Failed["box-b"] == "" {
		t.Fatalf("failed = %v, want box-b quarantined", adv.Failed)
	}
	var hosts []struct {
		Name        string `json:"name"`
		Quarantined string `json:"quarantined"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fleet/hosts", &hosts); code != http.StatusOK {
		t.Fatalf("hosts: %d", code)
	}
	if hosts[1].Name != "box-b" || hosts[1].Quarantined == "" {
		t.Fatalf("hosts after failure: %+v", hosts)
	}
	var hz struct {
		Quarantined int `json:"quarantined"`
		Hosts       int `json:"hosts"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Hosts != 2 || hz.Quarantined != 1 {
		t.Fatalf("healthz: %+v", hz)
	}
}
