package httpapi

// Tests for the production-surface sweep: bearer-token auth, the
// mux-level body caps with their 413 envelope, process-unique request
// IDs, and strict time-cursor parsing on the telemetry and SSE
// surfaces.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// envelopeCode fetches the typed error code of a non-2xx response and
// closes the body.
func envelopeCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("response is not the typed envelope: %v", err)
	}
	return body.Error.Code
}

func TestAuthTokenRequired(t *testing.T) {
	s, _ := newServer(t)
	reg := obs.NewRegistry()
	// httptest clients arrive over loopback; TrustLoopback=false makes
	// those connections exercise the real denial path.
	ts := httptest.NewServer(Auth(s.Handler(), AuthConfig{
		Token: "sekrit", TrustLoopback: false, Registry: reg,
	}))
	t.Cleanup(ts.Close)

	get := func(set func(*http.Request)) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/topology", nil)
		if err != nil {
			t.Fatal(err)
		}
		if set != nil {
			set(req)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// No token: 401 in the typed envelope, with the challenge header.
	resp := get(nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Fatalf("WWW-Authenticate %q", got)
	}
	if code := envelopeCode(t, resp); code != CodeUnauthorized {
		t.Fatalf("envelope code %q, want %q", code, CodeUnauthorized)
	}

	// Wrong token: denied, constant-time comparison notwithstanding.
	resp = get(func(r *http.Request) { r.Header.Set("Authorization", "Bearer wrong") })
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// The unversioned operational surface is covered too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("/metrics without token: status %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// Correct token via Authorization and via X-API-Token.
	resp = get(func(r *http.Request) { r.Header.Set("Authorization", "Bearer sekrit") })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer token: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	resp = get(func(r *http.Request) { r.Header.Set("X-API-Token", "sekrit") })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Token: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	denied := reg.Counter("ihnet_http_auth_denied_total", "").Value()
	allowed := reg.Counter("ihnet_http_auth_ok_total", "").Value()
	if denied != 3 || allowed != 2 {
		t.Fatalf("counters: denied=%d allowed=%d, want 3/2", denied, allowed)
	}
}

func TestAuthLoopbackExemption(t *testing.T) {
	s, _ := newServer(t)
	ts := httptest.NewServer(Auth(s.Handler(), AuthConfig{
		Token: "sekrit", TrustLoopback: true,
	}))
	t.Cleanup(ts.Close)
	// The httptest client connects via 127.0.0.1, so with the exemption
	// on, no token is needed.
	resp, err := http.Get(ts.URL + "/api/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loopback without token: status %d, want 200", resp.StatusCode)
	}
}

func TestAuthDisabledWithEmptyToken(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusTeapot) })
	h := Auth(next, AuthConfig{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("empty token must disable the middleware, got %d", rec.Code)
	}
}

func TestBodyCapReturns413Envelope(t *testing.T) {
	_, ts := newServer(t)
	// Legal JSON padding one byte past the default cap: the handler's
	// decode reads through it, hits the MaxBytesReader, and writeErr
	// rewrites the failure to a 413.
	big := append(bytes.Repeat([]byte(" "), DefaultBodyCap+1), []byte("{}")...)
	resp, err := http.Post(ts.URL+"/api/v1/tenants", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
	if code := envelopeCode(t, resp); code != CodePayloadTooLarge {
		t.Fatalf("envelope code %q, want %q", code, CodePayloadTooLarge)
	}
}

func TestRestoreAcceptsLargerBodies(t *testing.T) {
	_, ts := newSessionServer(t)
	// 2 MB of leading whitespace (legal JSON padding) followed by an
	// empty document: far over the default cap, well under the restore
	// cap — so the failure must be the snapshot validation (400), never
	// the body limit (413).
	body := append(bytes.Repeat([]byte(" "), 2<<20), []byte("{}")...)
	resp, err := http.Post(ts.URL+"/api/v1/restore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("2MB restore body: status %d, want 400 (not a body-cap 413)", resp.StatusCode)
	}
	if code := envelopeCode(t, resp); code != CodeBadRequest {
		t.Fatalf("envelope code %q, want %q", code, CodeBadRequest)
	}
}

// TestRequestIDsUniqueAcrossConcurrentMuxes pins the request-ID fix:
// IDs come from one process-scoped counter, so two AccessLog instances
// hammered concurrently never mint the same ID (the old
// time.Now()-masked scheme collided within a burst).
func TestRequestIDsUniqueAcrossConcurrentMuxes(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	tsA := httptest.NewServer(AccessLog(ok, nil))
	tsB := httptest.NewServer(AccessLog(ok, nil))
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)

	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		for _, u := range []string{tsA.URL, tsB.URL} {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				id := resp.Header.Get("X-Request-ID")
				mu.Lock()
				defer mu.Unlock()
				if id == "" {
					t.Error("no X-Request-ID minted")
					return
				}
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
			}(u)
		}
	}
	wg.Wait()
}

func TestTelemetrySinceNsRejectsNegative(t *testing.T) {
	_, ts := newServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?since_ns=-5", http.StatusBadRequest},
		{"?since_ns=abc", http.StatusBadRequest},
		{"?since_ns=0", http.StatusOK},
		{"", http.StatusOK},
	} {
		resp, err := http.Get(ts.URL + "/api/v1/telemetry" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("telemetry%s: status %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusBadRequest {
			if code := envelopeCode(t, resp); code != CodeBadRequest {
				t.Fatalf("telemetry%s: envelope code %q", tc.query, code)
			}
		} else {
			resp.Body.Close()
		}
	}
}

func TestEventStreamRejectsNegativeResume(t *testing.T) {
	_, ts := newServer(t)
	// Same cursor contract as since_ns: a negative (or junk) resume
	// point is a 400, not silently "live only".
	for _, q := range []string{"?since=-5", "?since=junk"} {
		resp, err := http.Get(ts.URL + "/api/v1/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("events%s: status %d, want 400", q, resp.StatusCode)
		}
		if code := envelopeCode(t, resp); code != CodeBadRequest {
			t.Fatalf("events%s: envelope code %q", q, code)
		}
	}
}
