package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// APIPrefix is the versioned mount point of the control plane. Every
// JSON endpoint lives under it; /metrics and /debug/pprof/ keep their
// conventional unversioned paths.
const APIPrefix = "/api/v1"

// StatusClientClosedRequest reports that the client went away before
// the server finished (nginx's 499 convention). Handlers that abort a
// long operation on r.Context() cancellation return it instead of
// writing a partial body.
const StatusClientClosedRequest = 499

// Error codes of the v1 envelope. Every non-2xx response carries
// exactly one of these; the code is a stable, typed contract while
// messages remain free-form.
const (
	CodeBadRequest      = "bad_request"       // 400: malformed input
	CodeUnauthorized    = "unauthorized"      // 401: missing or wrong bearer token
	CodeNotFound        = "not_found"         // 404: no such resource or endpoint
	CodeConflict        = "conflict"          // 409: admission/state conflict
	CodePayloadTooLarge = "payload_too_large" // 413: request body over the route's cap
	CodeCanceled        = "canceled"          // 499: client closed the request
	CodeInternal        = "internal"          // 500: operation failed server-side
	CodeUnavailable     = "unavailable"       // 503: surface not enabled in this mode
)

// ErrorBody is the single typed error envelope of the v1 API:
// {"error":{"code":"...","message":"..."}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the typed code and human-readable message.
// Details, when present, is endpoint-specific structured context — the
// batch endpoint returns its per-op result array there on partial
// application, so a 409 still tells the client exactly how far the
// batch got.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Details any    `json:"details,omitempty"`
}

// codeForStatus maps an HTTP status to its envelope code; the mapping
// is total so every error path speaks the same contract.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case StatusClientClosedRequest:
		return CodeCanceled
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders err in the v1 envelope with the code implied by the
// status. A body that blew the mux's MaxBytesReader cap surfaces as a
// decode error deep inside whatever handler was reading it; detecting
// *http.MaxBytesError here rewrites that to the 413 it really is, in
// one place instead of every decode site.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, statusForErr(status, err), ErrorBody{Error: ErrorDetail{
		Code:    codeForStatus(statusForErr(status, err)),
		Message: err.Error(),
	}})
}

// writeErrDetails is writeErr with structured endpoint-specific
// context attached to the envelope.
func writeErrDetails(w http.ResponseWriter, status int, err error, details any) {
	writeJSON(w, statusForErr(status, err), ErrorBody{Error: ErrorDetail{
		Code:    codeForStatus(statusForErr(status, err)),
		Message: err.Error(),
		Details: details,
	}})
}

func statusForErr(status int, err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return status
}

// lockMode says which server lock a route runs under.
type lockMode int

const (
	// lockNone routes read through their own synchronization (the obs
	// registry's atomics, the tracer's mutex) and never block on the
	// simulation.
	lockNone lockMode = iota
	// lockRead routes touch only immutable or copy-on-read state.
	lockRead
	// lockWrite routes mutate, or are "reads" that settle lazy fabric
	// accounting.
	lockWrite
)

// route is one row of a server's v1 route table. Pattern is the path
// below APIPrefix (net/http ServeMux syntax, wildcards included); the
// table is the single source of truth for Handler construction, the
// completeness tests, and the README's API table.
type route struct {
	Method  string
	Pattern string
	Lock    lockMode
	Handler http.HandlerFunc
}

// Path returns the route's full versioned path.
func (rt route) Path() string { return APIPrefix + rt.Pattern }

// Request-body caps, enforced by one http.MaxBytesReader wrap in
// mountRoutes — the single choke point for every route, replacing the
// ad-hoc per-handler readers. A body over the cap surfaces as a 413 in
// the typed envelope (see writeErr).
const (
	// DefaultBodyCap bounds every request body: no command document
	// comes close to 1 MB.
	DefaultBodyCap = 1 << 20
	// RestoreBodyCap is the documented larger cap for POST /restore,
	// whose body is a full snapshot (state export plus journal).
	RestoreBodyCap = 64 << 20
)

// bodyCap returns the body limit for a route pattern.
func bodyCap(pattern string) int64 {
	if pattern == "/restore" {
		return RestoreBodyCap
	}
	return DefaultBodyCap
}

// mountRoutes registers the table on mux under APIPrefix, wrapping
// each handler in the route's body cap and the requested lock via
// wrap, and installs the legacy /api/... 308 redirects plus
// envelope-speaking 404s for everything else.
func mountRoutes(mux *http.ServeMux, routes []route, wrap func(lockMode, http.HandlerFunc) http.HandlerFunc) {
	for _, rt := range routes {
		h := wrap(rt.Lock, rt.Handler)
		cap := bodyCap(rt.Pattern)
		mux.HandleFunc(rt.Method+" "+rt.Path(), func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, cap)
			}
			h(w, r)
		})
	}
	mux.HandleFunc("/api/", legacyRedirect)
	mux.HandleFunc("/", notFound)
}

// legacyRedirect preserves the pre-v1 surface: any /api/... path that
// is not under /api/v1/ permanently redirects (308, method and body
// preserved) to its /api/v1/... successor. Unknown /api/v1/ paths get
// the envelope 404 instead of net/http's plain-text one. The legacy
// paths are deprecated; see DESIGN.md for the removal window.
func legacyRedirect(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Path
	if p == APIPrefix || strings.HasPrefix(p, APIPrefix+"/") {
		notFound(w, r)
		return
	}
	target := APIPrefix + strings.TrimPrefix(p, "/api")
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+target+">; rel=\"successor-version\"")
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

func notFound(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s %s", r.Method, r.URL.Path))
}
