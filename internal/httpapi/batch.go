package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/fabric"
	"repro/internal/snap"
	"repro/internal/topology"
)

// Batched mutations and solver introspection.
//
// POST /api/v1/batch is the burst-shaped write path: a typed multi-op
// envelope whose ops all land under one fabric batch, so the solver
// settles exactly once for the whole group instead of once per op.
// GET /api/v1/fabric/solver exposes the component solver's internals
// (partition shape, dirty-region accounting, batch coalescing, worker
// utilization); the fleet server rolls the same stats up across hosts.

// batchOpDTO is one op in a POST /api/v1/batch envelope. Op selects
// the kind; the other fields are populated per op, mirroring the
// journal's entry schema:
//
//	admit        tenant, targets, avoid?
//	evict        tenant
//	migrate      tenant, targets, avoid?   (evict + re-admit, two journal ops)
//	set-cap      link, tenant, cap_bps
//	clear-cap    link, tenant
//	degrade      link, loss_frac, extra_ns
//	fail         link
//	restore-link link
//	set-config   component, key, value
//	workload     workload, tenant, src?, dst?
type batchOpDTO struct {
	Op        string      `json:"op"`
	Tenant    string      `json:"tenant,omitempty"`
	Targets   []targetDTO `json:"targets,omitempty"`
	Avoid     []string    `json:"avoid,omitempty"`
	Link      string      `json:"link,omitempty"`
	CapBps    float64     `json:"cap_bps,omitempty"`
	LossFrac  float64     `json:"loss_frac,omitempty"`
	ExtraNs   int64       `json:"extra_ns,omitempty"`
	Component string      `json:"component,omitempty"`
	Key       string      `json:"key,omitempty"`
	Value     string      `json:"value,omitempty"`
	Workload  string      `json:"workload,omitempty"`
	Src       string      `json:"src,omitempty"`
	Dst       string      `json:"dst,omitempty"`
}

// batchResultDTO is the per-op outcome: "ok", "failed" (the first op
// that errored), or "skipped" (ops after the failure).
type batchResultDTO struct {
	Op     string `json:"op"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// journalTargets converts API targets to journal form.
func journalTargets(ts []targetDTO) []snap.Target {
	out := make([]snap.Target, len(ts))
	for i, t := range ts {
		out[i] = snap.Target{
			Src: t.Src, Dst: t.Dst,
			RateBps:      float64(topology.Gbps(t.RateGbps)),
			MaxLatencyNs: t.MaxLatNs,
		}
	}
	return out
}

// expandBatchOp lowers one API op to its journal ops. Migrate expands
// to evict + re-admit; everything else maps one-to-one.
func expandBatchOp(op batchOpDTO) ([]snap.Entry, error) {
	switch op.Op {
	case "admit":
		return []snap.Entry{{Kind: snap.KindAdmit, Tenant: op.Tenant,
			Targets: journalTargets(op.Targets), Avoid: op.Avoid}}, nil
	case "evict":
		return []snap.Entry{{Kind: snap.KindEvict, Tenant: op.Tenant}}, nil
	case "migrate":
		return []snap.Entry{
			{Kind: snap.KindEvict, Tenant: op.Tenant},
			{Kind: snap.KindAdmit, Tenant: op.Tenant,
				Targets: journalTargets(op.Targets), Avoid: op.Avoid},
		}, nil
	case "set-cap":
		if op.CapBps < 0 {
			return nil, fmt.Errorf("set-cap needs a non-negative cap_bps (use clear-cap to remove)")
		}
		return []snap.Entry{{Kind: snap.KindSetCap, Link: op.Link, Tenant: op.Tenant,
			CapBps: op.CapBps}}, nil
	case "clear-cap":
		return []snap.Entry{{Kind: snap.KindSetCap, Link: op.Link, Tenant: op.Tenant,
			CapBps: -1}}, nil
	case "degrade":
		return []snap.Entry{{Kind: snap.KindDegrade, Link: op.Link,
			LossFrac: op.LossFrac, ExtraNs: op.ExtraNs}}, nil
	case "fail":
		return []snap.Entry{{Kind: snap.KindFail, Link: op.Link}}, nil
	case "restore-link":
		return []snap.Entry{{Kind: snap.KindRestoreLink, Link: op.Link}}, nil
	case "set-config":
		return []snap.Entry{{Kind: snap.KindSetConfig, Component: op.Component,
			Key: op.Key, Value: op.Value}}, nil
	case "workload":
		return []snap.Entry{{Kind: snap.KindWorkload, Workload: op.Workload,
			Tenant: op.Tenant, Src: op.Src, Dst: op.Dst}}, nil
	}
	return nil, fmt.Errorf("unknown batch op %q", op.Op)
}

// postBatch applies a typed multi-op mutation envelope as one journal
// entry and one solver settle. The response carries a per-op result
// array aligned with the request ops (a migrate folds its two journal
// ops into one result) plus the observed settle count, so clients can
// see the coalescing they paid for. Partial application — the first
// failing op aborts the rest — comes back as 409 with the same result
// array inside the error envelope's details.
func (s *Server) postBatch(w http.ResponseWriter, r *http.Request) {
	if s.sess == nil {
		writeErr(w, http.StatusNotFound, errNoSession)
		return
	}
	var req struct {
		Ops []batchOpDTO `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one op"))
		return
	}
	// Lower API ops to journal ops, remembering which request op each
	// journal op came from so results can be folded back.
	var entries []snap.Entry
	var owner []int
	for i, op := range req.Ops {
		ops, err := expandBatchOp(op)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: %w", i, err))
			return
		}
		entries = append(entries, ops...)
		for range ops {
			owner = append(owner, i)
		}
	}
	before := s.mgr.Fabric().SolverStats()
	opResults, applyErr := s.sess.ApplyBatch(entries)
	if opResults == nil {
		// Structural rejection: nothing was applied or journaled.
		writeErr(w, http.StatusBadRequest, applyErr)
		return
	}
	settles := s.mgr.Fabric().SolverStats().Solves - before.Solves
	// Fold per-journal-op results back onto request ops: an expanded op
	// is "ok" only if all its journal ops applied, "failed" if any
	// failed, otherwise "skipped".
	results := make([]batchResultDTO, len(req.Ops))
	for i := range results {
		results[i] = batchResultDTO{Op: req.Ops[i].Op, Status: "ok"}
	}
	for k, res := range opResults {
		out := &results[owner[k]]
		switch res.Status {
		case "failed":
			out.Status, out.Error = "failed", res.Error
		case "skipped":
			if out.Status == "ok" {
				out.Status = "skipped"
			}
		}
	}
	body := map[string]any{
		"results":        results,
		"solver_settles": settles,
	}
	if applyErr != nil {
		writeErrDetails(w, http.StatusConflict, applyErr, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// getSolver serves the fabric's component-solver snapshot. Write lock:
// sizing the live partition walks the union-find with path
// compression, which mutates finder state.
func (s *Server) getSolver(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Fabric().SolverStats())
}

// fleetSolverDTO is the fleet roll-up of per-host solver stats.
type fleetSolverDTO struct {
	Hosts map[string]fabric.SolverStats `json:"hosts"`
	// Totals sums the cumulative counters and the live partition shape
	// across hosts; LargestComponent is the fleet-wide maximum.
	Totals fabric.SolverStats `json:"totals"`
}

// getFleetSolver rolls per-host solver stats up across the fleet.
func (s *FleetServer) getFleetSolver(w http.ResponseWriter, _ *http.Request) {
	out := fleetSolverDTO{Hosts: make(map[string]fabric.SolverStats)}
	for _, h := range s.fleet.Hosts() {
		st := h.Mgr.Fabric().SolverStats()
		out.Hosts[h.Name] = st
		t := &out.Totals
		t.Workers += st.Workers
		t.Components += st.Components
		t.Flows += st.Flows
		if st.LargestComponent > t.LargestComponent {
			t.LargestComponent = st.LargestComponent
		}
		t.Solves += st.Solves
		t.NoopSolves += st.NoopSolves
		t.ParallelSolves += st.ParallelSolves
		t.ComponentsSolved += st.ComponentsSolved
		t.FlowsSolved += st.FlowsSolved
		t.FlowsSkipped += st.FlowsSkipped
		t.Rounds += st.Rounds
		t.Mutations += st.Mutations
		t.Batches += st.Batches
		t.BatchedMutations += st.BatchedMutations
		t.WorkerBusyNs += st.WorkerBusyNs
		t.ParallelWallNs += st.ParallelWallNs
	}
	writeJSON(w, http.StatusOK, out)
}
