package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

type batchResponse struct {
	Results       []batchResultDTO `json:"results"`
	SolverSettles uint64           `json:"solver_settles"`
}

// TestBatchEndpointOneSettle drives the headline contract over HTTP: a
// multi-op envelope lands as one solver settle, and the solver
// introspection endpoint reflects the batch.
func TestBatchEndpointOneSettle(t *testing.T) {
	_, ts := newSessionServer(t)
	var out batchResponse
	code := postJSON(t, ts.URL+"/api/v1/batch", `{"ops":[
		{"op":"admit","tenant":"kv","targets":[{"src":"nic0","dst":"socket0.dimm0_0","rate_gbps":20}]},
		{"op":"admit","tenant":"ml","targets":[{"src":"gpu0","dst":"socket0.dimm0_0","rate_gbps":10}]},
		{"op":"set-cap","link":"pcieswitch0->nic0","tenant":"kv","cap_bps":5e9},
		{"op":"workload","workload":"scan","tenant":"scan"}
	]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Status != "ok" {
			t.Fatalf("op %d (%s): status %q (%s)", i, r.Op, r.Status, r.Error)
		}
	}
	if out.SolverSettles != 1 {
		t.Fatalf("batch settled the solver %d times, want exactly 1", out.SolverSettles)
	}

	var stats struct {
		Components int    `json:"components"`
		Flows      int    `json:"flows"`
		Batches    uint64 `json:"batches"`
		Mutations  uint64 `json:"mutations"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fabric/solver", &stats); code != http.StatusOK {
		t.Fatalf("solver stats status %d", code)
	}
	if stats.Flows == 0 || stats.Components == 0 {
		t.Fatalf("solver stats missing live shape: %+v", stats)
	}
	if stats.Batches == 0 || stats.Mutations == 0 {
		t.Fatalf("solver stats missing batch accounting: %+v", stats)
	}
}

// TestBatchEndpointMigrate checks the migrate op: evict + re-admit as
// one request op, folded into one result.
func TestBatchEndpointMigrate(t *testing.T) {
	_, ts := newSessionServer(t)
	if code := postJSON(t, ts.URL+"/api/v1/tenants",
		`{"tenant":"kv","targets":[{"src":"nic0","dst":"socket0.dimm0_0","rate_gbps":40}]}`, nil); code != http.StatusCreated {
		t.Fatalf("admit status %d", code)
	}
	var out batchResponse
	code := postJSON(t, ts.URL+"/api/v1/batch", `{"ops":[
		{"op":"migrate","tenant":"kv","targets":[{"src":"nic0","dst":"socket1.dimm1_0","rate_gbps":20}]}
	]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("migrate batch status %d: %+v", code, out)
	}
	if len(out.Results) != 1 || out.Results[0].Status != "ok" {
		t.Fatalf("migrate results %+v", out.Results)
	}
	if out.SolverSettles != 1 {
		t.Fatalf("migrate settled the solver %d times, want 1", out.SolverSettles)
	}
	var tenants []struct {
		ID string `json:"id"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/tenants", &tenants); code != http.StatusOK {
		t.Fatalf("tenants status %d", code)
	}
	if len(tenants) != 1 || tenants[0].ID != "kv" {
		t.Fatalf("after migrate, tenants = %+v", tenants)
	}
}

// TestBatchEndpointPartialFailure checks the 409 contract: the typed
// envelope carries the per-op result array in details.
func TestBatchEndpointPartialFailure(t *testing.T) {
	_, ts := newSessionServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", strings.NewReader(`{"ops":[
		{"op":"admit","tenant":"kv","targets":[{"src":"nic0","dst":"socket0.dimm0_0","rate_gbps":20}]},
		{"op":"evict","tenant":"ghost"},
		{"op":"fail","link":"pcieswitch0->nic0"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("partial batch status %d, want 409", resp.StatusCode)
	}
	detail := decodeEnvelope(t, resp)
	if detail.Code != CodeConflict {
		t.Fatalf("envelope code %q", detail.Code)
	}
	raw, err := json.Marshal(detail.Details)
	if err != nil {
		t.Fatal(err)
	}
	var body batchResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("envelope details are not the batch result body: %v", err)
	}
	want := []string{"ok", "failed", "skipped"}
	for i, r := range body.Results {
		if r.Status != want[i] {
			t.Fatalf("op %d: status %q, want %q", i, r.Status, want[i])
		}
	}
}

// TestBatchEndpointValidation checks the 400 paths: unknown op, empty
// envelope, malformed JSON.
func TestBatchEndpointValidation(t *testing.T) {
	_, ts := newSessionServer(t)
	for _, body := range []string{
		`{"ops":[{"op":"reboot"}]}`,
		`{"ops":[]}`,
		`{"ops":[{"op":"set-cap","link":"l","tenant":"kv","cap_bps":-5}]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
		decodeEnvelope(t, resp)
	}
}

// TestBatchRequiresSession checks that a server without journaling
// rejects batches with the envelope 404.
func TestBatchRequiresSession(t *testing.T) {
	_, ts := newServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json",
		strings.NewReader(`{"ops":[{"op":"evict","tenant":"kv"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("sessionless batch status %d, want 404", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
}

// TestFleetSolverRollup checks the fleet roll-up endpoint aggregates
// per-host solver stats.
func TestFleetSolverRollup(t *testing.T) {
	_, ts := newFleetServer(t)
	if code := postJSON(t, ts.URL+"/api/v1/fleet/tenants",
		`{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":8}]}`, nil); code != http.StatusCreated {
		t.Fatalf("place status %d", code)
	}
	var out struct {
		Hosts map[string]struct {
			Flows int `json:"flows"`
		} `json:"hosts"`
		Totals struct {
			Flows     int    `json:"flows"`
			Mutations uint64 `json:"mutations"`
		} `json:"totals"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/fleet/fabric/solver", &out); code != http.StatusOK {
		t.Fatalf("fleet solver status %d", code)
	}
	if len(out.Hosts) != 2 {
		t.Fatalf("roll-up covers %d hosts, want 2", len(out.Hosts))
	}
	sum := 0
	for _, h := range out.Hosts {
		sum += h.Flows
	}
	if out.Totals.Flows != sum || out.Totals.Mutations == 0 {
		t.Fatalf("totals %+v do not aggregate hosts (flow sum %d)", out.Totals, sum)
	}
}
