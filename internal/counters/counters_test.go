package counters

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// setup builds a minimal fabric with one saturating flow nic0 -> dimm.
func setup(t *testing.T, cfg Config) (*Bank, *fabric.Fabric, *simtime.Engine, topology.Path) {
	t.Helper()
	e := simtime.NewEngine(42)
	topo := topology.MinimalHost()
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	p, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.AddFlow(&fabric.Flow{Tenant: "t1", Path: p, Demand: topology.GBps(10)}); err != nil {
		t.Fatal(err)
	}
	b, err := NewBank(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, fab, e, p
}

func TestConfigValidation(t *testing.T) {
	e := simtime.NewEngine(1)
	fab := fabric.New(topology.MinimalHost(), e, fabric.DefaultConfig())
	bad := []Config{
		{SamplePeriod: -1},
		{Quantum: -1},
		{NoiseFrac: -0.1},
		{NoiseFrac: 1},
	}
	for i, c := range bad {
		if _, err := NewBank(fab, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewBank(fab, Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestCounterTracksTraffic(t *testing.T) {
	b, _, e, p := setup(t, Config{SamplePeriod: simtime.Millisecond, Quantum: 64})
	link := p.Links[0].ID
	e.RunFor(10 * simtime.Millisecond)
	s, err := b.ReadLink(link)
	if err != nil {
		t.Fatal(err)
	}
	// 10 GB/s for 10 ms = 100 MB.
	want := 100e6
	if math.Abs(float64(s.Bytes)-want) > want*0.01 {
		t.Fatalf("counter %d, want ~%v", s.Bytes, want)
	}
	if s.Stale {
		t.Fatal("first read marked stale")
	}
}

func TestQuantization(t *testing.T) {
	b, _, e, p := setup(t, Config{SamplePeriod: 1, Quantum: 64})
	e.RunFor(simtime.Millisecond)
	s, _ := b.ReadLink(p.Links[0].ID)
	if s.Bytes%64 != 0 {
		t.Fatalf("counter %d not 64-byte quantized", s.Bytes)
	}
}

func TestRateLimitServesStale(t *testing.T) {
	b, _, e, p := setup(t, Config{SamplePeriod: simtime.Millisecond, Quantum: 1})
	link := p.Links[0].ID
	e.RunFor(2 * simtime.Millisecond)
	s1, _ := b.ReadLink(link)
	e.RunFor(100 * simtime.Microsecond) // below sample period
	s2, _ := b.ReadLink(link)
	if !s2.Stale {
		t.Fatal("fast re-read not marked stale")
	}
	if s2.Bytes != s1.Bytes || s2.At != s1.At {
		t.Fatal("stale read changed value")
	}
	e.RunFor(simtime.Millisecond)
	s3, _ := b.ReadLink(link)
	if s3.Stale {
		t.Fatal("read after period still stale")
	}
	if s3.Bytes <= s1.Bytes {
		t.Fatal("fresh read did not advance")
	}
}

func TestMonotonicity(t *testing.T) {
	b, _, e, p := setup(t, Config{SamplePeriod: 1, Quantum: 1, NoiseFrac: 0.2})
	link := p.Links[0].ID
	var prev uint64
	for i := 0; i < 50; i++ {
		e.RunFor(100 * simtime.Microsecond)
		s, err := b.ReadLink(link)
		if err != nil {
			t.Fatal(err)
		}
		if s.Bytes < prev {
			t.Fatalf("counter ran backwards: %d -> %d", prev, s.Bytes)
		}
		prev = s.Bytes
	}
}

func TestNoiseBounded(t *testing.T) {
	b, fab, e, p := setup(t, Config{SamplePeriod: 1, Quantum: 1, NoiseFrac: 0.05})
	link := p.Links[0].ID
	e.RunFor(10 * simtime.Millisecond)
	s, _ := b.ReadLink(link)
	st, _ := fab.LinkStatsFor(link)
	if math.Abs(float64(s.Bytes)-st.TotalBytes) > st.TotalBytes*0.06 {
		t.Fatalf("noise beyond bound: counter %d vs truth %v", s.Bytes, st.TotalBytes)
	}
}

func TestRateBetween(t *testing.T) {
	a := Sample{At: 0, Bytes: 0}
	c := Sample{At: simtime.Time(simtime.Second), Bytes: 1000}
	r, err := RateBetween(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1000 {
		t.Fatalf("rate %v, want 1000", r)
	}
	if _, err := RateBetween(c, a); err == nil {
		t.Fatal("unordered samples accepted")
	}
	// Counter reset tolerance: negative delta clamps to zero.
	d := Sample{At: simtime.Time(2 * simtime.Second), Bytes: 500}
	r, _ = RateBetween(c, d)
	if r != 0 {
		t.Fatalf("negative delta rate %v, want 0", r)
	}
}

func TestClassBytes(t *testing.T) {
	b, _, e, _ := setup(t, Config{SamplePeriod: 1, Quantum: 1})
	e.RunFor(5 * simtime.Millisecond)
	pcie, err := b.ClassBytes(topology.ClassPCIeDown, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pcie == 0 {
		t.Fatal("PCIe class counter zero under load")
	}
	inter, err := b.ClassBytes(topology.ClassInterHost, -1)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 0 {
		t.Fatal("idle inter-host counter nonzero")
	}
}

func TestSnapshotCoversAllLinks(t *testing.T) {
	b, fab, e, _ := setup(t, Config{SamplePeriod: 1, Quantum: 1})
	e.RunFor(simtime.Millisecond)
	snap := b.Snapshot()
	if len(snap) != fab.Topology().NumLinks() {
		t.Fatalf("snapshot has %d links, want %d", len(snap), fab.Topology().NumLinks())
	}
}

func TestReadUnknownLink(t *testing.T) {
	b, _, _, _ := setup(t, Config{})
	if _, err := b.ReadLink("nope->nope"); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestAttributeEvenly(t *testing.T) {
	got := AttributeEvenly(300, []fabric.TenantID{"a", "b", "c"})
	for _, tn := range []fabric.TenantID{"a", "b", "c"} {
		if got[tn] != 100 {
			t.Fatalf("share %v", got)
		}
	}
	if len(AttributeEvenly(100, nil)) != 0 {
		t.Fatal("empty tenant list should yield empty map")
	}
}
