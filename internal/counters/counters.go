// Package counters emulates the hardware performance counters of a
// commodity server — the Intel PCM/RDT-style interface the paper
// discusses under §3.1 Q1. It deliberately reproduces their
// limitations: counters are aggregate-only (no per-tenant attribution),
// quantized to cache-line granularity, slightly noisy, and rate-limited
// (reads more frequent than the sample period return the previous,
// stale sample).
//
// The monitoring system can use this bank as its "hardware counter"
// telemetry source and compare it against exact software interception,
// quantifying the attribution-accuracy gap of experiment E5.
package counters

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Config sets the counter bank's fidelity limits.
type Config struct {
	// SamplePeriod is the minimum interval between fresh samples of
	// one counter; faster reads return the cached value. Hardware
	// counter interfaces are typically limited to O(ms) refresh.
	SamplePeriod simtime.Duration
	// Quantum is the counting granularity in bytes (cache line = 64).
	Quantum int64
	// NoiseFrac adds uniform +/- noise of this relative magnitude to
	// each fresh sample, modeling measurement error. Zero disables.
	NoiseFrac float64
}

// DefaultConfig matches a PCM-like tool: 1 ms refresh, 64-byte
// quantum, 0.5% noise.
func DefaultConfig() Config {
	return Config{
		SamplePeriod: simtime.Millisecond,
		Quantum:      64,
		NoiseFrac:    0.005,
	}
}

// Sample is one counter reading.
type Sample struct {
	// At is when the reading was (actually) taken; stale reads carry
	// the original sample time.
	At simtime.Time
	// Bytes is the cumulative byte count since fabric start.
	Bytes uint64
	// Stale reports that the rate limit served a cached value.
	Stale bool
}

// Bank is a set of per-link hardware counters over one fabric.
type Bank struct {
	fab *fabric.Fabric
	cfg Config

	cache map[topology.LinkID]Sample
}

// NewBank creates a counter bank.
func NewBank(fab *fabric.Fabric, cfg Config) (*Bank, error) {
	if cfg.SamplePeriod < 0 || cfg.Quantum < 0 || cfg.NoiseFrac < 0 || cfg.NoiseFrac >= 1 {
		return nil, fmt.Errorf("counters: invalid config %+v", cfg)
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 1
	}
	return &Bank{fab: fab, cfg: cfg, cache: make(map[topology.LinkID]Sample)}, nil
}

// ReadLink samples the cumulative bytes counter of one directed link,
// subject to the bank's fidelity limits.
func (b *Bank) ReadLink(id topology.LinkID) (Sample, error) {
	now := b.fab.Engine().Now()
	if prev, ok := b.cache[id]; ok && now.Sub(prev.At) < b.cfg.SamplePeriod {
		stale := prev
		stale.Stale = true
		return stale, nil
	}
	st, err := b.fab.LinkStatsFor(id)
	if err != nil {
		return Sample{}, err
	}
	truth := st.TotalBytes
	if b.cfg.NoiseFrac > 0 {
		n := (b.fab.Engine().Rand().Float64()*2 - 1) * b.cfg.NoiseFrac
		truth *= 1 + n
	}
	v := int64(truth)
	v -= v % b.cfg.Quantum
	if v < 0 {
		v = 0
	}
	s := Sample{At: now, Bytes: uint64(v)}
	if prev, ok := b.cache[id]; ok && s.Bytes < prev.Bytes {
		s.Bytes = prev.Bytes // counters never run backwards
	}
	b.cache[id] = s
	return s, nil
}

// RateBetween converts two samples of the same counter to an average
// byte rate. It returns an error when the samples are not ordered.
func RateBetween(a, c Sample) (topology.Rate, error) {
	if c.At <= a.At {
		return 0, fmt.Errorf("counters: samples not time-ordered")
	}
	d := c.At.Sub(a.At).Seconds()
	bytes := float64(c.Bytes) - float64(a.Bytes)
	if bytes < 0 {
		bytes = 0
	}
	return topology.Rate(bytes / d), nil
}

// ClassBytes sums fresh readings of every link of one class — the
// "PCIe bandwidth per socket"-style aggregate PCM reports. socket < 0
// aggregates the whole host.
func (b *Bank) ClassBytes(class topology.LinkClass, socket int) (uint64, error) {
	var sum uint64
	topo := b.fab.Topology()
	for _, l := range topo.Links() {
		if l.Class != class {
			continue
		}
		if socket >= 0 {
			from := topo.Component(l.From)
			if from == nil || from.Socket != socket {
				continue
			}
		}
		s, err := b.ReadLink(l.ID)
		if err != nil {
			return 0, err
		}
		sum += s.Bytes
	}
	return sum, nil
}

// Snapshot reads every link counter once and returns the samples keyed
// by link ID. Stale entries are included as served.
func (b *Bank) Snapshot() map[topology.LinkID]Sample {
	out := make(map[topology.LinkID]Sample)
	for _, l := range b.fab.Topology().Links() {
		s, err := b.ReadLink(l.ID)
		if err == nil {
			out[l.ID] = s
		}
	}
	return out
}

// AttributeEvenly is the best a counter-only monitor can do for
// per-tenant attribution: divide a link's aggregate bytes evenly among
// the tenants known to be active on it. The error of this estimate
// versus interception ground truth is measured by experiment E5.
func AttributeEvenly(total uint64, tenants []fabric.TenantID) map[fabric.TenantID]float64 {
	out := make(map[fabric.TenantID]float64, len(tenants))
	if len(tenants) == 0 {
		return out
	}
	share := float64(total) / float64(len(tenants))
	for _, t := range tenants {
		out[t] = share
	}
	return out
}
