package diag

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Hop is one step of an ihtrace: the component reached, the link used,
// and latency attribution.
type Hop struct {
	Index int
	Link  topology.LinkID
	To    topology.CompID
	// Cumulative is the round-trip time to this hop.
	Cumulative simtime.Duration
	// HopLatency is the incremental RTT attributed to this hop
	// (difference of consecutive cumulative probes; can absorb
	// congestion jitter).
	HopLatency simtime.Duration
	// Lost marks probes to this hop that did not return.
	Lost bool
}

// TraceReport is an ihtrace result: per-hop latency along the current
// path from Src to Dst, the tool an operator reaches for when a path
// is slow and the question is "which hop?".
type TraceReport struct {
	Src, Dst topology.CompID
	Path     topology.Path
	Hops     []Hop
}

func (r TraceReport) String() string {
	s := fmt.Sprintf("trace %s -> %s (%d hops)\n", r.Src, r.Dst, len(r.Hops))
	for _, h := range r.Hops {
		status := ""
		if h.Lost {
			status = "  LOST"
		}
		s += fmt.Sprintf("  %2d  %-40s rtt=%-12v hop=%-12v%s\n",
			h.Index+1, h.Link, h.Cumulative, h.HopLatency, status)
	}
	return s
}

// TraceSession probes each path prefix in turn.
type TraceSession struct {
	fab    *fabric.Fabric
	size   int64
	report TraceReport
	next   int
	done   bool
	onDone func(TraceReport)
}

// StartTrace begins an ihtrace from src to dst along the current
// shortest path, probing hop 1, then hops 1-2, and so on, with
// probeSize bytes each way.
func StartTrace(fab *fabric.Fabric, src, dst topology.CompID, probeSize int64, onDone func(TraceReport)) (*TraceSession, error) {
	if probeSize < 0 {
		return nil, fmt.Errorf("diag: negative probe size")
	}
	path, err := fab.Topology().ShortestPath(src, dst)
	if err != nil {
		return nil, err
	}
	s := &TraceSession{fab: fab, size: probeSize, onDone: onDone}
	s.report = TraceReport{Src: src, Dst: dst, Path: path}
	s.probeNext()
	return s, nil
}

func (s *TraceSession) probeNext() {
	if s.next >= s.report.Path.Hops() {
		s.done = true
		if s.onDone != nil {
			s.onDone(s.report)
		}
		return
	}
	prefix := topology.Path{Links: s.report.Path.Links[:s.next+1]}
	hopIdx := s.next
	err := s.fab.SendTransaction(fabric.TxOptions{
		Tenant: fabric.SystemTenant,
		Src:    prefix.Src(), Dst: prefix.Dst(),
		Path:     prefix,
		ReqBytes: s.size, RespBytes: s.size,
	}, func(r fabric.TxRecord) {
		h := Hop{
			Index:      hopIdx,
			Link:       s.report.Path.Links[hopIdx].ID,
			To:         s.report.Path.Links[hopIdx].To,
			Cumulative: r.RTT,
			Lost:       r.Lost,
		}
		if hopIdx == 0 {
			h.HopLatency = r.RTT
		} else {
			prev := s.report.Hops[hopIdx-1]
			if !prev.Lost && !r.Lost {
				h.HopLatency = r.RTT - prev.Cumulative
				if h.HopLatency < 0 {
					h.HopLatency = 0
				}
			}
		}
		s.report.Hops = append(s.report.Hops, h)
		s.next++
		s.probeNext()
	})
	if err != nil {
		// Record the hop as lost and continue.
		s.report.Hops = append(s.report.Hops, Hop{
			Index: hopIdx,
			Link:  s.report.Path.Links[hopIdx].ID,
			To:    s.report.Path.Links[hopIdx].To,
			Lost:  true,
		})
		s.next++
		s.probeNext()
	}
}

// Done reports whether the trace finished.
func (s *TraceSession) Done() bool { return s.done }

// Report returns the (possibly partial) trace.
func (s *TraceSession) Report() TraceReport { return s.report }

// RunTrace drives the engine until the trace completes. Standalone
// use only.
func RunTrace(fab *fabric.Fabric, src, dst topology.CompID, probeSize int64) (TraceReport, error) {
	s, err := StartTrace(fab, src, dst, probeSize, nil)
	if err != nil {
		return TraceReport{}, err
	}
	e := fab.Engine()
	for !s.Done() && e.Pending() > 0 {
		e.Step()
	}
	if !s.Done() {
		return s.Report(), fmt.Errorf("diag: trace did not complete")
	}
	return s.Report(), nil
}
