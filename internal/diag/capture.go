package diag

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// captureRecord is the serialized form of one sniffed transaction —
// the "pcap" of the intra-host wireshark. Paths serialize as link IDs
// so captures replay on any fabric with the same topology.
type captureRecord struct {
	Tenant    string   `json:"tenant"`
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	Links     []string `json:"links"`
	ReqBytes  int64    `json:"req_bytes"`
	RespBytes int64    `json:"resp_bytes"`
	SentNs    int64    `json:"sent_ns"`
	RTTNs     int64    `json:"rtt_ns"`
	Lost      bool     `json:"lost,omitempty"`
}

// SaveCapture writes sniffed records as JSON lines.
func SaveCapture(w io.Writer, records []fabric.TxRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range records {
		cr := captureRecord{
			Tenant: string(r.Tenant), Src: string(r.Src), Dst: string(r.Dst),
			ReqBytes: r.ReqBytes, RespBytes: r.RespBytes,
			SentNs: int64(r.Sent), RTTNs: int64(r.RTT), Lost: r.Lost,
		}
		for _, id := range r.Path.LinkIDs() {
			cr.Links = append(cr.Links, string(id))
		}
		if err := enc.Encode(cr); err != nil {
			return fmt.Errorf("diag: save capture: %w", err)
		}
	}
	return nil
}

// Replay is the outcome of re-injecting a capture.
type Replay struct {
	Injected int
	Skipped  int // records whose path no longer resolves
}

// ReplayCapture re-injects a saved capture onto a fabric, preserving
// relative timing (the first record fires immediately, later ones at
// their original offsets). Operators use this to reproduce an incident
// against a candidate fix — the "replay the pcap" workflow. onResult,
// when non-nil, receives each replayed transaction's fresh outcome.
func ReplayCapture(fab *fabric.Fabric, r io.Reader, onResult func(fabric.TxRecord)) (Replay, error) {
	dec := json.NewDecoder(r)
	var recs []captureRecord
	for {
		var cr captureRecord
		if err := dec.Decode(&cr); err == io.EOF {
			break
		} else if err != nil {
			return Replay{}, fmt.Errorf("diag: replay decode: %w", err)
		}
		recs = append(recs, cr)
	}
	if len(recs) == 0 {
		return Replay{}, nil
	}
	base := recs[0].SentNs
	var rep Replay
	topo := fab.Topology()
	for _, cr := range recs {
		var links []*topology.Link
		ok := true
		for _, id := range cr.Links {
			l := topo.Link(topology.LinkID(id))
			if l == nil {
				ok = false
				break
			}
			links = append(links, l)
		}
		if !ok {
			rep.Skipped++
			continue
		}
		opts := fabric.TxOptions{
			Tenant: fabric.TenantID(cr.Tenant),
			Src:    topology.CompID(cr.Src), Dst: topology.CompID(cr.Dst),
			Path:     topology.Path{Links: links},
			ReqBytes: cr.ReqBytes, RespBytes: cr.RespBytes,
		}
		delay := simtime.Duration(cr.SentNs - base)
		if delay < 0 {
			delay = 0
		}
		fab.Engine().After(delay, func() {
			_ = fab.SendTransaction(opts, onResult)
		})
		rep.Injected++
	}
	return rep, nil
}
