package diag

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/simtime"
)

func TestCaptureSaveReplayRoundTrip(t *testing.T) {
	fab, e := newFab(9)
	sn, err := StartSniff(fab, SniffFilter{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a small spread of transactions over time.
	for i := 0; i < 5; i++ {
		i := i
		e.After(simtime.Duration(i)*10*simtime.Microsecond, func() {
			_ = fab.SendTransaction(fabric.TxOptions{
				Tenant: "kv", Src: "gpu0", Dst: "nic0",
				ReqBytes: int64(64 * (i + 1)), RespBytes: 128,
			}, nil)
		})
	}
	e.Run()
	sn.Stop()
	records := sn.Captured()
	if len(records) != 5 {
		t.Fatalf("captured %d", len(records))
	}
	var buf bytes.Buffer
	if err := SaveCapture(&buf, records); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("saved %d lines", lines)
	}

	// Replay onto a fresh fabric; outcomes must match the original
	// timing-wise (same topology, same idle conditions).
	fab2, e2 := newFab(9)
	var replayed []fabric.TxRecord
	rep, err := ReplayCapture(fab2, &buf, func(r fabric.TxRecord) { replayed = append(replayed, r) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 5 || rep.Skipped != 0 {
		t.Fatalf("replay: %+v", rep)
	}
	e2.Run()
	if len(replayed) != 5 {
		t.Fatalf("replayed %d outcomes", len(replayed))
	}
	for i, r := range replayed {
		if r.Lost {
			t.Fatalf("replayed tx %d lost on healthy fabric", i)
		}
		if r.Tenant != "kv" || r.Src != "gpu0" || r.Dst != "nic0" {
			t.Fatalf("replayed tx fields: %+v", r)
		}
	}
	// Relative timing preserved: last send 40us after first.
	gap := replayed[len(replayed)-1].Sent - replayed[0].Sent
	if gap != simtime.Time(40*simtime.Microsecond) {
		t.Fatalf("replay spacing %v, want 40us", gap)
	}
}

func TestReplayOnDifferentTopologySkips(t *testing.T) {
	fab, e := newFab(9)
	sn, _ := StartSniff(fab, SniffFilter{}, 10)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	e.Run()
	sn.Stop()
	var buf bytes.Buffer
	if err := SaveCapture(&buf, sn.Captured()); err != nil {
		t.Fatal(err)
	}
	// A minimal host lacks the two-socket link IDs used by the
	// capture... gpu0->rootport exists on minimal too; corrupt the
	// capture instead to guarantee a missing link.
	corrupted := strings.ReplaceAll(buf.String(), "pcieswitch0", "pcieswitchZZ")
	rep, err := ReplayCapture(fab, strings.NewReader(corrupted), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Injected != 0 {
		t.Fatalf("replay on mismatched topology: %+v", rep)
	}
}

func TestReplayEmptyAndGarbage(t *testing.T) {
	fab, _ := newFab(9)
	rep, err := ReplayCapture(fab, strings.NewReader(""), nil)
	if err != nil || rep.Injected != 0 {
		t.Fatalf("empty capture: %+v, %v", rep, err)
	}
	if _, err := ReplayCapture(fab, strings.NewReader("{not json"), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplayUnderChangedConditions(t *testing.T) {
	// The point of replay: the same traffic against a now-degraded
	// fabric shows the regression.
	fab, e := newFab(9)
	sn, _ := StartSniff(fab, SniffFilter{}, 10)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "gpu0", Dst: "nic0", RespBytes: 64}, nil)
	e.Run()
	sn.Stop()
	origRTT := sn.Captured()[0].RTT
	var buf bytes.Buffer
	_ = SaveCapture(&buf, sn.Captured())

	fab2, e2 := newFab(9)
	_ = fab2.DegradeLink("pcieswitch0->nic0", 0, 5*simtime.Microsecond)
	var got fabric.TxRecord
	_, err := ReplayCapture(fab2, &buf, func(r fabric.TxRecord) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	e2.Run()
	if got.RTT <= origRTT {
		t.Fatalf("replay on degraded fabric RTT %v not above original %v", got.RTT, origRTT)
	}
}
