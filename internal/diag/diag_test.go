package diag

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newFab(seed int64) (*fabric.Fabric, *simtime.Engine) {
	e := simtime.NewEngine(seed)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, e, fabric.DefaultConfig())
	return fab, e
}

func TestPingHealthy(t *testing.T) {
	fab, _ := newFab(1)
	rep, err := RunPing(fab, "gpu0", "nic0", DefaultPingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 10 || rep.Lost != 0 {
		t.Fatalf("sent %d lost %d", rep.Sent, rep.Lost)
	}
	if rep.Min <= 0 || rep.Avg < rep.Min || rep.Max < rep.Avg || rep.P99 > rep.Max {
		t.Fatalf("rtt stats inconsistent: %+v", rep)
	}
	if !strings.Contains(rep.String(), "gpu0 -> nic0") {
		t.Fatalf("report string: %s", rep)
	}
}

func TestPingLoss(t *testing.T) {
	fab, _ := newFab(1)
	_ = fab.FailLink("pcieswitch0->nic0")
	rep, err := RunPing(fab, "gpu0", "nic0", DefaultPingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 10 {
		t.Fatalf("lost %d, want 10", rep.Lost)
	}
}

func TestPingValidation(t *testing.T) {
	fab, _ := newFab(1)
	if _, err := StartPing(fab, "gpu0", "nope", DefaultPingOptions(), nil); err == nil {
		t.Fatal("unknown dst accepted")
	}
	bad := DefaultPingOptions()
	bad.Count = 0
	if _, err := StartPing(fab, "gpu0", "nic0", bad, nil); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestPingDetectsCongestion(t *testing.T) {
	fab, _ := newFab(1)
	idle, err := RunPing(fab, "gpu0", "nic0", DefaultPingOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fab.Topology().ShortestPath("gpu0", "nic0")
	_ = fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: p})
	loaded, err := RunPing(fab, "gpu0", "nic0", DefaultPingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Avg <= idle.Avg {
		t.Fatalf("congested avg %v not above idle %v", loaded.Avg, idle.Avg)
	}
}

func TestTraceWalksPath(t *testing.T) {
	fab, _ := newFab(2)
	rep, err := RunTrace(fab, "gpu0", "socket0.dimm0_0", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hops) != rep.Path.Hops() {
		t.Fatalf("%d hops reported, path has %d", len(rep.Hops), rep.Path.Hops())
	}
	var cum simtime.Duration
	for i, h := range rep.Hops {
		if h.Index != i {
			t.Fatalf("hop index %d at position %d", h.Index, i)
		}
		if h.Lost {
			t.Fatalf("hop %d lost on healthy fabric", i)
		}
		if h.Cumulative < cum {
			t.Fatalf("cumulative RTT decreased at hop %d", i)
		}
		cum = h.Cumulative
	}
	if !strings.Contains(rep.String(), "trace gpu0") {
		t.Fatalf("report: %s", rep)
	}
}

func TestTraceLocalizesDegradedHop(t *testing.T) {
	fab, _ := newFab(2)
	// Degrade the third hop of gpu0 -> dimm path heavily.
	path, _ := fab.Topology().ShortestPath("gpu0", "socket0.dimm0_0")
	victim := path.Links[2]
	_ = fab.DegradeLink(victim.ID, 0, 5*simtime.Microsecond)
	rep, err := RunTrace(fab, "gpu0", "socket0.dimm0_0", 64)
	if err != nil {
		t.Fatal(err)
	}
	// The victim hop must carry by far the largest hop latency.
	worst, worstIdx := simtime.Duration(0), -1
	for _, h := range rep.Hops {
		if h.HopLatency > worst {
			worst, worstIdx = h.HopLatency, h.Index
		}
	}
	if worstIdx != 2 {
		t.Fatalf("worst hop %d (lat %v), want hop 2\n%s", worstIdx, worst, rep)
	}
}

func TestTraceReportsLossAtFailedHop(t *testing.T) {
	fab, _ := newFab(2)
	path, _ := fab.Topology().ShortestPath("gpu0", "socket0.dimm0_0")
	_ = fab.FailLink(path.Links[1].ID)
	rep, err := RunTrace(fab, "gpu0", "socket0.dimm0_0", 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hops[1].Lost {
		t.Fatal("failed hop not marked lost")
	}
	if rep.Hops[0].Lost {
		t.Fatal("hop before failure marked lost")
	}
}

func TestPerfMeasuresBottleneck(t *testing.T) {
	fab, _ := newFab(3)
	rep, err := RunPerf(fab, "gpu0", "nic0", DefaultPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Unloaded: achieved should be within 2% of path capacity.
	if rep.Achieved < rep.PathCapacity*98/100 {
		t.Fatalf("achieved %v well below capacity %v", rep.Achieved, rep.PathCapacity)
	}
	if rep.BottleneckLink == "" {
		t.Fatal("no bottleneck identified")
	}
	if fab.Flows() != 0 {
		t.Fatal("perf left its probe flow behind")
	}
}

func TestPerfUnderContention(t *testing.T) {
	fab, _ := newFab(3)
	p, _ := fab.Topology().ShortestPath("gpu0", "nic0")
	_ = fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: p})
	rep, err := RunPerf(fab, "gpu0", "nic0", DefaultPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Sharing with one background flow: roughly half capacity.
	half := rep.PathCapacity / 2
	if rep.Achieved > half*11/10 || rep.Achieved < half*9/10 {
		t.Fatalf("contended achieved %v, want ~%v", rep.Achieved, half)
	}
}

func TestPerfAsTenantSeesCaps(t *testing.T) {
	fab, _ := newFab(3)
	p, _ := fab.Topology().ShortestPath("gpu0", "nic0")
	capped := topology.Rate(1e9)
	_ = fab.SetTenantCap(p.Links[0].ID, "kv", capped)
	opts := DefaultPerfOptions()
	opts.Tenant = "kv"
	rep, err := RunPerf(fab, "gpu0", "nic0", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Achieved > capped*101/100 {
		t.Fatalf("capped tenant achieved %v, cap %v", rep.Achieved, capped)
	}
}

func TestPerfValidation(t *testing.T) {
	fab, _ := newFab(3)
	if _, err := StartPerf(fab, "gpu0", "nic0", PerfOptions{Duration: 0}, nil); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := StartPerf(fab, "gpu0", "nope", DefaultPerfOptions(), nil); err == nil {
		t.Fatal("unknown dst accepted")
	}
}

func TestSnifferFilters(t *testing.T) {
	fab, e := newFab(4)
	sn, err := StartSniff(fab, SniffFilter{Tenant: "kv"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "kv", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "ml", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	e.Run()
	seen, matched := sn.Counts()
	if seen != 2 || matched != 1 {
		t.Fatalf("seen %d matched %d, want 2/1", seen, matched)
	}
	got := sn.Captured()
	if len(got) != 1 || got[0].Tenant != "kv" {
		t.Fatalf("captured %+v", got)
	}
	sn.Stop()
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "kv", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	e.Run()
	if s, _ := sn.Counts(); s != 2 {
		t.Fatal("sniffer saw traffic after Stop")
	}
}

func TestSnifferLinkAndLostFilters(t *testing.T) {
	fab, e := newFab(4)
	path, _ := fab.Topology().ShortestPath("gpu0", "nic0")
	snLink, _ := StartSniff(fab, SniffFilter{Link: path.Links[0].ID}, 10)
	snLost, _ := StartSniff(fab, SniffFilter{LostOnly: true}, 10)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "ssd0", Dst: "socket0.dimm0_0", RespBytes: 1}, nil)
	e.Run()
	if _, m := snLink.Counts(); m != 1 {
		t.Fatalf("link filter matched %d, want 1", m)
	}
	if _, m := snLost.Counts(); m != 0 {
		t.Fatalf("lost filter matched %d, want 0", m)
	}
	_ = fab.FailLink(path.Links[1].ID)
	_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	e.Run()
	if _, m := snLost.Counts(); m != 1 {
		t.Fatalf("lost filter matched %d after failure, want 1", m)
	}
}

func TestSnifferCapacityEviction(t *testing.T) {
	fab, e := newFab(4)
	sn, _ := StartSniff(fab, SniffFilter{}, 3)
	for i := 0; i < 5; i++ {
		_ = fab.SendTransaction(fabric.TxOptions{Tenant: "a", Src: "gpu0", Dst: "nic0", RespBytes: 1}, nil)
	}
	e.Run()
	if n := len(sn.Captured()); n != 3 {
		t.Fatalf("retained %d, want 3", n)
	}
	if _, err := StartSniff(fab, SniffFilter{}, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
