package diag_test

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// ihping as a library: probe a pair, read loss and latency.
func ExampleRunPing() {
	engine := simtime.NewEngine(1)
	fab := fabric.New(topology.TwoSocketServer(), engine, fabric.DefaultConfig())
	rep, err := diag.RunPing(fab, "gpu0", "nic0", diag.DefaultPingOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sent=%d lost=%d min=%v\n", rep.Sent, rep.Lost, rep.Min)
	// Output:
	// sent=10 lost=0 min=524ns
}

// ihtrace as a library: the degraded hop carries the latency.
func ExampleRunTrace() {
	engine := simtime.NewEngine(1)
	fab := fabric.New(topology.TwoSocketServer(), engine, fabric.DefaultConfig())
	_ = fab.DegradeLink("pcieswitch0->nic0", 0, 5*simtime.Microsecond)
	rep, err := diag.RunTrace(fab, "gpu0", "nic0", 64)
	if err != nil {
		fmt.Println(err)
		return
	}
	worst := rep.Hops[0]
	for _, h := range rep.Hops {
		if h.HopLatency > worst.HopLatency {
			worst = h
		}
	}
	fmt.Println(worst.Link)
	// Output:
	// pcieswitch0->nic0
}
