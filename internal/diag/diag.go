// Package diag provides the intra-host analogues of the inter-host
// debugging toolbox the paper calls for in §3.1: ihping (pairwise
// latency/loss probing), ihtrace (hop-by-hop path walk with per-hop
// latency attribution), ihperf (achievable-bandwidth probing), and
// ihsniff (transaction capture with filters).
//
// Each tool runs as an asynchronous session against a live fabric so
// it can be used inside a running simulation; the Run* convenience
// wrappers drive the engine to completion for standalone use (the
// cmd/ih* binaries).
package diag

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// PingOptions configures an ihping session.
type PingOptions struct {
	Count    int
	Size     int64 // probe payload bytes each way
	Interval simtime.Duration
	// Path optionally pins the probe path.
	Path topology.Path
}

// DefaultPingOptions sends ten 64-byte probes 10 us apart.
func DefaultPingOptions() PingOptions {
	return PingOptions{Count: 10, Size: 64, Interval: 10 * simtime.Microsecond}
}

// PingReport summarizes an ihping session.
type PingReport struct {
	Src, Dst           topology.CompID
	Sent, Lost         int
	Min, Avg, Max, P99 simtime.Duration
	RTTs               []simtime.Duration
}

func (r PingReport) String() string {
	return fmt.Sprintf("%s -> %s: %d sent, %d lost, rtt min/avg/p99/max = %v/%v/%v/%v",
		r.Src, r.Dst, r.Sent, r.Lost, r.Min, r.Avg, r.P99, r.Max)
}

// PingSession is an in-flight ihping.
type PingSession struct {
	fab      *fabric.Fabric
	opts     PingOptions
	src, dst topology.CompID
	report   PingReport
	received int
	done     bool
	onDone   func(PingReport)
}

// StartPing begins probing and returns the session. onDone (optional)
// fires when the last probe resolves.
func StartPing(fab *fabric.Fabric, src, dst topology.CompID, opts PingOptions, onDone func(PingReport)) (*PingSession, error) {
	if opts.Count <= 0 || opts.Size < 0 || opts.Interval < 0 {
		return nil, fmt.Errorf("diag: invalid ping options %+v", opts)
	}
	if fab.Topology().Component(src) == nil || fab.Topology().Component(dst) == nil {
		return nil, fmt.Errorf("diag: unknown endpoint %s or %s", src, dst)
	}
	s := &PingSession{fab: fab, opts: opts, src: src, dst: dst, onDone: onDone}
	s.report.Src, s.report.Dst = src, dst
	for i := 0; i < opts.Count; i++ {
		delay := simtime.Duration(i) * opts.Interval
		fab.Engine().After(delay, s.sendOne)
	}
	return s, nil
}

func (s *PingSession) sendOne() {
	s.report.Sent++
	err := s.fab.SendTransaction(fabric.TxOptions{
		Tenant: fabric.SystemTenant, Src: s.src, Dst: s.dst,
		Path: s.opts.Path, ReqBytes: s.opts.Size, RespBytes: s.opts.Size,
	}, s.onResult)
	if err != nil {
		s.onResult(fabric.TxRecord{Lost: true})
	}
}

func (s *PingSession) onResult(r fabric.TxRecord) {
	s.received++
	if r.Lost {
		s.report.Lost++
	} else {
		s.report.RTTs = append(s.report.RTTs, r.RTT)
	}
	if s.received == s.opts.Count {
		s.finalize()
	}
}

func (s *PingSession) finalize() {
	s.done = true
	rtts := s.report.RTTs
	if len(rtts) > 0 {
		sorted := append([]simtime.Duration(nil), rtts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.report.Min = sorted[0]
		s.report.Max = sorted[len(sorted)-1]
		var sum simtime.Duration
		for _, v := range sorted {
			sum += v
		}
		s.report.Avg = sum / simtime.Duration(len(sorted))
		s.report.P99 = sorted[(len(sorted)*99)/100]
	}
	if s.onDone != nil {
		s.onDone(s.report)
	}
}

// Done reports whether all probes have resolved.
func (s *PingSession) Done() bool { return s.done }

// Report returns the (possibly partial) report.
func (s *PingSession) Report() PingReport { return s.report }

// RunPing drives the engine until the session completes and returns
// the report. For standalone use only — do not call from inside an
// engine callback.
func RunPing(fab *fabric.Fabric, src, dst topology.CompID, opts PingOptions) (PingReport, error) {
	s, err := StartPing(fab, src, dst, opts, nil)
	if err != nil {
		return PingReport{}, err
	}
	e := fab.Engine()
	for !s.Done() && e.Pending() > 0 {
		e.Step()
	}
	if !s.Done() {
		return s.Report(), fmt.Errorf("diag: ping did not complete")
	}
	return s.Report(), nil
}
