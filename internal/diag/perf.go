package diag

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// PerfOptions configures an ihperf bandwidth probe.
type PerfOptions struct {
	// Duration of the measurement.
	Duration simtime.Duration
	// Tenant to run the probe as; defaults to the system tenant.
	// Running as a real tenant measures that tenant's achievable
	// bandwidth under the arbiter's caps — exactly what a tenant
	// inside a virtualized intra-host network would observe.
	Tenant fabric.TenantID
	// Path optionally pins the probe path.
	Path topology.Path
}

// DefaultPerfOptions probes for 1 ms of virtual time.
func DefaultPerfOptions() PerfOptions {
	return PerfOptions{Duration: simtime.Millisecond, Tenant: fabric.SystemTenant}
}

// PerfReport is an ihperf result.
type PerfReport struct {
	Src, Dst topology.CompID
	Path     topology.Path
	// Achieved is the measured throughput over the window.
	Achieved topology.Rate
	// PathCapacity is the path's effective bottleneck capacity after
	// protocol derating and degradation (what an unloaded fabric
	// would deliver).
	PathCapacity topology.Rate
	// BottleneckLink is the path link with the highest utilization at
	// the end of the measurement.
	BottleneckLink topology.LinkID
}

func (r PerfReport) String() string {
	return fmt.Sprintf("%s -> %s: achieved %v of %v path capacity (bottleneck %s)",
		r.Src, r.Dst, r.Achieved, r.PathCapacity, r.BottleneckLink)
}

// PerfSession is an in-flight ihperf probe.
type PerfSession struct {
	fab        *fabric.Fabric
	flow       *fabric.Flow
	report     PerfReport
	start      simtime.Time
	startBytes float64
	done       bool
	onDone     func(PerfReport)
}

// StartPerf launches a greedy probe flow from src to dst and measures
// delivered bytes over the window.
func StartPerf(fab *fabric.Fabric, src, dst topology.CompID, opts PerfOptions, onDone func(PerfReport)) (*PerfSession, error) {
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("diag: non-positive perf duration")
	}
	if opts.Tenant == "" {
		opts.Tenant = fabric.SystemTenant
	}
	path := opts.Path
	if path.Hops() == 0 {
		p, err := fab.Topology().ShortestPath(src, dst)
		if err != nil {
			return nil, err
		}
		path = p
	}
	s := &PerfSession{fab: fab, onDone: onDone, start: fab.Engine().Now()}
	s.report = PerfReport{Src: src, Dst: dst, Path: path, PathCapacity: effectiveBottleneck(fab, path)}
	s.flow = &fabric.Flow{Tenant: opts.Tenant, Path: path}
	if err := fab.AddFlow(s.flow); err != nil {
		return nil, err
	}
	first := path.Links[0].ID
	if st, err := fab.LinkStatsFor(first); err == nil {
		s.startBytes = st.TenantBytes[opts.Tenant]
	}
	fab.Engine().After(opts.Duration, func() { s.finish(first, opts) })
	return s, nil
}

func (s *PerfSession) finish(first topology.LinkID, opts PerfOptions) {
	st, err := s.fab.LinkStatsFor(first)
	elapsed := s.fab.Engine().Now().Sub(s.start).Seconds()
	if err == nil && elapsed > 0 {
		delivered := st.TenantBytes[opts.Tenant] - s.startBytes
		s.report.Achieved = topology.Rate(delivered / elapsed)
	}
	// Identify the hottest hop before tearing the flow down.
	var worst float64 = -1
	for _, l := range s.report.Path.Links {
		if u, err := s.fab.Utilization(l.ID); err == nil && u > worst {
			worst = u
			s.report.BottleneckLink = l.ID
		}
	}
	s.fab.RemoveFlow(s.flow)
	s.done = true
	if s.onDone != nil {
		s.onDone(s.report)
	}
}

// effectiveBottleneck is the minimum effective capacity along a path.
func effectiveBottleneck(fab *fabric.Fabric, path topology.Path) topology.Rate {
	var min topology.Rate
	for i, l := range path.Links {
		c, err := fab.EffectiveCapacity(l.ID)
		if err != nil {
			continue
		}
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// Done reports whether the measurement finished.
func (s *PerfSession) Done() bool { return s.done }

// Report returns the (possibly partial) report.
func (s *PerfSession) Report() PerfReport { return s.report }

// RunPerf drives the engine until the probe completes. Standalone use
// only.
func RunPerf(fab *fabric.Fabric, src, dst topology.CompID, opts PerfOptions) (PerfReport, error) {
	s, err := StartPerf(fab, src, dst, opts, nil)
	if err != nil {
		return PerfReport{}, err
	}
	e := fab.Engine()
	for !s.Done() && e.Pending() > 0 {
		e.Step()
	}
	if !s.Done() {
		return s.Report(), fmt.Errorf("diag: perf did not complete")
	}
	return s.Report(), nil
}
