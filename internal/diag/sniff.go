package diag

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// SniffFilter selects which transactions a sniffer captures. Zero
// values match everything.
type SniffFilter struct {
	Src, Dst topology.CompID
	Tenant   fabric.TenantID
	// Link restricts capture to transactions whose path traverses the
	// given directed link — "port mirroring" on one fabric link.
	Link topology.LinkID
	// LostOnly captures only dropped transactions.
	LostOnly bool
}

// Matches reports whether a record passes the filter.
func (f SniffFilter) Matches(r fabric.TxRecord) bool {
	if f.Src != "" && r.Src != f.Src {
		return false
	}
	if f.Dst != "" && r.Dst != f.Dst {
		return false
	}
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	if f.Link != "" && !r.Path.HasLink(f.Link) {
		return false
	}
	if f.LostOnly && !r.Lost {
		return false
	}
	return true
}

// Sniffer captures transaction records matching a filter into a
// bounded buffer — the intra-host wireshark.
type Sniffer struct {
	filter   SniffFilter
	capacity int
	records  []fabric.TxRecord
	matched  uint64
	seen     uint64
	detach   func()
}

// StartSniff attaches a sniffer to the fabric. capacity bounds the
// retained records (oldest evicted). Call Stop to detach.
func StartSniff(fab *fabric.Fabric, filter SniffFilter, capacity int) (*Sniffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("diag: non-positive sniffer capacity")
	}
	s := &Sniffer{filter: filter, capacity: capacity}
	s.detach = fab.AttachSniffer(func(r fabric.TxRecord) {
		s.seen++
		if !s.filter.Matches(r) {
			return
		}
		s.matched++
		if len(s.records) >= s.capacity {
			s.records = s.records[1:]
		}
		s.records = append(s.records, r)
	})
	return s, nil
}

// Stop detaches the sniffer from the fabric.
func (s *Sniffer) Stop() {
	if s.detach != nil {
		s.detach()
		s.detach = nil
	}
}

// Captured returns the retained records, oldest first.
func (s *Sniffer) Captured() []fabric.TxRecord {
	out := make([]fabric.TxRecord, len(s.records))
	copy(out, s.records)
	return out
}

// Counts returns (transactions seen, transactions matched).
func (s *Sniffer) Counts() (seen, matched uint64) { return s.seen, s.matched }
