package experiments

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E1Figure1 measures, on the two-socket preset, the saturated
// throughput and idle one-way latency of a representative link of
// every Figure 1 class, and checks each against the paper's published
// envelope. This is the direct reproduction of the paper's only
// quantitative artifact.
func E1Figure1(seed int64) (Table, error) {
	engine := simtime.NewEngine(seed)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	t := Table{
		ID:      "E1",
		Title:   "Figure 1 link classes: measured vs paper envelope (two-socket host)",
		Columns: []string{"item", "class", "paper capacity", "measured", "paper latency", "measured", "in envelope"},
		Notes: []string{
			"PCIe capacity measured below raw (protocol efficiency 0.87, per the pcie TLP model)",
			"measured latency is the idle one-way hop latency; capacity is a saturating flow's allocated rate",
		},
	}
	for class := topology.ClassInterSocket; class <= topology.ClassInterHost; class++ {
		link, err := topology.RepresentativeLink(topo, class)
		if err != nil {
			return Table{}, err
		}
		env := topology.PaperEnvelope(class)
		// Saturate the single-link path with one greedy flow.
		path := topology.Path{Links: []*topology.Link{link}}
		fl := &fabric.Flow{Tenant: "probe", Path: path}
		if err := fab.AddFlow(fl); err != nil {
			return Table{}, err
		}
		measuredCap := fl.Rate()
		fab.RemoveFlow(fl)
		measuredLat, err := fab.PathLatency(path)
		if err != nil {
			return Table{}, err
		}
		ok := env.Contains(measuredCap, measuredLat)
		t.AddRow(
			fmt.Sprintf("(%d)", class.FigureRef()),
			class.String(),
			fmt.Sprintf("%v-%v", env.MinCapacity, env.MaxCapacity),
			measuredCap.String(),
			fmt.Sprintf("%v-%v", env.MinLatency, env.MaxLatency),
			measuredLat.String(),
			fmt.Sprintf("%v", ok),
		)
	}
	return t, nil
}

// e2Path builds the paper's end-to-end example: a remote access
// entering at nic0 and landing in socket-1 memory, traversing classes
// (5), (4), (3), (2) and (1).
func e2Path(topo *topology.Topology) (topology.Path, error) {
	head, err := topo.ShortestPath("external0", "nic0")
	if err != nil {
		return topology.Path{}, err
	}
	tail, err := topo.ShortestPath("nic0", "socket1.dimm0_0")
	if err != nil {
		return topology.Path{}, err
	}
	return topology.Path{Links: append(append([]*topology.Link(nil), head.Links...), tail.Links...)}, nil
}

// E2LatencyBreakdown reproduces the §2 claim that "the sum latency of
// end-to-end access, such as a remote RDMA access traversing all the
// (1) to (5), can make the intra-host network the potential
// bottleneck": it attributes one-way latency to each link class along
// the full remote-to-memory path, then shows congestion inflating the
// intra-host share, plus the queueing-model-off ablation.
func E2LatencyBreakdown(seed int64) (Table, error) {
	engine := simtime.NewEngine(seed)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	path, err := e2Path(topo)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E2",
		Title:   "One-way latency of a remote access traversing classes (5)->(1), by scenario",
		Columns: []string{"scenario", "inter-host", "intra-host", "total", "intra-host share"},
		Notes: []string{
			"path: external0 -> nic0 -> pcie -> socket0 -> UPI -> socket1 memory",
			"congested = RDMA loopback antagonist saturating the NIC PCIe links",
		},
	}
	measure := func(f *fabric.Fabric) (inter, intra float64, err error) {
		for _, l := range path.Links {
			one := topology.Path{Links: []*topology.Link{l}}
			lat, err := f.PathLatency(one)
			if err != nil {
				return 0, 0, err
			}
			if l.Class == topology.ClassInterHost {
				inter += float64(lat)
			} else {
				intra += float64(lat)
			}
		}
		return inter, intra, nil
	}
	addRow := func(name string, f *fabric.Fabric) error {
		inter, intra, err := measure(f)
		if err != nil {
			return err
		}
		total := inter + intra
		t.AddRow(name, microsStr(inter), microsStr(intra), microsStr(total), pct(intra/total))
		return nil
	}
	if err := addRow("idle", fab); err != nil {
		return Table{}, err
	}
	lb, err := workload.StartLoopback(fab, "antagonist", "nic0", "socket0.dimm0_0")
	if err != nil {
		return Table{}, err
	}
	engine.RunFor(100 * simtime.Microsecond)
	if err := addRow("congested", fab); err != nil {
		return Table{}, err
	}
	lb.Stop()
	// Ablation: queueing model disabled.
	ablEngine := simtime.NewEngine(seed)
	abl := fabric.New(topo, ablEngine, fabric.Config{QueueingFactor: 0, PCIeEfficiency: 0.87})
	if _, err := workload.StartLoopback(abl, "antagonist", "nic0", "socket0.dimm0_0"); err != nil {
		return Table{}, err
	}
	ablEngine.RunFor(100 * simtime.Microsecond)
	if err := addRow("congested, queueing model off (ablation)", abl); err != nil {
		return Table{}, err
	}
	return t, nil
}

// E3InterferenceBaseline reproduces the §2 co-location story on an
// unmanaged fabric: the KV store does not use the GPU at all, yet its
// tail latency collapses when the ML trainer (and worse, the RDMA
// loopback antagonist) saturates the shared PCIe and memory links.
func E3InterferenceBaseline(seed int64) (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "KV-store latency under co-location, unmanaged fabric",
		Columns: []string{"scenario", "kv p50", "kv p99", "kv mean", "ml throughput"},
		Notes: []string{
			"KV: closed-loop 64B/4KiB GETs from external0 to socket0 memory",
			"ML: transfer-bound 64MiB batch staging from the same memory into gpu0",
		},
	}
	run := func(withML, withLoopback bool) (p50, p99, mean simtime.Duration, mlTp topology.Rate, err error) {
		engine := simtime.NewEngine(seed)
		fab := fabric.New(topology.TwoSocketServer(), engine, fabric.DefaultConfig())
		kv, err := workload.StartKV(fab, workload.DefaultKVConfig("kv"))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		var ml *workload.MLTrainer
		if withML {
			ml, err = workload.StartML(fab, workload.DefaultMLConfig("ml"))
			if err != nil {
				return 0, 0, 0, 0, err
			}
		}
		if withLoopback {
			if _, err := workload.StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0"); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		engine.RunFor(2 * simtime.Millisecond)
		h := kv.Latency()
		if ml != nil {
			mlTp = ml.Throughput()
		}
		return h.Percentile(50), h.Percentile(99), h.Mean(), mlTp, nil
	}
	type scenario struct {
		name             string
		withML, withLoop bool
	}
	for _, s := range []scenario{
		{"kv alone", false, false},
		{"kv + ml trainer", true, false},
		{"kv + ml + rdma loopback", true, true},
	} {
		p50, p99, mean, mlTp, err := run(s.withML, s.withLoop)
		if err != nil {
			return Table{}, err
		}
		tp := "-"
		if s.withML {
			tp = mlTp.String()
		}
		t.AddRow(s.name, p50.String(), p99.String(), mean.String(), tp)
	}
	return t, nil
}

// E4DDIOThrashing reproduces the §2 cache-thrashing pathway: two
// high-bandwidth DDIO writers overflow the LLC's I/O ways, and the
// evicted data consumes memory-bus bandwidth that a single fitting
// writer never touches.
func E4DDIOThrashing(seed int64) (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "DDIO overflow: working set vs LLC I/O ways and induced DRAM traffic",
		Columns: []string{"scenario", "working set", "ddio capacity", "miss fraction", "spill rate", "memory-bus load"},
		Notes: []string{
			"spill = writeback of evicted I/O data; the refetch doubles it on the bus",
			"drain window 200us, 30MiB LLC, 2 of 11 ways for DDIO (Cascade-Lake-like)",
		},
	}
	run := func(name string, rates []topology.Rate, ddioOn bool) error {
		engine := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		if !ddioOn {
			topo.Component("socket0.llc").SetConfig(topology.ConfigDDIO, "off")
		}
		fab := fabric.New(topo, engine, fabric.DefaultConfig())
		mgr, err := cachesim.NewManager(fab, cachesim.DefaultConfig())
		if err != nil {
			return err
		}
		for i, r := range rates {
			if err := mgr.AddStream(cachesim.StreamID(fmt.Sprintf("s%d", i)),
				fabric.TenantID(fmt.Sprintf("t%d", i)), 0, r); err != nil {
				return err
			}
		}
		engine.RunFor(100 * simtime.Microsecond)
		ws, cap := mgr.Occupancy(0)
		miss, _ := mgr.MissFraction("s0")
		var memLoad topology.Rate
		for _, st := range fab.AllLinkStats() {
			l := fab.Topology().Link(st.Link)
			from := fab.Topology().Component(l.From)
			to := fab.Topology().Component(l.To)
			if from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM && to.Socket == 0 {
				memLoad += st.CurrentRate
			}
			if from.Kind == topology.KindDIMM && to.Kind == topology.KindMemCtrl && from.Socket == 0 {
				memLoad += st.CurrentRate
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.1fMB", float64(ws)/1e6),
			fmt.Sprintf("%.1fMB", float64(cap)/1e6),
			pct(miss),
			mgr.SpillRate(0).String(),
			memLoad.String(),
		)
		return nil
	}
	if err := run("1 writer @ 20GB/s (fits)", []topology.Rate{topology.GBps(20)}, true); err != nil {
		return Table{}, err
	}
	if err := run("2 writers @ 20GB/s (thrash)", []topology.Rate{topology.GBps(20), topology.GBps(20)}, true); err != nil {
		return Table{}, err
	}
	if err := run("2 writers @ 20GB/s, DDIO off", []topology.Rate{topology.GBps(20), topology.GBps(20)}, false); err != nil {
		return Table{}, err
	}
	return t, nil
}
