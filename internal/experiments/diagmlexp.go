package experiments

import (
	"fmt"

	"repro/internal/diagml"
)

// E12DiagnosisML quantifies §3.1 Q3: "intra-host networks are more
// heterogeneous, so the collected data will have more modalities ...
// using machine learning may be more essential in order to leverage
// these high-modality data for diagnosis". A k-NN fault classifier is
// trained on synthetic incidents; restricting it to the homogeneous
// telemetry an inter-host monitor would have (RTT inflation + loss)
// measurably degrades diagnosis, while each added intra-host modality
// recovers accuracy.
func E12DiagnosisML(seed int64) (Table, error) {
	train, err := diagml.GenerateDataset(seed, 8)
	if err != nil {
		return Table{}, err
	}
	test, err := diagml.GenerateDataset(seed+100_000, 4)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E12",
		Title:   "Fault-type diagnosis accuracy vs telemetry modality (k-NN, 6 fault classes)",
		Columns: []string{"telemetry", "modalities", "accuracy", "worst class"},
		Notes: []string{
			fmt.Sprintf("train %d / test %d incidents per class, k=3", 8, 4),
			"modality order: rtt-inflation, loss, pcie util, mem util, upi util, ddio miss, config drift",
		},
	}
	type row struct {
		name string
		n    int
	}
	rows := []row{
		{"inter-host-style (RTT + loss)", 2},
		{"+ link-class utilizations", 5},
		{"+ ddio occupancy", 6},
		{"full multi-modal", 7},
	}
	for _, r := range rows {
		clf, err := diagml.Train(train, 3, diagml.WithModalities(r.n))
		if err != nil {
			return Table{}, err
		}
		acc, confusion := clf.Evaluate(test)
		worst, worstAcc := "", 2.0
		for _, label := range diagml.AllLabels {
			row := confusion[label]
			total, correct := 0, row[label]
			for _, n := range row {
				total += n
			}
			if total == 0 {
				continue
			}
			a := float64(correct) / float64(total)
			if a < worstAcc {
				worstAcc, worst = a, string(label)
			}
		}
		t.AddRow(r.name, fmt.Sprintf("%d", r.n), pct(acc),
			fmt.Sprintf("%s (%s)", worst, pct(worstAcc)))
	}
	return t, nil
}
