package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// parseDur converts a rendered duration cell back to a Duration
// (Duration.String emits time.ParseDuration syntax).
func parseDur(t *testing.T, s string) simtime.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("bad duration %q: %v", s, err)
	}
	return simtime.Duration(d)
}

// parseRate converts a rendered rate cell ("12.3GB/s") to a float in
// bytes/sec.
func parseRate(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "GB/s"):
		mult, s = 1e9, strings.TrimSuffix(s, "GB/s")
	case strings.HasSuffix(s, "MB/s"):
		mult, s = 1e6, strings.TrimSuffix(s, "MB/s")
	case strings.HasSuffix(s, "KB/s"):
		mult, s = 1e3, strings.TrimSuffix(s, "KB/s")
	case strings.HasSuffix(s, "B/s"):
		s = strings.TrimSuffix(s, "B/s")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad rate %q: %v", s, err)
	}
	return v * mult
}

func runExp(t *testing.T, id string) Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(42)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	if tab.Render() == "" {
		t.Fatalf("%s: empty render", id)
	}
	return tab
}

func cell(t *testing.T, tab Table, rowPrefix, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tab.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s: no column %q", tab.ID, col)
	}
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], rowPrefix) {
			return r[ci]
		}
	}
	t.Fatalf("%s: no row starting %q", tab.ID, rowPrefix)
	return ""
}

func TestRegistryAndByID(t *testing.T) {
	if len(Registry) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(Registry))
	}
	seen := make(map[string]bool)
	for _, e := range Registry {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tab := Table{ID: "x", Columns: []string{"a", "b"}}
	tab.AddRow("only one")
}

func TestE1AllClassesInEnvelope(t *testing.T) {
	tab := runExp(t, "E1")
	if len(tab.Rows) != 5 {
		t.Fatalf("E1 rows = %d, want 5 link classes", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "true" {
			t.Fatalf("class %s outside paper envelope: %v", r[1], r)
		}
	}
}

func TestE2IntraHostShareAndCongestion(t *testing.T) {
	tab := runExp(t, "E2")
	idleIntra := parseDur(t, cell(t, tab, "idle", "intra-host"))
	congIntra := parseDur(t, cell(t, tab, "congested", "intra-host"))
	ablIntra := parseDur(t, cell(t, tab, "congested, queueing model off", "intra-host"))
	if congIntra <= idleIntra {
		t.Fatalf("congestion did not inflate intra-host latency: %v vs %v", congIntra, idleIntra)
	}
	if ablIntra >= congIntra {
		t.Fatalf("ablation (no queueing) %v not below congested %v", ablIntra, congIntra)
	}
	// The paper's point: intra-host latency is a non-negligible share
	// of the total even idle, and dominates under congestion.
	share := cell(t, tab, "congested", "intra-host share")
	if !strings.HasSuffix(share, "%") {
		t.Fatalf("share cell %q", share)
	}
}

func TestE3InterferenceOrdering(t *testing.T) {
	tab := runExp(t, "E3")
	solo := parseDur(t, cell(t, tab, "kv alone", "kv p99"))
	withML := parseDur(t, cell(t, tab, "kv + ml trainer", "kv p99"))
	withBoth := parseDur(t, cell(t, tab, "kv + ml + rdma loopback", "kv p99"))
	if !(solo < withML && withML <= withBoth) {
		t.Fatalf("interference ordering broken: %v, %v, %v", solo, withML, withBoth)
	}
	// The paper's framing: co-location inflates tail latency by a
	// large factor.
	if float64(withBoth) < 2*float64(solo) {
		t.Fatalf("antagonists inflated p99 only %vx", float64(withBoth)/float64(solo))
	}
}

func TestE4ThrashingShape(t *testing.T) {
	tab := runExp(t, "E4")
	missOne := cell(t, tab, "1 writer", "miss fraction")
	missTwo := cell(t, tab, "2 writers @ 20GB/s (thrash)", "miss fraction")
	missOff := cell(t, tab, "2 writers @ 20GB/s, DDIO off", "miss fraction")
	if missOne != "0.0%" {
		t.Fatalf("single fitting writer misses: %s", missOne)
	}
	if missTwo == "0.0%" {
		t.Fatalf("two writers did not thrash")
	}
	if missOff != "100.0%" {
		t.Fatalf("DDIO off miss %s, want 100%%", missOff)
	}
	oneLoad := parseRate(t, cell(t, tab, "1 writer", "memory-bus load"))
	twoLoad := parseRate(t, cell(t, tab, "2 writers @ 20GB/s (thrash)", "memory-bus load"))
	if twoLoad < oneLoad+1e9 {
		t.Fatalf("thrash did not amplify memory traffic: %v vs %v", twoLoad, oneLoad)
	}
}

func TestE5CountersWorseThanInterception(t *testing.T) {
	tab := runExp(t, "E5")
	counterErr := cell(t, tab, "counters+even-split", "relative error")
	interceptErr := cell(t, tab, "interception", "relative error")
	// Even-split on a 3:1 ratio is 100% error for the light tenant
	// (first row is kv, the light one).
	ce, _ := strconv.ParseFloat(strings.TrimSuffix(counterErr, "%"), 64)
	ie, _ := strconv.ParseFloat(strings.TrimSuffix(interceptErr, "%"), 64)
	if ce < 50 {
		t.Fatalf("counter attribution error %v%%, want large", ce)
	}
	if ie > 1 {
		t.Fatalf("interception error %v%%, want ~0", ie)
	}
}

func TestE6OverheadShape(t *testing.T) {
	tab := runExp(t, "E6")
	// 11 rows: 3 placements x 3 periods + 2 counter rows.
	if len(tab.Rows) != 11 {
		t.Fatalf("E6 rows = %d, want 11", len(tab.Rows))
	}
	var localSpool, memSpool string
	for _, r := range tab.Rows {
		if r[0] == "intercept" && r[1] == "local" && r[2] == "100µs" {
			localSpool = r[5]
		}
		if r[0] == "intercept" && r[1] == "memory" && r[2] == "100µs" {
			memSpool = r[5]
		}
	}
	if localSpool == "" || memSpool == "" {
		t.Fatalf("missing rows: %q %q", localSpool, memSpool)
	}
	if parseRate(t, localSpool) != 0 {
		t.Fatalf("local placement spool %s, want 0", localSpool)
	}
	if parseRate(t, memSpool) <= 0 {
		t.Fatalf("memory placement spool %s, want > 0", memSpool)
	}
}

func TestE7HeartbeatsBeatCounters(t *testing.T) {
	tab := runExp(t, "E7")
	// All heartbeat degradation rows detected and localized.
	hbRows, counterDeg, counterHard := 0, "", ""
	for _, r := range tab.Rows {
		switch {
		case r[0] == "heartbeats" && r[1] == "degradation":
			hbRows++
			if r[3] != "yes" || r[5] != "true" {
				t.Fatalf("heartbeat degradation row failed: %v", r)
			}
		case r[0] == "counter-threshold" && r[1] == "degradation":
			counterDeg = r[3]
		case r[0] == "counter-threshold" && r[1] == "hard failure":
			counterHard = r[3]
		}
	}
	if hbRows != 3 {
		t.Fatalf("heartbeat degradation rows = %d", hbRows)
	}
	if counterDeg != "no" {
		t.Fatalf("counter watcher detected silent degradation: %s", counterDeg)
	}
	if counterHard != "yes" {
		t.Fatalf("counter watcher missed hard failure: %s", counterHard)
	}
}

func TestE8ManagerRestoresTail(t *testing.T) {
	tab := runExp(t, "E8")
	unmanagedP99 := parseDur(t, cell(t, tab, "unmanaged", "kv p99"))
	strictP99 := parseDur(t, cell(t, tab, "managed, strict", "kv p99"))
	unmanagedP50 := parseDur(t, cell(t, tab, "unmanaged", "kv p50"))
	wcP50 := parseDur(t, cell(t, tab, "managed, work-conserving", "kv p50"))
	if float64(strictP99) > float64(unmanagedP99)*0.5 {
		t.Fatalf("strict manager barely helped p99: %v vs %v", strictP99, unmanagedP99)
	}
	// The paper's critique of point solutions: memory-bandwidth caps
	// alone (RDT-style) cannot eliminate end-to-end interference —
	// the PCIe-only aggressor is invisible to them.
	rdtP99 := parseDur(t, cell(t, tab, "RDT-style", "kv p99"))
	if float64(rdtP99) < float64(unmanagedP99)*0.7 {
		t.Fatalf("RDT-style point solution helped too much: %v vs %v", rdtP99, unmanagedP99)
	}
	if rdtP99 <= strictP99*2 {
		t.Fatalf("holistic manager not clearly ahead of RDT-style: %v vs %v", strictP99, rdtP99)
	}
	// Work conservation restores the median; its borrow/claw-back
	// cycles still let occasional requests hit a saturated link, so
	// p99 is not asserted (that trade-off is the finding).
	if float64(wcP50) > float64(unmanagedP50)*0.5 {
		t.Fatalf("work-conserving manager barely helped p50: %v vs %v", wcP50, unmanagedP50)
	}
	// The guarantee does not zero out the aggressors: ML still makes
	// progress in managed runs.
	mlManaged := parseRate(t, cell(t, tab, "managed, strict", "ml throughput"))
	if mlManaged <= 0 {
		t.Fatal("strict manager starved the bystander entirely")
	}
}

func TestE9TopologyAwareWins(t *testing.T) {
	tab := runExp(t, "E9")
	taAdm, _ := strconv.Atoi(cell(t, tab, "topology-aware", "admitted"))
	nvAdm, _ := strconv.Atoi(cell(t, tab, "naive", "admitted"))
	if taAdm <= nvAdm {
		t.Fatalf("topology-aware admitted %d <= naive %d", taAdm, nvAdm)
	}
}

func TestE11CXLBeatsTranslatedPCIe(t *testing.T) {
	tab := runExp(t, "E11")
	translated := parseDur(t, cell(t, tab, "PCIe DMA, IOMMU translate", "latency"))
	passthrough := parseDur(t, cell(t, tab, "PCIe DMA, IOMMU passthrough", "latency"))
	cxlCache := parseDur(t, cell(t, tab, "cxl.cache coherent access", "latency"))
	// The operative comparison on a multi-tenant host (where the
	// IOMMU must translate for isolation): CXL halves device-to-
	// memory latency. Passthrough PCIe is on par with CXL but
	// forfeits DMA isolation.
	if !(cxlCache < translated && passthrough < translated) {
		t.Fatalf("device-to-memory ordering broken: cxl=%v passthrough=%v translate=%v",
			cxlCache, passthrough, translated)
	}
	if float64(translated) < 2*float64(cxlCache) {
		t.Fatalf("CXL advantage vs translated PCIe too small: %v vs %v", cxlCache, translated)
	}
	// §2's figure: ~150ns device to host memory over CXL.
	if cxlCache != 150 {
		t.Fatalf("cxl.cache latency %v, want the paper's ~150ns", cxlCache)
	}
	// Memory tiers from the CPU: local < cxl.mem expander < remote.
	local := parseDur(t, cell(t, tab, "CPU load, local DRAM", "latency"))
	expander := parseDur(t, cell(t, tab, "CPU load, cxl.mem expander", "latency"))
	remote := parseDur(t, cell(t, tab, "CPU load, remote DRAM", "latency"))
	if !(local < expander && expander < remote) {
		t.Fatalf("cpu tier ordering broken: local=%v cxl=%v remote=%v", local, expander, remote)
	}
	if expander != 150 {
		t.Fatalf("cxl.mem latency %v, want ~150ns", expander)
	}
}

func TestE12MoreModalitiesMoreAccuracy(t *testing.T) {
	tab := runExp(t, "E12")
	if len(tab.Rows) != 4 {
		t.Fatalf("E12 rows = %d", len(tab.Rows))
	}
	parseAcc := func(rowPrefix string) float64 {
		s := cell(t, tab, rowPrefix, "accuracy")
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad accuracy %q", s)
		}
		return v
	}
	narrow := parseAcc("inter-host-style")
	full := parseAcc("full multi-modal")
	if full <= narrow {
		t.Fatalf("multi-modal %v%% not above homogeneous %v%%", full, narrow)
	}
	if full < 80 {
		t.Fatalf("full multi-modal accuracy %v%% too low", full)
	}
}

func TestE13HockeyStick(t *testing.T) {
	tab := runExp(t, "E13")
	if len(tab.Rows) != 5 {
		t.Fatalf("E13 rows = %d", len(tab.Rows))
	}
	col := func(row []string, name string) simtime.Duration {
		for i, c := range tab.Columns {
			if c == name {
				d, err := time.ParseDuration(row[i])
				if err != nil {
					t.Fatalf("bad cell %q", row[i])
				}
				return simtime.Duration(d)
			}
		}
		t.Fatalf("no column %s", name)
		return 0
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	// Unmanaged: on the congestion plateau at every load level.
	if col(first, "unmanaged p99") < 20*simtime.Microsecond {
		t.Fatalf("unmanaged low-load p99 off the plateau: %v", col(first, "unmanaged p99"))
	}
	// Managed: near the floor at low load...
	if col(first, "managed p99") > 5*simtime.Microsecond {
		t.Fatalf("managed low-load p99 %v, want near floor", col(first, "managed p99"))
	}
	// ...and rising toward saturation once offered load exceeds the
	// guarantee (the knee).
	if col(last, "managed p99") < 4*col(first, "managed p99") {
		t.Fatalf("no knee: %v -> %v", col(first, "managed p99"), col(last, "managed p99"))
	}
}

func TestE10WorkConservationWins(t *testing.T) {
	tab := runExp(t, "E10")
	var strictBy, wcBy float64
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "strict: idle-guarantee bystander") {
			strictBy = parseRate(t, r[1])
		}
		if strings.HasPrefix(r[0], "work-conserving: idle-guarantee bystander") {
			wcBy = parseRate(t, r[1])
		}
	}
	if wcBy <= strictBy*1.5 {
		t.Fatalf("work conservation gained too little: %v vs %v", wcBy, strictBy)
	}
	// Overhead rows exist.
	found := 0
	for _, r := range tab.Rows {
		if strings.Contains(r[0], "(wall") {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("overhead rows = %d, want 4", found)
	}
}
