package experiments

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E13LoadLatencyCurve produces the figure-style series behind the
// paper's "predictable application performance" goal: KV-store offered
// load is swept (closed loop, shrinking think time) against a fixed
// antagonist, with and without the tenant's guarantee. Unmanaged, the
// latency curve sits on the congestion plateau at every load level;
// managed, it stays near the service floor until the tenant's own
// guarantee saturates.
func E13LoadLatencyCurve(seed int64) (Table, error) {
	t := Table{
		ID:      "E13",
		Title:   "KV latency vs offered load, with and without a guarantee (fixed ML+loopback antagonist)",
		Columns: []string{"outstanding", "offered load", "unmanaged p50", "unmanaged p99", "managed p50", "managed p99"},
		Notes: []string{
			"offered load = completed requests per ms of virtual time (managed run)",
			"managed = kv admitted with 10GB/s pipes both ways, strict arbiter",
		},
	}
	type point struct {
		p50, p99 simtime.Duration
		rate     float64
	}
	run := func(outstanding int, managed bool) (point, error) {
		opts := core.DefaultOptions()
		opts.Seed = seed
		opts.EnableAnomaly = false
		opts.EnableTelemetry = false
		opts.Arbiter.Mode = arbiter.Strict
		mgr, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			return point{}, err
		}
		if err := mgr.Start(); err != nil {
			return point{}, err
		}
		if managed {
			if _, err := mgr.Admit("kv", []intent.Target{
				{Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(10)},
				{Src: "socket0.dimm0_0", Dst: "nic0", Rate: topology.GBps(10)},
			}); err != nil {
				return point{}, err
			}
		}
		fab := mgr.Fabric()
		cfg := workload.DefaultKVConfig("kv")
		cfg.ThinkTime = 0
		cfg.Outstanding = outstanding
		kv, err := workload.StartKV(fab, cfg)
		if err != nil {
			return point{}, err
		}
		if _, err := workload.StartML(fab, workload.DefaultMLConfig("ml")); err != nil {
			return point{}, err
		}
		if _, err := workload.StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0"); err != nil {
			return point{}, err
		}
		const window = 2 * simtime.Millisecond
		mgr.RunFor(window)
		h := kv.Latency()
		p := point{
			p50:  h.Percentile(50),
			p99:  h.Percentile(99),
			rate: float64(h.Count()) / (window.Seconds() * 1000),
		}
		kv.Stop()
		mgr.Stop()
		return p, nil
	}
	for _, outstanding := range []int{1, 4, 16, 64, 256} {
		un, err := run(outstanding, false)
		if err != nil {
			return Table{}, err
		}
		ma, err := run(outstanding, true)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%d", outstanding),
			fmt.Sprintf("%.0f req/ms", ma.rate),
			un.p50.String(), un.p99.String(),
			ma.p50.String(), ma.p99.String())
	}
	return t, nil
}
