// Package experiments regenerates every quantitative artifact of the
// reproduction: E1 reproduces the paper's only figure (the Figure 1
// capacity/latency table), and E2-E10 quantify each phenomenon the
// paper claims and each mechanism it proposes, as indexed in
// DESIGN.md. Each experiment is a pure function of a seed that
// returns a renderable table; bench_test.go and cmd/ihbench drive
// them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's result, renderable as aligned text.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64) (Table, error)
}

// Registry lists all experiments in order.
var Registry = []Experiment{
	{"E1", "Figure 1 link-class capacity and latency envelopes", E1Figure1},
	{"E2", "End-to-end latency breakdown across link classes (1)-(5)", E2LatencyBreakdown},
	{"E3", "Co-location interference without management", E3InterferenceBaseline},
	{"E4", "DDIO cache thrashing amplifies memory-bus traffic", E4DDIOThrashing},
	{"E5", "Per-tenant attribution: hardware counters vs interception", E5AttributionAccuracy},
	{"E6", "Monitoring overhead vs placement and rate (Q2)", E6MonitoringOverhead},
	{"E7", "Failure detection and localization via heartbeats", E7FailureLocalization},
	{"E8", "Compile-schedule-arbitrate eliminates interference", E8IsolationWithManager},
	{"E9", "Topology-aware vs naive scheduling", E9TopologyAwareScheduling},
	{"E10", "Work conservation and management overhead (Q3)", E10WorkConservationAndOverhead},
	{"E11", "CXL memory tier vs DRAM and PCIe device memory", E11CXLMemoryTiers},
	{"E12", "ML fault diagnosis over multi-modal telemetry (Q3)", E12DiagnosisML},
	{"E13", "Load-latency curve with and without a guarantee", E13LoadLatencyCurve},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// microsStr formats a nanosecond count as microseconds text.
func microsStr(ns float64) string { return fmt.Sprintf("%.2fus", ns/1000) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
