package experiments

import (
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// E11CXLMemoryTiers quantifies §2's emerging-protocol discussion: CXL
// "enables devices to directly access host local memory through a
// cache coherence interface ... with a latency of ~150ns from device
// to host memory". The table compares device-to-host-memory access
// over PCIe DMA (with and without IOMMU translation — Figure 1's
// "Translation Services" knob) against a cxl.cache accelerator, and
// CPU access to a cxl.mem expander against local and remote DRAM.
func E11CXLMemoryTiers(seed int64) (Table, error) {
	engine := simtime.NewEngine(seed)
	topo := topology.CXLExpandedHost()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	t := Table{
		ID:      "E11",
		Title:   "CXL vs PCIe vs DRAM: one-way access latency and saturated bandwidth",
		Columns: []string{"access", "initiator", "target", "latency", "bandwidth"},
		Notes: []string{
			"PCIe rows differ only in the root port's IOMMU mode (translate adds 200ns)",
			"cxl.cache accelerators access host DRAM coherently, bypassing DMA translation",
			"multi-tenant hosts need IOMMU translation for isolation, so the operative PCIe row is 'translate'",
		},
	}
	measure := func(name string, src, dst topology.CompID) error {
		p, err := topo.ShortestPath(src, dst)
		if err != nil {
			return err
		}
		lat, err := fab.PathLatency(p)
		if err != nil {
			return err
		}
		fl := &fabric.Flow{Tenant: "probe", Path: p}
		if err := fab.AddFlow(fl); err != nil {
			return err
		}
		bw := fl.Rate()
		fab.RemoveFlow(fl)
		t.AddRow(name, string(src), string(dst), lat.String(), bw.String())
		return nil
	}
	// Device-initiated access to host memory: the paper's comparison.
	rp := topo.Component("socket0.rootport1") // gpu0's root port
	rp.SetConfig(topology.ConfigIOMMU, "translate")
	if err := measure("PCIe DMA, IOMMU translate", "gpu0", "socket0.dimm0_0"); err != nil {
		return Table{}, err
	}
	rp.SetConfig(topology.ConfigIOMMU, "passthrough")
	if err := measure("PCIe DMA, IOMMU passthrough", "gpu0", "socket0.dimm0_0"); err != nil {
		return Table{}, err
	}
	if err := measure("cxl.cache coherent access", "cxlgpu0", "socket0.dimm0_0"); err != nil {
		return Table{}, err
	}
	// CPU-initiated access to the memory tiers.
	if err := measure("CPU load, local DRAM", "cpu0", "socket0.dimm0_0"); err != nil {
		return Table{}, err
	}
	if err := measure("CPU load, cxl.mem expander", "cpu0", "cxlmem0"); err != nil {
		return Table{}, err
	}
	if err := measure("CPU load, remote DRAM", "cpu0", "socket1.dimm0_0"); err != nil {
		return Table{}, err
	}
	return t, nil
}
