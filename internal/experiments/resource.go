package experiments

import (
	"fmt"
	"time"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/resmodel"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E8IsolationWithManager reruns the E3 co-location under the full
// compile -> schedule -> arbitrate pipeline: the KV tenant declares a
// 10 GB/s pipe from its NIC into socket-0 memory, the arbiter caps the
// aggressors on the shared links, and the KV tail collapses back
// toward its solo value.
func E8IsolationWithManager(seed int64) (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "KV-store latency with and without the resource manager",
		Columns: []string{"scenario", "kv p50", "kv p99", "ml throughput", "antagonist rate"},
		Notes: []string{
			"managed: kv admitted with 10GB/s pipes in both directions between nic0 and its memory",
			"aggressors: ML staging (DRAM-heavy) + GPUDirect NIC<->GPU loopback (PCIe-only), uncapped bystanders",
			"RDT-style row caps the aggressors on DRAM channels only — the PCIe-only aggressor is invisible to it",
			"work conservation restores the median; borrow/claw-back cycles still expose the tail",
		},
	}
	run := func(name string, managed bool, rdtOnly bool, mode arbiter.Mode) error {
		opts := core.DefaultOptions()
		opts.Seed = seed
		opts.EnableAnomaly = false
		opts.Arbiter.Mode = mode
		m, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			return err
		}
		if err := m.Start(); err != nil {
			return err
		}
		if managed {
			// A request/response service needs both directions
			// guaranteed: GETs in via the NIC, values back out of
			// memory (the bulk of the bytes).
			if _, err := m.Admit("kv", []intent.Target{
				{Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(10)},
				{Src: "socket0.dimm0_0", Dst: "nic0", Rate: topology.GBps(10)},
			}); err != nil {
				return err
			}
		}
		fab := m.Fabric()
		if rdtOnly {
			// The state of the art the paper critiques: RDT-style
			// memory-bandwidth allocation caps the aggressors on the
			// DRAM channels only. The PCIe fabric — which RDT cannot
			// see — stays saturated.
			for _, l := range m.Topology().Links() {
				from := m.Topology().Component(l.From)
				to := m.Topology().Component(l.To)
				memLink := (from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM) ||
					(from.Kind == topology.KindDIMM && to.Kind == topology.KindMemCtrl)
				if !memLink {
					continue
				}
				for _, tn := range []fabric.TenantID{"ml", "evil"} {
					if err := fab.SetTenantCap(l.ID, tn, topology.GBps(12)); err != nil {
						return err
					}
				}
			}
		}
		kv, err := workload.StartKV(fab, workload.DefaultKVConfig("kv"))
		if err != nil {
			return err
		}
		ml, err := workload.StartML(fab, workload.DefaultMLConfig("ml"))
		if err != nil {
			return err
		}
		// The second aggressor is GPUDirect-style NIC<->GPU traffic:
		// it crosses only PCIe and LLC links, never DRAM — precisely
		// the traffic a memory-bandwidth point solution cannot see.
		lb, err := workload.StartLoopback(fab, "evil", "nic0", "gpu0")
		if err != nil {
			return err
		}
		m.RunFor(2 * simtime.Millisecond)
		h := kv.Latency()
		t.AddRow(name, h.Percentile(50).String(), h.Percentile(99).String(),
			ml.Throughput().String(), lb.Rate().String())
		kv.Stop()
		ml.Stop()
		lb.Stop()
		m.Stop()
		return nil
	}
	if err := run("unmanaged", false, false, arbiter.Strict); err != nil {
		return Table{}, err
	}
	if err := run("RDT-style (memory-bus caps only)", false, true, arbiter.Strict); err != nil {
		return Table{}, err
	}
	if err := run("managed, strict arbiter", true, false, arbiter.Strict); err != nil {
		return Table{}, err
	}
	if err := run("managed, work-conserving arbiter", true, false, arbiter.WorkConserving); err != nil {
		return Table{}, err
	}
	return t, nil
}

// overheadBatch is the management-overhead workload (E10): sixteen
// GPU-to-local-memory pipes on the DGX-style host.
func overheadBatch(topo *topology.Topology) []intent.Target {
	var targets []intent.Target
	for i := 0; i < 8; i++ {
		gpu := topology.CompID(fmt.Sprintf("gpu%d", i))
		socket := topo.Component(gpu).Socket
		for j := 0; j < 2; j++ {
			targets = append(targets, intent.Target{
				Tenant: fabric.TenantID(fmt.Sprintf("t%d_%d", i, j)),
				Src:    gpu,
				Dst:    topology.CompID(fmt.Sprintf("memory:socket%d", socket)),
				Rate:   topology.GBps(10),
			})
		}
	}
	return targets
}

// E9TopologyAwareScheduling compares the topology-aware scheduler
// against the naive (always-shortest-path) baseline on a host whose
// local memory channels already carry resident tenants: new
// device-to-memory pipes fit only if placed on the other socket's
// memory via the inter-socket connect — the "several GPU-SSD
// pathways" choice of §3.2. The naive scheduler tries only the
// lowest-latency (local) pathway and rejects.
func E9TopologyAwareScheduling(seed int64) (Table, error) {
	topo := topology.TwoSocketServer()
	engine := simtime.NewEngine(seed)
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	interp, err := intent.New(topo, 2, fab)
	if err != nil {
		return Table{}, err
	}
	var targets []intent.Target
	for i, src := range []topology.CompID{"gpu0", "nic0", "ssd0", "gpu1", "nic1", "ssd1"} {
		targets = append(targets, intent.Target{
			Tenant: fabric.TenantID(fmt.Sprintf("t%d", i)),
			Src:    src, Dst: intent.AnyMemory, Rate: topology.GBps(10),
		})
	}
	start := time.Now()
	reqs, err := interp.CompileAll(targets)
	if err != nil {
		return Table{}, err
	}
	compileWall := time.Since(start)

	usage := sched.Usage{
		Capacity: make(map[topology.LinkID]topology.Rate),
		Free:     make(map[topology.LinkID]topology.Rate),
	}
	for _, l := range topo.Links() {
		c, err := fab.EffectiveCapacity(l.ID)
		if err != nil {
			return Table{}, err
		}
		usage.Capacity[l.ID] = c
		usage.Free[l.ID] = c
	}
	// Resident tenants: socket 0's DRAM channels are nearly full (5
	// GB/s headroom each), so socket-0 devices must stage via socket 1.
	for _, l := range topo.Links() {
		from, to := topo.Component(l.From), topo.Component(l.To)
		if from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM && to.Socket == 0 {
			usage.Free[l.ID] = topology.GBps(5)
		}
	}
	t := Table{
		ID:      "E9",
		Title:   "Scheduling 6 device-to-memory pipes (10GB/s) with socket-0 memory nearly full",
		Columns: []string{"scheduler", "offered", "admitted", "admission rate", "max link util", "schedule wall time"},
		Notes: []string{
			fmt.Sprintf("intent compilation (6 targets, k=2 paths/destination): %v wall", compileWall.Round(time.Microsecond)),
			"socket-0 DRAM channels pre-loaded to 5GB/s headroom; UPI offers the alternative pathway",
		},
	}
	for _, s := range []sched.Scheduler{sched.TopologyAware{}, sched.Naive{}} {
		start := time.Now()
		out := s.Schedule(reqs, usage)
		wall := time.Since(start)
		sum := sched.Summarize(out, usage)
		t.AddRow(s.Name(),
			fmt.Sprintf("%d", len(reqs)),
			fmt.Sprintf("%d", sum.Admitted),
			pct(float64(sum.Admitted)/float64(len(reqs))),
			pct(sum.MaxUtilization),
			wall.Round(time.Microsecond).String(),
		)
	}
	return t, nil
}

// E10WorkConservationAndOverhead answers §3.2 Q1 (should the arbiter
// be work-conserving?) with a head-to-head of the two modes, and §3.2
// Q3 (can management fit a microsecond budget?) with wall-clock
// measurements of every pipeline stage.
func E10WorkConservationAndOverhead(seed int64) (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   "Work conservation across arbiter modes, and management-stage overhead",
		Columns: []string{"item", "value"},
		Notes: []string{
			"scenario: kv holds a 20GB/s guarantee nic0 -> memory but idles at 1GB/s; ml is a greedy bystander",
			"overhead rows are wall-clock times of the real implementation (Q3's microsecond budget)",
		},
	}
	conserve := func(mode arbiter.Mode) (kvRate, mlRate topology.Rate, err error) {
		engine := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		fab := fabric.New(topo, engine, fabric.DefaultConfig())
		arb, err := arbiter.New(fab, arbiter.Config{
			Mode: mode, AdjustPeriod: 50 * simtime.Microsecond, BorrowFraction: 0.9,
		})
		if err != nil {
			return 0, 0, err
		}
		path, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
		if err != nil {
			return 0, 0, err
		}
		res := resmodel.NewReservation()
		res.AddPipe(path, topology.GBps(20))
		if err := arb.Install("kv", res); err != nil {
			return 0, 0, err
		}
		if err := arb.Start(); err != nil {
			return 0, 0, err
		}
		kv := &fabric.Flow{Tenant: "kv", Path: path, Demand: topology.GBps(1)}
		ml := &fabric.Flow{Tenant: "ml", Path: path}
		if err := fab.AddFlow(kv); err != nil {
			return 0, 0, err
		}
		if err := fab.AddFlow(ml); err != nil {
			return 0, 0, err
		}
		engine.RunFor(simtime.Millisecond)
		return kv.Rate(), ml.Rate(), nil
	}
	for _, mode := range []arbiter.Mode{arbiter.Strict, arbiter.WorkConserving} {
		kvRate, mlRate, err := conserve(mode)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%s: idle-guarantee bystander rate", mode), mlRate.String())
		t.AddRow(fmt.Sprintf("%s: guaranteed tenant rate (idling)", mode), kvRate.String())
	}

	// Overhead of each management stage, wall clock.
	topo := topology.DGXStyle()
	engine := simtime.NewEngine(seed)
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	interp, err := intent.New(topo, 3, fab)
	if err != nil {
		return Table{}, err
	}
	targets := overheadBatch(topo)
	start := time.Now()
	reqs, err := interp.CompileAll(targets)
	if err != nil {
		return Table{}, err
	}
	t.AddRow("compile 16 intents (wall)", time.Since(start).Round(time.Microsecond).String())

	arb, err := arbiter.New(fab, arbiter.DefaultConfig())
	if err != nil {
		return Table{}, err
	}
	usage := sched.Usage{Capacity: arb.CapacityMap(), Free: arb.FreeMap()}
	start = time.Now()
	out := sched.TopologyAware{}.Schedule(reqs, usage)
	t.AddRow("schedule 16 intents (wall)", time.Since(start).Round(time.Microsecond).String())

	merged := resmodel.NewReservation()
	for _, a := range out {
		if a.Admitted {
			merged.Merge(a.Reservation)
		}
	}
	start = time.Now()
	if err := arb.Install("batch", merged); err != nil {
		return Table{}, err
	}
	t.AddRow("install reservation + first arbitration (wall)", time.Since(start).Round(time.Microsecond).String())

	// Steady-state arbitration pass, averaged.
	if err := arb.Start(); err != nil {
		return Table{}, err
	}
	const passes = 1000
	start = time.Now()
	engine.RunFor(passes * 50 * simtime.Microsecond)
	perPass := time.Since(start) / passes
	t.AddRow("arbitration pass, steady state (wall, avg of 1000)", perPass.Round(100*time.Nanosecond).String())
	return t, nil
}
