package experiments

import (
	"fmt"
	"math"

	"repro/internal/anomaly"
	"repro/internal/counters"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// E5AttributionAccuracy quantifies §3.1 Q1: hardware counters are
// aggregate-only, so the best a counter-based monitor can do for
// per-tenant accounting is split a link's bytes evenly across active
// tenants; software interception sees the truth. Two tenants share a
// link at a 3:1 ratio and each method's attribution error is measured.
func E5AttributionAccuracy(seed int64) (Table, error) {
	engine := simtime.NewEngine(seed)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	path, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		return Table{}, err
	}
	heavy := &fabric.Flow{Tenant: "ml", Path: path, Demand: topology.GBps(15)}
	light := &fabric.Flow{Tenant: "kv", Path: path, Demand: topology.GBps(5)}
	if err := fab.AddFlow(heavy); err != nil {
		return Table{}, err
	}
	if err := fab.AddFlow(light); err != nil {
		return Table{}, err
	}
	bank, err := counters.NewBank(fab, counters.DefaultConfig())
	if err != nil {
		return Table{}, err
	}
	engine.RunFor(10 * simtime.Millisecond)

	link := path.Links[0].ID
	st, err := fab.LinkStatsFor(link)
	if err != nil {
		return Table{}, err
	}
	truth := map[fabric.TenantID]float64{
		"ml": st.TenantBytes["ml"],
		"kv": st.TenantBytes["kv"],
	}
	sample, err := bank.ReadLink(link)
	if err != nil {
		return Table{}, err
	}
	even := counters.AttributeEvenly(sample.Bytes, []fabric.TenantID{"kv", "ml"})

	t := Table{
		ID:      "E5",
		Title:   "Per-tenant attribution on a shared link (true split 3:1)",
		Columns: []string{"method", "tenant", "true bytes", "estimated", "relative error"},
		Notes: []string{
			"counters: PCM-like aggregate counter + even split across active tenants",
			"interception: the software shim's exact per-tenant accounting",
		},
	}
	relErr := func(est, tr float64) string {
		if tr == 0 {
			return "-"
		}
		return pct(math.Abs(est-tr) / tr)
	}
	for _, tn := range []fabric.TenantID{"kv", "ml"} {
		t.AddRow("counters+even-split", string(tn),
			fmt.Sprintf("%.0fMB", truth[tn]/1e6),
			fmt.Sprintf("%.0fMB", even[tn]/1e6),
			relErr(even[tn], truth[tn]))
	}
	// Interception reads the fabric's per-tenant accounting directly.
	src := telemetry.NewInterceptSource(fab)
	pts := src.Collect()
	est := make(map[fabric.TenantID]float64)
	for _, p := range pts {
		if p.Link == link && p.Metric == telemetry.MetricBytes && p.Tenant != "" {
			est[p.Tenant] = p.Value
		}
	}
	for _, tn := range []fabric.TenantID{"kv", "ml"} {
		t.AddRow("interception", string(tn),
			fmt.Sprintf("%.0fMB", truth[tn]/1e6),
			fmt.Sprintf("%.0fMB", est[tn]/1e6),
			relErr(est[tn], truth[tn]))
	}
	return t, nil
}

// E6MonitoringOverhead sweeps the §3.1 Q2 design space: collection
// period x storage/processing placement, reporting the CPU consumed,
// the fabric bandwidth spent moving samples, and (for the rate-limited
// counter source) how stale the data gets when polled too fast.
func E6MonitoringOverhead(seed int64) (Table, error) {
	t := Table{
		ID:      "E6",
		Title:   "Monitoring pipeline overhead by placement and period",
		Columns: []string{"source", "placement", "period", "points/s", "collector cpu", "spool bandwidth", "stale"},
		Notes: []string{
			"collector cpu = modeled collection time per second of virtual time",
			"spool bandwidth = fabric load from moving samples to their store",
		},
	}
	type cfg struct {
		source    string
		placement telemetry.Placement
		period    simtime.Duration
	}
	var cases []cfg
	for _, pl := range []telemetry.Placement{telemetry.PlaceLocal, telemetry.PlaceMemory, telemetry.PlaceRemote} {
		for _, per := range []simtime.Duration{10 * simtime.Microsecond, 100 * simtime.Microsecond, simtime.Millisecond} {
			cases = append(cases, cfg{"intercept", pl, per})
		}
	}
	cases = append(cases,
		cfg{"counters", telemetry.PlaceLocal, 100 * simtime.Microsecond},
		cfg{"counters", telemetry.PlaceLocal, 2 * simtime.Millisecond},
	)
	for _, c := range cases {
		engine := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		fab := fabric.New(topo, engine, fabric.DefaultConfig())
		p, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
		if err != nil {
			return Table{}, err
		}
		if err := fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: p, Demand: topology.GBps(10)}); err != nil {
			return Table{}, err
		}
		var src telemetry.Source
		if c.source == "counters" {
			bank, err := counters.NewBank(fab, counters.DefaultConfig())
			if err != nil {
				return Table{}, err
			}
			src = telemetry.NewCounterSource(fab, bank)
		} else {
			src = telemetry.NewInterceptSource(fab)
		}
		pl, err := telemetry.NewPipeline(fab, src, telemetry.PipelineConfig{
			Period: c.period, Placement: c.placement,
			Collector: "cpu0", RemoteSink: "nic1",
		})
		if err != nil {
			return Table{}, err
		}
		if err := pl.Start(); err != nil {
			return Table{}, err
		}
		engine.RunFor(10 * simtime.Millisecond)
		o := pl.Overhead()
		pl.Stop()
		t.AddRow(c.source, string(c.placement), c.period.String(),
			fmt.Sprintf("%.0f", o.PointsPerSecond),
			fmt.Sprintf("%v/s", o.CPUPerSecond),
			o.SpoolRate.String(),
			pct(o.StaleFraction))
	}
	return t, nil
}

// E7FailureLocalization reproduces §3.1's motivating anomaly: a PCIe
// link silently degrades. The heartbeat platform must detect it and
// localize the link; a counter-threshold watcher (the state of the
// art the paper critiques) catches hard failures but is blind to
// latency-only degradation.
func E7FailureLocalization(seed int64) (Table, error) {
	t := Table{
		ID:      "E7",
		Title:   "Detection latency and localization by method, fault and heartbeat period",
		Columns: []string{"method", "fault", "period", "detected", "latency", "localized"},
		Notes: []string{
			"fault injected on pcieswitch0->nic0; degradation = -20% capacity, +10us latency",
			"counter watcher flags a link when its byte rate halves between windows",
		},
	}
	victim := topology.LinkID("pcieswitch0->nic0")

	heartbeatRun := func(period simtime.Duration, hard bool) error {
		engine := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		fab := fabric.New(topo, engine, fabric.DefaultConfig())
		cfg := anomaly.DefaultConfig()
		cfg.Period = period
		plat, err := anomaly.New(fab, anomaly.DefaultPairs(topo), cfg)
		if err != nil {
			return err
		}
		if err := plat.Start(); err != nil {
			return err
		}
		engine.RunFor(simtime.Duration(cfg.CalibrationRounds+3) * period)
		injectAt := engine.Now()
		if hard {
			if err := fab.FailLink(victim); err != nil {
				return err
			}
		} else {
			if err := fab.DegradeLink(victim, 0.2, 10*simtime.Microsecond); err != nil {
				return err
			}
		}
		deadline := injectAt.Add(simtime.Duration(50) * period)
		for engine.Now() < deadline && len(plat.Detections()) == 0 {
			engine.RunFor(period)
		}
		dets := plat.Detections()
		fault := "degradation"
		if hard {
			fault = "hard failure"
		}
		if len(dets) == 0 {
			t.AddRow("heartbeats", fault, period.String(), "no", "-", "-")
			return nil
		}
		d := dets[0]
		localized := false
		rev := topo.Link(victim).Reverse
		if len(d.Suspects) > 0 && (d.Suspects[0].Link == victim || d.Suspects[0].Link == rev) {
			localized = true
		}
		t.AddRow("heartbeats", fault, period.String(), "yes",
			d.At.Sub(injectAt).String(), fmt.Sprintf("%v", localized))
		return nil
	}
	for _, period := range []simtime.Duration{50 * simtime.Microsecond, 100 * simtime.Microsecond, 500 * simtime.Microsecond} {
		if err := heartbeatRun(period, false); err != nil {
			return Table{}, err
		}
	}
	if err := heartbeatRun(100*simtime.Microsecond, true); err != nil {
		return Table{}, err
	}

	counterRun := func(hard bool) error {
		engine := simtime.NewEngine(seed)
		topo := topology.TwoSocketServer()
		fab := fabric.New(topo, engine, fabric.DefaultConfig())
		// Moderate background load crossing the victim so counters
		// have signal: 5 GB/s against 27.8 GB/s effective capacity.
		p, err := topo.ShortestPath("external0", "socket0.dimm0_0")
		if err != nil {
			return err
		}
		rev, err := topo.ShortestPath("socket0.dimm0_0", "external0")
		if err != nil {
			return err
		}
		if err := fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: p, Demand: topology.GBps(5)}); err != nil {
			return err
		}
		if err := fab.AddFlow(&fabric.Flow{Tenant: "bg", Path: rev, Demand: topology.GBps(5)}); err != nil {
			return err
		}
		bank, err := counters.NewBank(fab, counters.DefaultConfig())
		if err != nil {
			return err
		}
		window := 500 * simtime.Microsecond
		prev := make(map[topology.LinkID]counters.Sample)
		prevRate := make(map[topology.LinkID]topology.Rate)
		warm := 4
		var detectedAt simtime.Time
		var suspect topology.LinkID
		injectAt := simtime.Time(-1)
		for round := 0; round < 24 && detectedAt == 0; round++ {
			engine.RunFor(window)
			if round == 8 {
				injectAt = engine.Now()
				if hard {
					_ = fab.FailLink(victim)
				} else {
					_ = fab.DegradeLink(victim, 0.2, 10*simtime.Microsecond)
				}
			}
			for _, l := range topo.Links() {
				s, err := bank.ReadLink(l.ID)
				if err != nil {
					continue
				}
				if ps, ok := prev[l.ID]; ok && s.At > ps.At {
					rate, _ := counters.RateBetween(ps, s)
					if round > warm && prevRate[l.ID] > topology.GBps(1) && rate < prevRate[l.ID]/2 {
						detectedAt = engine.Now()
						suspect = l.ID
					}
					prevRate[l.ID] = rate
				}
				prev[l.ID] = s
			}
		}
		fault := "degradation"
		if hard {
			fault = "hard failure"
		}
		if detectedAt == 0 || injectAt < 0 {
			t.AddRow("counter-threshold", fault, window.String(), "no", "-", "-")
			return nil
		}
		localized := suspect == victim || suspect == topo.Link(victim).Reverse
		t.AddRow("counter-threshold", fault, window.String(), "yes",
			detectedAt.Sub(injectAt).String(), fmt.Sprintf("%v", localized))
		return nil
	}
	if err := counterRun(false); err != nil {
		return Table{}, err
	}
	if err := counterRun(true); err != nil {
		return Table{}, err
	}
	return t, nil
}
