package snap

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func testConfig(preset string) Config {
	return Config{Preset: preset, Options: core.DefaultOptions()}
}

// drive issues a representative command mix valid on every preset:
// admission, workloads, fault injection, config drift, a diagnostic
// probe, and time advancement interleaved throughout.
func drive(t *testing.T, s *Session) {
	t.Helper()
	steps := []func() error{
		func() error {
			_, err := s.Admit("kv", []intent.Target{{
				Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(5),
			}})
			return err
		},
		func() error { return s.Advance(300 * simtime.Microsecond) },
		func() error { return s.StartWorkload("scan", "scan", "", "") },
		func() error { return s.Advance(200 * simtime.Microsecond) },
		func() error { return s.DegradeLink("pcieswitch0->nic0", 0.3, 2*simtime.Microsecond) },
		func() error { return s.SetComponentConfig("socket0.llc", topology.ConfigDDIO, "off") },
		func() error { return s.Advance(500 * simtime.Microsecond) },
		func() error {
			_, err := s.Ping("gpu0", "socket0.dimm0_0")
			return err
		},
		func() error { return s.RestoreLink("pcieswitch0->nic0") },
		func() error { return s.Advance(300 * simtime.Microsecond) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("drive step %d: %v", i, err)
		}
	}
}

// tail is the post-snapshot continuation applied to both the original
// and the restored session; equal final hashes prove the snapshot
// captured everything that matters.
func tail(t *testing.T, s *Session) {
	t.Helper()
	steps := []func() error{
		func() error { return s.FailLink("pcieswitch0->nic0") },
		func() error { return s.Advance(400 * simtime.Microsecond) },
		func() error { return s.RestoreLink("pcieswitch0->nic0") },
		func() error { return s.Evict("kv") },
		func() error { return s.Advance(600 * simtime.Microsecond) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("tail step %d: %v", i, err)
		}
	}
}

// TestRoundTripEveryPreset is the acceptance property: for every
// topology preset, restore(snapshot(S)) followed by N more events
// produces the same state hash as the uninterrupted run.
func TestRoundTripEveryPreset(t *testing.T) {
	for _, preset := range topology.PresetNames() {
		t.Run(preset, func(t *testing.T) {
			live, err := NewSession(testConfig(preset))
			if err != nil {
				t.Fatal(err)
			}
			drive(t, live)

			var buf bytes.Buffer
			if err := live.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := StateHash(restored.Manager()), StateHash(live.Manager()); got != want {
				t.Fatalf("restored hash %s != live hash %s", got, want)
			}

			// Diverge-proof continuation: same commands on both.
			tail(t, live)
			tail(t, restored)
			liveHash := StateHash(live.Manager())
			restoredHash := StateHash(restored.Manager())
			if liveHash != restoredHash {
				t.Fatalf("after continuation: uninterrupted %s != resumed %s", liveHash, restoredHash)
			}

			// The continued journals must agree too.
			lj, rj := live.Journal(), restored.Journal()
			if len(lj.Entries) != len(rj.Entries) {
				t.Fatalf("journal lengths diverge: %d vs %d", len(lj.Entries), len(rj.Entries))
			}
			for i := range lj.Entries {
				// Entries hold a slice field; compare via JSON.
				a, _ := json.Marshal(lj.Entries[i])
				b, _ := json.Marshal(rj.Entries[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("journal entry %d diverges: %s vs %s", i, a, b)
				}
			}
		})
	}
}

func TestCheckDeterminism(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	div, err := CheckDeterminism(s.Config(), s.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("unexpected divergence: %v", div)
	}
}

// TestPerturbedJournalDetected re-encodes a snapshot with one journal
// entry altered (checksum recomputed so only the hash check can catch
// it) and expects Restore to refuse.
func TestPerturbedJournalDetected(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	var env Snapshot
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var p Payload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		t.Fatal(err)
	}
	perturbed := false
	for i := range p.Journal.Entries {
		if p.Journal.Entries[i].Kind == KindAdmit {
			p.Journal.Entries[i].Targets[0].RateBps *= 1.5
			perturbed = true
			break
		}
	}
	if !perturbed {
		t.Fatal("no admit entry to perturb")
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	env.Payload = raw
	env.ChecksumSHA256 = checksum(raw)
	forged, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(bytes.NewReader(forged)); err == nil {
		t.Fatal("restore accepted a perturbed journal")
	} else if !strings.Contains(err.Error(), "does not match recorded") {
		t.Fatalf("wrong failure mode: %v", err)
	}
}

func TestCorruptedSnapshotRejected(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Flip one payload character. The envelope still parses (JSON
	// string bodies tolerate letter swaps) but the checksum must not.
	data := buf.Bytes()
	idx := bytes.Index(data, []byte(`"virtual_time_ns"`))
	if idx < 0 {
		t.Fatal("marker not found in snapshot")
	}
	data[idx+1] ^= 0x01
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted snapshot accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("wrong failure mode: %v", err)
	}

	// Unknown version is rejected before any checksum math.
	var env Snapshot
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	env.Version = SnapshotVersion + 1
	raw, _ := json.Marshal(env)
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("unknown version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong failure mode: %v", err)
	}
}

func TestJournalCoalescesAdvances(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Advance(10 * simtime.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	j := s.Journal()
	if j.Len() != 1 {
		t.Fatalf("5 consecutive advances journaled as %d entries, want 1", j.Len())
	}
	if e := j.Entries[0]; e.Kind != KindAdvance || e.ToNs != int64(50*simtime.Microsecond) {
		t.Fatalf("coalesced advance wrong: %+v", e)
	}
}

func TestJournalValidate(t *testing.T) {
	bad := []Journal{
		{Entries: []Entry{{Seq: 1, Kind: KindAdvance}}},                                                                         // non-dense seq
		{Entries: []Entry{{Seq: 0, AtNs: 100, Kind: KindAdvance, ToNs: 50}}},                                                    // advance backwards
		{Entries: []Entry{{Seq: 0, Kind: KindAdmit, Tenant: "t"}}},                                                              // admit without targets
		{Entries: []Entry{{Seq: 0, Kind: KindFail}}},                                                                            // fail without link
		{Entries: []Entry{{Seq: 0, Kind: EntryKind("mystery")}}},                                                                // unknown kind
		{Entries: []Entry{{Seq: 0, AtNs: 100, Kind: KindEvict, Tenant: "t"}, {Seq: 1, AtNs: 50, Kind: KindEvict, Tenant: "t"}}}, // time reversal
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("journal %d validated but should not have", i)
		}
	}
}

func TestRestoredSessionKeepsJournaling(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	restored, n, err := RoundTrip(s)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("snapshot reported zero bytes")
	}
	before := restored.Journal().Len()
	if err := restored.FailLink("pcieswitch0->nic0"); err != nil {
		t.Fatal(err)
	}
	if got := restored.Journal().Len(); got != before+1 {
		t.Fatalf("restored session did not journal: %d -> %d", before, got)
	}
}

func TestReplayTraceDivergencePoint(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	trace, err := ReplayTrace(s.Config(), s.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Journal().Len() + 1; len(trace) != want {
		t.Fatalf("trace has %d points, want %d", len(trace), want)
	}
	// The final trace point must equal the live session's hash: replay
	// reconstructs the exact same state the recorder reached.
	if got, want := trace[len(trace)-1].Hash, StateHash(s.Manager()); got != want {
		t.Fatalf("trace end %s != live hash %s", got, want)
	}
}

// TestSpanThreading checks the journal<->trace correlation contract:
// commands get deterministic "j<seq>" spans (or a caller-set one), a
// coalescing advance inherits the open advance's span, and the events
// a command's effects emit carry its span.
func TestSpanThreading(t *testing.T) {
	s, err := NewSession(testConfig("two-socket"))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Manager().Obs().Bus.Subscribe(256)
	if _, err := s.Admit("kv", []intent.Target{{
		Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(5),
	}}); err != nil {
		t.Fatal(err)
	}
	s.SetSpan("req-abc")
	if err := s.Advance(100 * simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Coalesces into the previous advance and must share its span.
	if err := s.Advance(100 * simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("kv"); err != nil {
		t.Fatal(err)
	}

	j := s.Journal()
	if j.Len() != 3 {
		t.Fatalf("journal has %d entries, want 3 (advances coalesced)", j.Len())
	}
	if got := j.Entries[0].Span; got != "j0" {
		t.Errorf("admit span %q, want j0", got)
	}
	if got := j.Entries[1].Span; got != "req-abc" {
		t.Errorf("advance span %q, want req-abc", got)
	}
	if got := j.Entries[2].Span; got != "j2" {
		t.Errorf("evict span %q, want j2", got)
	}

	spans := make(map[string]bool)
	for _, be := range sub.Drain() {
		spans[be.Event.Span] = true
	}
	for _, want := range []string{"j0", "req-abc", "j2"} {
		if !spans[want] {
			t.Errorf("no streamed event carries span %q (saw %v)", want, spans)
		}
	}

	// Replay must preserve recorded spans verbatim.
	replayed, err := Replay(s.Config(), j)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range replayed.Journal().Entries {
		if e.Span != j.Entries[i].Span {
			t.Errorf("replay entry %d span %q != recorded %q", i, e.Span, j.Entries[i].Span)
		}
	}
}
