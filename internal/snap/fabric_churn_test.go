package snap

import (
	"testing"

	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// TestChurnHeavyDeterminism is the determinism gate for the fabric's
// incremental recompute path. The scenario is deliberately hostile to
// incremental state: sized-flow workloads completing and re-arming on
// every advance, tenants evicted and re-admitted (flow membership
// churn), links degraded, failed, and restored mid-flight (capacity
// refresh without constraint rebuild), and config drift. Replaying the
// journal twice must produce identical rolling state hashes at every
// point, or the solver's reuse of scratch state leaked into observable
// behaviour.
func TestChurnHeavyDeterminism(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	admitKV := func() error {
		_, err := s.Admit("kv", []intent.Target{{
			Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(5),
		}})
		return err
	}
	steps := []func() error{
		admitKV,
		func() error { return s.StartWorkload("kv", "kv", "", "") },
		func() error { return s.StartWorkload("scan", "scan", "", "") },
		func() error { return s.Advance(150 * simtime.Microsecond) },
		func() error { return s.StartWorkload("ml", "ml", "", "") },
		func() error { return s.Advance(80 * simtime.Microsecond) },
		func() error { return s.DegradeLink("pcieswitch0->nic0", 0.4, simtime.Microsecond) },
		func() error { return s.Advance(120 * simtime.Microsecond) },
		// Membership churn while traffic is in flight.
		func() error { return s.Evict("kv") },
		func() error { return s.Advance(60 * simtime.Microsecond) },
		admitKV,
		func() error { return s.StartWorkload("kv", "kv", "", "") },
		func() error { return s.FailLink("pcieswitch0->nic0") },
		func() error { return s.Advance(90 * simtime.Microsecond) },
		func() error { return s.RestoreLink("pcieswitch0->nic0") },
		func() error { return s.SetComponentConfig("socket0.llc", topology.ConfigDDIO, "off") },
		func() error { return s.Advance(200 * simtime.Microsecond) },
		func() error { return s.StartWorkload("loopback", "loop", "", "") },
	}
	// Many short advances keep the completion re-arm path hot: each one
	// fires a batch of sized-flow completions and reschedules the rest.
	for i := 0; i < 40; i++ {
		steps = append(steps, func() error { return s.Advance(25 * simtime.Microsecond) })
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("churn step %d: %v", i, err)
		}
	}

	div, err := CheckDeterminism(s.Config(), s.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("churn-heavy journal diverged between replays: %v", div)
	}

	// The replayed end state must also match the live recorder, not just
	// be self-consistent across replays.
	trace, err := ReplayTrace(s.Config(), s.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := trace[len(trace)-1].Hash, StateHash(s.Manager()); got != want {
		t.Fatalf("replayed end hash %s != live hash %s", got, want)
	}
}
