package snap

import (
	"bytes"
	"testing"

	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchDrive builds a realistic mid-run state: one tenant, one
// workload, a fault cycle, and a few milliseconds of virtual time.
func benchDrive(s *Session) error {
	steps := []func() error{
		func() error {
			_, err := s.Admit("kv", []intent.Target{{
				Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(5),
			}})
			return err
		},
		func() error { return s.StartWorkload("scan", "scan", "", "") },
		func() error { return s.Advance(time500us) },
		func() error { return s.DegradeLink("pcieswitch0->nic0", 0.3, 2*simtime.Microsecond) },
		func() error { return s.Advance(time500us) },
		func() error { return s.RestoreLink("pcieswitch0->nic0") },
		func() error { return s.Advance(2 * simtime.Millisecond) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

const time500us = 500 * simtime.Microsecond

// BenchmarkSnapshotRoundTrip measures a full checkpoint cycle on the
// two-socket preset: export + encode + decode + replay + verify. The
// replay cost dominates and grows with journal length, which is the
// honest number — restores replay history.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	s, err := NewSession(testConfig("two-socket"))
	if err != nil {
		b.Fatal(err)
	}
	if err := benchDrive(s); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := s.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Restore(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode isolates export + encode, the cost a daemon
// pays per periodic checkpoint while staying live.
func BenchmarkSnapshotEncode(b *testing.B) {
	s, err := NewSession(testConfig("two-socket"))
	if err != nil {
		b.Fatal(err)
	}
	if err := benchDrive(s); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := s.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
