// Package snap gives the manageable intra-host network durable,
// deterministic state: checkpoint/restore, record-replay, and a
// divergence checker that turns "the simulation is deterministic" from
// an assumption into a tested invariant.
//
// The design exploits the one property the whole repository is built
// on: a run is a pure function of (topology, options, command stream).
// Event callbacks are closures and cannot be serialized, so a snapshot
// does not dump the event heap. Instead it captures the inputs — the
// configuration and the append-only journal of every command applied
// from outside the event loop — plus a checksummed export of the
// resulting state. Restore replays the journal against a fresh host
// and refuses to hand the session back unless the replayed state hash
// matches the recorded one bit for bit.
//
// Three layers:
//
//   - Journal: the append-only command log (admits, evictions, fault
//     injections, config changes, workload starts, diagnostic probes,
//     time advancement).
//   - Session: a live manager that records every command it applies.
//     Snapshot/Restore serialize and reconstruct it.
//   - Replay/CheckDeterminism: re-execute a journal (twice) with
//     rolling state hashes and report the first divergent entry.
package snap

import (
	"encoding/json"
	"fmt"
	"io"
)

// EntryKind names one journaled command.
type EntryKind string

// Journal entry kinds.
const (
	// KindAdvance moves virtual time to ToNs (RunUntil semantics).
	KindAdvance EntryKind = "advance"
	// KindAdmit runs compile -> schedule -> arbitrate for a tenant.
	KindAdmit EntryKind = "admit"
	// KindEvict releases a tenant's guarantees.
	KindEvict EntryKind = "evict"
	// KindDegrade silently degrades a directed link.
	KindDegrade EntryKind = "degrade"
	// KindFail hard-fails a directed link.
	KindFail EntryKind = "fail"
	// KindRestoreLink clears failure and degradation on a link.
	KindRestoreLink EntryKind = "restore-link"
	// KindSetConfig changes one component configuration key.
	KindSetConfig EntryKind = "set-config"
	// KindWorkload starts a workload generator.
	KindWorkload EntryKind = "workload"
	// KindPing / KindTrace / KindPerf run a diagnostic probe, driving
	// virtual time until it completes (bounded). Probes inject real
	// traffic, so they must be journaled to keep replay faithful.
	KindPing  EntryKind = "ping"
	KindTrace EntryKind = "trace"
	KindPerf  EntryKind = "perf"
)

// Target is one intent target in journal form. Rates are stored in
// exact bits per second so the admit replays with identical floats.
type Target struct {
	Src          string  `json:"src"`
	Dst          string  `json:"dst"`
	RateBps      float64 `json:"rate_bps"`
	MaxLatencyNs int64   `json:"max_latency_ns,omitempty"`
}

// Entry is one journaled command. AtNs is the virtual time at which
// the command was issued; replay advances the clock there before
// re-applying it. Fields beyond Kind are populated per kind.
type Entry struct {
	Seq  uint64    `json:"seq"`
	AtNs int64     `json:"at_ns"`
	Kind EntryKind `json:"kind"`
	// Span correlates the command with the trace events its effects
	// emit. Sessions assign "j<seq>" automatically; callers (the HTTP
	// API) may override it with a request ID so access-log lines,
	// journal entries and trace events all join on one key. Replay
	// reuses the recorded span, keeping correlation stable.
	Span string `json:"span,omitempty"`

	// KindAdvance.
	ToNs int64 `json:"to_ns,omitempty"`
	// KindAdmit / KindEvict / KindWorkload / KindPerf.
	Tenant string `json:"tenant,omitempty"`
	// KindAdmit.
	Targets []Target `json:"targets,omitempty"`
	// KindAdmit: links the scheduler must avoid (remediation re-path).
	// Replayed admits re-run compile -> schedule at replay time, so the
	// avoid set is part of the command, not derivable from state.
	Avoid []string `json:"avoid,omitempty"`
	// KindDegrade / KindFail / KindRestoreLink.
	Link     string  `json:"link,omitempty"`
	LossFrac float64 `json:"loss_frac,omitempty"`
	ExtraNs  int64   `json:"extra_ns,omitempty"`
	// KindSetConfig.
	Component string `json:"component,omitempty"`
	Key       string `json:"key,omitempty"`
	Value     string `json:"value,omitempty"`
	// KindWorkload: one of "kv", "ml", "loopback", "scan".
	Workload string `json:"workload,omitempty"`
	// KindWorkload / probes: optional endpoints.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
}

// Journal is an append-only command log. The zero value is ready to
// use.
type Journal struct {
	Entries []Entry `json:"entries"`
}

// Len returns the number of journaled commands.
func (j Journal) Len() int { return len(j.Entries) }

// append adds e with the next sequence number. Consecutive advances
// coalesce: RunUntil(t1) followed by RunUntil(t2) with no command in
// between is indistinguishable from RunUntil(t2), so extending the
// previous advance keeps long-running daemons' journals compact
// without changing replay semantics.
func (j *Journal) append(e Entry) {
	if e.Kind == KindAdvance && len(j.Entries) > 0 {
		if last := &j.Entries[len(j.Entries)-1]; last.Kind == KindAdvance {
			if e.ToNs > last.ToNs {
				last.ToNs = e.ToNs
			}
			return
		}
	}
	e.Seq = uint64(len(j.Entries))
	j.Entries = append(j.Entries, e)
}

// Validate checks structural invariants: sequence numbers are dense,
// timestamps never go backwards, and every entry has a known kind with
// its required fields.
func (j *Journal) Validate() error {
	var last int64
	for i, e := range j.Entries {
		if e.Seq != uint64(i) {
			return fmt.Errorf("snap: entry %d has seq %d", i, e.Seq)
		}
		if e.AtNs < last {
			return fmt.Errorf("snap: entry %d at %dns before predecessor at %dns", i, e.AtNs, last)
		}
		last = e.AtNs
		switch e.Kind {
		case KindAdvance:
			if e.ToNs < e.AtNs {
				return fmt.Errorf("snap: entry %d advances backwards (%d -> %d)", i, e.AtNs, e.ToNs)
			}
		case KindAdmit:
			if e.Tenant == "" || len(e.Targets) == 0 {
				return fmt.Errorf("snap: entry %d admit needs tenant and targets", i)
			}
		case KindEvict:
			if e.Tenant == "" {
				return fmt.Errorf("snap: entry %d evict needs a tenant", i)
			}
		case KindDegrade, KindFail, KindRestoreLink:
			if e.Link == "" {
				return fmt.Errorf("snap: entry %d %s needs a link", i, e.Kind)
			}
		case KindSetConfig:
			if e.Component == "" || e.Key == "" {
				return fmt.Errorf("snap: entry %d set-config needs component and key", i)
			}
		case KindWorkload:
			if e.Workload == "" || e.Tenant == "" {
				return fmt.Errorf("snap: entry %d workload needs kind and tenant", i)
			}
		case KindPing, KindTrace, KindPerf:
			if e.Src == "" || e.Dst == "" {
				return fmt.Errorf("snap: entry %d %s needs src and dst", i, e.Kind)
			}
		default:
			return fmt.Errorf("snap: entry %d has unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// Encode serializes the journal as indented JSON.
func (j *Journal) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJournal parses and validates a journal.
func ReadJournal(r io.Reader) (Journal, error) {
	var j Journal
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return Journal{}, fmt.Errorf("snap: decode journal: %w", err)
	}
	if err := j.Validate(); err != nil {
		return Journal{}, err
	}
	return j, nil
}
