// Package snap gives the manageable intra-host network durable,
// deterministic state: checkpoint/restore, record-replay, and a
// divergence checker that turns "the simulation is deterministic" from
// an assumption into a tested invariant.
//
// The design exploits the one property the whole repository is built
// on: a run is a pure function of (topology, options, command stream).
// Event callbacks are closures and cannot be serialized, so a snapshot
// does not dump the event heap. Instead it captures the inputs — the
// configuration and the append-only journal of every command applied
// from outside the event loop — plus a checksummed export of the
// resulting state. Restore replays the journal against a fresh host
// and refuses to hand the session back unless the replayed state hash
// matches the recorded one bit for bit.
//
// Three layers:
//
//   - Journal: the append-only command log (admits, evictions, fault
//     injections, config changes, workload starts, diagnostic probes,
//     time advancement).
//   - Session: a live manager that records every command it applies.
//     Snapshot/Restore serialize and reconstruct it.
//   - Replay/CheckDeterminism: re-execute a journal (twice) with
//     rolling state hashes and report the first divergent entry.
package snap

import (
	"encoding/json"
	"fmt"
	"io"
)

// EntryKind names one journaled command.
type EntryKind string

// Journal entry kinds.
const (
	// KindAdvance moves virtual time to ToNs (RunUntil semantics).
	KindAdvance EntryKind = "advance"
	// KindAdmit runs compile -> schedule -> arbitrate for a tenant.
	KindAdmit EntryKind = "admit"
	// KindEvict releases a tenant's guarantees.
	KindEvict EntryKind = "evict"
	// KindDegrade silently degrades a directed link.
	KindDegrade EntryKind = "degrade"
	// KindFail hard-fails a directed link.
	KindFail EntryKind = "fail"
	// KindRestoreLink clears failure and degradation on a link.
	KindRestoreLink EntryKind = "restore-link"
	// KindSetConfig changes one component configuration key.
	KindSetConfig EntryKind = "set-config"
	// KindWorkload starts a workload generator.
	KindWorkload EntryKind = "workload"
	// KindPing / KindTrace / KindPerf run a diagnostic probe, driving
	// virtual time until it completes (bounded). Probes inject real
	// traffic, so they must be journaled to keep replay faithful.
	KindPing  EntryKind = "ping"
	KindTrace EntryKind = "trace"
	KindPerf  EntryKind = "perf"
	// KindSetCap installs (CapBps >= 0) or clears (CapBps < 0) a
	// per-tenant rate cap on one directed link.
	KindSetCap EntryKind = "set-cap"
	// KindBatch groups mutation ops into one entry: all ops land under
	// a single fabric batch, so the solver settles once for the whole
	// group. Only mutations may appear inside a batch — time
	// advancement and probes drive the clock and cannot coalesce.
	KindBatch EntryKind = "batch"
)

// batchable reports whether a kind may appear as an op inside a
// KindBatch entry.
func batchable(k EntryKind) bool {
	switch k {
	case KindAdmit, KindEvict, KindDegrade, KindFail, KindRestoreLink,
		KindSetConfig, KindWorkload, KindSetCap:
		return true
	}
	return false
}

// Target is one intent target in journal form. Rates are stored in
// exact bits per second so the admit replays with identical floats.
type Target struct {
	Src          string  `json:"src"`
	Dst          string  `json:"dst"`
	RateBps      float64 `json:"rate_bps"`
	MaxLatencyNs int64   `json:"max_latency_ns,omitempty"`
}

// Entry is one journaled command. AtNs is the virtual time at which
// the command was issued; replay advances the clock there before
// re-applying it. Fields beyond Kind are populated per kind.
type Entry struct {
	Seq  uint64    `json:"seq"`
	AtNs int64     `json:"at_ns"`
	Kind EntryKind `json:"kind"`
	// Span correlates the command with the trace events its effects
	// emit. Sessions assign "j<seq>" automatically; callers (the HTTP
	// API) may override it with a request ID so access-log lines,
	// journal entries and trace events all join on one key. Replay
	// reuses the recorded span, keeping correlation stable.
	Span string `json:"span,omitempty"`

	// KindAdvance.
	ToNs int64 `json:"to_ns,omitempty"`
	// KindAdmit / KindEvict / KindWorkload / KindPerf.
	Tenant string `json:"tenant,omitempty"`
	// KindAdmit.
	Targets []Target `json:"targets,omitempty"`
	// KindAdmit: links the scheduler must avoid (remediation re-path).
	// Replayed admits re-run compile -> schedule at replay time, so the
	// avoid set is part of the command, not derivable from state.
	Avoid []string `json:"avoid,omitempty"`
	// KindDegrade / KindFail / KindRestoreLink.
	Link     string  `json:"link,omitempty"`
	LossFrac float64 `json:"loss_frac,omitempty"`
	ExtraNs  int64   `json:"extra_ns,omitempty"`
	// KindSetConfig.
	Component string `json:"component,omitempty"`
	Key       string `json:"key,omitempty"`
	Value     string `json:"value,omitempty"`
	// KindWorkload: one of "kv", "ml", "loopback", "scan".
	Workload string `json:"workload,omitempty"`
	// KindWorkload / probes: optional endpoints.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// KindSetCap: cap in bits per second; negative clears the cap.
	CapBps float64 `json:"cap_bps,omitempty"`
	// KindBatch: the grouped ops, applied in order. Ops carry no
	// Seq/AtNs/Span of their own — the enclosing entry's position and
	// span cover the whole group.
	Ops []Entry `json:"ops,omitempty"`
}

// Journal is an append-only command log. The zero value is ready to
// use.
type Journal struct {
	Entries []Entry `json:"entries"`
}

// Len returns the number of journaled commands.
func (j Journal) Len() int { return len(j.Entries) }

// append adds e with the next sequence number. Consecutive advances
// coalesce: RunUntil(t1) followed by RunUntil(t2) with no command in
// between is indistinguishable from RunUntil(t2), so extending the
// previous advance keeps long-running daemons' journals compact
// without changing replay semantics.
func (j *Journal) append(e Entry) {
	if e.Kind == KindAdvance && len(j.Entries) > 0 {
		if last := &j.Entries[len(j.Entries)-1]; last.Kind == KindAdvance {
			if e.ToNs > last.ToNs {
				last.ToNs = e.ToNs
			}
			return
		}
	}
	e.Seq = uint64(len(j.Entries))
	j.Entries = append(j.Entries, e)
}

// Validate checks structural invariants: sequence numbers are dense,
// timestamps never go backwards, and every entry has a known kind with
// its required fields.
func (j *Journal) Validate() error {
	var last int64
	for i, e := range j.Entries {
		if e.Seq != uint64(i) {
			return fmt.Errorf("snap: entry %d has seq %d", i, e.Seq)
		}
		if e.AtNs < last {
			return fmt.Errorf("snap: entry %d at %dns before predecessor at %dns", i, e.AtNs, last)
		}
		last = e.AtNs
		if err := e.check(); err != nil {
			return fmt.Errorf("snap: entry %d %s", i, err)
		}
	}
	return nil
}

// check verifies the per-kind required fields of one entry, including
// the ops of a batch. Errors are unprefixed; Validate adds position.
func (e *Entry) check() error {
	switch e.Kind {
	case KindAdvance:
		if e.ToNs < e.AtNs {
			return fmt.Errorf("advances backwards (%d -> %d)", e.AtNs, e.ToNs)
		}
	case KindAdmit:
		if e.Tenant == "" || len(e.Targets) == 0 {
			return fmt.Errorf("admit needs tenant and targets")
		}
	case KindEvict:
		if e.Tenant == "" {
			return fmt.Errorf("evict needs a tenant")
		}
	case KindDegrade, KindFail, KindRestoreLink:
		if e.Link == "" {
			return fmt.Errorf("%s needs a link", e.Kind)
		}
	case KindSetConfig:
		if e.Component == "" || e.Key == "" {
			return fmt.Errorf("set-config needs component and key")
		}
	case KindWorkload:
		if e.Workload == "" || e.Tenant == "" {
			return fmt.Errorf("workload needs kind and tenant")
		}
	case KindPing, KindTrace, KindPerf:
		if e.Src == "" || e.Dst == "" {
			return fmt.Errorf("%s needs src and dst", e.Kind)
		}
	case KindSetCap:
		if e.Link == "" || e.Tenant == "" {
			return fmt.Errorf("set-cap needs link and tenant")
		}
	case KindBatch:
		if len(e.Ops) == 0 {
			return fmt.Errorf("batch needs at least one op")
		}
		if err := checkBatchOps(e.Ops); err != nil {
			return err
		}
	default:
		return fmt.Errorf("has unknown kind %q", e.Kind)
	}
	return nil
}

// checkBatchOps validates a batch's op list: every op must be a
// batchable mutation with its required fields. Shared by journal
// validation and Session.ApplyBatch, so a batch is rejected before any
// state changes.
func checkBatchOps(ops []Entry) error {
	for k, op := range ops {
		if !batchable(op.Kind) {
			return fmt.Errorf("batch op %d has non-batchable kind %q", k, op.Kind)
		}
		if err := op.check(); err != nil {
			return fmt.Errorf("batch op %d %s", k, err)
		}
	}
	return nil
}

// Encode serializes the journal as indented JSON.
func (j *Journal) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJournal parses and validates a journal.
func ReadJournal(r io.Reader) (Journal, error) {
	var j Journal
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return Journal{}, fmt.Errorf("snap: decode journal: %w", err)
	}
	if err := j.Validate(); err != nil {
		return Journal{}, err
	}
	return j, nil
}
