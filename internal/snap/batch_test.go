package snap

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// batchAdmitOp builds an admit op for the minimal preset.
func batchAdmitOp(tenant string, gbps float64) Entry {
	return Entry{Kind: KindAdmit, Tenant: tenant, Targets: []Target{{
		Src: "nic0", Dst: "socket0.dimm0_0", RateBps: float64(topology.GBps(gbps)),
	}}}
}

// TestBatchOneSettle pins the batched mutation API's core contract: a
// batch of N ops triggers exactly one solver settle and lands as
// exactly one journal entry.
func TestBatchOneSettle(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	ops := []Entry{
		batchAdmitOp("kv", 5),
		batchAdmitOp("ml", 3),
		{Kind: KindSetCap, Link: "pcieswitch0->nic0", Tenant: "kv", CapBps: 1e9},
		{Kind: KindWorkload, Workload: "scan", Tenant: "scan"},
	}
	fab := s.Manager().Fabric()
	before := fab.SolverStats()
	entriesBefore := s.Journal().Len()
	results, err := s.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status != "ok" {
			t.Fatalf("op %d: status %q (%s)", i, r.Status, r.Error)
		}
	}
	after := fab.SolverStats()
	if got := after.Solves - before.Solves; got != 1 {
		t.Fatalf("batch of %d ops settled the solver %d times, want exactly 1", len(ops), got)
	}
	if got := s.Journal().Len() - entriesBefore; got != 1 {
		t.Fatalf("batch journaled %d entries, want exactly 1", got)
	}
	last := s.Journal().Entries[s.Journal().Len()-1]
	if last.Kind != KindBatch || len(last.Ops) != len(ops) {
		t.Fatalf("journal tail is %s with %d ops, want batch with %d", last.Kind, len(last.Ops), len(ops))
	}
}

// TestBatchPartialFailure checks the documented abort semantics: the
// first failing op stops the batch, later ops are skipped, and the
// journal records exactly the applied prefix — which must replay
// cleanly and deterministically.
func TestBatchPartialFailure(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	ops := []Entry{
		batchAdmitOp("kv", 5),
		{Kind: KindEvict, Tenant: "ghost"}, // no such tenant: fails
		{Kind: KindSetCap, Link: "pcieswitch0->nic0", Tenant: "kv", CapBps: 1e9},
	}
	results, err := s.ApplyBatch(ops)
	if err == nil {
		t.Fatal("batch with a failing op returned nil error")
	}
	want := []string{"ok", "failed", "skipped"}
	for i, r := range results {
		if r.Status != want[i] {
			t.Fatalf("op %d: status %q, want %q", i, r.Status, want[i])
		}
	}
	last := s.Journal().Entries[s.Journal().Len()-1]
	if last.Kind != KindBatch || len(last.Ops) != 1 {
		t.Fatalf("journal tail is %s with %d ops, want batch with the applied prefix of 1", last.Kind, len(last.Ops))
	}
	if d, err := CheckDeterminism(s.Config(), s.Journal()); err != nil {
		t.Fatal(err)
	} else if d != nil {
		t.Fatal(d)
	}
}

// TestBatchRejectsNonMutation checks that a structurally invalid batch
// is rejected before any state changes: no journal growth, no settle.
func TestBatchRejectsNonMutation(t *testing.T) {
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	fab := s.Manager().Fabric()
	before := fab.SolverStats()
	entriesBefore := s.Journal().Len()
	for _, ops := range [][]Entry{
		{{Kind: KindAdvance, ToNs: 1000}},
		{{Kind: KindPing, Src: "nic0", Dst: "gpu0"}},
		{{Kind: KindBatch, Ops: []Entry{batchAdmitOp("kv", 1)}}},
		{{Kind: KindSetCap, Link: "pcieswitch0->nic0"}}, // missing tenant
		{},
	} {
		if _, err := s.ApplyBatch(ops); err == nil {
			t.Fatalf("batch %v accepted, want rejection", ops)
		}
	}
	if got := s.Journal().Len(); got != entriesBefore {
		t.Fatalf("rejected batches journaled %d entries", got-entriesBefore)
	}
	if after := fab.SolverStats(); after.Solves != before.Solves {
		t.Fatal("rejected batch settled the solver")
	}
}

// TestJournalValidateBatch exercises the journal-level validation of
// batch entries and their op lists.
func TestJournalValidateBatch(t *testing.T) {
	mk := func(e Entry) Journal { return Journal{Entries: []Entry{e}} }
	cases := []struct {
		name string
		j    Journal
		want string // substring of the error, "" for valid
	}{
		{"valid", mk(Entry{Kind: KindBatch, Ops: []Entry{
			batchAdmitOp("kv", 1),
			{Kind: KindSetCap, Link: "l", Tenant: "kv", CapBps: -1},
		}}), ""},
		{"empty", mk(Entry{Kind: KindBatch}), "at least one op"},
		{"nested", mk(Entry{Kind: KindBatch, Ops: []Entry{
			{Kind: KindBatch, Ops: []Entry{batchAdmitOp("kv", 1)}},
		}}), "non-batchable"},
		{"advance-inside", mk(Entry{Kind: KindBatch, Ops: []Entry{
			{Kind: KindAdvance, ToNs: 5},
		}}), "non-batchable"},
		{"malformed-op", mk(Entry{Kind: KindBatch, Ops: []Entry{
			{Kind: KindAdmit, Tenant: "kv"},
		}}), "admit needs tenant and targets"},
		{"set-cap-missing-link", mk(Entry{Kind: KindSetCap, Tenant: "kv"}), "set-cap needs link"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.j.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid journal rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
		})
	}
}

// batchDrive records a session mixing batches, cap changes and
// advances, returning its config and journal.
func batchDrive(t *testing.T) (Config, Journal) {
	t.Helper()
	s, err := NewSession(testConfig("minimal"))
	if err != nil {
		t.Fatal(err)
	}
	steps := []func() error{
		func() error {
			_, err := s.ApplyBatch([]Entry{
				batchAdmitOp("kv", 5),
				{Kind: KindWorkload, Workload: "kv", Tenant: "kv"},
				{Kind: KindWorkload, Workload: "scan", Tenant: "scan"},
			})
			return err
		},
		func() error { return s.Advance(150 * simtime.Microsecond) },
		func() error { return s.SetTenantCap("pcieswitch0->nic0", "kv", 2e9) },
		func() error { return s.Advance(100 * simtime.Microsecond) },
		func() error {
			_, err := s.ApplyBatch([]Entry{
				{Kind: KindEvict, Tenant: "kv"},
				batchAdmitOp("kv", 4),
				{Kind: KindDegrade, Link: "pcieswitch0->nic0", LossFrac: 0.2, ExtraNs: 1000},
			})
			return err
		},
		func() error { return s.Advance(200 * simtime.Microsecond) },
		func() error { return s.SetTenantCap("pcieswitch0->nic0", "kv", -1) }, // clear
		func() error { return s.Advance(200 * simtime.Microsecond) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("batch drive step %d: %v", i, err)
		}
	}
	return s.Config(), s.Journal()
}

// TestBatchReplayDeterminism runs the determinism gate over a journal
// containing batches and cap changes.
func TestBatchReplayDeterminism(t *testing.T) {
	cfg, j := batchDrive(t)
	d, err := CheckDeterminism(cfg, j)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatal(d)
	}
}

// replayHashTuned replays a journal on a fresh host with the solver
// forced to the given tuning and GOMAXPROCS, returning the final state
// hash.
func replayHashTuned(t *testing.T, cfg Config, j Journal, threshold, workers, procs int) string {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := s.Manager().Fabric()
	fab.SetSolverTuning(threshold, workers)
	defer fab.StopSolver()
	for _, e := range j.Entries {
		if err := s.ReplayEntry(e); err != nil {
			t.Fatalf("replay entry %d: %v", e.Seq, err)
		}
	}
	return StateHash(s.Manager())
}

// TestReplayHashStableAcrossSolverTuning is the cross-configuration
// determinism gate: the same journal replayed serially, with a forced
// parallel worker pool, and under different GOMAXPROCS values must
// produce bit-identical state hashes.
func TestReplayHashStableAcrossSolverTuning(t *testing.T) {
	cfg, j := batchDrive(t)
	serial := replayHashTuned(t, cfg, j, 1<<30, 1, 1)
	parallel1 := replayHashTuned(t, cfg, j, 1, 4, 1)
	parallel4 := replayHashTuned(t, cfg, j, 1, 4, 4)
	parallel8 := replayHashTuned(t, cfg, j, 1, 8, 2)
	if parallel1 != serial || parallel4 != serial || parallel8 != serial {
		t.Fatalf("replay hash depends on solver tuning:\n serial   %s\n par/1cpu %s\n par/4cpu %s\n par8/2   %s",
			serial, parallel1, parallel4, parallel8)
	}
}
