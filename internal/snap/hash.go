package snap

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"sort"

	"repro/internal/core"
)

// StateExport is the canonical, deterministic serialization of a
// managed host's externally observable state: the engine's position,
// every link and flow of the fabric, installed caps, admitted tenants
// with their reservations, and the monitor/anomaly histories. Two runs
// are considered identical exactly when their exports are bit-equal;
// StateHash condenses that to one comparable string.
//
// Accumulated byte counters are rounded to whole bytes before export:
// accrual is settled in pieces whose float rounding depends on where
// observations (snapshots, monitor sweeps) happened to land, and those
// ULP-scale artifacts are measurement noise, not state divergence.
type StateExport struct {
	VirtualTimeNs   int64           `json:"virtual_time_ns"`
	EventsProcessed uint64          `json:"events_processed"`
	EventsScheduled uint64          `json:"events_scheduled"`
	PendingEvents   []PendingExport `json:"pending_events,omitempty"`
	Links           []LinkExport    `json:"links"`
	Flows           []FlowExport    `json:"flows,omitempty"`
	TenantWeights   []WeightExport  `json:"tenant_weights,omitempty"`
	Tenants         []TenantExport  `json:"tenants,omitempty"`
	MonitorSweeps   uint64          `json:"monitor_sweeps"`
	Alerts          []AlertExport   `json:"alerts,omitempty"`
	AnomalyRounds   int             `json:"anomaly_rounds"`
	ProbesSent      uint64          `json:"probes_sent"`
	Detections      []DetectExport  `json:"detections,omitempty"`
	Suspects        []SuspectExport `json:"suspects,omitempty"`
}

// PendingExport is one live event-queue entry.
type PendingExport struct {
	AtNs int64  `json:"at_ns"`
	Seq  uint64 `json:"seq"`
}

// RateExport is one (tenant, rate) or (tenant, bytes) pair.
type RateExport struct {
	Tenant string  `json:"tenant"`
	Value  float64 `json:"value"`
}

// WeightExport is one explicitly set tenant weight.
type WeightExport struct {
	Tenant string  `json:"tenant"`
	Weight float64 `json:"weight"`
}

// LinkExport is one directed link's state.
type LinkExport struct {
	ID          string       `json:"id"`
	CapacityBps float64      `json:"capacity_bps"`
	RateBps     float64      `json:"rate_bps"`
	Failed      bool         `json:"failed,omitempty"`
	DegradeFrac float64      `json:"degrade_frac,omitempty"`
	ExtraLatNs  int64        `json:"extra_latency_ns,omitempty"`
	TotalBytes  float64      `json:"total_bytes"`
	TenantBytes []RateExport `json:"tenant_bytes,omitempty"`
	Caps        []RateExport `json:"caps,omitempty"`
	Flows       int          `json:"flows"`
}

// FlowExport is one active flow.
type FlowExport struct {
	ID             uint64   `json:"id"`
	Tenant         string   `json:"tenant"`
	Links          []string `json:"links"`
	DemandBps      float64  `json:"demand_bps"`
	RateBps        float64  `json:"rate_bps"`
	Weight         float64  `json:"weight"`
	SizeBytes      int64    `json:"size_bytes,omitempty"`
	RemainingBytes int64    `json:"remaining_bytes,omitempty"`
	StartedNs      int64    `json:"started_ns"`
}

// TenantExport is one admitted tenant with its reservation.
type TenantExport struct {
	ID       string       `json:"id"`
	Targets  []Target     `json:"targets"`
	Reserved []RateExport `json:"reserved"` // Tenant field holds the link ID
}

// AlertExport is one monitor alert.
type AlertExport struct {
	AtNs        int64   `json:"at_ns"`
	Kind        string  `json:"kind"`
	Link        string  `json:"link,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	Component   string  `json:"component,omitempty"`
	Key         string  `json:"key,omitempty"`
	Old         string  `json:"old,omitempty"`
	New         string  `json:"new,omitempty"`
}

// SuspectExport is one localization verdict.
type SuspectExport struct {
	Link  string  `json:"link"`
	Score float64 `json:"score"`
}

// DetectExport is one anomaly detection.
type DetectExport struct {
	AtNs     int64           `json:"at_ns"`
	Pair     string          `json:"pair"`
	Lost     bool            `json:"lost,omitempty"`
	Suspects []SuspectExport `json:"suspects,omitempty"`
}

// Export captures the manager's state deterministically. It settles
// fabric accounting as a side effect (like any observation of the
// fabric); the rounded byte counters make that invisible to hashing.
func Export(m *core.Manager) StateExport {
	eng := m.Engine()
	fab := m.Fabric()
	out := StateExport{
		VirtualTimeNs:   int64(eng.Now()),
		EventsProcessed: eng.Processed,
		EventsScheduled: eng.Seq(),
		MonitorSweeps:   m.Monitor().Sweeps(),
		AnomalyRounds:   m.Anomaly().Rounds(),
		ProbesSent:      m.Anomaly().ProbesSent(),
	}
	for _, pe := range eng.PendingEvents() {
		out.PendingEvents = append(out.PendingEvents, PendingExport{AtNs: int64(pe.At), Seq: pe.Seq})
	}
	for _, st := range fab.AllLinkStats() {
		frac, extra := fab.LinkDegraded(st.Link)
		le := LinkExport{
			ID:          string(st.Link),
			CapacityBps: float64(st.Capacity),
			RateBps:     float64(st.CurrentRate),
			Failed:      st.Failed,
			DegradeFrac: frac,
			ExtraLatNs:  int64(extra),
			TotalBytes:  math.Round(st.TotalBytes),
			Flows:       st.Flows,
		}
		for t, b := range st.TenantBytes {
			if rounded := math.Round(b); rounded != 0 {
				le.TenantBytes = append(le.TenantBytes, RateExport{Tenant: string(t), Value: rounded})
			}
		}
		sortRates(le.TenantBytes)
		for t, c := range fab.CapsOn(st.Link) {
			le.Caps = append(le.Caps, RateExport{Tenant: string(t), Value: float64(c)})
		}
		sortRates(le.Caps)
		out.Links = append(out.Links, le)
	}
	for _, fs := range fab.AllFlowStats() {
		fe := FlowExport{
			ID: uint64(fs.ID), Tenant: string(fs.Tenant),
			DemandBps: float64(fs.Demand), RateBps: float64(fs.Rate),
			Weight: fs.Weight, SizeBytes: fs.SizeBytes,
			RemainingBytes: fs.RemainingBytes, StartedNs: int64(fs.Started),
		}
		for _, l := range fs.Links {
			fe.Links = append(fe.Links, string(l))
		}
		out.Flows = append(out.Flows, fe)
	}
	for t, w := range fab.TenantWeights() {
		out.TenantWeights = append(out.TenantWeights, WeightExport{Tenant: string(t), Weight: w})
	}
	sort.Slice(out.TenantWeights, func(i, j int) bool {
		return out.TenantWeights[i].Tenant < out.TenantWeights[j].Tenant
	})
	for _, t := range m.Tenants() {
		te := TenantExport{ID: string(t.ID)}
		for _, tg := range t.Targets {
			te.Targets = append(te.Targets, Target{
				Src: string(tg.Src), Dst: string(tg.Dst),
				RateBps: float64(tg.Rate), MaxLatencyNs: int64(tg.MaxLatency),
			})
		}
		for l, r := range t.View.Reservation.Links {
			te.Reserved = append(te.Reserved, RateExport{Tenant: string(l), Value: float64(r)})
		}
		sortRates(te.Reserved)
		out.Tenants = append(out.Tenants, te)
	}
	for _, a := range m.Monitor().Alerts() {
		out.Alerts = append(out.Alerts, AlertExport{
			AtNs: int64(a.At), Kind: string(a.Kind), Link: string(a.Link),
			Utilization: a.Utilization, Component: string(a.Component),
			Key: a.Key, Old: a.Old, New: a.New,
		})
	}
	for _, d := range m.Anomaly().Detections() {
		de := DetectExport{AtNs: int64(d.At), Pair: d.Pair.String(), Lost: d.Lost}
		for _, su := range d.Suspects {
			de.Suspects = append(de.Suspects, SuspectExport{Link: string(su.Link), Score: su.Score})
		}
		out.Detections = append(out.Detections, de)
	}
	for _, su := range m.Anomaly().Suspects() {
		out.Suspects = append(out.Suspects, SuspectExport{Link: string(su.Link), Score: su.Score})
	}
	return out
}

func sortRates(rs []RateExport) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Tenant < rs[j].Tenant })
}

// Hash condenses an export to a hex SHA-256 over its canonical JSON
// encoding (fixed field order, sorted slices, no maps).
func (e StateExport) Hash() string {
	data, err := json.Marshal(e)
	if err != nil {
		// Export is plain data; Marshal cannot fail. Panic loudly
		// rather than silently hashing nothing.
		panic("snap: marshal state export: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// StateHash is the rolling state hash of a live manager: the
// foundation of both restore verification and divergence checking.
func StateHash(m *core.Manager) string { return Export(m).Hash() }
