package snap

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/vnet"
	"repro/internal/workload"
)

// Config identifies everything needed to reconstruct a host from
// scratch: the topology (a preset name, or an embedded description for
// custom hosts) and the full manager options, seed included.
type Config struct {
	// Preset names a topology.Presets entry. Takes precedence over
	// Topology when both are set.
	Preset string `json:"preset,omitempty"`
	// Topology is a topology.FromJSON document for non-preset hosts.
	Topology json.RawMessage `json:"topology,omitempty"`
	// Options is the manager configuration; equal options and equal
	// journals give bit-identical runs.
	Options core.Options `json:"options"`
}

// buildTopology resolves the config to a concrete topology.
func (c Config) buildTopology() (*topology.Topology, error) {
	if c.Preset != "" {
		build, ok := topology.Presets[c.Preset]
		if !ok {
			return nil, fmt.Errorf("snap: unknown preset %q", c.Preset)
		}
		return build(), nil
	}
	if len(c.Topology) > 0 {
		return topology.FromJSON(bytes.NewReader(c.Topology))
	}
	return nil, fmt.Errorf("snap: config names neither a preset nor a topology")
}

// EntrySink receives every command a session journals, in order, at
// the moment it is appended — the hook a durable store implements to
// shadow the in-memory journal on disk. The sink sees the raw
// per-command entries: advances that coalesce in the in-memory journal
// still reach the sink individually, and recovery re-folds them through
// the same append path, so replay semantics are unchanged. Entries
// carry no sequence number (the journal assigns those on append); a
// durable sink keeps its own record positions.
//
// Replayed entries are never forwarded — replay reconstructs state
// that the sink, by definition, already holds — so a sink must be
// attached only to live sessions (after restore, not during).
type EntrySink interface {
	AppendEntry(Entry) error
}

// Session is a running manager whose externally issued commands are
// recorded into an append-only journal, making the whole run
// reproducible: Snapshot captures it, Restore and Replay rebuild it.
type Session struct {
	cfg     Config
	mgr     *core.Manager
	journal Journal
	sink    EntrySink // nil unless a durable store is attached
	kvs     map[string]*workload.KVClient
	// nextSpan, when set, is consumed by the next journaled command as
	// its span ID (see SetSpan).
	nextSpan string

	// Snapshot observability, registered on the manager's registry.
	mSnapshots     *obs.Counter
	mRestores      *obs.Counter
	mSnapshotBytes *obs.Gauge
	hEncodeSeconds *obs.Histogram
	hDecodeSeconds *obs.Histogram
}

// NewSession builds and starts a managed host from the config with an
// empty journal.
func NewSession(cfg Config) (*Session, error) {
	topo, err := cfg.buildTopology()
	if err != nil {
		return nil, err
	}
	mgr, err := core.New(topo, cfg.Options)
	if err != nil {
		return nil, err
	}
	if err := mgr.Start(); err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, mgr: mgr, kvs: make(map[string]*workload.KVClient)}
	reg := mgr.Obs().Registry
	s.mSnapshots = reg.Counter("ihnet_snap_snapshots_total",
		"Snapshots encoded from this session.")
	s.mRestores = reg.Counter("ihnet_snap_restores_total",
		"Times this session was reconstructed from a snapshot.")
	s.mSnapshotBytes = reg.Gauge("ihnet_snap_snapshot_bytes",
		"Size of the most recent encoded snapshot.")
	s.hEncodeSeconds = reg.Histogram("ihnet_snap_encode_seconds",
		"Wall-clock time to export state and encode a snapshot.")
	s.hDecodeSeconds = reg.Histogram("ihnet_snap_decode_seconds",
		"Wall-clock time to decode, replay and verify a snapshot.")
	return s, nil
}

// Manager returns the underlying live manager. Callers must not
// mutate simulation state through it directly — unjournaled commands
// make the session unreproducible; use the Session methods.
func (s *Session) Manager() *core.Manager { return s.mgr }

// Config returns the reconstruction config.
func (s *Session) Config() Config { return s.cfg }

// Journal returns the recorded command log.
func (s *Session) Journal() Journal { return s.journal }

// Now returns the session's virtual time.
func (s *Session) Now() simtime.Time { return s.mgr.Engine().Now() }

// KV returns the KV workload client started for a tenant, or nil.
func (s *Session) KV(tenant string) *workload.KVClient { return s.kvs[tenant] }

// SetSink attaches (or, with nil, detaches) a durable entry sink.
// Attach only to a live session: during Replay/Restore the entries
// being applied came *from* the store, and forwarding them back would
// double-write the log.
func (s *Session) SetSink(sink EntrySink) { s.sink = sink }

// record appends a journaled command to the in-memory journal and
// forwards it to the durable sink, if one is attached. A sink failure
// is a command failure: the state change already happened (apply runs
// first), but the caller learns the run is no longer durably
// reproducible.
func (s *Session) record(e Entry) error {
	s.journal.append(e)
	if s.sink == nil {
		return nil
	}
	if err := s.sink.AppendEntry(e); err != nil {
		return fmt.Errorf("snap: durable append: %w", err)
	}
	return nil
}

// SetSpan sets the span ID the next journaled command will carry,
// instead of the automatic "j<seq>". The HTTP layer passes its
// request ID here so one identifier threads access log -> journal ->
// trace events. One-shot: consumed by the next command.
func (s *Session) SetSpan(id string) { s.nextSpan = id }

// entry returns a journal entry stamped with the current virtual time
// and a span ID. Spans default to "j<seq>" — a pure function of
// journal position, so replayed and parallel-fleet runs agree. An
// advance that will coalesce into the previous advance inherits its
// span, keeping streamed events and the stored journal consistent.
func (s *Session) entry(kind EntryKind) Entry {
	e := Entry{AtNs: int64(s.mgr.Engine().Now()), Kind: kind}
	n := len(s.journal.Entries)
	switch {
	case s.nextSpan != "":
		e.Span = s.nextSpan
		s.nextSpan = ""
	case kind == KindAdvance && n > 0 && s.journal.Entries[n-1].Kind == KindAdvance:
		e.Span = s.journal.Entries[n-1].Span
	default:
		e.Span = fmt.Sprintf("j%d", n)
	}
	return e
}

// Advance moves virtual time forward by d, journaled.
func (s *Session) Advance(d simtime.Duration) error {
	if d < 0 {
		return fmt.Errorf("snap: negative advance")
	}
	return s.AdvanceTo(s.mgr.Engine().Now().Add(d))
}

// AdvanceTo moves virtual time to t (RunUntil semantics), journaled.
func (s *Session) AdvanceTo(t simtime.Time) error {
	e := s.entry(KindAdvance)
	e.ToNs = int64(t)
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// Admit journals and runs the compile -> schedule -> arbitrate
// pipeline for one tenant, returning the admitted tenant's virtual
// view. Failed admissions are not journaled: admission is
// all-or-nothing, so a rejection leaves no state to reproduce.
func (s *Session) Admit(tenant string, targets []intent.Target) (*vnet.View, error) {
	return s.AdmitAvoiding(tenant, targets, nil)
}

// AdmitAvoiding is Admit with an avoid set: pathways traversing any of
// the named links (either direction) are excluded from scheduling.
// The remediation controller uses it to re-place a tenant off a
// localized suspect; the avoid set is journaled with the admit so
// replay re-runs the same constrained schedule.
func (s *Session) AdmitAvoiding(tenant string, targets []intent.Target, avoid []string) (*vnet.View, error) {
	e := s.entry(KindAdmit)
	e.Tenant = tenant
	e.Targets = make([]Target, len(targets))
	for i, t := range targets {
		e.Targets[i] = Target{
			Src: string(t.Src), Dst: string(t.Dst),
			RateBps: float64(t.Rate), MaxLatencyNs: int64(t.MaxLatency),
		}
	}
	e.Avoid = append([]string(nil), avoid...)
	if err := s.apply(e); err != nil {
		return nil, err
	}
	if err := s.record(e); err != nil {
		return nil, err
	}
	return s.mgr.Tenant(fabric.TenantID(tenant)).View, nil
}

// Evict journals and releases a tenant.
func (s *Session) Evict(tenant string) error {
	e := s.entry(KindEvict)
	e.Tenant = tenant
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// DegradeLink journals and injects a silent link degradation.
func (s *Session) DegradeLink(link string, lossFrac float64, extra simtime.Duration) error {
	e := s.entry(KindDegrade)
	e.Link, e.LossFrac, e.ExtraNs = link, lossFrac, int64(extra)
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// FailLink journals and hard-fails a directed link.
func (s *Session) FailLink(link string) error {
	e := s.entry(KindFail)
	e.Link = link
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// RestoreLink journals and heals a directed link.
func (s *Session) RestoreLink(link string) error {
	e := s.entry(KindRestoreLink)
	e.Link = link
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// SetComponentConfig journals and applies one configuration change —
// the silent-reconfiguration fault the monitor's drift detector
// watches for.
func (s *Session) SetComponentConfig(component, key, value string) error {
	e := s.entry(KindSetConfig)
	e.Component, e.Key, e.Value = component, key, value
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// StartWorkload journals and starts a workload generator: kind is one
// of "kv", "ml", "loopback", "scan". Src/dst are optional overrides
// with workload-specific meaning (kv: client/server, ml: memory/GPU,
// loopback: NIC/DIMM, scan: SSD/DIMM).
func (s *Session) StartWorkload(kind, tenant, src, dst string) error {
	e := s.entry(KindWorkload)
	e.Workload, e.Tenant, e.Src, e.Dst = kind, tenant, src, dst
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// SetTenantCap journals and installs a per-tenant rate cap on one
// directed link; a negative capBps clears the cap instead.
func (s *Session) SetTenantCap(link, tenant string, capBps float64) error {
	e := s.entry(KindSetCap)
	e.Link, e.Tenant, e.CapBps = link, tenant, capBps
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// BatchOpResult reports the outcome of one op in an ApplyBatch call:
// Status is "ok", "failed" (the first op that errored), or "skipped"
// (ops after the failure, never attempted).
type BatchOpResult struct {
	Kind   EntryKind `json:"kind"`
	Status string    `json:"status"`
	Error  string    `json:"error,omitempty"`
}

// ApplyBatch journals and applies a group of mutation ops as one
// entry. Every op lands under a single fabric batch, so the solver
// settles exactly once for the whole group, no matter how many ops it
// carries — this is the transactional write path bursty clients use
// instead of N round-trips and N recomputes.
//
// Ops are validated structurally up front (a malformed batch changes
// nothing) and then applied in order; the first failure stops the
// batch. Ops already applied remain — the journal records exactly the
// applied prefix, keeping replay faithful — and the per-op results
// tell the caller precisely how far the batch got.
func (s *Session) ApplyBatch(ops []Entry) ([]BatchOpResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("snap: empty batch")
	}
	if err := checkBatchOps(ops); err != nil {
		return nil, fmt.Errorf("snap: %s", err)
	}
	e := s.entry(KindBatch)
	tr := s.mgr.Obs().Tracer
	tr.BeginSpan(e.Span)
	results := make([]BatchOpResult, len(ops))
	applied := 0
	var failErr error
	s.mgr.Fabric().Batch(func() {
		for i, op := range ops {
			results[i].Kind = op.Kind
			if failErr != nil {
				results[i].Status = "skipped"
				continue
			}
			if err := s.applyOp(op); err != nil {
				results[i].Status = "failed"
				results[i].Error = err.Error()
				failErr = fmt.Errorf("snap: batch op %d (%s): %w", i, op.Kind, err)
				continue
			}
			results[i].Status = "ok"
			applied++
		}
	})
	tr.EndSpan()
	if applied > 0 {
		e.Ops = normalizeOps(ops[:applied])
		if err := s.record(e); err != nil && failErr == nil {
			failErr = err
		}
	}
	return results, failErr
}

// normalizeOps copies ops for journal storage with the per-entry
// journal metadata zeroed: inside a batch, position and span belong to
// the enclosing entry.
func normalizeOps(ops []Entry) []Entry {
	out := make([]Entry, len(ops))
	for i, op := range ops {
		op.Seq, op.AtNs, op.Span = 0, 0, ""
		out[i] = op
	}
	return out
}

// probeBudget bounds how far a diagnostic probe may drive virtual
// time: 1000 slices of 10 us, matching the HTTP API's historical
// behaviour.
const (
	probeSlices = 1000
	probeSlice  = 10 * simtime.Microsecond
)

// Ping journals and runs an intra-host ping, advancing virtual time
// until the probe completes (bounded). The time advancement is part of
// the entry's replay semantics.
func (s *Session) Ping(src, dst string) (diag.PingReport, error) {
	e := s.entry(KindPing)
	e.Src, e.Dst = src, dst
	tr := s.mgr.Obs().Tracer
	tr.BeginSpan(e.Span)
	defer tr.EndSpan()
	var rep diag.PingReport
	done := false
	_, err := diag.StartPing(s.mgr.Fabric(), topology.CompID(src), topology.CompID(dst),
		diag.DefaultPingOptions(), func(pr diag.PingReport) { rep, done = pr, true })
	if err != nil {
		return diag.PingReport{}, err
	}
	// Probe traffic is in flight: journal even on timeout.
	if err := s.record(e); err != nil {
		return diag.PingReport{}, err
	}
	for i := 0; i < probeSlices && !done; i++ {
		s.mgr.RunFor(probeSlice)
	}
	if !done {
		return diag.PingReport{}, fmt.Errorf("snap: ping %s->%s did not complete", src, dst)
	}
	return rep, nil
}

// Trace journals and runs an intra-host traceroute (see Ping for the
// time-advancement contract).
func (s *Session) Trace(src, dst string) (diag.TraceReport, error) {
	e := s.entry(KindTrace)
	e.Src, e.Dst = src, dst
	tr := s.mgr.Obs().Tracer
	tr.BeginSpan(e.Span)
	defer tr.EndSpan()
	var rep diag.TraceReport
	done := false
	_, err := diag.StartTrace(s.mgr.Fabric(), topology.CompID(src), topology.CompID(dst), 64,
		func(tr diag.TraceReport) { rep, done = tr, true })
	if err != nil {
		return diag.TraceReport{}, err
	}
	if err := s.record(e); err != nil {
		return diag.TraceReport{}, err
	}
	for i := 0; i < probeSlices && !done; i++ {
		s.mgr.RunFor(probeSlice)
	}
	if !done {
		return diag.TraceReport{}, fmt.Errorf("snap: trace %s->%s did not complete", src, dst)
	}
	return rep, nil
}

// Perf journals and runs an intra-host bandwidth probe (see Ping for
// the time-advancement contract).
func (s *Session) Perf(src, dst, tenant string) (diag.PerfReport, error) {
	e := s.entry(KindPerf)
	e.Src, e.Dst, e.Tenant = src, dst, tenant
	tr := s.mgr.Obs().Tracer
	tr.BeginSpan(e.Span)
	defer tr.EndSpan()
	var rep diag.PerfReport
	done := false
	_, err := diag.StartPerf(s.mgr.Fabric(), topology.CompID(src), topology.CompID(dst),
		diag.PerfOptions{Duration: 200 * simtime.Microsecond, Tenant: fabric.TenantID(tenant)},
		func(pr diag.PerfReport) { rep, done = pr, true })
	if err != nil {
		return diag.PerfReport{}, err
	}
	if err := s.record(e); err != nil {
		return diag.PerfReport{}, err
	}
	for i := 0; i < probeSlices && !done; i++ {
		s.mgr.RunFor(probeSlice)
	}
	if !done {
		return diag.PerfReport{}, fmt.Errorf("snap: perf %s->%s did not complete", src, dst)
	}
	return rep, nil
}

// ReplayEntry re-executes one journaled command against this session.
// It is the single-entry form of Replay, exported so harnesses (the
// chaos invariant checker) can interleave their own checks between
// entries while staying on the exact replay path.
func (s *Session) ReplayEntry(e Entry) error { return s.replayEntry(e) }

// replayEntry re-executes one journaled command: advance the clock to
// the entry's issue time, apply it through the shared path, and record
// it so the rebuilt session continues journaling seamlessly.
func (s *Session) replayEntry(e Entry) error {
	if at := simtime.Time(e.AtNs); at > s.mgr.Engine().Now() {
		s.mgr.Engine().RunUntil(at)
	}
	if err := s.apply(e); err != nil {
		return err
	}
	return s.record(e)
}

// apply executes one entry against the live manager without recording
// it. It is the single execution path shared by the live command
// methods and by Replay, which is what makes record and replay agree.
// The entry's span brackets execution, so every trace event emitted by
// the command's effects — live or replayed — carries it, and the span
// wall duration lands in cmd_effect_latency_us.
func (s *Session) apply(e Entry) error {
	tr := s.mgr.Obs().Tracer
	tr.BeginSpan(e.Span)
	defer tr.EndSpan()
	if e.Kind == KindBatch {
		return s.applyBatchOps(e.Ops)
	}
	return s.applyOp(e)
}

// applyBatchOps applies a batch's ops in order under one fabric batch,
// so the whole group settles the solver exactly once. An op error
// aborts the remainder; callers decide what to journal (Replay never
// sees a failing batch — ApplyBatch records only the applied prefix).
func (s *Session) applyBatchOps(ops []Entry) error {
	var err error
	s.mgr.Fabric().Batch(func() {
		for i, op := range ops {
			if opErr := s.applyOp(op); opErr != nil {
				err = fmt.Errorf("batch op %d (%s): %w", i, op.Kind, opErr)
				return
			}
		}
	})
	return err
}

// applyOp executes one non-batch entry. Span handling lives in apply:
// ops inside a batch share the enclosing entry's span.
func (s *Session) applyOp(e Entry) error {
	fab := s.mgr.Fabric()
	switch e.Kind {
	case KindAdvance:
		s.mgr.Engine().RunUntil(simtime.Time(e.ToNs))
		return nil
	case KindAdmit:
		targets := make([]intent.Target, len(e.Targets))
		for i, t := range e.Targets {
			targets[i] = intent.Target{
				Tenant: fabric.TenantID(e.Tenant),
				Src:    topology.CompID(t.Src), Dst: topology.CompID(t.Dst),
				Rate:       topology.Rate(t.RateBps),
				MaxLatency: simtime.Duration(t.MaxLatencyNs),
			}
		}
		avoid := make([]topology.LinkID, len(e.Avoid))
		for i, l := range e.Avoid {
			avoid[i] = topology.LinkID(l)
		}
		_, err := s.mgr.AdmitAvoiding(fabric.TenantID(e.Tenant), targets, avoid)
		return err
	case KindEvict:
		return s.mgr.Evict(fabric.TenantID(e.Tenant))
	case KindDegrade:
		return fab.DegradeLink(topology.LinkID(e.Link), e.LossFrac, simtime.Duration(e.ExtraNs))
	case KindFail:
		return fab.FailLink(topology.LinkID(e.Link))
	case KindRestoreLink:
		return fab.RestoreLink(topology.LinkID(e.Link))
	case KindSetConfig:
		c := s.mgr.Topology().Component(topology.CompID(e.Component))
		if c == nil {
			return fmt.Errorf("snap: unknown component %q", e.Component)
		}
		c.SetConfig(e.Key, e.Value)
		return nil
	case KindWorkload:
		return s.applyWorkload(e)
	case KindPing, KindTrace, KindPerf:
		return s.applyProbe(e)
	case KindSetCap:
		if e.CapBps < 0 {
			return fab.ClearTenantCap(topology.LinkID(e.Link), fabric.TenantID(e.Tenant))
		}
		return fab.SetTenantCap(topology.LinkID(e.Link), fabric.TenantID(e.Tenant), topology.Rate(e.CapBps))
	}
	return fmt.Errorf("snap: unknown entry kind %q", e.Kind)
}

// applyWorkload starts the journaled workload, mirroring the scenario
// runner's defaults so drills and journals agree on semantics.
func (s *Session) applyWorkload(e Entry) error {
	fab := s.mgr.Fabric()
	tenant := fabric.TenantID(e.Tenant)
	switch e.Workload {
	case "kv":
		cfg := workload.DefaultKVConfig(tenant)
		if e.Src != "" {
			cfg.Client = topology.CompID(e.Src)
		}
		if e.Dst != "" {
			cfg.Server = topology.CompID(e.Dst)
		}
		kv, err := workload.StartKV(fab, cfg)
		if err != nil {
			return err
		}
		s.kvs[e.Tenant] = kv
		return nil
	case "ml":
		cfg := workload.DefaultMLConfig(tenant)
		if e.Src != "" {
			cfg.Memory = topology.CompID(e.Src)
		}
		if e.Dst != "" {
			cfg.GPU = topology.CompID(e.Dst)
		}
		_, err := workload.StartML(fab, cfg)
		return err
	case "loopback":
		nic, dimm := topology.CompID("nic0"), topology.CompID("socket0.dimm0_0")
		if e.Src != "" {
			nic = topology.CompID(e.Src)
		}
		if e.Dst != "" {
			dimm = topology.CompID(e.Dst)
		}
		_, err := workload.StartLoopback(fab, tenant, nic, dimm)
		return err
	case "scan":
		ssd, dimm := topology.CompID("ssd0"), topology.CompID("socket0.dimm0_0")
		if e.Src != "" {
			ssd = topology.CompID(e.Src)
		}
		if e.Dst != "" {
			dimm = topology.CompID(e.Dst)
		}
		_, err := workload.StartScan(fab, tenant, ssd, dimm, 4<<20)
		return err
	}
	return fmt.Errorf("snap: unknown workload kind %q", e.Workload)
}

// applyProbe re-runs a journaled diagnostic probe: start it, then
// advance bounded slices until done — the exact procedure the live
// Ping/Trace/Perf methods perform.
func (s *Session) applyProbe(e Entry) error {
	fab := s.mgr.Fabric()
	src, dst := topology.CompID(e.Src), topology.CompID(e.Dst)
	done := false
	var err error
	switch e.Kind {
	case KindPing:
		_, err = diag.StartPing(fab, src, dst, diag.DefaultPingOptions(),
			func(diag.PingReport) { done = true })
	case KindTrace:
		_, err = diag.StartTrace(fab, src, dst, 64,
			func(diag.TraceReport) { done = true })
	case KindPerf:
		_, err = diag.StartPerf(fab, src, dst,
			diag.PerfOptions{Duration: 200 * simtime.Microsecond, Tenant: fabric.TenantID(e.Tenant)},
			func(diag.PerfReport) { done = true })
	}
	if err != nil {
		return err
	}
	for i := 0; i < probeSlices && !done; i++ {
		s.mgr.RunFor(probeSlice)
	}
	// A probe that timed out live times out identically here; the
	// advanced time is what matters for determinism.
	return nil
}
