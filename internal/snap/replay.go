package snap

import (
	"fmt"
)

// Replay builds a fresh session from cfg and re-executes every journal
// entry through the same apply path the live session used. The
// returned session is live and continues journaling from where the
// input left off.
//
// Entries whose live application failed were never journaled, so
// replay treats any application error as fatal: it means the journal
// and the code disagree about what is possible.
func Replay(cfg Config, j Journal) (*Session, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range j.Entries {
		if err := s.replayEntry(e); err != nil {
			return nil, fmt.Errorf("snap: replay entry %d (%s at %dns): %w", e.Seq, e.Kind, e.AtNs, err)
		}
	}
	return s, nil
}

// HashPoint is the state hash observed immediately after one journal
// entry was applied.
type HashPoint struct {
	Seq  uint64 `json:"seq"`
	AtNs int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Hash string `json:"hash"`
}

// ReplayTrace replays a journal and records the rolling state hash
// after every entry. Index i of the trace corresponds to journal entry
// i; one extra leading point (Seq = 0, Kind "init") captures the state
// before any entry ran.
func ReplayTrace(cfg Config, j Journal) ([]HashPoint, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	trace := make([]HashPoint, 0, len(j.Entries)+1)
	trace = append(trace, HashPoint{Kind: "init", Hash: StateHash(s.mgr)})
	for _, e := range j.Entries {
		if err := s.replayEntry(e); err != nil {
			return nil, fmt.Errorf("snap: replay entry %d (%s at %dns): %w", e.Seq, e.Kind, e.AtNs, err)
		}
		trace = append(trace, HashPoint{Seq: e.Seq, AtNs: e.AtNs, Kind: string(e.Kind), Hash: StateHash(s.mgr)})
	}
	return trace, nil
}

// Divergence describes the first point where two replays of the same
// journal disagreed.
type Divergence struct {
	// Point is the trace index that differed (0 = initial state,
	// i>0 = after journal entry i-1).
	Point int
	// Entry is the journal entry after which the hashes split, when
	// Point > 0.
	Entry Entry
	// FirstHash and SecondHash are the disagreeing rolling hashes.
	FirstHash, SecondHash string
}

func (d *Divergence) Error() string {
	if d.Point == 0 {
		return fmt.Sprintf("snap: initial states diverge (%s vs %s)", short(d.FirstHash), short(d.SecondHash))
	}
	return fmt.Sprintf("snap: divergence after entry %d (%s at %dns): %s vs %s",
		d.Entry.Seq, d.Entry.Kind, d.Entry.AtNs, short(d.FirstHash), short(d.SecondHash))
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// CheckDeterminism replays the journal twice against fresh hosts and
// compares the rolling hash traces. It returns nil when the traces
// agree everywhere — the determinism regression gate — and a
// *Divergence (which is also an error) at the first disagreement.
func CheckDeterminism(cfg Config, j Journal) (*Divergence, error) {
	first, err := ReplayTrace(cfg, j)
	if err != nil {
		return nil, fmt.Errorf("snap: first replay: %w", err)
	}
	second, err := ReplayTrace(cfg, j)
	if err != nil {
		return nil, fmt.Errorf("snap: second replay: %w", err)
	}
	if len(first) != len(second) {
		return nil, fmt.Errorf("snap: replay traces have different lengths (%d vs %d)", len(first), len(second))
	}
	for i := range first {
		if first[i].Hash != second[i].Hash {
			d := &Divergence{Point: i, FirstHash: first[i].Hash, SecondHash: second[i].Hash}
			if i > 0 {
				d.Entry = j.Entries[i-1]
			}
			return d, nil
		}
	}
	return nil, nil
}
