package snap

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SnapshotFormat identifies the envelope on disk.
const SnapshotFormat = "ihnet-snapshot"

// SnapshotVersion is the current payload schema version. Bump it on
// any incompatible payload change; Restore rejects versions it does
// not understand rather than guessing.
const SnapshotVersion = 1

// Snapshot is the versioned, checksummed envelope. The payload is kept
// as raw bytes and checksummed in whitespace-normalized (compacted)
// form, so pretty-printing a snapshot never invalidates it but any
// semantic change to the payload does.
type Snapshot struct {
	Format         string          `json:"format"`
	Version        int             `json:"version"`
	Payload        json.RawMessage `json:"payload"`
	ChecksumSHA256 string          `json:"checksum_sha256"`
}

// Payload is the snapshot body: everything needed to reconstruct the
// session (config + journal) plus everything needed to verify the
// reconstruction (state hash and a human-inspectable state export).
type Payload struct {
	Config          Config      `json:"config"`
	VirtualTimeNs   int64       `json:"virtual_time_ns"`
	EventsProcessed uint64      `json:"events_processed"`
	StateHash       string      `json:"state_hash"`
	State           StateExport `json:"state"`
	Journal         Journal     `json:"journal"`
}

func checksum(payload []byte) string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		// Not JSON at all: hash the raw bytes; verification will fail
		// with a checksum mismatch rather than a panic.
		sum := sha256.Sum256(payload)
		return hex.EncodeToString(sum[:])
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:])
}

// BuildPayload exports the session's current state as a snapshot
// payload — the raw material Snapshot wraps in the envelope, exposed
// so durable stores can chunk and persist it without re-encoding the
// whole envelope.
func (s *Session) BuildPayload() Payload {
	export := Export(s.mgr)
	return Payload{
		Config:          s.cfg,
		VirtualTimeNs:   export.VirtualTimeNs,
		EventsProcessed: export.EventsProcessed,
		StateHash:       export.Hash(),
		State:           export,
		Journal:         s.journal,
	}
}

// Snapshot serializes the session into w. The session stays live; a
// snapshot is a checkpoint, not a shutdown.
func (s *Session) Snapshot(w io.Writer) error {
	start := time.Now()
	p := s.BuildPayload()
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("snap: marshal payload: %w", err)
	}
	env := Snapshot{
		Format:         SnapshotFormat,
		Version:        SnapshotVersion,
		Payload:        raw,
		ChecksumSHA256: checksum(raw),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("snap: write snapshot: %w", err)
	}
	s.mSnapshots.Inc()
	s.mSnapshotBytes.Set(float64(len(raw)))
	s.hEncodeSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// ReadSnapshot parses and verifies the envelope (format, version,
// checksum) without building a session. The payload is returned for
// inspection or restore.
func ReadSnapshot(r io.Reader) (Payload, error) {
	var env Snapshot
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return Payload{}, fmt.Errorf("snap: decode snapshot: %w", err)
	}
	if env.Format != SnapshotFormat {
		return Payload{}, fmt.Errorf("snap: format %q is not %q", env.Format, SnapshotFormat)
	}
	if env.Version != SnapshotVersion {
		return Payload{}, fmt.Errorf("snap: unsupported snapshot version %d (want %d)", env.Version, SnapshotVersion)
	}
	if got := checksum(env.Payload); got != env.ChecksumSHA256 {
		return Payload{}, fmt.Errorf("snap: payload checksum mismatch: recorded %s, computed %s", env.ChecksumSHA256, got)
	}
	var p Payload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return Payload{}, fmt.Errorf("snap: decode payload: %w", err)
	}
	if err := p.Journal.Validate(); err != nil {
		return Payload{}, err
	}
	return p, nil
}

// Restore reconstructs a live session from a snapshot: fresh host,
// replay the journal, then verify the replayed state hash against the
// recorded one. A hash mismatch means the snapshot does not describe a
// state this build can reproduce (corrupted journal, incompatible code
// change) and fails the restore rather than resuming silently wrong.
func Restore(r io.Reader) (*Session, error) {
	p, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return RestorePayload(p)
}

// RestorePayload is Restore for an already-decoded payload: replay the
// journal on a fresh host and verify the state hash. Durable stores
// reassemble payloads from chunks and hand them here.
func RestorePayload(p Payload) (*Session, error) {
	if err := p.Journal.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	s, err := Replay(p.Config, p.Journal)
	if err != nil {
		return nil, fmt.Errorf("snap: restore replay: %w", err)
	}
	if got := StateHash(s.mgr); got != p.StateHash {
		return nil, fmt.Errorf("snap: restored state hash %s does not match recorded %s", got, p.StateHash)
	}
	s.mRestores.Inc()
	s.hDecodeSeconds.Observe(time.Since(start).Seconds())
	return s, nil
}

// RoundTrip snapshots the session to memory and restores it — the
// determinism property test in executable form. It returns the
// restored session and the snapshot size in bytes.
func RoundTrip(s *Session) (*Session, int, error) {
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		return nil, 0, err
	}
	n := buf.Len()
	restored, err := Restore(&buf)
	if err != nil {
		return nil, n, err
	}
	return restored, n, nil
}
