package core

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Verification is the outcome of checking one assignment's guarantee
// against reality: the manager runs an ihperf probe *as the tenant*
// along the assigned pathway and compares what the tenant can actually
// achieve with what it was promised.
type Verification struct {
	Path     topology.Path
	Promised topology.Rate
	Achieved topology.Rate
	// Met is true when the achieved rate reaches the promise (within
	// 2% measurement slack).
	Met bool
	// IdleLatency is the pathway's current uncongested latency, for
	// comparison against the target's MaxLatency if one was declared.
	IdleLatency simtime.Duration
	// LatencyMet is false only when the target declared a bound and
	// the pathway now exceeds it.
	LatencyMet bool
}

// VerifyTenant measures every pipe assignment of an admitted tenant
// against its guarantee — the "trust but verify" API an operator (or
// the tenant's own agent, via the virtualized view) would run after
// admission, after migration, or when suspecting enforcement drift.
// The probes run as the tenant, so they are subject to the same caps.
func (m *Manager) VerifyTenant(tenant fabric.TenantID) ([]Verification, error) {
	rec, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", tenant)
	}
	var out []Verification
	for _, a := range rec.Assignments {
		if a.Path.Hops() == 0 {
			continue // hose assignments have no single pathway to probe
		}
		var rep diag.PerfReport
		done := false
		_, err := diag.StartPerf(m.fab, a.Path.Src(), a.Path.Dst(), diag.PerfOptions{
			Duration: 200 * simtime.Microsecond,
			Tenant:   tenant,
			Path:     a.Path,
		}, func(r diag.PerfReport) { rep, done = r, true })
		if err != nil {
			return nil, err
		}
		for i := 0; i < 1000 && !done; i++ {
			m.engine.RunFor(10 * simtime.Microsecond)
		}
		if !done {
			return nil, fmt.Errorf("core: verification probe for %q did not complete", tenant)
		}
		v := Verification{
			Path:       a.Path,
			Promised:   a.Req.Target.Rate,
			Achieved:   rep.Achieved,
			LatencyMet: true,
		}
		v.Met = float64(v.Achieved) >= float64(v.Promised)*0.98
		if lat, err := m.fab.PathLatency(a.Path); err == nil {
			v.IdleLatency = lat
			if b := a.Req.Target.MaxLatency; b > 0 && lat > b {
				v.LatencyMet = false
			}
		}
		out = append(out, v)
	}
	return out, nil
}
