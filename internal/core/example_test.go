package core_test

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// The full compile -> schedule -> arbitrate pipeline: a tenant
// declares intent, the manager places and enforces it, and the
// guarantee holds against a greedy antagonist.
func ExampleManager_Admit() {
	opts := core.DefaultOptions()
	opts.EnableAnomaly = false
	opts.EnableTelemetry = false
	opts.Arbiter.Mode = arbiter.Strict
	mgr, _ := core.New(topology.TwoSocketServer(), opts)
	_ = mgr.Start()

	view, err := mgr.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("guaranteed links:", len(view.Reservation.Links))

	path := mgr.Tenant("kv").Assignments[0].Path
	kv := &fabric.Flow{Tenant: "kv", Path: path}
	evil := &fabric.Flow{Tenant: "evil", Path: path}
	_ = mgr.Fabric().AddFlow(kv)
	_ = mgr.Fabric().AddFlow(evil)
	mgr.RunFor(simtime.Millisecond)
	fmt.Println("kv:", kv.Rate())
	// Output:
	// guaranteed links: 5
	// kv: 10.0GB/s
}

// Intents are host-agnostic: migration re-compiles them on the
// destination.
func ExampleManager_Migrate() {
	a, _ := core.New(topology.TwoSocketServer(), core.DefaultOptions())
	bOpts := core.DefaultOptions()
	bOpts.Seed = 2
	b, _ := core.New(topology.DGXStyle(), bOpts)
	_, _ = a.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(10)},
	})
	view, err := a.Migrate("kv", b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(view.HostName, a.Tenant("kv") == nil)
	// Output:
	// dgx-style true
}
