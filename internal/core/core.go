// Package core wires the paper's two building blocks into one
// manageable intra-host network: the fine-grained monitoring system
// (monitor + anomaly platform + diagnostics hooks) and the holistic
// resource manager (interpreter -> scheduler -> arbiter, with
// virtualized per-tenant views). Manager is the public entry point the
// examples, the daemon and the benchmarks drive.
package core

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/arbiter"
	"repro/internal/cachesim"
	"repro/internal/counters"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/resmodel"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vnet"
)

// Options configures a Manager.
type Options struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// Fabric tunes the substrate simulator.
	Fabric fabric.Config
	// Monitor tunes the usage/config monitor.
	Monitor monitor.Options
	// Anomaly tunes the heartbeat platform; EnableAnomaly arms it at
	// Start (it costs fabric bandwidth, so it is explicit).
	Anomaly       anomaly.Config
	EnableAnomaly bool
	// Scheduler names the placement strategy: "topology-aware"
	// (default) or "naive".
	Scheduler string
	// Arbiter tunes run-time enforcement.
	Arbiter arbiter.Config
	// Cache tunes the DDIO/LLC model.
	Cache cachesim.Config
	// Counters tunes the emulated hardware counter bank.
	Counters counters.Config
	// PathsPerDestination is the interpreter's k.
	PathsPerDestination int
	// EnableTelemetry arms a periodic telemetry pipeline at Start;
	// Telemetry configures it. The pipeline's store backs the
	// history queries of the HTTP API.
	EnableTelemetry bool
	Telemetry       telemetry.PipelineConfig
	// TraceCapacity bounds the observability event ring (flow
	// lifecycle, cap changes, scheduler decisions, detections). Zero
	// means the default (8192); negative disables event tracing.
	// Metrics are always on — their hot-path cost is a few atomics.
	TraceCapacity int
}

// DefaultOptions returns the configuration used across experiments.
func DefaultOptions() Options {
	return Options{
		Seed:                1,
		Fabric:              fabric.DefaultConfig(),
		Monitor:             monitor.DefaultOptions(),
		Anomaly:             anomaly.DefaultConfig(),
		EnableAnomaly:       true,
		Scheduler:           "topology-aware",
		Arbiter:             arbiter.DefaultConfig(),
		Cache:               cachesim.DefaultConfig(),
		Counters:            counters.DefaultConfig(),
		PathsPerDestination: 3,
		EnableTelemetry:     true,
		Telemetry: telemetry.PipelineConfig{
			Period:        250 * simtime.Microsecond,
			Placement:     telemetry.PlaceMemory,
			Collector:     "cpu0",
			StoreCapacity: 1 << 16,
		},
		TraceCapacity: 8192,
	}
}

// Tenant is the manager's record of one admitted tenant.
type Tenant struct {
	ID          fabric.TenantID
	Targets     []intent.Target
	Assignments []sched.Assignment
	View        *vnet.View
}

// Manager is a manageable intra-host network over one host.
type Manager struct {
	opts      Options
	engine    *simtime.Engine
	topo      *topology.Topology
	fab       *fabric.Fabric
	mon       *monitor.Monitor
	platform  *anomaly.Platform
	bank      *counters.Bank
	ddio      *cachesim.Manager
	interp    *intent.Interpreter
	scheduler sched.Scheduler
	arb       *arbiter.Arbiter
	pipeline  *telemetry.Pipeline
	obsv      *obs.Obs

	tenants map[fabric.TenantID]*Tenant
	started bool

	// Cached self-observability handles.
	mAdmissions *obs.Counter
	mRejections *obs.Counter
	mEvictions  *obs.Counter
}

// New assembles a manager over the given topology.
func New(topo *topology.Topology, opts Options) (*Manager, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.PathsPerDestination <= 0 {
		opts.PathsPerDestination = 3
	}
	engine := simtime.NewEngine(opts.Seed)
	fab := fabric.New(topo, engine, opts.Fabric)
	mon, err := monitor.New(fab, opts.Monitor)
	if err != nil {
		return nil, err
	}
	platform, err := anomaly.New(fab, anomaly.DefaultPairs(topo), opts.Anomaly)
	if err != nil {
		return nil, err
	}
	bank, err := counters.NewBank(fab, opts.Counters)
	if err != nil {
		return nil, err
	}
	ddio, err := cachesim.NewManager(fab, opts.Cache)
	if err != nil {
		return nil, err
	}
	interp, err := intent.New(topo, opts.PathsPerDestination, fab)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	arb, err := arbiter.New(fab, opts.Arbiter)
	if err != nil {
		return nil, err
	}
	var pipeline *telemetry.Pipeline
	if opts.EnableTelemetry {
		pipeline, err = telemetry.NewPipeline(fab, telemetry.NewInterceptSource(fab), opts.Telemetry)
		if err != nil {
			return nil, err
		}
	}
	// Self-observability: one registry + event ring threaded through
	// every subsystem. The fabric, arbiter, platform and scheduler all
	// record into it; the HTTP API and the CLIs export it.
	traceCap := opts.TraceCapacity
	if traceCap == 0 {
		traceCap = 8192
	}
	o := obs.New(traceCap)
	fab.SetObs(o)
	arb.SetObs(o)
	platform.SetObs(o)
	scheduler = sched.Instrument(scheduler, o, engine)
	m := &Manager{
		opts: opts, engine: engine, topo: topo, fab: fab,
		mon: mon, platform: platform, bank: bank, ddio: ddio,
		interp: interp, scheduler: scheduler, arb: arb, pipeline: pipeline,
		obsv:    o,
		tenants: make(map[fabric.TenantID]*Tenant),
		mAdmissions: o.Registry.Counter("ihnet_core_admissions_total",
			"Tenants admitted through compile -> schedule -> arbitrate."),
		mRejections: o.Registry.Counter("ihnet_core_rejections_total",
			"Tenant admissions rejected at any pipeline stage."),
		mEvictions: o.Registry.Counter("ihnet_core_evictions_total",
			"Tenants evicted."),
	}
	o.Registry.GaugeFunc("ihnet_trace_events_total",
		"Events ever recorded by the observability tracer.",
		func() float64 { return float64(o.Tracer.Total()) })
	o.Registry.GaugeFunc("ihnet_trace_events_dropped",
		"Trace events overwritten by ring wraparound.",
		func() float64 { return float64(o.Tracer.Dropped()) })
	return m, nil
}

// Start arms the monitoring sweep, the arbiter loop and (when enabled)
// the heartbeat mesh.
func (m *Manager) Start() error {
	if m.started {
		return fmt.Errorf("core: manager already started")
	}
	if err := m.mon.Start(); err != nil {
		return err
	}
	if err := m.arb.Start(); err != nil {
		return err
	}
	if m.opts.EnableAnomaly {
		if err := m.platform.Start(); err != nil {
			return err
		}
	}
	if m.pipeline != nil {
		if err := m.pipeline.Start(); err != nil {
			return err
		}
	}
	m.started = true
	return nil
}

// Stop halts all control loops and the fabric's solver worker pool.
func (m *Manager) Stop() {
	m.mon.Stop()
	m.arb.Stop()
	m.platform.Stop()
	if m.pipeline != nil {
		m.pipeline.Stop()
	}
	m.fab.StopSolver()
	m.started = false
}

// Accessors for the subsystems; examples and the HTTP API use these.

// Engine returns the virtual-time engine.
func (m *Manager) Engine() *simtime.Engine { return m.engine }

// Topology returns the physical topology.
func (m *Manager) Topology() *topology.Topology { return m.topo }

// Fabric returns the substrate simulator.
func (m *Manager) Fabric() *fabric.Fabric { return m.fab }

// Monitor returns the usage/config monitor.
func (m *Manager) Monitor() *monitor.Monitor { return m.mon }

// Anomaly returns the heartbeat platform.
func (m *Manager) Anomaly() *anomaly.Platform { return m.platform }

// Counters returns the emulated hardware counter bank.
func (m *Manager) Counters() *counters.Bank { return m.bank }

// DDIO returns the cache model.
func (m *Manager) DDIO() *cachesim.Manager { return m.ddio }

// Interpreter returns the intent compiler.
func (m *Manager) Interpreter() *intent.Interpreter { return m.interp }

// Arbiter returns the run-time enforcer.
func (m *Manager) Arbiter() *arbiter.Arbiter { return m.arb }

// Scheduler returns the placement strategy in use.
func (m *Manager) Scheduler() sched.Scheduler { return m.scheduler }

// Telemetry returns the manager's telemetry pipeline, or nil when
// disabled. Its ring store backs history queries.
func (m *Manager) Telemetry() *telemetry.Pipeline { return m.pipeline }

// Obs returns the manager's self-observability substrate (metrics
// registry + event tracer). Never nil.
func (m *Manager) Obs() *obs.Obs { return m.obsv }

// Options returns the configuration the manager was built with.
// Checkpoint tooling (internal/snap) persists it so a restored host is
// reconstructed with bit-identical behaviour.
func (m *Manager) Options() Options { return m.opts }

// RunFor advances virtual time.
func (m *Manager) RunFor(d simtime.Duration) { m.engine.RunFor(d) }

// Admit runs the paper's compile -> schedule -> arbitrate pipeline for
// one tenant. Admission is all-or-nothing: if any target cannot be
// compiled or placed, nothing is reserved and the error says why. On
// success the tenant receives its virtualized view of the host.
func (m *Manager) Admit(tenant fabric.TenantID, targets []intent.Target) (*vnet.View, error) {
	return m.AdmitAvoiding(tenant, targets, nil)
}

// normalizeTargets stamps the tenant on each target and rejects
// mismatches.
func normalizeTargets(tenant fabric.TenantID, targets []intent.Target) error {
	if tenant == "" {
		return fmt.Errorf("core: empty tenant")
	}
	for i := range targets {
		if targets[i].Tenant == "" {
			targets[i].Tenant = tenant
		}
		if targets[i].Tenant != tenant {
			return fmt.Errorf("core: target %d belongs to %q, not %q",
				i, targets[i].Tenant, tenant)
		}
	}
	return nil
}

// filterAvoid drops candidate pathways traversing any avoided link in
// either direction. A pipe requirement whose candidate set empties out
// is an error: the intent cannot be satisfied under the constraint.
// Hose requirements have no pathway choice and pass through untouched.
func filterAvoid(reqs []intent.Requirement, avoid []topology.LinkID) error {
	if len(avoid) == 0 {
		return nil
	}
	banned := make(map[topology.LinkID]bool, len(avoid))
	for _, id := range avoid {
		banned[id] = true
	}
	for i := range reqs {
		if len(reqs[i].Candidates) == 0 {
			continue
		}
		kept := reqs[i].Candidates[:0]
		for _, p := range reqs[i].Candidates {
			ok := true
			for _, l := range p.Links {
				if banned[l.ID] || banned[l.Reverse] {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("core: %s: no pathway avoids %v", reqs[i].Target, avoid)
		}
		reqs[i].Candidates = kept
	}
	return nil
}

// PlanAdmission dry-runs the compile -> schedule half of admission
// under an avoid constraint, without reserving anything: the
// remediation planner's feasibility probe. The tenant may or may not
// be currently admitted; planning is against current headroom, which
// is conservative for a migrate (the tenant's own reservation is still
// counted against free capacity).
func (m *Manager) PlanAdmission(tenant fabric.TenantID, targets []intent.Target, avoid []topology.LinkID) ([]sched.Assignment, error) {
	if err := normalizeTargets(tenant, targets); err != nil {
		return nil, err
	}
	reqs, err := m.interp.CompileAll(targets)
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	if err := filterAvoid(reqs, avoid); err != nil {
		return nil, err
	}
	usage := sched.Usage{Capacity: m.arb.CapacityMap(), Free: m.arb.FreeMap()}
	assignments := m.scheduler.Schedule(reqs, usage)
	for _, a := range assignments {
		if !a.Admitted {
			return assignments, fmt.Errorf("core: plan failed for %s: %s", a.Req.Target, a.Reason)
		}
	}
	return assignments, nil
}

// AdmitAvoiding is Admit under a pathway constraint: candidates
// traversing any avoided link (either direction) are excluded before
// scheduling. The remediation controller re-places tenants off
// localized suspects with it.
func (m *Manager) AdmitAvoiding(tenant fabric.TenantID, targets []intent.Target, avoid []topology.LinkID) (*vnet.View, error) {
	if err := normalizeTargets(tenant, targets); err != nil {
		return nil, err
	}
	if _, ok := m.tenants[tenant]; ok {
		return nil, fmt.Errorf("core: tenant %q already admitted", tenant)
	}
	// Compile.
	reqs, err := m.interp.CompileAll(targets)
	if err != nil {
		m.mRejections.Inc()
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	if err := filterAvoid(reqs, avoid); err != nil {
		m.mRejections.Inc()
		return nil, err
	}
	// Schedule against current headroom.
	usage := sched.Usage{Capacity: m.arb.CapacityMap(), Free: m.arb.FreeMap()}
	assignments := m.scheduler.Schedule(reqs, usage)
	merged := resmodel.NewReservation()
	for _, a := range assignments {
		if !a.Admitted {
			m.mRejections.Inc()
			return nil, fmt.Errorf("core: admission failed for %s: %s", a.Req.Target, a.Reason)
		}
		merged.Merge(a.Reservation)
	}
	// Arbitrate.
	if err := m.arb.Install(tenant, merged); err != nil {
		m.mRejections.Inc()
		return nil, fmt.Errorf("core: arbitrate: %w", err)
	}
	view, err := vnet.Build(m.topo, tenant, merged)
	if err != nil {
		m.arb.Remove(tenant)
		m.mRejections.Inc()
		return nil, err
	}
	m.tenants[tenant] = &Tenant{
		ID: tenant, Targets: targets, Assignments: assignments, View: view,
	}
	m.mAdmissions.Inc()
	if m.obsv.Tracer.Enabled() {
		m.obsv.Tracer.Emit(obs.Event{
			Kind: obs.KindFlowAdmit, Virtual: m.engine.Now(),
			Subject: string(tenant),
			Detail:  fmt.Sprintf("%d target(s) admitted", len(targets)),
			Value:   float64(len(targets)),
		})
	}
	return view, nil
}

// Evict releases a tenant's guarantees.
func (m *Manager) Evict(tenant fabric.TenantID) error {
	if _, ok := m.tenants[tenant]; !ok {
		return fmt.Errorf("core: unknown tenant %q", tenant)
	}
	m.arb.Remove(tenant)
	delete(m.tenants, tenant)
	m.mEvictions.Inc()
	if m.obsv.Tracer.Enabled() {
		m.obsv.Tracer.Emit(obs.Event{
			Kind: obs.KindTenantEvict, Virtual: m.engine.Now(),
			Subject: string(tenant),
		})
	}
	return nil
}

// Tenant returns the record of an admitted tenant, or nil.
func (m *Manager) Tenant(tenant fabric.TenantID) *Tenant { return m.tenants[tenant] }

// Tenants returns admitted tenants sorted by ID.
func (m *Manager) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Migrate re-admits a tenant's intents on another host's manager —
// the tenant's targets, not its link-level reservations, move, which
// is exactly the reconfiguration-free migration the virtual
// abstraction promises. On success the tenant is evicted here and its
// new view (on the destination host) is returned.
func (m *Manager) Migrate(tenant fabric.TenantID, dst *Manager) (*vnet.View, error) {
	rec, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", tenant)
	}
	if dst == m {
		return nil, fmt.Errorf("core: migration to the same host")
	}
	view, err := dst.Admit(tenant, rec.Targets)
	if err != nil {
		return nil, fmt.Errorf("core: destination rejected %q: %w", tenant, err)
	}
	if err := m.Evict(tenant); err != nil {
		return nil, err
	}
	return view, nil
}
