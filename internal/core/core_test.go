package core

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(topology.TwoSocketServer(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewAndStartStop(t *testing.T) {
	m := newManager(t)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	m.RunFor(simtime.Millisecond)
	if m.Monitor().Sweeps() == 0 {
		t.Fatal("monitor not sweeping")
	}
	if m.Arbiter().Adjustments() == 0 {
		t.Fatal("arbiter not adjusting")
	}
	if m.Anomaly().ProbesSent() == 0 {
		t.Fatal("heartbeats not flowing")
	}
	m.Stop()
	probes := m.Anomaly().ProbesSent()
	m.RunFor(simtime.Millisecond)
	if m.Anomaly().ProbesSent() != probes {
		t.Fatal("probes after stop")
	}
}

func TestNewValidatesTopology(t *testing.T) {
	bad := topology.New("empty")
	if _, err := New(bad, DefaultOptions()); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestAdmitLifecycle(t *testing.T) {
	m := newManager(t)
	view, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view == nil || view.Tenant != "kv" {
		t.Fatalf("view %+v", view)
	}
	rec := m.Tenant("kv")
	if rec == nil || len(rec.Assignments) != 1 || !rec.Assignments[0].Admitted {
		t.Fatalf("tenant record %+v", rec)
	}
	if len(m.Tenants()) != 1 {
		t.Fatal("Tenants() wrong")
	}
	// Guarantees installed on the fabric.
	if m.Fabric().CapCount() == 0 {
		t.Fatal("no caps installed after admission")
	}
	if _, err := m.Admit("kv", nil); err == nil {
		t.Fatal("double admission accepted")
	}
	if err := m.Evict("kv"); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("kv"); err == nil {
		t.Fatal("double evict accepted")
	}
	if m.Tenant("kv") != nil {
		t.Fatal("tenant record left after evict")
	}
}

func TestAdmitFillsTenantField(t *testing.T) {
	m := newManager(t)
	if _, err := m.Admit("a", []intent.Target{
		{Tenant: "b", Src: "nic0", Dst: "gpu0", Rate: 1},
	}); err == nil {
		t.Fatal("mismatched target tenant accepted")
	}
	if _, err := m.Admit("", nil); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestAdmitAllOrNothing(t *testing.T) {
	m := newManager(t)
	_, err := m.Admit("ml", []intent.Target{
		{Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(10)},
		{Src: "gpu0", Dst: "nic0", Rate: topology.GBps(100)}, // impossible
	})
	if err == nil {
		t.Fatal("infeasible batch admitted")
	}
	// Nothing reserved: a full-size admission must still succeed.
	if m.Fabric().CapCount() != 0 {
		t.Fatal("partial reservation leaked")
	}
	if _, err := m.Admit("ml", []intent.Target{
		{Src: "gpu0", Dst: intent.AnyMemory, Rate: topology.GBps(25)},
	}); err != nil {
		t.Fatalf("post-rollback admission failed: %v", err)
	}
}

func TestAdmissionControlUnderPressure(t *testing.T) {
	m := newManager(t)
	// Admit tenants demanding NIC bandwidth until rejection: the PCIe
	// switch downstream link to nic0 (27.84 GB/s effective) gates it.
	admitted := 0
	for i := 0; i < 5; i++ {
		tn := fabric.TenantID(string(rune('a' + i)))
		_, err := m.Admit(tn, []intent.Target{
			{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)},
		})
		if err != nil {
			break
		}
		admitted++
	}
	if admitted != 3 {
		t.Fatalf("admitted %d tenants of 8GB/s through a ~27.8GB/s link, want 3", admitted)
	}
}

func TestGuaranteeHoldsUnderAntagonist(t *testing.T) {
	m := newManager(t)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// kv gets a 10 GB/s guarantee nic0 -> memory.
	view, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	kvPath := m.Tenant("kv").Assignments[0].Path
	kvFlow := &fabric.Flow{Tenant: "kv", Path: kvPath}
	if err := m.Fabric().AddFlow(kvFlow); err != nil {
		t.Fatal(err)
	}
	// Antagonist floods the same path with 4 greedy flows.
	for i := 0; i < 4; i++ {
		if err := m.Fabric().AddFlow(&fabric.Flow{Tenant: "evil", Path: kvPath}); err != nil {
			t.Fatal(err)
		}
	}
	m.RunFor(simtime.Millisecond)
	if r := kvFlow.Rate(); float64(r) < float64(topology.GBps(10))*0.98 {
		t.Fatalf("guaranteed tenant got %v, want >= 10GB/s", r)
	}
	_ = view
}

func TestAdmitHoseTenant(t *testing.T) {
	m := newManager(t)
	view, err := m.Admit("dist", []intent.Target{
		{Model: resmodel.ModelHose, Hoses: []resmodel.HoseDemand{
			{Endpoint: "gpu0", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
			{Endpoint: "gpu1", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
			{Endpoint: "nic0", Egress: topology.GBps(2), Ingress: topology.GBps(2)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Reservation.Links) == 0 {
		t.Fatal("hose admission produced empty reservation")
	}
	// The UPI link between gpu0 and gpu1 must carry a guarantee.
	if !view.Guaranteed("cpu0->cpu1") {
		t.Fatal("inter-socket hose link not guaranteed")
	}
	// Enforcement is live: caps exist on the fabric.
	if m.Fabric().CapCount() == 0 {
		t.Fatal("no caps installed")
	}
	if err := m.Evict("dist"); err != nil {
		t.Fatal(err)
	}
	if m.Fabric().CapCount() != 0 {
		t.Fatal("hose caps not released")
	}
}

func TestManagerWithNaiveScheduler(t *testing.T) {
	opts := DefaultOptions()
	opts.Scheduler = "naive"
	m, err := New(topology.TwoSocketServer(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler().Name() != "naive" {
		t.Fatalf("scheduler %q", m.Scheduler().Name())
	}
	if _, err := m.Admit("a", []intent.Target{
		{Src: "gpu0", Dst: "nic0", Rate: topology.GBps(5)},
	}); err != nil {
		t.Fatal(err)
	}
	opts.Scheduler = "bogus"
	if _, err := New(topology.TwoSocketServer(), opts); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestManagerDDIOIntegration(t *testing.T) {
	m := newManager(t)
	if err := m.DDIO().AddStream("rx", "kv", 0, topology.GBps(30)); err != nil {
		t.Fatal(err)
	}
	if err := m.DDIO().AddStream("wr", "ml", 0, topology.GBps(30)); err != nil {
		t.Fatal(err)
	}
	m.RunFor(simtime.Millisecond)
	if m.DDIO().MaxMiss() <= 0 {
		t.Fatal("no thrash through manager-owned cache model")
	}
	// The spill shows up in the monitor's per-tenant usage.
	rep := m.Monitor().UsageReport()
	found := false
	for _, tu := range rep.Tenants {
		if tu.Tenant == "kv" && tu.ByClass[topology.ClassIntraSocket] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("spill traffic invisible to the monitor")
	}
}

func TestMigrate(t *testing.T) {
	src := newManager(t)
	dstM, err := New(topology.DGXStyle(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(10)},
	}); err != nil {
		t.Fatal(err)
	}
	view, err := src.Migrate("kv", dstM)
	if err != nil {
		t.Fatal(err)
	}
	if view.HostName != "dgx-style" {
		t.Fatalf("migrated view host %q", view.HostName)
	}
	if src.Tenant("kv") != nil {
		t.Fatal("tenant still on source after migration")
	}
	if dstM.Tenant("kv") == nil {
		t.Fatal("tenant missing on destination")
	}
	if src.Fabric().CapCount() != 0 {
		t.Fatal("source caps not released")
	}
	// Error paths.
	if _, err := src.Migrate("kv", dstM); err == nil {
		t.Fatal("migrating absent tenant accepted")
	}
	if _, err := dstM.Migrate("kv", dstM); err == nil {
		t.Fatal("self-migration accepted")
	}
}

func TestMigrationRejectedKeepsSource(t *testing.T) {
	src := newManager(t)
	tiny, err := New(topology.MinimalHost(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the tiny host's NIC memory path completely.
	if _, err := tiny.Admit("hog", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(25)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(20)},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = src.Migrate("kv", tiny)
	if err == nil || !strings.Contains(err.Error(), "destination rejected") {
		t.Fatalf("expected destination rejection, got %v", err)
	}
	if src.Tenant("kv") == nil {
		t.Fatal("failed migration evicted the tenant")
	}
}

func TestAccessors(t *testing.T) {
	m := newManager(t)
	if m.Engine() == nil || m.Topology() == nil || m.Counters() == nil ||
		m.Interpreter() == nil || m.Telemetry() == nil {
		t.Fatal("nil accessor")
	}
	if m.Topology().Name != "two-socket" {
		t.Fatalf("topology %q", m.Topology().Name)
	}
	// Telemetry pipeline collects once started.
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.RunFor(simtime.Millisecond)
	if m.Telemetry().Store().Len() == 0 {
		t.Fatal("telemetry store empty after 1ms")
	}
	// Counter bank reads through the manager.
	if _, err := m.Counters().ReadLink("cpu0->socket0.llc"); err != nil {
		t.Fatal(err)
	}
	// Telemetry can be disabled.
	opts := DefaultOptions()
	opts.EnableTelemetry = false
	m2, err := New(topology.MinimalHost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Telemetry() != nil {
		t.Fatal("disabled telemetry not nil")
	}
}

func TestDeterministicManagers(t *testing.T) {
	run := func() simtime.Duration {
		m, err := New(topology.TwoSocketServer(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		_ = m.Start()
		m.RunFor(5 * simtime.Millisecond)
		// Use a probe-derived quantity as the fingerprint.
		dets := m.Anomaly().ProbesSent()
		return simtime.Duration(dets)
	}
	if run() != run() {
		t.Fatal("managers with equal seeds diverged")
	}
}
