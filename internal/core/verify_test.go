package core

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func strictManager(t *testing.T) *Manager {
	t.Helper()
	opts := DefaultOptions()
	opts.EnableAnomaly = false
	opts.Arbiter.Mode = arbiter.Strict
	m, err := New(topology.TwoSocketServer(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyTenantMeetsGuarantee(t *testing.T) {
	m := strictManager(t)
	if _, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	}); err != nil {
		t.Fatal(err)
	}
	// Pile on antagonists.
	p := m.Tenant("kv").Assignments[0].Path
	for i := 0; i < 3; i++ {
		if err := m.Fabric().AddFlow(&fabric.Flow{Tenant: "evil", Path: p}); err != nil {
			t.Fatal(err)
		}
	}
	m.RunFor(simtime.Millisecond)
	vs, err := m.VerifyTenant("kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("verifications: %d", len(vs))
	}
	v := vs[0]
	if !v.Met {
		t.Fatalf("guarantee not met under contention: promised %v achieved %v", v.Promised, v.Achieved)
	}
	if !v.LatencyMet {
		t.Fatal("latency flagged with no bound declared")
	}
	if v.IdleLatency <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestVerifyTenantDetectsEnforcementLoss(t *testing.T) {
	m := strictManager(t)
	if _, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	}); err != nil {
		t.Fatal(err)
	}
	p := m.Tenant("kv").Assignments[0].Path
	for i := 0; i < 3; i++ {
		_ = m.Fabric().AddFlow(&fabric.Flow{Tenant: "evil", Path: p})
	}
	// Sabotage: clear all caps and stop the arbiter so it cannot
	// reinstall them — enforcement silently lost.
	m.Arbiter().Stop()
	m.Monitor().Stop()
	m.Fabric().ClearAllCaps()
	vs, err := m.VerifyTenant("kv")
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Met {
		t.Fatalf("verification passed without enforcement: achieved %v of %v",
			vs[0].Achieved, vs[0].Promised)
	}
}

func TestVerifyTenantLatencyBound(t *testing.T) {
	m := strictManager(t)
	if _, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(5),
			MaxLatency: 300 * simtime.Nanosecond},
	}); err != nil {
		t.Fatal(err)
	}
	vs, err := m.VerifyTenant("kv")
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].LatencyMet {
		t.Fatalf("latency bound flagged on idle fabric: %v", vs[0].IdleLatency)
	}
	// Degrade a pathway hop so the bound breaks.
	path := m.Tenant("kv").Assignments[0].Path
	if err := m.Fabric().DegradeLink(path.Links[0].ID, 0, 5*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	vs, err = m.VerifyTenant("kv")
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].LatencyMet {
		t.Fatal("broken latency bound not flagged")
	}
}

func TestVerifyUnknownTenant(t *testing.T) {
	m := strictManager(t)
	if _, err := m.VerifyTenant("ghost"); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}
