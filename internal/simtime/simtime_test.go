package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine at %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order %v, want FIFO", got)
		}
	}
}

func TestNowDuringEvent(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(77, func() { at = e.Now() })
	e.Run()
	if at != 77 {
		t.Fatalf("Now() inside event = %v, want 77", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil func did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestAfter(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.Schedule(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After(50) from t=100 fired at %v, want 150", fired)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.Schedule(10, func() { ran = true })
	if !h.Pending() {
		t.Fatal("handle not pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first cancel returned false")
	}
	if h.Cancel() {
		t.Fatal("second cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if h.Pending() {
		t.Fatal("canceled handle still pending")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(10, func() { count++ })
	e.Schedule(20, func() { count++ })
	e.Schedule(30, func() { count++ })
	e.RunUntil(25)
	if count != 2 {
		t.Fatalf("ran %d events by t=25, want 2", count)
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25), want 25", e.Now())
	}
	e.RunUntil(30)
	if count != 3 {
		t.Fatalf("ran %d events by t=30, want 3", count)
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(25, func() { ran = true })
	e.RunUntil(25)
	if !ran {
		t.Fatal("event at horizon not run by RunUntil")
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(100)
	e.RunFor(50)
	if e.Now() != 150 {
		t.Fatalf("clock at %v after RunFor(100)+RunFor(50), want 150", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(10, func() { count++; e.Stop() })
	e.Schedule(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop() did not halt run: ran %d events", count)
	}
	// A later Run resumes.
	e.Run()
	if count != 2 {
		t.Fatalf("resumed run processed %d total, want 2", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var fires []Time
	tk := e.Every(10, func() { fires = append(fires, e.Now()) })
	e.RunUntil(35)
	tk.Stop()
	e.RunUntil(100)
	want := []Time{10, 20, 30}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", fires, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.Every(5, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(1000)
	if count != 3 {
		t.Fatalf("ticker fired %d times after self-stop at 3, want 3", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	e.Every(0, func() {})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(10, func() {
		order = append(order, "a")
		e.Schedule(15, func() { order = append(order, "b") })
	})
	e.Schedule(20, func() { order = append(order, "c") })
	e.Run()
	want := "abc"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		for i := 0; i < 100; i++ {
			e.After(Duration(e.Rand().Intn(1000)), func() {
				out = append(out, int64(e.Now()), e.Rand().Int63n(1<<30))
			})
		}
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDurationConversions(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d ns, want 1000", Microsecond)
	}
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if (5 * Microsecond).Micros() != 5.0 {
		t.Fatalf("Micros() = %v, want 5", (5 * Microsecond).Micros())
	}
	if Time(1500).Sub(Time(500)) != 1000 {
		t.Fatalf("Sub wrong")
	}
	if Time(100).Add(50) != 150 {
		t.Fatalf("Add wrong")
	}
}

// Property: for any set of scheduled times, execution order is the
// sorted order of those times.
func TestPropertyExecutionIsSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var got []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset runs exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		e := NewEngine(3)
		ran := make([]bool, count)
		handles := make([]EventHandle, count)
		for i := 0; i < count; i++ {
			i := i
			handles[i] = e.Schedule(Time(i*10), func() { ran[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				handles[i].Cancel()
			}
		}
		e.Run()
		for i := 0; i < count; i++ {
			canceled := mask&(1<<uint(i)) != 0
			if ran[i] == canceled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Duration(rng.Intn(1000)+1), func() {})
		if e.Pending() > 1024 {
			e.RunFor(500)
		}
	}
	e.Run()
}

func TestRescheduleMovesEvent(t *testing.T) {
	e := NewEngine(1)
	var got []string
	h := e.Schedule(100, func() { got = append(got, "old") })
	e.Schedule(150, func() { got = append(got, "mid") })
	h = e.Reschedule(h, 200, func() { got = append(got, "new") })
	e.Run()
	if len(got) != 2 || got[0] != "mid" || got[1] != "new" {
		t.Fatalf("execution order %v, want [mid new]", got)
	}
	if h.Pending() {
		t.Fatal("handle still pending after run")
	}
}

func TestRescheduleEarlier(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(100, func() { got = append(got, "anchor") })
	h := e.Schedule(300, func() { got = append(got, "old") })
	e.Reschedule(h, 50, func() { got = append(got, "early") })
	e.Run()
	if len(got) != 2 || got[0] != "early" || got[1] != "anchor" {
		t.Fatalf("execution order %v, want [early anchor]", got)
	}
}

// Rescheduling must be indistinguishable from Cancel+Schedule: same
// seq consumption, same same-instant ordering, same pending fingerprint.
// The fabric's determinism contract (snapshot hashes cover Seq and
// PendingEvents) depends on this equivalence.
func TestRescheduleSeqParityWithCancelSchedule(t *testing.T) {
	build := func(reschedule bool) (*Engine, *[]int) {
		e := NewEngine(1)
		got := &[]int{}
		h := e.Schedule(100, func() { *got = append(*got, 0) })
		e.Schedule(200, func() { *got = append(*got, 1) })
		if reschedule {
			e.Reschedule(h, 200, func() { *got = append(*got, 2) })
		} else {
			h.Cancel()
			e.Schedule(200, func() { *got = append(*got, 2) })
		}
		e.Schedule(200, func() { *got = append(*got, 3) })
		return e, got
	}
	er, gr := build(true)
	ec, gc := build(false)
	if er.Seq() != ec.Seq() {
		t.Fatalf("seq after reschedule %d != after cancel+schedule %d", er.Seq(), ec.Seq())
	}
	// The (At, Seq) fingerprint of live pending events — what snapshot
	// hashes cover — must be identical between the two idioms.
	pr, pc := er.PendingEvents(), ec.PendingEvents()
	if len(pr) != len(pc) {
		t.Fatalf("pending fingerprints differ in length: %d vs %d", len(pr), len(pc))
	}
	for i := range pr {
		if pr[i] != pc[i] {
			t.Fatalf("pending event %d: reschedule %+v vs cancel+schedule %+v", i, pr[i], pc[i])
		}
	}
	// Same-instant execution order parity.
	er.Run()
	ec.Run()
	if len(*gr) != len(*gc) {
		t.Fatalf("ran %d vs %d events", len(*gr), len(*gc))
	}
	for i := range *gr {
		if (*gr)[i] != (*gc)[i] {
			t.Fatalf("same-instant order diverged: %v vs %v", *gr, *gc)
		}
	}
}

func TestRescheduleExpiredFallsBackToSchedule(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	h := e.Schedule(10, func() { ran++ })
	e.RunUntil(20) // h has fired; its handle is spent
	h2 := e.Reschedule(h, 30, func() { ran += 10 })
	if !h2.Pending() {
		t.Fatal("fallback schedule not pending")
	}
	e.Run()
	if ran != 11 {
		t.Fatalf("ran = %d, want 11 (original once, fallback once)", ran)
	}
}

func TestRescheduleCanceledFallsBackToSchedule(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	h := e.Schedule(10, func() { ran++ })
	h.Cancel()
	e.Reschedule(h, 30, func() { ran += 10 })
	e.Run()
	if ran != 10 {
		t.Fatalf("ran = %d, want 10 (canceled never fires, fallback does)", ran)
	}
}

func TestRescheduleZeroHandle(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.Reschedule(EventHandle{}, 5, func() { ran = true })
	if !h.Pending() {
		t.Fatal("zero-handle reschedule not pending")
	}
	e.Run()
	if !ran {
		t.Fatal("zero-handle reschedule never ran")
	}
}

func TestReschedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(50, func() {})
	e.RunUntil(50)
	h := e.Schedule(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling into the past did not panic")
		}
	}()
	e.Reschedule(h, 10, func() {})
}

func TestRescheduleNilFuncPanics(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling nil func did not panic")
		}
	}()
	e.Reschedule(h, 200, nil)
}
