// Package simtime provides a deterministic discrete-event simulation
// engine with nanosecond-resolution virtual time.
//
// All simulated subsystems in this repository (the fabric, the
// monitoring pipeline, the arbiter control loop) share one Engine. The
// engine owns virtual time: callbacks scheduled on it run in strictly
// non-decreasing time order, and events scheduled for the same instant
// run in scheduling order. No wall-clock time enters the simulation, so
// every run with the same seed is bit-for-bit reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts
// directly to and from time.Duration.
type Duration int64

// Common durations, mirroring the time package for readability at call
// sites that describe hardware latencies.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Std converts d to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds returns the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. seq breaks ties so that events
// scheduled for the same instant run in FIFO order.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// EventHandle identifies a scheduled event so it can be canceled.
type EventHandle struct{ ev *event }

// Cancel prevents the event from running. Canceling an already-run or
// already-canceled event is a no-op. Cancel reports whether the event
// was still pending.
func (h EventHandle) Cancel() bool {
	if h.ev == nil || h.ev.canceled || h.ev.index == -1 {
		return false
	}
	h.ev.canceled = true
	return true
}

// Pending reports whether the event is still waiting to run.
func (h EventHandle) Pending() bool {
	return h.ev != nil && !h.ev.canceled && h.ev.index != -1
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation model is sequential by design so
// that results are deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events that have run, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine at time zero whose random source is
// seeded with seed. Every stochastic model in the simulation must draw
// from Rand() so runs are reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at the given absolute virtual time. Scheduling in
// the past panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) EventHandle {
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("simtime: schedule nil func")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventHandle{ev}
}

// Reschedule moves a still-pending event to a new absolute time,
// reusing its queue entry instead of allocating a fresh one. The event
// is assigned a fresh sequence number — exactly as Cancel followed by
// Schedule would — so same-instant execution order and the engine's
// scheduling fingerprint (Seq, PendingEvents) are indistinguishable
// from that idiom; only the allocation and the heap push/pop churn are
// saved. When h does not refer to a pending event (zero handle,
// already run, or canceled) a new event is scheduled. The fabric's
// completion re-arming leans on this: sized flows keep one event alive
// across every rate recomputation.
func (e *Engine) Reschedule(h EventHandle, at Time, fn func()) EventHandle {
	ev := h.ev
	if ev == nil || ev.canceled || ev.index == -1 {
		return e.Schedule(at, fn)
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: reschedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("simtime: reschedule nil func")
	}
	ev.at = at
	ev.fn = fn
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.queue, ev.index)
	return h
}

// After runs fn after duration d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. period must be positive.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly runs a callback at a fixed virtual-time period.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	handle  EventHandle
	stopped bool
}

func (t *Ticker) arm() {
	t.handle = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. It is safe to call from within the tick
// callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Period returns the ticker's period.
func (t *Ticker) Period() Duration { return t.period }

// Step runs the single earliest pending event, advancing virtual time
// to it. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes events up to and including time t, then advances
// the clock to exactly t. Events scheduled during processing are
// honored if they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: run until %v before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor processes events for duration d of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events waiting in the queue, including
// canceled events not yet discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Seq returns the number of events ever scheduled. Together with Now
// and Processed it fingerprints the engine's position in a run: two
// executions that agree on (Now, Processed, Seq) have scheduled and
// consumed the same event stream.
func (e *Engine) Seq() uint64 { return e.seq }

// PendingEvent describes one live queue entry without exposing its
// callback. The (At, Seq) pairs identify the queue's future exactly —
// checkpoint/replay tooling hashes them to compare engine states.
type PendingEvent struct {
	At  Time
	Seq uint64
}

// PendingEvents returns the live (non-canceled) queue entries sorted
// by execution order. Callbacks are deliberately absent: closures
// cannot be serialized, which is why snapshots are reconstructed by
// replay rather than by dumping the heap.
func (e *Engine) PendingEvents() []PendingEvent {
	out := make([]PendingEvent, 0, len(e.queue))
	for _, ev := range e.queue {
		if ev.canceled {
			continue
		}
		out = append(out, PendingEvent{At: ev.at, Seq: ev.seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
