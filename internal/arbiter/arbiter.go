// Package arbiter implements the paper's dynamic resource arbiter
// (§3.2): it turns the scheduler's reservations into per-(link,tenant)
// rate caps on the fabric — the unified software shim layer the paper
// suggests as the enforcement point (§3.2 Q2) — and re-adjusts them at
// microsecond cadence as tenants come and go.
//
// Two modes answer the §3.2 Q1 work-conservation question
// empirically:
//
//   - Strict: reserved tenants are capped exactly at their guarantee
//     and bystanders split the leftover. Guarantees always hold, but
//     idle reserved bandwidth is wasted.
//   - WorkConserving: each adjustment tick measures actual usage and
//     lends idle bandwidth to whoever can use it, clawing it back
//     toward guarantees as reserved demand returns (ElasticSwitch-
//     style guarantee-then-borrow).
package arbiter

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Mode selects the arbitration policy.
type Mode string

// Arbitration modes.
const (
	Strict         Mode = "strict"
	WorkConserving Mode = "work-conserving"
)

// Config tunes the arbiter.
type Config struct {
	Mode Mode
	// AdjustPeriod is the cadence of the re-arbitration loop. The
	// paper's Q3 demands this fit in microseconds.
	AdjustPeriod simtime.Duration
	// BorrowFraction is how much of the measured slack a tenant may
	// borrow per tick in work-conserving mode (damping factor).
	BorrowFraction float64
}

// DefaultConfig returns a 50 us work-conserving arbiter.
func DefaultConfig() Config {
	return Config{Mode: WorkConserving, AdjustPeriod: 50 * simtime.Microsecond, BorrowFraction: 0.9}
}

func (c Config) validate() error {
	switch c.Mode {
	case Strict, WorkConserving:
	default:
		return fmt.Errorf("arbiter: unknown mode %q", c.Mode)
	}
	if c.AdjustPeriod <= 0 {
		return fmt.Errorf("arbiter: non-positive adjust period")
	}
	if c.BorrowFraction < 0 || c.BorrowFraction > 1 {
		return fmt.Errorf("arbiter: borrow fraction outside [0,1]")
	}
	return nil
}

// Arbiter enforces reservations on one fabric.
type Arbiter struct {
	fab *fabric.Fabric
	cfg Config

	// guarantees maps tenant -> per-link reserved rates.
	guarantees map[fabric.TenantID]resmodel.Reservation
	// installed tracks every cap this arbiter has set, so stale caps
	// are cleared when guarantees or tenants go away. The value is
	// the current desired cap (work-conserving state).
	installed map[topology.LinkID]map[fabric.TenantID]topology.Rate
	ticker    *simtime.Ticker
	// Adjustments counts re-arbitration passes (Q3 overhead metric).
	adjustments uint64

	// Observability (nil when unattached).
	tracer         *obs.Tracer
	mAdjustments   *obs.Counter
	mCapsSet       *obs.Counter
	mCapsCleared   *obs.Counter
	mInstalledCaps *obs.Gauge
}

// SetObs attaches an observability substrate. Cap-change trace events
// are emitted only on transitions (a 50 us work-conserving loop
// refreshes every cap every pass; tracing the steady state would just
// flood the ring).
func (a *Arbiter) SetObs(o *obs.Obs) {
	if o == nil {
		a.tracer, a.mAdjustments, a.mCapsSet, a.mCapsCleared, a.mInstalledCaps = nil, nil, nil, nil, nil
		return
	}
	a.tracer = o.Tracer
	a.mAdjustments = o.Registry.Counter("ihnet_arbiter_adjustments_total",
		"Re-arbitration passes (each recomputes every cap on reserved links).")
	a.mCapsSet = o.Registry.Counter("ihnet_arbiter_caps_set_total",
		"Per-(link,tenant) rate caps installed or refreshed.")
	a.mCapsCleared = o.Registry.Counter("ihnet_arbiter_caps_cleared_total",
		"Per-(link,tenant) rate caps removed.")
	a.mInstalledCaps = o.Registry.Gauge("ihnet_arbiter_caps_installed",
		"Per-(link,tenant) rate caps currently installed.")
}

// New builds an arbiter. Call Start to begin the adjustment loop.
func New(fab *fabric.Fabric, cfg Config) (*Arbiter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Arbiter{
		fab:        fab,
		cfg:        cfg,
		guarantees: make(map[fabric.TenantID]resmodel.Reservation),
		installed:  make(map[topology.LinkID]map[fabric.TenantID]topology.Rate),
	}, nil
}

// Mode returns the arbiter's mode.
func (a *Arbiter) Mode() Mode { return a.cfg.Mode }

// Install merges a tenant's reservation and immediately re-arbitrates.
func (a *Arbiter) Install(tenant fabric.TenantID, res resmodel.Reservation) error {
	if tenant == "" {
		return fmt.Errorf("arbiter: empty tenant")
	}
	// Validate links exist before mutating state.
	for _, l := range res.LinkIDs() {
		if _, err := a.fab.EffectiveCapacity(l); err != nil {
			return err
		}
	}
	g, ok := a.guarantees[tenant]
	if !ok {
		g = resmodel.NewReservation()
		a.guarantees[tenant] = g
	}
	g.Merge(res)
	a.apply()
	return nil
}

// Remove drops a tenant's guarantees and re-arbitrates, releasing the
// bandwidth promptly "when applications come and go".
func (a *Arbiter) Remove(tenant fabric.TenantID) {
	if _, ok := a.guarantees[tenant]; !ok {
		return
	}
	delete(a.guarantees, tenant)
	a.apply()
}

// Guaranteed returns a tenant's merged reservation (zero-value if
// none).
func (a *Arbiter) Guaranteed(tenant fabric.TenantID) resmodel.Reservation {
	if g, ok := a.guarantees[tenant]; ok {
		return g.Clone()
	}
	return resmodel.NewReservation()
}

// FreeMap returns per-link unreserved capacity — the scheduler's Free
// input: effective capacity minus the sum of installed guarantees.
// Guarantees are subtracted in sorted tenant order: the per-link
// result is a float accumulation, so iterating the guarantees map
// directly would make the scheduler's admission input (and therefore
// replayed runs) depend on Go's randomized map order.
func (a *Arbiter) FreeMap() map[topology.LinkID]topology.Rate {
	out := make(map[topology.LinkID]topology.Rate)
	for _, l := range a.fab.Topology().Links() {
		c, err := a.fab.EffectiveCapacity(l.ID)
		if err != nil {
			continue
		}
		out[l.ID] = c
	}
	for _, t := range a.GuaranteedTenants() {
		for _, l := range a.guarantees[t].LinkIDs() {
			out[l] -= a.guarantees[t].Links[l]
			if out[l] < 0 {
				out[l] = 0
			}
		}
	}
	return out
}

// GuaranteedTenants returns the sorted tenants holding at least one
// installed guarantee.
func (a *Arbiter) GuaranteedTenants() []fabric.TenantID {
	out := make([]fabric.TenantID, 0, len(a.guarantees))
	for t := range a.guarantees {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CapacityMap returns per-link effective capacity — the scheduler's
// Capacity input.
func (a *Arbiter) CapacityMap() map[topology.LinkID]topology.Rate {
	out := make(map[topology.LinkID]topology.Rate)
	for _, l := range a.fab.Topology().Links() {
		c, err := a.fab.EffectiveCapacity(l.ID)
		if err != nil {
			continue
		}
		out[l.ID] = c
	}
	return out
}

// Start arms the periodic adjustment loop.
func (a *Arbiter) Start() error {
	if a.ticker != nil {
		return fmt.Errorf("arbiter: already started")
	}
	a.ticker = a.fab.Engine().Every(a.cfg.AdjustPeriod, a.apply)
	return nil
}

// Stop halts the loop; installed caps remain.
func (a *Arbiter) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
}

// Adjustments returns the number of re-arbitration passes so far.
func (a *Arbiter) Adjustments() uint64 { return a.adjustments }

// reservedLinks returns the sorted set of links with any guarantee.
func (a *Arbiter) reservedLinks() []topology.LinkID {
	seen := make(map[topology.LinkID]bool)
	for _, g := range a.guarantees {
		for l := range g.Links {
			seen[l] = true
		}
	}
	out := make([]topology.LinkID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// apply is one arbitration pass: recompute every cap on every reserved
// link from guarantees, current occupancy and mode, then clear any cap
// from a previous pass that is no longer wanted. The whole pass runs
// as one fabric batch — occupancy reads see the consistent pre-pass
// rates (measure-then-set) and the fabric recomputes once, which is
// what keeps per-pass cost inside the paper's Q3 microsecond budget.
func (a *Arbiter) apply() {
	a.fab.Batch(a.applyLocked)
}

func (a *Arbiter) applyLocked() {
	a.adjustments++
	a.mAdjustments.Inc()
	desired := make(map[topology.LinkID]map[fabric.TenantID]topology.Rate)
	setCap := func(link topology.LinkID, t fabric.TenantID, r topology.Rate) {
		m := desired[link]
		if m == nil {
			m = make(map[fabric.TenantID]topology.Rate)
			desired[link] = m
		}
		m[t] = r
		_ = a.fab.SetTenantCap(link, t, r)
		a.mCapsSet.Inc()
		if a.tracer.Enabled() {
			if prev, ok := a.installed[link][t]; !ok || prev != r {
				a.tracer.Emit(obs.Event{
					Kind: obs.KindCapSet, Virtual: a.fab.Engine().Now(),
					Subject: string(link) + "/" + string(t), Value: float64(r),
				})
			}
		}
	}
	for _, link := range a.reservedLinks() {
		capacity, err := a.fab.EffectiveCapacity(link)
		if err != nil {
			continue
		}
		// Tenant guarantee map for this link.
		guar := make(map[fabric.TenantID]topology.Rate)
		var totalGuar topology.Rate
		tenants := make([]fabric.TenantID, 0, len(a.guarantees))
		for t := range a.guarantees {
			tenants = append(tenants, t)
		}
		sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
		guarTenants := tenants[:0]
		for _, t := range tenants {
			if r, ok := a.guarantees[t].Links[link]; ok && r > 0 {
				guar[t] = r
				totalGuar += r
				guarTenants = append(guarTenants, t)
			}
		}
		leftover := capacity - totalGuar
		if leftover < 0 {
			leftover = 0
		}
		// Bystanders: tenants active on the link without a guarantee
		// there (excluding the system tenant, which is never capped —
		// heartbeats and monitoring must not be starved by tenants).
		var bystanders []fabric.TenantID
		for _, t := range a.fab.TenantsOn(link) {
			if t == fabric.SystemTenant {
				continue
			}
			if _, ok := guar[t]; !ok {
				bystanders = append(bystanders, t)
			}
		}
		baseline := func(t fabric.TenantID) topology.Rate {
			if r, ok := guar[t]; ok {
				return r
			}
			if len(bystanders) == 0 {
				return 0
			}
			return leftover / topology.Rate(len(bystanders))
		}
		all := append(append([]fabric.TenantID(nil), guarTenants...), bystanders...)
		switch a.cfg.Mode {
		case Strict:
			for _, t := range all {
				setCap(link, t, baseline(t))
			}
		case WorkConserving:
			// Guarantee-then-borrow: when the link has slack, each
			// tenant's cap grows from its current rate by a share of
			// the slack; when saturated, borrowed caps decay
			// multiplicatively back toward baseline so returning
			// guaranteed demand reclaims its share within a few
			// periods.
			var used topology.Rate
			for _, t := range all {
				used += a.fab.TenantRateOn(link, t)
			}
			slack := capacity - used
			n := len(all)
			if n == 0 {
				continue
			}
			prev := a.installed[link]
			for _, t := range all {
				base := baseline(t)
				var next topology.Rate
				if slack > capacity/100 {
					lend := topology.Rate(float64(slack) * a.cfg.BorrowFraction / float64(n))
					next = a.fab.TenantRateOn(link, t) + lend
				} else {
					cur, ok := prev[t]
					if !ok {
						cur = base
					}
					next = topology.Rate(float64(cur) * 0.7)
				}
				if next < base {
					next = base
				}
				setCap(link, t, next)
			}
		}
	}
	// Clear caps installed previously but not refreshed this pass.
	for link, prev := range a.installed {
		for t := range prev {
			if _, ok := desired[link][t]; !ok {
				_ = a.fab.ClearTenantCap(link, t)
				a.mCapsCleared.Inc()
				if a.tracer.Enabled() {
					a.tracer.Emit(obs.Event{
						Kind: obs.KindCapClear, Virtual: a.fab.Engine().Now(),
						Subject: string(link) + "/" + string(t),
					})
				}
			}
		}
	}
	a.installed = desired
	if a.mInstalledCaps != nil {
		n := 0
		for _, m := range desired {
			n += len(m)
		}
		a.mInstalledCaps.Set(float64(n))
	}
}
