package arbiter

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// twoFlowLine builds a 100 B/s line a->b->c with one greedy flow per
// tenant and returns everything needed for assertions.
func twoFlowLine(t *testing.T, mode Mode) (*Arbiter, *fabric.Fabric, *simtime.Engine, *fabric.Flow, *fabric.Flow, topology.Path) {
	t.Helper()
	e := simtime.NewEngine(2)
	topo := topology.New("line")
	topo.MustAddComponent("a", topology.KindNIC, 0)
	topo.MustAddComponent("b", topology.KindPCIeSwitch, 0)
	topo.MustAddComponent("c", topology.KindDIMM, 0)
	topo.MustAddLink(topology.LinkSpec{A: "a", B: "b", Class: topology.ClassPCIeDown, Capacity: 100, BaseLatency: 10})
	topo.MustAddLink(topology.LinkSpec{A: "b", B: "c", Class: topology.ClassIntraSocket, Capacity: 100, BaseLatency: 10})
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	p, err := topo.ShortestPath("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	kv := &fabric.Flow{Tenant: "kv", Path: p}
	ml := &fabric.Flow{Tenant: "ml", Path: p}
	if err := fab.AddFlow(kv); err != nil {
		t.Fatal(err)
	}
	if err := fab.AddFlow(ml); err != nil {
		t.Fatal(err)
	}
	a, err := New(fab, Config{Mode: mode, AdjustPeriod: 10 * simtime.Microsecond, BorrowFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return a, fab, e, kv, ml, p
}

func TestConfigValidation(t *testing.T) {
	e := simtime.NewEngine(1)
	fab := fabric.New(topology.MinimalHost(), e, fabric.DefaultConfig())
	bad := []Config{
		{Mode: "weird", AdjustPeriod: 1},
		{Mode: Strict, AdjustPeriod: 0},
		{Mode: Strict, AdjustPeriod: 1, BorrowFraction: 2},
	}
	for i, c := range bad {
		if _, err := New(fab, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(fab, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestStrictGuaranteeEnforced(t *testing.T) {
	a, _, e, kv, ml, p := twoFlowLine(t, Strict)
	// Without arbitration: fair split 50/50.
	if kv.Rate() != 50 || ml.Rate() != 50 {
		t.Fatalf("pre-arbiter rates %v/%v", kv.Rate(), ml.Rate())
	}
	// Guarantee kv 80 B/s along the path.
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	if err := a.Install("kv", res); err != nil {
		t.Fatal(err)
	}
	_ = a.Start()
	e.RunFor(100 * simtime.Microsecond)
	if r := float64(kv.Rate()); r < 79.9 || r > 80.1 {
		t.Fatalf("guaranteed tenant rate %v, want 80", r)
	}
	if r := float64(ml.Rate()); r < 19.9 || r > 20.1 {
		t.Fatalf("bystander rate %v, want 20", r)
	}
}

func TestStrictWastesIdleReservation(t *testing.T) {
	a, fab, e, kv, ml, p := twoFlowLine(t, Strict)
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	_ = a.Install("kv", res)
	_ = a.Start()
	// kv goes idle (demand ~0); strict mode still caps ml at 20.
	_ = fab.SetDemand(kv, 1)
	e.RunFor(200 * simtime.Microsecond)
	if r := float64(ml.Rate()); r > 20.1 {
		t.Fatalf("strict bystander rate %v, want <= 20 (no work conservation)", r)
	}
}

func TestWorkConservingLendsIdleBandwidth(t *testing.T) {
	a, fab, e, kv, ml, p := twoFlowLine(t, WorkConserving)
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	_ = a.Install("kv", res)
	_ = a.Start()
	_ = fab.SetDemand(kv, 1)
	e.RunFor(500 * simtime.Microsecond)
	// ml should have borrowed well beyond its 20 B/s leftover.
	if r := float64(ml.Rate()); r < 50 {
		t.Fatalf("work-conserving bystander rate %v, want > 50", r)
	}
	// kv ramps back up: guarantee must be restored within a few
	// adjustment periods.
	_ = fab.SetDemand(kv, 0) // unconstrained again
	e.RunFor(500 * simtime.Microsecond)
	if r := float64(kv.Rate()); r < 79 {
		t.Fatalf("guarantee not restored after ramp-up: %v", r)
	}
}

func TestInstallValidation(t *testing.T) {
	a, _, _, _, _, _ := twoFlowLine(t, Strict)
	if err := a.Install("", resmodel.NewReservation()); err == nil {
		t.Fatal("empty tenant accepted")
	}
	bad := resmodel.NewReservation()
	bad.Add("zz->qq", 5)
	if err := a.Install("kv", bad); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestRemoveReleasesBandwidth(t *testing.T) {
	a, fab, e, kv, ml, p := twoFlowLine(t, Strict)
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	_ = a.Install("kv", res)
	_ = a.Start()
	e.RunFor(100 * simtime.Microsecond)
	if float64(ml.Rate()) > 20.1 {
		t.Fatal("precondition failed")
	}
	a.Remove("kv")
	e.RunFor(100 * simtime.Microsecond)
	if r := float64(ml.Rate()); r < 49 {
		t.Fatalf("after removal ml rate %v, want ~50 fair share", r)
	}
	if fab.CapCount() != 0 && float64(kv.Rate()) < 49 {
		t.Fatalf("stale caps after removal: %d caps, kv %v", fab.CapCount(), kv.Rate())
	}
	a.Remove("kv") // idempotent
}

func TestGuaranteedAndFreeMap(t *testing.T) {
	a, _, _, _, _, p := twoFlowLine(t, Strict)
	res := resmodel.NewReservation()
	res.AddPipe(p, 30)
	_ = a.Install("kv", res)
	g := a.Guaranteed("kv")
	if g.Rate(p.Links[0].ID) != 30 {
		t.Fatalf("guaranteed %v", g.Rate(p.Links[0].ID))
	}
	// Merging accumulates.
	_ = a.Install("kv", res)
	if a.Guaranteed("kv").Rate(p.Links[0].ID) != 60 {
		t.Fatal("install did not merge")
	}
	free := a.FreeMap()
	if free[p.Links[0].ID] != 40 {
		t.Fatalf("free %v, want 40", free[p.Links[0].ID])
	}
	capm := a.CapacityMap()
	if capm[p.Links[0].ID] != 100 {
		t.Fatalf("capacity %v", capm[p.Links[0].ID])
	}
	if a.Guaranteed("nobody").Total() != 0 {
		t.Fatal("unknown tenant has guarantees")
	}
}

func TestSystemTenantNeverCapped(t *testing.T) {
	a, fab, e, _, _, p := twoFlowLine(t, Strict)
	sys := &fabric.Flow{Tenant: fabric.SystemTenant, Path: p}
	_ = fab.AddFlow(sys)
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	_ = a.Install("kv", res)
	_ = a.Start()
	e.RunFor(100 * simtime.Microsecond)
	if _, ok := fab.TenantCap(p.Links[0].ID, fabric.SystemTenant); ok {
		t.Fatal("system tenant was capped")
	}
}

func TestAdjustmentLoopRuns(t *testing.T) {
	a, _, e, _, _, p := twoFlowLine(t, WorkConserving)
	res := resmodel.NewReservation()
	res.AddPipe(p, 10)
	_ = a.Install("kv", res)
	_ = a.Start()
	if err := a.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	e.RunFor(simtime.Millisecond)
	// 1ms / 10us = 100 ticks plus install passes.
	if a.Adjustments() < 100 {
		t.Fatalf("adjustments %d, want >= 100", a.Adjustments())
	}
	a.Stop()
	n := a.Adjustments()
	e.RunFor(simtime.Millisecond)
	if a.Adjustments() != n {
		t.Fatal("adjustments after Stop")
	}
	if a.Mode() != WorkConserving {
		t.Fatal("mode accessor wrong")
	}
}

// TestFreeMapDeterministicAcrossMapOrder is the regression test for
// the chaos harness's first determinism find: FreeMap accumulated
// guarantee subtractions in Go map iteration order, and the four rates
// below produce sums that differ in the last ulp depending on
// subtraction order. The scheduler feeds FreeMap into admission
// decisions, so an order-dependent ulp is enough to make a replayed
// journal diverge from the recorded run. Repeated calls must be
// bitwise identical.
func TestFreeMapDeterministicAcrossMapOrder(t *testing.T) {
	e := simtime.NewEngine(3)
	topo := topology.New("fat-line")
	topo.MustAddComponent("a", topology.KindNIC, 0)
	topo.MustAddComponent("b", topology.KindDIMM, 0)
	topo.MustAddLink(topology.LinkSpec{A: "a", B: "b", Class: topology.ClassIntraSocket, Capacity: 2e9, BaseLatency: 10})
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	a, err := New(fab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	link := topo.Links()[0].ID
	// Order-sensitive in float64: different subtraction orders of
	// these four rates from 2e9 yield three distinct sums.
	rates := []topology.Rate{
		284946347.15323985, 286362432.1918807, 376668485.82092476, 388312247.45492679,
	}
	for i, r := range rates {
		res := resmodel.NewReservation()
		res.Add(link, r)
		if err := a.Install(fabric.TenantID(fmt.Sprintf("t%d", i)), res); err != nil {
			t.Fatal(err)
		}
	}
	want := a.FreeMap()[link]
	for i := 0; i < 400; i++ {
		if got := a.FreeMap()[link]; got != want {
			t.Fatalf("FreeMap call %d returned %.17g, first call returned %.17g", i, float64(got), float64(want))
		}
	}
	tenants := a.GuaranteedTenants()
	if len(tenants) != 4 || tenants[0] != "t0" || tenants[3] != "t3" {
		t.Fatalf("GuaranteedTenants = %v", tenants)
	}
}

// TestWorkConservingDecayReconvergesUnderChurn covers the ×0.7
// multiplicative back-off: after a borrow phase, a returning
// guaranteed tenant must reclaim its guarantee within a bounded number
// of adjust periods even while bystander churn keeps perturbing the
// baseline split and transiently reopening slack (which flips the
// arbiter between its lend and decay branches).
func TestWorkConservingDecayReconvergesUnderChurn(t *testing.T) {
	a, fab, e, kv, _, p := twoFlowLine(t, WorkConserving)
	res := resmodel.NewReservation()
	res.AddPipe(p, 80)
	if err := a.Install("kv", res); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	// Borrow phase: kv idles at 1 B/s, the ml bystander inflates its
	// cap well past its 20 B/s leftover share.
	_ = fab.SetDemand(kv, 1)
	e.RunFor(500 * simtime.Microsecond)
	if c, ok := fab.TenantCap(p.Links[0].ID, "ml"); !ok || float64(c) < 50 {
		t.Fatalf("borrow phase did not inflate ml cap: %v (ok=%v)", c, ok)
	}
	// Churn: a third tenant's flow appears and disappears every 30 us,
	// reshuffling the bystander set mid-reconvergence.
	var churn *fabric.Flow
	e.Every(30*simtime.Microsecond, func() {
		if churn == nil {
			churn = &fabric.Flow{Tenant: "churn", Path: p}
			_ = fab.AddFlow(churn)
		} else {
			fab.RemoveFlow(churn)
			churn = nil
		}
	})
	// Reconvergence phase: kv's demand returns. The decay must walk
	// ml's borrowed cap back toward its baseline within a bounded
	// number of adjust periods (generously 50 of the 10 us periods).
	_ = fab.SetDemand(kv, 0)
	const periods = 50
	converged := -1
	for i := 0; i < 2*periods; i++ {
		e.RunFor(10 * simtime.Microsecond)
		if float64(kv.Rate()) >= 79 {
			converged = i + 1
			break
		}
	}
	if converged < 0 {
		t.Fatalf("guaranteed tenant never reconverged: rate %v after %d periods", kv.Rate(), 2*periods)
	}
	if converged > periods {
		t.Fatalf("reconvergence took %d adjust periods, want <= %d", converged, periods)
	}
	// The reclaimed guarantee must then hold while churn continues.
	e.RunFor(500 * simtime.Microsecond)
	if r := float64(kv.Rate()); r < 79 {
		t.Fatalf("guarantee lost again under churn: %v", r)
	}
}

func BenchmarkArbitrationPass(b *testing.B) {
	e := simtime.NewEngine(9)
	topo := topology.DGXStyle()
	fab := fabric.New(topo, e, fabric.DefaultConfig())
	a, _ := New(fab, DefaultConfig())
	// 8 tenants with pipes over GPU links.
	for i := 0; i < 8; i++ {
		gpu := topology.CompID([]string{"gpu0", "gpu1", "gpu2", "gpu3", "gpu4", "gpu5", "gpu6", "gpu7"}[i])
		p, err := topo.ShortestPath(gpu, "socket0.dimm0_0")
		if err != nil {
			b.Fatal(err)
		}
		res := resmodel.NewReservation()
		res.AddPipe(p, topology.GBps(2))
		tn := fabric.TenantID(gpu)
		_ = fab.AddFlow(&fabric.Flow{Tenant: tn, Path: p})
		if err := a.Install(tn, res); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.apply()
	}
}
