package pcie

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestRawRates(t *testing.T) {
	// Gen3 x16: 8 GT/s * 16 * 128/130 = 126.03 Gb/s.
	p := LinkParams{Gen: Gen3, Lanes: 16, MaxPayload: 256, MaxReadReq: 512, RCB: 128}
	raw, err := p.RawRate()
	if err != nil {
		t.Fatal(err)
	}
	if g := raw.GbpsValue(); math.Abs(g-126.03) > 0.1 {
		t.Fatalf("Gen3 x16 raw %v Gb/s, want ~126", g)
	}
	// Gen4 x16 doubles it; this is the "~256 Gbps" of Figure 1.
	p.Gen = Gen4
	raw, _ = p.RawRate()
	if g := raw.GbpsValue(); math.Abs(g-252.06) > 0.2 {
		t.Fatalf("Gen4 x16 raw %v Gb/s, want ~252", g)
	}
	p.Gen = Gen5
	raw, _ = p.RawRate()
	if g := raw.GbpsValue(); math.Abs(g-504.1) > 0.5 {
		t.Fatalf("Gen5 x16 raw %v Gb/s, want ~504", g)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultGen4x16()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []LinkParams{
		{Gen: 2, Lanes: 16, MaxPayload: 256, MaxReadReq: 512, RCB: 128},
		{Gen: Gen4, Lanes: 3, MaxPayload: 256, MaxReadReq: 512, RCB: 128},
		{Gen: Gen4, Lanes: 16, MaxPayload: 100, MaxReadReq: 512, RCB: 128},
		{Gen: Gen4, Lanes: 16, MaxPayload: 256, MaxReadReq: 128, RCB: 128},
		{Gen: Gen4, Lanes: 16, MaxPayload: 256, MaxReadReq: 512, RCB: 32},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, c)
		}
	}
}

func TestWriteEfficiencyAnchors(t *testing.T) {
	p := DefaultGen4x16()
	eff := p.WriteEfficiency()
	// 256/(256+20) * 0.95 = 0.881.
	if math.Abs(eff-0.881) > 0.005 {
		t.Fatalf("256B write efficiency %v, want ~0.881", eff)
	}
	p.MaxPayload = 128
	if e := p.WriteEfficiency(); e >= eff {
		t.Fatalf("smaller payload efficiency %v not below %v", e, eff)
	}
	p.MaxPayload = 512
	if e := p.WriteEfficiency(); e <= eff {
		t.Fatalf("larger payload efficiency %v not above %v", e, eff)
	}
}

func TestReadBelowWriteEfficiency(t *testing.T) {
	p := DefaultGen4x16()
	if p.ReadEfficiency() >= p.WriteEfficiency() {
		t.Fatalf("read efficiency %v should be below write %v (per-RCB completion headers)",
			p.ReadEfficiency(), p.WriteEfficiency())
	}
}

func TestEffectiveRatesMatchFigure1(t *testing.T) {
	// Effective Gen4 x16 write bandwidth should land in the paper's
	// PCIe envelope (~256 Gb/s raw, ~28 GB/s effective).
	p := DefaultGen4x16()
	w, err := p.EffectiveWriteRate()
	if err != nil {
		t.Fatal(err)
	}
	if g := w.GBpsValue(); g < 25 || g > 30 {
		t.Fatalf("effective write rate %v GB/s, want 25-30", g)
	}
	r, err := p.EffectiveReadRate()
	if err != nil {
		t.Fatal(err)
	}
	if r >= w {
		t.Fatal("read rate above write rate")
	}
}

func TestReadWindowLimit(t *testing.T) {
	p := DefaultGen4x16()
	// 32 outstanding 512B reads over 1us RTT = 16.384 GB/s.
	lim, err := p.ReadWindowLimit(32, simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if g := lim.GBpsValue(); math.Abs(g-16.384) > 0.01 {
		t.Fatalf("window limit %v GB/s, want 16.384", g)
	}
	// Longer RTT lowers the ceiling (the loopback effect).
	lim2, _ := p.ReadWindowLimit(32, 2*simtime.Microsecond)
	if lim2 >= lim {
		t.Fatal("doubling RTT did not lower window limit")
	}
	if _, err := p.ReadWindowLimit(0, simtime.Microsecond); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := p.ReadWindowLimit(1, 0); err == nil {
		t.Fatal("zero rtt accepted")
	}
}

func TestTLPCountAndWireBytes(t *testing.T) {
	p := DefaultGen4x16()
	if n := p.TLPCount(0); n != 0 {
		t.Fatalf("TLPCount(0) = %d", n)
	}
	if n := p.TLPCount(1); n != 1 {
		t.Fatalf("TLPCount(1) = %d", n)
	}
	if n := p.TLPCount(256); n != 1 {
		t.Fatalf("TLPCount(256) = %d", n)
	}
	if n := p.TLPCount(257); n != 2 {
		t.Fatalf("TLPCount(257) = %d", n)
	}
	if w := p.WireBytes(256); w != 256+20 {
		t.Fatalf("WireBytes(256) = %d, want 276", w)
	}
}

// Property: wire bytes are monotone in payload and overhead fraction
// shrinks as payload grows.
func TestPropertyWireBytesMonotone(t *testing.T) {
	p := DefaultGen4x16()
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		if x > y {
			x, y = y, x
		}
		return p.WireBytes(x) <= p.WireBytes(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: efficiency is always in (0,1) for valid configurations.
func TestPropertyEfficiencyBounded(t *testing.T) {
	payloads := []int{128, 256, 512, 1024}
	reqs := []int{512, 1024, 2048, 4096}
	rcbs := []int{64, 128}
	for _, mp := range payloads {
		for _, rr := range reqs {
			if rr < mp {
				continue
			}
			for _, rcb := range rcbs {
				p := LinkParams{Gen: Gen4, Lanes: 16, MaxPayload: mp, MaxReadReq: rr, RCB: rcb}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				for _, e := range []float64{p.WriteEfficiency(), p.ReadEfficiency()} {
					if e <= 0 || e >= 1 {
						t.Fatalf("efficiency %v out of (0,1) for %+v", e, p)
					}
				}
			}
		}
	}
}
