// Package pcie models PCI Express protocol behaviour at the level
// needed for intra-host network management: raw lane rates per
// generation, transaction-layer-packet (TLP) efficiency as a function
// of maximum payload size, read-request/completion overhead, and the
// throughput ceiling imposed by a device's outstanding-read window.
//
// The model follows the methodology of Neugebauer et al.,
// "Understanding PCIe performance for end host networking"
// (SIGCOMM '18), which the paper cites as the measurement basis for
// its Figure 1 PCIe numbers.
package pcie

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// Gen identifies a PCIe generation.
type Gen int

// Supported PCIe generations.
const (
	Gen3 Gen = 3
	Gen4 Gen = 4
	Gen5 Gen = 5
)

// perLaneGbps returns the post-encoding per-lane data rate in Gb/s.
// Gen3 runs 8 GT/s with 128b/130b encoding; each later generation
// doubles the transfer rate.
func (g Gen) perLaneGbps() (float64, error) {
	switch g {
	case Gen3:
		return 8.0 * 128 / 130, nil
	case Gen4:
		return 16.0 * 128 / 130, nil
	case Gen5:
		return 32.0 * 128 / 130, nil
	}
	return 0, fmt.Errorf("pcie: unsupported generation %d", int(g))
}

// LinkParams describes one PCIe link's static configuration.
type LinkParams struct {
	Gen   Gen
	Lanes int // 1, 2, 4, 8, 16
	// MaxPayload is the negotiated maximum TLP payload in bytes
	// (typically 128, 256 or 512).
	MaxPayload int
	// MaxReadReq is the maximum read request size in bytes (typically
	// 512-4096).
	MaxReadReq int
	// RCB is the read completion boundary: completions for one read
	// arrive in chunks of at most this many bytes (64 or 128).
	RCB int
}

// DefaultGen4x16 returns the configuration used by the topology
// presets: PCIe 4.0 x16, 256-byte max payload, 512-byte read requests,
// 128-byte completion boundary.
func DefaultGen4x16() LinkParams {
	return LinkParams{Gen: Gen4, Lanes: 16, MaxPayload: 256, MaxReadReq: 512, RCB: 128}
}

// Validate checks the parameters are self-consistent.
func (p LinkParams) Validate() error {
	if _, err := p.Gen.perLaneGbps(); err != nil {
		return err
	}
	switch p.Lanes {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("pcie: invalid lane count %d", p.Lanes)
	}
	if p.MaxPayload < 64 || p.MaxPayload > 4096 || p.MaxPayload&(p.MaxPayload-1) != 0 {
		return fmt.Errorf("pcie: invalid max payload %d", p.MaxPayload)
	}
	if p.MaxReadReq < p.MaxPayload || p.MaxReadReq > 4096 {
		return fmt.Errorf("pcie: invalid max read request %d", p.MaxReadReq)
	}
	if p.RCB != 64 && p.RCB != 128 {
		return fmt.Errorf("pcie: invalid RCB %d", p.RCB)
	}
	return nil
}

// RawRate returns the link's post-encoding raw data rate.
func (p LinkParams) RawRate() (topology.Rate, error) {
	perLane, err := p.Gen.perLaneGbps()
	if err != nil {
		return 0, err
	}
	return topology.Gbps(perLane * float64(p.Lanes)), nil
}

// Protocol overhead constants, per TLP on the wire (Gen3+ framing):
// 12-byte three-DW header + 4-byte LCRC + 4-byte framing/sequence,
// plus a DLLP tax (ACKs and flow-control updates) of about 5%.
const (
	tlpHeaderBytes  = 12
	tlpLCRCBytes    = 4
	tlpFramingBytes = 4
	tlpOverhead     = tlpHeaderBytes + tlpLCRCBytes + tlpFramingBytes
	dllpTax         = 0.05
)

// WriteEfficiency returns the fraction of raw bandwidth available to
// posted-write payload when transfers are cut into MaxPayload-sized
// TLPs. For a 256-byte payload this is about 0.88.
func (p LinkParams) WriteEfficiency() float64 {
	mp := float64(p.MaxPayload)
	return mp / (mp + tlpOverhead) * (1 - dllpTax)
}

// ReadEfficiency returns the payload fraction for reads: each
// MaxReadReq-byte request costs one payload-less request TLP upstream
// and ceil(MaxReadReq/RCB) completion TLPs downstream, each completion
// carrying its own header.
func (p LinkParams) ReadEfficiency() float64 {
	completions := (p.MaxReadReq + p.RCB - 1) / p.RCB
	payload := float64(p.MaxReadReq)
	wire := payload + float64(completions*tlpOverhead)
	return payload / wire * (1 - dllpTax)
}

// EffectiveWriteRate is RawRate derated by WriteEfficiency.
func (p LinkParams) EffectiveWriteRate() (topology.Rate, error) {
	raw, err := p.RawRate()
	if err != nil {
		return 0, err
	}
	return topology.Rate(float64(raw) * p.WriteEfficiency()), nil
}

// EffectiveReadRate is RawRate derated by ReadEfficiency.
func (p LinkParams) EffectiveReadRate() (topology.Rate, error) {
	raw, err := p.RawRate()
	if err != nil {
		return 0, err
	}
	return topology.Rate(float64(raw) * p.ReadEfficiency()), nil
}

// ReadWindowLimit returns the throughput ceiling from a finite
// outstanding-read window: a requester with `outstanding` read
// requests of MaxReadReq bytes in flight over a round-trip latency rtt
// can at most stream outstanding*MaxReadReq bytes per rtt. This is the
// mechanism behind "RDMA loopback traffic can exhaust the PCIe
// bandwidth": loopback doubles the PCIe crossings and halves the
// effective window.
func (p LinkParams) ReadWindowLimit(outstanding int, rtt simtime.Duration) (topology.Rate, error) {
	if outstanding <= 0 {
		return 0, fmt.Errorf("pcie: non-positive outstanding window %d", outstanding)
	}
	if rtt <= 0 {
		return 0, fmt.Errorf("pcie: non-positive rtt %v", rtt)
	}
	bytes := float64(outstanding * p.MaxReadReq)
	return topology.Rate(bytes / rtt.Seconds()), nil
}

// TLPCount returns how many TLPs a posted write of n bytes produces.
func (p LinkParams) TLPCount(n int64) int64 {
	if n <= 0 {
		return 0
	}
	mp := int64(p.MaxPayload)
	return (n + mp - 1) / mp
}

// WireBytes returns the on-wire byte cost of writing n payload bytes,
// including per-TLP overhead (excluding the DLLP tax, which is a rate
// effect rather than a per-transfer one).
func (p LinkParams) WireBytes(n int64) int64 {
	return n + p.TLPCount(n)*tlpOverhead
}
