package chaos

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// Violation is one invariant breach. Seq is the journal position after
// which the breach was observed, so (config, journal prefix through
// Seq) deterministically reproduces it.
type Violation struct {
	// Invariant names the broken property: "link-capacity",
	// "byte-conservation", "guarantee-cap", "work-conservation",
	// "snapshot-restore", "anomaly-localize", "anomaly-clear" or
	// "sse-consistency".
	Invariant string `json:"invariant"`
	// At is the virtual time of the failing check.
	At simtime.Time `json:"at_ns"`
	// Seq indexes the last journal entry applied before the check.
	Seq int `json:"seq"`
	// Subject is the link/tenant/pair the breach is about.
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail"`
	// Host is set in fleet mode.
	Host string `json:"host,omitempty"`
}

func (v *Violation) Error() string {
	host := ""
	if v.Host != "" {
		host = " host=" + v.Host
	}
	return fmt.Sprintf("chaos: %s violated at %v (entry %d)%s: %s [%s]",
		v.Invariant, v.At, v.Seq, host, v.Detail, v.Subject)
}

// OracleConfig tunes the invariant checker's tolerances. Tolerances
// exist because the fabric does float accumulation in a fixed order:
// the invariants are exact up to accumulated rounding, not bitwise.
type OracleConfig struct {
	// CapacitySlack is the relative tolerance on allocated rate vs
	// effective capacity.
	CapacitySlack float64
	// BytesRelSlack / BytesAbsSlack bound |total - sum(per-tenant)|
	// byte accounting drift per link.
	BytesRelSlack float64
	BytesAbsSlack float64
	// GuaranteeSlack is the relative tolerance on installed caps vs
	// guarantees.
	GuaranteeSlack float64
	// WCSlackFrac: a link counts as having idle capacity when slack
	// exceeds this fraction of capacity.
	WCSlackFrac float64
	// WCGracePeriods is how many arbiter adjust periods a
	// (link has slack) && (tenant throttled at its cap with unmet
	// demand) condition may persist before it is a work-conservation
	// violation — the lend loop needs several periods to grow caps.
	WCGracePeriods int
	// DetectRoundsMargin is added to the detector's ConsecutiveBad to
	// form the localization deadline, in heartbeat rounds.
	DetectRoundsMargin int
	// ClearRoundsMargin is how many heartbeat rounds after the last
	// restore every pair must have stopped reporting lost probes.
	ClearRoundsMargin int
	// SnapshotEvery is the snapshot->restore check cadence in injected
	// events (journal entries during replay checking). Zero disables.
	SnapshotEvery int
}

// DefaultOracleConfig returns the tolerances used by `ihscenario fuzz`
// and the chaos smoke tests.
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{
		CapacitySlack:      1e-6,
		BytesRelSlack:      1e-6,
		BytesAbsSlack:      1.0,
		GuaranteeSlack:     1e-9,
		WCSlackFrac:        0.05,
		WCGracePeriods:     50,
		DetectRoundsMargin: 4,
		ClearRoundsMargin:  3,
		SnapshotEvery:      64,
	}
}

// Oracle checks cross-layer invariants over one live manager. It is
// driven with the same journal entries the session records (observe),
// plus periodic Check calls; both the live chaos engine and the
// replay checker feed it identically, which is what makes violations
// reproducible from (config, journal) alone.
type Oracle struct {
	mgr *core.Manager
	cfg OracleConfig

	// failedLinks mirrors the injected hard-failure set (journal
	// ground truth, independent of the fabric under test).
	failedLinks map[topology.LinkID]bool
	// failExpect maps a failed link to the deadline by which the
	// anomaly platform must have it (or its reverse) in Suspects().
	failExpect map[topology.LinkID]simtime.Time
	// allClearAt is when failedLinks last became empty.
	allClearAt simtime.Time
	// wcSince tracks, per link, when the work-conservation breach
	// condition was first observed (zero when currently absent).
	wcSince map[topology.LinkID]simtime.Time
}

// NewOracle builds an oracle over the manager.
func NewOracle(mgr *core.Manager, cfg OracleConfig) *Oracle {
	return &Oracle{
		mgr:         mgr,
		cfg:         cfg,
		failedLinks: make(map[topology.LinkID]bool),
		failExpect:  make(map[topology.LinkID]simtime.Time),
		wcSince:     make(map[topology.LinkID]simtime.Time),
	}
}

// votingActive reports whether the heartbeat detector is armed: it
// only votes after its calibration rounds.
func (o *Oracle) votingActive() bool {
	plat := o.mgr.Anomaly()
	return plat != nil && plat.Rounds() > plat.ConfigUsed().CalibrationRounds
}

// ObserveEntry updates the oracle's ground-truth model from one
// journal entry, arming and cancelling anomaly expectations.
func (o *Oracle) ObserveEntry(e snap.Entry) {
	now := o.mgr.Engine().Now()
	switch e.Kind {
	case snap.KindFail:
		link := topology.LinkID(e.Link)
		o.failedLinks[link] = true
		plat := o.mgr.Anomaly()
		if plat != nil && o.votingActive() && plat.CoversLink(link) {
			acfg := plat.ConfigUsed()
			rounds := acfg.ConsecutiveBad + o.cfg.DetectRoundsMargin
			o.failExpect[link] = now.Add(simtime.Duration(rounds) * acfg.Period)
		}
	case snap.KindRestoreLink:
		link := topology.LinkID(e.Link)
		if o.failedLinks[link] {
			delete(o.failedLinks, link)
			if len(o.failedLinks) == 0 {
				o.allClearAt = now
			}
		}
		delete(o.failExpect, link)
	}
}

// Check runs every invariant against the current state and returns
// the breaches found (usually none). Callers stop at the first
// violation; Check keeps internal state (expectation deadlines,
// work-conservation streaks) either way.
func (o *Oracle) Check(seq int) []Violation {
	now := o.mgr.Engine().Now()
	var out []Violation
	add := func(invariant, subject, detail string) {
		out = append(out, Violation{
			Invariant: invariant, At: now, Seq: seq,
			Subject: subject, Detail: detail,
		})
	}

	fab := o.mgr.Fabric()
	links := fab.AllLinkStats()
	for _, ls := range links {
		// Invariant 1: allocated rate never exceeds effective capacity.
		limit := float64(ls.Capacity)*(1+o.cfg.CapacitySlack) + 1
		if float64(ls.CurrentRate) > limit {
			add("link-capacity", string(ls.Link),
				fmt.Sprintf("allocated %.6g B/s exceeds capacity %.6g B/s", float64(ls.CurrentRate), float64(ls.Capacity)))
		}
		// Invariant 2: byte accounting conserves — settled link bytes
		// equal the sum of per-tenant usage.
		var sum float64
		for _, t := range sortedTenantKeys(ls.TenantBytes) {
			sum += ls.TenantBytes[t]
		}
		drift := math.Abs(ls.TotalBytes - sum)
		if drift > math.Max(o.cfg.BytesAbsSlack, o.cfg.BytesRelSlack*ls.TotalBytes) {
			add("byte-conservation", string(ls.Link),
				fmt.Sprintf("link total %.6g bytes vs tenant sum %.6g (drift %.6g)", ls.TotalBytes, sum, drift))
		}
	}

	o.checkGuarantees(add)
	o.checkWorkConservation(now, links, add)
	o.checkAnomaly(now, add)
	return out
}

// checkGuarantees: invariant 3a — in both modes, an installed cap for
// a guaranteed (tenant, link) must never dip below the guarantee
// (work-conserving decay clamps at the baseline; strict pins to it).
func (o *Oracle) checkGuarantees(add func(inv, subj, detail string)) {
	arb := o.mgr.Arbiter()
	fab := o.mgr.Fabric()
	for _, t := range arb.GuaranteedTenants() {
		res := arb.Guaranteed(t)
		for _, l := range res.LinkIDs() {
			want := res.Links[l]
			got, ok := fab.TenantCap(l, t)
			if ok && float64(got) < float64(want)*(1-o.cfg.GuaranteeSlack) {
				add("guarantee-cap", string(l)+"/"+string(t),
					fmt.Sprintf("installed cap %.6g B/s below guarantee %.6g B/s", float64(got), float64(want)))
			}
		}
	}
}

// checkWorkConservation: invariant 3b — in work-conserving mode, a
// link must not sit on idle capacity while some tenant is pinned at
// its cap with unmet demand. The lend loop takes several adjust
// periods to grow caps, so this is an eventual property: the breach
// condition must not persist beyond WCGracePeriods.
func (o *Oracle) checkWorkConservation(now simtime.Time, links []fabric.LinkStats, add func(inv, subj, detail string)) {
	arb := o.mgr.Arbiter()
	if arb.Mode() != arbiter.WorkConserving {
		return
	}
	fab := o.mgr.Fabric()
	// Unmet demand per (link, tenant), from settled flow stats.
	type lt struct {
		link   topology.LinkID
		tenant fabric.TenantID
	}
	unmet := make(map[lt]bool)
	for _, fs := range fab.AllFlowStats() {
		wants := fs.Demand == 0 || float64(fs.Rate) < float64(fs.Demand)*0.98
		if !wants {
			continue
		}
		for _, l := range fs.Links {
			unmet[lt{l, fs.Tenant}] = true
		}
	}
	// Only links the arbiter manages (those with guarantees) have
	// caps to pin anyone at.
	managed := make(map[topology.LinkID]bool)
	for _, t := range arb.GuaranteedTenants() {
		for _, l := range arb.Guaranteed(t).LinkIDs() {
			managed[l] = true
		}
	}
	grace := simtime.Duration(o.cfg.WCGracePeriods) * o.mgr.Options().Arbiter.AdjustPeriod
	for _, ls := range links {
		if !managed[ls.Link] || ls.Failed {
			delete(o.wcSince, ls.Link)
			continue
		}
		slack := float64(ls.Capacity) - float64(ls.CurrentRate)
		breach := ""
		if slack > o.cfg.WCSlackFrac*float64(ls.Capacity) {
			caps := fab.CapsOn(ls.Link)
			for _, t := range sortedTenantKeys(caps) {
				c := caps[t]
				if c <= 0 || t == fabric.SystemTenant {
					continue
				}
				rate := fab.TenantRateOn(ls.Link, t)
				if float64(rate) >= 0.98*float64(c) && unmet[lt{ls.Link, t}] {
					breach = string(t)
					break
				}
			}
		}
		if breach == "" {
			delete(o.wcSince, ls.Link)
			continue
		}
		since, seen := o.wcSince[ls.Link]
		if !seen {
			o.wcSince[ls.Link] = now
			continue
		}
		if now.Sub(since) > grace {
			add("work-conservation", string(ls.Link)+"/"+breach,
				fmt.Sprintf("%.1f%% of capacity idle for %v while tenant is rate-limited at its cap with unmet demand",
					100*(float64(ls.Capacity)-float64(ls.CurrentRate))/float64(ls.Capacity), now.Sub(since)))
			delete(o.wcSince, ls.Link)
		}
	}
}

// checkAnomaly: invariant 5 — eventual convergence of the detector.
// (a) every covered hard failure must show up in the localization
// ranking within its deadline; (b) once every failure is restored, no
// pair may keep reporting lost heartbeats past a small margin.
func (o *Oracle) checkAnomaly(now simtime.Time, add func(inv, subj, detail string)) {
	plat := o.mgr.Anomaly()
	if plat == nil || !o.votingActive() {
		return
	}
	if len(o.failExpect) > 0 {
		suspect := make(map[topology.LinkID]bool)
		for _, s := range plat.Suspects() {
			suspect[s.Link] = true
		}
		topo := o.mgr.Topology()
		for _, link := range sortedLinkKeys(o.failExpect) {
			deadline := o.failExpect[link]
			rev := topology.LinkID("")
			if l := topo.Link(link); l != nil {
				rev = l.Reverse
			}
			if suspect[link] || (rev != "" && suspect[rev]) {
				delete(o.failExpect, link) // localized; expectation met
				continue
			}
			if now > deadline {
				add("anomaly-localize", string(link),
					fmt.Sprintf("hard failure injected, link absent from Suspects() past deadline %v", deadline))
				delete(o.failExpect, link)
			}
		}
	}
	// Clear path: with no failed link anywhere, lost heartbeats must
	// cease within ClearRoundsMargin rounds of the last restore.
	if len(o.failedLinks) == 0 && o.allClearAt > 0 {
		margin := simtime.Duration(o.cfg.ClearRoundsMargin) * plat.ConfigUsed().Period
		if now.Sub(o.allClearAt) >= margin {
			for _, ps := range plat.PairStats() {
				if ps.LastLost {
					add("anomaly-clear", ps.Pair.String(),
						fmt.Sprintf("pair still reporting lost heartbeats %v after last restore", now.Sub(o.allClearAt)))
				}
			}
		}
	}
}

// CheckSnapshot runs the mid-chaos snapshot->restore invariant: the
// session snapshots to memory and Restore must replay the journal to a
// bit-identical state hash (Restore itself verifies the hash).
func (o *Oracle) CheckSnapshot(sess *snap.Session, seq int) *Violation {
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		return &Violation{
			Invariant: "snapshot-restore", At: o.mgr.Engine().Now(), Seq: seq,
			Detail: "snapshot failed: " + err.Error(),
		}
	}
	if _, err := snap.Restore(&buf); err != nil {
		return &Violation{
			Invariant: "snapshot-restore", At: o.mgr.Engine().Now(), Seq: seq,
			Detail: "restore diverged: " + err.Error(),
		}
	}
	return nil
}

func sortedTenantKeys[V any](m map[fabric.TenantID]V) []fabric.TenantID {
	out := make([]fabric.TenantID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedLinkKeys[V any](m map[topology.LinkID]V) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
