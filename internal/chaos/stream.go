package chaos

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/snap"
)

// streamWatcher subscribes to the session's live event bus for the
// whole chaos run and checks the "sse-consistency" invariant: what a
// streaming observer sees must agree with the journal's ground truth.
//
//   - bus sequence numbers are strictly increasing (an observer can
//     order events without trusting arrival order);
//   - nothing vanishes silently: delivered + counted drops equals the
//     bus's published total;
//   - every span carried by a streamed event names a journaled command
//     (or is empty, for boot-time events before the first command) —
//     the stream never attributes an effect to a command that was
//     never recorded.
type streamWatcher struct {
	bus       *obs.Bus
	sub       *obs.Subscription
	baseSeq   uint64 // events published before we subscribed
	lastSeq   uint64
	delivered uint64
	spans     map[string]uint64 // streamed span -> event count
}

// newStreamWatcher subscribes to the bus (nil-safe: tracing disabled
// means every check passes vacuously).
func newStreamWatcher(bus *obs.Bus) *streamWatcher {
	w := &streamWatcher{bus: bus, spans: make(map[string]uint64)}
	if bus != nil {
		// A deliberately bounded ring: chaos runs publish more events
		// than this, so the drop-accounting arm of the invariant is
		// exercised, not just the happy path.
		w.baseSeq = bus.Seq()
		w.sub = bus.Subscribe(1 << 12)
	}
	return w
}

// drain consumes pending events and checks sequence monotonicity.
// Call it with the simulation idle (the chaos loop is single-threaded,
// so a post-advance drain sees everything the advance published).
func (w *streamWatcher) drain(at simtime.Time, seq int) *Violation {
	if w.sub == nil {
		return nil
	}
	for _, be := range w.sub.Drain() {
		if be.Seq <= w.lastSeq {
			return &Violation{
				Invariant: "sse-consistency", At: at, Seq: seq,
				Detail: fmt.Sprintf("bus sequence not increasing: %d after %d", be.Seq, w.lastSeq),
			}
		}
		w.lastSeq = be.Seq
		w.delivered++
		w.spans[be.Event.Span]++
	}
	return nil
}

// finish drains one last time, reconciles delivery accounting against
// the bus, and checks every streamed span against the journal.
func (w *streamWatcher) finish(j snap.Journal, at simtime.Time, seq int) *Violation {
	if w.sub == nil {
		return nil
	}
	if v := w.drain(at, seq); v != nil {
		return v
	}
	published, dropped := w.bus.Seq()-w.baseSeq, w.sub.Dropped()
	if w.delivered+dropped != published {
		return &Violation{
			Invariant: "sse-consistency", At: at, Seq: seq,
			Detail: fmt.Sprintf("event accounting broken: %d delivered + %d dropped != %d published",
				w.delivered, dropped, published),
		}
	}
	journaled := make(map[string]bool, j.Len())
	for _, e := range j.Entries {
		journaled[e.Span] = true
	}
	for span, n := range w.spans {
		if span == "" || journaled[span] {
			continue
		}
		return &Violation{
			Invariant: "sse-consistency", At: at, Seq: seq, Subject: span,
			Detail: fmt.Sprintf("%d streamed events carry span %q, which names no journal entry", n, span),
		}
	}
	return nil
}
