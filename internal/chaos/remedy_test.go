package chaos

import (
	"testing"

	"repro/internal/snap"
)

func vsCfg(seed int64) Config {
	cfg := shortCfg(seed)
	cfg.VsController = true
	return cfg
}

// TestVsControllerCleanAndRemediated: the standing chaos-vs-controller
// mode must keep every oracle invariant while healing, and remediate
// eligible faults within the deadline.
func TestVsControllerCleanAndRemediated(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res, err := Run(vsCfg(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: invariant violated while healing: %v", seed, res.Violation)
		}
		if res.Remedy == nil {
			t.Fatalf("seed %d: no remediation report", seed)
		}
		rep := res.Remedy
		if rep.Eligible > 0 && rep.Ratio() < 0.95 {
			t.Fatalf("seed %d: remediated %d/%d within %v (missed %v)",
				seed, rep.Remediated, rep.Eligible, rep.Deadline, rep.Missed)
		}
		if rep.Remediated > 0 && rep.MTTRp50Us <= 0 {
			t.Fatalf("seed %d: remediated without MTTR samples: %+v", seed, rep)
		}
	}
}

// TestVsControllerDeterministicJournal: same seed + same policy table
// must produce a byte-identical journal, remediation commands included.
func TestVsControllerDeterministicJournal(t *testing.T) {
	a, err := Run(vsCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(vsCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := journalJSON(t, a.Journal), journalJSON(t, b.Journal); ja != jb {
		t.Fatalf("same seed+policy produced different journals:\n%s\nvs\n%s", ja, jb)
	}
	if a.Remedy == nil || b.Remedy == nil || *aStats(a) != *aStats(b) {
		t.Fatalf("remediation reports diverged: %+v vs %+v", a.Remedy, b.Remedy)
	}
	// The remediation commands are journaled, so the vs-controller
	// journal must replay deterministically like any other.
	div, err := snap.CheckDeterminism(a.Config, a.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("vs-controller journal replays nondeterministically: %v", div)
	}
}

// aStats projects the comparable part of a report (Missed is a slice).
func aStats(r *Result) *[6]float64 {
	return &[6]float64{
		float64(r.Remedy.Incidents), float64(r.Remedy.Eligible),
		float64(r.Remedy.Remediated), float64(r.Remedy.Executed),
		r.Remedy.MTTRp50Us, r.Remedy.MTTRp99Us,
	}
}

// TestFleetVsControllerWorkerInvariance extends the PR 5 fleet
// assertion: with per-host controllers in the loop, every host's
// journal — remediation commands included — must be byte-identical
// across worker counts.
func TestFleetVsControllerWorkerInvariance(t *testing.T) {
	cfg := Config{
		Seed:         9,
		Events:       60,
		Preset:       "minimal",
		Hosts:        3,
		VsController: true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation != nil {
		t.Fatalf("fleet vs-controller violation: %v", a.Violation)
	}
	cfg.Workers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Violation != nil {
		t.Fatalf("fleet vs-controller violation (4 workers): %v", b.Violation)
	}
	if len(a.Journals) != cfg.Hosts || len(b.Journals) != cfg.Hosts {
		t.Fatalf("per-host journals missing: %d vs %d", len(a.Journals), len(b.Journals))
	}
	for i := range a.Journals {
		if ja, jb := journalJSON(t, a.Journals[i]), journalJSON(t, b.Journals[i]); ja != jb {
			t.Fatalf("host %d journal depends on worker count:\n%s\nvs\n%s", i, ja, jb)
		}
	}
	if a.FinalTime != b.FinalTime {
		t.Fatalf("fleet end time depends on worker count: %v vs %v", a.FinalTime, b.FinalTime)
	}
	if a.Remedy == nil || b.Remedy == nil || *aStats(a) != *aStats(b) {
		t.Fatalf("fleet remediation reports diverged: %+v vs %+v", a.Remedy, b.Remedy)
	}
}
