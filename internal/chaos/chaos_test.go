package chaos

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/simtime"
	"repro/internal/snap"
)

// shortCfg is the unit-test scale: the minimal preset with enough
// events to hit every op family. CI's chaos-smoke and the fuzz CLI
// run the full-scale sweeps.
func shortCfg(seed int64) Config {
	return Config{
		Seed:     seed,
		Events:   120,
		Duration: 6 * simtime.Millisecond,
		Preset:   "minimal",
	}
}

func journalJSON(t *testing.T, j snap.Journal) string {
	t.Helper()
	data, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal journal: %v", err)
	}
	return string(data)
}

func TestFuzzSeedsClean(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res, err := Run(shortCfg(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", seed, res.Violation)
		}
		if res.Events != 120 {
			t.Fatalf("seed %d: injected %d/120 events (rejected %d)", seed, res.Events, res.Rejected)
		}
		if res.SnapshotChecks == 0 {
			t.Fatalf("seed %d: snapshot invariant never exercised", seed)
		}
		if len(res.Counts) < 5 {
			t.Fatalf("seed %d: only %d op families fired: %v", seed, len(res.Counts), res.Counts)
		}
	}
}

func TestFuzzDeterministicJournal(t *testing.T) {
	a, err := Run(shortCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := journalJSON(t, a.Journal), journalJSON(t, b.Journal); ja != jb {
		t.Fatalf("same seed produced different journals:\n%s\nvs\n%s", ja, jb)
	}
	if a.FinalTime != b.FinalTime {
		t.Fatalf("same seed ended at different times: %v vs %v", a.FinalTime, b.FinalTime)
	}
}

// TestChaosJournalCheckDeterminism sweeps chaos journals through the
// snap determinism checker: replaying twice must agree hash-for-hash,
// covering monitor, anomaly, telemetry and vnet state under fault
// churn. Seed 3 is pinned as the regression fixture for the FreeMap
// map-iteration nondeterminism (arbiter.FreeMap now iterates
// guarantees in sorted order; with the old map-order iteration this
// sweep diverges).
func TestChaosJournalCheckDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		res, err := Run(shortCfg(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", seed, res.Violation)
		}
		div, err := snap.CheckDeterminism(res.Config, res.Journal)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil {
			t.Fatalf("seed %d: chaos journal replays nondeterministically: %v", seed, div)
		}
	}
}

// TestViolationReproAndMinimize forces a violation with a draconian
// oracle (negative byte slack makes every link "violate" immediately)
// and drives the full repro pipeline: the journal re-derives the same
// invariant, the minimizer shrinks it without losing it, and the
// artifact round-trips through disk.
func TestViolationReproAndMinimize(t *testing.T) {
	ocfg := DefaultOracleConfig()
	ocfg.BytesAbsSlack = -1
	ocfg.BytesRelSlack = -1
	cfg := shortCfg(5)
	cfg.Oracle = ocfg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("draconian oracle found no violation")
	}
	if res.Violation.Invariant != "byte-conservation" {
		t.Fatalf("unexpected invariant %q", res.Violation.Invariant)
	}

	v2, err := CheckJournal(res.Config, res.Journal, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if v2 == nil || v2.Invariant != res.Violation.Invariant {
		t.Fatalf("journal replay did not reproduce the violation: %v", v2)
	}

	min, mv, err := Minimize(res.Config, res.Journal, ocfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	if mv == nil || mv.Invariant != res.Violation.Invariant {
		t.Fatalf("minimization lost the violation: %v", mv)
	}
	if min.Len() > res.Journal.Len() {
		t.Fatalf("minimized journal grew: %d > %d", min.Len(), res.Journal.Len())
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	art := NewArtifact(res, ocfg)
	if err := WriteArtifact(path, art); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := back.Recheck()
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil || rv.Invariant != res.Violation.Invariant {
		t.Fatalf("artifact recheck did not reproduce the violation: %v", rv)
	}
}

func TestFleetChaosRuns(t *testing.T) {
	cfg := Config{
		Seed:   9,
		Events: 60,
		Preset: "minimal",
		Hosts:  3,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation != nil {
		t.Fatalf("fleet chaos violation: %v", a.Violation)
	}
	if a.Events != 60 {
		t.Fatalf("injected %d/60 events (rejected %d)", a.Events, a.Rejected)
	}
	// Parallel execution must not leak into the schedule: a second run
	// with more workers is byte-identical.
	cfg.Workers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := journalJSON(t, a.Journal), journalJSON(t, b.Journal); ja != jb {
		t.Fatalf("fleet journal depends on worker count:\n%s\nvs\n%s", ja, jb)
	}
	if a.FinalTime != b.FinalTime {
		t.Fatalf("fleet end time depends on worker count: %v vs %v", a.FinalTime, b.FinalTime)
	}
}
