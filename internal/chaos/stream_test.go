package chaos

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/snap"
)

// TestStreamWatcherCleanRun: the rider is active during normal chaos
// runs (TestFuzzSeedsClean exercises it end to end); here we pin the
// mechanics against a hand-driven bus.
func TestStreamWatcherCleanRun(t *testing.T) {
	bus := obs.NewBus(64)
	bus.Publish(obs.Event{Kind: obs.KindHeartbeat}) // pre-subscribe noise
	w := newStreamWatcher(bus)
	bus.Publish(obs.Event{Kind: obs.KindHeartbeat, Span: "j0"})
	bus.Publish(obs.Event{Kind: obs.KindFlowStart, Span: "j0"})
	if v := w.drain(0, 0); v != nil {
		t.Fatalf("clean drain: %v", v)
	}
	bus.Publish(obs.Event{Kind: obs.KindFlowDone, Span: "req-1"})
	j := snap.Journal{Entries: []snap.Entry{{Span: "j0"}, {Span: "req-1"}}}
	if v := w.finish(j, 0, 1); v != nil {
		t.Fatalf("clean finish: %v", v)
	}
	if w.delivered != 3 {
		t.Fatalf("delivered %d, want 3", w.delivered)
	}
}

// TestStreamWatcherDropAccounting: ring overflow between drains is
// fine as long as the drop counter explains the gap.
func TestStreamWatcherDropAccounting(t *testing.T) {
	bus := obs.NewBus(256)
	w := newStreamWatcher(bus)
	// Overflow the subscriber's 4096-slot ring before the first drain.
	for i := 0; i < 5000; i++ {
		bus.Publish(obs.Event{Kind: obs.KindHeartbeat, Span: "j0"})
	}
	j := snap.Journal{Entries: []snap.Entry{{Span: "j0"}}}
	if v := w.finish(j, 0, 0); v != nil {
		t.Fatalf("drop-accounted run flagged: %v", v)
	}
	if w.sub.Dropped() == 0 {
		t.Fatal("fixture did not exercise drops")
	}
}

// TestStreamWatcherCatchesOrphanSpan: a streamed event whose span
// names no journal entry is the violation the rider exists to catch.
func TestStreamWatcherCatchesOrphanSpan(t *testing.T) {
	bus := obs.NewBus(64)
	w := newStreamWatcher(bus)
	bus.Publish(obs.Event{Kind: obs.KindHeartbeat, Span: "ghost-cmd"})
	j := snap.Journal{Entries: []snap.Entry{{Span: "j0"}}}
	v := w.finish(j, 0, 0)
	if v == nil || v.Invariant != "sse-consistency" || v.Subject != "ghost-cmd" {
		t.Fatalf("orphan span not caught: %+v", v)
	}
	if !strings.Contains(v.Detail, "names no journal entry") {
		t.Fatalf("detail %q", v.Detail)
	}
}

// TestChaosRunsStreamWatcher: a real run delivers a meaningful number
// of streamed events through the rider (i.e. it is actually wired in).
func TestChaosRunsStreamWatcher(t *testing.T) {
	res, err := Run(shortCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
}
