package chaos

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/fabric"
	"repro/internal/fleet"
	"repro/internal/intent"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// fleetEpoch is the barrier interval for fleet chaos: short enough
// that injections interleave densely with parallel execution, long
// enough to amortize the barrier.
const fleetEpoch = 250 * simtime.Microsecond

// runFleet drives chaos over a fleet of hosts executed by the
// parallel Runner. Injections happen only between epochs, with every
// live host parked at the same barrier, so the schedule stays a pure
// function of the seed even though hosts advance on a worker pool.
// On top of the per-host oracles it checks one fleet-level invariant:
// every fleet-placed tenant lives on exactly one host.
func runFleet(cfg Config) (*Result, error) {
	flt := fleet.New()
	sessions := make([]*snap.Session, cfg.Hosts)
	names := make([]string, cfg.Hosts)
	oracles := make([]*Oracle, cfg.Hosts)
	injectors := make([]*injector, cfg.Hosts)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Hosts; i++ {
		sc := cfg.SnapConfig(i)
		sess, err := snap.NewSession(sc)
		if err != nil {
			return nil, err
		}
		names[i] = fmt.Sprintf("h%02d", i)
		if _, err := flt.AddSession(names[i], sess); err != nil {
			return nil, err
		}
		sessions[i] = sess
		oracles[i] = NewOracle(sess.Manager(), cfg.Oracle)
		injectors[i] = newInjector(sess, rng)
	}
	runner := fleet.NewRunner(flt, fleet.RunnerConfig{Workers: cfg.Workers, Epoch: fleetEpoch})
	ctx := context.Background()
	res := &Result{Seed: cfg.Seed, Counts: make(map[string]int), Config: cfg.SnapConfig(0)}

	// vs-controller: per-host controllers stepped between epoch barriers
	// in host-name order, so remediation stays worker-count-invariant.
	// The injectors stop feeding the oracles directly; every new journal
	// entry (injected or remediation) is synced per host instead.
	var fc *remedy.FleetController
	oracleSeq := make([]int, cfg.Hosts)
	syncOracles := func() {
		for i := range sessions {
			j := sessions[i].Journal()
			for ; oracleSeq[i] < j.Len(); oracleSeq[i]++ {
				oracles[i].ObserveEntry(j.Entries[oracleSeq[i]])
			}
		}
	}
	injOracles := oracles
	if cfg.VsController {
		var err error
		fc, err = remedy.NewFleet(flt, runner, cfg.remedyPolicy())
		if err != nil {
			return nil, err
		}
		defer fc.Close()
		injOracles = make([]*Oracle, cfg.Hosts) // all nil: sync feeds instead
	}

	acfg := cfg.SnapConfig(0).Options.Anomaly
	warm := simtime.Duration(acfg.CalibrationRounds+5) * acfg.Period
	if _, err := runner.RunFor(ctx, warm); err != nil {
		return nil, err
	}

	// Fleet-placed tenants, tracked in placement order (slices, not
	// maps: the schedule must consume randomness deterministically).
	var placed []fabric.TenantID
	fleetSeq := 0
	quarantined := -1 // index into names, -1 when none
	quarantineLeft := 0

	// liveIndex returns a host index != quarantined, biased by r.
	liveIndex := func(r int) int {
		i := r % cfg.Hosts
		if i == quarantined {
			i = (i + 1) % cfg.Hosts
		}
		return i
	}

	fail := func(i int, v Violation) {
		v.Host = names[i]
		res.Violation = &v
		res.Host = names[i]
		res.Config = cfg.SnapConfig(i)
		res.Journal = sessions[i].Journal()
	}

	checkAll := func() {
		for i := range names {
			if res.Violation != nil {
				return
			}
			if i == quarantined {
				continue
			}
			seq := sessions[i].Journal().Len() - 1
			if vs := oracles[i].Check(seq); len(vs) > 0 {
				fail(i, vs[0])
				return
			}
		}
		// Fleet invariant: each placed tenant on exactly one host.
		hosts := flt.Hosts()
		for _, t := range placed {
			n, at := 0, 0
			for hi, h := range hosts {
				if h.Mgr.Tenant(t) != nil {
					n++
					at = hi
				}
			}
			if n != 1 {
				fail(at, Violation{
					Invariant: "fleet-placement", At: runner.Now(),
					Seq:     sessions[at].Journal().Len() - 1,
					Subject: string(t),
					Detail:  fmt.Sprintf("tenant placed on %d hosts, want exactly 1", n),
				})
				return
			}
		}
	}

	fleetTargets := func() []intent.Target {
		devs := injectors[0].devices
		src := devs[rng.Intn(len(devs))]
		return []intent.Target{{
			Src: topology.CompID(src), Dst: intent.AnyMemory,
			Rate: topology.Rate((0.5 + 2.5*rng.Float64()) * 1e9),
		}}
	}

	maxEpochs := cfg.Events*2 + 50
	for epoch := 0; res.Events < cfg.Events && res.Violation == nil && epoch < maxEpochs; epoch++ {
		batch := 1 + rng.Intn(3)
		for b := 0; b < batch && res.Events < cfg.Events; b++ {
			applied, name := false, ""
			switch r := rng.Intn(12); {
			case r < 6: // host-local chaos through a session injector
				i := liveIndex(rng.Intn(cfg.Hosts))
				name, applied = injectors[i].injectOne(injOracles[i])
			case r < 8: // fleet placement
				name = "fleet-place"
				t := fabric.TenantID(fmt.Sprintf("f%02d", fleetSeq))
				fleetSeq++
				if _, _, err := flt.Place(t, fleetTargets()); err == nil {
					placed = append(placed, t)
					applied = true
				}
			case r == 8: // fleet eviction
				name = "fleet-evict"
				if len(placed) > 0 {
					i := rng.Intn(len(placed))
					if _, err := flt.Evict(placed[i]); err == nil {
						placed = append(placed[:i], placed[i+1:]...)
						applied = true
					}
				}
			case r == 9: // migration churn
				name = "fleet-migrate"
				if len(placed) > 0 {
					t := placed[rng.Intn(len(placed))]
					dst := names[rng.Intn(cfg.Hosts)]
					if src := flt.Locate(t); src != nil && src.Name != dst {
						if _, err := flt.Migrate(t, dst); err == nil {
							applied = true
						}
					}
				}
			case r == 10: // evacuate unhealthy hosts
				name = "fleet-rebalance"
				rep := flt.Rebalance()
				applied = len(rep.Moved) > 0
			default: // operator quarantine churn
				name = "quarantine"
				if quarantined < 0 {
					i := rng.Intn(cfg.Hosts)
					if err := runner.Quarantine(names[i], nil); err == nil {
						quarantined = i
						quarantineLeft = 3 + rng.Intn(5)
						applied = true
					}
				}
			}
			if applied {
				res.Events++
				res.Counts[name]++
			} else {
				res.Rejected++
			}
		}
		if _, err := runner.RunFor(ctx, fleetEpoch); err != nil {
			return nil, err
		}
		if fc != nil {
			fc.StepAll()
			syncOracles()
		}
		checkAll()
		if res.Violation == nil && cfg.Oracle.SnapshotEvery > 0 && epoch%8 == 7 {
			i := liveIndex(epoch / 8)
			res.SnapshotChecks++
			if v := oracles[i].CheckSnapshot(sessions[i], sessions[i].Journal().Len()-1); v != nil {
				fail(i, *v)
			}
		}
		if quarantined >= 0 {
			quarantineLeft--
			if quarantineLeft <= 0 {
				runner.Unquarantine(names[quarantined])
				quarantined = -1
			}
		}
	}

	// Tail: readmit any quarantined host, then let detection and
	// all-clear deadlines elapse with the oracles watching.
	if quarantined >= 0 {
		runner.Unquarantine(names[quarantined])
		quarantined = -1
	}
	if res.Violation == nil {
		tail := simtime.Duration(acfg.ConsecutiveBad+cfg.Oracle.DetectRoundsMargin+cfg.Oracle.ClearRoundsMargin+2) * acfg.Period
		if fc != nil && cfg.RemedyDeadline > tail {
			tail = cfg.RemedyDeadline
		}
		for i := 0; i < 8 && res.Violation == nil; i++ {
			if _, err := runner.RunFor(ctx, tail/8); err != nil {
				return nil, err
			}
			if fc != nil {
				fc.StepAll()
				syncOracles()
			}
			checkAll()
		}
	}
	res.FinalTime = runner.Now()
	if res.Violation == nil {
		res.Journal = sessions[0].Journal()
		for i := range sessions {
			res.Journals = append(res.Journals, sessions[i].Journal())
		}
	}
	if fc != nil {
		rep := &RemedyReport{Deadline: cfg.RemedyDeadline}
		var mttrs []simtime.Duration
		for _, name := range fc.Hosts() {
			rep.fold(name, fc.Controller(name).Incidents(), &mttrs)
		}
		s := fc.Stats()
		rep.Executed, rep.Failed = s.Executed, s.Failed
		rep.MTTRp50Us = float64(remedy.Percentile(mttrs, 50)) / float64(simtime.Microsecond)
		rep.MTTRp99Us = float64(remedy.Percentile(mttrs, 99)) / float64(simtime.Microsecond)
		res.Remedy = rep
	}
	return res, nil
}
