package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/snap"
)

// CheckJournal rebuilds a session from cfg, replays the journal one
// entry at a time through the shared apply path, and runs the oracle
// after every entry (plus periodic snapshot->restore round-trips). It
// returns the first violation, or nil when the journal replays clean.
// This is the reproduction side of the harness: a violation found live
// is re-derivable from (config, journal) alone.
func CheckJournal(cfg snap.Config, j snap.Journal, ocfg OracleConfig) (*Violation, error) {
	sess, err := snap.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	o := NewOracle(sess.Manager(), ocfg)
	mutations := 0
	for i, e := range j.Entries {
		if err := sess.ReplayEntry(e); err != nil {
			return nil, fmt.Errorf("chaos: replay entry %d (%s): %w", i, e.Kind, err)
		}
		o.ObserveEntry(e)
		if vs := o.Check(i); len(vs) > 0 {
			return &vs[0], nil
		}
		if e.Kind != snap.KindAdvance {
			mutations++
			if ocfg.SnapshotEvery > 0 && mutations%ocfg.SnapshotEvery == 0 {
				if v := o.CheckSnapshot(sess, i); v != nil {
					return v, nil
				}
			}
		}
	}
	return nil, nil
}

// Minimize shrinks a violating journal while preserving the violated
// invariant: truncate to the violating prefix, then greedily drop
// single entries (ddmin-lite), keeping an entry whenever its removal
// makes the replay error out or the violation vanish. Each attempt is
// a full replay, so the search is bounded by maxTries.
func Minimize(cfg snap.Config, j snap.Journal, ocfg OracleConfig, maxTries int) (snap.Journal, *Violation, error) {
	v, err := CheckJournal(cfg, j, ocfg)
	if err != nil {
		return j, nil, err
	}
	if v == nil {
		return j, nil, fmt.Errorf("chaos: journal does not reproduce a violation")
	}
	if maxTries <= 0 {
		maxTries = 300
	}
	// The violation fired right after entry v.Seq; everything later is
	// noise by construction.
	if v.Seq+1 < len(j.Entries) {
		j = snap.Journal{Entries: append([]snap.Entry(nil), j.Entries[:v.Seq+1]...)}
	}
	tries := 0
	for i := len(j.Entries) - 2; i >= 0 && tries < maxTries; i-- {
		cand := without(j, i)
		tries++
		cv, err := CheckJournal(cfg, cand, ocfg)
		if err != nil || cv == nil || cv.Invariant != v.Invariant {
			continue // entry is load-bearing
		}
		j, v = cand, cv
	}
	return j, v, nil
}

// without copies j minus entry i, renumbering sequence numbers densely
// so the result stays a valid journal.
func without(j snap.Journal, i int) snap.Journal {
	out := snap.Journal{Entries: make([]snap.Entry, 0, len(j.Entries)-1)}
	for k, e := range j.Entries {
		if k == i {
			continue
		}
		e.Seq = uint64(len(out.Entries))
		out.Entries = append(out.Entries, e)
	}
	return out
}

// Artifact is the self-describing repro bundle a failed fuzz run
// writes: everything needed to re-derive the violation, no seed replay
// required.
type Artifact struct {
	SchemaVersion int          `json:"schema_version"`
	Seed          int64        `json:"seed"`
	Host          string       `json:"host,omitempty"`
	Config        snap.Config  `json:"config"`
	Oracle        OracleConfig `json:"oracle"`
	Journal       snap.Journal `json:"journal"`
	Violation     *Violation   `json:"violation"`
}

// NewArtifact bundles a violating run result.
func NewArtifact(res *Result, ocfg OracleConfig) Artifact {
	return Artifact{
		SchemaVersion: 1,
		Seed:          res.Seed,
		Host:          res.Host,
		Config:        res.Config,
		Oracle:        ocfg,
		Journal:       res.Journal,
		Violation:     res.Violation,
	}
}

// WriteArtifact writes the bundle as indented JSON.
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads a repro bundle.
func ReadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("chaos: bad artifact %s: %w", path, err)
	}
	return a, nil
}

// Recheck replays the artifact's journal under its own oracle config
// and returns the violation it reproduces (nil if it no longer does —
// i.e. the bug is fixed).
func (a Artifact) Recheck() (*Violation, error) {
	return CheckJournal(a.Config, a.Journal, a.Oracle)
}
