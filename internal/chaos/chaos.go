// Package chaos is a seeded fault-injection harness with a
// cross-layer invariant oracle. The engine drives randomized schedules
// over the full manager stack — link failures and restores, silent
// degradations, config drift, tenant admit/evict churn, workload and
// probe traffic spikes — through the same journal path real commands
// use (snap.Session). A run is therefore a pure function of its seed:
// any invariant violation is reproducible from (config, journal) alone
// and minimizable by journal reduction, never "flaky".
//
// After every injected event the oracle checks:
//
//   - per-link allocated rate never exceeds effective capacity;
//   - byte accounting conserves (link totals equal per-tenant sums);
//   - installed caps never dip below guarantees, in both modes;
//   - work-conserving mode does not strand idle capacity while a
//     tenant is pinned at its cap with unmet demand (eventual);
//   - snapshot -> restore reproduces the state hash mid-chaos;
//   - the anomaly detector localizes covered hard failures within a
//     bounded number of heartbeat rounds, and stops reporting lost
//     heartbeats once every failure is restored;
//   - a live event-stream subscriber riding along for the whole run
//     sees a view consistent with the journal: bus sequences increase,
//     delivered + dropped equals published, and every streamed span
//     names a journaled command (sse-consistency).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives the injection schedule (and, perturbed per host, the
	// managers under test). Equal configs give byte-identical journals.
	Seed int64
	// Events is the number of injected mutations.
	Events int
	// Duration spreads the events over virtual time.
	Duration simtime.Duration
	// Preset names the host topology (topology.Presets).
	Preset string
	// Mode selects the arbitration policy under test.
	Mode arbiter.Mode
	// Hosts > 1 runs fleet chaos over the parallel Runner.
	Hosts int
	// Workers is the fleet runner's worker count (fleet mode only).
	Workers int
	// Oracle tunes the invariant checker.
	Oracle OracleConfig
	// VsController arms a remediation controller over every host: the
	// chaos schedule becomes the adversary and every eligible injected
	// fault (covered hard failure, or any detected anomaly) must be
	// remediated within RemedyDeadline. The controller acts through the
	// same journal path as the injector, so runs stay seed-pure.
	VsController bool
	// RemedyDeadline bounds fault-injection to invariant-restored
	// (virtual time). Zero defaults to 2ms.
	RemedyDeadline simtime.Duration
	// RemedyPolicy overrides the controller rule table; nil uses
	// remedy.DefaultPolicy().
	RemedyPolicy *remedy.Policy
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 500
	}
	if c.Duration <= 0 {
		c.Duration = 25 * simtime.Millisecond
	}
	if c.Preset == "" {
		c.Preset = "two-socket"
	}
	if c.Mode == "" {
		c.Mode = arbiter.WorkConserving
	}
	if c.Hosts <= 0 {
		c.Hosts = 1
	}
	if c.Oracle == (OracleConfig{}) {
		c.Oracle = DefaultOracleConfig()
	}
	if c.VsController && c.RemedyDeadline <= 0 {
		c.RemedyDeadline = 2 * simtime.Millisecond
	}
	return c
}

// remedyPolicy resolves the controller rule table for this run.
func (c Config) remedyPolicy() remedy.Policy {
	if c.RemedyPolicy != nil {
		return *c.RemedyPolicy
	}
	return remedy.DefaultPolicy()
}

// SnapConfig builds the deterministic session config for host i. Fleet
// hosts perturb the manager seed so the fleet does not move in
// lockstep.
func (c Config) SnapConfig(host int) snap.Config {
	opts := core.DefaultOptions()
	opts.Seed = c.Seed + int64(host)*1009
	opts.Arbiter.Mode = c.Mode
	return snap.Config{Preset: c.Preset, Options: opts}
}

// Result is one chaos run's outcome.
type Result struct {
	Seed int64 `json:"seed"`
	// Events is the number of injected mutations that took effect
	// (journaled); Rejected counts attempts the manager refused —
	// refusals are state-neutral and unjournaled, so they need no
	// reproduction.
	Events   int            `json:"events"`
	Rejected int            `json:"rejected"`
	Counts   map[string]int `json:"counts"`
	// SnapshotChecks counts mid-chaos snapshot->restore round-trips.
	SnapshotChecks int          `json:"snapshot_checks"`
	FinalTime      simtime.Time `json:"final_time_ns"`
	// Violation is the first invariant breach, nil when clean.
	Violation *Violation `json:"violation,omitempty"`
	// Host names the offending host in fleet mode.
	Host string `json:"host,omitempty"`
	// Config and Journal reproduce the run (the offending host's, in
	// fleet mode).
	Config  snap.Config  `json:"config"`
	Journal snap.Journal `json:"journal"`
	// Journals holds every host's journal in host-name order (fleet
	// mode, clean runs): the cross-worker determinism fixture.
	Journals []snap.Journal `json:"journals,omitempty"`
	// Remedy reports the chaos-vs-controller outcome (VsController).
	Remedy *RemedyReport `json:"remedy,omitempty"`
}

// RemedyReport scores the controller against the injected schedule.
type RemedyReport struct {
	Deadline simtime.Duration `json:"deadline_ns"`
	// Incidents is everything the controller opened; Eligible is the
	// subset it can fairly be graded on: covered hard failures (the
	// oracle already demands those localize) plus anything the detector
	// actually flagged. An uncovered or undetectable fault is invisible
	// to §3.1 monitoring and is not counted against the controller.
	Incidents int `json:"incidents"`
	Eligible  int `json:"eligible"`
	// Remediated counts eligible incidents resolved within Deadline.
	Remediated int `json:"remediated"`
	// Missed lists eligible incidents that were not (host:subject).
	Missed []string `json:"missed,omitempty"`
	// MTTR percentiles over all resolved incidents, in virtual us.
	MTTRp50Us float64 `json:"mttr_p50_us"`
	MTTRp99Us float64 `json:"mttr_p99_us"`
	Executed  uint64  `json:"actions_executed"`
	Failed    uint64  `json:"actions_failed"`
}

// Ratio returns remediated/eligible, 1 when nothing was eligible.
func (r *RemedyReport) Ratio() float64 {
	if r.Eligible == 0 {
		return 1
	}
	return float64(r.Remediated) / float64(r.Eligible)
}

// eligibleIncident reports whether the controller is graded on in.
func eligibleIncident(in remedy.Incident) bool {
	if in.Class == remedy.ClassLinkFail && in.Covered && in.FaultKnown {
		return true
	}
	return in.Detected
}

// foldRemedy accumulates one host's incidents into the report.
func (r *RemedyReport) fold(host string, ins []remedy.Incident, mttrs *[]simtime.Duration) {
	for _, in := range ins {
		r.Incidents++
		if d, ok := in.MTTR(); ok {
			*mttrs = append(*mttrs, d)
		}
		if !eligibleIncident(in) {
			continue
		}
		r.Eligible++
		if d, ok := in.MTTR(); ok && d <= r.Deadline {
			r.Remediated++
			continue
		}
		subj := in.Subject
		if host != "" {
			subj = host + ":" + subj
		}
		r.Missed = append(r.Missed, subj)
	}
}

// Run executes one chaos run to completion or first violation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Hosts > 1 {
		return runFleet(cfg)
	}
	sc := cfg.SnapConfig(0)
	sess, err := snap.NewSession(sc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := NewOracle(sess.Manager(), cfg.Oracle)
	inj := newInjector(sess, rng)
	// A live SSE-style subscriber rides along for the whole run,
	// checking that the event stream agrees with the journal.
	watch := newStreamWatcher(sess.Manager().Obs().Tracer.Bus())
	res := &Result{Seed: cfg.Seed, Counts: make(map[string]int), Config: sc}

	// In vs-controller mode the controller's journaled actions must
	// reach the oracle too (a rollback the oracle never sees would
	// leave stale failure expectations), so the injector stops feeding
	// it directly and every new journal entry is synced instead.
	var ctrl *remedy.Controller
	injOracle := o
	oracleSeq := 0
	syncOracle := func() {
		j := sess.Journal()
		for ; oracleSeq < j.Len(); oracleSeq++ {
			o.ObserveEntry(j.Entries[oracleSeq])
		}
	}
	if cfg.VsController {
		injOracle = nil
		ctrl, err = remedy.New(sess.Manager(), remedy.SessionActuator{Sess: sess},
			remedy.Options{Policy: cfg.remedyPolicy()})
		if err != nil {
			return nil, err
		}
		defer ctrl.Close()
	}

	// Warm up past detector calibration so the anomaly invariants arm.
	acfg := sc.Options.Anomaly
	if err := sess.Advance(simtime.Duration(acfg.CalibrationRounds+5) * acfg.Period); err != nil {
		return nil, err
	}

	mean := cfg.Duration / simtime.Duration(cfg.Events)
	if mean < 2*simtime.Microsecond {
		mean = 2 * simtime.Microsecond
	}

	check := func() bool {
		if vs := o.Check(sess.Journal().Len() - 1); len(vs) > 0 {
			res.Violation = &vs[0]
			return true
		}
		if v := watch.drain(sess.Now(), sess.Journal().Len()-1); v != nil {
			res.Violation = v
			return true
		}
		return false
	}

	for attempts := 0; res.Events < cfg.Events && attempts < cfg.Events*4 && res.Violation == nil; attempts++ {
		name, applied := inj.injectOne(injOracle)
		if applied {
			res.Events++
			res.Counts[name]++
		} else {
			res.Rejected++
		}
		gap := mean/2 + simtime.Duration(rng.Int63n(int64(mean)))
		if err := sess.Advance(gap); err != nil {
			return nil, err
		}
		if ctrl != nil {
			ctrl.Step()
			syncOracle()
		}
		if check() {
			break
		}
		if applied && cfg.Oracle.SnapshotEvery > 0 && res.Events%cfg.Oracle.SnapshotEvery == 0 {
			res.SnapshotChecks++
			if v := o.CheckSnapshot(sess, sess.Journal().Len()-1); v != nil {
				res.Violation = v
				break
			}
		}
	}

	// Tail: let pending localization deadlines and the all-clear margin
	// elapse with the oracle still watching. In vs-controller mode the
	// tail also grants the controller one full deadline of quiet time to
	// finish healing — unresolved eligible incidents after that count as
	// missed.
	if res.Violation == nil {
		tail := simtime.Duration(acfg.ConsecutiveBad+cfg.Oracle.DetectRoundsMargin+cfg.Oracle.ClearRoundsMargin+2) * acfg.Period
		if ctrl != nil && cfg.RemedyDeadline > tail {
			tail = cfg.RemedyDeadline
		}
		for i := 0; i < 8 && res.Violation == nil; i++ {
			if err := sess.Advance(tail / 8); err != nil {
				return nil, err
			}
			if ctrl != nil {
				ctrl.Step()
				syncOracle()
			}
			check()
		}
	}

	if res.Violation == nil {
		res.Violation = watch.finish(sess.Journal(), sess.Now(), sess.Journal().Len()-1)
	}
	res.FinalTime = sess.Now()
	res.Journal = sess.Journal()
	if ctrl != nil {
		rep := &RemedyReport{Deadline: cfg.RemedyDeadline}
		var mttrs []simtime.Duration
		rep.fold("", ctrl.Incidents(), &mttrs)
		s := ctrl.Stats()
		rep.Executed, rep.Failed = s.Executed, s.Failed
		rep.MTTRp50Us = float64(remedy.Percentile(mttrs, 50)) / float64(simtime.Microsecond)
		rep.MTTRp99Us = float64(remedy.Percentile(mttrs, 99)) / float64(simtime.Microsecond)
		res.Remedy = rep
	}
	return res, nil
}

// op is one weighted injection. ready gates availability on current
// state; do applies the mutation through the session (journal) path
// and reports the manager's verdict.
type op struct {
	name   string
	weight int
	ready  func() bool
	do     func() error
}

// injector owns the deterministic candidate pools the schedule draws
// from. Every pool is either sorted or insertion-ordered by the
// (deterministic) schedule itself, so the rand stream consumption is a
// pure function of the seed.
type injector struct {
	sess      *snap.Session
	rng       *rand.Rand
	links     []string
	devices   []string
	comps     []string
	admitted  []string
	workloads map[string]bool
	tenantSeq int
	ops       []op
}

// configPalette is the drift-injection value space for the well-known
// knobs the monitor and fabric watch.
var configPalette = map[string][]string{
	topology.ConfigDDIO:            {"on", "off"},
	topology.ConfigIOMMU:           {"off", "passthrough", "translate"},
	topology.ConfigMaxPayload:      {"128", "256", "512"},
	topology.ConfigRelaxedOrdering: {"on", "off"},
	topology.ConfigIntModeration:   {"0", "5", "20"},
}

var workloadKinds = []string{"kv", "ml", "loopback", "scan"}

func newInjector(sess *snap.Session, rng *rand.Rand) *injector {
	topo := sess.Manager().Topology()
	in := &injector{sess: sess, rng: rng, workloads: make(map[string]bool)}
	for _, l := range topo.Links() {
		in.links = append(in.links, string(l.ID))
	}
	for _, k := range []topology.Kind{topology.KindCPU, topology.KindGPU, topology.KindNIC, topology.KindSSD} {
		for _, c := range topo.ComponentsOfKind(k) {
			in.devices = append(in.devices, string(c.ID))
		}
	}
	sort.Strings(in.devices)
	for _, c := range topo.Components() {
		in.comps = append(in.comps, string(c.ID))
	}
	in.ops = []op{
		{"admit", 3, func() bool { return len(in.admitted) < 12 }, in.admit},
		{"evict", 1, func() bool { return len(in.admitted) > 0 }, in.evict},
		{"fail-link", 2, func() bool { return in.failedCount() < 2 }, in.fail},
		{"restore-link", 2, func() bool { return len(in.unhealthy()) > 0 }, in.restore},
		{"degrade-link", 2, func() bool { return len(in.nonFailed()) > 0 }, in.degrade},
		{"config-drift", 2, nil, in.drift},
		{"workload", 2, func() bool { return in.idleTenant() >= 0 }, in.workload},
		// Probes stall against failed links (they run to a bounded
		// timeout), so traffic spikes only fire on a healthy fabric.
		{"perf-spike", 1, func() bool { return in.failedCount() == 0 }, in.perf},
		{"ping", 1, func() bool { return in.failedCount() == 0 }, in.ping},
	}
	return in
}

// injectOne picks one available op by weight and applies it. It
// reports the op name and whether the mutation was journaled; the
// oracle observes every journaled entry.
func (in *injector) injectOne(o *Oracle) (string, bool) {
	total := 0
	avail := make([]op, 0, len(in.ops))
	for _, cand := range in.ops {
		if cand.ready == nil || cand.ready() {
			avail = append(avail, cand)
			total += cand.weight
		}
	}
	r := in.rng.Intn(total)
	chosen := avail[0]
	for _, cand := range avail {
		if r < cand.weight {
			chosen = cand
			break
		}
		r -= cand.weight
	}
	before := in.sess.Journal().Len()
	_ = chosen.do()
	j := in.sess.Journal()
	applied := j.Len() > before
	if applied && o != nil {
		o.ObserveEntry(j.Entries[j.Len()-1])
	}
	return chosen.name, applied
}

func (in *injector) nonFailed() []string {
	fab := in.sess.Manager().Fabric()
	out := make([]string, 0, len(in.links))
	for _, l := range in.links {
		if !fab.LinkFailed(topology.LinkID(l)) {
			out = append(out, l)
		}
	}
	return out
}

func (in *injector) failedCount() int { return len(in.links) - len(in.nonFailed()) }

func (in *injector) unhealthy() []string {
	var out []string
	for _, l := range in.sess.Manager().Fabric().UnhealthyLinks() {
		out = append(out, string(l))
	}
	return out
}

// idleTenant returns the index of the first admitted tenant with no
// workload, or -1.
func (in *injector) idleTenant() int {
	for i, t := range in.admitted {
		if !in.workloads[t] {
			return i
		}
	}
	return -1
}

func (in *injector) admit() error {
	tenant := fmt.Sprintf("t%02d", in.tenantSeq)
	in.tenantSeq++
	n := 1 + in.rng.Intn(2)
	targets := make([]intent.Target, 0, n)
	for i := 0; i < n; i++ {
		si := in.rng.Intn(len(in.devices))
		src := in.devices[si]
		dst := string(intent.AnyMemory)
		if in.rng.Intn(2) == 0 {
			di := in.rng.Intn(len(in.devices))
			if in.devices[di] == src {
				di = (di + 1) % len(in.devices)
			}
			dst = in.devices[di]
		}
		rate := topology.Rate((0.5 + 3.5*in.rng.Float64()) * 1e9)
		targets = append(targets, intent.Target{
			Src: topology.CompID(src), Dst: topology.CompID(dst), Rate: rate,
		})
	}
	if _, err := in.sess.Admit(tenant, targets); err != nil {
		return err
	}
	in.admitted = append(in.admitted, tenant)
	return nil
}

func (in *injector) evict() error {
	i := in.rng.Intn(len(in.admitted))
	tenant := in.admitted[i]
	if err := in.sess.Evict(tenant); err != nil {
		return err
	}
	in.admitted = append(in.admitted[:i], in.admitted[i+1:]...)
	delete(in.workloads, tenant)
	return nil
}

func (in *injector) fail() error {
	cands := in.nonFailed()
	return in.sess.FailLink(cands[in.rng.Intn(len(cands))])
}

func (in *injector) restore() error {
	cands := in.unhealthy()
	return in.sess.RestoreLink(cands[in.rng.Intn(len(cands))])
}

func (in *injector) degrade() error {
	cands := in.nonFailed()
	link := cands[in.rng.Intn(len(cands))]
	loss := 0.05 + 0.6*in.rng.Float64()
	extra := simtime.Duration(in.rng.Intn(3)) * simtime.Microsecond
	return in.sess.DegradeLink(link, loss, extra)
}

func (in *injector) drift() error {
	comp := in.comps[in.rng.Intn(len(in.comps))]
	keys := make([]string, 0, len(configPalette))
	for k := range configPalette {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := keys[in.rng.Intn(len(keys))]
	vals := configPalette[key]
	return in.sess.SetComponentConfig(comp, key, vals[in.rng.Intn(len(vals))])
}

func (in *injector) workload() error {
	tenant := in.admitted[in.idleTenant()]
	kind := workloadKinds[in.rng.Intn(len(workloadKinds))]
	if err := in.sess.StartWorkload(kind, tenant, "", ""); err != nil {
		return err
	}
	in.workloads[tenant] = true
	return nil
}

func (in *injector) endpointPair() (string, string) {
	si := in.rng.Intn(len(in.devices))
	di := in.rng.Intn(len(in.devices))
	if di == si {
		di = (di + 1) % len(in.devices)
	}
	return in.devices[si], in.devices[di]
}

func (in *injector) perf() error {
	src, dst := in.endpointPair()
	_, err := in.sess.Perf(src, dst, "_burst")
	return err
}

func (in *injector) ping() error {
	src, dst := in.endpointPair()
	_, err := in.sess.Ping(src, dst)
	return err
}
