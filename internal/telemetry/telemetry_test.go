package telemetry

import (
	"testing"
	"testing/quick"

	"repro/internal/counters"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newFab(t *testing.T) (*fabric.Fabric, *simtime.Engine) {
	t.Helper()
	e := simtime.NewEngine(5)
	topo := topology.MinimalHost()
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	p, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.AddFlow(&fabric.Flow{Tenant: "kv", Path: p, Demand: topology.GBps(5)}); err != nil {
		t.Fatal(err)
	}
	if err := fab.AddFlow(&fabric.Flow{Tenant: "ml", Path: p, Demand: topology.GBps(10)}); err != nil {
		t.Fatal(err)
	}
	return fab, e
}

func TestRingStoreBasics(t *testing.T) {
	if _, err := NewRingStore(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	r, _ := NewRingStore(3)
	for i := 0; i < 3; i++ {
		r.Add(Point{At: simtime.Time(i), Link: "l", Metric: MetricBytes, Value: float64(i)})
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len %d dropped %d", r.Len(), r.Dropped())
	}
	r.Add(Point{At: 3, Link: "l", Metric: MetricBytes, Value: 3})
	if r.Len() != 3 || r.Dropped() != 1 {
		t.Fatalf("after overflow: len %d dropped %d", r.Len(), r.Dropped())
	}
	// Oldest evicted: Since(0) starts at At=1.
	pts := r.Since(0)
	if len(pts) != 3 || pts[0].At != 1 || pts[2].At != 3 {
		t.Fatalf("Since(0) = %+v", pts)
	}
	if got := r.Since(3); len(got) != 1 {
		t.Fatalf("Since(3) = %d points", len(got))
	}
}

func TestRingStoreLatest(t *testing.T) {
	r, _ := NewRingStore(10)
	r.Add(Point{At: 1, Link: "a", Tenant: "t1", Metric: MetricBytes, Value: 10})
	r.Add(Point{At: 2, Link: "a", Tenant: "t2", Metric: MetricBytes, Value: 20})
	r.Add(Point{At: 3, Link: "a", Tenant: "t1", Metric: MetricBytes, Value: 30})
	p, ok := r.Latest("a", MetricBytes, "t1")
	if !ok || p.Value != 30 {
		t.Fatalf("Latest t1 = %+v, %v", p, ok)
	}
	p, ok = r.Latest("a", MetricBytes, "")
	if !ok || p.Value != 30 {
		t.Fatalf("Latest any = %+v, %v", p, ok)
	}
	if _, ok := r.Latest("b", MetricBytes, ""); ok {
		t.Fatal("Latest found absent link")
	}
}

// Property: ring store keeps exactly the most recent min(n, cap)
// points in order.
func TestPropertyRingRetention(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r, _ := NewRingStore(capacity)
		total := int(n)
		for i := 0; i < total; i++ {
			r.Add(Point{At: simtime.Time(i), Value: float64(i)})
		}
		pts := r.Since(0)
		want := total
		if want > capacity {
			want = capacity
		}
		if len(pts) != want {
			return false
		}
		for i, p := range pts {
			if int(p.At) != total-want+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterceptSourceSeesTenants(t *testing.T) {
	fab, e := newFab(t)
	e.RunFor(simtime.Millisecond)
	src := NewInterceptSource(fab)
	if src.Name() != "intercept" {
		t.Fatal("name wrong")
	}
	pts := src.Collect()
	tenants := make(map[fabric.TenantID]bool)
	for _, p := range pts {
		if p.Tenant != "" {
			tenants[p.Tenant] = true
		}
	}
	if !tenants["kv"] || !tenants["ml"] {
		t.Fatalf("intercept source missed tenants: %v", tenants)
	}
}

func TestCounterSourceAggregateOnly(t *testing.T) {
	fab, e := newFab(t)
	bank, err := counters.NewBank(fab, counters.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	src := NewCounterSource(fab, bank)
	pts := src.Collect()
	if len(pts) != fab.Topology().NumLinks() {
		t.Fatalf("counter source %d points, want one per link (%d)", len(pts), fab.Topology().NumLinks())
	}
	for _, p := range pts {
		if p.Tenant != "" {
			t.Fatal("counter source leaked tenant attribution")
		}
	}
	if src.CostPerPoint() >= NewInterceptSource(fab).CostPerPoint() {
		t.Fatal("counters should cost less per point than interception")
	}
}

func TestPipelineValidation(t *testing.T) {
	fab, _ := newFab(t)
	src := NewInterceptSource(fab)
	cases := []PipelineConfig{
		{Period: 0, Placement: PlaceLocal, Collector: "cpu0"},
		{Period: 1, Placement: PlaceLocal, Collector: "nope"},
		{Period: 1, Placement: "weird", Collector: "cpu0"},
		{Period: 1, Placement: PlaceRemote, Collector: "cpu0", RemoteSink: "nope"},
	}
	for i, c := range cases {
		if _, err := NewPipeline(fab, src, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewPipeline(fab, nil, PipelineConfig{Period: 1, Placement: PlaceLocal, Collector: "cpu0"}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestPipelineCollectsPeriodically(t *testing.T) {
	fab, e := newFab(t)
	pl, err := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 100 * simtime.Microsecond, Placement: PlaceLocal, Collector: "cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	e.RunFor(simtime.Millisecond)
	o := pl.Overhead()
	if o.Collections != 10 {
		t.Fatalf("collections %d, want 10", o.Collections)
	}
	if o.Points == 0 || o.PointsPerSecond == 0 {
		t.Fatalf("no points collected: %+v", o)
	}
	if o.CPUPerSecond <= 0 {
		t.Fatal("no CPU accounted")
	}
	if o.SpoolRate != 0 {
		t.Fatal("local placement charged spool bandwidth")
	}
	if pl.Store().Len() == 0 {
		t.Fatal("store empty")
	}
	pl.Stop()
	c := pl.Overhead().Collections
	e.RunFor(simtime.Millisecond)
	if pl.Overhead().Collections != c {
		t.Fatal("pipeline collected after Stop")
	}
}

func TestPipelineMemoryPlacementChargesBandwidth(t *testing.T) {
	fab, e := newFab(t)
	pl, err := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 100 * simtime.Microsecond, Placement: PlaceMemory, Collector: "cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunFor(simtime.Millisecond)
	o := pl.Overhead()
	if o.SpoolRate <= 0 {
		t.Fatalf("memory placement spool rate %v, want > 0", o.SpoolRate)
	}
	// The spool flow appears as system-tenant traffic on memory links.
	found := false
	for _, st := range fab.AllLinkStats() {
		if st.TenantBytes[fabric.SystemTenant] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no system-tenant spool traffic on fabric")
	}
	pl.Stop()
}

func TestPipelineRemotePlacementCostsMore(t *testing.T) {
	fab, e := newFab(t)
	mem, _ := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 100 * simtime.Microsecond, Placement: PlaceMemory, Collector: "cpu0",
	})
	_ = mem.Start()
	e.RunFor(simtime.Millisecond)
	for _, l := range mem.spool.Path.Links {
		if l.Class == topology.ClassPCIeUp || l.Class == topology.ClassPCIeDown {
			t.Fatal("memory spool should not cross PCIe")
		}
	}
	mem.Stop()

	rem, err := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 100 * simtime.Microsecond, Placement: PlaceRemote,
		Collector: "cpu0", RemoteSink: "gpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rem.Start()
	e.RunFor(simtime.Millisecond)
	crossesPCIe := false
	for _, l := range rem.spool.Path.Links {
		if l.Class == topology.ClassPCIeUp || l.Class == topology.ClassPCIeDown {
			crossesPCIe = true
		}
	}
	rem.Stop()
	if !crossesPCIe {
		t.Fatal("remote spool should consume PCIe bandwidth")
	}
}

func TestFasterPeriodMoreOverhead(t *testing.T) {
	fab, e := newFab(t)
	fast, _ := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 50 * simtime.Microsecond, Placement: PlaceLocal, Collector: "cpu0",
	})
	_ = fast.Start()
	e.RunFor(simtime.Millisecond)
	fastCPU := fast.Overhead().CPUPerSecond
	fast.Stop()

	slow, _ := NewPipeline(fab, NewInterceptSource(fab), PipelineConfig{
		Period: 500 * simtime.Microsecond, Placement: PlaceLocal, Collector: "cpu0",
	})
	_ = slow.Start()
	e.RunFor(simtime.Millisecond)
	slowCPU := slow.Overhead().CPUPerSecond
	slow.Stop()

	if fastCPU <= slowCPU {
		t.Fatalf("10x faster sampling CPU %v not above slower %v", fastCPU, slowCPU)
	}
}

func TestCounterSourceStaleness(t *testing.T) {
	fab, e := newFab(t)
	bank, _ := counters.NewBank(fab, counters.Config{
		SamplePeriod: simtime.Millisecond, Quantum: 64,
	})
	// Collect every 100us against a 1ms-limited bank: most samples
	// will be stale — the Q1 access-frequency limit made visible.
	pl, _ := NewPipeline(fab, NewCounterSource(fab, bank), PipelineConfig{
		Period: 100 * simtime.Microsecond, Placement: PlaceLocal, Collector: "cpu0",
	})
	_ = pl.Start()
	e.RunFor(2 * simtime.Millisecond)
	o := pl.Overhead()
	if o.StaleFraction < 0.5 {
		t.Fatalf("stale fraction %v, want most samples stale", o.StaleFraction)
	}
	pl.Stop()
}
