// Package telemetry implements the data-collection layer of the
// paper's fine-grained monitoring system (§3.1): pluggable sources
// (hardware counters vs software interception), a bounded in-memory
// ring store, and a periodic collection pipeline whose
// storage/processing placement is explicit — local on-device
// processing, spooling to host memory, or shipping to a remote
// monitoring device — so the Q2 overhead dilemma can be measured
// rather than hand-waved.
package telemetry

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Metric names a measured quantity.
type Metric string

// Metrics emitted by the built-in sources.
const (
	// MetricBytes is a cumulative byte counter.
	MetricBytes Metric = "bytes"
	// MetricUtilization is instantaneous link utilization in [0,1].
	MetricUtilization Metric = "util"
	// MetricRate is an instantaneous allocated rate in bytes/second.
	MetricRate Metric = "rate"
)

// Point is one telemetry sample.
type Point struct {
	At     simtime.Time
	Link   topology.LinkID
	Tenant fabric.TenantID // empty for aggregate-only sources
	Metric Metric
	Value  float64
	// Stale marks values served from a rate-limited cache.
	Stale bool
}

// encodedPointBytes is the on-wire/in-memory footprint of one point,
// used to charge bandwidth for non-local placements.
const encodedPointBytes = 48

// Source produces telemetry points when polled.
type Source interface {
	// Name identifies the source ("counters", "intercept").
	Name() string
	// Collect returns the current points. Implementations must be
	// deterministic given the fabric state.
	Collect() []Point
	// CostPerPoint is the modeled CPU time spent producing one point
	// (software interception is more expensive than reading a
	// hardware counter block).
	CostPerPoint() simtime.Duration
}

// Placement says where collected data is stored and processed — the
// paper's Q2 design axis.
type Placement string

// Placements supported by the pipeline.
const (
	// PlaceLocal processes samples on the collecting device: no
	// fabric traffic, but consumes scarce on-device compute.
	PlaceLocal Placement = "local"
	// PlaceMemory spools samples to host DRAM: consumes memory-bus
	// bandwidth on the collector's socket.
	PlaceMemory Placement = "memory"
	// PlaceRemote ships samples to a dedicated monitoring device over
	// PCIe: consumes PCIe and memory bandwidth along the way.
	PlaceRemote Placement = "remote"
)

// RingStore is a bounded ring buffer of points — the monitor's working
// set is explicitly finite (Q2: storage is a real resource).
type RingStore struct {
	buf     []Point
	next    int
	full    bool
	dropped uint64
}

// NewRingStore allocates a store holding at most capacity points.
func NewRingStore(capacity int) (*RingStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: non-positive ring capacity")
	}
	return &RingStore{buf: make([]Point, 0, capacity)}, nil
}

// Add appends a point, evicting the oldest when full.
func (r *RingStore) Add(p Point) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
		return
	}
	r.full = true
	r.dropped++
	r.buf[r.next] = p
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored points.
func (r *RingStore) Len() int { return len(r.buf) }

// Dropped returns how many points have been evicted.
func (r *RingStore) Dropped() uint64 { return r.dropped }

// Since returns all stored points with At >= t, oldest first.
func (r *RingStore) Since(t simtime.Time) []Point {
	out := make([]Point, 0, len(r.buf))
	for _, p := range r.inOrder() {
		if p.At >= t {
			out = append(out, p)
		}
	}
	return out
}

// Latest returns the most recent point matching link/metric (and
// tenant, when tenant is non-empty), or false.
func (r *RingStore) Latest(link topology.LinkID, metric Metric, tenant fabric.TenantID) (Point, bool) {
	ordered := r.inOrder()
	for i := len(ordered) - 1; i >= 0; i-- {
		p := ordered[i]
		if p.Link == link && p.Metric == metric && (tenant == "" || p.Tenant == tenant) {
			return p, true
		}
	}
	return Point{}, false
}

func (r *RingStore) inOrder() []Point {
	if !r.full {
		return r.buf
	}
	out := make([]Point, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
