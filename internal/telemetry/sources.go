package telemetry

import (
	"sort"

	"repro/internal/counters"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// CounterSource collects from an emulated hardware counter bank. It
// inherits the bank's fidelity limits: aggregate-only values, bounded
// refresh rate, quantization and noise (§3.1 Q1, the hardware side).
type CounterSource struct {
	bank *counters.Bank
	fab  *fabric.Fabric
}

// NewCounterSource wraps a counter bank as a telemetry source.
func NewCounterSource(fab *fabric.Fabric, bank *counters.Bank) *CounterSource {
	return &CounterSource{bank: bank, fab: fab}
}

// Name implements Source.
func (s *CounterSource) Name() string { return "counters" }

// CostPerPoint implements Source: reading a hardware counter block is
// cheap (an MSR/MMIO read).
func (s *CounterSource) CostPerPoint() simtime.Duration { return 50 * simtime.Nanosecond }

// Collect reads every link counter. Points carry no tenant labels —
// hardware counters cannot attribute traffic.
func (s *CounterSource) Collect() []Point {
	now := s.fab.Engine().Now()
	snap := s.bank.Snapshot()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := make([]Point, 0, len(ids))
	for _, id := range ids {
		lid := topology.LinkID(id)
		sm := snap[lid]
		out = append(out, Point{
			At:     now,
			Link:   lid,
			Metric: MetricBytes,
			Value:  float64(sm.Bytes),
			Stale:  sm.Stale,
		})
	}
	return out
}

// InterceptSource collects by software interception of the I/O path:
// it sees exact per-tenant, per-link rates and byte counts, at a
// higher per-point CPU cost (§3.1 Q1, the software side).
type InterceptSource struct {
	fab *fabric.Fabric
}

// NewInterceptSource wraps a fabric as an interception telemetry
// source.
func NewInterceptSource(fab *fabric.Fabric) *InterceptSource {
	return &InterceptSource{fab: fab}
}

// Name implements Source.
func (s *InterceptSource) Name() string { return "intercept" }

// CostPerPoint implements Source: interception pays a software tax on
// every accounted I/O operation.
func (s *InterceptSource) CostPerPoint() simtime.Duration { return 400 * simtime.Nanosecond }

// Collect emits, for every link: an aggregate utilization point and a
// per-tenant cumulative bytes point for each tenant seen on the link.
func (s *InterceptSource) Collect() []Point {
	now := s.fab.Engine().Now()
	var out []Point
	for _, st := range s.fab.AllLinkStats() {
		out = append(out, Point{
			At: now, Link: st.Link, Metric: MetricUtilization, Value: st.Utilization,
		})
		tenants := make([]string, 0, len(st.TenantBytes))
		for t := range st.TenantBytes {
			tenants = append(tenants, string(t))
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			out = append(out, Point{
				At: now, Link: st.Link, Tenant: fabric.TenantID(t),
				Metric: MetricBytes, Value: st.TenantBytes[fabric.TenantID(t)],
			})
		}
	}
	return out
}
