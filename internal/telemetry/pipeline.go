package telemetry

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// PipelineConfig describes one periodic collection loop.
type PipelineConfig struct {
	// Period between collections.
	Period simtime.Duration
	// Placement decides where samples are stored/processed.
	Placement Placement
	// Collector is the component doing the collection (its socket
	// determines which memory the spool traffic hits). Typically the
	// host CPU, e.g. "cpu0".
	Collector topology.CompID
	// RemoteSink is the monitoring device samples are shipped to when
	// Placement == PlaceRemote (e.g. a NIC or FPGA).
	RemoteSink topology.CompID
	// StoreCapacity bounds the ring store, in points.
	StoreCapacity int
}

// Overhead summarizes the monitoring loop's resource consumption —
// the quantities experiment E6 sweeps.
type Overhead struct {
	// CPUPerSecond is the modeled collector CPU time consumed per
	// second of virtual time.
	CPUPerSecond simtime.Duration
	// SpoolRate is the fabric bandwidth consumed moving samples to
	// their storage placement (zero for local placement).
	SpoolRate topology.Rate
	// PointsPerSecond is the telemetry production rate.
	PointsPerSecond float64
	// StaleFraction is the fraction of collected points served stale
	// by rate-limited sources.
	StaleFraction float64
	// Collections and Points are cumulative counts.
	Collections uint64
	Points      uint64
}

// Pipeline periodically polls a source, stores points in a ring, and
// charges the fabric for sample movement according to its placement.
type Pipeline struct {
	fab    *fabric.Fabric
	src    Source
	cfg    PipelineConfig
	store  *RingStore
	ticker *simtime.Ticker

	spool       *fabric.Flow
	collections uint64
	points      uint64
	stale       uint64
	cpuSpent    simtime.Duration
	startedAt   simtime.Time
}

// NewPipeline validates the configuration and builds a pipeline. Call
// Start to begin collecting.
func NewPipeline(fab *fabric.Fabric, src Source, cfg PipelineConfig) (*Pipeline, error) {
	if src == nil {
		return nil, fmt.Errorf("telemetry: nil source")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("telemetry: non-positive period")
	}
	if cfg.StoreCapacity <= 0 {
		cfg.StoreCapacity = 4096
	}
	topo := fab.Topology()
	if topo.Component(cfg.Collector) == nil {
		return nil, fmt.Errorf("telemetry: unknown collector %q", cfg.Collector)
	}
	switch cfg.Placement {
	case PlaceLocal:
	case PlaceMemory:
	case PlaceRemote:
		if topo.Component(cfg.RemoteSink) == nil {
			return nil, fmt.Errorf("telemetry: unknown remote sink %q", cfg.RemoteSink)
		}
	default:
		return nil, fmt.Errorf("telemetry: unknown placement %q", cfg.Placement)
	}
	store, err := NewRingStore(cfg.StoreCapacity)
	if err != nil {
		return nil, err
	}
	return &Pipeline{fab: fab, src: src, cfg: cfg, store: store}, nil
}

// Start arms the collection ticker and, for non-local placements, the
// spool flow that charges the fabric for sample movement.
func (p *Pipeline) Start() error {
	if p.ticker != nil {
		return fmt.Errorf("telemetry: pipeline already started")
	}
	if err := p.installSpool(); err != nil {
		return err
	}
	p.startedAt = p.fab.Engine().Now()
	p.ticker = p.fab.Engine().Every(p.cfg.Period, p.collect)
	return nil
}

// Stop halts collection and removes the spool flow.
func (p *Pipeline) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
	if p.spool != nil {
		p.fab.RemoveFlow(p.spool)
		p.spool = nil
	}
}

// installSpool creates the placement's bandwidth-charging flow with a
// nominal demand; the demand is updated as the point rate is learned.
func (p *Pipeline) installSpool() error {
	topo := p.fab.Topology()
	var dst topology.CompID
	switch p.cfg.Placement {
	case PlaceLocal:
		return nil
	case PlaceMemory:
		// Spool to the collector's nearest DIMM.
		col := topo.Component(p.cfg.Collector)
		for _, c := range topo.ComponentsOfKind(topology.KindDIMM) {
			if c.Socket == col.Socket {
				dst = c.ID
				break
			}
		}
		if dst == "" {
			return fmt.Errorf("telemetry: no DIMM on collector socket")
		}
	case PlaceRemote:
		dst = p.cfg.RemoteSink
	}
	path, err := topo.ShortestPath(p.cfg.Collector, dst)
	if err != nil {
		return err
	}
	p.spool = &fabric.Flow{Tenant: fabric.SystemTenant, Path: path, Demand: 1}
	return p.fab.AddFlow(p.spool)
}

// collect runs one collection cycle.
func (p *Pipeline) collect() {
	pts := p.src.Collect()
	p.collections++
	p.points += uint64(len(pts))
	for _, pt := range pts {
		if pt.Stale {
			p.stale++
		}
		p.store.Add(pt)
	}
	p.cpuSpent += simtime.Duration(len(pts)) * p.src.CostPerPoint()
	if p.spool != nil {
		rate := topology.Rate(float64(len(pts)*encodedPointBytes) / p.cfg.Period.Seconds())
		_ = p.fab.SetDemand(p.spool, rate)
	}
}

// Store exposes the pipeline's ring store for queries.
func (p *Pipeline) Store() *RingStore { return p.store }

// Source returns the pipeline's source.
func (p *Pipeline) Source() Source { return p.src }

// Overhead reports the monitoring loop's resource consumption so far.
func (p *Pipeline) Overhead() Overhead {
	o := Overhead{Collections: p.collections, Points: p.points}
	elapsed := p.fab.Engine().Now().Sub(p.startedAt).Seconds()
	if elapsed > 0 {
		o.CPUPerSecond = simtime.Duration(float64(p.cpuSpent) / elapsed)
		o.PointsPerSecond = float64(p.points) / elapsed
	}
	if p.points > 0 {
		o.StaleFraction = float64(p.stale) / float64(p.points)
	}
	if p.spool != nil {
		o.SpoolRate = p.spool.Demand
	}
	return o
}
