package memsys

import (
	"testing"

	"repro/internal/topology"
)

func TestSockets(t *testing.T) {
	s := New(topology.TwoSocketServer())
	got := s.Sockets()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Sockets = %v", got)
	}
}

func TestDIMMs(t *testing.T) {
	s := New(topology.TwoSocketServer())
	if n := len(s.DIMMs(0)); n != 4 {
		t.Fatalf("socket 0 DIMMs = %d, want 4", n)
	}
	if n := len(s.DIMMs(-1)); n != 8 {
		t.Fatalf("all DIMMs = %d, want 8", n)
	}
}

func TestCandidatesPolicies(t *testing.T) {
	s := New(topology.TwoSocketServer())
	local, err := s.Candidates("gpu0", PolicyLocal)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range local {
		if s.topoComponentSocket(t, d) != 0 {
			t.Fatalf("local candidate %s not on socket 0", d)
		}
	}
	remote, err := s.Candidates("gpu0", PolicyRemote)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range remote {
		if s.topoComponentSocket(t, d) != 1 {
			t.Fatalf("remote candidate %s not on socket 1", d)
		}
	}
	all, err := s.Candidates("gpu0", PolicyInterleave)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(local)+len(remote) {
		t.Fatalf("interleave %d != local %d + remote %d", len(all), len(local), len(remote))
	}
	if _, err := s.Candidates("nope", PolicyLocal); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := s.Candidates("gpu0", Policy("bogus")); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func (s *System) topoComponentSocket(t *testing.T, id topology.CompID) int {
	t.Helper()
	c := s.topo.Component(id)
	if c == nil {
		t.Fatalf("component %s missing", id)
	}
	return c.Socket
}

func TestRemotePolicyFailsOnSingleSocket(t *testing.T) {
	s := New(topology.MinimalHost())
	if _, err := s.Candidates("gpu0", PolicyRemote); err == nil {
		t.Fatal("remote policy on single-socket host should fail")
	}
}

func TestNextTargetRoundRobin(t *testing.T) {
	s := New(topology.TwoSocketServer())
	cands, _ := s.Candidates("gpu0", PolicyLocal)
	seen := make(map[topology.CompID]int)
	for i := 0; i < 2*len(cands); i++ {
		d, err := s.NextTarget("gpu0", PolicyLocal)
		if err != nil {
			t.Fatal(err)
		}
		seen[d]++
	}
	for _, d := range cands {
		if seen[d] != 2 {
			t.Fatalf("round robin uneven: %v", seen)
		}
	}
}

func TestDistanceLocalBelowRemote(t *testing.T) {
	s := New(topology.TwoSocketServer())
	local, err := s.Distance("gpu0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := s.Distance("gpu0", "socket1.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	if local >= remote {
		t.Fatalf("local distance %v not below remote %v", local, remote)
	}
}

func TestDistanceMatrix(t *testing.T) {
	s := New(topology.TwoSocketServer())
	m, err := s.DistanceMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("matrix has %d rows", len(m))
	}
	if m[0][0] >= m[0][1] {
		t.Fatalf("local %v not below remote %v", m[0][0], m[0][1])
	}
	if m[1][1] >= m[1][0] {
		t.Fatalf("local %v not below remote %v", m[1][1], m[1][0])
	}
	// Symmetric topology: cross distances equal.
	if m[0][1] != m[1][0] {
		t.Fatalf("asymmetric cross distances %v vs %v", m[0][1], m[1][0])
	}
}

func TestAggregateBandwidth(t *testing.T) {
	s := New(topology.TwoSocketServer())
	perSocket := s.AggregateBandwidth(0)
	// 2 memctrls x 2 DIMMs x 60 GB/s = 240 GB/s.
	if g := perSocket.GBpsValue(); g != 240 {
		t.Fatalf("socket bandwidth %v GB/s, want 240", g)
	}
	if s.AggregateBandwidth(-1) != 2*perSocket {
		t.Fatal("host aggregate != 2x socket")
	}
}
