// Package memsys provides the memory-system view of an intra-host
// topology: NUMA distances between devices and memory, candidate DIMM
// targets under a placement policy, channel interleaving, and
// aggregate memory-bandwidth accounting. The topology-aware scheduler
// uses it to enumerate the "several pathways" (§3.2 of the paper) a
// device-to-memory transfer can take.
package memsys

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// Policy selects which DIMMs qualify as placement targets for a
// device's DMA buffers.
type Policy string

// Placement policies, mirroring the ConfigNUMA values.
const (
	// PolicyLocal restricts placement to the device's own socket.
	PolicyLocal Policy = "local"
	// PolicyRemote restricts placement to other sockets (used in
	// tests and antagonist workloads).
	PolicyRemote Policy = "remote"
	// PolicyInterleave admits every DIMM on the host.
	PolicyInterleave Policy = "interleave"
)

// System wraps a topology with memory-oriented queries. It is cheap to
// construct and stateless except for the interleave cursor.
type System struct {
	topo *topology.Topology
	next map[topology.CompID]int // interleave cursors per device
}

// New returns a memory-system view over topo.
func New(topo *topology.Topology) *System {
	return &System{topo: topo, next: make(map[topology.CompID]int)}
}

// Sockets returns the sorted socket indices present in the topology
// (excluding the external pseudo-socket -1).
func (s *System) Sockets() []int {
	seen := make(map[int]bool)
	for _, c := range s.topo.Components() {
		if c.Socket >= 0 {
			seen[c.Socket] = true
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// DIMMs returns the sorted DIMM IDs on the given socket, or all DIMMs
// when socket is negative.
func (s *System) DIMMs(socket int) []topology.CompID {
	var out []topology.CompID
	for _, c := range s.topo.ComponentsOfKind(topology.KindDIMM) {
		if socket < 0 || c.Socket == socket {
			out = append(out, c.ID)
		}
	}
	return out
}

// Candidates returns the DIMM targets a device may DMA to under the
// given policy, sorted by ID. It returns an error for unknown devices
// or when the policy admits no DIMM.
func (s *System) Candidates(device topology.CompID, p Policy) ([]topology.CompID, error) {
	dev := s.topo.Component(device)
	if dev == nil {
		return nil, fmt.Errorf("memsys: unknown device %q", device)
	}
	var out []topology.CompID
	for _, c := range s.topo.ComponentsOfKind(topology.KindDIMM) {
		switch p {
		case PolicyLocal:
			if c.Socket == dev.Socket {
				out = append(out, c.ID)
			}
		case PolicyRemote:
			if c.Socket != dev.Socket {
				out = append(out, c.ID)
			}
		case PolicyInterleave:
			out = append(out, c.ID)
		default:
			return nil, fmt.Errorf("memsys: unknown policy %q", p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("memsys: policy %q admits no DIMM for %q", p, device)
	}
	return out, nil
}

// NextTarget cycles through a device's candidate DIMMs round-robin —
// simple software interleaving across channels and sockets.
func (s *System) NextTarget(device topology.CompID, p Policy) (topology.CompID, error) {
	cands, err := s.Candidates(device, p)
	if err != nil {
		return "", err
	}
	i := s.next[device] % len(cands)
	s.next[device]++
	return cands[i], nil
}

// Distance returns the NUMA distance between a device and a DIMM as
// the base latency of the shortest path between them. It is the
// scheduler's cost metric for placement.
func (s *System) Distance(device, dimm topology.CompID) (simtime.Duration, error) {
	p, err := s.topo.ShortestPath(device, dimm)
	if err != nil {
		return 0, err
	}
	return p.BaseLatency(), nil
}

// DistanceMatrix returns socket-to-socket NUMA distances: the base
// latency of the shortest CPU-to-DIMM path from each socket's CPU to
// each socket's first DIMM. The diagonal is local access latency.
func (s *System) DistanceMatrix() (map[int]map[int]simtime.Duration, error) {
	sockets := s.Sockets()
	out := make(map[int]map[int]simtime.Duration, len(sockets))
	for _, a := range sockets {
		out[a] = make(map[int]simtime.Duration, len(sockets))
		cpu := topology.CompID(fmt.Sprintf("cpu%d", a))
		if s.topo.Component(cpu) == nil {
			return nil, fmt.Errorf("memsys: socket %d has no cpu%d component", a, a)
		}
		for _, b := range sockets {
			dimms := s.DIMMs(b)
			if len(dimms) == 0 {
				return nil, fmt.Errorf("memsys: socket %d has no DIMMs", b)
			}
			d, err := s.Distance(cpu, dimms[0])
			if err != nil {
				return nil, err
			}
			out[a][b] = d
		}
	}
	return out, nil
}

// AggregateBandwidth sums the capacities of all memory-channel links
// (memctrl -> DIMM) on a socket — the socket's theoretical memory
// bandwidth. Negative socket aggregates the whole host.
func (s *System) AggregateBandwidth(socket int) topology.Rate {
	var sum topology.Rate
	for _, l := range s.topo.Links() {
		from, to := s.topo.Component(l.From), s.topo.Component(l.To)
		if from == nil || to == nil {
			continue
		}
		if from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM {
			if socket < 0 || to.Socket == socket {
				sum += l.Capacity
			}
		}
	}
	return sum
}
